/** @file Tests for the execution-trace facility. */

#include <sstream>

#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "mpi/comm.hh"
#include "sim/trace.hh"
#include "util/logging.hh"

namespace ccsim::sim {
namespace {

using namespace time_literals;

TEST(Trace, DisabledRecordsNothing)
{
    Trace t;
    t.record(Span{0, SpanKind::Send, 0, 10, 4, 1, {}});
    EXPECT_TRUE(t.spans().empty());
}

TEST(Trace, RecordsWhenEnabled)
{
    Trace t;
    t.enable(true);
    t.record(Span{3, SpanKind::Recv, 5 * US, 9 * US, 128, 1, {}});
    ASSERT_EQ(t.spans().size(), 1u);
    EXPECT_EQ(t.spans()[0].rank, 3);
    EXPECT_EQ(t.spans()[0].duration(), 4 * US);
    t.clear();
    EXPECT_TRUE(t.spans().empty());
}

TEST(Trace, RejectsBackwardsSpan)
{
    throwOnError(true);
    Trace t;
    t.enable(true);
    EXPECT_THROW(t.record(Span{0, SpanKind::Compute, 10, 5, 0, -1, {}}),
                 PanicError);
    throwOnError(false);
}

TEST(Trace, SummarizeAccumulatesPerRankAndKind)
{
    Trace t;
    t.enable(true);
    t.record(Span{0, SpanKind::Compute, 0, 10 * US, 0, -1, {}});
    t.record(Span{0, SpanKind::Send, 10 * US, 15 * US, 64, 1, {}});
    t.record(Span{1, SpanKind::Recv, 0, 30 * US, 64, 0, {}});
    auto sum = t.summarize();
    EXPECT_EQ(sum[0].compute, 10 * US);
    EXPECT_EQ(sum[0].send, 5 * US);
    EXPECT_EQ(sum[0].comm(), 5 * US);
    EXPECT_EQ(sum[1].recv, 30 * US);
    EXPECT_EQ(sum[0].spans, 2);
}

TEST(Trace, ChromeJsonAndCsvShapes)
{
    Trace t;
    t.enable(true);
    t.record(Span{2, SpanKind::Send, 1 * US, 3 * US, 16, 5, {}});
    std::ostringstream json;
    t.writeChromeJson(json);
    std::string j = json.str();
    EXPECT_NE(j.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(j.find("\"tid\": 2"), std::string::npos);
    EXPECT_NE(j.find("\"dur\": 2"), std::string::npos);
    EXPECT_EQ(j.front(), '[');

    std::ostringstream csv;
    t.writeCsv(csv);
    EXPECT_NE(csv.str().find(
                  "rank,kind,start_us,end_us,bytes,peer,label"),
              std::string::npos);
    EXPECT_NE(csv.str().find("2,send,1,3,16,5,"), std::string::npos);
}

TEST(Trace, PhaseLabelsStampSubsequentSpans)
{
    Trace t;
    t.enable(true);
    t.setPhase(0, "halo exchange");
    t.record(Span{0, SpanKind::Send, 0, 1 * US, 8, 1, {}});
    t.setPhase(0, ""); // clear
    t.record(Span{0, SpanKind::Send, 1 * US, 2 * US, 8, 1, {}});
    // An explicit label wins over the phase.
    t.setPhase(1, "phase");
    t.record(Span{1, SpanKind::Recv, 0, 1 * US, 8, 0, "explicit"});
    ASSERT_EQ(t.spans().size(), 3u);
    EXPECT_EQ(t.spans()[0].label, "halo exchange");
    EXPECT_EQ(t.spans()[1].label, "");
    EXPECT_EQ(t.spans()[2].label, "explicit");

    // Labelled spans become the Chrome event name; unlabelled keep
    // the kind.  The kind always survives in args.
    std::ostringstream json;
    t.writeChromeJson(json);
    std::string j = json.str();
    EXPECT_NE(j.find("\"name\": \"halo exchange\""),
              std::string::npos);
    EXPECT_NE(j.find("\"name\": \"send\""), std::string::npos);
    EXPECT_NE(j.find("\"kind\": \"send\""), std::string::npos);

    // CSV carries the label as the trailing column.
    std::ostringstream csv;
    t.writeCsv(csv);
    EXPECT_NE(csv.str().find("0,send,0,1,8,1,halo exchange"),
              std::string::npos);

    // clear() also resets phases.
    t.clear();
    t.record(Span{0, SpanKind::Send, 0, 1, 8, 1, {}});
    EXPECT_EQ(t.spans()[0].label, "");
}

TEST(Trace, SetPhaseIsNoopWhileDisabled)
{
    Trace t;
    t.setPhase(0, "ignored");
    t.enable(true);
    t.record(Span{0, SpanKind::Send, 0, 1, 8, 1, {}});
    EXPECT_EQ(t.spans()[0].label, "");
}

TEST(Trace, MachineIntegrationCapturesTransportActivity)
{
    machine::Machine m(machine::t3dConfig(), 4);
    m.trace().enable(true);
    auto prog = [&](int rank) -> sim::Task<void> {
        mpi::Comm comm(m, rank);
        co_await comm.compute(10 * US);
        if (rank == 0)
            co_await comm.send(1, 7, 256);
        else if (rank == 1)
            co_await comm.recv(0, 7);
    };
    for (int r = 0; r < 4; ++r)
        m.sim().spawn(prog(r));
    m.run();

    bool saw_send = false, saw_recv = false;
    int computes = 0;
    for (const Span &s : m.trace().spans()) {
        if (s.kind == SpanKind::Send) {
            saw_send = true;
            EXPECT_EQ(s.rank, 0);
            EXPECT_EQ(s.peer, 1);
            EXPECT_EQ(s.bytes, 256);
        }
        if (s.kind == SpanKind::Recv) {
            saw_recv = true;
            EXPECT_EQ(s.rank, 1);
            EXPECT_EQ(s.peer, 0);
        }
        if (s.kind == SpanKind::Compute)
            ++computes;
    }
    EXPECT_TRUE(saw_send);
    EXPECT_TRUE(saw_recv);
    EXPECT_EQ(computes, 4);
}

TEST(Trace, CollectiveProducesManySpans)
{
    machine::Machine m(machine::sp2Config(), 8);
    m.trace().enable(true);
    auto prog = [&](int rank) -> sim::Task<void> {
        mpi::Comm comm(m, rank);
        co_await comm.alltoall(1024);
    };
    for (int r = 0; r < 8; ++r)
        m.sim().spawn(prog(r));
    m.run();
    // Pairwise alltoall on 8 ranks: 7 rounds x 8 ranks of sendrecv.
    auto sum = m.trace().summarize();
    EXPECT_EQ(sum.size(), 8u);
    for (auto &[rank, rs] : sum) {
        EXPECT_GE(rs.spans, 14) << rank; // >= 7 sends + 7 recvs
        EXPECT_GT(rs.comm(), 0) << rank;
    }
}

TEST(Trace, DisabledByDefaultOnMachines)
{
    machine::Machine m(machine::t3dConfig(), 2);
    auto prog = [&](int rank) -> sim::Task<void> {
        mpi::Comm comm(m, rank);
        co_await comm.barrier();
    };
    for (int r = 0; r < 2; ++r)
        m.sim().spawn(prog(r));
    m.run();
    EXPECT_TRUE(m.trace().spans().empty());
}

} // namespace
} // namespace ccsim::sim
