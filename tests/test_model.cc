/** @file Unit tests for linear algebra, timing expressions, fitting. */

#include <cmath>

#include <gtest/gtest.h>

#include "model/fit.hh"
#include "model/linalg.hh"
#include "model/paper_data.hh"
#include "model/timing_expr.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace ccsim::model {
namespace {

TEST(Linalg, SolvesKnownSystem)
{
    // 2x + y = 5; x - y = 1  ->  x = 2, y = 1.
    Matrix a(2, 2);
    a.at(0, 0) = 2;
    a.at(0, 1) = 1;
    a.at(1, 0) = 1;
    a.at(1, 1) = -1;
    auto x = solve(a, {5, 1});
    EXPECT_NEAR(x[0], 2.0, 1e-12);
    EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(Linalg, PivotingHandlesZeroDiagonal)
{
    Matrix a(2, 2);
    a.at(0, 0) = 0;
    a.at(0, 1) = 1;
    a.at(1, 0) = 1;
    a.at(1, 1) = 0;
    auto x = solve(a, {3, 7});
    EXPECT_NEAR(x[0], 7.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Linalg, SingularSystemPanics)
{
    throwOnError(true);
    Matrix a(2, 2);
    a.at(0, 0) = 1;
    a.at(0, 1) = 2;
    a.at(1, 0) = 2;
    a.at(1, 1) = 4;
    EXPECT_THROW(solve(a, {1, 2}), PanicError);
    throwOnError(false);
}

TEST(Linalg, LeastSquaresRecoversLine)
{
    // y = 3x + 2 with noise-free samples.
    Matrix a(5, 2);
    std::vector<double> b(5);
    for (int i = 0; i < 5; ++i) {
        a.at(static_cast<size_t>(i), 0) = i;
        a.at(static_cast<size_t>(i), 1) = 1;
        b[static_cast<size_t>(i)] = 3.0 * i + 2.0;
    }
    auto x = leastSquares(a, b);
    EXPECT_NEAR(x[0], 3.0, 1e-10);
    EXPECT_NEAR(x[1], 2.0, 1e-10);
}

TEST(Linalg, LeastSquaresOverdeterminedAverages)
{
    // Inconsistent: y(0) = 1 and y(0) = 3 -> best fit 2.
    Matrix a(2, 1);
    a.at(0, 0) = 1;
    a.at(1, 0) = 1;
    auto x = leastSquares(a, {1, 3});
    EXPECT_NEAR(x[0], 2.0, 1e-12);
}

TEST(Linalg, BadShapesPanic)
{
    throwOnError(true);
    Matrix a(2, 2);
    EXPECT_THROW(solve(a, {1.0}), PanicError);
    Matrix tall(2, 3);
    EXPECT_THROW(leastSquares(tall, {1, 2}), PanicError);
    throwOnError(false);
}

TEST(TimingExpr, GrowthTerms)
{
    EXPECT_DOUBLE_EQ(growthTerm(Growth::Linear, 64), 64.0);
    EXPECT_DOUBLE_EQ(growthTerm(Growth::Log2, 64), 6.0);
    EXPECT_DOUBLE_EQ(growthTerm(Growth::Log2, 1), 0.0);
}

TEST(TimingExpr, EvaluatesPaperForm)
{
    // T3D total exchange: (26 p + 8.6) + (0.038 p - 0.12) m.
    TimingExpression e{Growth::Linear, Growth::Linear, 26, 8.6, 0.038,
                       -0.12};
    // Section 8's worked example: m = 512, p = 64 -> ~2.86 ms.
    EXPECT_NEAR(e.evalUs(512, 64), 2860, 30);
    EXPECT_NEAR(e.startupUs(64), 1672.6, 0.1);
}

TEST(TimingExpr, AggregatedBandwidthMatchesAbstract)
{
    // The abstract's 64-node total-exchange bandwidths must follow
    // from Table 3 via R_inf = F(p) / (c g + d) — a self-consistency
    // check of the paper itself.
    for (const auto &name : paper::machineNames()) {
        const auto &e = paper::expression(name, machine::Coll::Alltoall);
        double r = e.aggregatedBandwidthMBs(machine::Coll::Alltoall, 64);
        EXPECT_NEAR(r, paper::alltoallBandwidth64MBs(name),
                    paper::alltoallBandwidth64MBs(name) * 0.05)
            << name;
    }
}

TEST(TimingExpr, AggregationFactors)
{
    EXPECT_DOUBLE_EQ(aggregationFactor(machine::Coll::Bcast, 64), 63);
    EXPECT_DOUBLE_EQ(aggregationFactor(machine::Coll::Alltoall, 64),
                     64 * 63);
    EXPECT_DOUBLE_EQ(aggregationFactor(machine::Coll::Barrier, 64), 0);
}

TEST(TimingExpr, NonPositivePerByteGivesZeroBandwidth)
{
    TimingExpression e{Growth::Log2, Growth::Log2, 1, 1, 0, -0.5};
    EXPECT_DOUBLE_EQ(
        e.aggregatedBandwidthMBs(machine::Coll::Bcast, 4), 0.0);
}

TEST(TimingExpr, PrintsPaperStyle)
{
    TimingExpression e{Growth::Linear, Growth::Linear, 26, 8.6, 0.038,
                       -0.12};
    EXPECT_EQ(e.str(), "(26 p + 8.6) + (0.038 p - 0.12) m");
    TimingExpression mixed{Growth::Log2, Growth::Linear, 10, 73,
                           0.0033, 0.28};
    EXPECT_EQ(mixed.str(), "(10 log p + 73) + (0.0033 p + 0.28) m");
}

std::vector<Sample>
synthesize(const TimingExpression &truth)
{
    std::vector<Sample> out;
    for (int p : {2, 4, 8, 16, 32, 64}) {
        for (Bytes m : {Bytes(4), Bytes(256), Bytes(4096),
                        Bytes(16384), Bytes(65536)}) {
            out.push_back({m, p, truth.evalUs(m, p)});
        }
    }
    return out;
}

TEST(Fit, FullRecoversExactCoefficients)
{
    TimingExpression truth{Growth::Linear, Growth::Linear, 24, 90,
                           0.082, -0.29};
    auto fit = fitFull(synthesize(truth), Growth::Linear,
                       Growth::Linear);
    EXPECT_NEAR(fit.a, truth.a, 1e-6);
    EXPECT_NEAR(fit.b, truth.b, 1e-4);
    EXPECT_NEAR(fit.c, truth.c, 1e-8);
    EXPECT_NEAR(fit.d, truth.d, 1e-6);
}

TEST(Fit, AutoPicksCorrectGrowthFamilies)
{
    TimingExpression log_truth{Growth::Log2, Growth::Log2, 55, 30,
                               0.014, 0.053};
    auto f1 = fitFullAuto(synthesize(log_truth));
    EXPECT_EQ(f1.t0_growth, Growth::Log2);
    EXPECT_EQ(f1.d_growth, Growth::Log2);

    TimingExpression lin_truth{Growth::Linear, Growth::Linear, 26, 9,
                               0.038, 0.1};
    auto f2 = fitFullAuto(synthesize(lin_truth));
    EXPECT_EQ(f2.t0_growth, Growth::Linear);
    EXPECT_EQ(f2.d_growth, Growth::Linear);
}

TEST(Fit, AutoHandlesMixedGrowth)
{
    // The paper's scan rows: log-p startup, linear-p per-byte.
    TimingExpression truth{Growth::Log2, Growth::Linear, 28, 41,
                           0.0046, 0.12};
    auto fit = fitPaperStyleAuto(synthesize(truth));
    EXPECT_EQ(fit.t0_growth, Growth::Log2);
    EXPECT_EQ(fit.d_growth, Growth::Linear);
    EXPECT_NEAR(fit.a, truth.a, 0.5);
    EXPECT_NEAR(fit.c, truth.c, 1e-3);
}

TEST(Fit, PaperStyleSeparatesStartupFromSlope)
{
    TimingExpression truth{Growth::Log2, Growth::Log2, 63, 26, 0.016,
                           0.071};
    auto fit = fitPaperStyle(synthesize(truth), Growth::Log2,
                             Growth::Log2);
    // Startup fitted from the m = 4 column includes 4 bytes of
    // transmission; tolerance accordingly.
    EXPECT_NEAR(fit.a, truth.a, 0.5);
    EXPECT_NEAR(fit.b, truth.b, 1.0);
    EXPECT_NEAR(fit.c, truth.c, 1e-4);
    EXPECT_NEAR(fit.d, truth.d, 1e-2);
}

TEST(Fit, NoisyDataStillClose)
{
    TimingExpression truth{Growth::Linear, Growth::Linear, 26, 8.6,
                           0.038, 0.12};
    auto samples = synthesize(truth);
    Rng rng(42);
    for (auto &s : samples)
        s.t_us *= rng.nextDouble(0.95, 1.05);
    // The two-stage paper-style fit keeps the startup coefficients
    // meaningful under noise (plain OLS lets the long-message
    // samples swamp them).
    auto fit = fitPaperStyleAuto(samples);
    EXPECT_NEAR(fit.a, truth.a, truth.a * 0.25);
    EXPECT_NEAR(fit.c, truth.c, truth.c * 0.25);
    EXPECT_LT(relRmsError(fit, samples), 0.15);
}

TEST(Fit, ErrorsOnDegenerateInput)
{
    throwOnError(true);
    EXPECT_THROW(fitFull({}, Growth::Log2, Growth::Log2), FatalError);
    std::vector<Sample> bad = {{4, 0, 1.0}, {4, 2, 1.0}, {4, 4, 1.0},
                               {4, 8, 1.0}};
    EXPECT_THROW(fitFull(bad, Growth::Log2, Growth::Log2), FatalError);
    throwOnError(false);
}

TEST(Fit, RmsErrorZeroOnPerfectFit)
{
    TimingExpression truth{Growth::Log2, Growth::Log2, 10, 5, 0.01,
                           0.1};
    auto samples = synthesize(truth);
    EXPECT_NEAR(rmsErrorUs(truth, samples), 0.0, 1e-9);
    EXPECT_NEAR(relRmsError(truth, samples), 0.0, 1e-12);
}

TEST(PaperData, Table3CoversSevenOpsThreeMachines)
{
    for (const auto &name : paper::machineNames())
        for (machine::Coll op : machine::kPaperColls)
            EXPECT_TRUE(paper::hasExpression(name, op))
                << name << "/" << machine::collName(op);
    EXPECT_FALSE(
        paper::hasExpression("SP2", machine::Coll::Allgather));
}

TEST(PaperData, QuotedT3DStartupsMatchTable3)
{
    // Section 4's quoted 64-node T3D latencies should be consistent
    // with the Table 3 startup parts (the paper's own numbers; the
    // quoted scatter value 298 deviates from its fit, tolerance 20%).
    for (machine::Coll op :
         {machine::Coll::Bcast, machine::Coll::Alltoall,
          machine::Coll::Gather, machine::Coll::Scatter,
          machine::Coll::Scan, machine::Coll::Reduce}) {
        double quoted = paper::t3dStartup64Us(op);
        double fitted = paper::expression("T3D", op).startupUs(64);
        EXPECT_NEAR(fitted, quoted, quoted * 0.20)
            << machine::collName(op);
    }
}

TEST(PaperData, UnknownLookupsAreFatal)
{
    throwOnError(true);
    EXPECT_THROW(paper::expression("VAX", machine::Coll::Bcast),
                 FatalError);
    EXPECT_THROW(paper::alltoallBandwidth64MBs("VAX"), FatalError);
    EXPECT_THROW(paper::t3dStartup64Us(machine::Coll::Barrier),
                 FatalError);
    throwOnError(false);
}

} // namespace
} // namespace ccsim::model
