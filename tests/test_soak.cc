/**
 * @file
 * Randomized soak / property tests: storms of random point-to-point
 * traffic and random collective sequences, checking payload
 * integrity, conservation (every send matched exactly once), and
 * bit-exact determinism across repeated runs.
 */

#include <map>
#include <numeric>

#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "mpi/comm.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace ccsim {
namespace {

using machine::Machine;
using mpi::Comm;

/** One message of the random traffic plan. */
struct PlannedMsg
{
    int src;
    int dst;
    int tag;
    Bytes bytes;
    std::uint64_t checksum;
};

std::uint64_t
fnv1a(const std::vector<std::byte> &data)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (std::byte b : data) {
        h ^= static_cast<std::uint64_t>(b);
        h *= 1099511628211ULL;
    }
    return h;
}

/** Build a deterministic random traffic plan. */
std::vector<PlannedMsg>
makePlan(int p, int count, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<PlannedMsg> plan;
    plan.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
        PlannedMsg m;
        m.src = static_cast<int>(rng.nextBounded(
            static_cast<std::uint64_t>(p)));
        do {
            m.dst = static_cast<int>(rng.nextBounded(
                static_cast<std::uint64_t>(p)));
        } while (m.dst == m.src);
        m.tag = static_cast<int>(rng.nextBounded(4));
        // Mix of eager and rendezvous sizes.
        m.bytes = static_cast<Bytes>(1)
                  << rng.nextRange(0, 14); // 1 B .. 16 KB
        m.checksum = 0;
        plan.push_back(m);
    }
    return plan;
}

/** Run the plan on a machine; returns the final simulated time. */
Time
runPlan(Machine &m, const std::vector<PlannedMsg> &plan,
        int *delivered)
{
    int p = m.size();

    // Per source, the messages it must send (in plan order to keep
    // FIFO semantics checkable); per destination, how many to
    // receive.
    std::vector<std::vector<const PlannedMsg *>> to_send(
        static_cast<size_t>(p));
    std::vector<int> to_recv(static_cast<size_t>(p), 0);
    for (const auto &msg : plan) {
        to_send[static_cast<size_t>(msg.src)].push_back(&msg);
        ++to_recv[static_cast<size_t>(msg.dst)];
    }

    auto program = [&](int rank) -> sim::Task<void> {
        Comm comm(m, rank);
        // Senders issue nonblocking sends with checksummed payloads.
        std::vector<msg::Request> sends;
        for (const PlannedMsg *pm : to_send[static_cast<size_t>(rank)]) {
            auto buf = std::make_shared<std::vector<std::byte>>(
                static_cast<size_t>(pm->bytes));
            Rng fill(pm->checksum ^ fnv1a(*buf) ^
                     static_cast<std::uint64_t>(pm->bytes) ^
                     (static_cast<std::uint64_t>(pm->src) << 32 |
                      static_cast<std::uint64_t>(pm->dst)));
            for (auto &b : *buf)
                b = static_cast<std::byte>(fill.next() & 0xff);
            sends.push_back(comm.isend(pm->dst, pm->tag, pm->bytes,
                                       buf));
        }
        // Receivers pull everything addressed to them, any source,
        // any tag, and verify non-empty payloads.
        for (int i = 0; i < to_recv[static_cast<size_t>(rank)]; ++i) {
            msg::Message got =
                co_await comm.recv(msg::kAnySource, msg::kAnyTag);
            EXPECT_TRUE(got.payload);
            EXPECT_EQ(static_cast<Bytes>(got.payload->size()),
                      got.bytes);
            ++*delivered;
        }
        for (auto &s : sends)
            co_await comm.wait(std::move(s));
    };

    for (int r = 0; r < p; ++r)
        m.sim().spawn(program(r));
    m.run();
    return m.sim().now();
}

TEST(Soak, RandomTrafficAllDeliveredOnEveryMachine)
{
    for (const auto &cfg : machine::paperMachines()) {
        Machine m(cfg, 16);
        auto plan = makePlan(16, 300, 0xfeed);
        int delivered = 0;
        runPlan(m, plan, &delivered);
        EXPECT_EQ(delivered, 300) << cfg.name;
    }
}

TEST(Soak, BitExactDeterminism)
{
    auto run_once = [&]() {
        Machine m(machine::paragonConfig(), 8);
        auto plan = makePlan(8, 200, 0xabcd);
        int delivered = 0;
        return runPlan(m, plan, &delivered);
    };
    Time a = run_once();
    Time b = run_once();
    EXPECT_EQ(a, b);
    EXPECT_GT(a, 0);
}

TEST(Soak, RandomCollectiveSequencesAgreeAcrossAlgorithms)
{
    // The same random sequence of data-carrying collectives must
    // produce identical results regardless of algorithm choice.
    Rng rng(777);
    for (int round = 0; round < 5; ++round) {
        int p = static_cast<int>(2 + rng.nextBounded(7)); // 2..8
        std::uint64_t data_seed = rng.next();

        auto run_with = [&](machine::Algo a2a, machine::Algo red)
            -> std::vector<std::int64_t> {
            Machine m(machine::idealConfig(), p);
            std::vector<std::int64_t> out;
            auto program = [&](int rank) -> sim::Task<void> {
                Comm comm(m, rank);
                Rng gen(data_seed + static_cast<std::uint64_t>(rank));
                std::vector<std::int64_t> mine(
                    static_cast<size_t>(p) * 2);
                for (auto &v : mine)
                    v = gen.nextRange(-1000, 1000);
                auto shuffled = co_await comm.alltoallData(mine, a2a);
                auto total = co_await comm.allreduceData(
                    shuffled, mpi::ReduceOp::Sum, red);
                if (rank == 0)
                    out = total;
            };
            for (int r = 0; r < p; ++r)
                m.sim().spawn(program(r));
            m.run();
            return out;
        };

        auto ref = run_with(machine::Algo::Linear,
                            machine::Algo::ReduceBcast);
        auto alt = run_with(machine::Algo::Bruck,
                            machine::Algo::RecursiveDoubling);
        auto alt2 = run_with(machine::Algo::Pairwise,
                             machine::Algo::ReduceBcast);
        EXPECT_EQ(ref, alt) << "round " << round << " p=" << p;
        EXPECT_EQ(ref, alt2) << "round " << round << " p=" << p;
    }
}

TEST(Soak, ManyIterationsOfCollectivesOnRealMachines)
{
    // A longer-running stability check: 50 consecutive collectives
    // per rank across mixed operations.
    Machine m(machine::t3dConfig(), 8);
    int completed = 0;
    auto program = [&](int rank) -> sim::Task<void> {
        Comm comm(m, rank);
        for (int i = 0; i < 10; ++i) {
            co_await comm.barrier();
            co_await comm.bcast(128, i % 8);
            co_await comm.gather(64, (i + 1) % 8);
            co_await comm.alltoall(32);
            co_await comm.scan(16);
        }
        ++completed;
    };
    for (int r = 0; r < 8; ++r)
        m.sim().spawn(program(r));
    m.run();
    EXPECT_EQ(completed, 8);
}

} // namespace
} // namespace ccsim
