/** @file Unit tests for the discrete-event queue. */

#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "util/logging.hh"

namespace ccsim::sim {
namespace {

using namespace time_literals;

TEST(EventQueue, StartsEmpty)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.fired(), 0u);
    EXPECT_EQ(q.lastFired(), 0);
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    while (!q.empty())
        q.runNext();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, StableForEqualTimes)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5 * US, [&order, i] { order.push_back(i); });
    while (!q.empty())
        q.runNext();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, RunNextReturnsFireTime)
{
    EventQueue q;
    q.schedule(7 * NS, [] {});
    EXPECT_EQ(q.nextTime(), 7 * NS);
    EXPECT_EQ(q.runNext(), 7 * NS);
    EXPECT_EQ(q.lastFired(), 7 * NS);
    EXPECT_EQ(q.fired(), 1u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue q;
    std::vector<Time> fire_times;
    q.schedule(10, [&] {
        fire_times.push_back(q.lastFired());
        q.schedule(25, [&] { fire_times.push_back(q.lastFired()); });
    });
    while (!q.empty())
        q.runNext();
    EXPECT_EQ(fire_times, (std::vector<Time>{10, 25}));
}

TEST(EventQueue, SchedulingAtCurrentTimeAllowed)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] {
        q.schedule(10, [&] { ++fired; }); // same instant
    });
    while (!q.empty())
        q.runNext();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    throwOnError(true);
    EventQueue q;
    q.schedule(100, [] {});
    q.runNext();
    EXPECT_THROW(q.schedule(50, [] {}), PanicError);
    throwOnError(false);
}

TEST(EventQueue, EmptyCallbackPanics)
{
    throwOnError(true);
    EventQueue q;
    EXPECT_THROW(q.schedule(1, EventQueue::Callback()), PanicError);
    throwOnError(false);
}

TEST(EventQueue, PopOnEmptyPanics)
{
    throwOnError(true);
    EventQueue q;
    EXPECT_THROW(q.runNext(), PanicError);
    EXPECT_THROW(q.nextTime(), PanicError);
    throwOnError(false);
}

TEST(EventQueue, ManyEventsAllFire)
{
    EventQueue q;
    int count = 0;
    for (int i = 0; i < 10000; ++i)
        q.schedule(i % 97, [&] { ++count; });
    while (!q.empty())
        q.runNext();
    EXPECT_EQ(count, 10000);
    EXPECT_EQ(q.fired(), 10000u);
}

TEST(EventQueue, MoveOnlyCallbacksAreAccepted)
{
    // std::function required copyable callables; SmallFn does not.
    EventQueue q;
    auto payload = std::make_unique<int>(42);
    int seen = 0;
    q.schedule(1, [p = std::move(payload), &seen] { seen = *p; });
    q.runNext();
    EXPECT_EQ(seen, 42);
}

TEST(EventQueue, CallbacksFiringDuringRunNextKeepOrder)
{
    // A callback scheduling new events mid-pop must not disturb the
    // stable time/sequence order.
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] {
        order.push_back(1);
        q.schedule(10, [&] { order.push_back(3); });
        q.schedule(20, [&] { order.push_back(4); });
    });
    q.schedule(10, [&] { order.push_back(2); });
    while (!q.empty())
        q.runNext();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(SmallFn, SmallCapturesAreStoredInline)
{
    int x = 0;
    SmallFn f([&x] { ++x; });
    EXPECT_TRUE(f.inlined());
    f();
    EXPECT_EQ(x, 1);
}

TEST(SmallFn, OversizedCapturesFallBackToHeapAndStillRun)
{
    struct Big
    {
        char bytes[2 * SmallFn::kInlineBytes] = {};
    };
    int calls = 0;
    SmallFn f([big = Big{}, &calls] {
        (void)big;
        ++calls;
    });
    EXPECT_FALSE(f.inlined());
    f();
    f();
    EXPECT_EQ(calls, 2);
}

TEST(SmallFn, MoveTransfersTheCallable)
{
    int x = 0;
    SmallFn a([&x] { ++x; });
    SmallFn b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(x, 1);

    SmallFn c;
    c = std::move(b);
    c();
    EXPECT_EQ(x, 2);
}

TEST(SmallFn, DestroysHeldCallableExactlyOnce)
{
    struct Probe
    {
        int *live;
        explicit Probe(int *l) : live(l) { ++*live; }
        Probe(Probe &&o) noexcept : live(o.live) { ++*live; }
        Probe(const Probe &o) : live(o.live) { ++*live; }
        ~Probe() { --*live; }
        void operator()() const {}
    };
    int live = 0;
    {
        SmallFn f{Probe(&live)};
        EXPECT_GE(live, 1);
        SmallFn g(std::move(f));
        EXPECT_GE(live, 1);
    }
    EXPECT_EQ(live, 0);
}

} // namespace
} // namespace ccsim::sim
