/** @file Unit tests for the discrete-event queue. */

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "util/logging.hh"

namespace ccsim::sim {
namespace {

using namespace time_literals;

TEST(EventQueue, StartsEmpty)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.fired(), 0u);
    EXPECT_EQ(q.lastFired(), 0);
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    while (!q.empty())
        q.runNext();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, StableForEqualTimes)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5 * US, [&order, i] { order.push_back(i); });
    while (!q.empty())
        q.runNext();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, RunNextReturnsFireTime)
{
    EventQueue q;
    q.schedule(7 * NS, [] {});
    EXPECT_EQ(q.nextTime(), 7 * NS);
    EXPECT_EQ(q.runNext(), 7 * NS);
    EXPECT_EQ(q.lastFired(), 7 * NS);
    EXPECT_EQ(q.fired(), 1u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue q;
    std::vector<Time> fire_times;
    q.schedule(10, [&] {
        fire_times.push_back(q.lastFired());
        q.schedule(25, [&] { fire_times.push_back(q.lastFired()); });
    });
    while (!q.empty())
        q.runNext();
    EXPECT_EQ(fire_times, (std::vector<Time>{10, 25}));
}

TEST(EventQueue, SchedulingAtCurrentTimeAllowed)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] {
        q.schedule(10, [&] { ++fired; }); // same instant
    });
    while (!q.empty())
        q.runNext();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    throwOnError(true);
    EventQueue q;
    q.schedule(100, [] {});
    q.runNext();
    EXPECT_THROW(q.schedule(50, [] {}), PanicError);
    throwOnError(false);
}

TEST(EventQueue, EmptyCallbackPanics)
{
    throwOnError(true);
    EventQueue q;
    EXPECT_THROW(q.schedule(1, EventQueue::Callback()), PanicError);
    throwOnError(false);
}

TEST(EventQueue, PopOnEmptyPanics)
{
    throwOnError(true);
    EventQueue q;
    EXPECT_THROW(q.runNext(), PanicError);
    EXPECT_THROW(q.nextTime(), PanicError);
    throwOnError(false);
}

TEST(EventQueue, ManyEventsAllFire)
{
    EventQueue q;
    int count = 0;
    for (int i = 0; i < 10000; ++i)
        q.schedule(i % 97, [&] { ++count; });
    while (!q.empty())
        q.runNext();
    EXPECT_EQ(count, 10000);
    EXPECT_EQ(q.fired(), 10000u);
}

TEST(EventQueue, MoveOnlyCallbacksAreAccepted)
{
    // std::function required copyable callables; SmallFn does not.
    EventQueue q;
    auto payload = std::make_unique<int>(42);
    int seen = 0;
    q.schedule(1, [p = std::move(payload), &seen] { seen = *p; });
    q.runNext();
    EXPECT_EQ(seen, 42);
}

TEST(EventQueue, CallbacksFiringDuringRunNextKeepOrder)
{
    // A callback scheduling new events mid-pop must not disturb the
    // stable time/sequence order.
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] {
        order.push_back(1);
        q.schedule(10, [&] { order.push_back(3); });
        q.schedule(20, [&] { order.push_back(4); });
    });
    q.schedule(10, [&] { order.push_back(2); });
    while (!q.empty())
        q.runNext();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueue, ReanchoredWindowAcceptsEarlierFutureEvents)
{
    // After the calendar window advances past a gap, its origin jumps
    // to the earliest spilled event.  A schedule that lands *between*
    // the current time and the jumped origin clamps to the first
    // bucket and must still fire in global time order.
    EventQueue q;
    std::vector<Time> fired;
    const Time far = Time(1) << 40;
    q.schedule(100, [&] { fired.push_back(100); });
    q.schedule(far, [&] { fired.push_back(far); });
    q.runNext(); // fires 100; the window re-anchors at `far`
    q.schedule(200, [&] { fired.push_back(200); });
    while (!q.empty())
        q.runNext();
    EXPECT_EQ(fired, (std::vector<Time>{100, 200, far}));
}

TEST(EventQueue, WideTimeSpreadRollsOverInOrder)
{
    // Enough spillover (>= 64 entries) over a huge span to trigger
    // the bucket-width re-fit on window advance.  Scheduled in
    // reverse time order to stress the move-back and overflow paths.
    EventQueue q;
    std::vector<Time> expect;
    Time t = 1000;
    for (int i = 0; i < 128; ++i) {
        expect.push_back(t);
        t += (Time(1) << 33) + i * 7919;
    }
    std::vector<Time> fired;
    for (int i = 127; i >= 0; --i) {
        Time when = expect[static_cast<std::size_t>(i)];
        q.schedule(when, [&fired, when] { fired.push_back(when); });
    }
    while (!q.empty())
        q.runNext();
    EXPECT_EQ(fired, expect);
}

TEST(EventQueue, StableAcrossBucketRollover)
{
    // Same-instant events must keep insertion order even when their
    // instant sits past several window advances.
    EventQueue q;
    std::vector<int> order;
    const Time far = (Time(1) << 30) + 17;
    q.schedule(1, [] {});
    for (int i = 0; i < 8; ++i)
        q.schedule(far, [&order, i] { order.push_back(i); });
    while (!q.empty())
        q.runNext();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueue, MatchesReferenceOrderUnderRandomLoad)
{
    // Deterministic random schedule, including events scheduled from
    // callbacks, checked against the (time, seq) contract: fire order
    // is a stable sort of schedule order by time.
    EventQueue q;
    std::uint64_t rng = 0x9e3779b97f4a7c15ull;
    auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };
    std::vector<std::pair<Time, int>> scheduled; // (when, id)
    std::vector<int> fired;
    int id = 0;
    std::function<void(Time)> add = [&](Time when) {
        int my = id++;
        scheduled.emplace_back(when, my);
        q.schedule(when, [&, my, when] {
            fired.push_back(my);
            // A third of the callbacks schedule a follow-up.
            if (next() % 3 == 0)
                add(when + static_cast<Time>(next() % 5000));
        });
    };
    for (int i = 0; i < 2000; ++i)
        add(static_cast<Time>(next() % 100000));
    while (!q.empty())
        q.runNext();

    ASSERT_EQ(fired.size(), scheduled.size());
    std::vector<std::pair<Time, int>> expect = scheduled;
    std::stable_sort(expect.begin(), expect.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    // Callback-scheduled events interleave with pending ones, so the
    // stable sort must account for *when* each was scheduled: seq
    // order equals id order here because add() is the only scheduler.
    for (std::size_t i = 0; i < expect.size(); ++i)
        EXPECT_EQ(fired[i], expect[i].second) << "at position " << i;
}

TEST(EventQueue, ReserveIsTransparent)
{
    // reserve() is a capacity hint: a reserved and an unreserved
    // queue must fire an identical schedule identically.
    EventQueue plain;
    EventQueue hinted;
    hinted.reserve(4096);
    std::vector<Time> fp, fh;
    for (int i = 0; i < 500; ++i) {
        Time when = (i * 37) % 1000 + 1;
        plain.schedule(when, [&fp, when] { fp.push_back(when); });
        hinted.schedule(when, [&fh, when] { fh.push_back(when); });
    }
    while (!plain.empty())
        plain.runNext();
    while (!hinted.empty())
        hinted.runNext();
    EXPECT_EQ(fp, fh);
}

TEST(SmallFn, SmallCapturesAreStoredInline)
{
    int x = 0;
    SmallFn f([&x] { ++x; });
    EXPECT_TRUE(f.inlined());
    f();
    EXPECT_EQ(x, 1);
}

TEST(SmallFn, OversizedCapturesFallBackToHeapAndStillRun)
{
    struct Big
    {
        char bytes[2 * SmallFn::kInlineBytes] = {};
    };
    int calls = 0;
    SmallFn f([big = Big{}, &calls] {
        (void)big;
        ++calls;
    });
    EXPECT_FALSE(f.inlined());
    f();
    f();
    EXPECT_EQ(calls, 2);
}

TEST(SmallFn, MoveTransfersTheCallable)
{
    int x = 0;
    SmallFn a([&x] { ++x; });
    SmallFn b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(x, 1);

    SmallFn c;
    c = std::move(b);
    c();
    EXPECT_EQ(x, 2);
}

TEST(SmallFn, DestroysHeldCallableExactlyOnce)
{
    struct Probe
    {
        int *live;
        explicit Probe(int *l) : live(l) { ++*live; }
        Probe(Probe &&o) noexcept : live(o.live) { ++*live; }
        Probe(const Probe &o) : live(o.live) { ++*live; }
        ~Probe() { --*live; }
        void operator()() const {}
    };
    int live = 0;
    {
        SmallFn f{Probe(&live)};
        EXPECT_GE(live, 1);
        SmallFn g(std::move(f));
        EXPECT_GE(live, 1);
    }
    EXPECT_EQ(live, 0);
}

} // namespace
} // namespace ccsim::sim
