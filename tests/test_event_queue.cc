/** @file Unit tests for the discrete-event queue. */

#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "util/logging.hh"

namespace ccsim::sim {
namespace {

using namespace time_literals;

TEST(EventQueue, StartsEmpty)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.fired(), 0u);
    EXPECT_EQ(q.lastFired(), 0);
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    while (!q.empty())
        q.runNext();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, StableForEqualTimes)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5 * US, [&order, i] { order.push_back(i); });
    while (!q.empty())
        q.runNext();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, RunNextReturnsFireTime)
{
    EventQueue q;
    q.schedule(7 * NS, [] {});
    EXPECT_EQ(q.nextTime(), 7 * NS);
    EXPECT_EQ(q.runNext(), 7 * NS);
    EXPECT_EQ(q.lastFired(), 7 * NS);
    EXPECT_EQ(q.fired(), 1u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue q;
    std::vector<Time> fire_times;
    q.schedule(10, [&] {
        fire_times.push_back(q.lastFired());
        q.schedule(25, [&] { fire_times.push_back(q.lastFired()); });
    });
    while (!q.empty())
        q.runNext();
    EXPECT_EQ(fire_times, (std::vector<Time>{10, 25}));
}

TEST(EventQueue, SchedulingAtCurrentTimeAllowed)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] {
        q.schedule(10, [&] { ++fired; }); // same instant
    });
    while (!q.empty())
        q.runNext();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    throwOnError(true);
    EventQueue q;
    q.schedule(100, [] {});
    q.runNext();
    EXPECT_THROW(q.schedule(50, [] {}), PanicError);
    throwOnError(false);
}

TEST(EventQueue, EmptyCallbackPanics)
{
    throwOnError(true);
    EventQueue q;
    EXPECT_THROW(q.schedule(1, EventQueue::Callback()), PanicError);
    throwOnError(false);
}

TEST(EventQueue, PopOnEmptyPanics)
{
    throwOnError(true);
    EventQueue q;
    EXPECT_THROW(q.runNext(), PanicError);
    EXPECT_THROW(q.nextTime(), PanicError);
    throwOnError(false);
}

TEST(EventQueue, ManyEventsAllFire)
{
    EventQueue q;
    int count = 0;
    for (int i = 0; i < 10000; ++i)
        q.schedule(i % 97, [&] { ++count; });
    while (!q.empty())
        q.runNext();
    EXPECT_EQ(count, 10000);
    EXPECT_EQ(q.fired(), 10000u);
}

} // namespace
} // namespace ccsim::sim
