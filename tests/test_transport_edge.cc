/** @file Edge-case tests for the transport protocol machinery. */

#include <memory>

#include <gtest/gtest.h>

#include "msg/transport.hh"
#include "net/fully_connected.hh"
#include "net/network.hh"
#include "sim/simulator.hh"
#include "util/logging.hh"

namespace ccsim::msg {
namespace {

using namespace time_literals;
using sim::Task;

struct World
{
    World(Bytes eager_threshold = 4 * KiB, double overlap = 0.0)
    {
        net::NetworkParams np;
        np.link_bandwidth_mbs = 100.0;
        np.hop_latency = 100 * NS;
        network = std::make_unique<net::Network>(
            std::make_unique<net::FullyConnected>(4), np);
        TransportParams tp;
        tp.send_overhead = 10 * US;
        tp.recv_overhead = 5 * US;
        tp.copy_bandwidth_mbs = 100.0;
        tp.eager_threshold = eager_threshold;
        tp.rendezvous_overhead = 2 * US;
        tp.coprocessor_overlap = overlap;
        fabric = std::make_unique<Fabric>(simulator, *network, 4, tp);
    }

    sim::Simulator simulator;
    std::unique_ptr<net::Network> network;
    std::unique_ptr<Fabric> fabric;
};

TEST(TransportEdge, AnyTagMatchesInArrivalOrder)
{
    World w;
    std::vector<int> tags;
    auto sender = [&]() -> Task<void> {
        co_await w.fabric->node(0).send(1, 5, 0, 8);
        co_await w.fabric->node(0).send(1, 9, 0, 8);
    };
    auto receiver = [&]() -> Task<void> {
        for (int i = 0; i < 2; ++i) {
            Message m =
                co_await w.fabric->node(1).recv(0, kAnyTag, 0);
            tags.push_back(m.tag);
        }
    };
    w.simulator.spawn(sender());
    w.simulator.spawn(receiver());
    w.simulator.run();
    EXPECT_EQ(tags, (std::vector<int>{5, 9}));
}

TEST(TransportEdge, EagerThresholdBoundaryExact)
{
    // <= threshold goes eager (receive copy), threshold+1 goes
    // rendezvous (handshake, no receive copy) — verify via timing
    // signature difference.
    auto completion = [&](Bytes size) {
        World w(/*eager_threshold=*/1000);
        Time done = -1;
        auto sender = [&]() -> Task<void> {
            co_await w.fabric->node(0).send(1, 1, 0, size);
        };
        auto receiver = [&]() -> Task<void> {
            co_await w.fabric->node(1).recv(0, 1, 0);
            done = w.simulator.now();
        };
        w.simulator.spawn(receiver());
        w.simulator.spawn(sender());
        w.simulator.run();
        return done;
    };
    // Eager at exactly 1000 bytes:
    // o_s(10) + copy(10) + wire(0.1+10) + o_r(5) + copy(10) = 45.1
    EXPECT_EQ(completion(1000), microseconds(45.1));
    // Rendezvous at 1001 bytes:
    // o_s+rdv(12) + rts(0.1) + rdv(2) + cts(0.1) + copy(10.01)
    // + wire(0.1 + 10.01) + o_r(5) = 39.32
    EXPECT_EQ(completion(1001), microseconds(39.32));
}

TEST(TransportEdge, ZeroByteMessagesFlow)
{
    World w;
    int got = 0;
    auto sender = [&]() -> Task<void> {
        co_await w.fabric->node(0).send(1, 1, 0, 0);
    };
    auto receiver = [&]() -> Task<void> {
        Message m = co_await w.fabric->node(1).recv(0, 1, 0);
        EXPECT_EQ(m.bytes, 0);
        ++got;
    };
    w.simulator.spawn(sender());
    w.simulator.spawn(receiver());
    w.simulator.run();
    EXPECT_EQ(got, 1);
}

TEST(TransportEdge, LargeSelfSendStaysEagerAndOrdered)
{
    // Self-sends are always buffered, even above the threshold, so a
    // lone rank can send-then-receive without deadlock.
    World w;
    Bytes size = 64 * KiB;
    bool done = false;
    auto prog = [&]() -> Task<void> {
        co_await w.fabric->node(2).send(2, 1, 0, size);
        Message m = co_await w.fabric->node(2).recv(2, 1, 0);
        EXPECT_EQ(m.bytes, size);
        done = true;
    };
    w.simulator.spawn(prog());
    w.simulator.run();
    EXPECT_TRUE(done);
}

TEST(TransportEdge, ManyConcurrentRendezvousInterleave)
{
    // All four nodes exchange long messages with everyone at once;
    // the handshakes must all complete (no lost CTS/data races).
    World w;
    int completed = 0;
    auto prog = [&](int me) -> Task<void> {
        std::vector<Request> reqs;
        for (int other = 0; other < 4; ++other)
            if (other != me)
                reqs.push_back(
                    w.fabric->node(me).isend(other, 7, 0, 16 * KiB));
        for (int other = 0; other < 4; ++other)
            if (other != me)
                co_await w.fabric->node(me).recv(other, 7, 0);
        for (auto &r : reqs)
            co_await w.fabric->node(me).wait(std::move(r));
        ++completed;
    };
    for (int r = 0; r < 4; ++r)
        w.simulator.spawn(prog(r));
    w.simulator.run();
    EXPECT_EQ(completed, 4);
}

TEST(TransportEdge, WildcardRecvSeesEagerAndRtsInArrivalOrder)
{
    // A short (eager) and a long (rendezvous RTS) message race to a
    // wildcard receiver; non-overtaking applies across protocols.
    World w;
    std::vector<Bytes> sizes;
    auto sender = [&]() -> Task<void> {
        co_await w.fabric->node(0).send(1, 1, 0, 64);       // eager
        co_await w.fabric->node(0).send(1, 1, 0, 16 * KiB); // rdv
    };
    auto receiver = [&]() -> Task<void> {
        co_await w.simulator.delay(100 * MS); // both arrived/queued
        for (int i = 0; i < 2; ++i) {
            Message m =
                co_await w.fabric->node(1).recv(0, kAnyTag, 0);
            sizes.push_back(m.bytes);
        }
    };
    w.simulator.spawn(sender());
    w.simulator.spawn(receiver());
    w.simulator.run();
    EXPECT_EQ(sizes, (std::vector<Bytes>{64, 16 * KiB}));
}

TEST(TransportEdge, CostOverrideChangesOnlyThisCall)
{
    World w;
    std::vector<Time> done;
    auto sender = [&]() -> Task<void> {
        CostOverride cheap{microseconds(1), microseconds(1)};
        co_await w.fabric->node(0).send(1, 1, 0, 0, nullptr, cheap);
        co_await w.fabric->node(0).send(1, 2, 0, 0); // defaults
    };
    auto receiver = [&]() -> Task<void> {
        co_await w.fabric->node(1).recv(0, 1, 0,
                                        CostOverride{-1,
                                                     microseconds(1)});
        done.push_back(w.simulator.now());
        co_await w.fabric->node(1).recv(0, 2, 0);
        done.push_back(w.simulator.now());
    };
    w.simulator.spawn(sender());
    w.simulator.spawn(receiver());
    w.simulator.run();
    ASSERT_EQ(done.size(), 2u);
    // First: o_s(1) + hop(0.1) + o_r(1) = 2.1 us.
    EXPECT_EQ(done[0], microseconds(2.1));
    // Second: sender continues at 1 us, o_s(10) -> 11, hop -> 11.1;
    // receiver o_r(5) -> 16.1 us.
    EXPECT_EQ(done[1], microseconds(16.1));
}

TEST(TransportEdge, CoprocessorSerializesBackToBackInjections)
{
    // With full overlap the sender's CPU is free immediately, but
    // the copro pipeline still paces injections; messages must not
    // arrive out of order or overlapped on the wire.
    World w(4 * KiB, /*overlap=*/1.0);
    std::vector<Time> arrivals;
    auto sender = [&]() -> Task<void> {
        for (int i = 0; i < 3; ++i)
            co_await w.fabric->node(0).send(1, 1, 0, 1000);
    };
    auto receiver = [&]() -> Task<void> {
        for (int i = 0; i < 3; ++i) {
            Message m = co_await w.fabric->node(1).recv(0, 1, 0);
            arrivals.push_back(m.arrival);
        }
    };
    w.simulator.spawn(sender());
    w.simulator.spawn(receiver());
    w.simulator.run();
    ASSERT_EQ(arrivals.size(), 3u);
    // Copro copies serialize at 10 us each; wire adds 10 us.
    EXPECT_LT(arrivals[0], arrivals[1]);
    EXPECT_LT(arrivals[1], arrivals[2]);
    EXPECT_GE(arrivals[1] - arrivals[0], 10 * US);
}

} // namespace
} // namespace ccsim::msg
