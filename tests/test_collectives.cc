/**
 * @file
 * Data-carrying correctness tests for every collective x algorithm,
 * swept over communicator sizes (including non-powers-of-two and the
 * degenerate single rank) and non-zero roots.
 */

#include <cstdint>
#include <functional>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "mpi/comm.hh"
#include "util/logging.hh"

namespace ccsim::mpi {
namespace {

using machine::Machine;

using Body = std::function<sim::Task<void>(Comm &)>;

/** Spawn one Comm-equipped program per rank and run to completion. */
void
runProgram(Machine &m, const Body &body)
{
    auto driver = [&m, &body](int rank) -> sim::Task<void> {
        Comm comm(m, rank);
        co_await body(comm);
    };
    for (int r = 0; r < m.size(); ++r)
        m.sim().spawn(driver(r));
    m.run();
}

/** Deterministic per-rank test vector. */
std::vector<std::int64_t>
pattern(int rank, int count, int salt = 0)
{
    std::vector<std::int64_t> v(static_cast<size_t>(count));
    for (int j = 0; j < count; ++j)
        v[static_cast<size_t>(j)] =
            1000 * (rank + 1) + 10 * j + salt;
    return v;
}

class CollectivesP : public ::testing::TestWithParam<int>
{
  protected:
    int p() const { return GetParam(); }

    Machine
    idealMachine() const
    {
        return Machine(machine::idealConfig(), p());
    }
};

INSTANTIATE_TEST_SUITE_P(Sizes, CollectivesP,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16));

TEST_P(CollectivesP, BcastAllAlgorithmsDeliverRootData)
{
    for (Algo algo : {Algo::Linear, Algo::Binomial,
                      Algo::ScatterAllgather}) {
        Machine m = idealMachine();
        int root = p() > 2 ? 2 : 0;
        int checked = 0;
        Body body = [&](Comm &c) -> sim::Task<void> {
            auto in = c.rank() == root
                          ? pattern(root, 6)
                          : std::vector<std::int64_t>(6, 0);
            auto out = co_await c.bcastData(in, root, algo);
            EXPECT_EQ(out, pattern(root, 6))
                << "algo=" << machine::algoName(algo)
                << " rank=" << c.rank();
            ++checked;
        };
        runProgram(m, body);
        EXPECT_EQ(checked, p());
    }
}

TEST_P(CollectivesP, GatherConcatenatesInRankOrder)
{
    for (Algo algo : {Algo::Linear, Algo::Binomial}) {
        Machine m = idealMachine();
        int root = p() > 3 ? 3 : 0;
        Body body = [&](Comm &c) -> sim::Task<void> {
            auto out = co_await c.gatherData(pattern(c.rank(), 4),
                                             root, algo);
            if (c.rank() == root) {
                EXPECT_EQ(out.size(), static_cast<size_t>(4 * p()));
                for (int r = 0; r < p(); ++r) {
                    auto expect = pattern(r, 4);
                    for (int j = 0; j < 4; ++j)
                        EXPECT_EQ(out[static_cast<size_t>(r * 4 + j)],
                                  expect[static_cast<size_t>(j)])
                            << "algo=" << machine::algoName(algo)
                            << " r=" << r << " j=" << j;
                }
            } else {
                EXPECT_TRUE(out.empty());
            }
        };
        runProgram(m, body);
    }
}

TEST_P(CollectivesP, ScatterDistributesRootBlocks)
{
    for (Algo algo : {Algo::Linear, Algo::Binomial}) {
        Machine m = idealMachine();
        int root = p() > 1 ? 1 : 0;
        std::vector<std::int64_t> all;
        for (int r = 0; r < p(); ++r) {
            auto blk = pattern(r, 3, /*salt=*/7);
            all.insert(all.end(), blk.begin(), blk.end());
        }
        Body body = [&](Comm &c) -> sim::Task<void> {
            // Named local: GCC 12 mishandles conditional-expression
            // temporaries inside co_await arguments.
            std::vector<std::int64_t> in;
            if (c.rank() == root)
                in = all;
            auto out = co_await c.scatterData(in, 3, root, algo);
            EXPECT_EQ(out, pattern(c.rank(), 3, 7))
                << "algo=" << machine::algoName(algo)
                << " rank=" << c.rank();
        };
        runProgram(m, body);
    }
}

TEST_P(CollectivesP, AllgatherEveryoneGetsEverything)
{
    for (Algo algo : {Algo::Ring, Algo::RecursiveDoubling}) {
        Machine m = idealMachine();
        Body body = [&](Comm &c) -> sim::Task<void> {
            auto out =
                co_await c.allgatherData(pattern(c.rank(), 2), algo);
            EXPECT_EQ(out.size(), static_cast<size_t>(2 * p()));
            for (int r = 0; r < p(); ++r) {
                auto expect = pattern(r, 2);
                for (int j = 0; j < 2; ++j)
                    EXPECT_EQ(out[static_cast<size_t>(r * 2 + j)],
                              expect[static_cast<size_t>(j)])
                        << "algo=" << machine::algoName(algo);
            }
        };
        runProgram(m, body);
    }
}

TEST_P(CollectivesP, AlltoallPermutesBlocksCorrectly)
{
    auto block_value = [](int src, int dst, int j) -> std::int64_t {
        return 100000 * (src + 1) + 100 * (dst + 1) + j;
    };
    for (Algo algo : {Algo::Linear, Algo::Pairwise, Algo::Bruck}) {
        Machine m = idealMachine();
        Body body = [&](Comm &c) -> sim::Task<void> {
            std::vector<std::int64_t> mine;
            for (int dst = 0; dst < p(); ++dst)
                for (int j = 0; j < 3; ++j)
                    mine.push_back(block_value(c.rank(), dst, j));
            auto out = co_await c.alltoallData(mine, algo);
            EXPECT_EQ(out.size(), static_cast<size_t>(3 * p()));
            for (int src = 0; src < p(); ++src)
                for (int j = 0; j < 3; ++j)
                    EXPECT_EQ(out[static_cast<size_t>(src * 3 + j)],
                              block_value(src, c.rank(), j))
                        << "algo=" << machine::algoName(algo)
                        << " rank=" << c.rank() << " src=" << src;
        };
        runProgram(m, body);
    }
}

TEST_P(CollectivesP, ReduceSumsExactly)
{
    for (Algo algo : {Algo::Linear, Algo::Binomial}) {
        Machine m = idealMachine();
        int root = p() > 2 ? p() - 1 : 0;
        std::vector<std::int64_t> expect(3, 0);
        for (int r = 0; r < p(); ++r) {
            auto v = pattern(r, 3);
            for (int j = 0; j < 3; ++j)
                expect[static_cast<size_t>(j)] +=
                    v[static_cast<size_t>(j)];
        }
        Body body = [&](Comm &c) -> sim::Task<void> {
            auto out = co_await c.reduceData(pattern(c.rank(), 3),
                                             ReduceOp::Sum, root, algo);
            if (c.rank() == root)
                EXPECT_EQ(out, expect)
                    << "algo=" << machine::algoName(algo);
            else
                EXPECT_TRUE(out.empty());
        };
        runProgram(m, body);
    }
}

TEST_P(CollectivesP, AllreduceAllOperators)
{
    for (Algo algo : {Algo::ReduceBcast, Algo::RecursiveDoubling}) {
        for (ReduceOp op : {ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max,
                            ReduceOp::Prod}) {
            Machine m = idealMachine();
            // Small values keep products in range.
            auto input = [&](int rank) {
                return std::vector<std::int64_t>{rank + 1, 2,
                                                 (rank % 3) - 1};
            };
            std::vector<std::int64_t> expect = input(0);
            for (int r = 1; r < p(); ++r) {
                auto v = input(r);
                for (int j = 0; j < 3; ++j) {
                    auto &e = expect[static_cast<size_t>(j)];
                    auto x = v[static_cast<size_t>(j)];
                    switch (op) {
                      case ReduceOp::Sum:
                        e += x;
                        break;
                      case ReduceOp::Prod:
                        e *= x;
                        break;
                      case ReduceOp::Min:
                        e = std::min(e, x);
                        break;
                      case ReduceOp::Max:
                        e = std::max(e, x);
                        break;
                    }
                }
            }
            Body body = [&](Comm &c) -> sim::Task<void> {
                auto out = co_await c.allreduceData(input(c.rank()), op,
                                                    algo);
                EXPECT_EQ(out, expect)
                    << "algo=" << machine::algoName(algo) << " op="
                    << reduceOpName(op) << " rank=" << c.rank();
            };
            runProgram(m, body);
        }
    }
}

TEST_P(CollectivesP, ScanIsInclusivePrefix)
{
    for (Algo algo : {Algo::Linear, Algo::RecursiveDoubling}) {
        Machine m = idealMachine();
        Body body = [&](Comm &c) -> sim::Task<void> {
            // Named local: GCC 12 rejects initializer_list
            // temporaries inside co_await expressions.
            std::vector<std::int64_t> in{c.rank() + 1, 10};
            auto out = co_await c.scanData(in, ReduceOp::Sum, algo);
            // prefix over ranks 0..rank of {r+1, 10}
            std::int64_t n = c.rank() + 1;
            EXPECT_EQ(out,
                      (std::vector<std::int64_t>{n * (n + 1) / 2,
                                                 10 * n}))
                << "algo=" << machine::algoName(algo)
                << " rank=" << c.rank();
        };
        runProgram(m, body);
    }
}

TEST_P(CollectivesP, BarrierHoldsEveryoneUntilLastEntry)
{
    for (Algo algo : {Algo::Linear, Algo::Binomial,
                      Algo::Dissemination}) {
        Machine m = idealMachine();
        using namespace time_literals;
        Time last_entry = 0;
        Time first_exit = -1;
        Body body = [&](Comm &c) -> sim::Task<void> {
            co_await c.compute(Time(c.rank()) * 100 * US);
            last_entry = std::max(last_entry, m.sim().now());
            co_await c.barrier(algo);
            if (first_exit < 0 || m.sim().now() < first_exit)
                first_exit = m.sim().now();
        };
        runProgram(m, body);
        EXPECT_GE(first_exit, last_entry)
            << "algo=" << machine::algoName(algo);
    }
}

TEST_P(CollectivesP, ZeroLengthCollectivesComplete)
{
    Machine m = idealMachine();
    Body body = [&](Comm &c) -> sim::Task<void> {
        auto b = co_await c.bcastData(std::vector<std::int64_t>{}, 0);
        EXPECT_TRUE(b.empty());
        auto g =
            co_await c.gatherData(std::vector<std::int64_t>{}, 0);
        EXPECT_TRUE(g.empty());
        co_await c.alltoall(0);
        co_await c.reduce(0);
    };
    runProgram(m, body);
}

TEST(Collectives, WorkOnAllPaperMachines)
{
    // End-to-end smoke across the three calibrated presets.
    for (const auto &cfg : machine::paperMachines()) {
        Machine m(cfg, 8);
        int done = 0;
        Body body = [&](Comm &c) -> sim::Task<void> {
            co_await c.barrier();
            std::vector<std::int64_t> mine{c.rank()};
            auto v = co_await c.allreduceData(mine, ReduceOp::Sum);
            EXPECT_EQ(v, (std::vector<std::int64_t>{28}))
                << cfg.name;
            auto a = co_await c.alltoallData(
                pattern(c.rank(), 8), Algo::Default);
            EXPECT_EQ(a.size(), 8u);
            co_await c.scan(1024);
            co_await c.bcast(64 * KiB, 0); // rendezvous path
            ++done;
        };
        runProgram(m, body);
        EXPECT_EQ(done, 8) << cfg.name;
    }
}

TEST(Collectives, SubgroupIsolatesTraffic)
{
    Machine m(machine::idealConfig(), 8);
    Body body = [&](Comm &c) -> sim::Task<void> {
        // Split into even and odd halves; sum ranks within each.
        std::vector<int> members;
        for (int r = c.rank() % 2; r < 8; r += 2)
            members.push_back(r);
        Comm half = c.subgroup(members);
        EXPECT_EQ(half.size(), 4);
        std::vector<std::int64_t> mine{c.rank()};
        auto v = co_await half.allreduceData(mine, ReduceOp::Sum);
        std::int64_t expect = c.rank() % 2 == 0 ? 0 + 2 + 4 + 6
                                                : 1 + 3 + 5 + 7;
        EXPECT_EQ(v, (std::vector<std::int64_t>{expect}));
        // And a barrier inside the subgroup must not hang.
        co_await half.barrier();
    };
    runProgram(m, body);
}

TEST(Collectives, SubgroupRankNumberingFollowsMemberOrder)
{
    Machine m(machine::idealConfig(), 4);
    Body body = [&](Comm &c) -> sim::Task<void> {
        Comm sub = c.subgroup({3, 1, 0, 2});
        int expect_rank = c.rank() == 3   ? 0
                          : c.rank() == 1 ? 1
                          : c.rank() == 0 ? 2
                                          : 3;
        EXPECT_EQ(sub.rank(), expect_rank);
        std::vector<std::int64_t> mine{c.rank()};
        auto g = co_await sub.gatherData(mine, 0);
        if (sub.rank() == 0) {
            EXPECT_EQ(g, (std::vector<std::int64_t>{3, 1, 0, 2}));
        }
        co_return;
    };
    runProgram(m, body);
}

TEST(Collectives, SubgroupErrors)
{
    throwOnError(true);
    Machine m(machine::idealConfig(), 4);
    Body body = [&](Comm &c) -> sim::Task<void> {
        if (c.rank() == 0) {
            EXPECT_THROW(c.subgroup({}), FatalError);
            EXPECT_THROW(c.subgroup({1, 2}), FatalError);  // not member
            EXPECT_THROW(c.subgroup({0, 0, 1}), FatalError); // dup
        }
        co_return;
    };
    runProgram(m, body);
    throwOnError(false);
}

TEST(Collectives, FloatReductionMatchesWithinTolerance)
{
    Machine m(machine::idealConfig(), 8);
    Body body = [&](Comm &c) -> sim::Task<void> {
        std::vector<float> v{0.5f * (c.rank() + 1), -1.25f};
        auto out = co_await c.allreduceData(v, ReduceOp::Sum);
        EXPECT_EQ(out.size(), 2u);
        EXPECT_NEAR(out[0], 0.5f * 36, 1e-4);
        EXPECT_NEAR(out[1], -10.0f, 1e-4);
    };
    runProgram(m, body);
}

TEST(Collectives, ConsecutiveCallsDoNotInterfere)
{
    Machine m(machine::idealConfig(), 4);
    Body body = [&](Comm &c) -> sim::Task<void> {
        for (int i = 0; i < 10; ++i) {
            std::vector<std::int64_t> in{i * 11};
            auto v = co_await c.bcastData(in, 0);
            EXPECT_EQ(v, (std::vector<std::int64_t>{i * 11}));
        }
    };
    runProgram(m, body);
}

TEST(Collectives, MismatchedRootIsFatal)
{
    throwOnError(true);
    Machine m(machine::idealConfig(), 4);
    Body body = [&](Comm &c) -> sim::Task<void> {
        co_await c.bcast(16, /*root=*/9);
    };
    auto driver = [&m, &body](int rank) -> sim::Task<void> {
        Comm comm(m, rank);
        co_await body(comm);
    };
    m.sim().spawn(driver(0));
    EXPECT_THROW(m.run(), FatalError);
    throwOnError(false);
}

} // namespace
} // namespace ccsim::mpi
