/** @file Unit tests for machine configs, presets, and hw barrier. */

#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "machine/machine_config.hh"
#include "util/logging.hh"

namespace ccsim::machine {
namespace {

using namespace time_literals;
using sim::Task;

TEST(MachineConfig, PresetsValidate)
{
    for (const auto &cfg : paperMachines())
        cfg.validate();
    idealConfig().validate();
}

TEST(MachineConfig, PaperPhysicalParameters)
{
    auto sp2 = sp2Config();
    EXPECT_DOUBLE_EQ(sp2.network.link_bandwidth_mbs, 40.0);
    EXPECT_EQ(sp2.network.hop_latency, nanoseconds(125));
    EXPECT_EQ(sp2.topology, TopologyKind::Omega);

    auto t3d = t3dConfig();
    EXPECT_DOUBLE_EQ(t3d.network.link_bandwidth_mbs, 300.0);
    EXPECT_EQ(t3d.network.hop_latency, nanoseconds(20));
    EXPECT_EQ(t3d.topology, TopologyKind::Torus3D);
    EXPECT_TRUE(t3d.hardware_barrier);
    EXPECT_TRUE(t3d.transport.blt_enabled);

    auto par = paragonConfig();
    EXPECT_DOUBLE_EQ(par.network.link_bandwidth_mbs, 175.0);
    EXPECT_EQ(par.network.hop_latency, nanoseconds(40));
    EXPECT_EQ(par.topology, TopologyKind::Mesh2D);
    EXPECT_GT(par.transport.coprocessor_overlap, 0.5);
}

TEST(MachineConfig, EraAlgorithmDefaults)
{
    auto sp2 = sp2Config();
    EXPECT_EQ(sp2.algorithmFor(Coll::Bcast), Algo::Binomial);
    EXPECT_EQ(sp2.algorithmFor(Coll::Gather), Algo::Linear);
    EXPECT_EQ(sp2.algorithmFor(Coll::Alltoall), Algo::Pairwise);
    EXPECT_EQ(sp2.algorithmFor(Coll::Barrier), Algo::Dissemination);
    EXPECT_EQ(t3dConfig().algorithmFor(Coll::Barrier), Algo::Hardware);
}

TEST(MachineConfig, MakeTopologyMatchesKind)
{
    EXPECT_EQ(sp2Config().makeTopology(64)->numNodes(), 64);
    EXPECT_EQ(t3dConfig().makeTopology(64)->name(), "torus3d 4x4x4");
    EXPECT_EQ(paragonConfig().makeTopology(32)->name(), "mesh2d 4x8");
    // Single node degenerates to the trivial topology everywhere.
    EXPECT_EQ(t3dConfig().makeTopology(1)->numNodes(), 1);
}

TEST(MachineConfig, HardwareAlgoWithoutHardwareIsFatal)
{
    throwOnError(true);
    auto cfg = sp2Config();
    cfg.setAlgorithm(Coll::Barrier, Algo::Hardware);
    EXPECT_THROW(cfg.validate(), FatalError);
    throwOnError(false);
}

TEST(MachineConfig, CollNamesMatchPaperVocabulary)
{
    EXPECT_EQ(collName(Coll::Alltoall), "total exchange");
    EXPECT_EQ(collName(Coll::Bcast), "broadcast");
    EXPECT_EQ(kPaperColls.size(), 7u);
}

TEST(Machine, BuildsAllPresetSizes)
{
    for (const auto &cfg : paperMachines()) {
        for (int p : {2, 4, 8, 16}) {
            Machine m(cfg, p);
            EXPECT_EQ(m.size(), p);
            EXPECT_EQ(m.network().topology().numNodes(), p);
        }
    }
}

TEST(Machine, HwBarrierOnlyWhenConfigured)
{
    Machine t3d(t3dConfig(), 4);
    EXPECT_NE(t3d.hwBarrier(), nullptr);
    Machine sp2(sp2Config(), 4);
    EXPECT_EQ(sp2.hwBarrier(), nullptr);
}

TEST(Machine, ContextRegistryIsDeterministic)
{
    Machine m(idealConfig(), 8);
    std::vector<int> g1{0, 1, 2};
    std::vector<int> g2{3, 4};
    int c1 = m.contextFor(g1);
    int c2 = m.contextFor(g2);
    EXPECT_NE(c1, c2);
    EXPECT_EQ(m.contextFor(g1), c1); // same group -> same context
    EXPECT_NE(c1, 0);                // 0 is the world id
}

TEST(HwBarrier, ReleasesAllAtSameInstant)
{
    Machine m(t3dConfig(), 8);
    std::vector<Time> released(8, -1);
    auto prog = [&](int rank) -> Task<void> {
        co_await m.sim().delay(Time(rank) * US); // staggered arrivals
        co_await m.hwBarrier()->arrive(rank);
        released[static_cast<size_t>(rank)] = m.sim().now();
    };
    for (int r = 0; r < 8; ++r)
        m.sim().spawn(prog(r));
    m.run();
    // Last arrival at 7 us + 3 us hardware latency.
    for (int r = 0; r < 8; ++r)
        EXPECT_EQ(released[static_cast<size_t>(r)], 10 * US) << r;
    EXPECT_EQ(m.hwBarrier()->episodes(), 1u);
}

TEST(HwBarrier, BackToBackEpisodesStayOrdered)
{
    Machine m(t3dConfig(), 4);
    std::vector<int> order;
    auto prog = [&](int rank) -> Task<void> {
        for (int it = 0; it < 5; ++it) {
            co_await m.hwBarrier()->arrive(rank);
            if (rank == 0)
                order.push_back(it);
        }
    };
    for (int r = 0; r < 4; ++r)
        m.sim().spawn(prog(r));
    m.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
    EXPECT_EQ(m.hwBarrier()->episodes(), 5u);
}

TEST(HwBarrier, FastRankCannotCorruptCurrentEpisode)
{
    // Rank 0 races ahead into episode 2 while others are still in
    // episode 1; everyone must still complete both.
    Machine m(t3dConfig(), 4);
    int done = 0;
    auto fast = [&]() -> Task<void> {
        co_await m.hwBarrier()->arrive(0);
        co_await m.hwBarrier()->arrive(0);
        ++done;
    };
    auto slow = [&](int rank) -> Task<void> {
        co_await m.sim().delay(50 * US);
        co_await m.hwBarrier()->arrive(rank);
        co_await m.sim().delay(50 * US);
        co_await m.hwBarrier()->arrive(rank);
        ++done;
    };
    m.sim().spawn(fast());
    m.sim().spawn(slow(1));
    m.sim().spawn(slow(2));
    m.sim().spawn(slow(3));
    m.run();
    EXPECT_EQ(done, 4);
    EXPECT_EQ(m.hwBarrier()->episodes(), 2u);
}

TEST(HwBarrier, SingleRankIsImmediatePlusLatency)
{
    Machine m(t3dConfig(), 1);
    Time when = -1;
    auto prog = [&]() -> Task<void> {
        co_await m.hwBarrier()->arrive(0);
        when = m.sim().now();
    };
    m.sim().spawn(prog());
    m.run();
    EXPECT_EQ(when, microseconds(3));
}

} // namespace
} // namespace ccsim::machine
