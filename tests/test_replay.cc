/** @file Tests for the record/replay subsystem (src/replay/). */

#include <sstream>

#include <gtest/gtest.h>

#include "fault/fault_spec.hh"
#include "machine/machine.hh"
#include "machine/machine_config.hh"
#include "mpi/comm.hh"
#include "replay/recorder.hh"
#include "replay/replayer.hh"
#include "replay/trace_parser.hh"
#include "util/logging.hh"

namespace ccsim::replay {
namespace {

using namespace time_literals;

Program
parseText(const std::string &text, const std::string &name = "t.trace")
{
    std::istringstream is(text);
    return TraceParser::parse(is, name);
}

/** The diagnostic fatal() raises for @p text, or "" if it parses. */
std::string
parseError(const std::string &text)
{
    bool was = throwOnError(true);
    std::string msg;
    try {
        parseText(text);
    } catch (const FatalError &e) {
        msg = e.what();
    }
    throwOnError(was);
    return msg;
}

// ---- parser -----------------------------------------------------------

TEST(TraceParser, ParsesEveryActionKind)
{
    Program p = parseText("# ccsim trace v1\n"
                          "np 4\n"
                          "0 compute 125.5\n"
                          "0 send 1 4096 tag=7\n"
                          "1 recv 0 tag=7\n"
                          "1 isend 2 64\n"
                          "2 irecv -1 tag=-1\n"
                          "1 wait\n"
                          "2 wait\n"
                          "3 sendrecv 0 3 512 stag=1 rtag=2\n"
                          "0 barrier\n"
                          "1 bcast 1024 root=1 algo=binomial\n"
                          "2 gatherv 4,8,12,16 root=2\n"
                          "3 alltoall 65536 group=1,3\n");
    EXPECT_EQ(p.np, 4);
    EXPECT_EQ(p.actions(), 12u);

    const Action &comp = p.ranks[0][0];
    EXPECT_EQ(comp.kind, ActionKind::Compute);
    EXPECT_EQ(comp.duration, 125 * US + 500000);
    EXPECT_EQ(comp.line, 3);

    const Action &send = p.ranks[0][1];
    EXPECT_EQ(send.kind, ActionKind::Send);
    EXPECT_EQ(send.peer, 1);
    EXPECT_EQ(send.tag, 7);
    EXPECT_EQ(send.bytes, 4096);

    const Action &any = p.ranks[2][0];
    EXPECT_EQ(any.kind, ActionKind::Irecv);
    EXPECT_EQ(any.peer, -1);
    EXPECT_EQ(any.tag, -1);

    const Action &sr = p.ranks[3][0];
    EXPECT_EQ(sr.kind, ActionKind::Sendrecv);
    EXPECT_EQ(sr.peer, 0);
    EXPECT_EQ(sr.peer2, 3);
    EXPECT_EQ(sr.tag, 1);
    EXPECT_EQ(sr.tag2, 2);

    const Action &bc = p.ranks[1][3];
    EXPECT_EQ(bc.kind, ActionKind::Coll);
    EXPECT_EQ(bc.op, machine::Coll::Bcast);
    EXPECT_EQ(bc.root, 1);
    EXPECT_EQ(bc.algo, machine::Algo::Binomial);

    const Action &gv = p.ranks[2][2];
    EXPECT_TRUE(gv.vector_variant);
    EXPECT_EQ(gv.counts, (std::vector<Bytes>{4, 8, 12, 16}));

    const Action &sub = p.ranks[3][1];
    EXPECT_EQ(sub.group, (std::vector<int>{1, 3}));
}

TEST(TraceParser, DiagnosticsCarryFileLineAndRank)
{
    // Malformed action.
    std::string e = parseError("np 2\n0 send 1\n");
    EXPECT_NE(e.find("t.trace:2"), std::string::npos) << e;
    EXPECT_NE(e.find("rank 0"), std::string::npos) << e;
    EXPECT_NE(e.find("byte count"), std::string::npos) << e;

    // Unknown collective.
    e = parseError("np 4\n0 compute 1\n3 allsum 64\n");
    EXPECT_NE(e.find("t.trace:3"), std::string::npos) << e;
    EXPECT_NE(e.find("rank 3"), std::string::npos) << e;
    EXPECT_NE(e.find("unknown collective 'allsum'"), std::string::npos)
        << e;

    // Rank outside np.
    e = parseError("np 4\n4 barrier\n");
    EXPECT_NE(e.find("t.trace:2"), std::string::npos) << e;
    EXPECT_NE(e.find("rank count mismatch"), std::string::npos) << e;

    // Vector-collective count list shorter than the communicator.
    e = parseError("np 4\n0 gatherv 8,8\n");
    EXPECT_NE(e.find("t.trace:2"), std::string::npos) << e;
    EXPECT_NE(e.find("rank count mismatch"), std::string::npos) << e;

    // Missing np header.
    e = parseError("0 barrier\n");
    EXPECT_NE(e.find("np directive must precede"), std::string::npos)
        << e;

    // Unknown algorithm, unknown attribute, bad root, non-member
    // group rank.
    EXPECT_NE(parseError("np 2\n0 bcast 8 algo=psychic\n")
                  .find("unknown algorithm 'psychic'"),
              std::string::npos);
    EXPECT_NE(parseError("np 2\n0 bcast 8 color=red\n")
                  .find("unknown attribute 'color'"),
              std::string::npos);
    EXPECT_NE(parseError("np 2\n0 bcast 8 root=5\n").find("root 5"),
              std::string::npos);
    EXPECT_NE(parseError("np 4\n0 barrier group=1,2\n")
                  .find("not a member"),
              std::string::npos);
    EXPECT_NE(parseError("np 2\n0 compute 1.1234567\n")
                  .find("6 fraction digits"),
              std::string::npos);
}

TEST(TraceParser, ExactMicrosecondRoundTrip)
{
    EXPECT_EQ(formatMicrosExact(0), "0");
    EXPECT_EQ(formatMicrosExact(1), "0.000001"); // 1 ps
    EXPECT_EQ(formatMicrosExact(125 * US + 500000), "125.5");
    EXPECT_EQ(formatMicrosExact(3 * US), "3");

    for (Time t : {Time{0}, Time{1}, Time{999999}, 7 * US + 1,
                   123456789 * US + 654321}) {
        Program p = parseText("np 1\n0 compute " +
                              formatMicrosExact(t) + "\n");
        EXPECT_EQ(p.ranks[0][0].duration, t) << t;
    }
}

TEST(TraceParser, WriteParseRoundTripIsExact)
{
    const std::string text = "# ccsim trace v1\n"
                             "np 4\n"
                             "0 compute 125.5\n"
                             "0 isend 1 4096 tag=7\n"
                             "0 wait\n"
                             "1 irecv 0 tag=7\n"
                             "1 wait\n"
                             "1 bcast 1024 root=1 algo=binomial\n"
                             "2 gatherv 4,8,12,16 root=2\n"
                             "3 sendrecv 0 3 512 stag=1 rtag=2\n"
                             "3 alltoall 65536 group=1,3\n";
    Program p = parseText(text);
    std::ostringstream out;
    writeProgram(p, out);
    // writeProgram groups by rank; reparse and rewrite to compare in
    // canonical form.
    Program p2 = parseText(out.str());
    std::ostringstream out2;
    writeProgram(p2, out2);
    EXPECT_EQ(out.str(), out2.str());
    EXPECT_EQ(p2.actions(), p.actions());
}

// ---- record -> replay -------------------------------------------------

/** A little application exercising every action kind, including a
 *  sub-communicator collective. */
sim::Task<void>
appRank(machine::Machine &mach, int rank, std::vector<Time> *done)
{
    mpi::Comm comm(mach, rank);
    int p = comm.size();
    co_await comm.compute((100 + 7 * rank) * US + 123);

    int right = (rank + 1) % p, left = (rank + p - 1) % p;
    auto r = comm.irecv(left, 1);
    auto s = comm.isend(right, 1, 2048);
    co_await comm.wait(r);
    co_await comm.wait(s);
    co_await comm.sendrecv(right, 2, 512, left, 2);

    co_await comm.allreduce(4096);
    std::vector<Bytes> ragged{64, 128, 256, 512};
    co_await comm.gatherv(ragged, 1);

    // Even/odd sub-communicators.
    std::vector<int> members;
    for (int i = rank % 2; i < p; i += 2)
        members.push_back(i);
    mpi::Comm sub = comm.subgroup(members);
    co_await sub.bcast(8192, 0);
    co_await sub.alltoall(256);

    co_await comm.barrier();
    if (done)
        (*done)[static_cast<std::size_t>(rank)] = mach.sim().now();
}

/** Run appRank under a Recorder; returns the trace and the original
 *  per-rank completion times. */
Program
recordApp(const machine::MachineConfig &cfg, int p,
          std::vector<Time> &completion)
{
    machine::Machine mach(cfg, p);
    Recorder rec(p);
    rec.attach(mach);
    completion.assign(static_cast<std::size_t>(p), 0);
    for (int r = 0; r < p; ++r)
        mach.sim().spawn(appRank(mach, r, &completion));
    mach.run();
    return rec.take();
}

TEST(RecordReplay, ReproducesSimulatedTimesByteIdentically)
{
    for (const auto &cfg :
         {machine::sp2Config(), machine::t3dConfig(),
          machine::paragonConfig()}) {
        std::vector<Time> original;
        Program prog = recordApp(cfg, 4, original);
        EXPECT_GT(prog.actions(), 0u);

        // Replay the in-memory recording...
        ReplayResult res = Replayer::run(cfg, prog);
        EXPECT_EQ(res.completion, original) << cfg.name;

        // ...and replay it again through the text format: serialize,
        // reparse, replay.  Still byte-identical.
        std::ostringstream out;
        writeProgram(prog, out);
        std::istringstream in(out.str());
        Program reparsed = TraceParser::parse(in, "roundtrip");
        ReplayResult res2 = Replayer::run(cfg, reparsed);
        EXPECT_EQ(res2.completion, original) << cfg.name;
    }
}

TEST(RecordReplay, SweepIsIdenticalAtAnyJobsLevel)
{
    std::vector<Time> original;
    Program prog = recordApp(machine::t3dConfig(), 4, original);

    std::vector<ReplayPoint> points;
    for (const auto &cfg :
         {machine::sp2Config(), machine::t3dConfig(),
          machine::paragonConfig(), machine::idealConfig()}) {
        for (double scale : {0.5, 1.0, 4.0}) {
            ReplayPoint pt;
            pt.cfg = cfg;
            pt.options.scale = scale;
            points.push_back(pt);
        }
    }

    harness::SweepRunner serial(1), pool(4);
    auto a = replaySweep(prog, points, serial);
    auto b = replaySweep(prog, points, pool);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].completion, b[i].completion) << i;
        EXPECT_EQ(a[i].makespan(), b[i].makespan()) << i;
    }
}

TEST(RecordReplay, DeterministicUnderFixedFaultSeed)
{
    machine::MachineConfig cfg = machine::sp2Config();
    cfg.fault = fault::parseFaultSpec("straggler=0.25,drop=0.02,seed=7");

    std::vector<Time> original;
    Program prog = recordApp(machine::sp2Config(), 4, original);

    ReplayResult a = Replayer::run(cfg, prog);
    ReplayResult b = Replayer::run(cfg, prog);
    EXPECT_EQ(a.completion, b.completion);
    EXPECT_EQ(a.faults.drops, b.faults.drops);
    EXPECT_EQ(a.faults.retransmits, b.faults.retransmits);

    // Faults cost time: the faulty makespan is never faster than the
    // clean one.
    ReplayResult clean = Replayer::run(machine::sp2Config(), prog);
    EXPECT_GE(a.makespan(), clean.makespan());
}

TEST(RecordReplay, CollectsLabelledTraceSpans)
{
    std::vector<Time> original;
    Program prog = recordApp(machine::t3dConfig(), 4, original);

    ReplayOptions opt;
    opt.collect_trace = true;
    ReplayResult res = Replayer::run(machine::t3dConfig(), prog, opt);
    ASSERT_FALSE(res.trace.spans().empty());

    bool saw_allreduce = false, saw_compute = false;
    for (const auto &s : res.trace.spans()) {
        if (s.label == "allreduce")
            saw_allreduce = true;
        if (s.label == "compute")
            saw_compute = true;
    }
    EXPECT_TRUE(saw_allreduce);
    EXPECT_TRUE(saw_compute);

    // Tracing is observational: times match the untraced replay.
    ReplayResult plain = Replayer::run(machine::t3dConfig(), prog);
    EXPECT_EQ(res.completion, plain.completion);
}

TEST(Replayer, ScaleStretchesMessagesOnly)
{
    Program prog = parseText("np 2\n"
                             "0 compute 50\n"
                             "0 send 1 65536\n"
                             "1 recv 0\n");
    ReplayResult one = Replayer::run(machine::t3dConfig(), prog);
    ReplayOptions big;
    big.scale = 8.0;
    ReplayResult eight =
        Replayer::run(machine::t3dConfig(), prog, big);
    EXPECT_GT(eight.makespan(), one.makespan());
    EXPECT_EQ(eight.np, 2);
}

TEST(Replayer, WaitWithoutRequestIsAUserError)
{
    Program prog = parseText("np 1\n0 wait\n");
    bool was = throwOnError(true);
    EXPECT_THROW(Replayer::run(machine::idealConfig(), prog),
                 FatalError);
    throwOnError(was);
}

TEST(Replayer, FifoWaitMatchesOutOfOrderlessPrograms)
{
    // rank 0 posts two irecvs and waits twice; FIFO pairs them with
    // the sends in tag order 1 then 2.
    Program prog = parseText("np 2\n"
                             "0 irecv 1 tag=1\n"
                             "0 irecv 1 tag=2\n"
                             "0 wait\n"
                             "0 wait\n"
                             "1 send 0 1024 tag=1\n"
                             "1 send 0 2048 tag=2\n");
    ReplayResult res = Replayer::run(machine::t3dConfig(), prog);
    EXPECT_GT(res.makespan(), 0);
}

} // namespace
} // namespace ccsim::replay
