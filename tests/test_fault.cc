/** @file Tests for the deterministic fault-injection layer. */

#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault_injector.hh"
#include "fault/fault_report.hh"
#include "fault/fault_spec.hh"
#include "harness/measure.hh"
#include "harness/sweep.hh"
#include "machine/config_io.hh"
#include "machine/machine.hh"
#include "mpi/comm.hh"
#include "util/logging.hh"

namespace ccsim::fault {
namespace {

using namespace time_literals;

class FaultSpecTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        throwOnError(true);
        quietLogging(true);
    }
    void TearDown() override { throwOnError(false); }
};

TEST_F(FaultSpecTest, DefaultSpecIsDisabledAndValid)
{
    FaultSpec f;
    EXPECT_FALSE(f.enabled());
    EXPECT_FALSE(f.lossPossible());
    EXPECT_NO_THROW(f.validate());
}

TEST_F(FaultSpecTest, ValidateRejectsBadFields)
{
    FaultSpec f;
    f.straggler_rate = 1.5;
    EXPECT_THROW(f.validate(), FatalError);

    f = FaultSpec{};
    f.straggler_rate = 0.5;
    f.straggler_factor = 0.5; // < 1: a "straggler" that speeds up
    EXPECT_THROW(f.validate(), FatalError);

    f = FaultSpec{};
    f.link_degrade_rate = 0.1;
    f.link_degrade_factor = 0.0; // infinite slowdown
    EXPECT_THROW(f.validate(), FatalError);

    f = FaultSpec{};
    f.msg_drop_rate = 1.0; // certain loss: no retry can succeed
    EXPECT_THROW(f.validate(), FatalError);

    f = FaultSpec{};
    f.link_blackhole_rate = 0.5;
    f.retry_timeout = 0;
    EXPECT_THROW(f.validate(), FatalError);
}

TEST_F(FaultSpecTest, ParseFaultSpecReadsShortKeys)
{
    FaultSpec f = parseFaultSpec(
        "straggler=0.25,straggler_factor=3,degrade=0.1,"
        "degrade_factor=0.4,drop=0.01,retries=7,timeout_us=50,"
        "backoff=1.5,seed=99");
    EXPECT_DOUBLE_EQ(f.straggler_rate, 0.25);
    EXPECT_DOUBLE_EQ(f.straggler_factor, 3.0);
    EXPECT_DOUBLE_EQ(f.link_degrade_rate, 0.1);
    EXPECT_DOUBLE_EQ(f.link_degrade_factor, 0.4);
    EXPECT_DOUBLE_EQ(f.msg_drop_rate, 0.01);
    EXPECT_EQ(f.retry_budget, 7);
    EXPECT_EQ(f.retry_timeout, 50 * US);
    EXPECT_DOUBLE_EQ(f.retry_backoff, 1.5);
    EXPECT_EQ(f.seed, 99u);
    EXPECT_TRUE(f.enabled());
    EXPECT_TRUE(f.lossPossible());
}

TEST_F(FaultSpecTest, ParseFaultSpecRejectsUnknownKey)
{
    EXPECT_THROW(parseFaultSpec("gremlins=1"), FatalError);
    EXPECT_THROW(parseFaultSpec("straggler"), FatalError);
}

TEST_F(FaultSpecTest, MixSeedIsDeterministicAndSpreads)
{
    EXPECT_EQ(mixSeed(1, 0), mixSeed(1, 0));
    EXPECT_NE(mixSeed(1, 0), mixSeed(1, 1));
    EXPECT_NE(mixSeed(1, 0), mixSeed(2, 0));
}

TEST_F(FaultSpecTest, ConfigRoundTripPreservesFaultBlock)
{
    machine::MachineConfig cfg = machine::sp2Config();
    cfg.fault = parseFaultSpec(
        "straggler=0.125,degrade=0.25,delay=0.5,delay_us=30,seed=77");
    std::ostringstream os;
    machine::saveConfig(cfg, os);
    std::istringstream is(os.str());
    machine::MachineConfig back = machine::loadConfig(is);
    EXPECT_EQ(back.fault.seed, 77u);
    EXPECT_DOUBLE_EQ(back.fault.straggler_rate, 0.125);
    EXPECT_DOUBLE_EQ(back.fault.link_degrade_rate, 0.25);
    EXPECT_DOUBLE_EQ(back.fault.msg_delay_rate, 0.5);
    EXPECT_EQ(back.fault.msg_delay, 30 * US);
}

TEST_F(FaultSpecTest, PristineConfigEmitsNoFaultKeys)
{
    std::ostringstream os;
    machine::saveConfig(machine::t3dConfig(), os);
    EXPECT_EQ(os.str().find("fault."), std::string::npos);
}

TEST_F(FaultSpecTest, InjectorStaticDrawsAreReproducible)
{
    FaultSpec f;
    f.seed = 5;
    f.straggler_rate = 0.5;
    f.link_degrade_rate = 0.5;
    FaultInjector a(f, 16, 40), b(f, 16, 40);
    EXPECT_EQ(a.stragglers(), b.stragglers());
    EXPECT_EQ(a.degradedLinks(), b.degradedLinks());
    for (int n = 0; n < 16; ++n)
        EXPECT_DOUBLE_EQ(a.cpuFactor(n), b.cpuFactor(n));
    EXPECT_GT(a.stragglers(), 0);
    EXPECT_LT(a.stragglers(), 16);
}

TEST_F(FaultSpecTest, StragglerAssignmentIgnoresOtherRates)
{
    // Adding link faults must not reshuffle which nodes straggle:
    // the draws per family are independent streams.
    FaultSpec f;
    f.seed = 5;
    f.straggler_rate = 0.5;
    FaultInjector a(f, 16, 40);
    f.link_degrade_rate = 0.3;
    f.link_blackhole_rate = 0.2;
    FaultInjector b(f, 16, 40);
    for (int n = 0; n < 16; ++n)
        EXPECT_DOUBLE_EQ(a.cpuFactor(n), b.cpuFactor(n));
}

// ---- behavioural tests through the full stack ------------------------

harness::Measurement
measure(const machine::MachineConfig &cfg, int p, machine::Coll op,
        Bytes m)
{
    return harness::measureCollective(cfg, p, op, m);
}

TEST_F(FaultSpecTest, StragglersLengthenSoftwareBarrier)
{
    machine::MachineConfig clean = machine::sp2Config();
    machine::MachineConfig faulty = clean;
    faulty.fault.seed = 3;
    faulty.fault.straggler_rate = 0.5;
    faulty.fault.straggler_factor = 2.0;

    auto base = measure(clean, 8, machine::Coll::Barrier, 0);
    auto slow = measure(faulty, 8, machine::Coll::Barrier, 0);
    // The SP2 barrier is software dissemination (112 us per stage
    // through the straggling CPUs): stragglers must show up.
    EXPECT_GT(slow.max_time, base.max_time);
}

TEST_F(FaultSpecTest, HardwareBarrierIsStragglerImmune)
{
    machine::MachineConfig clean = machine::t3dConfig();
    machine::MachineConfig faulty = clean;
    faulty.fault.seed = 3;
    faulty.fault.straggler_rate = 0.5;
    faulty.fault.straggler_factor = 4.0;

    auto base = measure(clean, 8, machine::Coll::Barrier, 0);
    auto slow = measure(faulty, 8, machine::Coll::Barrier, 0);
    // The T3D barrier is the hardwired AND tree: no software on the
    // critical path, so straggling CPUs change nothing at all.
    EXPECT_EQ(slow.max_time, base.max_time);
}

TEST_F(FaultSpecTest, DegradedLinksSlowBroadcast)
{
    machine::MachineConfig clean = machine::t3dConfig();
    machine::MachineConfig faulty = clean;
    faulty.fault.seed = 1;
    faulty.fault.link_degrade_rate = 1.0; // every link at half rate
    faulty.fault.link_degrade_factor = 0.5;

    auto base = measure(clean, 8, machine::Coll::Bcast, 64 * KiB);
    auto slow = measure(faulty, 8, machine::Coll::Bcast, 64 * KiB);
    EXPECT_GT(slow.max_time, base.max_time);
}

TEST_F(FaultSpecTest, DropsRetryAndComplete)
{
    machine::MachineConfig cfg = machine::sp2Config();
    cfg.fault.seed = 11;
    cfg.fault.msg_drop_rate = 0.2;
    cfg.fault.retry_budget = 16;
    cfg.fault.retry_timeout = 50 * US;

    auto meas = measure(cfg, 8, machine::Coll::Alltoall, 4 * KiB);
    EXPECT_GT(meas.fault_drops, 0u);
    EXPECT_GE(meas.fault_retransmits, meas.fault_drops);

    machine::MachineConfig clean = machine::sp2Config();
    auto base = measure(clean, 8, machine::Coll::Alltoall, 4 * KiB);
    EXPECT_GT(meas.max_time, base.max_time);
}

TEST_F(FaultSpecTest, ExhaustedRetriesRaiseFaultErrorNamingLink)
{
    machine::MachineConfig cfg = machine::t3dConfig();
    cfg.fault.seed = 2;
    cfg.fault.link_blackhole_rate = 1.0; // nothing gets through
    cfg.fault.retry_budget = 1;
    cfg.fault.retry_timeout = 10 * US;

    machine::Machine mach(cfg, 2);
    auto sender = [&]() -> sim::Task<void> {
        mpi::Comm comm(mach, 0);
        co_await comm.send(1, 0, 256);
    };
    auto receiver = [&]() -> sim::Task<void> {
        mpi::Comm comm(mach, 1);
        co_await comm.recv(0, 0);
    };
    mach.sim().spawn(sender());
    mach.sim().spawn(receiver());

    try {
        mach.run();
        FAIL() << "run() should have thrown FaultError";
    } catch (const FaultError &e) {
        EXPECT_EQ(e.src(), 0);
        EXPECT_EQ(e.dst(), 1);
        EXPECT_GE(e.link(), 0); // names the black-holed link
        EXPECT_EQ(e.attempts(), 2); // original + 1 retry
        EXPECT_NE(std::string(e.what()).find("link"),
                  std::string::npos);
    }
    EXPECT_EQ(mach.faultReport().exhausted, 1u);
    EXPECT_GE(mach.faultReport().drops, 2u);
}

TEST_F(FaultSpecTest, SweepIsByteIdenticalAcrossJobCounts)
{
    harness::SweepSpec spec;
    machine::MachineConfig cfg = machine::sp2Config();
    cfg.fault.seed = 21;
    cfg.fault.straggler_rate = 0.3;
    cfg.fault.msg_drop_rate = 0.05;
    cfg.fault.retry_timeout = 50 * US;
    spec.machines = {cfg};
    spec.ops = {machine::Coll::Bcast, machine::Coll::Barrier};
    spec.sizes = {2, 4, 8};
    spec.lengths = {64, 4 * KiB};

    auto points = spec.expand();
    auto serial = harness::SweepRunner(1).run(points);
    auto parallel = harness::SweepRunner(4).run(points);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].max_time, parallel[i].max_time) << i;
        EXPECT_EQ(serial[i].min_time, parallel[i].min_time) << i;
        EXPECT_EQ(serial[i].mean_time, parallel[i].mean_time) << i;
        EXPECT_EQ(serial[i].fault_drops, parallel[i].fault_drops) << i;
        EXPECT_EQ(serial[i].fault_retransmits,
                  parallel[i].fault_retransmits) << i;
    }
}

TEST_F(FaultSpecTest, SweepPointsGetDistinctFaultUniverses)
{
    harness::SweepSpec spec;
    machine::MachineConfig cfg = machine::sp2Config();
    cfg.fault.seed = 21;
    cfg.fault.straggler_rate = 0.3;
    spec.machines = {cfg};
    spec.ops = {machine::Coll::Barrier};
    spec.sizes = {8, 8, 8}; // same point three times
    spec.lengths = {64};

    auto points = spec.expand();
    ASSERT_EQ(points.size(), 3u);
    EXPECT_NE(points[0].cfg.fault.seed, points[1].cfg.fault.seed);
    EXPECT_NE(points[1].cfg.fault.seed, points[2].cfg.fault.seed);
}

TEST_F(FaultSpecTest, DisabledFaultsLeaveTimingUntouched)
{
    // A constructed-but-disabled spec must not perturb anything:
    // the fault layer's no-op path is the byte-identity guarantee.
    machine::MachineConfig a = machine::paragonConfig();
    machine::MachineConfig b = machine::paragonConfig();
    b.fault.seed = 999; // differs, but all rates are zero
    auto ma = measure(a, 8, machine::Coll::Alltoall, 4 * KiB);
    auto mb = measure(b, 8, machine::Coll::Alltoall, 4 * KiB);
    EXPECT_EQ(ma.max_time, mb.max_time);
    EXPECT_EQ(mb.fault_drops, 0u);
}

} // namespace
} // namespace ccsim::fault
