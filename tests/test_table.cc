/** @file Unit tests for table/CSV rendering. */

#include <sstream>

#include <gtest/gtest.h>

#include "util/csv.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace ccsim {
namespace {

TEST(Table, EmptyPrintsNothing)
{
    TableWriter t;
    EXPECT_EQ(t.str(), "");
}

TEST(Table, HeaderAndAlignment)
{
    TableWriter t;
    t.header({"op", "time"});
    t.row({"bcast", "150"});
    t.row({"alltoall", "1700"});
    std::string out = t.str();
    // Text columns left-aligned, numeric right-aligned.
    EXPECT_NE(out.find("op        time"), std::string::npos);
    EXPECT_NE(out.find("bcast      150"), std::string::npos);
    EXPECT_NE(out.find("alltoall  1700"), std::string::npos);
}

TEST(Table, SeparatorRow)
{
    TableWriter t;
    t.header({"a"});
    t.row({"x"});
    t.separator();
    t.row({"y"});
    std::string out = t.str();
    // Header separator + explicit separator.
    int dashes = 0;
    std::istringstream iss(out);
    std::string line;
    while (std::getline(iss, line))
        if (!line.empty() && line.find_first_not_of('-') == std::string::npos)
            ++dashes;
    EXPECT_EQ(dashes, 2);
}

TEST(Table, RowCountExcludesSeparators)
{
    TableWriter t;
    t.header({"a"});
    t.row({"x"});
    t.separator();
    t.row({"y"});
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, MismatchedColumnsPanics)
{
    throwOnError(true);
    TableWriter t;
    t.header({"a", "b"});
    EXPECT_THROW(t.row({"only-one"}), PanicError);
    throwOnError(false);
}

TEST(Table, FormatG)
{
    EXPECT_EQ(formatG(1.745), "1.745");
    EXPECT_EQ(formatG(0.0001234, 3), "0.000123");
    EXPECT_EQ(formatG(1234567.0, 3), "1.23e+06");
}

TEST(Table, FormatF)
{
    EXPECT_EQ(formatF(3.14159, 2), "3.14");
    EXPECT_EQ(formatF(-1.0, 1), "-1.0");
    EXPECT_EQ(formatF(2.0, 0), "2");
}

TEST(Csv, PlainRow)
{
    std::ostringstream oss;
    CsvWriter w(oss);
    w.row({"a", "b", "1"});
    EXPECT_EQ(oss.str(), "a,b,1\n");
}

TEST(Csv, EscapesCommasAndQuotes)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, MultipleRows)
{
    std::ostringstream oss;
    CsvWriter w(oss);
    w.row({"m", "p", "t_us"});
    w.row({"1024", "32", "316.5"});
    EXPECT_EQ(oss.str(), "m,p,t_us\n1024,32,316.5\n");
}

} // namespace
} // namespace ccsim
