/**
 * @file
 * Algorithm-equivalence fuzzing: random (operation, machine,
 * communicator size, element count, root, algorithm) draws, each
 * executed with real payloads and checked against a locally-computed
 * reference result.  Seeds are fixed, so failures are reproducible;
 * the draw loop gives breadth no hand-written case list reaches.
 */

#include <cstdint>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "mpi/comm.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace ccsim::mpi {
namespace {

using machine::Algo;
using machine::Coll;
using machine::Machine;
using Body = std::function<sim::Task<void>(Comm &)>;

void
runProgram(Machine &m, const Body &body)
{
    auto driver = [&m, &body](int rank) -> sim::Task<void> {
        Comm comm(m, rank);
        co_await body(comm);
    };
    for (int r = 0; r < m.size(); ++r)
        m.sim().spawn(driver(r));
    m.run();
}

/** Deterministic contribution of (rank, element). */
std::int64_t
value(int rank, int j, std::uint64_t salt)
{
    return static_cast<std::int64_t>((rank + 1) * 37 + j * 11 +
                                     static_cast<int>(salt % 97)) -
           50;
}

struct Draw
{
    Coll op;
    Algo algo;
    int p;
    int count;
    int root;
    std::uint64_t salt;
    int machine_idx;
};

Draw
randomDraw(Rng &rng)
{
    struct Option
    {
        Coll op;
        std::vector<Algo> algos;
    };
    static const std::vector<Option> options = {
        {Coll::Bcast,
         {Algo::Linear, Algo::Binomial, Algo::ScatterAllgather,
          Algo::Pipelined}},
        {Coll::Gather, {Algo::Linear, Algo::Binomial}},
        {Coll::Scatter, {Algo::Linear, Algo::Binomial}},
        {Coll::Allgather, {Algo::Ring, Algo::RecursiveDoubling}},
        {Coll::Alltoall, {Algo::Linear, Algo::Pairwise, Algo::Bruck}},
        {Coll::Reduce, {Algo::Linear, Algo::Binomial}},
        {Coll::Allreduce,
         {Algo::ReduceBcast, Algo::RecursiveDoubling,
          Algo::Rabenseifner}},
        {Coll::ReduceScatter,
         {Algo::Linear, Algo::RecursiveHalving, Algo::Pairwise}},
        {Coll::Scan, {Algo::Linear, Algo::RecursiveDoubling}},
    };
    const Option &opt =
        options[rng.nextBounded(options.size())];
    Draw d;
    d.op = opt.op;
    d.algo = opt.algos[rng.nextBounded(opt.algos.size())];
    d.p = static_cast<int>(1 + rng.nextBounded(12)); // 1..12
    d.count = static_cast<int>(1 + rng.nextBounded(8));
    d.root = static_cast<int>(rng.nextBounded(
        static_cast<std::uint64_t>(d.p)));
    d.salt = rng.next();
    d.machine_idx = static_cast<int>(rng.nextBounded(2));
    return d;
}

/** Execute one draw and verify against a reference computation. */
void
checkDraw(const Draw &d)
{
    // Mesh/torus presets need power-of-two p; use ideal and T3D
    // (T3D only when p is a power of two).
    machine::MachineConfig cfg = machine::idealConfig();
    if (d.machine_idx == 1 && (d.p & (d.p - 1)) == 0)
        cfg = machine::t3dConfig();
    Machine m(cfg, d.p);

    int p = d.p;
    int n = d.count;
    SCOPED_TRACE(machine::collName(d.op) + "/" +
                 machine::algoName(d.algo) + " p=" + std::to_string(p) +
                 " n=" + std::to_string(n) +
                 " root=" + std::to_string(d.root) + " on " + cfg.name);

    Body body = [&](Comm &c) -> sim::Task<void> {
        int rank = c.rank();
        switch (d.op) {
          case Coll::Bcast: {
              std::vector<std::int64_t> v(static_cast<size_t>(n));
              for (int j = 0; j < n; ++j)
                  v[static_cast<size_t>(j)] = value(d.root, j, d.salt);
              auto in = rank == d.root
                            ? v
                            : std::vector<std::int64_t>(
                                  static_cast<size_t>(n), 0);
              auto out = co_await c.bcastData(in, d.root, d.algo);
              EXPECT_EQ(out, v);
              break;
          }
          case Coll::Gather: {
              std::vector<std::int64_t> mine(static_cast<size_t>(n));
              for (int j = 0; j < n; ++j)
                  mine[static_cast<size_t>(j)] = value(rank, j, d.salt);
              auto out = co_await c.gatherData(mine, d.root, d.algo);
              if (rank == d.root) {
                  EXPECT_EQ(out.size(),
                            static_cast<size_t>(n) * p);
                  bool ok = true;
                  for (int r = 0; r < p; ++r)
                      for (int j = 0; j < n; ++j)
                          ok = ok &&
                               out[static_cast<size_t>(r * n + j)] ==
                                   value(r, j, d.salt);
                  EXPECT_TRUE(ok);
              }
              break;
          }
          case Coll::Scatter: {
              std::vector<std::int64_t> all;
              for (int r = 0; r < p; ++r)
                  for (int j = 0; j < n; ++j)
                      all.push_back(value(r, j, d.salt));
              std::vector<std::int64_t> in;
              if (rank == d.root)
                  in = all;
              auto out =
                  co_await c.scatterData(in, n, d.root, d.algo);
              bool ok = out.size() == static_cast<size_t>(n);
              for (int j = 0; ok && j < n; ++j)
                  ok = out[static_cast<size_t>(j)] ==
                       value(rank, j, d.salt);
              EXPECT_TRUE(ok);
              break;
          }
          case Coll::Allgather: {
              std::vector<std::int64_t> mine(static_cast<size_t>(n));
              for (int j = 0; j < n; ++j)
                  mine[static_cast<size_t>(j)] = value(rank, j, d.salt);
              auto out = co_await c.allgatherData(mine, d.algo);
              bool ok = out.size() == static_cast<size_t>(n) * p;
              for (int r = 0; ok && r < p; ++r)
                  for (int j = 0; ok && j < n; ++j)
                      ok = out[static_cast<size_t>(r * n + j)] ==
                           value(r, j, d.salt);
              EXPECT_TRUE(ok);
              break;
          }
          case Coll::Alltoall: {
              std::vector<std::int64_t> mine;
              for (int dst = 0; dst < p; ++dst)
                  for (int j = 0; j < n; ++j)
                      mine.push_back(value(rank, j, d.salt) * 1000 +
                                     dst);
              auto out = co_await c.alltoallData(mine, d.algo);
              bool ok = out.size() == static_cast<size_t>(n) * p;
              for (int src = 0; ok && src < p; ++src)
                  for (int j = 0; ok && j < n; ++j)
                      ok = out[static_cast<size_t>(src * n + j)] ==
                           value(src, j, d.salt) * 1000 + rank;
              EXPECT_TRUE(ok);
              break;
          }
          case Coll::Reduce:
          case Coll::Allreduce: {
              std::vector<std::int64_t> mine(static_cast<size_t>(n));
              for (int j = 0; j < n; ++j)
                  mine[static_cast<size_t>(j)] = value(rank, j, d.salt);
              std::vector<std::int64_t> expect(
                  static_cast<size_t>(n), 0);
              for (int r = 0; r < p; ++r)
                  for (int j = 0; j < n; ++j)
                      expect[static_cast<size_t>(j)] +=
                          value(r, j, d.salt);
              if (d.op == Coll::Reduce) {
                  auto out = co_await c.reduceData(
                      mine, ReduceOp::Sum, d.root, d.algo);
                  if (rank == d.root) {
                      EXPECT_EQ(out, expect);
                  }
              } else {
                  auto out = co_await c.allreduceData(
                      mine, ReduceOp::Sum, d.algo);
                  EXPECT_EQ(out, expect);
              }
              break;
          }
          case Coll::ReduceScatter: {
              std::vector<std::int64_t> mine;
              for (int b = 0; b < p; ++b)
                  for (int j = 0; j < n; ++j)
                      mine.push_back(value(rank, b * n + j, d.salt));
              auto out = co_await c.reduceScatterData(
                  mine, ReduceOp::Sum, d.algo);
              bool ok = out.size() == static_cast<size_t>(n);
              for (int j = 0; ok && j < n; ++j) {
                  std::int64_t e = 0;
                  for (int r = 0; r < p; ++r)
                      e += value(r, rank * n + j, d.salt);
                  ok = out[static_cast<size_t>(j)] == e;
              }
              EXPECT_TRUE(ok);
              break;
          }
          case Coll::Scan: {
              std::vector<std::int64_t> mine(static_cast<size_t>(n));
              for (int j = 0; j < n; ++j)
                  mine[static_cast<size_t>(j)] = value(rank, j, d.salt);
              auto out =
                  co_await c.scanData(mine, ReduceOp::Sum, d.algo);
              bool ok = out.size() == static_cast<size_t>(n);
              for (int j = 0; ok && j < n; ++j) {
                  std::int64_t e = 0;
                  for (int r = 0; r <= rank; ++r)
                      e += value(r, j, d.salt);
                  ok = out[static_cast<size_t>(j)] == e;
              }
              EXPECT_TRUE(ok);
              break;
          }
          default:
            break;
        }
    };
    runProgram(m, body);
}

class FuzzP : public ::testing::TestWithParam<std::uint64_t>
{
};

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzP,
                         ::testing::Values(11u, 22u, 33u, 44u));

TEST_P(FuzzP, RandomDrawsMatchReference)
{
    Rng rng(GetParam());
    for (int i = 0; i < 40; ++i)
        checkDraw(randomDraw(rng));
}

} // namespace
} // namespace ccsim::mpi
