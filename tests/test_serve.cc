/**
 * @file
 * The prediction service: protocol strictness (malformed queries are
 * typed error responses, never dropped connections), cache-hit
 * byte-identity with direct simulation, fast-tier tolerance against
 * the exact tier, ticketed backfill, and concurrent-client
 * determinism at different --jobs levels.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "harness/measure.hh"
#include "machine/config_io.hh"
#include "serve/backfill.hh"
#include "serve/cache.hh"
#include "serve/client.hh"
#include "serve/fastpath.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"

namespace ccsim::serve {
namespace {

// ---- protocol ------------------------------------------------------

TEST(ServeProtocol, ParsesAFullPredictRequest)
{
    Request r = parseRequest(
        "predict machine=SP2 op=bcast p=16 m=4096 algo=binomial "
        "tier=exact wait=ticket");
    EXPECT_EQ(r.verb, Verb::Predict);
    EXPECT_EQ(r.machine, "SP2");
    EXPECT_EQ(r.op, machine::Coll::Bcast);
    EXPECT_EQ(r.p, 16);
    EXPECT_EQ(r.m, 4096);
    EXPECT_EQ(r.algo, machine::Algo::Binomial);
    EXPECT_EQ(r.tier, TierChoice::Exact);
    EXPECT_EQ(r.wait, WaitMode::Ticket);
}

TEST(ServeProtocol, RoundTripsThroughFormat)
{
    Request r;
    r.verb = Verb::Predict;
    r.machine = "Paragon";
    r.selection = "Paragon";
    r.op = machine::Coll::Alltoall;
    r.p = 32;
    r.m = 65536;
    r.has_m = true;
    r.tier = TierChoice::Fast;

    Request back = parseRequest(formatRequest(r));
    EXPECT_EQ(back.machine, r.machine);
    EXPECT_EQ(back.selection, r.selection);
    EXPECT_EQ(back.op, r.op);
    EXPECT_EQ(back.p, r.p);
    EXPECT_EQ(back.m, r.m);
    EXPECT_EQ(back.tier, r.tier);
}

TEST(ServeProtocol, BarrierNeedsNoMessageLength)
{
    Request r = parseRequest("predict machine=T3D op=barrier p=8");
    EXPECT_EQ(r.op, machine::Coll::Barrier);
    EXPECT_EQ(r.m, 0);
}

TEST(ServeProtocol, MalformedRequestsRaiseConfigError)
{
    // Every protocol mistake is machine::ConfigError (exit code 5),
    // so the server can answer with a typed error response.
    const char *bad[] = {
        "",                                  // empty
        "frobnicate p=4",                    // unknown verb
        "predict op=bcast p=4",              // missing m
        "predict machine=T3D op=bcast m=64", // missing p
        "predict machine=T3D op=nosuch p=4 m=64",  // unknown op
        "predict machine=T3D op=bcast p=zero m=64", // bad int
        "predict machine=T3D op=bcast p=4 m=64 tier=soon",
        "predict machine=T3D op=bcast p=4 m=64 color=red",
        "poll",                              // missing ticket
        "ping p=4",                          // keys on a bare verb
    };
    for (const char *line : bad) {
        try {
            parseRequest(line);
            FAIL() << "no error for: " << line;
        } catch (const machine::ConfigError &e) {
            EXPECT_EQ(e.exitCode(), kConfigExit) << line;
            EXPECT_EQ(e.component(), "config") << line;
        }
    }
}

TEST(ServeProtocol, DeadlineParsesAndRoundTrips)
{
    Request r = parseRequest(
        "predict machine=T3D op=bcast p=8 m=64 deadline_ms=250");
    EXPECT_EQ(r.deadline_ms, 250);
    Request back = parseRequest(formatRequest(r));
    EXPECT_EQ(back.deadline_ms, 250);
    EXPECT_THROW(
        parseRequest(
            "predict machine=T3D op=bcast p=8 m=64 deadline_ms=-1"),
        machine::ConfigError);
}

TEST(ServeProtocol, HealthIsABareVerb)
{
    EXPECT_EQ(parseRequest("health").verb, Verb::Health);
    EXPECT_THROW(parseRequest("health p=4"), machine::ConfigError);
    Request r;
    r.verb = Verb::Health;
    EXPECT_EQ(formatRequest(r), "health");
}

TEST(ServeProtocol, ShedIsOnTheWireOnlyWhenSet)
{
    Answer a;
    a.machine = "T3D";
    EXPECT_EQ(okResponse(a).find("\"shed\""), std::string::npos);
    a.shed = true;
    EXPECT_NE(okResponse(a).find("\"shed\":true"),
              std::string::npos);
}

// ---- the brain (handleLine, no sockets) ----------------------------

TEST(ServeServer, MalformedQueryGetsTypedErrorResponse)
{
    Server server;
    std::string resp = server.handleLine("predict op=bcast");
    EXPECT_EQ(resp.rfind("{\"status\":\"error\"", 0), 0u) << resp;
    EXPECT_NE(resp.find("\"component\":\"config\""), std::string::npos);
    EXPECT_NE(resp.find("\"exit_code\":5"), std::string::npos);

    // The brain keeps serving after a protocol error.
    EXPECT_EQ(server.handleLine("ping"), pongResponse());
}

TEST(ServeServer, CacheHitIsByteIdenticalToDirectSimulation)
{
    Server server;
    const std::string q =
        "predict machine=T3D op=bcast p=8 m=1024 tier=exact";

    std::string first = server.handleLine(q);
    std::string second = server.handleLine(q);

    // Same point, simulated directly with the same procedure the
    // exact tier uses (the CLI's defaults).
    auto meas = harness::measureCollective(
        *machine::sharedPreset("T3D"), 8, machine::Coll::Bcast, 1024);

    EXPECT_EQ(first, okResponse(Answer::of(meas, AnswerTier::Exact)));
    EXPECT_EQ(second, okResponse(Answer::of(meas, AnswerTier::Cache)));
}

TEST(ServeServer, AutoAlgoSharesTheCacheEntryWithItsExplicitTwin)
{
    Server server;
    // T3D bcast resolves Algo::Auto to the machine default
    // (binomial); the explicit spelling must hit the same entry.
    std::string implicit = server.handleLine(
        "predict machine=T3D op=bcast p=8 m=512 tier=exact");
    std::string explicit_twin = server.handleLine(
        "predict machine=T3D op=bcast p=8 m=512 algo=binomial "
        "tier=exact");
    EXPECT_NE(implicit.find("\"tier\":\"exact\""), std::string::npos);
    EXPECT_NE(explicit_twin.find("\"tier\":\"cache\""),
              std::string::npos)
        << "second spelling should have hit the cache";
}

TEST(ServeServer, FastTierTracksExactWithinTolerance)
{
    Server server;
    auto cfg = machine::sharedPreset("T3D");
    // Points inside the calibration envelope (p <= 32, m <= 64 KiB)
    // but not on the calibration grid.
    struct Point
    {
        machine::Coll op;
        int p;
        Bytes m;
    } points[] = {
        {machine::Coll::Bcast, 16, 2048},
        {machine::Coll::Alltoall, 8, 8192},
        {machine::Coll::Reduce, 16, 512},
    };
    for (const auto &pt : points) {
        double fast = server.fastPath().predictUs(
            *cfg, pt.op, machine::Algo::Auto, pt.p, pt.m);
        auto exact =
            harness::measureCollective(*cfg, pt.p, pt.op, pt.m);
        // The documented envelope: within a factor of two across the
        // calibration region (in practice a few percent).
        EXPECT_GT(fast, exact.us() / 2.0)
            << collName(pt.op) << " p=" << pt.p << " m=" << pt.m;
        EXPECT_LT(fast, exact.us() * 2.0)
            << collName(pt.op) << " p=" << pt.p << " m=" << pt.m;
    }
}

TEST(ServeServer, TicketFlowDeliversTheExactAnswer)
{
    Server server;
    std::string pending = server.handleLine(
        "predict machine=SP2 op=barrier p=8 tier=exact wait=ticket");
    ASSERT_EQ(pending.rfind("{\"status\":\"pending\",\"ticket\":", 0),
              0u)
        << pending;
    std::uint64_t ticket = std::stoull(
        pending.substr(pending.rfind(':') + 1));

    server.backfill().drain();
    std::string resp =
        server.handleLine("poll ticket=" + std::to_string(ticket));
    EXPECT_NE(resp.find("\"tier\":\"exact\""), std::string::npos)
        << resp;

    // A consumed (or never issued) ticket is a typed error.
    std::string again =
        server.handleLine("poll ticket=" + std::to_string(ticket));
    EXPECT_NE(again.find("\"status\":\"error\""), std::string::npos);
    EXPECT_NE(again.find("\"component\":\"serve\""),
              std::string::npos);
}

TEST(ServeServer, MetricsCountPerTierHits)
{
    Server server;
    server.handleLine(
        "predict machine=T3D op=barrier p=4 tier=exact");
    server.handleLine(
        "predict machine=T3D op=barrier p=4 tier=exact"); // cache
    server.handleLine(
        "predict machine=T3D op=barrier p=4 tier=fast"); // cache too
    auto snap = server.metricsSnapshot();
    EXPECT_EQ(snap.counters.at("serve.tier_exact"), 1u);
    EXPECT_EQ(snap.counters.at("serve.tier_cache"), 2u);
    EXPECT_EQ(snap.counters.at("serve.requests"), 3u);
    EXPECT_GE(snap.gauges.at("serve.request_us_p99"),
              snap.gauges.at("serve.request_us_p50"));
}

TEST(ServeBackfill, CoalescesDuplicateKeysIntoOneSimulation)
{
    QueryCache cache;
    BackfillQueue queue(cache, 1);

    // Keep the single worker busy on a slow point first so the two
    // duplicate submissions below are both pending at once — without
    // it, the tiny p=4 barrier can finish between the two submit()
    // calls and there is nothing left to coalesce onto.
    BackfillJob slow;
    slow.cfg = machine::sharedPreset("T3D");
    slow.p = 32;
    slow.op = machine::Coll::Alltoall;
    slow.m = 4096;
    slow.algo = machine::Algo::Default;
    slow.key = harness::measurePointKey(*slow.cfg, 32,
                                        machine::Coll::Alltoall, 4096,
                                        machine::Algo::Default);
    std::uint64_t ts = queue.submit(slow);

    BackfillJob job;
    job.cfg = machine::sharedPreset("T3D");
    job.p = 4;
    job.op = machine::Coll::Barrier;
    job.algo = machine::Algo::Default;
    job.key = harness::measurePointKey(*job.cfg, 4,
                                       machine::Coll::Barrier, 0,
                                       machine::Algo::Default);

    std::uint64_t t1 = queue.submit(job);
    std::uint64_t t2 = queue.submit(job);
    EXPECT_FALSE(queue.wait(ts).failed);
    BackfillResult r1 = queue.wait(t1);
    BackfillResult r2 = queue.wait(t2);
    EXPECT_FALSE(r1.failed);
    EXPECT_EQ(r1.meas.max_time, r2.meas.max_time);
    EXPECT_GE(queue.coalesced(), 1u);
    EXPECT_TRUE(cache.contains(job.key));
}

// ---- hardening: LRU bound, persistence, shedding, health -----------

/** A fabricated-but-well-formed cache value (real measurements are
 *  not needed to exercise the store itself). */
harness::Measurement
syntheticPoint(int p, Bytes m, Time t)
{
    harness::Measurement meas;
    meas.machine = "T3D";
    meas.op = machine::Coll::Bcast;
    meas.algo = machine::Algo::Binomial;
    meas.p = p;
    meas.m = m;
    meas.max_time = t;
    meas.min_time = t / 2;
    meas.mean_time = (t + t / 2) / 2;
    return meas;
}

TEST(ServeCache, LruBoundEvictsTheLeastRecentlyAnsweredEntry)
{
    QueryCache cache;
    cache.setMaxEntries(2);
    cache.insert("a", syntheticPoint(4, 64, 1000));
    cache.insert("b", syntheticPoint(8, 64, 2000));

    harness::Measurement out;
    ASSERT_TRUE(cache.lookup("a", out)); // "a" is hot again
    cache.insert("c", syntheticPoint(16, 64, 3000));

    EXPECT_TRUE(cache.contains("a"));
    EXPECT_FALSE(cache.contains("b")) << "b was the coldest entry";
    EXPECT_TRUE(cache.contains("c"));
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ServeCache, ShrinkingTheBoundEvictsImmediately)
{
    QueryCache cache;
    for (int i = 0; i < 4; ++i)
        cache.insert("k" + std::to_string(i),
                     syntheticPoint(4, 64, 1000 + i));
    cache.setMaxEntries(1);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_TRUE(cache.contains("k3")) << "hottest entry survives";
    EXPECT_EQ(cache.stats().evictions, 3u);
}

TEST(ServeCache, SaveLoadRoundTripsEveryField)
{
    const std::string path = "/tmp/ccsim_cache_roundtrip.txt";
    std::remove(path.c_str());

    QueryCache cache;
    harness::Measurement in = syntheticPoint(8, 4096, 123456789);
    cache.insert("point-a", in);
    cache.insert("point-b", syntheticPoint(16, 64, 777));
    EXPECT_EQ(cache.saveFile(path), 2u);

    QueryCache fresh;
    EXPECT_EQ(fresh.loadFile(path), 2u);
    harness::Measurement out;
    ASSERT_TRUE(fresh.lookup("point-a", out));
    EXPECT_EQ(out.machine, in.machine);
    EXPECT_EQ(out.op, in.op);
    EXPECT_EQ(out.algo, in.algo);
    EXPECT_EQ(out.p, in.p);
    EXPECT_EQ(out.m, in.m);
    EXPECT_EQ(out.max_time, in.max_time);
    EXPECT_EQ(out.min_time, in.min_time);
    EXPECT_EQ(out.mean_time, in.mean_time);
    std::remove(path.c_str());
}

TEST(ServeCache, BoundedReloadKeepsTheHottestEntries)
{
    const std::string path = "/tmp/ccsim_cache_bounded.txt";
    std::remove(path.c_str());

    QueryCache cache;
    cache.insert("cold", syntheticPoint(4, 64, 1));
    cache.insert("warm", syntheticPoint(8, 64, 2));
    cache.insert("hot", syntheticPoint(16, 64, 3));
    cache.saveFile(path); // written hottest first

    QueryCache fresh;
    fresh.setMaxEntries(2);
    fresh.loadFile(path); // replayed oldest first into the bound
    EXPECT_TRUE(fresh.contains("hot"));
    EXPECT_TRUE(fresh.contains("warm"));
    EXPECT_FALSE(fresh.contains("cold"));
    std::remove(path.c_str());
}

TEST(ServeCache, MissingFileLoadsNothingAndGarbageIsAConfigError)
{
    QueryCache cache;
    EXPECT_EQ(cache.loadFile("/tmp/ccsim_no_such_cache_file"), 0u);
    EXPECT_EQ(cache.size(), 0u);

    const std::string path = "/tmp/ccsim_cache_garbage.txt";
    {
        std::ofstream f(path);
        f << "not a cache file\n";
    }
    EXPECT_THROW(cache.loadFile(path), machine::ConfigError);
    std::remove(path.c_str());
}

/** A backfill job for one point on @p cfg. */
BackfillJob
jobFor(const machine::ConfigHandle &cfg, machine::Coll op, int p,
       Bytes m)
{
    BackfillJob job;
    job.cfg = cfg;
    job.p = p;
    job.op = op;
    job.m = m;
    job.key = harness::measurePointKey(*cfg, p, op, m,
                                       machine::Algo::Default);
    return job;
}

TEST(ServeBackfill, AStoppedQueueShedsInsteadOfAccepting)
{
    QueryCache cache;
    BackfillQueue queue(cache, 1);
    queue.stop();

    std::uint64_t ticket = 0;
    BackfillJob job = jobFor(machine::sharedPreset("T3D"),
                             machine::Coll::Barrier, 4, 0);
    EXPECT_FALSE(queue.trySubmit(job, ticket));
    EXPECT_EQ(queue.shed(), 1u);
}

TEST(ServeBackfill, TheBoundShedsNewKeysButStillCoalescesLiveOnes)
{
    QueryCache cache;
    BackfillQueue queue(cache, 1);
    auto cfg = machine::sharedPreset("T3D");

    // A heavy point occupies the single-threaded runner; until it
    // completes, everything below queues up behind it, so the bound
    // arithmetic is deterministic.
    std::uint64_t slow_ticket =
        queue.submit(jobFor(cfg, machine::Coll::Alltoall, 32,
                            64 * 1024));
    while (queue.queueDepth() > 0) // until the collector owns it
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    queue.setMaxPending(1);
    BackfillJob filler = jobFor(cfg, machine::Coll::Bcast, 4, 64);
    BackfillJob extra = jobFor(cfg, machine::Coll::Reduce, 4, 64);
    std::uint64_t t1 = 0, t2 = 0, t3 = 0;
    EXPECT_TRUE(queue.trySubmit(filler, t1)); // fills the bound
    EXPECT_FALSE(queue.trySubmit(extra, t2)); // new key: shed
    EXPECT_TRUE(queue.trySubmit(filler, t3)); // live key: coalesced
    EXPECT_EQ(queue.shed(), 1u);
    EXPECT_GE(queue.coalesced(), 1u);

    // Shedding never strands the work that WAS accepted.
    EXPECT_FALSE(queue.wait(slow_ticket).failed);
    BackfillResult r1 = queue.wait(t1);
    BackfillResult r3 = queue.wait(t3);
    EXPECT_FALSE(r1.failed);
    EXPECT_EQ(r1.meas.max_time, r3.meas.max_time);
}

TEST(ServeServer, HealthVerbReportsDaemonState)
{
    ServerOptions opts;
    opts.cache_max = 128;
    opts.backfill_max = 7;
    Server server(opts);

    std::string h = server.handleLine("health");
    EXPECT_EQ(h.rfind("{\"status\":\"ok\",\"health\":\"ok\"", 0), 0u)
        << h;
    EXPECT_NE(h.find("\"cache_size\":0"), std::string::npos) << h;
    EXPECT_NE(h.find("\"cache_max\":128"), std::string::npos);
    EXPECT_NE(h.find("\"backfill_max\":7"), std::string::npos);
    EXPECT_NE(h.find("\"shed\":0"), std::string::npos);
    EXPECT_NE(h.find("\"deadline_missed\":0"), std::string::npos);

    server.handleLine(
        "predict machine=T3D op=barrier p=4 tier=exact");
    std::string after = server.handleLine("health");
    EXPECT_NE(after.find("\"cache_size\":1"), std::string::npos)
        << after;
}

TEST(ServeServer, AMissedDeadlineDowngradesToAShedFastAnswer)
{
    Server server;
    // Far too heavy a point for a 1 ms deadline: the caller gets a
    // fast-tier estimate flagged as shed instead of blocking.
    std::string resp = server.handleLine(
        "predict machine=Paragon op=alltoall p=32 m=65536 tier=exact "
        "deadline_ms=1");
    EXPECT_NE(resp.find("\"tier\":\"fast\""), std::string::npos)
        << resp;
    EXPECT_NE(resp.find("\"shed\":true"), std::string::npos) << resp;
    auto snap = server.metricsSnapshot();
    EXPECT_EQ(snap.counters.at("serve.deadline_missed"), 1u);

    // The abandoned simulation still completes and feeds the cache,
    // so the same query later is exact and instantaneous.
    server.backfill().drain();
    std::string again = server.handleLine(
        "predict machine=Paragon op=alltoall p=32 m=65536 tier=exact");
    EXPECT_NE(again.find("\"tier\":\"cache\""), std::string::npos)
        << again;
    EXPECT_EQ(again.find("\"shed\""), std::string::npos) << again;
}

TEST(ServeServer, AFullBackfillQueueShedsToTheFastTier)
{
    ServerOptions opts;
    opts.backfill_max = 1;
    Server server(opts);

    // Occupy the runner with a heavy ticketed point (one no other
    // test simulates, so the harness-level memo cannot shortcut it)…
    server.handleLine(
        "predict machine=SP2 op=alltoall p=32 m=65536 tier=exact "
        "wait=ticket");
    while (server.backfill().queueDepth() > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    // ...fill the single queue slot behind it...
    server.handleLine(
        "predict machine=T3D op=bcast p=8 m=256 tier=exact "
        "wait=ticket");
    // ...and the next new point is shed to the fast tier.
    std::string resp = server.handleLine(
        "predict machine=T3D op=reduce p=8 m=256 tier=exact");
    EXPECT_NE(resp.find("\"tier\":\"fast\""), std::string::npos)
        << resp;
    EXPECT_NE(resp.find("\"shed\":true"), std::string::npos) << resp;

    auto snap = server.metricsSnapshot();
    EXPECT_GE(snap.counters.at("serve.backfill_shed"), 1u);
    server.backfill().drain();
}

TEST(ServeServer, CacheFileWarmsTheNextStart)
{
    const std::string path = "/tmp/ccsim_serve_cache_restart.txt";
    std::remove(path.c_str());
    ServerOptions opts;
    opts.cache_file = path;
    const std::string q =
        "predict machine=T3D op=bcast p=8 m=1024 tier=exact";

    std::string first;
    {
        Server server(opts);
        server.start();
        first = server.handleLine(q);
        server.stop(); // persists the cache
    }

    Server server(opts);
    server.start(); // warms from the file
    std::string warmed = server.handleLine(q);
    server.stop();
    std::remove(path.c_str());

    // Byte-identical to the run that wrote the file, except the
    // answer now comes from the warmed cache.
    std::size_t at = first.find("\"tier\":\"exact\"");
    ASSERT_NE(at, std::string::npos) << first;
    first.replace(at, std::string("\"tier\":\"exact\"").size(),
                  "\"tier\":\"cache\"");
    EXPECT_EQ(warmed, first);
}

// ---- over TCP ------------------------------------------------------

TEST(ServeTcp, MalformedLineDoesNotDropTheConnection)
{
    Server server;
    server.start();

    Client client;
    client.connect(server.port());
    std::string err = client.request("predict tier=warp");
    EXPECT_NE(err.find("\"status\":\"error\""), std::string::npos);
    // Same connection, next request answers normally.
    EXPECT_EQ(client.request("ping"), pongResponse());
    client.close();
    server.stop();
}

/** The full query mix one client issues in the determinism test. */
std::vector<std::string>
queryMix()
{
    std::vector<std::string> lines;
    for (const char *op : {"bcast", "alltoall"})
        for (int p : {4, 8})
            for (int m : {256, 1024})
                lines.push_back(
                    "predict machine=T3D op=" + std::string(op) +
                    " p=" + std::to_string(p) +
                    " m=" + std::to_string(m) + " tier=exact");
    return lines;
}

/** Whether a point came from the exact tier or its replayed cache
 *  entry is a scheduling race; the payload must not be. */
std::string
normalizeTier(std::string resp)
{
    const std::string cache = "\"tier\":\"cache\"";
    auto at = resp.find(cache);
    if (at != std::string::npos)
        resp.replace(at, cache.size(), "\"tier\":\"exact\"");
    return resp;
}

/** Run @p clients concurrent clients through one daemon; returns
 *  each client's responses in request order, tier-normalized. */
std::vector<std::vector<std::string>>
runClients(int jobs, int clients)
{
    ServerOptions opts;
    opts.jobs = jobs;
    Server server(opts);
    server.start();

    std::vector<std::vector<std::string>> out(clients);
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c)
        threads.emplace_back([&, c] {
            Client client;
            client.connect(server.port());
            for (const std::string &q : queryMix())
                out[c].push_back(normalizeTier(client.request(q)));
        });
    for (auto &t : threads)
        t.join();
    server.stop();
    return out;
}

TEST(ServeTcp, ConcurrentClientsGetIdenticalAnswersAtAnyJobsLevel)
{
    auto serial = runClients(/*jobs=*/1, /*clients=*/4);
    auto pooled = runClients(/*jobs=*/2, /*clients=*/4);

    // Every client of every server sees the same answer for the same
    // query — simulation determinism survives the pool and the race
    // between cache and backfill.
    for (int c = 1; c < 4; ++c) {
        EXPECT_EQ(serial[0], serial[c]) << "client " << c;
        EXPECT_EQ(pooled[0], pooled[c]) << "client " << c;
    }
    EXPECT_EQ(serial[0], pooled[0]) << "jobs=1 vs jobs=2";
}

} // namespace
} // namespace ccsim::serve
