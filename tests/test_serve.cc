/**
 * @file
 * The prediction service: protocol strictness (malformed queries are
 * typed error responses, never dropped connections), cache-hit
 * byte-identity with direct simulation, fast-tier tolerance against
 * the exact tier, ticketed backfill, and concurrent-client
 * determinism at different --jobs levels.
 */

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "harness/measure.hh"
#include "machine/config_io.hh"
#include "serve/backfill.hh"
#include "serve/cache.hh"
#include "serve/client.hh"
#include "serve/fastpath.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"

namespace ccsim::serve {
namespace {

// ---- protocol ------------------------------------------------------

TEST(ServeProtocol, ParsesAFullPredictRequest)
{
    Request r = parseRequest(
        "predict machine=SP2 op=bcast p=16 m=4096 algo=binomial "
        "tier=exact wait=ticket");
    EXPECT_EQ(r.verb, Verb::Predict);
    EXPECT_EQ(r.machine, "SP2");
    EXPECT_EQ(r.op, machine::Coll::Bcast);
    EXPECT_EQ(r.p, 16);
    EXPECT_EQ(r.m, 4096);
    EXPECT_EQ(r.algo, machine::Algo::Binomial);
    EXPECT_EQ(r.tier, TierChoice::Exact);
    EXPECT_EQ(r.wait, WaitMode::Ticket);
}

TEST(ServeProtocol, RoundTripsThroughFormat)
{
    Request r;
    r.verb = Verb::Predict;
    r.machine = "Paragon";
    r.selection = "Paragon";
    r.op = machine::Coll::Alltoall;
    r.p = 32;
    r.m = 65536;
    r.has_m = true;
    r.tier = TierChoice::Fast;

    Request back = parseRequest(formatRequest(r));
    EXPECT_EQ(back.machine, r.machine);
    EXPECT_EQ(back.selection, r.selection);
    EXPECT_EQ(back.op, r.op);
    EXPECT_EQ(back.p, r.p);
    EXPECT_EQ(back.m, r.m);
    EXPECT_EQ(back.tier, r.tier);
}

TEST(ServeProtocol, BarrierNeedsNoMessageLength)
{
    Request r = parseRequest("predict machine=T3D op=barrier p=8");
    EXPECT_EQ(r.op, machine::Coll::Barrier);
    EXPECT_EQ(r.m, 0);
}

TEST(ServeProtocol, MalformedRequestsRaiseConfigError)
{
    // Every protocol mistake is machine::ConfigError (exit code 5),
    // so the server can answer with a typed error response.
    const char *bad[] = {
        "",                                  // empty
        "frobnicate p=4",                    // unknown verb
        "predict op=bcast p=4",              // missing m
        "predict machine=T3D op=bcast m=64", // missing p
        "predict machine=T3D op=nosuch p=4 m=64",  // unknown op
        "predict machine=T3D op=bcast p=zero m=64", // bad int
        "predict machine=T3D op=bcast p=4 m=64 tier=soon",
        "predict machine=T3D op=bcast p=4 m=64 color=red",
        "poll",                              // missing ticket
        "ping p=4",                          // keys on a bare verb
    };
    for (const char *line : bad) {
        try {
            parseRequest(line);
            FAIL() << "no error for: " << line;
        } catch (const machine::ConfigError &e) {
            EXPECT_EQ(e.exitCode(), kConfigExit) << line;
            EXPECT_EQ(e.component(), "config") << line;
        }
    }
}

// ---- the brain (handleLine, no sockets) ----------------------------

TEST(ServeServer, MalformedQueryGetsTypedErrorResponse)
{
    Server server;
    std::string resp = server.handleLine("predict op=bcast");
    EXPECT_EQ(resp.rfind("{\"status\":\"error\"", 0), 0u) << resp;
    EXPECT_NE(resp.find("\"component\":\"config\""), std::string::npos);
    EXPECT_NE(resp.find("\"exit_code\":5"), std::string::npos);

    // The brain keeps serving after a protocol error.
    EXPECT_EQ(server.handleLine("ping"), pongResponse());
}

TEST(ServeServer, CacheHitIsByteIdenticalToDirectSimulation)
{
    Server server;
    const std::string q =
        "predict machine=T3D op=bcast p=8 m=1024 tier=exact";

    std::string first = server.handleLine(q);
    std::string second = server.handleLine(q);

    // Same point, simulated directly with the same procedure the
    // exact tier uses (the CLI's defaults).
    auto meas = harness::measureCollective(
        *machine::sharedPreset("T3D"), 8, machine::Coll::Bcast, 1024);

    EXPECT_EQ(first, okResponse(Answer::of(meas, AnswerTier::Exact)));
    EXPECT_EQ(second, okResponse(Answer::of(meas, AnswerTier::Cache)));
}

TEST(ServeServer, AutoAlgoSharesTheCacheEntryWithItsExplicitTwin)
{
    Server server;
    // T3D bcast resolves Algo::Auto to the machine default
    // (binomial); the explicit spelling must hit the same entry.
    std::string implicit = server.handleLine(
        "predict machine=T3D op=bcast p=8 m=512 tier=exact");
    std::string explicit_twin = server.handleLine(
        "predict machine=T3D op=bcast p=8 m=512 algo=binomial "
        "tier=exact");
    EXPECT_NE(implicit.find("\"tier\":\"exact\""), std::string::npos);
    EXPECT_NE(explicit_twin.find("\"tier\":\"cache\""),
              std::string::npos)
        << "second spelling should have hit the cache";
}

TEST(ServeServer, FastTierTracksExactWithinTolerance)
{
    Server server;
    auto cfg = machine::sharedPreset("T3D");
    // Points inside the calibration envelope (p <= 32, m <= 64 KiB)
    // but not on the calibration grid.
    struct Point
    {
        machine::Coll op;
        int p;
        Bytes m;
    } points[] = {
        {machine::Coll::Bcast, 16, 2048},
        {machine::Coll::Alltoall, 8, 8192},
        {machine::Coll::Reduce, 16, 512},
    };
    for (const auto &pt : points) {
        double fast = server.fastPath().predictUs(
            *cfg, pt.op, machine::Algo::Auto, pt.p, pt.m);
        auto exact =
            harness::measureCollective(*cfg, pt.p, pt.op, pt.m);
        // The documented envelope: within a factor of two across the
        // calibration region (in practice a few percent).
        EXPECT_GT(fast, exact.us() / 2.0)
            << collName(pt.op) << " p=" << pt.p << " m=" << pt.m;
        EXPECT_LT(fast, exact.us() * 2.0)
            << collName(pt.op) << " p=" << pt.p << " m=" << pt.m;
    }
}

TEST(ServeServer, TicketFlowDeliversTheExactAnswer)
{
    Server server;
    std::string pending = server.handleLine(
        "predict machine=SP2 op=barrier p=8 tier=exact wait=ticket");
    ASSERT_EQ(pending.rfind("{\"status\":\"pending\",\"ticket\":", 0),
              0u)
        << pending;
    std::uint64_t ticket = std::stoull(
        pending.substr(pending.rfind(':') + 1));

    server.backfill().drain();
    std::string resp =
        server.handleLine("poll ticket=" + std::to_string(ticket));
    EXPECT_NE(resp.find("\"tier\":\"exact\""), std::string::npos)
        << resp;

    // A consumed (or never issued) ticket is a typed error.
    std::string again =
        server.handleLine("poll ticket=" + std::to_string(ticket));
    EXPECT_NE(again.find("\"status\":\"error\""), std::string::npos);
    EXPECT_NE(again.find("\"component\":\"serve\""),
              std::string::npos);
}

TEST(ServeServer, MetricsCountPerTierHits)
{
    Server server;
    server.handleLine(
        "predict machine=T3D op=barrier p=4 tier=exact");
    server.handleLine(
        "predict machine=T3D op=barrier p=4 tier=exact"); // cache
    server.handleLine(
        "predict machine=T3D op=barrier p=4 tier=fast"); // cache too
    auto snap = server.metricsSnapshot();
    EXPECT_EQ(snap.counters.at("serve.tier_exact"), 1u);
    EXPECT_EQ(snap.counters.at("serve.tier_cache"), 2u);
    EXPECT_EQ(snap.counters.at("serve.requests"), 3u);
    EXPECT_GE(snap.gauges.at("serve.request_us_p99"),
              snap.gauges.at("serve.request_us_p50"));
}

TEST(ServeBackfill, CoalescesDuplicateKeysIntoOneSimulation)
{
    QueryCache cache;
    BackfillQueue queue(cache, 1);

    BackfillJob job;
    job.cfg = machine::sharedPreset("T3D");
    job.p = 4;
    job.op = machine::Coll::Barrier;
    job.algo = machine::Algo::Default;
    job.key = harness::measurePointKey(*job.cfg, 4,
                                       machine::Coll::Barrier, 0,
                                       machine::Algo::Default);

    std::uint64_t t1 = queue.submit(job);
    std::uint64_t t2 = queue.submit(job);
    BackfillResult r1 = queue.wait(t1);
    BackfillResult r2 = queue.wait(t2);
    EXPECT_FALSE(r1.failed);
    EXPECT_EQ(r1.meas.max_time, r2.meas.max_time);
    EXPECT_GE(queue.coalesced(), 1u);
    EXPECT_TRUE(cache.contains(job.key));
}

// ---- over TCP ------------------------------------------------------

TEST(ServeTcp, MalformedLineDoesNotDropTheConnection)
{
    Server server;
    server.start();

    Client client;
    client.connect(server.port());
    std::string err = client.request("predict tier=warp");
    EXPECT_NE(err.find("\"status\":\"error\""), std::string::npos);
    // Same connection, next request answers normally.
    EXPECT_EQ(client.request("ping"), pongResponse());
    client.close();
    server.stop();
}

/** The full query mix one client issues in the determinism test. */
std::vector<std::string>
queryMix()
{
    std::vector<std::string> lines;
    for (const char *op : {"bcast", "alltoall"})
        for (int p : {4, 8})
            for (int m : {256, 1024})
                lines.push_back(
                    "predict machine=T3D op=" + std::string(op) +
                    " p=" + std::to_string(p) +
                    " m=" + std::to_string(m) + " tier=exact");
    return lines;
}

/** Whether a point came from the exact tier or its replayed cache
 *  entry is a scheduling race; the payload must not be. */
std::string
normalizeTier(std::string resp)
{
    const std::string cache = "\"tier\":\"cache\"";
    auto at = resp.find(cache);
    if (at != std::string::npos)
        resp.replace(at, cache.size(), "\"tier\":\"exact\"");
    return resp;
}

/** Run @p clients concurrent clients through one daemon; returns
 *  each client's responses in request order, tier-normalized. */
std::vector<std::vector<std::string>>
runClients(int jobs, int clients)
{
    ServerOptions opts;
    opts.jobs = jobs;
    Server server(opts);
    server.start();

    std::vector<std::vector<std::string>> out(clients);
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c)
        threads.emplace_back([&, c] {
            Client client;
            client.connect(server.port());
            for (const std::string &q : queryMix())
                out[c].push_back(normalizeTier(client.request(q)));
        });
    for (auto &t : threads)
        t.join();
    server.stop();
    return out;
}

TEST(ServeTcp, ConcurrentClientsGetIdenticalAnswersAtAnyJobsLevel)
{
    auto serial = runClients(/*jobs=*/1, /*clients=*/4);
    auto pooled = runClients(/*jobs=*/2, /*clients=*/4);

    // Every client of every server sees the same answer for the same
    // query — simulation determinism survives the pool and the race
    // between cache and backfill.
    for (int c = 1; c < 4; ++c) {
        EXPECT_EQ(serial[0], serial[c]) << "client " << c;
        EXPECT_EQ(pooled[0], pooled[c]) << "client " << c;
    }
    EXPECT_EQ(serial[0], pooled[0]) << "jobs=1 vs jobs=2";
}

} // namespace
} // namespace ccsim::serve
