/** @file Tests for MachineModel / application prediction. */

#include <gtest/gtest.h>

#include "harness/measure.hh"
#include "machine/machine_config.hh"
#include "model/predictor.hh"
#include "util/logging.hh"

namespace ccsim::model {
namespace {

using machine::Coll;

TEST(Predictor, FromPaperCoversSevenOps)
{
    MachineModel m = MachineModel::fromPaper("T3D");
    for (Coll op : machine::kPaperColls)
        EXPECT_TRUE(m.has(op)) << machine::collName(op);
    EXPECT_FALSE(m.has(Coll::Allgather));
}

TEST(Predictor, PaperWorkedExample)
{
    // Section 8: T3D total exchange at m = 512, p = 64 -> ~2.86 ms.
    MachineModel m = MachineModel::fromPaper("T3D");
    EXPECT_NEAR(m.predictUs(Coll::Alltoall, 512, 64), 2860, 30);
}

TEST(Predictor, BandwidthMatchesAbstract)
{
    MachineModel m = MachineModel::fromPaper("Paragon");
    EXPECT_NEAR(m.predictBandwidthMBs(Coll::Alltoall, 64), 879,
                879 * 0.05);
}

TEST(Predictor, MissingOpIsFatal)
{
    throwOnError(true);
    MachineModel m("empty");
    EXPECT_THROW(m.predictUs(Coll::Bcast, 4, 2), FatalError);
    EXPECT_THROW(MachineModel::fromPaper("VAX"), FatalError);
    throwOnError(false);
}

TEST(Predictor, SetOverridesExpression)
{
    MachineModel m("custom");
    TimingExpression e{Growth::Log2, Growth::Log2, 10, 5, 0, 0.01};
    m.set(Coll::Bcast, e);
    EXPECT_DOUBLE_EQ(m.predictUs(Coll::Bcast, 100, 8), 10 * 3 + 5 + 1);
}

TEST(Predictor, AppScriptSumsPhases)
{
    MachineModel m = MachineModel::fromPaper("SP2");
    std::vector<AppStep> script = {
        AppStep::compute(1000.0, 2),                 // 2000 us
        AppStep::collective(Coll::Barrier, 0),       // 123*5-90 = 525
        AppStep::collective(Coll::Bcast, 1024, 3),   // 3 broadcasts
    };
    AppPrediction pred = predictApp(m, script, 32);
    double bcast_us = m.predictUs(Coll::Bcast, 1024, 32);
    EXPECT_DOUBLE_EQ(pred.compute_us, 2000.0);
    EXPECT_NEAR(pred.comm_us, 525.0 + 3 * bcast_us, 1e-9);
    EXPECT_DOUBLE_EQ(pred.total_us, pred.comm_us + pred.compute_us);
    EXPECT_GT(pred.commPercent(), 0.0);
    EXPECT_LT(pred.commPercent(), 100.0);
}

TEST(Predictor, AppScriptValidation)
{
    throwOnError(true);
    MachineModel m = MachineModel::fromPaper("SP2");
    EXPECT_THROW(predictApp(m, {AppStep::compute(1.0)}, 0), FatalError);
    std::vector<AppStep> bad = {AppStep::compute(1.0, -1)};
    EXPECT_THROW(predictApp(m, bad, 4), FatalError);
    EXPECT_THROW(m.predictUs(Coll::Bcast, -1, 4), FatalError);
    throwOnError(false);
}

TEST(Predictor, FittedModelPredictsHeldOutPoints)
{
    // Fit from a coarse simulated sweep; predictions at unseen (m, p)
    // must land within 35% of direct simulation.
    harness::MeasureOptions opt;
    opt.iterations = 3;
    opt.repetitions = 1;
    opt.warmup = 1;
    auto cfg = machine::t3dConfig();
    MachineModel m = harness::fitMachineModel(
        cfg, {Coll::Bcast, Coll::Alltoall}, {2, 8, 32},
        {4, 1024, 16 * KiB, 64 * KiB}, opt);

    for (Coll op : {Coll::Bcast, Coll::Alltoall}) {
        for (int p : {4, 16}) {
            for (Bytes mm : {Bytes(512), Bytes(32 * KiB)}) {
                double pred = m.predictUs(op, mm, p);
                double sim = harness::measureCollective(
                                 cfg, p, op, mm,
                                 machine::Algo::Default, opt)
                                 .us();
                EXPECT_NEAR(pred, sim, sim * 0.35)
                    << machine::collName(op) << " p=" << p
                    << " m=" << mm;
            }
        }
    }
}

TEST(Predictor, TradeOffAnalysisFindsTheKnee)
{
    // The paper's use case: pick p minimizing predicted total time
    // for a fixed problem.  With compute ~ 1/p and alltoall growing
    // in p, an interior optimum must exist and predictApp must find
    // it monotonically worse on both sides.
    MachineModel m = MachineModel::fromPaper("Paragon");
    auto total = [&](int p) {
        std::vector<AppStep> script = {
            AppStep::compute(4.0e6 / p), // divided computation
            AppStep::collective(Coll::Alltoall, 256 * KiB / p),
        };
        return predictApp(m, script, p).total_us;
    };
    double best = total(8);
    int best_p = 8;
    for (int p : {16, 32, 64, 128}) {
        if (total(p) < best) {
            best = total(p);
            best_p = p;
        }
    }
    EXPECT_GT(best_p, 8);
    EXPECT_LT(best, total(8));
}

} // namespace
} // namespace ccsim::model
