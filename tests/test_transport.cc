/** @file Integration tests for the point-to-point transport. */

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "msg/transport.hh"
#include "net/fully_connected.hh"
#include "net/network.hh"
#include "sim/simulator.hh"
#include "util/logging.hh"

namespace ccsim::msg {
namespace {

using namespace time_literals;
using sim::Task;

/** A 4-node ideal-network fixture with easy-to-check numbers. */
class TransportTest : public ::testing::Test
{
  protected:
    TransportTest() { rebuild(defaultParams()); }

    static TransportParams
    defaultParams()
    {
        TransportParams tp;
        tp.send_overhead = 10 * US;
        tp.recv_overhead = 5 * US;
        tp.copy_bandwidth_mbs = 100.0; // 10 ns per byte
        tp.eager_threshold = 4 * KiB;
        tp.rendezvous_overhead = 2 * US;
        return tp;
    }

    /** Fresh simulator + network + fabric (clock back at zero). */
    void
    rebuild(const TransportParams &tp)
    {
        fabric_.reset();
        network_.reset();
        sim_holder_ = std::make_unique<sim::Simulator>();
        net::NetworkParams np;
        np.link_bandwidth_mbs = 100.0; // 10 ns per byte
        np.hop_latency = 100 * NS;
        network_ = std::make_unique<net::Network>(
            std::make_unique<net::FullyConnected>(4), np);
        fabric_ = std::make_unique<Fabric>(*sim_holder_, *network_, 4, tp);
    }

    sim::Simulator &sim() { return *sim_holder_; }

    std::unique_ptr<sim::Simulator> sim_holder_;
    std::unique_ptr<net::Network> network_;
    std::unique_ptr<Fabric> fabric_;
};

TEST_F(TransportTest, EagerDeliveryTimesAreExact)
{
    Time send_done = -1, recv_done = -1;
    auto sender = [&]() -> Task<void> {
        co_await fabric_->node(0).send(1, 7, 0, 1000);
        send_done = sim().now();
    };
    auto receiver = [&]() -> Task<void> {
        Message m = co_await fabric_->node(1).recv(0, 7, 0);
        recv_done = sim().now();
        EXPECT_EQ(m.src, 0);
        EXPECT_EQ(m.bytes, 1000);
        // arrival = o_s(10) + copy(10) + hop(0.1) + wire(10)
        EXPECT_EQ(m.arrival, microseconds(30.1));
    };
    sim().spawn(receiver());
    sim().spawn(sender());
    sim().run();
    // Sender is released after o_s + its full share of the copy.
    EXPECT_EQ(send_done, 20 * US);
    // Receiver: arrival + o_r(5) + copy-out(10).
    EXPECT_EQ(recv_done, microseconds(45.1));
}

TEST_F(TransportTest, LateReceiverPaysNoExtraWireTime)
{
    Time recv_done = -1;
    auto sender = [&]() -> Task<void> {
        co_await fabric_->node(0).send(1, 7, 0, 1000);
    };
    auto receiver = [&]() -> Task<void> {
        co_await sim().delay(100 * US); // message long since arrived
        co_await fabric_->node(1).recv(0, 7, 0);
        recv_done = sim().now();
    };
    sim().spawn(sender());
    sim().spawn(receiver());
    sim().run();
    EXPECT_EQ(recv_done, 115 * US); // 100 + o_r(5) + copy(10)
}

TEST_F(TransportTest, PayloadRoundTrips)
{
    std::vector<float> data{1.5f, -2.0f, 3.25f};
    std::vector<float> got;
    auto sender = [&]() -> Task<void> {
        co_await fabric_->node(0).send(2, 1, 0,
                                       Bytes(data.size() * sizeof(float)),
                                       makePayload(data));
    };
    auto receiver = [&]() -> Task<void> {
        Message m = co_await fabric_->node(2).recv(0, 1, 0);
        got = payloadAs<float>(m.payload);
    };
    sim().spawn(sender());
    sim().spawn(receiver());
    sim().run();
    EXPECT_EQ(got, data);
}

TEST_F(TransportTest, TagsMatchSelectively)
{
    std::vector<int> order;
    auto sender = [&]() -> Task<void> {
        co_await fabric_->node(0).send(1, /*tag=*/20, 0, 8);
        co_await fabric_->node(0).send(1, /*tag=*/10, 0, 8);
    };
    auto receiver = [&]() -> Task<void> {
        Message a = co_await fabric_->node(1).recv(0, 10, 0);
        order.push_back(a.tag);
        Message b = co_await fabric_->node(1).recv(0, 20, 0);
        order.push_back(b.tag);
    };
    sim().spawn(sender());
    sim().spawn(receiver());
    sim().run();
    EXPECT_EQ(order, (std::vector<int>{10, 20}));
}

TEST_F(TransportTest, ContextsIsolateTraffic)
{
    int got_ctx = -1;
    auto sender = [&]() -> Task<void> {
        co_await fabric_->node(0).send(1, 5, /*context=*/3, 8);
    };
    auto receiver = [&]() -> Task<void> {
        Message m = co_await fabric_->node(1).recv(0, 5, 3);
        got_ctx = m.context;
    };
    sim().spawn(sender());
    sim().spawn(receiver());
    sim().run();
    EXPECT_EQ(got_ctx, 3);
}

TEST_F(TransportTest, FifoNonOvertakingSameEnvelope)
{
    std::vector<int> values;
    auto sender = [&]() -> Task<void> {
        std::vector<int> one{111}, two{222};
        co_await fabric_->node(0).send(1, 9, 0, 4, makePayload(one));
        co_await fabric_->node(0).send(1, 9, 0, 4, makePayload(two));
    };
    auto receiver = [&]() -> Task<void> {
        for (int i = 0; i < 2; ++i) {
            Message m = co_await fabric_->node(1).recv(0, 9, 0);
            values.push_back(payloadAs<int>(m.payload)[0]);
        }
    };
    sim().spawn(sender());
    sim().spawn(receiver());
    sim().run();
    EXPECT_EQ(values, (std::vector<int>{111, 222}));
}

TEST_F(TransportTest, AnySourceTakesEarliestArrival)
{
    std::vector<int> sources;
    auto sender = [&](int node, Time start) -> Task<void> {
        co_await sim().delay(start);
        co_await fabric_->node(node).send(3, 1, 0, 8);
    };
    auto receiver = [&]() -> Task<void> {
        for (int i = 0; i < 2; ++i) {
            Message m = co_await fabric_->node(3).recv(kAnySource, 1, 0);
            sources.push_back(m.src);
        }
    };
    sim().spawn(receiver());
    sim().spawn(sender(2, 0));
    sim().spawn(sender(1, 200 * US));
    sim().run();
    EXPECT_EQ(sources, (std::vector<int>{2, 1}));
}

TEST_F(TransportTest, SelfSendIsBufferedAndNeverDeadlocks)
{
    std::vector<int> got;
    auto prog = [&]() -> Task<void> {
        std::vector<int> v{42};
        co_await fabric_->node(2).send(2, 4, 0, 4, makePayload(v));
        Message m = co_await fabric_->node(2).recv(2, 4, 0);
        got = payloadAs<int>(m.payload);
    };
    sim().spawn(prog());
    sim().run();
    EXPECT_EQ(got, (std::vector<int>{42}));
}

TEST_F(TransportTest, RendezvousTimingIncludesHandshake)
{
    Time recv_done = -1;
    auto sender = [&]() -> Task<void> {
        co_await fabric_->node(0).send(1, 7, 0, 8192);
    };
    auto receiver = [&]() -> Task<void> {
        co_await fabric_->node(1).recv(0, 7, 0);
        recv_done = sim().now();
    };
    sim().spawn(receiver());
    sim().spawn(sender());
    sim().run();
    // o_s+rdv(12) -> RTS(0.1) -> rdv(2) -> CTS(0.1) -> copy(81.92)
    // -> wire(0.1 + 81.92) -> o_r(5); no receive copy.
    EXPECT_EQ(recv_done, microseconds(12 + 0.1 + 2 + 0.1 + 81.92 +
                                      0.1 + 81.92 + 5));
}

TEST_F(TransportTest, RendezvousSkipsReceiveCopy)
{
    // Same size straddling the threshold: just below goes eager (two
    // copies), just above goes rendezvous (handshake, one copy).
    auto run = [&](Bytes size) {
        rebuild(defaultParams());
        Time done = -1;
        auto sender = [&]() -> Task<void> {
            co_await fabric_->node(0).send(1, 7, 0, size);
        };
        auto receiver = [&]() -> Task<void> {
            co_await fabric_->node(1).recv(0, 7, 0);
            done = sim().now();
        };
        sim().spawn(receiver());
        sim().spawn(sender());
        sim().run();
        return done;
    };
    Time eager = run(4 * KiB);
    Time rdv = run(4 * KiB + 1);
    // The rendezvous handshake costs ~4.2 us but saves the ~41 us
    // receive copy, so it must win well before 2x the threshold.
    EXPECT_LT(rdv, eager);
}

TEST_F(TransportTest, BltAcceleratesLongMessages)
{
    auto timed = [&](bool blt) {
        auto tp = defaultParams();
        tp.blt_enabled = blt;
        tp.blt_threshold = 8 * KiB;
        tp.blt_setup = 20 * US;
        rebuild(tp);
        Time done = -1;
        auto sender = [&]() -> Task<void> {
            co_await fabric_->node(0).send(1, 7, 0, 64 * KiB);
        };
        auto receiver = [&]() -> Task<void> {
            co_await fabric_->node(1).recv(0, 7, 0);
            done = sim().now();
        };
        sim().spawn(receiver());
        sim().spawn(sender());
        sim().run();
        return done;
    };
    Time without = timed(false);
    Time with = timed(true);
    // BLT replaces the 655.36 us injection copy with 20 us of setup.
    EXPECT_EQ(without - with, microseconds(655.36 - 20));
}

TEST_F(TransportTest, CoprocessorFreesTheSenderEarly)
{
    auto sender_done = [&](double overlap) {
        auto tp = defaultParams();
        tp.coprocessor_overlap = overlap;
        rebuild(tp);
        Time done = -1;
        auto sender = [&]() -> Task<void> {
            co_await fabric_->node(0).send(1, 7, 0, 1000);
            done = sim().now();
        };
        auto receiver = [&]() -> Task<void> {
            co_await fabric_->node(1).recv(0, 7, 0);
        };
        sim().spawn(receiver());
        sim().spawn(sender());
        sim().run();
        return done;
    };
    EXPECT_EQ(sender_done(0.0), 20 * US);  // o_s + full copy
    EXPECT_EQ(sender_done(0.9), 11 * US);  // o_s + 10% of copy
    EXPECT_EQ(sender_done(1.0), 10 * US);  // o_s only
}

TEST_F(TransportTest, ReceiverCpuSerializesCompletions)
{
    std::vector<Time> done;
    auto sender = [&](int node) -> Task<void> {
        co_await fabric_->node(node).send(3, 1, 0, 1000);
    };
    auto receiver = [&]() -> Task<void> {
        co_await fabric_->node(3).recv(kAnySource, 1, 0);
        done.push_back(sim().now());
        co_await fabric_->node(3).recv(kAnySource, 1, 0);
        done.push_back(sim().now());
    };
    sim().spawn(receiver());
    sim().spawn(sender(0));
    sim().spawn(sender(1));
    sim().run();
    ASSERT_EQ(done.size(), 2u);
    // Both messages arrive at 30.1 us; the two (o_r + copy) = 15 us
    // completions must be serialized on node 3's CPU.
    EXPECT_EQ(done[0], microseconds(45.1));
    EXPECT_EQ(done[1], microseconds(60.1));
}

TEST_F(TransportTest, SendrecvExchangesLongMessagesWithoutDeadlock)
{
    // Both ranks push 64 KB at each other simultaneously; blocking
    // rendezvous sends would deadlock here — sendrecv must not.
    int completed = 0;
    auto prog = [&](int me, int other) -> Task<void> {
        Message m = co_await fabric_->node(me).sendrecv(
            other, 5, 64 * KiB, other, 5, 0);
        EXPECT_EQ(m.bytes, 64 * KiB);
        ++completed;
    };
    sim().spawn(prog(0, 1));
    sim().spawn(prog(1, 0));
    sim().run();
    EXPECT_EQ(completed, 2);
}

TEST_F(TransportTest, IsendIrecvWaitCompletes)
{
    Bytes got = 0;
    auto prog0 = [&]() -> Task<void> {
        Request r = fabric_->node(0).isend(1, 2, 0, 512);
        co_await fabric_->node(0).wait(r);
    };
    auto prog1 = [&]() -> Task<void> {
        Request r = fabric_->node(1).irecv(0, 2, 0);
        Message m = co_await fabric_->node(1).wait(r);
        got = m.bytes;
    };
    sim().spawn(prog0());
    sim().spawn(prog1());
    sim().run();
    EXPECT_EQ(got, 512);
}

TEST_F(TransportTest, RequestTestReflectsCompletion)
{
    auto prog = [&]() -> Task<void> {
        Request r = fabric_->node(1).irecv(0, 2, 0);
        EXPECT_FALSE(r.test());
        co_await fabric_->node(0).send(1, 2, 0, 16);
        co_await fabric_->node(1).wait(r);
        EXPECT_TRUE(r.test());
    };
    sim().spawn(prog());
    sim().run();
}

TEST_F(TransportTest, UnmatchedRecvDeadlocks)
{
    throwOnError(true);
    auto prog = [&]() -> Task<void> {
        co_await fabric_->node(1).recv(0, 99, 0);
    };
    sim().spawn(prog());
    EXPECT_THROW(sim().run(), PanicError);
    throwOnError(false);
}

TEST_F(TransportTest, StatsCountTraffic)
{
    auto sender = [&]() -> Task<void> {
        co_await fabric_->node(0).send(1, 1, 0, 100);
        co_await fabric_->node(0).send(1, 1, 0, 200);
    };
    auto receiver = [&]() -> Task<void> {
        co_await fabric_->node(1).recv(0, 1, 0);
        co_await fabric_->node(1).recv(0, 1, 0);
    };
    sim().spawn(sender());
    sim().spawn(receiver());
    sim().run();
    EXPECT_EQ(fabric_->node(0).sendsStarted(), 2u);
    EXPECT_EQ(fabric_->node(0).bytesSent(), 300);
    EXPECT_EQ(fabric_->node(1).recvsCompleted(), 2u);
}

TEST_F(TransportTest, MismatchedPayloadSizePanics)
{
    throwOnError(true);
    auto prog = [&]() -> Task<void> {
        std::vector<int> v{1, 2, 3};
        co_await fabric_->node(0).send(1, 1, 0, 999, makePayload(v));
    };
    sim().spawn(prog());
    EXPECT_THROW(sim().run(), PanicError);
    throwOnError(false);
}

} // namespace
} // namespace ccsim::msg
