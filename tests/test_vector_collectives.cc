/** @file Tests for the ragged (v-variant) collectives. */

#include <cstdint>
#include <functional>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "mpi/comm.hh"
#include "util/logging.hh"

namespace ccsim::mpi {
namespace {

using machine::Machine;
using Body = std::function<sim::Task<void>(Comm &)>;

void
runProgram(Machine &m, const Body &body)
{
    auto driver = [&m, &body](int rank) -> sim::Task<void> {
        Comm comm(m, rank);
        co_await body(comm);
    };
    for (int r = 0; r < m.size(); ++r)
        m.sim().spawn(driver(r));
    m.run();
}

class VecCollP : public ::testing::TestWithParam<int>
{
  protected:
    int p() const { return GetParam(); }
};

INSTANTIATE_TEST_SUITE_P(Sizes, VecCollP,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST_P(VecCollP, GathervConcatenatesRaggedBlocks)
{
    int root = p() > 1 ? 1 : 0;
    Machine m(machine::idealConfig(), p());
    // Rank r contributes r + 1 elements.
    std::vector<int> counts(static_cast<size_t>(p()));
    for (int r = 0; r < p(); ++r)
        counts[static_cast<size_t>(r)] = r + 1;

    Body body = [&](Comm &c) -> sim::Task<void> {
        std::vector<std::int64_t> mine(
            static_cast<size_t>(c.rank() + 1));
        for (int j = 0; j <= c.rank(); ++j)
            mine[static_cast<size_t>(j)] = 100 * (c.rank() + 1) + j;
        auto out = co_await c.gathervData(mine, counts, root);
        if (c.rank() == root) {
            std::size_t expect_len = 0;
            for (int cnt : counts)
                expect_len += static_cast<size_t>(cnt);
            EXPECT_EQ(out.size(), expect_len);
            std::size_t off = 0;
            for (int r = 0; r < p(); ++r)
                for (int j = 0; j <= r; ++j)
                    EXPECT_EQ(out[off++], 100 * (r + 1) + j)
                        << "r=" << r << " j=" << j;
        } else {
            EXPECT_TRUE(out.empty());
        }
    };
    runProgram(m, body);
}

TEST_P(VecCollP, ScattervDistributesRaggedBlocks)
{
    int root = 0;
    Machine m(machine::idealConfig(), p());
    std::vector<int> counts(static_cast<size_t>(p()));
    for (int r = 0; r < p(); ++r)
        counts[static_cast<size_t>(r)] = 2 * r + 1;

    std::vector<std::int64_t> all;
    for (int r = 0; r < p(); ++r)
        for (int j = 0; j < counts[static_cast<size_t>(r)]; ++j)
            all.push_back(1000 * (r + 1) + j);

    Body body = [&](Comm &c) -> sim::Task<void> {
        std::vector<std::int64_t> in;
        if (c.rank() == root)
            in = all;
        auto out = co_await c.scattervData(in, counts, root);
        EXPECT_EQ(out.size(),
                  static_cast<size_t>(2 * c.rank() + 1));
        for (std::size_t j = 0; j < out.size(); ++j)
            EXPECT_EQ(out[j],
                      1000 * (c.rank() + 1) +
                          static_cast<std::int64_t>(j));
    };
    runProgram(m, body);
}

TEST(VecColl, ZeroCountRanksParticipate)
{
    Machine m(machine::idealConfig(), 4);
    std::vector<int> counts{0, 3, 0, 2};
    Body body = [&](Comm &c) -> sim::Task<void> {
        std::vector<std::int64_t> mine(
            static_cast<size_t>(counts[static_cast<size_t>(c.rank())]),
            c.rank());
        auto out = co_await c.gathervData(mine, counts, 0);
        if (c.rank() == 0) {
            EXPECT_EQ(out, (std::vector<std::int64_t>{1, 1, 1, 3, 3}));
        }
        co_return;
    };
    runProgram(m, body);
}

TEST(VecColl, SizeOnlyVariantsRun)
{
    for (const auto &cfg : machine::paperMachines()) {
        Machine m(cfg, 8);
        int done = 0;
        Body body = [&](Comm &c) -> sim::Task<void> {
            std::vector<Bytes> counts(8);
            for (int r = 0; r < 8; ++r)
                counts[static_cast<size_t>(r)] = 512 * (r + 1);
            co_await c.gatherv(counts, 0);
            co_await c.scatterv(counts, 3);
            ++done;
        };
        runProgram(m, body);
        EXPECT_EQ(done, 8) << cfg.name;
    }
}

TEST(VecColl, ValidationErrors)
{
    throwOnError(true);
    Machine m(machine::idealConfig(), 4);
    auto spawn_one = [&](Body body) {
        auto driver = [&m, body](int rank) -> sim::Task<void> {
            Comm comm(m, rank);
            co_await body(comm);
        };
        m.sim().spawn(driver(0));
    };
    // Wrong number of counts.
    spawn_one([](Comm &c) -> sim::Task<void> {
        std::vector<Bytes> counts{16, 16};
        co_await c.gatherv(counts, 0);
    });
    EXPECT_THROW(m.run(), FatalError);

    Machine m2(machine::idealConfig(), 4);
    auto driver2 = [&m2](int rank) -> sim::Task<void> {
        Comm comm(m2, rank);
        std::vector<Bytes> counts{16, 16, 16, -1};
        co_await comm.scatterv(counts, 0);
    };
    m2.sim().spawn(driver2(0));
    EXPECT_THROW(m2.run(), FatalError);
    throwOnError(false);
}

TEST(VecColl, MatchesUniformGatherWhenCountsEqual)
{
    Machine m(machine::idealConfig(), 4);
    Body body = [&](Comm &c) -> sim::Task<void> {
        std::vector<std::int64_t> mine{c.rank() * 10,
                                       c.rank() * 10 + 1};
        std::vector<int> counts{2, 2, 2, 2};
        auto ragged = co_await c.gathervData(mine, counts, 0);
        auto uniform = co_await c.gatherData(mine, 0);
        EXPECT_EQ(ragged, uniform);
    };
    runProgram(m, body);
}

} // namespace
} // namespace ccsim::mpi
