/** @file Unit tests for the string-spec topology factory. */

#include <algorithm>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "net/dragonfly.hh"
#include "net/fat_tree.hh"
#include "net/hierarchical.hh"
#include "net/topology_factory.hh"
#include "util/error.hh"

namespace ccsim::net {
namespace {

/** The factory must reject `spec` for `p` nodes, and the ConfigError
 *  text must carry the spec and `why` so the CLI message is usable. */
void
expectRejects(const std::string &spec, int p, const std::string &why)
{
    try {
        makeTopology(spec, p);
        FAIL() << "spec '" << spec << "' accepted for p=" << p;
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find(spec), std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find(why), std::string::npos)
            << e.what();
    }
}

TEST(TopologyFactory, BuildsEveryFamilyAtDefaultShape)
{
    for (const char *family :
         {"mesh2d", "torus3d", "omega", "hypercube", "fattree",
          "fully-connected", "dragonfly"}) {
        auto t = makeTopology(family, 16);
        ASSERT_NE(t, nullptr) << family;
        EXPECT_EQ(t->numNodes(), 16) << family;
        // Every pair must route within the fabric's link space.
        for (int s = 0; s < 16; ++s)
            for (int d = 0; d < 16; ++d)
                t->forEachLink(s, d, [&](LinkId l) {
                    EXPECT_GE(l, 0) << family;
                    EXPECT_LT(l, t->numLinks()) << family;
                });
    }
}

TEST(TopologyFactory, ExplicitDimensionsAreHonoured)
{
    auto mesh = makeTopology("mesh2d:2x8", 16);
    EXPECT_NE(mesh->name().find("2x8"), std::string::npos);

    auto torus = makeTopology("torus3d:4x2x2", 16);
    EXPECT_NE(torus->name().find("4x2x2"), std::string::npos);

    auto omega = makeTopology("omega:2", 16);
    EXPECT_NE(omega->name().find("radix-2"), std::string::npos)
        << omega->name();

    auto df = makeTopology("dragonfly:4x2x2", 16);
    auto *d = dynamic_cast<Dragonfly *>(df.get());
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->groups(), 4);
    EXPECT_EQ(d->routersPerGroup(), 2);
    EXPECT_EQ(d->nodesPerRouter(), 2);
}

TEST(TopologyFactory, FatTreeSpecParsesLevelsAndRadices)
{
    auto t = makeTopology("fattree:2;4,4;1,2", 16);
    auto *ft = dynamic_cast<FatTree *>(t.get());
    ASSERT_NE(ft, nullptr);
    EXPECT_EQ(ft->levels(), 2);
    EXPECT_EQ(ft->numNodes(), 16);
    EXPECT_EQ(ft->switchesAt(1), 4);
    EXPECT_EQ(ft->switchesAt(2), 2);
}

TEST(TopologyFactory, HierSpecWrapsInnerTopology)
{
    auto t = makeTopology("hier:2x4/mesh2d", 64);
    auto *h = dynamic_cast<Hierarchical *>(t.get());
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->numNodes(), 64);
    EXPECT_EQ(h->chipsPerNode(), 2);
    EXPECT_EQ(h->coresPerChip(), 4);
    EXPECT_EQ(h->inner().numNodes(), 8); // 64 / (2*4)
    EXPECT_EQ(h->numLinkClasses(), 3);

    // Inner spec with explicit dims rides through unchanged.
    auto t2 = makeTopology("hier:1x2/torus3d:2x2x2", 16);
    auto *h2 = dynamic_cast<Hierarchical *>(t2.get());
    ASSERT_NE(h2, nullptr);
    EXPECT_EQ(h2->inner().numNodes(), 8);
}

TEST(TopologyFactory, UnknownFamilySuggestsClosestMatch)
{
    try {
        makeTopology("mesh2", 16);
        FAIL() << "accepted unknown family";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("mesh2d"),
                  std::string::npos)
            << e.what();
    }
}

TEST(TopologyFactory, MalformedSpecsAreTypedConfigErrors)
{
    expectRejects("mesh2d:3x3", 16, "16");       // product mismatch
    expectRejects("torus3d:0x4x4", 16, "dimension");
    expectRejects("omega", 12, "power-of-two");
    expectRejects("hypercube", 12, "power-of-two");
    expectRejects("fattree:2;4,4", 16, "u1");     // missing up list
    expectRejects("fattree:0;;", 16, "level count");
    expectRejects("fattree:2;4,4;1,2,2", 16, "up");
    expectRejects("dragonfly:4x2", 16, "GROUPS");
    expectRejects("hier:2x4/mesh2d", 12, "divide");
    expectRejects("hier:/mesh2d", 16, "CHIPSxCORES");
    expectRejects("hier:2x4/", 16, "family");
    expectRejects("", 16, "empty");
}

TEST(TopologyFactory, FamilyListCoversTheGrammar)
{
    auto fams = topologyFamilies();
    for (const char *want :
         {"mesh2d", "torus3d", "omega", "hypercube", "fattree",
          "fully-connected", "dragonfly", "hier"})
        EXPECT_NE(std::find(fams.begin(), fams.end(), want),
                  fams.end())
            << want;
}

TEST(TopologyFactory, ExhaustedErrorExitCodeIsConfig)
{
    try {
        makeTopology("nonsense", 8);
        FAIL();
    } catch (const ConfigError &e) {
        EXPECT_EQ(e.exitCode(), kConfigExit);
    }
}

} // namespace
} // namespace ccsim::net
