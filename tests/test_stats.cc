/** @file Unit tests for statistics accumulators. */

#include <cmath>

#include <gtest/gtest.h>

#include "util/logging.hh"
#include "util/random.hh"
#include "util/stats.hh"

namespace ccsim {
namespace {

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample)
{
    RunningStats s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.min(), 5.0);
    EXPECT_EQ(s.max(), 5.0);
    EXPECT_EQ(s.mean(), 5.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0); // classic textbook data set
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, NegativeValues)
{
    RunningStats s;
    s.add(-3.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), -3.0);
    EXPECT_EQ(s.max(), 3.0);
}

TEST(RunningStats, ResetClears)
{
    RunningStats s;
    s.add(1.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(RunningStats, StableUnderOffset)
{
    // Welford should not lose precision with a large constant offset.
    RunningStats s;
    const double offset = 1e9;
    for (double x : {1.0, 2.0, 3.0})
        s.add(offset + x);
    EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
    EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-6);
}

TEST(SampleStats, PercentileInterpolates)
{
    SampleStats s;
    for (double x : {10.0, 20.0, 30.0, 40.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 40.0);
    EXPECT_DOUBLE_EQ(s.median(), 25.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0 / 3.0), 20.0);
}

TEST(SampleStats, PercentileSingleSample)
{
    SampleStats s;
    s.add(7.0);
    EXPECT_DOUBLE_EQ(s.median(), 7.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.99), 7.0);
}

TEST(SampleStats, PercentileEmptyIsZero)
{
    SampleStats s;
    EXPECT_DOUBLE_EQ(s.median(), 0.0);
}

TEST(SampleStats, PercentileOutOfRangePanics)
{
    throwOnError(true);
    SampleStats s;
    s.add(1.0);
    EXPECT_THROW(s.percentile(-0.1), PanicError);
    EXPECT_THROW(s.percentile(1.1), PanicError);
    throwOnError(false);
}

TEST(SampleStats, UnsortedInsertionOrderPreserved)
{
    SampleStats s;
    s.add(3.0);
    s.add(1.0);
    s.add(2.0);
    ASSERT_EQ(s.samples().size(), 3u);
    EXPECT_EQ(s.samples()[0], 3.0);
    EXPECT_EQ(s.samples()[1], 1.0);
    EXPECT_EQ(s.samples()[2], 2.0);
    EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

TEST(SampleStats, AddAfterPercentileInvalidatesCache)
{
    SampleStats s;
    s.add(1.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.median(), 2.0);
    s.add(100.0);
    EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(SampleStats, AgreesWithRunningStatsOnRandomData)
{
    Rng r(21);
    SampleStats s;
    RunningStats w;
    for (int i = 0; i < 5000; ++i) {
        double x = r.nextDouble(-10, 10);
        s.add(x);
        w.add(x);
    }
    EXPECT_DOUBLE_EQ(s.mean(), w.mean());
    EXPECT_DOUBLE_EQ(s.min(), w.min());
    EXPECT_DOUBLE_EQ(s.max(), w.max());
    EXPECT_NEAR(s.stddev(), w.stddev(), 1e-9);
}

} // namespace
} // namespace ccsim
