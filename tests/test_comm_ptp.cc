/** @file Point-to-point and context-isolation tests for Comm. */

#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "mpi/comm.hh"
#include "util/logging.hh"

namespace ccsim::mpi {
namespace {

using machine::Machine;
using Body = std::function<sim::Task<void>(Comm &)>;

void
runProgram(Machine &m, const Body &body)
{
    auto driver = [&m, &body](int rank) -> sim::Task<void> {
        Comm comm(m, rank);
        co_await body(comm);
    };
    for (int r = 0; r < m.size(); ++r)
        m.sim().spawn(driver(r));
    m.run();
}

TEST(CommPtp, SendRecvRoundTrip)
{
    Machine m(machine::t3dConfig(), 4);
    std::vector<int> got;
    Body body = [&](Comm &c) -> sim::Task<void> {
        if (c.rank() == 0) {
            std::vector<int> v{41, 42};
            co_await c.send(3, 9, 8, msg::makePayload(v));
        } else if (c.rank() == 3) {
            msg::Message msg = co_await c.recv(0, 9);
            got = msg::payloadAs<int>(msg.payload);
        }
    };
    runProgram(m, body);
    EXPECT_EQ(got, (std::vector<int>{41, 42}));
}

TEST(CommPtp, SubgroupPtpUsesGroupRanks)
{
    // Ranks inside a subgroup address each other by *subgroup* rank;
    // the mapping back to global nodes must be transparent.
    Machine m(machine::idealConfig(), 6);
    int receiver_global = -1;
    Body body = [&](Comm &c) -> sim::Task<void> {
        std::vector<int> members{5, 3, 1};
        if (c.rank() != 5 && c.rank() != 3 && c.rank() != 1)
            co_return;
        Comm sub = c.subgroup(members);
        if (sub.rank() == 0) { // global 5
            co_await sub.send(2, 1, 4); // to subgroup rank 2 = global 1
        } else if (sub.rank() == 2) {
            msg::Message msg = co_await sub.recv(0, 1);
            EXPECT_EQ(msg.src, 5); // global id of subgroup rank 0
            receiver_global = c.rank();
        }
    };
    runProgram(m, body);
    EXPECT_EQ(receiver_global, 1);
}

TEST(CommPtp, ContextsIsolateIdenticalTagsAcrossComms)
{
    // Same (src, dst, tag) in the world comm and a subgroup must not
    // cross-match: contexts differ.
    Machine m(machine::idealConfig(), 4);
    std::vector<int> world_val, sub_val;
    Body body = [&](Comm &c) -> sim::Task<void> {
        std::vector<int> members{0, 1};
        if (c.rank() == 0) {
            Comm sub = c.subgroup(members);
            std::vector<int> w{111};
            std::vector<int> s{222};
            // Send the subgroup message FIRST so a context mix-up
            // would deliver 222 to the world receive.
            co_await sub.send(1, 7, 4, msg::makePayload(s));
            co_await c.send(1, 7, 4, msg::makePayload(w));
        } else if (c.rank() == 1) {
            Comm sub = c.subgroup(members);
            msg::Message wm = co_await c.recv(0, 7);
            world_val = msg::payloadAs<int>(wm.payload);
            msg::Message sm = co_await sub.recv(0, 7);
            sub_val = msg::payloadAs<int>(sm.payload);
        }
    };
    runProgram(m, body);
    EXPECT_EQ(world_val, (std::vector<int>{111}));
    EXPECT_EQ(sub_val, (std::vector<int>{222}));
}

TEST(CommPtp, CollectiveAndPtpTrafficDoNotMix)
{
    // A pt-2-pt message with a tag that collides with the collective
    // sequence numbers must not be matched by a collective.
    Machine m(machine::idealConfig(), 2);
    bool done = false;
    Body body = [&](Comm &c) -> sim::Task<void> {
        if (c.rank() == 0) {
            co_await c.send(1, /*tag=*/0, 16); // tag 0 = first coll seq
            co_await c.barrier();
            co_await c.bcast(64, 0);
        } else {
            co_await c.barrier();
            co_await c.bcast(64, 0);
            msg::Message msg = co_await c.recv(0, 0);
            EXPECT_EQ(msg.bytes, 16);
            done = true;
        }
    };
    runProgram(m, body);
    EXPECT_TRUE(done);
}

TEST(CommPtp, IsendIrecvThroughComm)
{
    Machine m(machine::sp2Config(), 3);
    Bytes got = 0;
    Body body = [&](Comm &c) -> sim::Task<void> {
        if (c.rank() == 2) {
            msg::Request r = c.irecv(0, 5);
            // Do something else while it is outstanding.
            co_await c.compute(microseconds(100));
            msg::Message msg = co_await c.wait(std::move(r));
            got = msg.bytes;
        } else if (c.rank() == 0) {
            msg::Request s = c.isend(2, 5, 2048);
            co_await c.wait(std::move(s));
        }
    };
    runProgram(m, body);
    EXPECT_EQ(got, 2048);
}

TEST(CommPtp, SendrecvThroughComm)
{
    Machine m(machine::paragonConfig(), 2);
    int exchanged = 0;
    Body body = [&](Comm &c) -> sim::Task<void> {
        int other = 1 - c.rank();
        msg::Message msg = co_await c.sendrecv(other, 3, 32 * KiB,
                                               other, 3);
        EXPECT_EQ(msg.bytes, 32 * KiB);
        ++exchanged;
    };
    runProgram(m, body);
    EXPECT_EQ(exchanged, 2);
}

TEST(CommPtp, InvalidRanksFatalOrPanic)
{
    throwOnError(true);
    Machine m(machine::idealConfig(), 2);
    EXPECT_THROW(Comm(m, 7), FatalError);
    Comm good(m, 0);
    EXPECT_THROW(good.globalRank(5), PanicError);
    throwOnError(false);
}

} // namespace
} // namespace ccsim::mpi
