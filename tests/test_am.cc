/** @file Tests for the active-message layer and AM collectives. */

#include <gtest/gtest.h>

#include "am/am_collectives.hh"
#include "harness/measure.hh"
#include "machine/machine.hh"
#include "mpi/comm.hh"
#include "util/logging.hh"

namespace ccsim::am {
namespace {

using namespace time_literals;
using machine::Machine;

AmParams
testParams()
{
    AmParams p;
    p.send_overhead = 2 * US;
    p.handler_overhead = 1 * US;
    p.copy_bandwidth_mbs = 100.0;
    return p;
}

TEST(Am, HandlerRunsAtDestinationAfterOverheads)
{
    Machine m(machine::idealConfig(), 4);
    AmFabric fabric(m.sim(), m.network(), 4, testParams());
    Time handled_at = -1;
    std::uint64_t got_arg = 0;
    int got_src = -1;
    int h = fabric.registerHandler([&](const AmArrival &a) {
        handled_at = m.sim().now();
        got_arg = a.arg;
        got_src = a.src;
    });
    auto prog = [&]() -> sim::Task<void> {
        co_await fabric.node(0).send(2, h, 42);
    };
    m.sim().spawn(prog());
    m.run();
    EXPECT_EQ(got_arg, 42u);
    EXPECT_EQ(got_src, 0);
    // send(2us) + hop(10ns) + handler(1us)
    EXPECT_EQ(handled_at, microseconds(3.01));
}

TEST(Am, PayloadCarried)
{
    Machine m(machine::idealConfig(), 2);
    AmFabric fabric(m.sim(), m.network(), 2, testParams());
    std::vector<int> got;
    int h = fabric.registerHandler([&](const AmArrival &a) {
        got = msg::payloadAs<int>(a.payload);
    });
    auto prog = [&]() -> sim::Task<void> {
        std::vector<int> v{7, 8, 9};
        co_await fabric.node(0).send(1, h, 0, 12, msg::makePayload(v));
    };
    m.sim().spawn(prog());
    m.run();
    EXPECT_EQ(got, (std::vector<int>{7, 8, 9}));
}

TEST(Am, HandlersMayChainPosts)
{
    // Relay 0 -> 1 -> 2 -> 3 entirely in handlers.
    Machine m(machine::idealConfig(), 4);
    AmFabric fabric(m.sim(), m.network(), 4, testParams());
    int final_dst = -1;
    int h = -1;
    h = fabric.registerHandler([&](const AmArrival &a) {
        if (a.dst < 3)
            fabric.node(a.dst).post(a.dst + 1, h, a.arg);
        else
            final_dst = a.dst;
    });
    auto prog = [&]() -> sim::Task<void> {
        co_await fabric.node(0).send(1, h, 0);
    };
    m.sim().spawn(prog());
    m.run();
    EXPECT_EQ(final_dst, 3);
}

TEST(Am, SelfPostDelivers)
{
    Machine m(machine::idealConfig(), 2);
    AmFabric fabric(m.sim(), m.network(), 2, testParams());
    int count = 0;
    int h = fabric.registerHandler([&](const AmArrival &) { ++count; });
    auto prog = [&]() -> sim::Task<void> {
        co_await fabric.node(1).send(1, h, 0);
    };
    m.sim().spawn(prog());
    m.run();
    EXPECT_EQ(count, 1);
}

TEST(Am, StatsAndValidation)
{
    throwOnError(true);
    Machine m(machine::idealConfig(), 2);
    AmFabric fabric(m.sim(), m.network(), 2, testParams());
    EXPECT_THROW(fabric.registerHandler({}), FatalError);
    int h = fabric.registerHandler([](const AmArrival &) {});
    auto prog = [&]() -> sim::Task<void> {
        co_await fabric.node(0).send(1, h, 0);
    };
    m.sim().spawn(prog());
    m.run();
    EXPECT_EQ(fabric.node(0).sends(), 1u);
    EXPECT_EQ(fabric.node(1).handled(), 1u);
    EXPECT_THROW(fabric.node(0).post(5, h, 0), PanicError);
    EXPECT_THROW(fabric.node(0).post(1, 99, 0), PanicError);
    throwOnError(false);
}

class AmCollT : public ::testing::TestWithParam<int>
{
};

INSTANTIATE_TEST_SUITE_P(Sizes, AmCollT,
                         ::testing::Values(1, 2, 3, 5, 8, 16));

TEST_P(AmCollT, BarrierHoldsEveryone)
{
    int p = GetParam();
    Machine m(machine::idealConfig(), p);
    AmWorld world(m, testParams());
    Time last_entry = 0;
    Time first_exit = -1;
    auto prog = [&](int rank) -> sim::Task<void> {
        co_await m.sim().delay(Time(rank) * 10 * US);
        last_entry = std::max(last_entry, m.sim().now());
        co_await world.barrier(rank);
        if (first_exit < 0 || m.sim().now() < first_exit)
            first_exit = m.sim().now();
    };
    for (int r = 0; r < p; ++r)
        m.sim().spawn(prog(r));
    m.run();
    EXPECT_GE(first_exit, last_entry);
}

TEST_P(AmCollT, BcastDeliversData)
{
    int p = GetParam();
    int root = p > 2 ? 2 : 0;
    Machine m(machine::idealConfig(), p);
    AmWorld world(m, testParams());
    int checked = 0;
    auto prog = [&](int rank) -> sim::Task<void> {
        std::vector<std::int64_t> v{123, 456};
        msg::PayloadPtr data =
            rank == root ? msg::makePayload(v) : nullptr;
        auto out = co_await world.bcast(rank, 16, root, data);
        EXPECT_EQ(msg::payloadAs<std::int64_t>(out),
                  (std::vector<std::int64_t>{123, 456}))
            << "rank " << rank;
        ++checked;
    };
    for (int r = 0; r < p; ++r)
        m.sim().spawn(prog(r));
    m.run();
    EXPECT_EQ(checked, p);
}

TEST_P(AmCollT, ReduceSumsAtRoot)
{
    int p = GetParam();
    int root = p > 1 ? 1 : 0;
    Machine m(machine::idealConfig(), p);
    AmWorld world(m, testParams(),
                  mpi::makeCombiner(mpi::ReduceOp::Sum,
                                    mpi::Datatype::I64));
    std::int64_t got = -1;
    auto prog = [&](int rank) -> sim::Task<void> {
        std::vector<std::int64_t> v{rank + 1};
        auto out = co_await world.reduce(rank, 8, root,
                                         msg::makePayload(v));
        if (rank == root)
            got = msg::payloadAs<std::int64_t>(out)[0];
        else
            EXPECT_EQ(out, nullptr);
    };
    for (int r = 0; r < p; ++r)
        m.sim().spawn(prog(r));
    m.run();
    EXPECT_EQ(got, std::int64_t(p) * (p + 1) / 2);
}

TEST(AmColl, RepeatedRoundsStayConsistent)
{
    Machine m(machine::idealConfig(), 8);
    AmWorld world(m, testParams(),
                  mpi::makeCombiner(mpi::ReduceOp::Sum,
                                    mpi::Datatype::I64));
    std::vector<std::int64_t> sums;
    auto prog = [&](int rank) -> sim::Task<void> {
        for (int it = 0; it < 5; ++it) {
            co_await world.barrier(rank);
            std::vector<std::int64_t> v{(rank + 1) * (it + 1)};
            auto out = co_await world.reduce(rank, 8, 0,
                                             msg::makePayload(v));
            if (rank == 0)
                sums.push_back(
                    msg::payloadAs<std::int64_t>(out)[0]);
        }
    };
    for (int r = 0; r < 8; ++r)
        m.sim().spawn(prog(r));
    m.run();
    ASSERT_EQ(sums.size(), 5u);
    for (int it = 0; it < 5; ++it)
        EXPECT_EQ(sums[static_cast<size_t>(it)], 36 * (it + 1));
}

TEST(AmColl, FasterThanMpiForShortCollectives)
{
    // The experiment the paper proposes: AM strips the matching /
    // buffering layers, so short-message collectives should beat
    // their MPI counterparts on the same machine.
    for (auto cfg : machine::paperMachines()) {
        if (cfg.hardware_barrier) {
            // Compare software against software.
            cfg.hardware_barrier = false;
            cfg.setAlgorithm(machine::Coll::Barrier,
                             machine::Algo::Dissemination);
        }
        // MPI barrier time.
        auto mpi_meas = harness::measureCollective(
            cfg, 16, machine::Coll::Barrier, 0);

        // AM barrier time, measured with the same loop shape.
        Machine m(cfg, 16);
        AmWorld world(m, amParamsFor(cfg));
        Time elapsed = 0;
        auto prog = [&](int rank) -> sim::Task<void> {
            co_await world.barrier(rank); // warm-up
            Time start = m.sim().now();
            for (int i = 0; i < 3; ++i)
                co_await world.barrier(rank);
            if (rank == 0)
                elapsed = (m.sim().now() - start) / 3;
        };
        for (int r = 0; r < 16; ++r)
            m.sim().spawn(prog(r));
        m.run();

        EXPECT_LT(toMicros(elapsed), mpi_meas.us()) << cfg.name;
    }
}

} // namespace
} // namespace ccsim::am
