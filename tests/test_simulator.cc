/** @file Unit tests for the Simulator event loop and awaitables. */

#include <vector>

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "util/logging.hh"

namespace ccsim::sim {
namespace {

using namespace time_literals;

TEST(Simulator, TimeStartsAtZero)
{
    Simulator s;
    EXPECT_EQ(s.now(), 0);
}

TEST(Simulator, DelayAdvancesTime)
{
    Simulator s;
    Time seen = -1;
    auto prog = [&]() -> Task<void> {
        co_await s.delay(5 * US);
        seen = s.now();
    };
    s.spawn(prog());
    s.run();
    EXPECT_EQ(seen, 5 * US);
}

TEST(Simulator, SequentialDelaysAccumulate)
{
    Simulator s;
    std::vector<Time> stamps;
    auto prog = [&]() -> Task<void> {
        co_await s.delay(1 * US);
        stamps.push_back(s.now());
        co_await s.delay(2 * US);
        stamps.push_back(s.now());
        co_await s.delay(0);
        stamps.push_back(s.now());
    };
    s.spawn(prog());
    s.run();
    EXPECT_EQ(stamps, (std::vector<Time>{1 * US, 3 * US, 3 * US}));
}

TEST(Simulator, ZeroDelayDoesNotSuspend)
{
    Simulator s;
    bool done_before_run = false;
    auto prog = [&]() -> Task<void> {
        co_await s.delay(0);
        done_before_run = true;
    };
    s.spawn(prog());
    // spawn runs until the first real block; a zero delay is not one.
    EXPECT_TRUE(done_before_run);
    s.run();
}

TEST(Simulator, ParallelTasksInterleaveByTime)
{
    Simulator s;
    std::vector<int> order;
    auto prog = [&](int id, Time d) -> Task<void> {
        co_await s.delay(d);
        order.push_back(id);
    };
    s.spawn(prog(1, 30 * NS));
    s.spawn(prog(2, 10 * NS));
    s.spawn(prog(3, 20 * NS));
    s.run();
    EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
}

TEST(Simulator, ManyTasksAllComplete)
{
    Simulator s;
    int done = 0;
    auto prog = [&](int i) -> Task<void> {
        co_await s.delay(i * NS);
        co_await s.delay((128 - i) * NS);
        ++done;
    };
    for (int i = 0; i < 128; ++i)
        s.spawn(prog(i));
    s.run();
    EXPECT_EQ(done, 128);
    EXPECT_EQ(s.pendingTasks(), 0u);
}

TEST(Simulator, NegativeDelayPanics)
{
    throwOnError(true);
    Simulator s;
    auto prog = [&]() -> Task<void> {
        co_await s.delay(-1);
    };
    // The panic is raised inside the coroutine, captured by its
    // promise, and surfaces from run().
    s.spawn(prog());
    EXPECT_THROW(s.run(), PanicError);
    throwOnError(false);
}

TEST(Simulator, TriggerReleasesAllWaiters)
{
    Simulator s;
    Trigger t(s);
    int released = 0;
    auto waiter = [&]() -> Task<void> {
        co_await t.wait();
        ++released;
    };
    auto firer = [&]() -> Task<void> {
        co_await s.delay(10 * US);
        t.fire();
    };
    s.spawn(waiter());
    s.spawn(waiter());
    s.spawn(waiter());
    s.spawn(firer());
    s.run();
    EXPECT_EQ(released, 3);
    EXPECT_TRUE(t.fired());
}

TEST(Simulator, AwaitingFiredTriggerIsImmediate)
{
    Simulator s;
    Trigger t(s);
    t.fire();
    Time when = -1;
    auto prog = [&]() -> Task<void> {
        co_await s.delay(3 * US);
        co_await t.wait(); // already fired: no extra time
        when = s.now();
    };
    s.spawn(prog());
    s.run();
    EXPECT_EQ(when, 3 * US);
}

TEST(Simulator, TriggerFireIsIdempotent)
{
    Simulator s;
    Trigger t(s);
    t.fire();
    t.fire();
    EXPECT_TRUE(t.fired());
    s.run();
}

TEST(Simulator, DeadlockDetected)
{
    throwOnError(true);
    Simulator s;
    Trigger never(s);
    auto prog = [&]() -> Task<void> {
        co_await never.wait();
    };
    s.spawn(prog());
    EXPECT_THROW(s.run(), PanicError);
    throwOnError(false);
}

TEST(Simulator, EventLimitGuards)
{
    throwOnError(true);
    Simulator s;
    s.setEventLimit(100);
    auto prog = [&]() -> Task<void> {
        for (;;)
            co_await s.delay(1 * NS);
    };
    s.spawn(prog());
    EXPECT_THROW(s.run(), PanicError);
    throwOnError(false);
}

TEST(Simulator, SuspendWithParksAndResumes)
{
    Simulator s;
    std::coroutine_handle<> parked;
    Time resumed_at = -1;
    auto prog = [&]() -> Task<void> {
        co_await suspendWith([&](std::coroutine_handle<> h) {
            parked = h;
        });
        resumed_at = s.now();
    };
    auto kicker = [&]() -> Task<void> {
        co_await s.delay(42 * US);
        s.resumeNow(parked);
    };
    s.spawn(prog());
    s.spawn(kicker());
    s.run();
    EXPECT_EQ(resumed_at, 42 * US);
}

TEST(Simulator, RunTwiceWithFreshSpawns)
{
    Simulator s;
    int count = 0;
    auto prog = [&]() -> Task<void> {
        co_await s.delay(1 * US);
        ++count;
    };
    s.spawn(prog());
    s.run();
    s.spawn(prog());
    s.run();
    EXPECT_EQ(count, 2);
}

} // namespace
} // namespace ccsim::sim
