/** @file Tests for MachineConfig serialization. */

#include <sstream>

#include <gtest/gtest.h>

#include "machine/config_io.hh"
#include "util/logging.hh"

namespace ccsim::machine {
namespace {

void
expectConfigsEqual(const MachineConfig &a, const MachineConfig &b)
{
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.topology, b.topology);
    EXPECT_EQ(a.switch_radix, b.switch_radix);
    EXPECT_DOUBLE_EQ(a.network.link_bandwidth_mbs,
                     b.network.link_bandwidth_mbs);
    EXPECT_EQ(a.network.hop_latency, b.network.hop_latency);
    EXPECT_EQ(a.network.packet_overhead, b.network.packet_overhead);
    EXPECT_EQ(a.network.contention, b.network.contention);
    EXPECT_EQ(a.transport.send_overhead, b.transport.send_overhead);
    EXPECT_EQ(a.transport.recv_overhead, b.transport.recv_overhead);
    EXPECT_DOUBLE_EQ(a.transport.copy_bandwidth_mbs,
                     b.transport.copy_bandwidth_mbs);
    EXPECT_EQ(a.transport.eager_threshold, b.transport.eager_threshold);
    EXPECT_EQ(a.transport.rendezvous_overhead,
              b.transport.rendezvous_overhead);
    EXPECT_DOUBLE_EQ(a.transport.coprocessor_overlap,
                     b.transport.coprocessor_overlap);
    EXPECT_EQ(a.transport.blt_enabled, b.transport.blt_enabled);
    EXPECT_EQ(a.transport.blt_threshold, b.transport.blt_threshold);
    EXPECT_EQ(a.transport.blt_setup, b.transport.blt_setup);
    EXPECT_DOUBLE_EQ(a.reduce_bandwidth_mbs, b.reduce_bandwidth_mbs);
    EXPECT_EQ(a.hardware_barrier, b.hardware_barrier);
    EXPECT_EQ(a.hardware_barrier_latency, b.hardware_barrier_latency);
    for (Coll op : kAllColls) {
        EXPECT_EQ(a.algorithmFor(op), b.algorithmFor(op))
            << collName(op);
        const CollCosts &ca = a.costsFor(op);
        const CollCosts &cb = b.costsFor(op);
        EXPECT_EQ(ca.entry, cb.entry) << collName(op);
        EXPECT_EQ(ca.per_stage, cb.per_stage) << collName(op);
        EXPECT_DOUBLE_EQ(ca.per_stage_ns_per_byte,
                         cb.per_stage_ns_per_byte)
            << collName(op);
        EXPECT_DOUBLE_EQ(ca.reduce_bandwidth_override_mbs,
                         cb.reduce_bandwidth_override_mbs)
            << collName(op);
        EXPECT_EQ(ca.send_overhead_override, cb.send_overhead_override)
            << collName(op);
        EXPECT_EQ(ca.recv_overhead_override, cb.recv_overhead_override)
            << collName(op);
    }
}

TEST(ConfigIo, AllPresetsRoundTrip)
{
    for (const auto &cfg :
         {sp2Config(), t3dConfig(), paragonConfig(), idealConfig()}) {
        std::stringstream ss;
        saveConfig(cfg, ss);
        MachineConfig loaded = loadConfig(ss);
        expectConfigsEqual(cfg, loaded);
    }
}

TEST(ConfigIo, BasePresetWithOverrides)
{
    std::stringstream ss;
    ss << "base = SP2\n"
       << "name = FatPipeSP2\n"
       << "link_bandwidth_mbs = 150\n"
       << "bcast.algorithm = scatter-allgather\n"
       << "bcast.per_stage_us = 10\n";
    MachineConfig cfg = loadConfig(ss);
    EXPECT_EQ(cfg.name, "FatPipeSP2");
    EXPECT_EQ(cfg.topology, TopologyKind::Omega); // from the base
    EXPECT_DOUBLE_EQ(cfg.network.link_bandwidth_mbs, 150.0);
    EXPECT_EQ(cfg.algorithmFor(Coll::Bcast), Algo::ScatterAllgather);
    EXPECT_EQ(cfg.costsFor(Coll::Bcast).per_stage, microseconds(10));
    // Untouched fields keep the SP2 calibration.
    EXPECT_EQ(cfg.transport.send_overhead,
              sp2Config().transport.send_overhead);
}

TEST(ConfigIo, CommentsAndBlanksIgnored)
{
    std::stringstream ss;
    ss << "# header comment\n\n"
       << "name = X  # trailing comment\n"
       << "   \n"
       << "link_bandwidth_mbs = 5\n";
    MachineConfig cfg = loadConfig(ss);
    EXPECT_EQ(cfg.name, "X");
    EXPECT_DOUBLE_EQ(cfg.network.link_bandwidth_mbs, 5.0);
}

TEST(ConfigIo, ErrorsAreFatal)
{
    throwOnError(true);
    auto load = [](const std::string &text) {
        std::stringstream ss(text);
        return loadConfig(ss);
    };
    EXPECT_THROW(load("bogus_key = 1\n"), FatalError);
    EXPECT_THROW(load("link_bandwidth_mbs = fast\n"), FatalError);
    EXPECT_THROW(load("contention = maybe\n"), FatalError);
    EXPECT_THROW(load("no equals sign\n"), FatalError);
    EXPECT_THROW(load("bcast.bogus = 1\n"), FatalError);
    EXPECT_THROW(load("warp.algorithm = linear\n"), FatalError);
    EXPECT_THROW(load("bcast.algorithm = warp-speed\n"), FatalError);
    EXPECT_THROW(load("topology = moebius\n"), FatalError);
    EXPECT_THROW(load("name = x\nbase = SP2\n"), FatalError);
    EXPECT_THROW(load("base = VAX\n"), FatalError);
    // Validation runs on load: hardware algo without hardware.
    EXPECT_THROW(load("barrier.algorithm = hardware\n"), FatalError);
    throwOnError(false);
}

TEST(ConfigIo, NameHelpers)
{
    EXPECT_EQ(collKey(Coll::Alltoall), "alltoall");
    EXPECT_EQ(collKey(Coll::ReduceScatter), "reduce_scatter");
    EXPECT_EQ(algoByName("binomial"), Algo::Binomial);
    EXPECT_EQ(algoByName("rabenseifner"), Algo::Rabenseifner);
    EXPECT_EQ(topologyKindByName("torus3d"), TopologyKind::Torus3D);
    EXPECT_EQ(topologyKindByName("hypercube"), TopologyKind::Hypercube);
    EXPECT_EQ(presetByName("T3D").name, "T3D");
}

TEST(ConfigIo, FileRoundTrip)
{
    std::string path = "/tmp/ccsim_config_test.cfg";
    saveConfigFile(t3dConfig(), path);
    MachineConfig loaded = loadConfigFile(path);
    expectConfigsEqual(t3dConfig(), loaded);
}

TEST(ConfigIo, MissingFileFatal)
{
    throwOnError(true);
    EXPECT_THROW(loadConfigFile("/nonexistent/nowhere.cfg"),
                 FatalError);
    throwOnError(false);
}

} // namespace
} // namespace ccsim::machine
