/** @file Unit and property tests for the deterministic RNG. */

#include <cstdint>
#include <set>

#include <gtest/gtest.h>

#include "util/logging.hh"
#include "util/random.hh"

namespace ccsim {
namespace {

TEST(Random, DeterministicForSameSeed)
{
    Rng a(1234), b(1234);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Random, BoundedStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(r.nextBounded(17), 17u);
}

TEST(Random, BoundedZeroPanics)
{
    throwOnError(true);
    Rng r(7);
    EXPECT_THROW(r.nextBounded(0), PanicError);
    throwOnError(false);
}

TEST(Random, BoundedCoversAllResidues)
{
    Rng r(99);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Random, RangeInclusive)
{
    Rng r(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        auto v = r.nextRange(-2, 2);
        ASSERT_GE(v, -2);
        ASSERT_LE(v, 2);
        saw_lo |= (v == -2);
        saw_hi |= (v == 2);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Random, RangeSingleton)
{
    Rng r(5);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(r.nextRange(42, 42), 42);
}

TEST(Random, RangeInvertedPanics)
{
    throwOnError(true);
    Rng r(5);
    EXPECT_THROW(r.nextRange(3, 2), PanicError);
    throwOnError(false);
}

TEST(Random, DoubleInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 10000; ++i) {
        double d = r.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
    }
}

TEST(Random, DoubleMeanNearHalf)
{
    Rng r(13);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Random, DoubleRange)
{
    Rng r(17);
    for (int i = 0; i < 1000; ++i) {
        double d = r.nextDouble(-5.0, 5.0);
        ASSERT_GE(d, -5.0);
        ASSERT_LT(d, 5.0);
    }
}

TEST(Random, BoolProbabilityRespected)
{
    Rng r(19);
    int trues = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (r.nextBool(0.25))
            ++trues;
    EXPECT_NEAR(static_cast<double>(trues) / n, 0.25, 0.01);
}

} // namespace
} // namespace ccsim
