/** @file Tests for the parallel sweep engine. */

#include <gtest/gtest.h>

#include "harness/sweep.hh"
#include "machine/machine_config.hh"
#include "util/logging.hh"

namespace ccsim::harness {
namespace {

using machine::Algo;
using machine::Coll;

/** A small but heterogeneous spec: two machines, a barrier (no
 *  length axis), point counts that do not divide evenly by any job
 *  count under test. */
SweepSpec
testSpec()
{
    SweepSpec spec;
    spec.machines = {machine::t3dConfig(), machine::sp2Config()};
    spec.ops = {Coll::Bcast, Coll::Barrier, Coll::Alltoall};
    spec.sizes = {2, 4, 8};
    spec.lengths = {16, 1024};
    return spec;
}

TEST(SweepSpec, ExpandsCrossProductInSpecOrder)
{
    auto spec = testSpec();
    auto points = spec.expand();
    // Per machine: bcast 3 sizes x 2 lengths + barrier 3 x 1
    //              + alltoall 3 x 2 = 15.
    ASSERT_EQ(points.size(), 30u);
    // Machine outermost.
    EXPECT_EQ(points[0].cfg.name, "T3D");
    EXPECT_EQ(points[15].cfg.name, "SP2");
    // Then op, then p, then m.
    EXPECT_EQ(points[0].op, Coll::Bcast);
    EXPECT_EQ(points[0].p, 2);
    EXPECT_EQ(points[0].m, 16);
    EXPECT_EQ(points[1].m, 1024);
    EXPECT_EQ(points[2].p, 4);
    // Barrier collapses the length axis to one m = 0 point per size.
    EXPECT_EQ(points[6].op, Coll::Barrier);
    EXPECT_EQ(points[6].m, 0);
    EXPECT_EQ(points[7].op, Coll::Barrier);
    EXPECT_EQ(points[7].p, 4);
}

TEST(SweepSpec, EmptyAxesAreFatal)
{
    throwOnError(true);
    SweepSpec spec;
    EXPECT_THROW(spec.expand(), FatalError);
    spec.machines = {machine::t3dConfig()};
    EXPECT_THROW(spec.expand(), FatalError);
    spec.ops = {Coll::Bcast};
    spec.algos.clear();
    EXPECT_THROW(spec.expand(), FatalError);
    throwOnError(false);
}

TEST(SweepSpec, DefaultsToPaperSweeps)
{
    SweepSpec spec;
    spec.machines = {machine::t3dConfig()};
    spec.ops = {Coll::Bcast};
    auto points = spec.expand();
    EXPECT_EQ(points.size(), paperMachineSizes("T3D").size() *
                                 paperMessageLengths().size());
}

/** The determinism contract: any --jobs level reproduces the serial
 *  measureCollective results bit for bit, in spec order. */
TEST(SweepRunner, BitIdenticalAcrossJobCounts)
{
    auto spec = testSpec();
    auto points = spec.expand();

    // Serial reference: direct measureCollective calls.
    std::vector<Measurement> reference;
    for (const auto &pt : points)
        reference.push_back(measureCollective(pt.cfg, pt.p, pt.op,
                                              pt.m, pt.algo,
                                              pt.options));

    for (int jobs : {1, 2, 8}) {
        SweepRunner runner(jobs);
        EXPECT_EQ(runner.jobs(), jobs);
        auto results = runner.run(points);
        ASSERT_EQ(results.size(), reference.size());
        for (std::size_t i = 0; i < results.size(); ++i) {
            EXPECT_EQ(results[i].max_time, reference[i].max_time)
                << "jobs=" << jobs << " point " << i;
            EXPECT_EQ(results[i].min_time, reference[i].min_time)
                << "jobs=" << jobs << " point " << i;
            EXPECT_EQ(results[i].mean_time, reference[i].mean_time)
                << "jobs=" << jobs << " point " << i;
            EXPECT_EQ(results[i].machine, reference[i].machine);
            EXPECT_EQ(results[i].op, reference[i].op);
            EXPECT_EQ(results[i].m, reference[i].m);
            EXPECT_EQ(results[i].p, reference[i].p);
        }
    }
}

TEST(SweepRunner, SkewInjectionStaysDeterministicInParallel)
{
    // Clock-skew injection draws from a per-point RNG seeded by the
    // point's MeasureOptions, so parallel runs must still agree.
    SweepSpec spec;
    spec.machines = {machine::t3dConfig()};
    spec.ops = {Coll::Bcast};
    spec.sizes = {4, 8};
    spec.lengths = {256};
    spec.options.max_skew = microseconds(10);

    auto serial = SweepRunner(1).run(spec);
    auto parallel = SweepRunner(4).run(spec);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].max_time, parallel[i].max_time);
        EXPECT_EQ(serial[i].min_time, parallel[i].min_time);
        EXPECT_EQ(serial[i].mean_time, parallel[i].mean_time);
    }
}

TEST(SweepRunner, StatsRecordThroughput)
{
    SweepSpec spec;
    spec.machines = {machine::t3dConfig()};
    spec.ops = {Coll::Barrier};
    spec.sizes = {2, 4};

    SweepRunner runner(2);
    auto results = runner.run(spec);
    EXPECT_EQ(results.size(), 2u);
    EXPECT_EQ(runner.lastStats().points, 2u);
    EXPECT_GT(runner.lastStats().wall_seconds, 0.0);
    EXPECT_GT(runner.lastStats().pointsPerSec(), 0.0);
}

TEST(SweepRunner, MoreJobsThanPointsIsFine)
{
    SweepSpec spec;
    spec.machines = {machine::t3dConfig()};
    spec.ops = {Coll::Barrier};
    spec.sizes = {2};

    auto results = SweepRunner(16).run(spec);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_GT(results[0].max_time, 0);
}

TEST(SweepRunner, EmptyPointListIsANoop)
{
    SweepRunner runner(4);
    auto results = runner.run(std::vector<SweepPoint>{});
    EXPECT_TRUE(results.empty());
    EXPECT_EQ(runner.lastStats().points, 0u);
}

TEST(SweepRunner, DefaultJobsIsPositive)
{
    EXPECT_GE(SweepRunner::defaultJobs(), 1);
    EXPECT_GE(SweepRunner().jobs(), 1);
}

TEST(SweepRunner, WorkerErrorPropagates)
{
    throwOnError(true);
    std::vector<SweepPoint> points(4);
    for (auto &pt : points) {
        pt.cfg = machine::t3dConfig();
        pt.p = 4;
        pt.op = Coll::Bcast;
        pt.m = 64;
    }
    points[2].options.iterations = 0; // invalid: fatal inside worker
    SweepRunner runner(2);
    EXPECT_THROW(runner.run(points), FatalError);
    throwOnError(false);
}

} // namespace
} // namespace ccsim::harness
