/** @file Unit tests for the logging/error facility. */

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace ccsim {
namespace {

class LoggingTest : public ::testing::Test
{
  protected:
    void SetUp() override { prev_ = throwOnError(true); }
    void TearDown() override { throwOnError(prev_); }

  private:
    bool prev_ = false;
};

TEST_F(LoggingTest, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config %d", 42), FatalError);
}

TEST_F(LoggingTest, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("invariant %s broken", "x"), PanicError);
}

TEST_F(LoggingTest, FatalMessageFormatted)
{
    try {
        fatal("value was %d (%s)", 7, "seven");
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value was 7 (seven)");
    }
}

TEST_F(LoggingTest, PanicMessageFormatted)
{
    try {
        panic("at %s:%d", "file.cc", 10);
        FAIL() << "panic did not throw";
    } catch (const PanicError &e) {
        EXPECT_STREQ(e.what(), "at file.cc:10");
    }
}

TEST_F(LoggingTest, FatalAndPanicAreDistinctTypes)
{
    // A handler for user errors must not swallow internal bugs.
    bool caught_fatal = false;
    try {
        panic("bug");
    } catch (const FatalError &) {
        caught_fatal = true;
    } catch (const PanicError &) {
    }
    EXPECT_FALSE(caught_fatal);
}

TEST_F(LoggingTest, ThrowOnErrorReturnsPrevious)
{
    EXPECT_TRUE(throwOnError(true));  // set in fixture
    EXPECT_TRUE(throwOnError(false));
    EXPECT_FALSE(throwOnError(true));
}

TEST(LoggingQuiet, QuietSuppressionToggles)
{
    EXPECT_FALSE(quietLogging(true));
    inform("this should not appear");
    warn("nor this");
    EXPECT_TRUE(quietLogging(false));
}

} // namespace
} // namespace ccsim
