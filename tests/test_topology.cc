/** @file Unit + property tests for topologies and analytic routing. */

#include <set>

#include <gtest/gtest.h>

#include "net/dragonfly.hh"
#include "net/fat_tree.hh"
#include "net/fully_connected.hh"
#include "net/hierarchical.hh"
#include "net/hypercube.hh"
#include "net/mesh2d.hh"
#include "net/omega.hh"
#include "net/torus3d.hh"
#include "util/logging.hh"

namespace ccsim::net {
namespace {

TEST(Mesh2D, CoordsRoundTrip)
{
    Mesh2D m(4, 8);
    EXPECT_EQ(m.numNodes(), 32);
    for (int n = 0; n < m.numNodes(); ++n) {
        auto [r, c] = m.coords(n);
        EXPECT_EQ(m.nodeAt(r, c), n);
    }
}

TEST(Mesh2D, HopsAreManhattanDistance)
{
    Mesh2D m(4, 4);
    EXPECT_EQ(m.hops(0, 0), 0);
    EXPECT_EQ(m.hops(0, 3), 3);       // along a row
    EXPECT_EQ(m.hops(0, 12), 3);      // along a column
    EXPECT_EQ(m.hops(0, 15), 6);      // opposite corner
    EXPECT_EQ(m.hops(5, 10), 2);
}

TEST(Mesh2D, XThenYRouting)
{
    // From (0,0) to (1,1): the route must pass through (0,1), i.e.
    // its first link must be an +x link of node 0.
    Mesh2D m(2, 2);
    std::vector<LinkId> path = m.routeVector(0, 3);
    ASSERT_EQ(path.size(), 2u);
    EXPECT_EQ(path[0], 0 * 4 + 0);    // node 0, PosX
    EXPECT_EQ(path[1], 1 * 4 + 2);    // node 1, PosY
}

TEST(Mesh2D, DiameterIsPerimeterPath)
{
    Mesh2D m(4, 8);
    EXPECT_EQ(m.diameter(), 3 + 7);
}

TEST(Mesh2D, OppositeRoutesUseDisjointLinks)
{
    Mesh2D m(4, 4);
    std::vector<LinkId> ab = m.routeVector(0, 15);
    std::vector<LinkId> ba = m.routeVector(15, 0);
    std::set<LinkId> sa(ab.begin(), ab.end());
    for (LinkId l : ba)
        EXPECT_EQ(sa.count(l), 0u) << "full-duplex links must differ";
}

TEST(Mesh2D, InvalidDimsFatal)
{
    throwOnError(true);
    EXPECT_THROW(Mesh2D(0, 4), FatalError);
    EXPECT_THROW(Mesh2D(4, -1), FatalError);
    throwOnError(false);
}

TEST(Mesh2D, OutOfRangeNodePanics)
{
    throwOnError(true);
    Mesh2D m(2, 2);
    EXPECT_THROW(m.routeFrom(0, 4), PanicError);
    EXPECT_THROW(m.routeFrom(-1, 0), PanicError);
    throwOnError(false);
}

TEST(RouteCursor, DefaultIsExhaustedAndSelfRouteIsEmpty)
{
    RouteCursor fresh;
    EXPECT_TRUE(fresh.done());
    EXPECT_EQ(fresh.next(), kNoLink);

    Mesh2D m(4, 4);
    RouteCursor self = m.routeFrom(5, 5);
    EXPECT_TRUE(self.done());
    EXPECT_EQ(self.next(), kNoLink);
}

TEST(RouteCursor, CopyRestartsIndependently)
{
    // A saved copy replays the remainder of the walk even after the
    // original is exhausted — this is what lets Network::transfer
    // make several passes over one route.
    Mesh2D m(4, 4);
    RouteCursor a = m.routeFrom(0, 15);
    RouteCursor saved = a;
    std::vector<LinkId> first, second;
    for (LinkId l = a.next(); l != kNoLink; l = a.next())
        first.push_back(l);
    EXPECT_TRUE(a.done());
    for (LinkId l = saved.next(); l != kNoLink; l = saved.next())
        second.push_back(l);
    EXPECT_EQ(first, second);
    EXPECT_EQ(first, m.routeVector(0, 15));
}

TEST(Torus3D, CoordsRoundTrip)
{
    Torus3D t(4, 4, 4);
    EXPECT_EQ(t.numNodes(), 64);
    for (int n = 0; n < t.numNodes(); ++n) {
        auto c = t.coords(n);
        EXPECT_EQ(t.nodeAt(c[0], c[1], c[2]), n);
    }
}

TEST(Torus3D, WraparoundShortensPaths)
{
    Torus3D t(8, 1, 1);
    // 0 -> 7 is one hop backwards around the ring, not 7 forward.
    EXPECT_EQ(t.hops(0, 7), 1);
    EXPECT_EQ(t.hops(0, 4), 4); // antipodal: no shortcut
    EXPECT_EQ(t.hops(0, 5), 3); // 3 backwards beats 5 forwards
}

TEST(Torus3D, RingStepDirection)
{
    EXPECT_EQ(Torus3D::ringStep(0, 1, 8), 1);
    EXPECT_EQ(Torus3D::ringStep(0, 7, 8), -1);
    EXPECT_EQ(Torus3D::ringStep(0, 4, 8), 1); // tie -> positive
    EXPECT_EQ(Torus3D::ringStep(3, 3, 8), 0);
}

TEST(Torus3D, DiameterOfCube)
{
    // 4x4x4 torus: at most 2 hops per dimension.
    Torus3D t(4, 4, 4);
    EXPECT_EQ(t.diameter(), 6);
}

TEST(Torus3D, HopsMatchPerDimensionRingDistance)
{
    Torus3D t(4, 2, 2);
    for (int s = 0; s < t.numNodes(); ++s) {
        for (int d = 0; d < t.numNodes(); ++d) {
            auto a = t.coords(s), b = t.coords(d);
            int dims[3] = {4, 2, 2};
            int expect = 0;
            for (int k = 0; k < 3; ++k) {
                int fwd = (b[k] - a[k] + dims[k]) % dims[k];
                expect += std::min(fwd, dims[k] - fwd);
            }
            ASSERT_EQ(t.hops(s, d), expect) << s << "->" << d;
        }
    }
}

TEST(Omega, StageCount)
{
    EXPECT_EQ(Omega(64, 4).stages(), 3);
    EXPECT_EQ(Omega(64, 2).stages(), 6);
    EXPECT_EQ(Omega(128, 4).stages(), 4);  // padded to 256 ports
    EXPECT_EQ(Omega(2, 4).stages(), 1);
}

TEST(Omega, PortsCoverNodes)
{
    Omega o(100, 4);
    EXPECT_GE(o.ports(), 100);
    EXPECT_EQ(o.ports(), 256);
}

TEST(Omega, RouteLengthIsStagesPlusInjection)
{
    Omega o(64, 4);
    EXPECT_EQ(o.routeVector(5, 44).size(),
              static_cast<size_t>(o.stages()) + 1);
}

TEST(Omega, AllPairsRouteToDestination)
{
    // The walk panics internally if the digit steering fails, so just
    // exercising every pair is a real property check.
    for (int radix : {2, 4}) {
        Omega o(32, radix);
        for (int s = 0; s < 32; ++s) {
            for (int d = 0; d < 32; ++d) {
                if (s == d)
                    continue;
                std::vector<LinkId> path = o.routeVector(s, d);
                ASSERT_EQ(path.size(),
                          static_cast<size_t>(o.stages()) + 1);
                for (LinkId l : path)
                    ASSERT_LT(static_cast<size_t>(l), o.numLinks());
            }
        }
    }
}

TEST(Omega, DistinctDestinationsUseDistinctEjectionWires)
{
    Omega o(16, 2);
    EXPECT_NE(o.routeVector(3, 7).back(), o.routeVector(3, 8).back());
}

TEST(Omega, SameDestinationSharesEjectionWire)
{
    Omega o(16, 2);
    EXPECT_EQ(o.routeVector(3, 7).back(), o.routeVector(12, 7).back());
}

TEST(Omega, SelfRouteIsEmpty)
{
    Omega o(16, 2);
    EXPECT_TRUE(o.routeVector(5, 5).empty());
}

TEST(Hypercube, DimensionsAndLinks)
{
    Hypercube h(16);
    EXPECT_EQ(h.dimensions(), 4);
    EXPECT_EQ(h.numNodes(), 16);
    EXPECT_EQ(h.numLinks(), 64u);
}

TEST(Hypercube, HopsAreHammingDistance)
{
    Hypercube h(16);
    EXPECT_EQ(h.hops(0, 0), 0);
    EXPECT_EQ(h.hops(0, 1), 1);
    EXPECT_EQ(h.hops(0, 15), 4);
    EXPECT_EQ(h.hops(5, 10), 4);  // 0101 vs 1010
    EXPECT_EQ(h.hops(3, 1), 1);
    EXPECT_EQ(h.diameter(), 4);
}

TEST(Hypercube, EcubeRoutingCorrectsLowBitsFirst)
{
    Hypercube h(8);
    std::vector<LinkId> path = h.routeVector(0, 6); // 000 -> 110
    ASSERT_EQ(path.size(), 2u);
    EXPECT_EQ(path[0], 0 * 3 + 1); // node 0, dim 1
    EXPECT_EQ(path[1], 2 * 3 + 2); // node 2, dim 2
}

TEST(Hypercube, AllPairsRoutesAreMinimal)
{
    Hypercube h(32);
    for (int s = 0; s < 32; ++s) {
        for (int d = 0; d < 32; ++d) {
            ASSERT_EQ(h.routeVector(s, d).size(),
                      static_cast<size_t>(__builtin_popcount(
                          static_cast<unsigned>(s ^ d))));
        }
    }
}

TEST(Hypercube, NonPowerOfTwoFatal)
{
    throwOnError(true);
    EXPECT_THROW(Hypercube(12), FatalError);
    EXPECT_THROW(Hypercube(0), FatalError);
    throwOnError(false);
}

TEST(FullyConnected, SingleHopEverywhere)
{
    FullyConnected f(16);
    EXPECT_EQ(f.diameter(), 1);
    EXPECT_EQ(f.numLinks(), 256u);
}

TEST(FullyConnected, AllPairsDisjointLinks)
{
    FullyConnected f(8);
    std::set<LinkId> seen;
    for (int s = 0; s < 8; ++s) {
        for (int d = 0; d < 8; ++d) {
            if (s == d)
                continue;
            std::vector<LinkId> p = f.routeVector(s, d);
            ASSERT_EQ(p.size(), 1u);
            EXPECT_TRUE(seen.insert(p[0]).second)
                << "pair " << s << "->" << d << " reuses a link";
        }
    }
}

TEST(FatTree, ShapeCounts)
{
    // XGFT(2; 4,4; 1,2): 16 nodes, 4 leaf switches, 2 roots.
    FatTree ft({4, 4}, {1, 2});
    EXPECT_EQ(ft.numNodes(), 16);
    EXPECT_EQ(ft.levels(), 2);
    EXPECT_EQ(ft.switchesAt(1), 4);
    EXPECT_EQ(ft.switchesAt(2), 2);
    // Tier 1: 16 up + 16 down; tier 2: 8 up + 8 down.
    EXPECT_EQ(ft.numLinks(), 48u);
}

TEST(FatTree, RouteLengthIsTwiceCommonLevel)
{
    FatTree ft({4, 4}, {1, 2});
    for (int s = 0; s < 16; ++s) {
        for (int d = 0; d < 16; ++d) {
            if (s == d)
                continue;
            const int m = ft.commonLevel(s, d);
            ASSERT_EQ(ft.hops(s, d), 2 * m) << s << "->" << d;
            // Same leaf switch iff same block of 4.
            EXPECT_EQ(m, s / 4 == d / 4 ? 1 : 2);
        }
    }
}

TEST(FatTree, AllPairsRoutesValidAndMirrorSymmetric)
{
    // The down-path to d is unique, so the last link of every route
    // to d from outside its leaf block is the same (traffic to one
    // node converges); link ids stay in range throughout.
    FatTree ft({2, 2, 2}, {1, 2, 2});
    ASSERT_EQ(ft.numNodes(), 8);
    for (int s = 0; s < 8; ++s) {
        for (int d = 0; d < 8; ++d) {
            if (s == d)
                continue;
            std::vector<LinkId> p = ft.routeVector(s, d);
            ASSERT_EQ(p.size(),
                      2 * static_cast<size_t>(ft.commonLevel(s, d)));
            for (LinkId l : p)
                ASSERT_LT(static_cast<std::size_t>(l), ft.numLinks());
        }
    }
}

TEST(FatTree, DmodKSpreadsUplinksByDestination)
{
    // With 2 root switches the tier-2 up-digit is dst mod 2 (U_1 is
    // 1), so destinations of different parity must use different
    // tier-2 up-links from the same source: that is the D-mod-k
    // load-spreading property.
    FatTree ft({4, 4}, {1, 2});
    std::vector<LinkId> to4 = ft.routeVector(0, 4);
    std::vector<LinkId> to5 = ft.routeVector(0, 5);
    ASSERT_EQ(to4.size(), 4u);
    ASSERT_EQ(to5.size(), 4u);
    EXPECT_EQ(to4[0], to5[0]);  // same leaf up-link (u_1 = 1)
    EXPECT_NE(to4[1], to5[1]);  // different root switch
}

TEST(FatTree, BalancedForMatchesNodeCountAndRoutes)
{
    for (int p : {1, 2, 6, 16, 24, 64, 97, 100}) {
        auto ft = FatTree::balancedFor(p);
        ASSERT_EQ(ft->numNodes(), p) << "p=" << p;
        for (int s = 0; s < p; ++s) {
            for (int d = 0; d < p; ++d) {
                if (s != d) {
                    ASSERT_GT(ft->hops(s, d), 0);
                }
            }
        }
    }
}

TEST(Dragonfly, ShapeCounts)
{
    Dragonfly df(4, 2, 2);
    EXPECT_EQ(df.numNodes(), 16);
    // 16 injection + 16 ejection + 4 groups * 2 local (r(r-1)) +
    // 4*3 global.
    EXPECT_EQ(df.numLinks(), 16u + 16u + 8u + 12u);
}

TEST(Dragonfly, MinimalRouteShapes)
{
    Dragonfly df(4, 2, 2);
    // Same router, different slot: inject + eject.
    EXPECT_EQ(df.hops(0, 1), 2);
    // Same group, different router: inject + local + eject.
    EXPECT_EQ(df.hops(0, 2), 3);
    // Remote group: at most inject + local + global + local + eject.
    for (int s = 0; s < 16; ++s)
        for (int d = 0; d < 16; ++d)
            if (s != d) {
                int h = df.hops(s, d);
                ASSERT_GE(h, 2);
                ASSERT_LE(h, 5);
            }
    EXPECT_LE(df.diameter(), 5);
}

TEST(Dragonfly, GlobalLinkSharedByGroupPair)
{
    // Every route from group 0 to group 2 crosses the same global
    // link regardless of endpoints (minimal routing, one link per
    // ordered group pair).
    Dragonfly df(4, 2, 2);
    auto globalOf = [&](int s, int d) {
        for (LinkId l : df.routeVector(s, d))
            if (static_cast<std::size_t>(l) >= 40u) // global base
                return l;
        return kNoLink;
    };
    LinkId g = globalOf(0, 8);
    EXPECT_NE(g, kNoLink);
    for (int s = 0; s < 4; ++s)
        for (int d = 8; d < 12; ++d)
            EXPECT_EQ(globalOf(s, d), g);
}

TEST(Dragonfly, AllPairsLinksInRange)
{
    Dragonfly df(6, 3, 2);
    for (int s = 0; s < df.numNodes(); ++s)
        for (int d = 0; d < df.numNodes(); ++d) {
            if (s == d)
                continue;
            for (LinkId l : df.routeVector(s, d))
                ASSERT_LT(static_cast<std::size_t>(l), df.numLinks());
        }
}

TEST(Hierarchical, CountsAndClasses)
{
    // 2x2 mesh of nodes, 2 chips x 2 cores each: 16 ranks.
    auto h = Hierarchical(std::make_unique<Mesh2D>(2, 2), 2, 2);
    EXPECT_EQ(h.numNodes(), 16);
    EXPECT_EQ(h.numLinkClasses(), 3);
    const std::size_t inner_links = Mesh2D(2, 2).numLinks();
    EXPECT_EQ(h.numLinks(), inner_links + 8u + 4u);
    // Class boundaries: inner wires, then 8 chip links, 4 node buses.
    EXPECT_EQ(h.linkClass(0), 0);
    EXPECT_EQ(h.linkClass(static_cast<LinkId>(inner_links)), 1);
    EXPECT_EQ(h.linkClass(static_cast<LinkId>(inner_links + 8)), 2);
}

TEST(Hierarchical, RouteShapesByLocality)
{
    auto h = Hierarchical(std::make_unique<Mesh2D>(2, 2), 2, 2);
    // Ranks 0,1 share a chip: one chip-local link.
    std::vector<LinkId> same_chip = h.routeVector(0, 1);
    ASSERT_EQ(same_chip.size(), 1u);
    EXPECT_EQ(h.linkClass(same_chip[0]), 1);
    // Ranks 0,2 share a node, different chips: chip, bus, chip.
    std::vector<LinkId> same_node = h.routeVector(0, 2);
    ASSERT_EQ(same_node.size(), 3u);
    EXPECT_EQ(h.linkClass(same_node[0]), 1);
    EXPECT_EQ(h.linkClass(same_node[1]), 2);
    EXPECT_EQ(h.linkClass(same_node[2]), 1);
    // Ranks 0,4 are on adjacent nodes: chip, bus, wire(s), bus, chip.
    std::vector<LinkId> remote = h.routeVector(0, 4);
    std::vector<LinkId> inner = Mesh2D(2, 2).routeVector(0, 1);
    ASSERT_EQ(remote.size(), 4u + inner.size());
    EXPECT_EQ(h.linkClass(remote[0]), 1);
    EXPECT_EQ(h.linkClass(remote[1]), 2);
    for (std::size_t i = 0; i < inner.size(); ++i) {
        EXPECT_EQ(remote[2 + i], inner[i]) << "inner walk embedded";
        EXPECT_EQ(h.linkClass(remote[2 + i]), 0);
    }
    EXPECT_EQ(h.linkClass(remote[remote.size() - 2]), 2);
    EXPECT_EQ(h.linkClass(remote.back()), 1);
}

TEST(Hierarchical, WrapsAnyInnerTopology)
{
    for (int chips : {1, 2}) {
        for (int cores : {1, 3}) {
            auto h = Hierarchical(std::make_unique<Torus3D>(2, 2, 2),
                                  chips, cores);
            ASSERT_EQ(h.numNodes(), 8 * chips * cores);
            for (int s = 0; s < h.numNodes(); ++s)
                for (int d = 0; d < h.numNodes(); ++d) {
                    if (s == d)
                        continue;
                    for (LinkId l : h.routeVector(s, d))
                        ASSERT_LT(static_cast<std::size_t>(l),
                                  h.numLinks());
                }
        }
    }
}

TEST(TopologyDims, MeshDimsForPowersOfTwo)
{
    EXPECT_EQ(meshDimsFor(2), (std::pair<int, int>{1, 2}));
    EXPECT_EQ(meshDimsFor(4), (std::pair<int, int>{2, 2}));
    EXPECT_EQ(meshDimsFor(8), (std::pair<int, int>{2, 4}));
    EXPECT_EQ(meshDimsFor(64), (std::pair<int, int>{8, 8}));
    EXPECT_EQ(meshDimsFor(128), (std::pair<int, int>{8, 16}));
}

TEST(TopologyDims, TorusDimsForPowersOfTwo)
{
    EXPECT_EQ(torusDimsFor(64), (std::array<int, 3>{4, 4, 4}));
    EXPECT_EQ(torusDimsFor(128), (std::array<int, 3>{8, 4, 4}));
    EXPECT_EQ(torusDimsFor(2), (std::array<int, 3>{2, 1, 1}));
    EXPECT_EQ(torusDimsFor(16), (std::array<int, 3>{4, 2, 2}));
}

TEST(TopologyDims, ArbitrarySizesSupported)
{
    // The dims helpers used to reject non-powers-of-two; they now
    // factor any p (near-square / near-cubic, degenerating for
    // primes).
    EXPECT_EQ(meshDimsFor(24), (std::pair<int, int>{4, 6}));
    EXPECT_EQ(meshDimsFor(12), (std::pair<int, int>{3, 4}));
    EXPECT_EQ(meshDimsFor(7), (std::pair<int, int>{1, 7}));
    EXPECT_EQ(meshDimsFor(1), (std::pair<int, int>{1, 1}));
    EXPECT_EQ(torusDimsFor(24), (std::array<int, 3>{4, 3, 2}));
    EXPECT_EQ(torusDimsFor(7), (std::array<int, 3>{7, 1, 1}));
    EXPECT_EQ(torusDimsFor(1), (std::array<int, 3>{1, 1, 1}));
}

TEST(TopologyDims, NonPositiveFatal)
{
    throwOnError(true);
    EXPECT_THROW(meshDimsFor(0), FatalError);
    EXPECT_THROW(torusDimsFor(0), FatalError);
    EXPECT_THROW(meshDimsFor(-8), FatalError);
    throwOnError(false);
}

TEST(TopologyDims, ProductMatchesForAllSmallSizes)
{
    for (int p = 1; p <= 200; ++p) {
        auto [r, c] = meshDimsFor(p);
        ASSERT_EQ(r * c, p) << "mesh p=" << p;
        ASSERT_LE(r, c) << "mesh wider than tall, p=" << p;
        auto t = torusDimsFor(p);
        ASSERT_EQ(t[0] * t[1] * t[2], p) << "torus p=" << p;
        ASSERT_GE(t[0], t[1]) << "torus p=" << p;
        ASSERT_GE(t[1], t[2]) << "torus p=" << p;
    }
}

} // namespace
} // namespace ccsim::net
