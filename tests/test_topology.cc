/** @file Unit + property tests for topologies and routing. */

#include <set>

#include <gtest/gtest.h>

#include "net/fully_connected.hh"
#include "net/hypercube.hh"
#include "net/mesh2d.hh"
#include "net/omega.hh"
#include "net/torus3d.hh"
#include "util/logging.hh"

namespace ccsim::net {
namespace {

TEST(Mesh2D, CoordsRoundTrip)
{
    Mesh2D m(4, 8);
    EXPECT_EQ(m.numNodes(), 32);
    for (int n = 0; n < m.numNodes(); ++n) {
        auto [r, c] = m.coords(n);
        EXPECT_EQ(m.nodeAt(r, c), n);
    }
}

TEST(Mesh2D, HopsAreManhattanDistance)
{
    Mesh2D m(4, 4);
    EXPECT_EQ(m.hops(0, 0), 0);
    EXPECT_EQ(m.hops(0, 3), 3);       // along a row
    EXPECT_EQ(m.hops(0, 12), 3);      // along a column
    EXPECT_EQ(m.hops(0, 15), 6);      // opposite corner
    EXPECT_EQ(m.hops(5, 10), 2);
}

TEST(Mesh2D, XThenYRouting)
{
    // From (0,0) to (1,1): the route must pass through (0,1), i.e.
    // its first link must be an +x link of node 0.
    Mesh2D m(2, 2);
    std::vector<LinkId> path;
    m.route(0, 3, path);
    ASSERT_EQ(path.size(), 2u);
    EXPECT_EQ(path[0], 0 * 4 + 0);    // node 0, PosX
    EXPECT_EQ(path[1], 1 * 4 + 2);    // node 1, PosY
}

TEST(Mesh2D, DiameterIsPerimeterPath)
{
    Mesh2D m(4, 8);
    EXPECT_EQ(m.diameter(), 3 + 7);
}

TEST(Mesh2D, OppositeRoutesUseDisjointLinks)
{
    Mesh2D m(4, 4);
    std::vector<LinkId> ab, ba;
    m.route(0, 15, ab);
    m.route(15, 0, ba);
    std::set<LinkId> sa(ab.begin(), ab.end());
    for (LinkId l : ba)
        EXPECT_EQ(sa.count(l), 0u) << "full-duplex links must differ";
}

TEST(Mesh2D, InvalidDimsFatal)
{
    throwOnError(true);
    EXPECT_THROW(Mesh2D(0, 4), FatalError);
    EXPECT_THROW(Mesh2D(4, -1), FatalError);
    throwOnError(false);
}

TEST(Mesh2D, OutOfRangeNodePanics)
{
    throwOnError(true);
    Mesh2D m(2, 2);
    std::vector<LinkId> path;
    EXPECT_THROW(m.route(0, 4, path), PanicError);
    EXPECT_THROW(m.route(-1, 0, path), PanicError);
    throwOnError(false);
}

TEST(Torus3D, CoordsRoundTrip)
{
    Torus3D t(4, 4, 4);
    EXPECT_EQ(t.numNodes(), 64);
    for (int n = 0; n < t.numNodes(); ++n) {
        auto c = t.coords(n);
        EXPECT_EQ(t.nodeAt(c[0], c[1], c[2]), n);
    }
}

TEST(Torus3D, WraparoundShortensPaths)
{
    Torus3D t(8, 1, 1);
    // 0 -> 7 is one hop backwards around the ring, not 7 forward.
    EXPECT_EQ(t.hops(0, 7), 1);
    EXPECT_EQ(t.hops(0, 4), 4); // antipodal: no shortcut
    EXPECT_EQ(t.hops(0, 5), 3); // 3 backwards beats 5 forwards
}

TEST(Torus3D, RingStepDirection)
{
    EXPECT_EQ(Torus3D::ringStep(0, 1, 8), 1);
    EXPECT_EQ(Torus3D::ringStep(0, 7, 8), -1);
    EXPECT_EQ(Torus3D::ringStep(0, 4, 8), 1); // tie -> positive
    EXPECT_EQ(Torus3D::ringStep(3, 3, 8), 0);
}

TEST(Torus3D, DiameterOfCube)
{
    // 4x4x4 torus: at most 2 hops per dimension.
    Torus3D t(4, 4, 4);
    EXPECT_EQ(t.diameter(), 6);
}

TEST(Torus3D, HopsMatchPerDimensionRingDistance)
{
    Torus3D t(4, 2, 2);
    for (int s = 0; s < t.numNodes(); ++s) {
        for (int d = 0; d < t.numNodes(); ++d) {
            auto a = t.coords(s), b = t.coords(d);
            int dims[3] = {4, 2, 2};
            int expect = 0;
            for (int k = 0; k < 3; ++k) {
                int fwd = (b[k] - a[k] + dims[k]) % dims[k];
                expect += std::min(fwd, dims[k] - fwd);
            }
            ASSERT_EQ(t.hops(s, d), expect) << s << "->" << d;
        }
    }
}

TEST(Omega, StageCount)
{
    EXPECT_EQ(Omega(64, 4).stages(), 3);
    EXPECT_EQ(Omega(64, 2).stages(), 6);
    EXPECT_EQ(Omega(128, 4).stages(), 4);  // padded to 256 ports
    EXPECT_EQ(Omega(2, 4).stages(), 1);
}

TEST(Omega, PortsCoverNodes)
{
    Omega o(100, 4);
    EXPECT_GE(o.ports(), 100);
    EXPECT_EQ(o.ports(), 256);
}

TEST(Omega, RouteLengthIsStagesPlusInjection)
{
    Omega o(64, 4);
    std::vector<LinkId> path;
    o.route(5, 44, path);
    EXPECT_EQ(path.size(), static_cast<size_t>(o.stages()) + 1);
}

TEST(Omega, AllPairsRouteToDestination)
{
    // route() panics internally if the digit steering fails, so just
    // exercising every pair is a real property check.
    for (int radix : {2, 4}) {
        Omega o(32, radix);
        std::vector<LinkId> path;
        for (int s = 0; s < 32; ++s) {
            for (int d = 0; d < 32; ++d) {
                if (s == d)
                    continue;
                path.clear();
                o.route(s, d, path);
                ASSERT_EQ(path.size(),
                          static_cast<size_t>(o.stages()) + 1);
                for (LinkId l : path)
                    ASSERT_LT(static_cast<size_t>(l), o.numLinks());
            }
        }
    }
}

TEST(Omega, DistinctDestinationsUseDistinctEjectionWires)
{
    Omega o(16, 2);
    std::vector<LinkId> p1, p2;
    o.route(3, 7, p1);
    o.route(3, 8, p2);
    EXPECT_NE(p1.back(), p2.back());
}

TEST(Omega, SameDestinationSharesEjectionWire)
{
    Omega o(16, 2);
    std::vector<LinkId> p1, p2;
    o.route(3, 7, p1);
    o.route(12, 7, p2);
    EXPECT_EQ(p1.back(), p2.back());
}

TEST(Omega, SelfRouteIsEmpty)
{
    Omega o(16, 2);
    std::vector<LinkId> p;
    o.route(5, 5, p);
    EXPECT_TRUE(p.empty());
}

TEST(Hypercube, DimensionsAndLinks)
{
    Hypercube h(16);
    EXPECT_EQ(h.dimensions(), 4);
    EXPECT_EQ(h.numNodes(), 16);
    EXPECT_EQ(h.numLinks(), 64u);
}

TEST(Hypercube, HopsAreHammingDistance)
{
    Hypercube h(16);
    EXPECT_EQ(h.hops(0, 0), 0);
    EXPECT_EQ(h.hops(0, 1), 1);
    EXPECT_EQ(h.hops(0, 15), 4);
    EXPECT_EQ(h.hops(5, 10), 4);  // 0101 vs 1010
    EXPECT_EQ(h.hops(3, 1), 1);
    EXPECT_EQ(h.diameter(), 4);
}

TEST(Hypercube, EcubeRoutingCorrectsLowBitsFirst)
{
    Hypercube h(8);
    std::vector<LinkId> path;
    h.route(0, 6, path); // 000 -> 110: dims 1 then 2
    ASSERT_EQ(path.size(), 2u);
    EXPECT_EQ(path[0], 0 * 3 + 1); // node 0, dim 1
    EXPECT_EQ(path[1], 2 * 3 + 2); // node 2, dim 2
}

TEST(Hypercube, AllPairsRoutesAreMinimal)
{
    Hypercube h(32);
    std::vector<LinkId> path;
    for (int s = 0; s < 32; ++s) {
        for (int d = 0; d < 32; ++d) {
            path.clear();
            h.route(s, d, path);
            ASSERT_EQ(path.size(),
                      static_cast<size_t>(__builtin_popcount(
                          static_cast<unsigned>(s ^ d))));
        }
    }
}

TEST(Hypercube, NonPowerOfTwoFatal)
{
    throwOnError(true);
    EXPECT_THROW(Hypercube(12), FatalError);
    EXPECT_THROW(Hypercube(0), FatalError);
    throwOnError(false);
}

TEST(FullyConnected, SingleHopEverywhere)
{
    FullyConnected f(16);
    EXPECT_EQ(f.diameter(), 1);
    EXPECT_EQ(f.numLinks(), 256u);
}

TEST(FullyConnected, AllPairsDisjointLinks)
{
    FullyConnected f(8);
    std::set<LinkId> seen;
    std::vector<LinkId> p;
    for (int s = 0; s < 8; ++s) {
        for (int d = 0; d < 8; ++d) {
            if (s == d)
                continue;
            p.clear();
            f.route(s, d, p);
            ASSERT_EQ(p.size(), 1u);
            EXPECT_TRUE(seen.insert(p[0]).second)
                << "pair " << s << "->" << d << " reuses a link";
        }
    }
}

TEST(TopologyDims, MeshDimsForPowersOfTwo)
{
    EXPECT_EQ(meshDimsFor(2), (std::pair<int, int>{1, 2}));
    EXPECT_EQ(meshDimsFor(4), (std::pair<int, int>{2, 2}));
    EXPECT_EQ(meshDimsFor(8), (std::pair<int, int>{2, 4}));
    EXPECT_EQ(meshDimsFor(64), (std::pair<int, int>{8, 8}));
    EXPECT_EQ(meshDimsFor(128), (std::pair<int, int>{8, 16}));
}

TEST(TopologyDims, TorusDimsForPowersOfTwo)
{
    EXPECT_EQ(torusDimsFor(64), (std::array<int, 3>{4, 4, 4}));
    EXPECT_EQ(torusDimsFor(128), (std::array<int, 3>{8, 4, 4}));
    EXPECT_EQ(torusDimsFor(2), (std::array<int, 3>{2, 1, 1}));
    EXPECT_EQ(torusDimsFor(16), (std::array<int, 3>{4, 2, 2}));
}

TEST(TopologyDims, NonPowerOfTwoFatal)
{
    throwOnError(true);
    EXPECT_THROW(meshDimsFor(24), FatalError);
    EXPECT_THROW(torusDimsFor(0), FatalError);
    throwOnError(false);
}

TEST(TopologyDims, ProductMatches)
{
    for (int p : {2, 4, 8, 16, 32, 64, 128}) {
        auto [r, c] = meshDimsFor(p);
        EXPECT_EQ(r * c, p);
        auto t = torusDimsFor(p);
        EXPECT_EQ(t[0] * t[1] * t[2], p);
    }
}

} // namespace
} // namespace ccsim::net
