/**
 * @file
 * The measureCollective memo cache: cached results must be
 * bit-identical to re-simulated ones, ineligible points must bypass
 * the cache, and the statistics must account for every lookup.
 */

#include <vector>

#include <gtest/gtest.h>

#include "harness/measure.hh"
#include "harness/sweep.hh"
#include "machine/machine_config.hh"

namespace ccsim::harness {
namespace {

/** Field-by-field equality over everything a Measurement carries. */
void
expectIdentical(const Measurement &a, const Measurement &b)
{
    EXPECT_EQ(a.machine, b.machine);
    EXPECT_EQ(a.op, b.op);
    EXPECT_EQ(a.algo, b.algo);
    EXPECT_EQ(a.m, b.m);
    EXPECT_EQ(a.p, b.p);
    EXPECT_EQ(a.max_time, b.max_time);
    EXPECT_EQ(a.min_time, b.min_time);
    EXPECT_EQ(a.mean_time, b.mean_time);
    EXPECT_EQ(a.fault_drops, b.fault_drops);
    EXPECT_EQ(a.fault_retransmits, b.fault_retransmits);
    EXPECT_EQ(a.fault_delays, b.fault_delays);
    EXPECT_EQ(a.metrics.empty(), b.metrics.empty());
}

MeasureOptions
noMemo()
{
    MeasureOptions o;
    o.memoize = false;
    return o;
}

TEST(MeasureMemo, CachedResultIsByteIdenticalToUncached)
{
    memoClear();
    auto cfg = machine::sp2Config();

    Measurement plain = measureCollective(cfg, 8, machine::Coll::Bcast,
                                          1024, machine::Algo::Default,
                                          noMemo());

    MeasureOptions memo; // memoize = true by default
    Measurement miss = measureCollective(cfg, 8, machine::Coll::Bcast,
                                         1024, machine::Algo::Default,
                                         memo);
    Measurement hit = measureCollective(cfg, 8, machine::Coll::Bcast,
                                        1024, machine::Algo::Default,
                                        memo);

    expectIdentical(plain, miss);
    expectIdentical(plain, hit);

    MemoStats s = memoStats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.bypassed, 1u); // the memoize = false run
    EXPECT_EQ(memoSize(), 1u);
}

TEST(MeasureMemo, DistinctPointsGetDistinctEntries)
{
    memoClear();
    auto cfg = machine::t3dConfig();
    measureCollective(cfg, 4, machine::Coll::Barrier, 0);
    measureCollective(cfg, 8, machine::Coll::Barrier, 0);
    measureCollective(cfg, 8, machine::Coll::Allreduce, 64);
    EXPECT_EQ(memoSize(), 3u);
    EXPECT_EQ(memoStats().misses, 3u);
    EXPECT_EQ(memoStats().hits, 0u);

    // A changed machine parameter is a different key even at the same
    // (p, op, m, algo) point.
    auto slower = cfg;
    slower.network.link_bandwidth_mbs /= 2;
    Measurement fast =
        measureCollective(cfg, 8, machine::Coll::Allreduce, 64);
    Measurement slow =
        measureCollective(slower, 8, machine::Coll::Allreduce, 64);
    EXPECT_EQ(memoSize(), 4u);
    EXPECT_LT(fast.max_time, slow.max_time);
}

TEST(MeasureMemo, IneligiblePointsBypassTheCache)
{
    memoClear();
    auto cfg = machine::paragonConfig();

    // Clock skew: results depend on the skew RNG, not just the key.
    MeasureOptions skew;
    skew.max_skew = 100;
    measureCollective(cfg, 4, machine::Coll::Barrier, 0,
                      machine::Algo::Default, skew);

    // Metrics collection: the snapshot is observational state the
    // cache does not carry.  The timings themselves are unaffected
    // by observation, so they must still match a cached point's.
    MeasureOptions metrics;
    metrics.metrics = true;
    Measurement observed =
        measureCollective(cfg, 4, machine::Coll::Barrier, 0,
                          machine::Algo::Default, metrics);
    EXPECT_FALSE(observed.metrics.empty());

    // Faults: the per-point fault universe is seeded outside the key.
    auto faulty = cfg;
    faulty.fault.msg_drop_rate = 0.05;
    measureCollective(faulty, 4, machine::Coll::Barrier, 0);

    // All three points bypass the cache.  The faulty run's clean
    // twin (measured to fill DegradationReport::makespan_inflation)
    // is itself an eligible plain point, so exactly one entry lands.
    MemoStats s = memoStats();
    EXPECT_EQ(s.bypassed, 3u);
    EXPECT_EQ(s.hits, 0u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(memoSize(), 1u);

    // Observation never changes simulated time: a cached plain run
    // reports the same timings the metrics run measured.
    Measurement cached =
        measureCollective(cfg, 4, machine::Coll::Barrier, 0);
    measureCollective(cfg, 4, machine::Coll::Barrier, 0); // hit
    EXPECT_EQ(cached.max_time, observed.max_time);
    EXPECT_EQ(cached.min_time, observed.min_time);
    EXPECT_EQ(cached.mean_time, observed.mean_time);
}

TEST(MeasureMemo, SweepResultsIdenticalAcrossJobsAndCacheState)
{
    memoClear();
    SweepSpec spec;
    spec.machines = {machine::t3dConfig(), machine::sp2Config()};
    spec.ops = {machine::Coll::Bcast, machine::Coll::Barrier};
    spec.sizes = {4, 8};
    spec.lengths = {256};
    spec.options.iterations = 2;
    spec.options.repetitions = 1;

    SweepRunner serial(1);
    std::vector<Measurement> cold = serial.run(spec.expand());
    ASSERT_EQ(serial.lastStats().memo_hits, 0u);

    // Warm rerun: every point served from the cache.
    std::vector<Measurement> warm = serial.run(spec.expand());
    EXPECT_EQ(serial.lastStats().memo_hits, cold.size());

    // Cold parallel rerun: workers race to fill the cache.
    memoClear();
    SweepRunner parallel(4);
    std::vector<Measurement> par = parallel.run(spec.expand());

    ASSERT_EQ(cold.size(), warm.size());
    ASSERT_EQ(cold.size(), par.size());
    for (std::size_t i = 0; i < cold.size(); ++i) {
        expectIdentical(cold[i], warm[i]);
        expectIdentical(cold[i], par[i]);
    }
}

TEST(MeasureMemo, ClearDropsEntriesAndZeroesStats)
{
    memoClear();
    measureCollective(machine::t3dConfig(), 4, machine::Coll::Barrier,
                      0);
    EXPECT_EQ(memoSize(), 1u);
    memoClear();
    EXPECT_EQ(memoSize(), 0u);
    MemoStats s = memoStats();
    EXPECT_EQ(s.hits, 0u);
    EXPECT_EQ(s.misses, 0u);
    EXPECT_EQ(s.bypassed, 0u);
}

} // namespace
} // namespace ccsim::harness
