/**
 * @file
 * Correctness tests for the extended collectives: reduce-scatter
 * (linear / recursive halving / pairwise), Rabenseifner allreduce,
 * and the pipelined chain broadcast.
 */

#include <cstdint>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "harness/measure.hh"
#include "machine/machine.hh"
#include "mpi/comm.hh"
#include "util/logging.hh"

namespace ccsim::mpi {
namespace {

using machine::Machine;
using Body = std::function<sim::Task<void>(Comm &)>;

void
runProgram(Machine &m, const Body &body)
{
    auto driver = [&m, &body](int rank) -> sim::Task<void> {
        Comm comm(m, rank);
        co_await body(comm);
    };
    for (int r = 0; r < m.size(); ++r)
        m.sim().spawn(driver(r));
    m.run();
}

class ExtCollP : public ::testing::TestWithParam<int>
{
  protected:
    int p() const { return GetParam(); }
};

INSTANTIATE_TEST_SUITE_P(Sizes, ExtCollP,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 16));

TEST_P(ExtCollP, ReduceScatterAllAlgorithms)
{
    // Contribution of rank r, block b, element j: value depends on
    // all three so misrouted blocks are caught.
    auto val = [](int r, int b, int j) -> std::int64_t {
        return 10000 * (r + 1) + 100 * (b + 1) + j;
    };
    for (Algo algo : {Algo::Linear, Algo::RecursiveHalving,
                      Algo::Pairwise}) {
        Machine m(machine::idealConfig(), p());
        Body body = [&](Comm &c) -> sim::Task<void> {
            std::vector<std::int64_t> mine;
            for (int b = 0; b < p(); ++b)
                for (int j = 0; j < 2; ++j)
                    mine.push_back(val(c.rank(), b, j));
            auto out = co_await c.reduceScatterData(
                mine, ReduceOp::Sum, algo);
            EXPECT_EQ(out.size(), 2u);
            for (int j = 0; j < 2; ++j) {
                std::int64_t expect = 0;
                for (int r = 0; r < p(); ++r)
                    expect += val(r, c.rank(), j);
                EXPECT_EQ(out[static_cast<size_t>(j)], expect)
                    << "algo=" << machine::algoName(algo)
                    << " rank=" << c.rank() << " j=" << j;
            }
        };
        runProgram(m, body);
    }
}

TEST_P(ExtCollP, ReduceScatterMinMax)
{
    Machine m(machine::idealConfig(), p());
    Body body = [&](Comm &c) -> sim::Task<void> {
        std::vector<std::int64_t> mine;
        for (int b = 0; b < p(); ++b)
            mine.push_back((c.rank() + 3 * b) % 7);
        auto out = co_await c.reduceScatterData(
            mine, ReduceOp::Max, Algo::Pairwise);
        std::int64_t expect = 0;
        for (int r = 0; r < p(); ++r)
            expect = std::max(expect,
                              std::int64_t((r + 3 * c.rank()) % 7));
        EXPECT_EQ(out, (std::vector<std::int64_t>{expect}));
    };
    runProgram(m, body);
}

TEST_P(ExtCollP, RabenseifnerAllreduceMatchesOthers)
{
    Machine m(machine::idealConfig(), p());
    Body body = [&](Comm &c) -> sim::Task<void> {
        // Deliberately not a multiple of p elements: exercises the
        // padding path.
        std::vector<std::int64_t> mine;
        for (int j = 0; j < 5; ++j)
            mine.push_back(100 * (c.rank() + 1) + j);
        auto rab = co_await c.allreduceData(mine, ReduceOp::Sum,
                                            Algo::Rabenseifner);
        auto ref = co_await c.allreduceData(mine, ReduceOp::Sum,
                                            Algo::ReduceBcast);
        EXPECT_EQ(rab, ref) << "rank " << c.rank();
    };
    runProgram(m, body);
}

TEST_P(ExtCollP, PipelinedBcastDeliversData)
{
    int root = p() > 2 ? 2 : 0;
    Machine m(machine::idealConfig(), p());
    Body body = [&](Comm &c) -> sim::Task<void> {
        // Larger than one 8 KB segment so the pipeline actually
        // splits (2500 int64 = 20000 bytes = 3 segments).
        std::vector<std::int64_t> v(2500);
        if (c.rank() == root)
            for (std::size_t j = 0; j < v.size(); ++j)
                v[j] = static_cast<std::int64_t>(j) * 7 - 3;
        auto out = co_await c.bcastData(v, root, Algo::Pipelined);
        EXPECT_EQ(out.size(), 2500u);
        bool all_ok = true;
        for (std::size_t j = 0; j < out.size(); ++j)
            all_ok = all_ok &&
                     out[j] == static_cast<std::int64_t>(j) * 7 - 3;
        EXPECT_TRUE(all_ok) << "rank=" << c.rank();
    };
    runProgram(m, body);
}

TEST(ExtColl, PipelinedBeatsBinomialForLongChains)
{
    // On a big machine with a long message, the pipeline's
    // (S + p - 2) segment steps beat the tree's S log2 p.
    auto cfg = machine::sp2Config();
    auto t = [&](Algo a) {
        harness::MeasureOptions o;
        o.iterations = 3;
        o.repetitions = 1;
        o.warmup = 1;
        return harness::measureCollective(cfg, 32,
                                          machine::Coll::Bcast,
                                          256 * KiB, a, o)
            .us();
    };
    EXPECT_LT(t(Algo::Pipelined), t(Algo::Binomial));
}

TEST(ExtColl, BinomialBeatsPipelinedForShortMessages)
{
    auto cfg = machine::sp2Config();
    auto t = [&](Algo a) {
        harness::MeasureOptions o;
        o.iterations = 3;
        o.repetitions = 1;
        o.warmup = 1;
        return harness::measureCollective(cfg, 32,
                                          machine::Coll::Bcast, 64, a,
                                          o)
            .us();
    };
    EXPECT_LT(t(Algo::Binomial), t(Algo::Pipelined));
}

TEST(ExtColl, ReduceScatterSizeValidation)
{
    throwOnError(true);
    Machine m(machine::idealConfig(), 4);
    Body body = [&](Comm &c) -> sim::Task<void> {
        std::vector<std::int64_t> bad{1, 2, 3}; // not divisible by 4
        co_await c.reduceScatterData(bad, ReduceOp::Sum);
    };
    auto driver = [&](int rank) -> sim::Task<void> {
        Comm comm(m, rank);
        co_await body(comm);
    };
    m.sim().spawn(driver(0));
    EXPECT_THROW(m.run(), FatalError);
    throwOnError(false);
}

TEST(ExtColl, SizeOnlyFormsRun)
{
    for (const auto &cfg : machine::paperMachines()) {
        Machine m(cfg, 8);
        int done = 0;
        Body body = [&](Comm &c) -> sim::Task<void> {
            co_await c.reduceScatter(1024);
            co_await c.allreduce(4096, Algo::Rabenseifner);
            co_await c.bcast(64 * KiB, 0, Algo::Pipelined);
            ++done;
        };
        runProgram(m, body);
        EXPECT_EQ(done, 8) << cfg.name;
    }
}

} // namespace
} // namespace ccsim::mpi
