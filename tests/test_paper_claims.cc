/**
 * @file
 * End-to-end reproduction tests: the paper's headline findings,
 * asserted against the simulator.  These are the "shape" guarantees
 * of the reproduction — who wins, by roughly what factor, where the
 * crossovers fall — as stated in the paper's abstract and Sections
 * 4-9.
 */

#include <gtest/gtest.h>

#include "harness/measure.hh"
#include "machine/machine_config.hh"
#include "model/fit.hh"
#include "model/paper_data.hh"

namespace ccsim {
namespace {

using harness::measureCollective;
using harness::measureStartup;
using machine::Algo;
using machine::Coll;

harness::MeasureOptions
quick()
{
    harness::MeasureOptions o;
    o.iterations = 3;
    o.repetitions = 1;
    o.warmup = 1;
    return o;
}

double
timeUs(const machine::MachineConfig &cfg, int p, Coll op, Bytes m)
{
    return measureCollective(cfg, p, op, m, Algo::Default, quick()).us();
}

// ---- Abstract: "With hardwired barriers, the T3D performs the
// barrier synchronization in 3 us, at least 30 times faster than the
// SP2 or Paragon."
TEST(PaperClaims, T3dHardwareBarrierIsThreeMicrosecondsFlat)
{
    for (int p : {2, 8, 32, 64}) {
        double us = timeUs(machine::t3dConfig(), p, Coll::Barrier, 0);
        EXPECT_NEAR(us, 3.0, 0.3) << "p=" << p;
    }
}

TEST(PaperClaims, T3dBarrierAtLeast30xFasterThanOthers)
{
    double t3d = timeUs(machine::t3dConfig(), 32, Coll::Barrier, 0);
    double sp2 = timeUs(machine::sp2Config(), 32, Coll::Barrier, 0);
    double par = timeUs(machine::paragonConfig(), 32, Coll::Barrier, 0);
    EXPECT_GE(sp2 / t3d, 30.0);
    EXPECT_GE(par / t3d, 30.0);
}

// ---- Section 4: "startup latency increases linearly with machine
// size for gather, scatter, and total exchange ... logarithmically
// for broadcast, scan, reduce, and barrier."
TEST(PaperClaims, StartupGrowthFamilies)
{
    // Per machine-size doubling, a logarithmic T0 adds a constant
    // increment (delta ratio -> 1) while a linear T0 doubles its
    // increment (delta ratio -> 2).
    auto cfg = machine::sp2Config();
    auto delta_ratio = [&](Coll op) {
        double t16 = measureStartup(cfg, 16, op, Algo::Default,
                                    quick()).us();
        double t32 = measureStartup(cfg, 32, op, Algo::Default,
                                    quick()).us();
        double t64 = measureStartup(cfg, 64, op, Algo::Default,
                                    quick()).us();
        return (t64 - t32) / (t32 - t16);
    };
    for (Coll op : {Coll::Bcast, Coll::Reduce, Coll::Scan,
                    Coll::Barrier})
        EXPECT_LT(delta_ratio(op), 1.4) << machine::collName(op);
    for (Coll op : {Coll::Gather, Coll::Scatter, Coll::Alltoall})
        EXPECT_GT(delta_ratio(op), 1.6) << machine::collName(op);
}

// ---- Section 4: "Except the scan operation, the T3D has
// demonstrated the lowest startup latency in all collective
// operations"; "it performs the scan operation with even shorter
// latency than the T3D" (the Paragon, for 16 nodes or more).
TEST(PaperClaims, T3dLowestStartupExceptScan)
{
    for (Coll op : {Coll::Bcast, Coll::Gather, Coll::Scatter,
                    Coll::Reduce, Coll::Barrier}) {
        double t3d = measureStartup(machine::t3dConfig(), 32, op,
                                    Algo::Default, quick()).us();
        double sp2 = measureStartup(machine::sp2Config(), 32, op,
                                    Algo::Default, quick()).us();
        double par = measureStartup(machine::paragonConfig(), 32, op,
                                    Algo::Default, quick()).us();
        EXPECT_LT(t3d, sp2) << machine::collName(op);
        EXPECT_LT(t3d, par) << machine::collName(op);
    }
}

TEST(PaperClaims, ParagonScanBeatsT3dFrom16Nodes)
{
    for (int p : {16, 32, 64}) {
        double t3d = measureStartup(machine::t3dConfig(), p, Coll::Scan,
                                    Algo::Default, quick()).us();
        double par = measureStartup(machine::paragonConfig(), p,
                                    Coll::Scan, Algo::Default,
                                    quick()).us();
        EXPECT_LT(par, t3d) << "p=" << p;
    }
}

// ---- Abstract: "For short messages, the SP2 outperforms the
// Paragon in the barrier, total exchange, scatter, and gather
// operations."
TEST(PaperClaims, Sp2BeatsParagonShortMessages)
{
    for (Coll op : {Coll::Barrier, Coll::Alltoall, Coll::Scatter,
                    Coll::Gather}) {
        Bytes m = op == Coll::Barrier ? 0 : 16;
        double sp2 = timeUs(machine::sp2Config(), 32, op, m);
        double par = timeUs(machine::paragonConfig(), 32, op, m);
        EXPECT_LT(sp2, par) << machine::collName(op);
    }
}

// ---- Abstract / Section 5: "The Paragon outperforms the SP2 in
// almost all collective operations with long messages" — and
// Section 9: "except the reduce operation."
TEST(PaperClaims, ParagonBeatsSp2LongMessagesExceptReduce)
{
    const Bytes m = 64 * KiB;
    for (Coll op : {Coll::Bcast, Coll::Alltoall, Coll::Gather,
                    Coll::Scatter}) {
        double sp2 = timeUs(machine::sp2Config(), 32, op, m);
        double par = timeUs(machine::paragonConfig(), 32, op, m);
        EXPECT_LT(par, sp2) << machine::collName(op);
    }
    double sp2_red = timeUs(machine::sp2Config(), 32, Coll::Reduce, m);
    double par_red =
        timeUs(machine::paragonConfig(), 32, Coll::Reduce, m);
    EXPECT_LT(sp2_red, par_red);
}

// ---- Section 5: the SP2/Paragon crossover — the reason the paper
// keeps distinguishing short from long messages.
TEST(PaperClaims, Sp2ParagonCrossoverExistsForAlltoall)
{
    double sp2_short =
        timeUs(machine::sp2Config(), 32, Coll::Alltoall, 16);
    double par_short =
        timeUs(machine::paragonConfig(), 32, Coll::Alltoall, 16);
    double sp2_long =
        timeUs(machine::sp2Config(), 32, Coll::Alltoall, 64 * KiB);
    double par_long =
        timeUs(machine::paragonConfig(), 32, Coll::Alltoall, 64 * KiB);
    EXPECT_LT(sp2_short, par_short);
    EXPECT_LT(par_long, sp2_long);
}

// ---- Section 9: "For long messages, the T3D and SP2 have
// approximately the same performance in ... reduce" and the most
// dramatic re-ranking (Fig. 3f): long reduce SP2 < T3D < Paragon,
// short reduce T3D first, SP2 last-but-one.
TEST(PaperClaims, ReduceReRankingBetweenShortAndLong)
{
    double sp2_s = timeUs(machine::sp2Config(), 32, Coll::Reduce, 16);
    double t3d_s = timeUs(machine::t3dConfig(), 32, Coll::Reduce, 16);
    double par_s =
        timeUs(machine::paragonConfig(), 32, Coll::Reduce, 16);
    EXPECT_LT(t3d_s, sp2_s);
    EXPECT_LT(sp2_s, par_s);

    const Bytes m = 64 * KiB;
    double sp2_l = timeUs(machine::sp2Config(), 32, Coll::Reduce, m);
    double t3d_l = timeUs(machine::t3dConfig(), 32, Coll::Reduce, m);
    double par_l =
        timeUs(machine::paragonConfig(), 32, Coll::Reduce, m);
    EXPECT_LT(sp2_l, t3d_l);
    EXPECT_LT(t3d_l, par_l);
}

// ---- Abstract: "Various collective operations with 64 KBytes per
// message over 64 nodes of the three machines can be completed in
// the time range (5.12 ms, 675 ms)."
TEST(PaperClaims, SixtyFourNodeLongMessageRange)
{
    for (const auto &cfg : machine::paperMachines()) {
        for (Coll op : {Coll::Bcast, Coll::Gather, Coll::Scatter,
                        Coll::Alltoall, Coll::Reduce, Coll::Scan}) {
            double ms = timeUs(cfg, 64, op, 64 * KiB) / 1000.0;
            EXPECT_GT(ms, 2.0) << cfg.name << " "
                               << machine::collName(op);
            EXPECT_LT(ms, 1000.0)
                << cfg.name << " " << machine::collName(op);
        }
    }
}

// ---- Section 5: "in 64 node total exchange the SP2 requires 317 ms
// to transmit messages of 64 KBytes each."
TEST(PaperClaims, Sp2AlltoallSpotValue)
{
    double ms =
        timeUs(machine::sp2Config(), 64, Coll::Alltoall, 64 * KiB) /
        1000.0;
    EXPECT_NEAR(ms, 317.0, 317.0 * 0.20);
}

// ---- Abstract: aggregated bandwidths of 64-node total exchange:
// 1.745, 0.879, 0.818 GB/s for T3D, Paragon, SP2 — ranking exact,
// magnitudes within 25%.
TEST(PaperClaims, AlltoallAggregatedBandwidth64)
{
    auto r_inf = [&](const machine::MachineConfig &cfg) {
        double lo = timeUs(cfg, 64, Coll::Alltoall, 16 * KiB);
        double hi = timeUs(cfg, 64, Coll::Alltoall, 64 * KiB);
        double slope = (hi - lo) / (64.0 * KiB - 16.0 * KiB);
        return model::aggregationFactor(Coll::Alltoall, 64) / slope;
    };
    double t3d = r_inf(machine::t3dConfig());
    double par = r_inf(machine::paragonConfig());
    double sp2 = r_inf(machine::sp2Config());
    EXPECT_GT(t3d, par);
    EXPECT_GT(par, sp2);
    EXPECT_NEAR(t3d, 1745.0, 1745.0 * 0.25);
    EXPECT_NEAR(par, 879.0, 879.0 * 0.25);
    EXPECT_NEAR(sp2, 818.0, 818.0 * 0.25);
}

// ---- Section 8: the fitted growth families of Table 3 must emerge
// from simulated sweeps via the same curve-fitting procedure.
TEST(PaperClaims, FittedGrowthFamiliesMatchTable3)
{
    auto fitFor = [&](const machine::MachineConfig &cfg, Coll op) {
        std::vector<model::Sample> samples;
        for (int p : {2, 4, 8, 16, 32}) {
            for (Bytes m : {Bytes(4), Bytes(1024), Bytes(16 * KiB),
                            Bytes(64 * KiB)}) {
                samples.push_back({m, p, timeUs(cfg, p, op, m)});
            }
        }
        return model::fitPaperStyleAuto(samples);
    };
    auto sp2 = machine::sp2Config();
    EXPECT_EQ(fitFor(sp2, Coll::Bcast).t0_growth, model::Growth::Log2);
    EXPECT_EQ(fitFor(sp2, Coll::Reduce).t0_growth, model::Growth::Log2);
    EXPECT_EQ(fitFor(sp2, Coll::Gather).t0_growth,
              model::Growth::Linear);
    EXPECT_EQ(fitFor(sp2, Coll::Alltoall).t0_growth,
              model::Growth::Linear);
}

// ---- Section 7 (Fig. 4): on 32 nodes with 1 KB messages the
// Paragon's total-exchange and gather latencies dwarf the others
// ("about 4 to 15 times greater"), and total exchange is the most
// expensive operation everywhere.
TEST(PaperClaims, ParagonLatencySurgeInAlltoallAndGather)
{
    for (Coll op : {Coll::Alltoall, Coll::Gather}) {
        double par = measureStartup(machine::paragonConfig(), 32, op,
                                    Algo::Default, quick()).us();
        double sp2 = measureStartup(machine::sp2Config(), 32, op,
                                    Algo::Default, quick()).us();
        double t3d = measureStartup(machine::t3dConfig(), 32, op,
                                    Algo::Default, quick()).us();
        EXPECT_GT(par / sp2, 3.0) << machine::collName(op);
        EXPECT_GT(par / t3d, 3.0) << machine::collName(op);
    }
}

TEST(PaperClaims, AlltoallIsTheMostExpensiveCollective)
{
    for (const auto &cfg : machine::paperMachines()) {
        double a2a = timeUs(cfg, 32, Coll::Alltoall, 1 * KiB);
        for (Coll op : {Coll::Bcast, Coll::Gather, Coll::Scatter,
                        Coll::Reduce, Coll::Scan}) {
            EXPECT_GT(a2a, timeUs(cfg, 32, op, 1 * KiB))
                << cfg.name << " " << machine::collName(op);
        }
    }
}

} // namespace
} // namespace ccsim
