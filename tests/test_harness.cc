/** @file Tests for the Section 2 measurement harness. */

#include <gtest/gtest.h>

#include "harness/measure.hh"
#include "machine/machine_config.hh"
#include "util/logging.hh"

namespace ccsim::harness {
namespace {

using machine::Algo;
using machine::Coll;

TEST(Harness, DeterministicAcrossRuns)
{
    auto cfg = machine::t3dConfig();
    auto a = measureCollective(cfg, 8, Coll::Bcast, 1024);
    auto b = measureCollective(cfg, 8, Coll::Bcast, 1024);
    EXPECT_EQ(a.max_time, b.max_time);
    EXPECT_EQ(a.min_time, b.min_time);
    EXPECT_EQ(a.mean_time, b.mean_time);
}

TEST(Harness, MaxDominatesMeanDominatesMin)
{
    auto cfg = machine::sp2Config();
    auto m = measureCollective(cfg, 16, Coll::Gather, 4096);
    EXPECT_GE(m.max_time, m.mean_time);
    EXPECT_GE(m.mean_time, m.min_time);
    EXPECT_GT(m.min_time, 0);
}

TEST(Harness, MetadataFilledIn)
{
    auto cfg = machine::paragonConfig();
    auto m = measureCollective(cfg, 4, Coll::Scan, 64);
    EXPECT_EQ(m.machine, "Paragon");
    EXPECT_EQ(m.op, Coll::Scan);
    EXPECT_EQ(m.m, 64);
    EXPECT_EQ(m.p, 4);
    EXPECT_DOUBLE_EQ(m.us(), toMicros(m.max_time));
}

TEST(Harness, MoreIterationsSameSteadyState)
{
    // Deterministic simulator: k = 3 and k = 10 must agree closely
    // (only warm-up pipelining differs).
    auto cfg = machine::t3dConfig();
    MeasureOptions small;
    small.iterations = 3;
    MeasureOptions big;
    big.iterations = 10;
    auto a = measureCollective(cfg, 8, Coll::Alltoall, 1024,
                               Algo::Default, small);
    auto b = measureCollective(cfg, 8, Coll::Alltoall, 1024,
                               Algo::Default, big);
    double rel = std::abs(a.us() - b.us()) / b.us();
    EXPECT_LT(rel, 0.05);
}

TEST(Harness, PaperFaithfulOptionsRun)
{
    auto opt = MeasureOptions::paperFaithful();
    EXPECT_EQ(opt.iterations, 20);
    EXPECT_EQ(opt.repetitions, 5);
    EXPECT_EQ(opt.warmup, 2);
    auto cfg = machine::t3dConfig();
    auto m = measureCollective(cfg, 4, Coll::Bcast, 256, Algo::Default,
                               opt);
    // Skew injection must not distort the steady-state number much.
    auto quick = measureCollective(cfg, 4, Coll::Bcast, 256);
    EXPECT_NEAR(m.us(), quick.us(), quick.us() * 0.15);
}

TEST(Harness, ClockSkewIncreasesSpread)
{
    auto cfg = machine::t3dConfig();
    MeasureOptions skewed;
    skewed.max_skew = microseconds(50);
    skewed.repetitions = 1;
    auto plain = measureCollective(cfg, 8, Coll::Bcast, 64);
    auto sk = measureCollective(cfg, 8, Coll::Bcast, 64, Algo::Default,
                                skewed);
    // The barrier before timing re-aligns ranks logically but not
    // temporally; spread (max - min) should not shrink with skew.
    EXPECT_GE(sk.max_time - sk.min_time,
              plain.max_time - plain.min_time);
}

TEST(Harness, StartupUsesShortMessage)
{
    auto cfg = machine::t3dConfig();
    auto t0 = measureStartup(cfg, 8, Coll::Bcast);
    auto full = measureCollective(cfg, 8, Coll::Bcast,
                                  kStartupMessageBytes);
    EXPECT_EQ(t0.max_time, full.max_time);
    auto bar = measureStartup(cfg, 8, Coll::Barrier);
    EXPECT_EQ(bar.m, 0);
}

TEST(Harness, AlgorithmOverrideChangesResult)
{
    auto cfg = machine::sp2Config();
    auto lin = measureCollective(cfg, 16, Coll::Bcast, 64,
                                 Algo::Linear);
    auto tree = measureCollective(cfg, 16, Coll::Bcast, 64,
                                  Algo::Binomial);
    EXPECT_GT(lin.us(), tree.us()); // O(p) vs O(log p)
}

TEST(Harness, BadOptionsAreFatal)
{
    throwOnError(true);
    auto cfg = machine::t3dConfig();
    MeasureOptions bad;
    bad.iterations = 0;
    EXPECT_THROW(measureCollective(cfg, 4, Coll::Bcast, 4,
                                   Algo::Default, bad),
                 FatalError);
    bad = MeasureOptions{};
    bad.max_skew = -1;
    EXPECT_THROW(measureCollective(cfg, 4, Coll::Bcast, 4,
                                   Algo::Default, bad),
                 FatalError);
    throwOnError(false);
}

TEST(Harness, PaperSweepDefinitions)
{
    EXPECT_EQ(paperMachineSizes("T3D").back(), 64);
    EXPECT_EQ(paperMachineSizes("SP2").back(), 128);
    EXPECT_EQ(paperMachineSizes("Paragon").back(), 128);
    auto lengths = paperMessageLengths();
    EXPECT_EQ(lengths.front(), 4);
    EXPECT_EQ(lengths.back(), 64 * KiB);
    for (std::size_t i = 1; i < lengths.size(); ++i)
        EXPECT_EQ(lengths[i], lengths[i - 1] * 4);
}

TEST(Harness, AggregatedLengthMatchesSection3)
{
    EXPECT_EQ(aggregatedLength(Coll::Bcast, 100, 64), 6300);
    EXPECT_EQ(aggregatedLength(Coll::Gather, 100, 64), 6300);
    EXPECT_EQ(aggregatedLength(Coll::Scatter, 100, 64), 6300);
    EXPECT_EQ(aggregatedLength(Coll::Reduce, 100, 64), 6300);
    EXPECT_EQ(aggregatedLength(Coll::Scan, 100, 64), 6300);
    EXPECT_EQ(aggregatedLength(Coll::Alltoall, 100, 64), 100 * 64 * 63);
    EXPECT_EQ(aggregatedLength(Coll::Barrier, 100, 64), 0);
}

} // namespace
} // namespace ccsim::harness
