/**
 * @file
 * The tuning subsystem: SelectionTable round-trips byte-identically,
 * choose() honours rule boundaries exactly, Algo::Auto resolution is
 * byte-identical to measuring the chosen algorithm explicitly, and
 * the empirical tuner is deterministic at any --jobs level.
 */

#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "harness/measure.hh"
#include "machine/config_io.hh"
#include "machine/machine_config.hh"
#include "tuning/selection_table.hh"
#include "tuning/tuner.hh"
#include "util/logging.hh"

namespace ccsim::tuning {
namespace {

using machine::Algo;
using machine::Coll;
using machine::ConfigError;

SelectionTable
twoRuleTable()
{
    SelectionTable t;
    t.setMachine("SP2");
    t.addRule(Coll::Bcast, {2, 0, Algo::Binomial});
    t.addRule(Coll::Bcast, {2, 16 * KiB, Algo::ScatterAllgather});
    t.addRule(Coll::Alltoall, {2, 0, Algo::Bruck});
    t.addRule(Coll::Alltoall, {16, 0, Algo::Pairwise});
    return t;
}

TEST(SelectionTable, SaveLoadSaveIsByteIdentical)
{
    for (const char *name : {"SP2", "T3D", "Paragon"}) {
        SelectionTable t = fixedTable(name);
        std::ostringstream first;
        t.save(first);

        std::istringstream in(first.str());
        SelectionTable reloaded = SelectionTable::load(in);
        std::ostringstream second;
        reloaded.save(second);

        EXPECT_EQ(first.str(), second.str()) << name;
        EXPECT_EQ(t, reloaded) << name;
    }
}

TEST(SelectionTable, ChooseHonoursBoundariesExactly)
{
    SelectionTable t = twoRuleTable();

    // The m breakpoint belongs to the higher rule (m >= 16 KiB).
    EXPECT_EQ(t.choose(Coll::Bcast, 8, 16 * KiB - 1), Algo::Binomial);
    EXPECT_EQ(t.choose(Coll::Bcast, 8, 16 * KiB),
              Algo::ScatterAllgather);

    // Same for the p breakpoint (p >= 16 wins at exactly p = 16).
    EXPECT_EQ(t.choose(Coll::Alltoall, 15, 64), Algo::Bruck);
    EXPECT_EQ(t.choose(Coll::Alltoall, 16, 64), Algo::Pairwise);

    // Ops without rules fall back to Default (the machine's choice).
    EXPECT_EQ(t.choose(Coll::Barrier, 8, 0), Algo::Default);
}

TEST(SelectionTable, AddRuleRejectsNonsense)
{
    throwOnError(true);
    SelectionTable t;
    EXPECT_THROW(t.addRule(Coll::Bcast, {1, 0, Algo::Binomial}),
                 ConfigError);
    EXPECT_THROW(t.addRule(Coll::Bcast, {2, -1, Algo::Binomial}),
                 ConfigError);
    EXPECT_THROW(t.addRule(Coll::Bcast, {2, 0, Algo::Default}),
                 ConfigError);
    EXPECT_THROW(t.addRule(Coll::Bcast, {2, 0, Algo::Auto}),
                 ConfigError);
    throwOnError(false);
}

TEST(SelectionTable, LoadRejectsMalformedDocuments)
{
    throwOnError(true);
    auto load = [](const std::string &doc) {
        std::istringstream in(doc);
        return SelectionTable::load(in);
    };
    EXPECT_THROW(load("bogus = 1\n"), ConfigError);
    EXPECT_THROW(load("warp.rule = p>=2 m>=0 linear\n"), ConfigError);
    EXPECT_THROW(load("bcast.rule = p>=2 m>=0 warp-speed\n"),
                 ConfigError);
    EXPECT_THROW(load("bcast.rule = p>=2 linear\n"), ConfigError);
    EXPECT_THROW(load("bcast.rule = m>=0 p>=2 linear\n"), ConfigError);
    EXPECT_THROW(load("bcast.rule = p>=2 m>=0 auto\n"), ConfigError);
    throwOnError(false);
}

TEST(SelectionTable, FixedTablesExistForAllPaperMachines)
{
    throwOnError(true);
    for (const char *name : {"SP2", "sp2", "T3D", "Paragon"})
        EXPECT_FALSE(fixedTable(name).empty()) << name;
    EXPECT_THROW(fixedTable("VAX"), ConfigError);
    throwOnError(false);
}

TEST(ResolveAlgo, ExplicitAndDefaultBypassTheTable)
{
    auto cfg = machine::sp2Config();
    cfg.selection = std::make_shared<SelectionTable>(twoRuleTable());

    // Explicit algorithms pass through untouched.
    EXPECT_EQ(resolveAlgo(cfg, Coll::Bcast, 8, 64 * KiB, Algo::Linear),
              Algo::Linear);
    // Default is the machine's configured choice, table or not.
    EXPECT_EQ(resolveAlgo(cfg, Coll::Bcast, 8, 64 * KiB,
                          Algo::Default),
              cfg.algorithmFor(Coll::Bcast));
}

TEST(ResolveAlgo, AutoConsultsTheTableThenTheMachine)
{
    auto cfg = machine::sp2Config();

    // No table: Auto is exactly Default.
    EXPECT_EQ(resolveAlgo(cfg, Coll::Bcast, 8, 64, Algo::Auto),
              cfg.algorithmFor(Coll::Bcast));

    cfg.selection = std::make_shared<SelectionTable>(twoRuleTable());
    EXPECT_EQ(resolveAlgo(cfg, Coll::Bcast, 8, 64 * KiB, Algo::Auto),
              Algo::ScatterAllgather);
    // Uncovered op: falls through to the machine's choice.
    EXPECT_EQ(resolveAlgo(cfg, Coll::Barrier, 8, 0, Algo::Auto),
              cfg.algorithmFor(Coll::Barrier));
}

TEST(ResolveAlgo, AutoMeasurementIsByteIdenticalToExplicit)
{
    auto plain = machine::sp2Config();
    auto tuned = plain;
    tuned.selection = std::make_shared<SelectionTable>(twoRuleTable());

    harness::MeasureOptions mopt;
    mopt.iterations = 3;
    mopt.repetitions = 1;

    struct Point { Coll op; int p; Bytes m; Algo expect; };
    const Point points[] = {
        {Coll::Bcast, 8, 64 * KiB, Algo::ScatterAllgather},
        {Coll::Bcast, 8, 1024, Algo::Binomial},
        {Coll::Alltoall, 16, 256, Algo::Pairwise},
        // No rule: Auto == the machine's configured default.
        {Coll::Allgather, 8, 1024, plain.algorithmFor(Coll::Allgather)},
    };
    for (const auto &pt : points) {
        auto via_auto = harness::measureCollective(
            tuned, pt.p, pt.op, pt.m, Algo::Auto, mopt);
        auto expl = harness::measureCollective(
            plain, pt.p, pt.op, pt.m, pt.expect, mopt);
        EXPECT_EQ(via_auto.algo, pt.expect);
        EXPECT_EQ(via_auto.algo, expl.algo);
        EXPECT_EQ(via_auto.max_time, expl.max_time);
        EXPECT_EQ(via_auto.min_time, expl.min_time);
        EXPECT_EQ(via_auto.mean_time, expl.mean_time);
    }
}

TEST(AlgoFromName, RoundTripsEverySpellingAndRejectsTypos)
{
    for (int i = 0; i <= static_cast<int>(Algo::Auto); ++i) {
        Algo a = static_cast<Algo>(i);
        EXPECT_EQ(machine::algoFromName(machine::algoName(a)), a);
    }
    throwOnError(true);
    EXPECT_THROW(machine::algoFromName("binomal"), ConfigError);
    EXPECT_THROW(machine::algoFromName(""), ConfigError);
    throwOnError(false);
}

TEST(Tuner, DeterministicAcrossJobCounts)
{
    auto cfg = machine::sp2Config();
    TuneGrid grid;
    grid.ops = {Coll::Bcast, Coll::Alltoall};
    grid.sizes = {4, 8};
    grid.lengths = {64, 16 * KiB};
    grid.options.iterations = 3;
    grid.options.repetitions = 1;

    TuneResult serial = tuneMachine(cfg, grid, 1);
    TuneResult pooled = tuneMachine(cfg, grid, 2);

    EXPECT_EQ(serial.table, pooled.table);
    EXPECT_EQ(serial.total_default, pooled.total_default);
    EXPECT_EQ(serial.total_best, pooled.total_best);
    ASSERT_EQ(serial.cells.size(), pooled.cells.size());
    for (std::size_t i = 0; i < serial.cells.size(); ++i) {
        EXPECT_EQ(serial.cells[i].best_algo, pooled.cells[i].best_algo);
        EXPECT_EQ(serial.cells[i].best_time, pooled.cells[i].best_time);
        EXPECT_EQ(serial.cells[i].default_time,
                  pooled.cells[i].default_time);
    }

    // The tuned table never loses to the machine's defaults.
    EXPECT_LE(serial.total_best, serial.total_default);
}

TEST(Tuner, TableReproducesPerCellWinners)
{
    auto cfg = machine::t3dConfig();
    TuneGrid grid;
    grid.ops = {Coll::Bcast, Coll::Allreduce};
    grid.sizes = {4, 16};
    grid.lengths = {64, 4 * KiB, 64 * KiB};
    grid.options.iterations = 3;
    grid.options.repetitions = 1;

    TuneResult res = tuneMachine(cfg, grid, 1);
    for (const auto &cell : res.cells) {
        Algo from_table = res.table.choose(cell.op, cell.p, cell.m);
        if (from_table == Algo::Default)
            from_table = cfg.algorithmFor(cell.op);
        EXPECT_EQ(from_table, cell.best_algo)
            << machine::collName(cell.op) << " p=" << cell.p
            << " m=" << cell.m;
    }
}

TEST(AttachSelection, PresetNamesAndFilesBothWork)
{
    auto cfg = machine::sp2Config();
    attachSelection(cfg, "sp2");
    ASSERT_TRUE(cfg.selection);
    EXPECT_EQ(*cfg.selection, fixedTable("SP2"));

    throwOnError(true);
    EXPECT_THROW(attachSelection(cfg, "/nonexistent/nowhere.sel"),
                 ConfigError);
    throwOnError(false);
}

} // namespace
} // namespace ccsim::tuning
