/** @file Unit tests for time/byte unit helpers. */

#include <gtest/gtest.h>

#include "util/logging.hh"
#include "util/units.hh"

namespace ccsim {
namespace {

using namespace time_literals;

TEST(Units, LiteralScale)
{
    EXPECT_EQ(NS, 1000);
    EXPECT_EQ(US, 1000 * NS);
    EXPECT_EQ(MS, 1000 * US);
    EXPECT_EQ(SEC, 1000 * MS);
}

TEST(Units, MicrosecondsRoundTrip)
{
    EXPECT_EQ(microseconds(1.0), US);
    EXPECT_EQ(microseconds(2.5), 2 * US + 500 * NS);
    EXPECT_DOUBLE_EQ(toMicros(microseconds(123.25)), 123.25);
}

TEST(Units, NanosecondsRounding)
{
    EXPECT_EQ(nanoseconds(0.4999), 500); // 0.4999 ns = 499.9 ps -> 500
    EXPECT_EQ(nanoseconds(1.0), NS);
    EXPECT_EQ(nanoseconds(0.0), 0);
}

TEST(Units, MillisecondConversions)
{
    EXPECT_EQ(milliseconds(3.0), 3 * MS);
    EXPECT_DOUBLE_EQ(toMillis(5 * MS), 5.0);
    EXPECT_DOUBLE_EQ(toSeconds(SEC), 1.0);
}

TEST(Units, TransferTimeBasic)
{
    // 1 MB at 1 MB/s is one second.
    EXPECT_EQ(transferTime(1000000, 1.0), SEC);
    // 40 MB/s (SP2 link): 64 KB takes 65536/40e6 s = 1638.4 us.
    EXPECT_EQ(transferTime(64 * KiB, 40.0), microseconds(1638.4));
}

TEST(Units, TransferTimeZeroBytes)
{
    EXPECT_EQ(transferTime(0, 300.0), 0);
}

TEST(Units, TransferTimeInvalid)
{
    throwOnError(true);
    EXPECT_THROW(transferTime(-1, 10.0), PanicError);
    EXPECT_THROW(transferTime(10, 0.0), PanicError);
    EXPECT_THROW(transferTime(10, -3.0), PanicError);
    throwOnError(false);
}

TEST(Units, BandwidthMBs)
{
    EXPECT_DOUBLE_EQ(bandwidthMBs(1000000, SEC), 1.0);
    EXPECT_DOUBLE_EQ(bandwidthMBs(300, microseconds(1.0)), 300.0);
    EXPECT_DOUBLE_EQ(bandwidthMBs(100, 0), 0.0);
}

TEST(Units, TransferBandwidthInverse)
{
    for (double bw : {40.0, 175.0, 300.0}) {
        for (Bytes b : {Bytes(4), Bytes(1024), Bytes(64 * KiB)}) {
            Time t = transferTime(b, bw);
            EXPECT_NEAR(bandwidthMBs(b, t), bw, bw * 1e-3)
                << "bw=" << bw << " b=" << b;
        }
    }
}

TEST(Units, FormatTime)
{
    EXPECT_EQ(formatTime(500), "500 ps");
    EXPECT_EQ(formatTime(1500), "1.50 ns");
    EXPECT_EQ(formatTime(3 * US), "3.00 us");
    EXPECT_EQ(formatTime(317 * MS), "317.00 ms");
    EXPECT_EQ(formatTime(2 * SEC), "2.000 s");
}

TEST(Units, FormatBytes)
{
    EXPECT_EQ(formatBytes(4), "4 B");
    EXPECT_EQ(formatBytes(1023), "1023 B");
    EXPECT_EQ(formatBytes(KiB), "1 KB");
    EXPECT_EQ(formatBytes(64 * KiB), "64 KB");
    EXPECT_EQ(formatBytes(1536), "1.5 KB");
    EXPECT_EQ(formatBytes(MiB), "1 MB");
}

} // namespace
} // namespace ccsim
