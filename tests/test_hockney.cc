/** @file Tests for the Hockney model and the ping-pong harness. */

#include <gtest/gtest.h>

#include "harness/measure.hh"
#include "machine/machine_config.hh"
#include "model/hockney.hh"
#include "util/logging.hh"

namespace ccsim::model {
namespace {

TEST(Hockney, FitRecoversKnownChannel)
{
    // t(m) = 40 + m / 80  (t0 = 40 us, r_inf = 80 MB/s).
    std::vector<PingPongSample> samples;
    for (Bytes m : {Bytes(0), Bytes(1024), Bytes(65536)})
        samples.push_back({m, 40.0 + static_cast<double>(m) / 80.0});
    HockneyModel h = fitHockney(samples);
    EXPECT_NEAR(h.t0_us, 40.0, 1e-9);
    EXPECT_NEAR(h.r_inf_mbs, 80.0, 1e-9);
    EXPECT_NEAR(h.n_half_bytes, 3200.0, 1e-6);
}

TEST(Hockney, EvalAndBandwidth)
{
    HockneyModel h{50.0, 100.0, 5000.0};
    EXPECT_DOUBLE_EQ(h.evalUs(0), 50.0);
    EXPECT_DOUBLE_EQ(h.evalUs(10000), 150.0);
    // At n_1/2 the achieved bandwidth is half of r_inf.
    EXPECT_NEAR(h.bandwidthAtMBs(static_cast<Bytes>(h.n_half_bytes)),
                50.0, 1e-9);
}

TEST(Hockney, DegenerateInputsFatal)
{
    throwOnError(true);
    EXPECT_THROW(fitHockney({}), FatalError);
    EXPECT_THROW(fitHockney({{4, 1.0}}), FatalError);
    EXPECT_THROW(fitHockney({{4, 1.0}, {4, 2.0}}), FatalError);
    throwOnError(false);
}

TEST(Hockney, StrFormatsAllFields)
{
    HockneyModel h{55.0, 38.2, 2101.0};
    EXPECT_EQ(h.str(),
              "t0 = 55.0 us, r_inf = 38.2 MB/s, n_1/2 = 2101 B");
}

TEST(PingPong, DeterministicAndMonotonicInSize)
{
    auto cfg = machine::t3dConfig();
    auto a = harness::measurePingPong(cfg, 1024);
    auto b = harness::measurePingPong(cfg, 1024);
    EXPECT_EQ(a.max_time, b.max_time);
    auto big = harness::measurePingPong(cfg, 64 * KiB);
    EXPECT_GT(big.max_time, a.max_time);
}

TEST(PingPong, MachineRankingMatchesLinkRates)
{
    // Long-message one-way bandwidth must rank by link speed:
    // T3D (300) > Paragon (175) > SP2 (40).
    auto bw = [](const machine::MachineConfig &cfg) {
        auto m = harness::measurePingPong(cfg, 64 * KiB);
        return bandwidthMBs(64 * KiB, m.max_time);
    };
    double t3d = bw(machine::t3dConfig());
    double par = bw(machine::paragonConfig());
    double sp2 = bw(machine::sp2Config());
    EXPECT_GT(t3d, par);
    EXPECT_GT(par, sp2);
    EXPECT_LT(sp2, 40.0); // cannot beat its own wire
}

TEST(PingPong, HockneyFitFromSimIsSane)
{
    std::vector<PingPongSample> samples;
    for (Bytes m : harness::paperMessageLengths()) {
        auto meas = harness::measurePingPong(machine::sp2Config(), m);
        samples.push_back({m, meas.us()});
    }
    HockneyModel h = fitHockney(samples);
    EXPECT_GT(h.t0_us, 0.0);
    EXPECT_GT(h.r_inf_mbs, 20.0);
    EXPECT_LT(h.r_inf_mbs, 40.0); // bounded by the SP2 wire
    EXPECT_GT(h.n_half_bytes, 0.0);
}

TEST(PingPong, BadOptionsFatal)
{
    throwOnError(true);
    harness::MeasureOptions bad;
    bad.iterations = 0;
    EXPECT_THROW(
        harness::measurePingPong(machine::t3dConfig(), 4, bad),
        FatalError);
    EXPECT_THROW(harness::measurePingPong(machine::t3dConfig(), -1),
                 FatalError);
    throwOnError(false);
}

} // namespace
} // namespace ccsim::model
