/**
 * @file
 * Graceful-degradation tests: recovery-policy parsing (with
 * did-you-mean diagnostics), per-policy byte-identity across --jobs
 * levels and metrics on/off, the degrade policy's no-throw
 * guarantee, ensemble aggregation, record->replay identity under
 * degrade, and fault-conditioned tuning determinism.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault_report.hh"
#include "fault/fault_spec.hh"
#include "harness/measure.hh"
#include "harness/sweep.hh"
#include "machine/config_io.hh"
#include "machine/machine.hh"
#include "mpi/comm.hh"
#include "replay/recorder.hh"
#include "replay/replayer.hh"
#include "tuning/tuner.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace ccsim {
namespace {

using namespace time_literals;

class ResilienceTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        throwOnError(true);
        quietLogging(true);
    }
    void TearDown() override { throwOnError(false); }
};

// ---- policy spelling ----------------------------------------------

TEST_F(ResilienceTest, PolicyNamesRoundTrip)
{
    using fault::RecoveryPolicy;
    for (auto p : {RecoveryPolicy::FailFast,
                   RecoveryPolicy::RetryEscalate,
                   RecoveryPolicy::Degrade})
        EXPECT_EQ(fault::policyFromName(fault::policyName(p)), p);
    EXPECT_THROW(fault::policyFromName("bogus"), FatalError);
}

TEST_F(ResilienceTest, ParseReadsPolicyAndEscalations)
{
    fault::FaultSpec f = fault::parseFaultSpec(
        "blackhole=0.01,policy=retry_escalate,escalations=4,seed=1");
    EXPECT_EQ(f.policy, fault::RecoveryPolicy::RetryEscalate);
    EXPECT_EQ(f.escalation_budget, 4);
    EXPECT_EQ(fault::parseFaultSpec("drop=0.01,seed=1").policy,
              fault::RecoveryPolicy::FailFast);
}

TEST_F(ResilienceTest, UnknownKeySuggestsTheClosestSpelling)
{
    try {
        fault::parseFaultSpec("polcy=degrade");
        FAIL() << "no error for a misspelled key";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("did you mean 'policy'"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("valid keys:"), std::string::npos) << msg;
    }
}

// ---- per-policy determinism ---------------------------------------

/** The spec each policy is exercised under (fail_fast avoids black
 *  holes, which it is defined to fail on). */
std::string
specFor(const std::string &policy)
{
    if (policy == "fail_fast" || policy == "retry_escalate")
        return "drop=0.05,straggler=0.1,seed=11,policy=" + policy;
    return "blackhole=0.02,drop=0.03,straggler=0.1,seed=11,"
           "policy=" + policy;
}

std::vector<harness::SweepPoint>
policyPoints(const std::string &policy, bool metrics)
{
    machine::MachineConfig cfg = machine::t3dConfig();
    cfg.fault = fault::parseFaultSpec(specFor(policy));
    harness::MeasureOptions opt;
    opt.metrics = metrics;
    std::vector<harness::SweepPoint> pts;
    for (machine::Coll op :
         {machine::Coll::Alltoall, machine::Coll::Bcast}) {
        harness::SweepPoint pt;
        pt.cfg = cfg;
        pt.p = 8;
        pt.op = op;
        pt.m = 4096;
        pt.options = opt;
        pts.push_back(pt);
    }
    return pts;
}

void
expectIdentical(const harness::Measurement &a,
                const harness::Measurement &b, const char *what)
{
    EXPECT_EQ(a.max_time, b.max_time) << what;
    EXPECT_EQ(a.min_time, b.min_time) << what;
    EXPECT_EQ(a.mean_time, b.mean_time) << what;
    EXPECT_EQ(a.fault_drops, b.fault_drops) << what;
    EXPECT_EQ(a.fault_retransmits, b.fault_retransmits) << what;
    EXPECT_EQ(a.degradation.reroutes, b.degradation.reroutes) << what;
    EXPECT_EQ(a.degradation.extra_bytes, b.degradation.extra_bytes)
        << what;
    EXPECT_EQ(a.degradation.escalations, b.degradation.escalations)
        << what;
    EXPECT_EQ(a.degradation.absorbed, b.degradation.absorbed) << what;
    EXPECT_EQ(a.degradation.absorbed_delay,
              b.degradation.absorbed_delay)
        << what;
}

TEST_F(ResilienceTest, EveryPolicyIsIdenticalAtAnyJobsLevel)
{
    for (const char *policy :
         {"fail_fast", "retry_escalate", "degrade"}) {
        auto pts = policyPoints(policy, false);
        harness::SweepRunner serial(1), pool(3);
        auto a = serial.run(pts);
        auto b = pool.run(pts);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i)
            expectIdentical(a[i], b[i], policy);
    }
}

TEST_F(ResilienceTest, MetricsTogglingDoesNotChangeRecovery)
{
    for (const char *policy :
         {"fail_fast", "retry_escalate", "degrade"}) {
        harness::SweepRunner runner(1);
        auto off = runner.run(policyPoints(policy, false));
        auto on = runner.run(policyPoints(policy, true));
        ASSERT_EQ(off.size(), on.size());
        for (std::size_t i = 0; i < off.size(); ++i) {
            expectIdentical(off[i], on[i], policy);
            EXPECT_FALSE(on[i].metrics.empty()) << policy;
        }
    }
}

// ---- the degrade guarantee ----------------------------------------

TEST_F(ResilienceTest, DegradeNeverThrowsEvenWhenNoDetourExists)
{
    // SP2's omega network gives every node a single injection link:
    // when that is black-holed no detour exists, and only the absorb
    // backstop keeps the run alive.  T3D's torus reroutes instead.
    for (auto cfg :
         {machine::sp2Config(), machine::t3dConfig()}) {
        cfg.fault = fault::parseFaultSpec(
            "blackhole=0.2,seed=3,policy=degrade");
        harness::MeasureOptions opt;
        opt.metrics = true;
        harness::Measurement meas;
        ASSERT_NO_THROW(
            meas = harness::measureCollective(
                cfg, 8, machine::Coll::Alltoall, 4096,
                machine::Algo::Default, opt))
            << cfg.name;
        // A 20% hole rate must provoke SOME recovery action.
        EXPECT_TRUE(meas.degradation.any()) << cfg.name;
        // Fallback routes are computed once per (src, dst) pair and
        // then served from the cache, so reroutes can far exceed
        // route computations.
        auto it = meas.metrics.counters.find("fault.fallback_routes");
        if (meas.degradation.reroutes > 0) {
            ASSERT_NE(it, meas.metrics.counters.end()) << cfg.name;
            EXPECT_LE(it->second, meas.degradation.reroutes)
                << cfg.name;
        }
    }
}

TEST_F(ResilienceTest, FailFastStillFailsOnABlackHole)
{
    machine::MachineConfig cfg = machine::sp2Config();
    cfg.fault = fault::parseFaultSpec(
        "blackhole=0.2,seed=3,policy=fail_fast");
    EXPECT_THROW(harness::measureCollective(cfg, 8,
                                            machine::Coll::Alltoall,
                                            4096),
                 fault::FaultError);
}

// ---- ensembles ----------------------------------------------------

TEST_F(ResilienceTest, EnsembleAggregatesDeterministically)
{
    machine::MachineConfig cfg = machine::t3dConfig();
    cfg.fault = fault::parseFaultSpec(
        "blackhole=0.02,straggler=0.1,seed=42,policy=degrade");
    harness::MeasureOptions opt;
    opt.ensemble = 4;

    auto a = harness::measureCollective(cfg, 8, machine::Coll::Bcast,
                                        4096, machine::Algo::Default,
                                        opt);
    auto b = harness::measureCollective(cfg, 8, machine::Coll::Bcast,
                                        4096, machine::Algo::Default,
                                        opt);
    EXPECT_EQ(a.ensemble_runs, 4);
    EXPECT_EQ(a.ensemble_failures, 0);
    EXPECT_DOUBLE_EQ(a.failureFraction(), 0.0);
    EXPECT_GE(a.p95_time, a.max_time * 9 / 10); // p95 near the mean max
    expectIdentical(a, b, "ensemble");
    EXPECT_EQ(a.p95_time, b.p95_time);

    // The ensemble members differ from each other (different derived
    // universes), so the aggregate is not just member 0.
    harness::MeasureOptions one;
    one.ensemble = 1;
    auto single = harness::measureCollective(
        cfg, 8, machine::Coll::Bcast, 4096, machine::Algo::Default,
        one);
    EXPECT_EQ(single.ensemble_runs, 0); // plain-run marker
}

TEST_F(ResilienceTest, EnsembleOnACleanMachineIsAPlainRun)
{
    machine::MachineConfig cfg = machine::t3dConfig();
    harness::MeasureOptions opt;
    opt.ensemble = 5;
    auto ens = harness::measureCollective(cfg, 8, machine::Coll::Bcast,
                                          4096, machine::Algo::Default,
                                          opt);
    auto plain = harness::measureCollective(cfg, 8,
                                            machine::Coll::Bcast,
                                            4096);
    EXPECT_EQ(ens.ensemble_runs, 0);
    EXPECT_EQ(ens.max_time, plain.max_time);
    EXPECT_EQ(ens.min_time, plain.min_time);
    EXPECT_EQ(ens.mean_time, plain.mean_time);
}

TEST_F(ResilienceTest, EnsembleIsIdenticalAtAnyJobsLevel)
{
    machine::MachineConfig cfg = machine::paragonConfig();
    cfg.fault = fault::parseFaultSpec(
        "blackhole=0.02,drop=0.02,seed=5,policy=degrade");
    harness::MeasureOptions opt;
    opt.ensemble = 3;
    std::vector<harness::SweepPoint> pts;
    for (Bytes m : {Bytes{1024}, Bytes{16384}}) {
        harness::SweepPoint pt;
        pt.cfg = cfg;
        pt.p = 8;
        pt.op = machine::Coll::Alltoall;
        pt.m = m;
        pt.options = opt;
        pts.push_back(pt);
    }
    harness::SweepRunner serial(1), pool(2);
    auto a = serial.run(pts);
    auto b = pool.run(pts);
    for (std::size_t i = 0; i < a.size(); ++i) {
        expectIdentical(a[i], b[i], "ensemble-jobs");
        EXPECT_EQ(a[i].p95_time, b[i].p95_time) << i;
        EXPECT_EQ(a[i].ensemble_failures, b[i].ensemble_failures);
    }
}

// ---- record -> replay under degrade -------------------------------

sim::Task<void>
replayAppRank(machine::Machine &mach, int rank)
{
    mpi::Comm comm(mach, rank);
    co_await comm.compute((50 + 3 * rank) * US);
    co_await comm.allreduce(4096);
    co_await comm.alltoall(1024);
    co_await comm.barrier();
}

TEST_F(ResilienceTest, ReplayUnderDegradeIsDeterministic)
{
    // Record on a clean T3D...
    machine::MachineConfig clean = machine::t3dConfig();
    machine::Machine mach(clean, 4);
    replay::Recorder rec(4);
    rec.attach(mach);
    for (int r = 0; r < 4; ++r)
        mach.sim().spawn(replayAppRank(mach, r));
    mach.run();
    replay::Program prog = rec.take();

    // ...replay under degrade: deterministic, no-throw, and the
    // degradation report rides the ReplayResult.
    machine::MachineConfig deg = clean;
    deg.fault = fault::parseFaultSpec(
        "blackhole=0.1,straggler=0.2,seed=9,policy=degrade");
    replay::ReplayResult a, b;
    ASSERT_NO_THROW(a = replay::Replayer::run(deg, prog));
    ASSERT_NO_THROW(b = replay::Replayer::run(deg, prog));
    EXPECT_EQ(a.completion, b.completion);
    EXPECT_EQ(a.faults.degradation.reroutes,
              b.faults.degradation.reroutes);
    EXPECT_EQ(a.faults.degradation.absorbed,
              b.faults.degradation.absorbed);
    EXPECT_EQ(a.faults.degradation.absorbed_delay,
              b.faults.degradation.absorbed_delay);

    // Degradation costs time, never correctness.
    replay::ReplayResult base = replay::Replayer::run(clean, prog);
    EXPECT_GE(a.makespan(), base.makespan());
}

// ---- fault-conditioned tuning -------------------------------------

TEST_F(ResilienceTest, TuningUnderFaultsIsIdenticalAtAnyJobsLevel)
{
    machine::MachineConfig cfg = machine::t3dConfig();
    cfg.fault = fault::parseFaultSpec(
        "blackhole=0.01,straggler=0.05,seed=42,policy=degrade");
    tuning::TuneGrid grid;
    grid.ops = {machine::Coll::Bcast};
    grid.sizes = {8};
    grid.lengths = {1024, 16384};
    grid.options.iterations = 1;
    grid.options.repetitions = 1;
    grid.options.warmup = 0;
    grid.options.ensemble = 2;

    tuning::TuneResult serial = tuning::tuneMachine(cfg, grid, 1);
    tuning::TuneResult pool = tuning::tuneMachine(cfg, grid, 2);
    ASSERT_EQ(serial.cells.size(), pool.cells.size());
    for (std::size_t i = 0; i < serial.cells.size(); ++i) {
        EXPECT_EQ(serial.cells[i].best_algo, pool.cells[i].best_algo)
            << i;
        EXPECT_EQ(serial.cells[i].best_time, pool.cells[i].best_time)
            << i;
        EXPECT_EQ(serial.cells[i].default_time,
                  pool.cells[i].default_time)
            << i;
    }
    std::ostringstream sa, sb;
    serial.table.save(sa);
    pool.table.save(sb);
    EXPECT_EQ(sa.str(), sb.str());
}

} // namespace
} // namespace ccsim
