/** @file Unit tests for the Task<T> coroutine type. */

#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "sim/task.hh"

namespace ccsim::sim {
namespace {

Task<int>
makeFortyTwo()
{
    co_return 42;
}

Task<std::string>
makeGreeting()
{
    co_return std::string("hello");
}

Task<int>
addNested(int a, int b)
{
    int va = co_await makeFortyTwo();
    (void)va;
    co_return a + b;
}

Task<void>
consume(int *out)
{
    *out = co_await makeFortyTwo();
}

Task<int>
throwing()
{
    throw std::runtime_error("boom");
    co_return 0; // unreachable
}

Task<int>
rethrowing()
{
    int v = co_await throwing();
    co_return v + 1;
}

TEST(Task, LazyUntilAwaited)
{
    bool ran = false;
    auto make = [&]() -> Task<void> {
        ran = true;
        co_return;
    };
    Task<void> t = make();
    EXPECT_TRUE(t.valid());
    EXPECT_FALSE(ran);
    EXPECT_FALSE(t.done());
}

TEST(Task, ValueDeliveredThroughSpawn)
{
    Simulator s;
    int out = 0;
    s.spawn(consume(&out));
    s.run();
    EXPECT_EQ(out, 42);
}

TEST(Task, NestedAwaitChains)
{
    Simulator s;
    int out = 0;
    auto prog = [&]() -> Task<void> {
        out = co_await addNested(10, 20);
    };
    s.spawn(prog());
    s.run();
    EXPECT_EQ(out, 30);
}

TEST(Task, NonTrivialResultType)
{
    Simulator s;
    std::string out;
    auto prog = [&]() -> Task<void> {
        out = co_await makeGreeting();
    };
    s.spawn(prog());
    s.run();
    EXPECT_EQ(out, "hello");
}

TEST(Task, ExceptionPropagatesToAwaiter)
{
    Simulator s;
    bool caught = false;
    auto prog = [&]() -> Task<void> {
        try {
            co_await rethrowing();
        } catch (const std::runtime_error &e) {
            caught = std::string(e.what()) == "boom";
        }
    };
    s.spawn(prog());
    s.run();
    EXPECT_TRUE(caught);
}

TEST(Task, ExceptionEscapingRootRethrownByRun)
{
    Simulator s;
    auto prog = []() -> Task<void> {
        co_await throwing();
    };
    s.spawn(prog());
    EXPECT_THROW(s.run(), std::runtime_error);
}

TEST(Task, MoveTransfersOwnership)
{
    Task<int> a = makeFortyTwo();
    EXPECT_TRUE(a.valid());
    Task<int> b = std::move(a);
    EXPECT_FALSE(a.valid());
    EXPECT_TRUE(b.valid());
    a = std::move(b);
    EXPECT_TRUE(a.valid());
    EXPECT_FALSE(b.valid());
}

TEST(Task, DestroyWithoutRunningDoesNotLeakOrCrash)
{
    for (int i = 0; i < 100; ++i) {
        Task<int> t = makeFortyTwo();
        (void)t;
    }
    SUCCEED();
}

TEST(Task, DeepAwaitChainCompletes)
{
    // Symmetric transfer must not blow the stack on deep chains.
    struct Rec
    {
        static Task<int>
        depth(int n)
        {
            if (n == 0)
                co_return 0;
            int v = co_await depth(n - 1);
            co_return v + 1;
        }
    };
    Simulator s;
    int out = -1;
    auto prog = [&]() -> Task<void> {
        out = co_await Rec::depth(10000);
    };
    s.spawn(prog());
    s.run();
    EXPECT_EQ(out, 10000);
}

} // namespace
} // namespace ccsim::sim
