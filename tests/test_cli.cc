/**
 * @file
 * The did-you-mean machinery: closestMatch edit-distance suggestions
 * and their wiring into Options::parse unknown-flag errors.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/cli.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace ccsim::cli {
namespace {

const std::vector<std::string> kSubcommands = {
    "measure", "sweep", "compare", "tune",  "trace",
    "replay",  "serve", "query",   "paper", "machines",
};

TEST(ClosestMatch, CatchesCommonTypos)
{
    EXPECT_EQ(closestMatch("mesure", kSubcommands), "measure");
    EXPECT_EQ(closestMatch("serv", kSubcommands), "serve");
    EXPECT_EQ(closestMatch("qurey", kSubcommands), "query");
    EXPECT_EQ(closestMatch("sweeep", kSubcommands), "sweep");
}

TEST(ClosestMatch, IsCaseInsensitive)
{
    EXPECT_EQ(closestMatch("MEASURE", kSubcommands), "measure");
    EXPECT_EQ(closestMatch("Serve", kSubcommands), "serve");
}

TEST(ClosestMatch, StaysQuietWhenNothingIsClose)
{
    // Budget is max(2, len/3): a different word is not a typo.
    EXPECT_EQ(closestMatch("frobnicate", kSubcommands), "");
    EXPECT_EQ(closestMatch("xz", kSubcommands), "");
    EXPECT_EQ(closestMatch("", kSubcommands), "");
}

TEST(ClosestMatch, PrefersTheNearestCandidate)
{
    // One edit from "serve", three from "sweep".
    EXPECT_EQ(closestMatch("sarve", kSubcommands), "serve");
}

class OptionsSuggest : public ::testing::Test
{
  protected:
    void SetUp() override { prev_ = throwOnError(true); }
    void TearDown() override { throwOnError(prev_); }
    bool prev_ = false;
};

TEST_F(OptionsSuggest, UnknownFlagNamesTheNearestDeclared)
{
    Options opt("ccsim serve");
    opt.value("port", "TCP port", "N");
    opt.value("jobs", "worker threads", "K");

    const char *argv[] = {"ccsim", "--jbos", "4"};
    try {
        opt.parse(3, const_cast<char **>(argv), 1);
        FAIL() << "typo accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find(
                      "did you mean '--jobs'?"),
                  std::string::npos)
            << e.what();
    }
}

TEST_F(OptionsSuggest, HopelessFlagGetsNoSuggestion)
{
    Options opt("ccsim serve");
    opt.value("port", "TCP port", "N");

    const char *argv[] = {"ccsim", "--frobnicate"};
    try {
        opt.parse(2, const_cast<char **>(argv), 1);
        FAIL() << "unknown flag accepted";
    } catch (const FatalError &e) {
        EXPECT_EQ(std::string(e.what()).find("did you mean"),
                  std::string::npos)
            << e.what();
    }
}

} // namespace
} // namespace ccsim::cli
