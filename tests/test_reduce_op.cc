/** @file Unit tests for datatypes and reduction operators. */

#include <gtest/gtest.h>

#include "mpi/datatype.hh"
#include "mpi/reduce_op.hh"
#include "util/logging.hh"

namespace ccsim::mpi {
namespace {

TEST(Datatype, SizesAndNames)
{
    EXPECT_EQ(datatypeSize(Datatype::F32), 4);
    EXPECT_EQ(datatypeSize(Datatype::F64), 8);
    EXPECT_EQ(datatypeSize(Datatype::I32), 4);
    EXPECT_EQ(datatypeSize(Datatype::I64), 8);
    EXPECT_EQ(datatypeSize(Datatype::U8), 1);
    EXPECT_EQ(datatypeName(Datatype::F32), "float32");
}

TEST(Datatype, TypeMapping)
{
    EXPECT_EQ(datatypeOf<float>(), Datatype::F32);
    EXPECT_EQ(datatypeOf<double>(), Datatype::F64);
    EXPECT_EQ(datatypeOf<std::int32_t>(), Datatype::I32);
    EXPECT_EQ(datatypeOf<std::int64_t>(), Datatype::I64);
    EXPECT_EQ(datatypeOf<std::uint8_t>(), Datatype::U8);
}

TEST(ReduceOp, AllOperatorsOnInts)
{
    std::vector<std::int32_t> a{5, -2, 7};
    std::vector<std::int32_t> b{3, 4, 7};
    auto pa = msg::makePayload(a);
    auto pb = msg::makePayload(b);

    auto sum = msg::payloadAs<std::int32_t>(
        combine(ReduceOp::Sum, Datatype::I32, pa, pb));
    EXPECT_EQ(sum, (std::vector<std::int32_t>{8, 2, 14}));

    auto prod = msg::payloadAs<std::int32_t>(
        combine(ReduceOp::Prod, Datatype::I32, pa, pb));
    EXPECT_EQ(prod, (std::vector<std::int32_t>{15, -8, 49}));

    auto mn = msg::payloadAs<std::int32_t>(
        combine(ReduceOp::Min, Datatype::I32, pa, pb));
    EXPECT_EQ(mn, (std::vector<std::int32_t>{3, -2, 7}));

    auto mx = msg::payloadAs<std::int32_t>(
        combine(ReduceOp::Max, Datatype::I32, pa, pb));
    EXPECT_EQ(mx, (std::vector<std::int32_t>{5, 4, 7}));
}

TEST(ReduceOp, FloatSum)
{
    std::vector<float> a{1.5f, -0.5f};
    std::vector<float> b{0.25f, 0.5f};
    auto out = msg::payloadAs<float>(combine(
        ReduceOp::Sum, Datatype::F32, msg::makePayload(a),
        msg::makePayload(b)));
    EXPECT_FLOAT_EQ(out[0], 1.75f);
    EXPECT_FLOAT_EQ(out[1], 0.0f);
}

TEST(ReduceOp, NullInputsGiveNull)
{
    EXPECT_EQ(combine(ReduceOp::Sum, Datatype::F32, nullptr, nullptr),
              nullptr);
}

TEST(ReduceOp, MixedNullPanics)
{
    throwOnError(true);
    std::vector<float> a{1.0f};
    auto pa = msg::makePayload(a);
    EXPECT_THROW(combine(ReduceOp::Sum, Datatype::F32, pa, nullptr),
                 PanicError);
    throwOnError(false);
}

TEST(ReduceOp, SizeMismatchPanics)
{
    throwOnError(true);
    std::vector<float> a{1.0f, 2.0f};
    std::vector<float> b{1.0f};
    EXPECT_THROW(combine(ReduceOp::Sum, Datatype::F32,
                         msg::makePayload(a), msg::makePayload(b)),
                 PanicError);
    throwOnError(false);
}

TEST(ReduceOp, MisalignedPayloadPanics)
{
    throwOnError(true);
    std::vector<std::uint8_t> raw{1, 2, 3}; // 3 bytes, not 4-aligned
    auto p = msg::makePayload(raw);
    EXPECT_THROW(combine(ReduceOp::Sum, Datatype::F32, p, p),
                 PanicError);
    throwOnError(false);
}

TEST(ReduceOp, CombinerBindsOpAndType)
{
    Combiner c = makeCombiner(ReduceOp::Max, Datatype::I64);
    std::vector<std::int64_t> a{10};
    std::vector<std::int64_t> b{-10};
    auto out = msg::payloadAs<std::int64_t>(
        c(msg::makePayload(a), msg::makePayload(b)));
    EXPECT_EQ(out, (std::vector<std::int64_t>{10}));
    EXPECT_EQ(c(nullptr, nullptr), nullptr);
}

TEST(ReduceOp, Names)
{
    EXPECT_EQ(reduceOpName(ReduceOp::Sum), "sum");
    EXPECT_EQ(reduceOpName(ReduceOp::Prod), "prod");
    EXPECT_EQ(reduceOpName(ReduceOp::Min), "min");
    EXPECT_EQ(reduceOpName(ReduceOp::Max), "max");
}

} // namespace
} // namespace ccsim::mpi
