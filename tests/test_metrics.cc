/**
 * @file
 * Tests for the observability layer (src/stats/) and the unified
 * error/CLI surface it ships with: histogram merge exactness,
 * snapshot merge semantics and byte-stable serialization, the
 * metrics-never-perturb-simulated-time guarantee, --jobs
 * determinism of per-point snapshots, the per-point metrics reset
 * of replay hooks, typed error exit codes, and cli::Options.
 */

#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "harness/measure.hh"
#include "harness/sweep.hh"
#include "machine/config_io.hh"
#include "machine/machine_config.hh"
#include "replay/recorder.hh"
#include "replay/replayer.hh"
#include "replay/trace_parser.hh"
#include "stats/metrics.hh"
#include "stats/snapshot.hh"
#include "util/cli.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace ccsim::stats {
namespace {

// ---- histogram --------------------------------------------------------

TEST(Histogram, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.totalWeight(), 0.0);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.min(), 0.0);
    EXPECT_EQ(h.max(), 0.0);
}

TEST(Histogram, BucketRanges)
{
    Histogram h;
    h.add(0.0);  // bucket 0: <= 1
    h.add(1.0);  // bucket 0 boundary
    h.add(1.5);  // bucket 1: (1, 2]
    h.add(2.0);  // bucket 1 boundary
    h.add(3.0);  // bucket 2: (2, 4]
    h.add(1024.0); // bucket 10 boundary
    EXPECT_EQ(h.bucketWeight(0), 2.0);
    EXPECT_EQ(h.bucketWeight(1), 2.0);
    EXPECT_EQ(h.bucketWeight(2), 1.0);
    EXPECT_EQ(h.bucketWeight(10), 1.0);
    EXPECT_EQ(Histogram::bucketUpperBound(0), 1.0);
    EXPECT_EQ(Histogram::bucketUpperBound(10), 1024.0);
}

TEST(Histogram, WeightedMean)
{
    Histogram h;
    h.add(10.0, 3.0);
    h.add(20.0, 1.0);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_DOUBLE_EQ(h.totalWeight(), 4.0);
    EXPECT_DOUBLE_EQ(h.mean(), (10.0 * 3.0 + 20.0 * 1.0) / 4.0);
    EXPECT_EQ(h.min(), 10.0);
    EXPECT_EQ(h.max(), 20.0);
}

/** merge() must equal adding all observations to one histogram. */
TEST(Histogram, MergeIsExact)
{
    std::vector<std::pair<double, double>> a = {
        {0.5, 1.0}, {3.0, 2.0}, {100.0, 0.25}};
    std::vector<std::pair<double, double>> b = {
        {7.0, 1.0}, {1e9, 5.0}, {0.0, 3.0}, {3.0, 1.0}};

    Histogram ha, hb, hboth;
    for (auto [v, w] : a) {
        ha.add(v, w);
        hboth.add(v, w);
    }
    for (auto [v, w] : b) {
        hb.add(v, w);
        hboth.add(v, w);
    }
    ha.merge(hb);

    EXPECT_EQ(ha.count(), hboth.count());
    EXPECT_DOUBLE_EQ(ha.totalWeight(), hboth.totalWeight());
    EXPECT_DOUBLE_EQ(ha.weightedSum(), hboth.weightedSum());
    EXPECT_EQ(ha.min(), hboth.min());
    EXPECT_EQ(ha.max(), hboth.max());
    for (int i = 0; i < Histogram::kBuckets; ++i)
        EXPECT_EQ(ha.bucketWeight(i), hboth.bucketWeight(i)) << i;
}

TEST(Histogram, MergeWithEmpty)
{
    Histogram h, empty;
    h.add(5.0, 2.0);
    h.merge(empty);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.min(), 5.0);

    empty.merge(h);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_EQ(empty.min(), 5.0);
    EXPECT_EQ(empty.max(), 5.0);
}

TEST(HistogramSnapshot, MirrorsMerge)
{
    Histogram ha, hb;
    ha.add(2.0, 1.0);
    ha.add(300.0, 4.0);
    hb.add(0.25, 2.0);
    hb.add(300.0, 1.0);

    HistogramSnapshot sa = HistogramSnapshot::of(ha);
    sa.merge(HistogramSnapshot::of(hb));

    ha.merge(hb);
    HistogramSnapshot ref = HistogramSnapshot::of(ha);

    EXPECT_EQ(sa.count, ref.count);
    EXPECT_DOUBLE_EQ(sa.total_weight, ref.total_weight);
    EXPECT_DOUBLE_EQ(sa.weighted_sum, ref.weighted_sum);
    EXPECT_EQ(sa.min, ref.min);
    EXPECT_EQ(sa.max, ref.max);
    EXPECT_EQ(sa.buckets, ref.buckets);
}

// ---- snapshot merge and serialization ---------------------------------

TEST(MetricsSnapshot, MergeSemantics)
{
    MetricsSnapshot a, b;
    a.counters["n"] = 3;
    a.counters["only_a"] = 1;
    a.gauges["hw"] = 5.0;
    a.links.push_back({"link00000", 100, 2.0, 0.5, 0.2});
    a.horizon_us = 10.0;

    b.counters["n"] = 4;
    b.gauges["hw"] = 7.0;
    b.gauges["only_b"] = 1.0;
    b.links.push_back({"link00000", 50, 1.0, 0.0, 0.1});
    b.links.push_back({"link00001", 10, 0.5, 0.0, 0.05});
    b.horizon_us = 8.0;

    a.merge(b);
    EXPECT_EQ(a.counters["n"], 7u);       // counters add
    EXPECT_EQ(a.counters["only_a"], 1u);
    EXPECT_EQ(a.gauges["hw"], 7.0);       // gauges take the max
    EXPECT_EQ(a.gauges["only_b"], 1.0);
    EXPECT_EQ(a.horizon_us, 10.0);        // horizon takes the max
    ASSERT_EQ(a.links.size(), 2u);        // link rows add by label
    EXPECT_EQ(a.links[0].link, "link00000");
    EXPECT_EQ(a.links[0].bytes, 150u);
    EXPECT_DOUBLE_EQ(a.links[0].busy_us, 3.0);
    EXPECT_EQ(a.links[1].link, "link00001");
}

TEST(MetricsSnapshot, EmptyAndAggregates)
{
    MetricsSnapshot s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.maxLinkUtil(), 0.0);

    s.links.push_back({"a", 1, 2.0, 1.0, 0.3});
    s.links.push_back({"b", 1, 4.0, 0.5, 0.7});
    EXPECT_FALSE(s.empty());
    EXPECT_DOUBLE_EQ(s.maxLinkUtil(), 0.7);
    EXPECT_DOUBLE_EQ(s.totalStallUs(), 1.5);
    EXPECT_DOUBLE_EQ(s.totalLinkBusyUs(), 6.0);
}

// ---- end-to-end guarantees --------------------------------------------

harness::MeasureOptions
quickOptions(bool metrics)
{
    harness::MeasureOptions o;
    o.iterations = 2;
    o.repetitions = 1;
    o.warmup = 1;
    o.metrics = metrics;
    return o;
}

/** Metrics are observation-only: simulated times must not move. */
TEST(MetricsEndToEnd, CollectionLeavesTimesUnchanged)
{
    for (const auto &cfg :
         {machine::paragonConfig(), machine::sp2Config()}) {
        auto off = harness::measureCollective(
            cfg, 8, machine::Coll::Alltoall, 4096,
            machine::Algo::Default, quickOptions(false));
        auto on = harness::measureCollective(
            cfg, 8, machine::Coll::Alltoall, 4096,
            machine::Algo::Default, quickOptions(true));
        EXPECT_EQ(off.max_time, on.max_time) << cfg.name;
        EXPECT_EQ(off.min_time, on.min_time) << cfg.name;
        EXPECT_EQ(off.mean_time, on.mean_time) << cfg.name;
        EXPECT_TRUE(off.metrics.empty());
        EXPECT_FALSE(on.metrics.empty());
    }
}

TEST(MetricsEndToEnd, SnapshotContents)
{
    auto meas = harness::measureCollective(
        machine::paragonConfig(), 8, machine::Coll::Alltoall, 4096,
        machine::Algo::Default, quickOptions(true));
    const MetricsSnapshot &s = meas.metrics;

    // The transport moved messages and the links carried them.
    auto counter = [&](const char *n) {
        auto it = s.counters.find(n);
        return it == s.counters.end() ? 0u : it->second;
    };
    EXPECT_GT(counter("msg.recvs"), 0u);
    EXPECT_GT(counter("net.messages"), 0u);
    EXPECT_GT(counter("net.payload_bytes"), 0u);
    EXPECT_GT(counter("sim.events"), 0u);
    EXPECT_GT(counter("coll.alltoall.calls"), 0u);
    ASSERT_FALSE(s.links.empty());
    EXPECT_GT(s.maxLinkUtil(), 0.0);
    EXPECT_LE(s.maxLinkUtil(), 1.0);
    EXPECT_GT(s.horizon_us, 0.0);

    // Fault counters exist (zero: no faults configured).
    EXPECT_EQ(counter("fault.drops"), 0u);

    // Serialization round: stable, non-empty, and repeatable.
    EXPECT_FALSE(s.toCsv().empty());
    EXPECT_FALSE(s.toJson().empty());
    EXPECT_EQ(s.toCsv(), s.toCsv());
}

/** Per-point snapshots are identical at any --jobs level. */
TEST(MetricsEndToEnd, SweepJobsDeterminism)
{
    harness::SweepSpec spec;
    spec.machines = {machine::t3dConfig(), machine::paragonConfig()};
    spec.ops = {machine::Coll::Bcast, machine::Coll::Alltoall};
    spec.sizes = {4, 8};
    spec.lengths = {1024};
    spec.options = quickOptions(true);

    harness::SweepRunner serial(1);
    harness::SweepRunner pool(4);
    auto r1 = serial.run(spec);
    auto r4 = pool.run(spec);
    ASSERT_EQ(r1.size(), r4.size());
    for (std::size_t i = 0; i < r1.size(); ++i) {
        EXPECT_EQ(r1[i].max_time, r4[i].max_time) << i;
        EXPECT_EQ(r1[i].metrics.toCsv(), r4[i].metrics.toCsv()) << i;
    }
}

// ---- replay: per-point reset of snapshots and hooks -------------------

replay::Program
tinyProgram()
{
    std::istringstream is("# ccsim trace v1\n"
                          "np 2\n"
                          "0 send 1 4096 tag=1\n"
                          "1 recv 0 tag=1\n"
                          "0 barrier\n"
                          "1 barrier\n");
    return replay::TraceParser::parse(is, "tiny.trace");
}

/** Repeated sweep points are byte-identical: machine metrics and the
 *  attached hook are both reset at every point boundary. */
TEST(MetricsEndToEnd, ReplayRepeatedPointsIdentical)
{
    replay::Program prog = tinyProgram();
    replay::Recorder rec(2);

    replay::ReplayPoint pt;
    pt.cfg = machine::t3dConfig();
    pt.options.metrics = true;
    pt.options.hook = &rec;

    // A shared hook requires --jobs 1 (documented contract).
    harness::SweepRunner runner(1);
    auto results = replaySweep(prog, {pt, pt, pt}, runner);
    ASSERT_EQ(results.size(), 3u);
    for (std::size_t i = 1; i < results.size(); ++i) {
        EXPECT_EQ(results[0].completion, results[i].completion) << i;
        EXPECT_EQ(results[0].metrics.toCsv(),
                  results[i].metrics.toCsv())
            << i;
    }

    // The recorder holds exactly one point's actions, not three.
    std::ostringstream os;
    rec.write(os);
    replay::Program last = tinyProgram();
    std::ostringstream ref;
    // Re-recording the same program reproduces its action count.
    std::istringstream is(os.str());
    replay::Program got = replay::TraceParser::parse(is, "rec.trace");
    ASSERT_EQ(got.np, last.np);
    for (int r = 0; r < got.np; ++r)
        EXPECT_EQ(got.ranks[static_cast<std::size_t>(r)].size(),
                  last.ranks[static_cast<std::size_t>(r)].size())
            << r;
}

/** onMetricsReset drops recorded actions but keeps the rank count. */
TEST(Recorder, MetricsResetClearsActions)
{
    replay::Recorder rec(2);
    rec.onSend(0, 1, 7, 128, false);
    rec.onRecv(1, 0, 7, false);
    rec.onMetricsReset();
    std::ostringstream os;
    rec.write(os);
    std::istringstream is(os.str());
    replay::Program p = replay::TraceParser::parse(is, "r.trace");
    EXPECT_EQ(p.np, 2);
    EXPECT_TRUE(p.ranks[0].empty());
    EXPECT_TRUE(p.ranks[1].empty());
}

} // namespace
} // namespace ccsim::stats

// ---- unified error surface --------------------------------------------

namespace ccsim {
namespace {

class ErrorSurfaceTest : public ::testing::Test
{
  protected:
    void SetUp() override { prev_ = throwOnError(true); }
    void TearDown() override { throwOnError(prev_); }

  private:
    bool prev_ = false;
};

TEST_F(ErrorSurfaceTest, ConfigErrorCodeAndFormat)
{
    try {
        machine::presetByName("nosuchmachine");
        FAIL() << "presetByName accepted a bogus preset";
    } catch (const Error &e) {
        EXPECT_EQ(e.exitCode(), kConfigExit);
        EXPECT_EQ(e.component(), "config");
        EXPECT_EQ(e.formatted().rfind("ccsim config error: ", 0), 0u)
            << e.formatted();
    }
}

TEST_F(ErrorSurfaceTest, TraceErrorCodeAndFormat)
{
    std::istringstream is("np 2\nbogus line\n");
    try {
        replay::TraceParser::parse(is, "bad.trace");
        FAIL() << "parser accepted a bogus trace";
    } catch (const Error &e) {
        EXPECT_EQ(e.exitCode(), kTraceExit);
        EXPECT_EQ(e.component(), "replay");
    }
}

TEST_F(ErrorSurfaceTest, TypedErrorsRemainFatalError)
{
    // Existing call sites catch FatalError; the typed subclasses must
    // stay substitutable for it.
    EXPECT_THROW(machine::presetByName("nope"), FatalError);
    EXPECT_THROW(machine::presetByName("nope"), machine::ConfigError);
    std::istringstream is("np 0\n");
    EXPECT_THROW(replay::TraceParser::parse(is, "b.trace"),
                 replay::TraceError);
}

// ---- cli::Options -----------------------------------------------------

TEST_F(ErrorSurfaceTest, CliOptionsParsesDeclaredSchema)
{
    cli::Options o("prog");
    o.flag("quick", "fast mode");
    o.value("machine", "preset", "NAME");
    o.value("p", "nodes", "N");
    o.value("scale", "factors", "LIST");
    o.value("absent", "never passed", "X");

    const char *argv[] = {"prog",      "--quick", "--machine",
                          "T3D",       "--p",     "16",
                          "--scale",   "1,2,4"};
    o.parse(8, const_cast<char **>(argv), 1);
    EXPECT_TRUE(o.has("quick"));
    EXPECT_EQ(o.get("machine"), "T3D");
    EXPECT_EQ(o.getInt("p", 0), 16);
    EXPECT_EQ(o.getList("scale"),
              (std::vector<std::string>{"1", "2", "4"}));
    EXPECT_EQ(o.get("absent", "dflt"), "dflt");
    EXPECT_FALSE(o.usage().empty());
}

TEST_F(ErrorSurfaceTest, CliOptionsRejectsUndeclared)
{
    cli::Options o("prog");
    o.flag("quick", "fast mode");
    const char *argv[] = {"prog", "--bogus"};
    EXPECT_THROW(o.parse(2, const_cast<char **>(argv), 1), FatalError);
}

TEST_F(ErrorSurfaceTest, CliOptionsRejectsMissingValue)
{
    cli::Options o("prog");
    o.value("p", "nodes", "N");
    const char *argv[] = {"prog", "--p"};
    EXPECT_THROW(o.parse(2, const_cast<char **>(argv), 1), FatalError);
    const char *argv2[] = {"prog", "--p", "notanumber"};
    o.parse(3, const_cast<char **>(argv2), 1);
    EXPECT_THROW(o.getInt("p", 0), FatalError);
}

} // namespace
} // namespace ccsim
