/** @file Unit tests for the link-occupancy network model. */

#include <memory>

#include <gtest/gtest.h>

#include "net/fully_connected.hh"
#include "net/mesh2d.hh"
#include "net/network.hh"
#include "net/torus3d.hh"
#include "util/logging.hh"

namespace ccsim::net {
namespace {

using namespace time_literals;

/** RouteVec is pool-backed; lift to a plain vector for EXPECT_EQ
 *  against what Topology::route fills. */
std::vector<LinkId>
plain(const RouteVec &r)
{
    return std::vector<LinkId>(r.begin(), r.end());
}

NetworkParams
simpleParams()
{
    NetworkParams p;
    p.link_bandwidth_mbs = 100.0; // 10 ns per byte
    p.hop_latency = 100 * NS;
    p.packet_overhead = 0;
    p.contention = true;
    return p;
}

TEST(Network, LatencyIsHopsPlusSerialization)
{
    Network net(std::make_unique<Mesh2D>(1, 4), simpleParams());
    // 0 -> 3: 3 hops; 1000 bytes at 100 MB/s = 10 us.
    Time t = net.transfer(0, 3, 1000, 0);
    EXPECT_EQ(t, 3 * (100 * NS) + 10 * US);
}

TEST(Network, ZeroByteControlMessageCostsHopsOnly)
{
    Network net(std::make_unique<Mesh2D>(1, 4), simpleParams());
    EXPECT_EQ(net.transfer(0, 1, 0, 0), 100 * NS);
}

TEST(Network, PacketOverheadAddsWireBytes)
{
    auto p = simpleParams();
    p.packet_overhead = 100; // 1 us at 100 MB/s
    Network net(std::make_unique<Mesh2D>(1, 2), p);
    EXPECT_EQ(net.transfer(0, 1, 0, 0), 100 * NS + 1 * US);
}

TEST(Network, SharedLinkSerializes)
{
    Network net(std::make_unique<Mesh2D>(1, 4), simpleParams());
    // Two messages both crossing link 0->1 at t=0.
    Time t1 = net.transfer(0, 1, 1000, 0);
    Time t2 = net.transfer(0, 1, 1000, 0);
    EXPECT_EQ(t1, 100 * NS + 10 * US);
    EXPECT_EQ(t2, 100 * NS + 20 * US); // waits for the first
}

TEST(Network, DisjointPathsDoNotContend)
{
    Network net(std::make_unique<Mesh2D>(1, 4), simpleParams());
    Time t1 = net.transfer(0, 1, 1000, 0);
    Time t2 = net.transfer(3, 2, 1000, 0);
    EXPECT_EQ(t1, t2); // same shape, different wires
}

TEST(Network, OppositeDirectionsAreFullDuplex)
{
    Network net(std::make_unique<Mesh2D>(1, 2), simpleParams());
    Time t1 = net.transfer(0, 1, 1000, 0);
    Time t2 = net.transfer(1, 0, 1000, 0);
    EXPECT_EQ(t1, t2);
}

TEST(Network, ContentionDisabledIgnoresOccupancy)
{
    auto p = simpleParams();
    p.contention = false;
    Network net(std::make_unique<Mesh2D>(1, 4), p);
    Time t1 = net.transfer(0, 1, 1000, 0);
    Time t2 = net.transfer(0, 1, 1000, 0);
    EXPECT_EQ(t1, t2);
}

TEST(Network, LaterStartDelaysArrival)
{
    Network net(std::make_unique<Mesh2D>(1, 2), simpleParams());
    Time t = net.transfer(0, 1, 1000, 5 * US);
    EXPECT_EQ(t, 5 * US + 100 * NS + 10 * US);
}

TEST(Network, BusyLinkDelaysNewMessagePastItsRequestTime)
{
    Network net(std::make_unique<Mesh2D>(1, 2), simpleParams());
    net.transfer(0, 1, 10000, 0);          // occupies 0->1 until 100 us
    Time t = net.transfer(0, 1, 0, 50 * US); // wants to start at 50 us
    EXPECT_EQ(t, 100 * US + 100 * NS);
}

TEST(Network, StatsAccumulateAndReset)
{
    Network net(std::make_unique<Mesh2D>(1, 4), simpleParams());
    net.transfer(0, 3, 1000, 0);
    net.transfer(1, 0, 500, 0);
    EXPECT_EQ(net.messages(), 2u);
    EXPECT_EQ(net.totalBytes(), 1500);
    EXPECT_GT(net.totalLinkBusy(), 0);
    net.reset();
    EXPECT_EQ(net.messages(), 0u);
    EXPECT_EQ(net.totalBytes(), 0);
    EXPECT_EQ(net.totalLinkBusy(), 0);
}

TEST(Network, SelfTransferPanics)
{
    throwOnError(true);
    Network net(std::make_unique<Mesh2D>(1, 4), simpleParams());
    EXPECT_THROW(net.transfer(2, 2, 100, 0), PanicError);
    throwOnError(false);
}

TEST(Network, InvalidParamsFatal)
{
    throwOnError(true);
    auto p = simpleParams();
    p.link_bandwidth_mbs = 0;
    EXPECT_THROW(Network(std::make_unique<Mesh2D>(1, 2), p), FatalError);
    p = simpleParams();
    p.hop_latency = -1;
    EXPECT_THROW(Network(std::make_unique<Mesh2D>(1, 2), p), FatalError);
    throwOnError(false);
}

TEST(Network, TorusBeatsMeshUnderUniformAllToAll)
{
    // Total-exchange-like load: every node sends 4 KB to every other.
    // The 3-D torus has more links and shorter routes than the 2-D
    // mesh, so its last arrival must be earlier.
    auto run = [](std::unique_ptr<Topology> topo) {
        NetworkParams p;
        p.link_bandwidth_mbs = 100.0;
        p.hop_latency = 100 * NS;
        Network net(std::move(topo), p);
        int n = net.topology().numNodes();
        Time last = 0;
        for (int s = 0; s < n; ++s)
            for (int d = 0; d < n; ++d)
                if (s != d)
                    last = std::max(last, net.transfer(s, d, 4096, 0));
        return last;
    };
    Time mesh = run(std::make_unique<Mesh2D>(4, 8));
    Time torus = run(std::make_unique<Torus3D>(4, 4, 2));
    Time ideal = run(std::make_unique<FullyConnected>(32));
    EXPECT_LT(torus, mesh);
    EXPECT_LT(ideal, torus);
}

TEST(Network, UtilizationSummary)
{
    Network net(std::make_unique<Mesh2D>(1, 3), simpleParams());
    // 1000 B over 0->1 (1 link busy 10 us) and 0->2 (2 links).
    net.transfer(0, 1, 1000, 0);
    net.transfer(0, 2, 1000, 0);
    auto u = net.utilization(20 * US);
    // Link 0->1 is shared by both transfers: busy 20 us of 20.
    EXPECT_DOUBLE_EQ(u.max, 1.0);
    EXPECT_EQ(u.links_used, 2);
    EXPECT_GT(u.mean, 0.0);
    EXPECT_LT(u.mean, 1.0);
    EXPECT_GE(u.hottest, 0);
}

TEST(Network, UtilizationEmptyAndZeroHorizon)
{
    Network net(std::make_unique<Mesh2D>(1, 3), simpleParams());
    auto idle = net.utilization(10 * US);
    EXPECT_EQ(idle.links_used, 0);
    EXPECT_DOUBLE_EQ(idle.mean, 0.0);
    EXPECT_EQ(net.utilization(0).links_used, 0);
}

TEST(Network, UtilizationClampsToHorizon)
{
    Network net(std::make_unique<Mesh2D>(1, 2), simpleParams());
    net.transfer(0, 1, 100000, 0); // busy until 1 ms
    auto u = net.utilization(500 * US);
    EXPECT_DOUBLE_EQ(u.max, 1.0); // clamped, not > 1
}

TEST(Network, RouteCacheMatchesFreshTopologyRoute)
{
    Network net(std::make_unique<Torus3D>(2, 2, 2), simpleParams());
    Torus3D fresh(2, 2, 2);
    for (int s = 0; s < 8; ++s) {
        for (int d = 0; d < 8; ++d) {
            if (s == d)
                continue;
            std::vector<LinkId> expect;
            fresh.route(s, d, expect);
            EXPECT_EQ(plain(net.cachedRoute(s, d)), expect)
                << s << " -> " << d;
            // Second lookup: a hit, same path.
            EXPECT_EQ(plain(net.cachedRoute(s, d)), expect);
        }
    }
    EXPECT_EQ(net.routeCacheMisses(), 8u * 7u);
    EXPECT_EQ(net.routeCacheHits(), 8u * 7u);
}

TEST(Network, TransferPopulatesAndHitsRouteCache)
{
    Network net(std::make_unique<Mesh2D>(2, 2), simpleParams());
    EXPECT_EQ(net.routeCacheMisses(), 0u);
    net.transfer(0, 3, 100, 0);
    EXPECT_EQ(net.routeCacheMisses(), 1u);
    EXPECT_EQ(net.routeCacheHits(), 0u);
    net.transfer(0, 3, 100, 0);
    net.transfer(0, 3, 100, 0);
    EXPECT_EQ(net.routeCacheMisses(), 1u);
    EXPECT_EQ(net.routeCacheHits(), 2u);
    // A different pair is its own entry.
    net.transfer(3, 0, 100, 0);
    EXPECT_EQ(net.routeCacheMisses(), 2u);
}

TEST(Network, CachedTransferTimesEqualUncachedTimes)
{
    // The cache must not change any physics: compare against a second
    // network whose cache is reset between transfers (forcing misses).
    Network cached(std::make_unique<Torus3D>(2, 2, 2), simpleParams());
    Network uncached(std::make_unique<Torus3D>(2, 2, 2),
                     simpleParams());
    for (int rep = 0; rep < 3; ++rep) {
        for (int s = 0; s < 8; ++s) {
            int d = (s + 3) % 8;
            Time a = cached.transfer(s, d, 4096, 0);
            Time b = uncached.transfer(s, d, 4096, 0);
            EXPECT_EQ(a, b);
        }
    }
}

TEST(Network, ResetKeepsRouteCacheCoherent)
{
    Network net(std::make_unique<Mesh2D>(2, 4), simpleParams());
    std::vector<LinkId> before = plain(net.cachedRoute(0, 7));
    net.reset();
    EXPECT_EQ(net.routeCacheHits(), 0u);
    EXPECT_EQ(net.routeCacheMisses(), 0u);
    // Refilled lazily, identical to a fresh Topology::route.
    std::vector<LinkId> expect;
    Mesh2D(2, 4).route(0, 7, expect);
    EXPECT_EQ(plain(net.cachedRoute(0, 7)), before);
    EXPECT_EQ(plain(net.cachedRoute(0, 7)), expect);
    EXPECT_EQ(net.routeCacheMisses(), 1u);
}

TEST(Network, CachedRouteSelfSendPanics)
{
    throwOnError(true);
    Network net(std::make_unique<Mesh2D>(1, 2), simpleParams());
    EXPECT_THROW(net.cachedRoute(1, 1), PanicError);
    throwOnError(false);
}

} // namespace
} // namespace ccsim::net
