/** @file Unit tests for the link-occupancy network model. */

#include <memory>

#include <gtest/gtest.h>

#include "net/fat_tree.hh"
#include "net/fully_connected.hh"
#include "net/hierarchical.hh"
#include "net/mesh2d.hh"
#include "net/network.hh"
#include "net/torus3d.hh"
#include "util/logging.hh"

namespace ccsim::net {
namespace {

using namespace time_literals;

NetworkParams
simpleParams()
{
    NetworkParams p;
    p.link_bandwidth_mbs = 100.0; // 10 ns per byte
    p.hop_latency = 100 * NS;
    p.packet_overhead = 0;
    p.contention = true;
    return p;
}

TEST(Network, LatencyIsHopsPlusSerialization)
{
    Network net(std::make_unique<Mesh2D>(1, 4), simpleParams());
    // 0 -> 3: 3 hops; 1000 bytes at 100 MB/s = 10 us.
    Time t = net.transfer(0, 3, 1000, 0);
    EXPECT_EQ(t, 3 * (100 * NS) + 10 * US);
}

TEST(Network, ZeroByteControlMessageCostsHopsOnly)
{
    Network net(std::make_unique<Mesh2D>(1, 4), simpleParams());
    EXPECT_EQ(net.transfer(0, 1, 0, 0), 100 * NS);
}

TEST(Network, PacketOverheadAddsWireBytes)
{
    auto p = simpleParams();
    p.packet_overhead = 100; // 1 us at 100 MB/s
    Network net(std::make_unique<Mesh2D>(1, 2), p);
    EXPECT_EQ(net.transfer(0, 1, 0, 0), 100 * NS + 1 * US);
}

TEST(Network, SharedLinkSerializes)
{
    Network net(std::make_unique<Mesh2D>(1, 4), simpleParams());
    // Two messages both crossing link 0->1 at t=0.
    Time t1 = net.transfer(0, 1, 1000, 0);
    Time t2 = net.transfer(0, 1, 1000, 0);
    EXPECT_EQ(t1, 100 * NS + 10 * US);
    EXPECT_EQ(t2, 100 * NS + 20 * US); // waits for the first
}

TEST(Network, DisjointPathsDoNotContend)
{
    Network net(std::make_unique<Mesh2D>(1, 4), simpleParams());
    Time t1 = net.transfer(0, 1, 1000, 0);
    Time t2 = net.transfer(3, 2, 1000, 0);
    EXPECT_EQ(t1, t2); // same shape, different wires
}

TEST(Network, OppositeDirectionsAreFullDuplex)
{
    Network net(std::make_unique<Mesh2D>(1, 2), simpleParams());
    Time t1 = net.transfer(0, 1, 1000, 0);
    Time t2 = net.transfer(1, 0, 1000, 0);
    EXPECT_EQ(t1, t2);
}

TEST(Network, ContentionDisabledIgnoresOccupancy)
{
    auto p = simpleParams();
    p.contention = false;
    Network net(std::make_unique<Mesh2D>(1, 4), p);
    Time t1 = net.transfer(0, 1, 1000, 0);
    Time t2 = net.transfer(0, 1, 1000, 0);
    EXPECT_EQ(t1, t2);
}

TEST(Network, LaterStartDelaysArrival)
{
    Network net(std::make_unique<Mesh2D>(1, 2), simpleParams());
    Time t = net.transfer(0, 1, 1000, 5 * US);
    EXPECT_EQ(t, 5 * US + 100 * NS + 10 * US);
}

TEST(Network, BusyLinkDelaysNewMessagePastItsRequestTime)
{
    Network net(std::make_unique<Mesh2D>(1, 2), simpleParams());
    net.transfer(0, 1, 10000, 0);          // occupies 0->1 until 100 us
    Time t = net.transfer(0, 1, 0, 50 * US); // wants to start at 50 us
    EXPECT_EQ(t, 100 * US + 100 * NS);
}

TEST(Network, StatsAccumulateAndReset)
{
    Network net(std::make_unique<Mesh2D>(1, 4), simpleParams());
    net.transfer(0, 3, 1000, 0);
    net.transfer(1, 0, 500, 0);
    EXPECT_EQ(net.messages(), 2u);
    EXPECT_EQ(net.totalBytes(), 1500);
    EXPECT_GT(net.totalLinkBusy(), 0);
    net.reset();
    EXPECT_EQ(net.messages(), 0u);
    EXPECT_EQ(net.totalBytes(), 0);
    EXPECT_EQ(net.totalLinkBusy(), 0);
}

TEST(Network, SelfTransferPanics)
{
    throwOnError(true);
    Network net(std::make_unique<Mesh2D>(1, 4), simpleParams());
    EXPECT_THROW(net.transfer(2, 2, 100, 0), PanicError);
    throwOnError(false);
}

TEST(Network, InvalidParamsFatal)
{
    throwOnError(true);
    auto p = simpleParams();
    p.link_bandwidth_mbs = 0;
    EXPECT_THROW(Network(std::make_unique<Mesh2D>(1, 2), p), FatalError);
    p = simpleParams();
    p.hop_latency = -1;
    EXPECT_THROW(Network(std::make_unique<Mesh2D>(1, 2), p), FatalError);
    throwOnError(false);
}

TEST(Network, TorusBeatsMeshUnderUniformAllToAll)
{
    // Total-exchange-like load: every node sends 4 KB to every other.
    // The 3-D torus has more links and shorter routes than the 2-D
    // mesh, so its last arrival must be earlier.
    auto run = [](std::unique_ptr<Topology> topo) {
        NetworkParams p;
        p.link_bandwidth_mbs = 100.0;
        p.hop_latency = 100 * NS;
        Network net(std::move(topo), p);
        int n = net.topology().numNodes();
        Time last = 0;
        for (int s = 0; s < n; ++s)
            for (int d = 0; d < n; ++d)
                if (s != d)
                    last = std::max(last, net.transfer(s, d, 4096, 0));
        return last;
    };
    Time mesh = run(std::make_unique<Mesh2D>(4, 8));
    Time torus = run(std::make_unique<Torus3D>(4, 4, 2));
    Time ideal = run(std::make_unique<FullyConnected>(32));
    EXPECT_LT(torus, mesh);
    EXPECT_LT(ideal, torus);
}

TEST(Network, UtilizationSummary)
{
    Network net(std::make_unique<Mesh2D>(1, 3), simpleParams());
    // 1000 B over 0->1 (1 link busy 10 us) and 0->2 (2 links).
    net.transfer(0, 1, 1000, 0);
    net.transfer(0, 2, 1000, 0);
    auto u = net.utilization(20 * US);
    // Link 0->1 is shared by both transfers: busy 20 us of 20.
    EXPECT_DOUBLE_EQ(u.max, 1.0);
    EXPECT_EQ(u.links_used, 2);
    EXPECT_GT(u.mean, 0.0);
    EXPECT_LT(u.mean, 1.0);
    EXPECT_GE(u.hottest, 0);
}

TEST(Network, UtilizationEmptyAndZeroHorizon)
{
    Network net(std::make_unique<Mesh2D>(1, 3), simpleParams());
    auto idle = net.utilization(10 * US);
    EXPECT_EQ(idle.links_used, 0);
    EXPECT_DOUBLE_EQ(idle.mean, 0.0);
    EXPECT_EQ(net.utilization(0).links_used, 0);
}

TEST(Network, UtilizationClampsToHorizon)
{
    Network net(std::make_unique<Mesh2D>(1, 2), simpleParams());
    net.transfer(0, 1, 100000, 0); // busy until 1 ms
    auto u = net.utilization(500 * US);
    EXPECT_DOUBLE_EQ(u.max, 1.0); // clamped, not > 1
}

TEST(Network, RouteWalkCountersAccumulateAndReset)
{
    Network net(std::make_unique<Mesh2D>(2, 2), simpleParams());
    EXPECT_EQ(net.routeWalks(), 0u);
    EXPECT_EQ(net.routeHops(), 0u);
    net.transfer(0, 3, 100, 0); // 2 hops
    EXPECT_EQ(net.routeWalks(), 1u);
    EXPECT_EQ(net.routeHops(), 2u);
    net.transfer(0, 1, 100, 0); // 1 hop
    net.transfer(0, 1, 100, 0);
    EXPECT_EQ(net.routeWalks(), 3u);
    EXPECT_EQ(net.routeHops(), 4u);
    net.reset();
    EXPECT_EQ(net.routeWalks(), 0u);
    EXPECT_EQ(net.routeHops(), 0u);
}

TEST(Network, RepeatedTransfersMatchFreshNetworkTimes)
{
    // Analytic routing is stateless: the k-th enumeration of a pair's
    // route must produce the same physics as the first.
    Network a(std::make_unique<Torus3D>(2, 2, 2), simpleParams());
    Network b(std::make_unique<Torus3D>(2, 2, 2), simpleParams());
    for (int rep = 0; rep < 3; ++rep) {
        for (int s = 0; s < 8; ++s) {
            int d = (s + 3) % 8;
            EXPECT_EQ(a.transfer(s, d, 4096, 0),
                      b.transfer(s, d, 4096, 0));
        }
    }
}

TEST(Network, LinkBusyAccessorTracksSerialisation)
{
    Network net(std::make_unique<Mesh2D>(1, 3), simpleParams());
    net.transfer(0, 2, 1000, 0); // links 0->1->2, 10 us each
    std::vector<LinkId> path = net.topology().routeVector(0, 2);
    ASSERT_EQ(path.size(), 2u);
    EXPECT_EQ(net.linkBusy(path[0]), 10 * US);
    EXPECT_EQ(net.linkBusy(path[1]), 10 * US);
    int touched = 0;
    net.forEachTouchedLink([&](LinkId, Time) { ++touched; });
    EXPECT_GT(touched, 0);
    net.reset();
    EXPECT_EQ(net.linkBusy(path[0]), 0);
}

TEST(Network, ConstructionIsLazyAtExtremeScale)
{
    // The O(1)-memory guard: a million-rank fat tree must construct
    // a Network without touching any occupancy page, and a transfer
    // must materialize only the pages its route lands on.
    auto ft = FatTree::balancedFor(1 << 20);
    ASSERT_EQ(ft->numNodes(), 1 << 20);
    Network net(std::move(ft), simpleParams());
    Time t = net.transfer(0, (1 << 20) - 1, 4096, 0);
    EXPECT_GT(t, 0);
    int touched = 0;
    net.forEachTouchedLink([&](LinkId, Time) { ++touched; });
    // One route touches a bounded handful of 4096-entry pages, not
    // the multi-million-link fabric.
    EXPECT_LE(touched, 4096 * 8);
    EXPECT_GT(net.routeHops(), 0u);
}

TEST(Network, LinkClassParamsGateHeterogeneousRoutes)
{
    // 2 nodes x 1 chip x 2 cores on a fully-connected wire.  The
    // inter-node route is chip, bus, wire, bus, chip; making the bus
    // (class 2) slower than the wire must slow the whole transfer.
    auto topo = [] {
        return std::make_unique<Hierarchical>(
            std::make_unique<FullyConnected>(2), 1, 2);
    };
    Network base(topo(), simpleParams());
    ASSERT_EQ(base.topology().numLinkClasses(), 3);
    NetworkParams fast = simpleParams();
    fast.link_bandwidth_mbs = 100000.0;
    base.setLinkClassParams(1, fast);
    base.setLinkClassParams(2, fast);
    Time quick = base.transfer(0, 2, 100000, 0);

    Network slow_bus(topo(), simpleParams());
    NetworkParams slow = simpleParams();
    slow.link_bandwidth_mbs = 10.0; // 10x slower than the wire
    slow_bus.setLinkClassParams(1, fast);
    slow_bus.setLinkClassParams(2, slow);
    Time slowed = slow_bus.transfer(0, 2, 100000, 0);
    EXPECT_GT(slowed, quick);

    // Same-chip traffic never crosses the bus: unaffected.  Start
    // well past the earlier transfers so link occupancy cannot skew
    // the comparison.
    Time far = 100 * MS;
    EXPECT_EQ(base.transfer(0, 1, 100000, far),
              slow_bus.transfer(0, 1, 100000, far));
}

TEST(Network, SetLinkClassParamsRejectsMissingClass)
{
    throwOnError(true);
    Network net(std::make_unique<Mesh2D>(2, 2), simpleParams());
    EXPECT_THROW(net.setLinkClassParams(1, simpleParams()),
                 PanicError);
    throwOnError(false);
}

} // namespace
} // namespace ccsim::net
