/**
 * @file
 * make_workloads — (re)generate the bundled application traces.
 *
 *     make_workloads [output-dir]     (default: workloads)
 *
 * Three miniature applications with the communication skeletons the
 * paper's workloads exercised run under a replay::Recorder, and the
 * recordings are written as plain-text traces:
 *
 *  - stencil2d_p16.trace: 2-D Jacobi halo exchange on a 4 x 4
 *    periodic process grid (irecv / isend / wait plus a periodic
 *    convergence allreduce) — nearest-neighbour traffic;
 *  - summa_p16.trace: SUMMA dense matrix multiply on the same grid
 *    (row- and column-subgroup panel broadcasts per step) —
 *    sub-communicator collectives;
 *  - stap_p16.trace: the STAP radar pipeline of the paper (Doppler
 *    FFTs, corner-turn alltoall, beamforming, detection allreduce)
 *    — machine-wide total exchange.
 *
 * Compute durations are explicit in the rank programs, so the
 * recorded traces are machine-independent; the recording machine
 * (Ideal) never shows in the output.  golden_times.csv replays each
 * trace on the three paper machines and records the exact
 * picosecond makespans — CI diffs both the traces and the times
 * against the checked-in copies to catch drift.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "ccsim.hh"

using namespace ccsim;
using namespace ccsim::time_literals;

namespace {

// ---- 2-D stencil ------------------------------------------------------

constexpr int kGrid = 4; //!< process grid side (np = 16)
constexpr int kStencilIters = 10;
constexpr int kStencilCheckEvery = 5;
constexpr Bytes kHaloBytes = 64 * 8;     //!< one 64-double halo row
constexpr Time kStencilCompute = 480 * US; //!< 5-point sweep per iter

sim::Task<void>
stencilRank(machine::Machine &mach, int rank)
{
    mpi::Comm comm(mach, rank);
    int row = rank / kGrid, col = rank % kGrid;
    auto at = [](int r, int c) {
        return ((r + kGrid) % kGrid) * kGrid + (c + kGrid) % kGrid;
    };
    // Periodic neighbours, direction-coded tags.
    const int peer[4] = {at(row - 1, col), at(row + 1, col),
                         at(row, col - 1), at(row, col + 1)};
    const int opposite[4] = {1, 0, 3, 2};

    for (int it = 0; it < kStencilIters; ++it) {
        std::vector<msg::Request> reqs;
        for (int d = 0; d < 4; ++d)
            reqs.push_back(comm.irecv(peer[d], opposite[d]));
        for (int d = 0; d < 4; ++d)
            reqs.push_back(comm.isend(peer[d], d, kHaloBytes));
        for (auto &r : reqs) // issue order = replay's FIFO order
            co_await comm.wait(r);
        co_await comm.compute(kStencilCompute);
        if ((it + 1) % kStencilCheckEvery == 0)
            co_await comm.allreduce(8); // residual norm
    }
}

// ---- SUMMA ------------------------------------------------------------

constexpr int kSummaSteps = 4;             //!< n / nb
constexpr Bytes kPanelBytes = 64 * 64 * 8; //!< one nb x nb panel
constexpr Time kSummaCompute = 10 * MS;    //!< local GEMM per step

sim::Task<void>
summaRank(machine::Machine &mach, int rank)
{
    mpi::Comm comm(mach, rank);
    int row = rank / kGrid, col = rank % kGrid;

    std::vector<int> row_group, col_group;
    for (int i = 0; i < kGrid; ++i) {
        row_group.push_back(row * kGrid + i);
        col_group.push_back(i * kGrid + col);
    }
    mpi::Comm row_comm = comm.subgroup(row_group);
    mpi::Comm col_comm = comm.subgroup(col_group);

    for (int k = 0; k < kSummaSteps; ++k) {
        // A panel travels along rows from the owner column, B along
        // columns from the owner row.
        co_await row_comm.bcast(kPanelBytes, k);
        co_await col_comm.bcast(kPanelBytes, k);
        co_await comm.compute(kSummaCompute);
    }
    co_await comm.barrier();
}

// ---- STAP -------------------------------------------------------------

constexpr int kStapP = kGrid * kGrid;
constexpr int kStapCpis = 3;                 //!< processing intervals
constexpr Bytes kCubeBytes = 16 << 20;       //!< data cube per CPI
constexpr Time kStapFlopTime = 100 * MS;     //!< 1-node FFT workload

sim::Task<void>
stapRank(machine::Machine &mach, int rank)
{
    mpi::Comm comm(mach, rank);
    int p = comm.size();
    Bytes m = kCubeBytes / (static_cast<Bytes>(p) * p);

    for (int cpi = 0; cpi < kStapCpis; ++cpi) {
        co_await comm.barrier();
        co_await comm.compute(kStapFlopTime / p); // Doppler FFTs
        co_await comm.alltoall(m);                // corner turn
        co_await comm.compute(kStapFlopTime / p); // beamforming
        co_await comm.allreduce(8);               // detection score
    }
}

// ---- driver -----------------------------------------------------------

using RankProgram = sim::Task<void> (*)(machine::Machine &, int);

replay::Program
record(RankProgram prog, int np)
{
    machine::Machine mach(machine::presetByName("Ideal"), np);
    replay::Recorder rec(np);
    rec.attach(mach);
    for (int r = 0; r < np; ++r)
        mach.sim().spawn(prog(mach, r));
    mach.run();
    return rec.take();
}

struct Workload
{
    const char *file;
    RankProgram prog;
    int np;
};

} // namespace

int
main(int argc, char **argv)
{
    std::string dir = argc > 1 ? argv[1] : "workloads";
    const Workload workloads[] = {
        {"stencil2d_p16.trace", stencilRank, kGrid * kGrid},
        {"summa_p16.trace", summaRank, kGrid * kGrid},
        {"stap_p16.trace", stapRank, kStapP},
    };

    std::ofstream golden(dir + "/golden_times.csv");
    if (!golden)
        fatal("cannot write %s/golden_times.csv (does the directory "
              "exist?)", dir.c_str());
    golden << "workload,machine,scale,np,makespan_ps\n";

    harness::SweepRunner runner(1); // serial: golden is tiny
    for (const Workload &w : workloads) {
        replay::Program prog = record(w.prog, w.np);
        std::string path = dir + "/" + w.file;
        std::ofstream f(path);
        if (!f)
            fatal("cannot write '%s'", path.c_str());
        replay::writeProgram(prog, f);
        std::printf("%-24s np %2d  %4zu actions\n", w.file, prog.np,
                    prog.actions());

        std::vector<replay::ReplayPoint> points;
        for (const char *m : {"SP2", "T3D", "Paragon"}) {
            replay::ReplayPoint pt;
            pt.cfg = machine::presetByName(m);
            points.push_back(std::move(pt));
        }
        auto results = replay::replaySweep(prog, points, runner);
        for (const auto &r : results)
            golden << w.file << ',' << r.machine << ",1," << r.np
                   << ',' << r.makespan() << '\n';
    }
    std::printf("golden makespans -> %s/golden_times.csv\n",
                dir.c_str());
    return 0;
}
