/**
 * @file
 * ccsim — command-line driver for the simulation study.
 *
 * Subcommands:
 *
 *     ccsim machines
 *         List the built-in machine presets and their parameters.
 *
 *     ccsim measure --machine T3D --op alltoall --p 64 --m 65536
 *                   [--algo pairwise|auto] [--selection SRC]
 *                   [--config FILE] [--paper] [--faults SPEC]
 *                   [--ensemble N] [--metrics]
 *         Run the Section 2 measurement procedure for one point and
 *         print max/mean/min over ranks plus the paper's Table 3
 *         prediction when one exists.  --paper uses the full
 *         22-run procedure with clock-skew injection.  --faults
 *         injects deterministic faults, e.g.
 *         --faults "straggler=0.1,drop=0.01,seed=7,policy=degrade"
 *         (see docs/FAULTS.md for the grammar and recovery
 *         policies); a fault summary (drops / retransmits / delays,
 *         plus the degradation report when recovery acted) is
 *         printed after the times.  --ensemble N repeats the
 *         measurement under N derived fault universes and reports
 *         the mean/p95 makespan and the failure fraction.
 *         --metrics appends an observability summary (link
 *         utilization, stalls, queue high-waters).
 *
 *     ccsim sweep --machine SP2 --op bcast [--config FILE] [--jobs N]
 *         Full (m, p) sweep with a fitted closed-form expression.
 *         Points run on a worker pool (--jobs, default: hardware
 *         concurrency); output is identical at any job count.
 *
 *     ccsim stats --machine paragon --op alltoall [--p N] [--m BYTES]
 *                 [--algo NAME] [--top N] [--json] [--csv]
 *         Run one collective with metrics collection on and report
 *         the full observability snapshot: per-link bytes /
 *         utilization / contention-stall time, transport queue
 *         high-water marks, protocol mix, per-collective call
 *         counters, and simulator stats.  --json / --csv dump the
 *         raw snapshot instead of the human tables (schema in
 *         docs/METRICS.md).
 *
 *     ccsim pingpong --machine Paragon [--config FILE]
 *         Point-to-point latency/bandwidth curve + Hockney fit.
 *
 *     ccsim replay --trace FILE [--machine SP2,T3D,Paragon] [--np N]
 *                  [--scale 0.25,1,4] [--faults SPEC] [--jobs N]
 *                  [--chrome-json FILE] [--csv] [--metrics]
 *         Replay a recorded workload trace (see docs/REPLAY.md) on
 *         each named machine at each message scale — the cross
 *         product runs on the sweep worker pool and the output is
 *         identical at any --jobs level.  --np asserts the trace's
 *         rank count; --chrome-json dumps the first point's
 *         activity timeline; --csv emits exact picosecond makespans
 *         (the golden-trace regression format); --metrics adds
 *         hot-link / stall columns per point.
 *
 *     ccsim tune --machine SP2 [--ops LIST] [--sizes LIST]
 *                [--lengths LIST] [--jobs N] [--out FILE] [--cells]
 *                [--faults SPEC] [--ensemble N]
 *         Empirically derive a selection table: measure every
 *         candidate algorithm over the (op, p, m) grid, keep the
 *         winners, and print a regret report — how much time the
 *         machine's 1997 defaults left on the table.  The table is
 *         written to --out (stdout without it) and loads back via
 *         --selection; output is identical at any --jobs level.
 *         With --faults the table is tuned for the DEGRADED machine
 *         (candidates of a cell share one fault universe;
 *         --ensemble, default 3 under faults, averages universes) —
 *         bench/ablation_resilience compares such tables against
 *         clean ones.
 *
 *     ccsim serve [--port N] [--jobs K] [--port-file FILE]
 *                 [--cache-max N] [--cache-file FILE]
 *                 [--deadline-ms N] [--backfill-max N] [--verbose]
 *         Run the collective-latency prediction daemon on
 *         127.0.0.1 (docs/SERVE.md): a line/JSON query protocol
 *         answered from a result cache (byte-identical to fresh
 *         simulation), a fitted fast path (flagged approx), and an
 *         exact simulation backfill pool of --jobs workers.  SIGINT
 *         or a client 'shutdown' drains the queue and exits 0,
 *         removing --port-file again.  --cache-max bounds the result
 *         cache (LRU eviction); --cache-file persists it across
 *         restarts; --deadline-ms bounds blocking exact answers and
 *         --backfill-max bounds the queue — past either limit the
 *         daemon sheds to the approximate tier with "shed":true on
 *         the wire instead of stalling or growing without bound.
 *
 *     ccsim query --port N | --port-file FILE
 *                 [--machine T3D] [--op alltoall] [--p 64] [--m 65536]
 *                 [--algo NAME] [--selection SRC] [--tier auto|fast|
 *                 exact] [--deadline-ms N] [--ticket] [--poll N]
 *                 [--metrics] [--health] [--ping] [--shutdown]
 *         One request against a running daemon; prints the JSON
 *         response line and exits with the daemon-side error family
 *         on error responses.  --health fetches the one-line
 *         liveness/saturation summary.
 *
 *     ccsim dump-config --machine SP2
 *         Emit a preset as an editable config file (see --config).
 *
 * Algorithm selection (measure, sweep, stats): --algo picks the
 * per-call algorithm; the default, "auto", resolves through the
 * machine's selection table when --selection attaches one (a preset
 * name or a 'ccsim tune' output file) and otherwise falls back to
 * the machine's configured 1997 choice, spelled "default".
 *
 * Global option: --trace-out FILE makes measure and pingpong write a
 * Chrome trace-event JSON timeline of one traced call (load in
 * chrome://tracing or Perfetto).
 *
 * Error handling: every failure is a typed ccsim::Error caught once
 * at the top of main; the process exit code identifies the family
 * (1 usage/user error, 3 trace parse, 4 fault-layer failure,
 * 5 machine config, 70 internal bug).
 */

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "ccsim.hh"

using namespace ccsim;

namespace {

/** Options shared by every machine-building subcommand. */
void
addMachineOpts(cli::Options &o)
{
    o.value("machine", "machine preset (SP2, T3D, Paragon, Ideal)",
            "NAME");
    o.value("config", "load machine from a config file instead", "FILE");
    o.value("topo", "topology spec, e.g. 'fattree:2;4,4;1,2' or "
                    "'hier:2x4/dragonfly'", "SPEC");
    o.value("faults", "fault spec, e.g. 'drop=0.01,seed=7'", "SPEC");
}

void
addJobsOpt(cli::Options &o)
{
    o.value("jobs", "sweep worker threads (default: all cores)", "N");
}

void
addPointOpts(cli::Options &o)
{
    o.value("op", "collective (alltoall, bcast, ...)", "OP");
    tuning::addSelectionOpts(o); // the --algo / --selection pair
    o.value("p", "number of nodes", "N");
    o.value("m", "message length in bytes", "BYTES");
}

machine::MachineConfig
resolveMachine(const cli::Options &o, const std::string &fallback = "T3D")
{
    machine::MachineConfig cfg =
        o.has("config") ? machine::loadConfigFile(o.get("config"))
                        : machine::presetByName(
                              o.get("machine", fallback));
    if (o.has("topo"))
        cfg.topo_spec = o.get("topo");
    if (o.has("faults"))
        cfg.fault = fault::parseFaultSpec(o.get("faults"));
    // Only subcommands that declared the selection pair can carry
    // --selection; for the rest this is a no-op.
    tuning::applySelectionOpts(o, cfg);
    return cfg;
}

machine::Coll
resolveOp(const cli::Options &o)
{
    std::string key = o.get("op", "alltoall");
    for (machine::Coll op : machine::kAllColls)
        if (machine::collKey(op) == key)
            return op;
    fatal("unknown --op '%s'", key.c_str());
}

machine::Algo
resolveAlgo(const cli::Options &o)
{
    return tuning::algoOpt(o);
}

harness::SweepRunner
resolveRunner(const cli::Options &o)
{
    long long jobs = o.getInt("jobs", 0);
    if (o.has("jobs") && jobs < 1)
        fatal("--jobs wants a positive integer, got %lld", jobs);
    return harness::SweepRunner(static_cast<int>(jobs));
}

/**
 * --trace-out: run one traced call of @p op and dump the timeline.
 * A separate single-shot Machine keeps the measurement above
 * unperturbed (tracing is observational, but the timeline of one
 * clean call is what a reader wants to look at anyway).
 */
void
dumpCollectiveTrace(const machine::MachineConfig &cfg, int p,
                    machine::Coll op, Bytes m, machine::Algo algo,
                    const std::string &path)
{
    machine::Machine mach(cfg, p);
    mach.trace().enable(true);
    auto program = [&](int rank) -> sim::Task<void> {
        mpi::Comm comm(mach, rank);
        co_await comm.barrier();
        mach.trace().setPhase(rank, machine::collKey(op));
        co_await harness::runCollectiveOnce(comm, op, m, algo);
    };
    for (int r = 0; r < p; ++r)
        mach.sim().spawn(program(r));
    mach.run();

    std::ofstream f(path);
    if (!f)
        fatal("cannot write trace file '%s'", path.c_str());
    mach.trace().writeChromeJson(f);
    std::fprintf(stderr, "wrote Chrome trace to %s (%zu spans)\n",
                 path.c_str(), mach.trace().spans().size());
}

/** --trace-out for pingpong: one traced m-byte round trip. */
void
dumpPingPongTrace(const machine::MachineConfig &cfg, Bytes m,
                  const std::string &path)
{
    machine::Machine mach(cfg, 2);
    mach.trace().enable(true);
    auto program = [&](int rank) -> sim::Task<void> {
        mpi::Comm comm(mach, rank);
        mach.trace().setPhase(rank, "pingpong");
        if (rank == 0) {
            co_await comm.send(1, 0, m);
            co_await comm.recv(1, 1);
        } else {
            co_await comm.recv(0, 0);
            co_await comm.send(0, 1, m);
        }
    };
    for (int r = 0; r < 2; ++r)
        mach.sim().spawn(program(r));
    mach.run();

    std::ofstream f(path);
    if (!f)
        fatal("cannot write trace file '%s'", path.c_str());
    mach.trace().writeChromeJson(f);
    std::fprintf(stderr, "wrote Chrome trace to %s (%zu spans)\n",
                 path.c_str(), mach.trace().spans().size());
}

/** Right-aligned numeric cell used by the sweep table. */
std::string
bench_cell(double us)
{
    char buf[48];
    if (us >= 10000)
        std::snprintf(buf, sizeof(buf), "%.0f", us);
    else
        std::snprintf(buf, sizeof(buf), "%.1f", us);
    return buf;
}

/** Compact observability block shared by measure/stats/replay. */
void
printMetricsSummary(const stats::MetricsSnapshot &snap, int top_links)
{
    if (snap.empty()) {
        std::printf("  (metrics collection was off)\n");
        return;
    }

    auto counter = [&](const char *name) -> unsigned long long {
        auto it = snap.counters.find(name);
        return it == snap.counters.end()
                   ? 0ULL
                   : static_cast<unsigned long long>(it->second);
    };
    auto gauge = [&](const char *name) {
        auto it = snap.gauges.find(name);
        return it == snap.gauges.end() ? 0.0 : it->second;
    };

    std::printf("  messages       : %llu sent (%llu eager, %llu rdv, "
                "%llu BLT, %llu self), %llu received\n",
                counter("msg.sends.eager") + counter("msg.sends.rdv") +
                    counter("msg.sends.blt") + counter("msg.sends.self"),
                counter("msg.sends.eager"), counter("msg.sends.rdv"),
                counter("msg.sends.blt"), counter("msg.sends.self"),
                counter("msg.recvs"));
    std::printf("  queue high-water: %g unexpected, %g pending-rts, "
                "%g pending-recv\n",
                gauge("msg.unexpected_queue"),
                gauge("msg.pending_rts_queue"),
                gauge("msg.pending_recv_queue"));
    std::printf("  network        : %llu transfers, %s payload, "
                "%llu stalled by contention\n",
                counter("net.messages"),
                formatBytes(static_cast<Bytes>(
                                counter("net.payload_bytes")))
                    .c_str(),
                counter("net.stalled_transfers"));
    if (counter("fault.drops") || counter("fault.retransmits") ||
        counter("fault.delays"))
        std::printf("  faults         : %llu drops, %llu retransmits, "
                    "%llu delays\n",
                    counter("fault.drops"), counter("fault.retransmits"),
                    counter("fault.delays"));

    if (!snap.links.empty()) {
        std::printf("  hot links      : max util %.1f%%, total stall "
                    "%.1f us (%.1f%% of busy time)\n",
                    100.0 * snap.maxLinkUtil(), snap.totalStallUs(),
                    snap.totalLinkBusyUs() > 0
                        ? 100.0 * snap.totalStallUs() /
                              snap.totalLinkBusyUs()
                        : 0.0);
        // Hottest links first.
        std::vector<stats::LinkRow> rows = snap.links;
        std::sort(rows.begin(), rows.end(),
                  [](const stats::LinkRow &a, const stats::LinkRow &b) {
                      return a.util > b.util ||
                             (a.util == b.util && a.link < b.link);
                  });
        if (static_cast<int>(rows.size()) > top_links)
            rows.resize(static_cast<std::size_t>(top_links));
        TableWriter t;
        t.header({"link", "bytes", "busy us", "stall us", "util %"});
        for (const auto &r : rows)
            t.row({r.link,
                   formatBytes(static_cast<Bytes>(r.bytes)),
                   formatF(r.busy_us, 1), formatF(r.stall_us, 1),
                   formatF(100.0 * r.util, 1)});
        t.print(std::cout);
    }
}

int
cmdMachines()
{
    TableWriter t;
    t.header({"machine", "topology", "link MB/s", "hop ns", "o_send us",
              "o_recv us", "special"});
    for (const auto &cfg : machine::paperMachines()) {
        std::string special;
        if (cfg.hardware_barrier)
            special += "hw-barrier ";
        if (cfg.transport.blt_enabled)
            special += "BLT ";
        if (cfg.transport.coprocessor_overlap > 0)
            special += "coprocessor";
        t.row({cfg.name, machine::topologyKindName(cfg.topology),
               formatG(cfg.network.link_bandwidth_mbs),
               formatG(toNanos(cfg.network.hop_latency)),
               formatG(toMicros(cfg.transport.send_overhead)),
               formatG(toMicros(cfg.transport.recv_overhead)),
               special.empty() ? "-" : special});
    }
    t.print(std::cout);
    std::printf("\nIdeal (contention-free crossbar baseline) is also "
                "available.\nUse 'ccsim dump-config --machine SP2 > "
                "my.cfg' to derive custom machines.\n");
    return 0;
}

int
cmdMeasure(int argc, char **argv)
{
    cli::Options o("ccsim measure");
    addMachineOpts(o);
    addPointOpts(o);
    addJobsOpt(o);
    o.flag("paper", "use the paper's full 22-run procedure");
    o.flag("metrics", "append an observability summary");
    o.value("ensemble", "fault universes to average (default 1)", "N");
    o.value("trace-out", "write a Chrome trace of one call", "FILE");
    o.parse(argc, argv, 2);

    auto cfg = resolveMachine(o);
    auto op = resolveOp(o);
    auto algo = resolveAlgo(o);
    int p = static_cast<int>(o.getInt("p", 32));
    Bytes m = o.getInt("m", 1024);
    auto opt = o.has("paper")
                   ? harness::MeasureOptions::paperFaithful()
                   : harness::MeasureOptions{};
    opt.metrics = o.has("metrics");
    long long ensemble = o.getInt("ensemble", 1);
    if (o.has("ensemble") && ensemble < 1)
        fatal("--ensemble wants a positive integer, got %lld",
              ensemble);
    opt.ensemble = static_cast<int>(ensemble);

    // A one-point sweep: same engine as the figure benches.
    harness::SweepPoint pt;
    pt.cfg = cfg;
    pt.p = p;
    pt.op = op;
    pt.m = m;
    pt.algo = algo;
    pt.options = opt;
    auto meas = resolveRunner(o).run(std::vector{pt}).front();
    std::printf("%s %s, p = %d, m = %s, algorithm %s\n",
                cfg.name.c_str(), machine::collName(op).c_str(), p,
                formatBytes(m).c_str(),
                machine::algoName(meas.algo).c_str());
    std::printf("  max over ranks : %s\n",
                formatTime(meas.max_time).c_str());
    std::printf("  mean over ranks: %s\n",
                formatTime(meas.mean_time).c_str());
    std::printf("  min over ranks : %s\n",
                formatTime(meas.min_time).c_str());
    if (model::paper::hasExpression(cfg.name, op)) {
        double paper_us =
            model::paper::expression(cfg.name, op).evalUs(m, p);
        std::printf("  paper Table 3  : %s (%+.1f%% vs sim)\n",
                    formatTime(microseconds(paper_us)).c_str(),
                    100.0 * (paper_us - meas.us()) / meas.us());
    }
    Bytes f = harness::aggregatedLength(op, m, p);
    if (f > 0 && meas.max_time > 0)
        std::printf("  aggregated bw  : %.1f MB/s over f(m,p) = %s\n",
                    bandwidthMBs(f, meas.max_time),
                    formatBytes(f).c_str());
    if (cfg.fault.enabled())
        std::printf("  faults         : %llu dropped, %llu "
                    "retransmitted, %llu delayed\n",
                    static_cast<unsigned long long>(meas.fault_drops),
                    static_cast<unsigned long long>(
                        meas.fault_retransmits),
                    static_cast<unsigned long long>(meas.fault_delays));
    if (meas.degradation.any())
        std::printf("  %s\n", meas.degradation.str().c_str());
    if (cfg.fault.enabled() && meas.degradation.makespan_inflation > 0)
        std::printf("  vs clean run   : +%.1f%% makespan\n",
                    100.0 * meas.degradation.makespan_inflation);
    if (meas.ensemble_runs > 1)
        std::printf("  ensemble       : %d universes, p95 %s, "
                    "%.0f%% failed\n",
                    meas.ensemble_runs,
                    formatTime(meas.p95_time).c_str(),
                    100.0 * meas.failureFraction());
    if (o.has("metrics"))
        printMetricsSummary(meas.metrics, 8);
    if (o.has("trace-out"))
        dumpCollectiveTrace(cfg, p, op, m, algo, o.get("trace-out"));
    return 0;
}

int
cmdStats(int argc, char **argv)
{
    cli::Options o("ccsim stats");
    addMachineOpts(o);
    addPointOpts(o);
    o.value("top", "hottest links to list (default 8)", "N");
    o.flag("json", "dump the raw snapshot as JSON");
    o.flag("csv", "dump the raw snapshot as CSV");
    o.parse(argc, argv, 2);

    auto cfg = resolveMachine(o);
    auto op = resolveOp(o);
    auto algo = resolveAlgo(o);
    int p = static_cast<int>(o.getInt("p", 32));
    Bytes m = o.getInt("m", 16 * KiB);

    harness::MeasureOptions opt;
    opt.metrics = true;
    auto meas = harness::measureCollective(cfg, p, op, m, algo, opt);

    if (o.has("json")) {
        meas.metrics.writeJson(std::cout);
        return 0;
    }
    if (o.has("csv")) {
        meas.metrics.writeCsv(std::cout);
        return 0;
    }

    std::printf("%s %s, p = %d, m = %s: %s (max over ranks)\n",
                cfg.name.c_str(), machine::collName(op).c_str(), p,
                formatBytes(m).c_str(),
                formatTime(meas.max_time).c_str());
    printMetricsSummary(meas.metrics,
                        static_cast<int>(o.getInt("top", 8)));

    // Per-collective counters (one row per op that ran — the barrier
    // in the harness loop shows up alongside the measured op).
    TableWriter t;
    t.header({"collective", "calls", "stages", "msgs", "mean us"});
    for (machine::Coll c : machine::kAllColls) {
        std::string prefix = "coll." + machine::collKey(c);
        auto it = meas.metrics.counters.find(prefix + ".calls");
        if (it == meas.metrics.counters.end())
            continue;
        auto h = meas.metrics.histograms.find(prefix + ".time_us");
        t.row({machine::collKey(c), std::to_string(it->second),
               std::to_string(
                   meas.metrics.counters.at(prefix + ".stages")),
               std::to_string(
                   meas.metrics.counters.at(prefix + ".msgs")),
               h != meas.metrics.histograms.end()
                   ? formatF(h->second.mean(), 1)
                   : "-"});
    }
    t.print(std::cout);
    std::printf("simulator: %llu events, %llu tasks, event queue "
                "high-water %g\n",
                static_cast<unsigned long long>(
                    meas.metrics.counters.at("sim.events")),
                static_cast<unsigned long long>(
                    meas.metrics.counters.at("sim.tasks")),
                meas.metrics.gauges.at("sim.event_queue_depth"));
    return 0;
}

int
cmdSweep(int argc, char **argv)
{
    cli::Options o("ccsim sweep");
    addMachineOpts(o);
    o.value("op", "collective (alltoall, bcast, ...)", "OP");
    tuning::addSelectionOpts(o);
    addJobsOpt(o);
    o.parse(argc, argv, 2);

    auto cfg = resolveMachine(o);
    auto op = resolveOp(o);
    auto algo = resolveAlgo(o);

    harness::SweepSpec spec;
    spec.machines = {cfg};
    spec.ops = {op};
    spec.sizes = harness::paperMachineSizes(cfg.name);
    spec.lengths = harness::paperMessageLengths();
    spec.algos = {algo};
    spec.options.iterations = 3;
    spec.options.repetitions = 1;

    harness::SweepRunner runner = resolveRunner(o);
    auto results = runner.run(spec);

    std::printf("%s %s sweep [us]\n\n", cfg.name.c_str(),
                machine::collName(op).c_str());
    TableWriter t;
    std::vector<std::string> hdr{"p \\ m"};
    if (op == machine::Coll::Barrier) {
        hdr.push_back("T0"); // barrier has no length axis
    } else {
        for (Bytes m : spec.lengths)
            hdr.push_back(formatBytes(m));
    }
    t.header(hdr);

    // Consume the results in spec order: p outer, m inner (barrier
    // collapses the m axis, exactly as expand() does).
    std::vector<model::Sample> samples;
    std::size_t cursor = 0;
    for (int p : spec.sizes) {
        std::vector<std::string> row{std::to_string(p)};
        for (Bytes m : spec.lengths) {
            Bytes mm = op == machine::Coll::Barrier ? 0 : m;
            const auto &meas = results.at(cursor++);
            row.push_back(bench_cell(meas.us()));
            samples.push_back({mm, p, meas.us()});
            if (op == machine::Coll::Barrier)
                break;
        }
        t.row(row);
    }
    t.print(std::cout);
    std::fprintf(stderr, "swept %zu points in %.2f s (%.1f points/s, "
                 "%d jobs)\n", runner.lastStats().points,
                 runner.lastStats().wall_seconds,
                 runner.lastStats().pointsPerSec(), runner.jobs());

    model::TimingExpression fit =
        op == machine::Coll::Barrier
            ? model::fitStartupAuto(samples)
            : model::fitPaperStyleAuto(samples);
    std::printf("\nfitted: T(m, p) = %s   [us]\n", fit.str().c_str());
    if (model::paper::hasExpression(cfg.name, op))
        std::printf("paper : T(m, p) = %s\n",
                    model::paper::expression(cfg.name, op).str()
                        .c_str());
    return 0;
}

int
cmdPingPong(int argc, char **argv)
{
    cli::Options o("ccsim pingpong");
    addMachineOpts(o);
    o.value("m", "message length for --trace-out", "BYTES");
    o.value("trace-out", "write a Chrome trace of one round trip",
            "FILE");
    o.parse(argc, argv, 2);

    auto cfg = resolveMachine(o);
    std::printf("%s ping-pong (one-way, adjacent nodes)\n\n",
                cfg.name.c_str());
    TableWriter t;
    t.header({"m", "one-way us", "bandwidth MB/s"});
    std::vector<model::PingPongSample> samples;
    for (Bytes m : harness::paperMessageLengths()) {
        auto meas = harness::measurePingPong(cfg, m);
        double us = meas.us();
        samples.push_back({m, us});
        t.row({formatBytes(m), formatF(us, 2),
               formatF(us > 0 ? static_cast<double>(m) / us : 0, 1)});
    }
    t.print(std::cout);
    std::printf("\nHockney fit: %s\n",
                model::fitHockney(samples).str().c_str());
    if (o.has("trace-out"))
        dumpPingPongTrace(cfg, o.getInt("m", 1024),
                          o.get("trace-out"));
    return 0;
}

int
cmdReplay(int argc, char **argv)
{
    cli::Options o("ccsim replay");
    o.value("trace", "workload trace file (required)", "FILE");
    o.value("machine", "comma list of machines", "NAMES");
    o.value("config", "machine config file (overrides --machine)",
            "FILE");
    o.value("faults", "fault spec applied to every machine", "SPEC");
    o.value("np", "assert the trace's rank count", "N");
    o.value("scale", "comma list of message-size scales", "X,Y");
    addJobsOpt(o);
    o.value("chrome-json", "dump the first point's timeline", "FILE");
    o.flag("csv", "emit exact picosecond makespans as CSV");
    o.flag("metrics", "add hot-link / stall columns per point");
    o.parse(argc, argv, 2);

    if (!o.has("trace"))
        fatal("replay needs --trace FILE (see docs/REPLAY.md for the "
              "format; bundled workloads live in workloads/)");
    replay::Program prog =
        replay::TraceParser::parseFile(o.get("trace"));
    if (o.has("np") && o.getInt("np", 0) != prog.np)
        fatal("--np %lld does not match the trace's np %d",
              o.getInt("np", 0), prog.np);
    bool metrics = o.has("metrics");

    // The (machine, scale) cross product, machines outermost.
    std::vector<replay::ReplayPoint> points;
    for (const std::string &name :
         cli::splitList(o.get("machine", "SP2,T3D,Paragon"))) {
        machine::MachineConfig cfg =
            o.has("config") ? machine::loadConfigFile(o.get("config"))
                            : machine::presetByName(name);
        if (o.has("faults"))
            cfg.fault = fault::parseFaultSpec(o.get("faults"));
        for (const std::string &s :
             cli::splitList(o.get("scale", "1"))) {
            replay::ReplayPoint pt;
            pt.cfg = cfg;
            try {
                pt.options.scale = std::stod(s);
            } catch (const std::exception &) {
                fatal("bad --scale entry '%s'", s.c_str());
            }
            pt.options.collect_trace = true;
            pt.options.metrics = metrics;
            points.push_back(std::move(pt));
        }
    }
    if (points.empty())
        fatal("replay: no machines selected");

    harness::SweepRunner runner = resolveRunner(o);
    auto results = replay::replaySweep(prog, points, runner);

    if (o.has("chrome-json")) {
        std::ofstream f(o.get("chrome-json"));
        if (!f)
            fatal("cannot write trace file '%s'",
                  o.get("chrome-json").c_str());
        results.front().trace.writeChromeJson(f);
    }

    if (o.has("csv")) {
        // Exact integer picoseconds: the golden-regression format.
        std::printf("machine,scale,np,makespan_ps\n");
        for (std::size_t i = 0; i < results.size(); ++i)
            std::printf("%s,%g,%d,%lld\n",
                        results[i].machine.c_str(),
                        points[i].options.scale, results[i].np,
                        static_cast<long long>(results[i].makespan()));
        return 0;
    }

    std::printf("workload %s: np = %d, %zu actions\n\n",
                o.get("trace").c_str(), prog.np, prog.actions());
    TableWriter t;
    std::vector<std::string> hdr{"machine", "scale", "makespan",
                                 "compute/rank", "comm/rank", "comm %",
                                 "faults"};
    if (metrics) {
        hdr.push_back("max util %");
        hdr.push_back("stall %");
    }
    t.header(hdr);
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        double compute_us = 0, comm_us = 0;
        for (const auto &[rank, s] : r.trace.summarize()) {
            compute_us += toMicros(s.compute);
            comm_us += toMicros(s.comm());
        }
        compute_us /= r.np;
        comm_us /= r.np;
        double busy = compute_us + comm_us;
        // Stragglers and degraded links slow the run without dynamic
        // events, so an active spec with zero counters still says so.
        std::string faults = "-";
        if (r.faults.any())
            faults = std::to_string(r.faults.drops) + "d/" +
                     std::to_string(r.faults.retransmits) + "r/" +
                     std::to_string(r.faults.delays) + "y";
        else if (points[i].cfg.fault.enabled())
            faults = "static";
        std::vector<std::string> row{
            r.machine, formatG(points[i].options.scale),
            formatTime(r.makespan()), formatF(compute_us, 1),
            formatF(comm_us, 1),
            formatF(busy > 0 ? 100.0 * comm_us / busy : 0.0, 1),
            faults};
        if (metrics) {
            row.push_back(formatF(100.0 * r.metrics.maxLinkUtil(), 1));
            double link_busy = r.metrics.totalLinkBusyUs();
            row.push_back(formatF(
                link_busy > 0
                    ? 100.0 * r.metrics.totalStallUs() / link_busy
                    : 0.0,
                1));
        }
        t.row(row);
    }
    t.print(std::cout);
    std::fprintf(stderr, "replayed %zu points in %.2f s (%d jobs)\n",
                 runner.lastStats().points,
                 runner.lastStats().wall_seconds, runner.jobs());
    return 0;
}

int
cmdTune(int argc, char **argv)
{
    cli::Options o("ccsim tune");
    addMachineOpts(o);
    o.value("ops", "comma list of collectives (default: all)", "LIST");
    o.value("sizes", "comma list of machine sizes", "LIST");
    o.value("lengths", "comma list of message lengths (bytes)", "LIST");
    addJobsOpt(o);
    o.value("out", "write the selection table here (default: stdout)",
            "FILE");
    o.flag("cells", "also print every per-point regret cell");
    o.value("ensemble",
            "fault universes per candidate (default 3 under --faults)",
            "N");
    o.parse(argc, argv, 2);

    auto cfg = resolveMachine(o, "SP2");

    tuning::TuneGrid grid;
    if (o.has("ops")) {
        for (const std::string &key : o.getList("ops")) {
            bool found = false;
            for (machine::Coll op : machine::kAllColls)
                if (machine::collKey(op) == key) {
                    grid.ops.push_back(op);
                    found = true;
                }
            if (!found)
                fatal("unknown --ops entry '%s'", key.c_str());
        }
    }
    auto parse_list = [&](const char *name, auto &out) {
        for (const std::string &s : o.getList(name)) {
            try {
                out.push_back(std::stoll(s));
            } catch (const std::exception &) {
                fatal("bad --%s entry '%s'", name, s.c_str());
            }
        }
    };
    std::vector<long long> sizes, lengths;
    parse_list("sizes", sizes);
    parse_list("lengths", lengths);
    grid.sizes.assign(sizes.begin(), sizes.end());
    grid.lengths.assign(lengths.begin(), lengths.end());
    // The figure benches' quick procedure: cheap, and every point
    // doubles as a warm memo-cache entry for later sweeps.
    grid.options.iterations = 3;
    grid.options.repetitions = 1;
    // Under faults one universe is anecdote; average a few by
    // default so the winner map reflects the fault process, not one
    // roll of it.
    long long ensemble =
        o.getInt("ensemble", cfg.fault.enabled() ? 3 : 1);
    if (ensemble < 1)
        fatal("--ensemble wants a positive integer, got %lld",
              ensemble);
    grid.options.ensemble = static_cast<int>(ensemble);

    long long jobs = o.getInt("jobs", 0);
    if (o.has("jobs") && jobs < 1)
        fatal("--jobs wants a positive integer, got %lld", jobs);
    if (cfg.fault.enabled())
        std::fprintf(stderr,
                     "ccsim tune: tuning for the DEGRADED machine "
                     "(%s; %lld universes per candidate)\n",
                     fault::policyName(cfg.fault.policy),
                     ensemble);
    tuning::TuneResult res =
        tuning::tuneMachine(cfg, grid, static_cast<int>(jobs));

    if (o.has("out"))
        res.table.saveFile(o.get("out"));
    else
        res.table.save(std::cout);

    // The regret report goes to stderr so `ccsim tune > table.sel`
    // stays loadable.
    std::fprintf(stderr, "\n%s regret report (1997 default vs tuned, "
                 "%zu grid points)\n", cfg.name.c_str(),
                 res.cells.size());
    for (machine::Coll op : machine::kAllColls) {
        double def_us = 0, best_us = 0;
        std::size_t n = 0;
        for (const auto &c : res.cells)
            if (c.op == op) {
                def_us += toMicros(c.default_time);
                best_us += toMicros(c.best_time);
                ++n;
            }
        if (!n)
            continue;
        std::fprintf(stderr,
                     "  %-15s default %10.1f us   tuned %10.1f us   "
                     "regret %5.1f%%\n", machine::collKey(op).c_str(),
                     def_us, best_us,
                     best_us > 0 ? 100.0 * (def_us - best_us) / best_us
                                 : 0.0);
    }
    std::fprintf(stderr, "  %-15s default %10.1f us   tuned %10.1f us "
                 "  regret %5.1f%%\n", "TOTAL",
                 toMicros(res.total_default), toMicros(res.total_best),
                 100.0 * res.totalRegret());
    const auto &w = res.worstCell();
    std::fprintf(stderr, "  worst point: %s p=%d m=%s — %s %s vs %s "
                 "%s (%.1f%% regret)\n",
                 machine::collKey(w.op).c_str(), w.p,
                 formatBytes(w.m).c_str(),
                 machine::algoName(w.default_algo).c_str(),
                 formatTime(w.default_time).c_str(),
                 machine::algoName(w.best_algo).c_str(),
                 formatTime(w.best_time).c_str(), 100.0 * w.regret());

    if (o.has("cells")) {
        std::fprintf(stderr, "\n");
        for (const auto &c : res.cells)
            std::fprintf(stderr,
                         "  %s p=%d m=%lld: %s %.1f us -> %s %.1f us\n",
                         machine::collKey(c.op).c_str(), c.p,
                         static_cast<long long>(c.m),
                         machine::algoName(c.default_algo).c_str(),
                         toMicros(c.default_time),
                         machine::algoName(c.best_algo).c_str(),
                         toMicros(c.best_time));
    }
    return 0;
}

volatile std::sig_atomic_t g_interrupted = 0;

void
onInterrupt(int)
{
    g_interrupted = 1;
}

int
cmdServe(int argc, char **argv)
{
    cli::Options o("ccsim serve");
    o.value("port", "TCP port on 127.0.0.1 (default 0: ephemeral)",
            "N");
    o.value("jobs", "backfill simulation workers (default 1)", "N");
    o.value("port-file", "write the bound port to FILE", "FILE");
    o.value("cache-max",
            "result-cache entry bound, LRU evicted (0 = unbounded)",
            "N");
    o.value("cache-file", "persist the result cache here across "
            "restarts", "FILE");
    o.value("deadline-ms",
            "default deadline for blocking exact answers (0 = none)",
            "N");
    o.value("backfill-max",
            "backfill queue bound; full = shed to the fast tier "
            "(0 = unbounded)", "N");
    o.flag("verbose", "log one line per request to stderr");
    o.parse(argc, argv, 2);

    serve::ServerOptions opts;
    long long port = o.getInt("port", 0);
    if (port < 0 || port > 65535)
        fatal("--port wants 0..65535, got %lld", port);
    opts.port = static_cast<int>(port);
    long long jobs = o.getInt("jobs", 1);
    if (o.has("jobs") && jobs < 1)
        fatal("--jobs wants a positive integer, got %lld", jobs);
    opts.jobs = static_cast<int>(jobs);
    opts.port_file = o.get("port-file");
    opts.verbose = o.has("verbose");
    long long cache_max =
        o.getInt("cache-max",
                 static_cast<long long>(opts.cache_max));
    if (cache_max < 0)
        fatal("--cache-max wants >= 0, got %lld", cache_max);
    opts.cache_max = static_cast<std::size_t>(cache_max);
    opts.cache_file = o.get("cache-file");
    long long deadline = o.getInt("deadline-ms", 0);
    if (deadline < 0)
        fatal("--deadline-ms wants >= 0, got %lld", deadline);
    opts.deadline_ms = static_cast<int>(deadline);
    long long backfill_max =
        o.getInt("backfill-max",
                 static_cast<long long>(opts.backfill_max));
    if (backfill_max < 0)
        fatal("--backfill-max wants >= 0, got %lld", backfill_max);
    opts.backfill_max = static_cast<std::size_t>(backfill_max);

    serve::Server server(opts);
    server.start();
    std::fprintf(stderr,
                 "ccsim serve: listening on 127.0.0.1:%d "
                 "(%d backfill jobs; 'shutdown' or SIGINT stops)\n",
                 server.port(), server.backfill().jobs());

    std::signal(SIGINT, onInterrupt);
    std::signal(SIGTERM, onInterrupt);
    while (!g_interrupted && !server.shutdownRequested())
        std::this_thread::sleep_for(std::chrono::milliseconds(100));

    std::fprintf(stderr,
                 "ccsim serve: draining the backfill queue...\n");
    server.stop();

    auto snap = server.metricsSnapshot();
    std::fprintf(stderr,
                 "ccsim serve: %llu requests (%llu cache, %llu fast, "
                 "%llu exact), %llu points simulated, exit 0\n",
                 static_cast<unsigned long long>(
                     snap.counters.at("serve.requests")),
                 static_cast<unsigned long long>(
                     snap.counters.at("serve.tier_cache")),
                 static_cast<unsigned long long>(
                     snap.counters.at("serve.tier_fast")),
                 static_cast<unsigned long long>(
                     snap.counters.at("serve.tier_exact")),
                 static_cast<unsigned long long>(
                     snap.counters.at("serve.backfill_completed")));
    return 0;
}

/** The daemon port: --port, or --port-file as written by serve. */
int
resolveQueryPort(const cli::Options &o)
{
    if (o.has("port"))
        return static_cast<int>(o.getInt("port", 0));
    if (o.has("port-file")) {
        std::ifstream pf(o.get("port-file"));
        int port = 0;
        if (!(pf >> port))
            fatal("cannot read a port from '%s'",
                  o.get("port-file").c_str());
        return port;
    }
    fatal("query needs --port N or --port-file FILE to find the "
          "daemon");
}

int
cmdQuery(int argc, char **argv)
{
    cli::Options o("ccsim query");
    o.value("port", "daemon port on 127.0.0.1", "N");
    o.value("port-file", "read the daemon port from FILE", "FILE");
    o.value("machine", "machine preset (SP2, T3D, Paragon, Ideal)",
            "NAME");
    o.value("config", "machine config file (daemon-side path)",
            "FILE");
    o.value("topo", "topology spec forwarded to the daemon", "SPEC");
    addPointOpts(o);
    o.value("tier", "auto | fast | exact (default auto)", "T");
    o.flag("ticket", "exact tier: return a ticket instead of blocking");
    o.value("poll", "poll a previously issued ticket", "N");
    o.value("deadline-ms",
            "per-request deadline for a blocking exact answer", "N");
    o.flag("metrics", "fetch the daemon's metrics snapshot");
    o.flag("health", "fetch the liveness/saturation summary");
    o.flag("ping", "liveness probe");
    o.flag("shutdown", "ask the daemon to drain and exit");
    o.parse(argc, argv, 2);

    serve::Request req;
    if (o.has("shutdown")) {
        req.verb = serve::Verb::Shutdown;
    } else if (o.has("ping")) {
        req.verb = serve::Verb::Ping;
    } else if (o.has("metrics")) {
        req.verb = serve::Verb::Metrics;
    } else if (o.has("health")) {
        req.verb = serve::Verb::Health;
    } else if (o.has("poll")) {
        req.verb = serve::Verb::Poll;
        long long t = o.getInt("poll", 0);
        if (t < 1)
            fatal("--poll wants a ticket number, got %lld", t);
        req.ticket = static_cast<std::uint64_t>(t);
    } else {
        req.verb = serve::Verb::Predict;
        req.machine = o.get("machine", "T3D");
        req.config_path = o.get("config");
        req.selection = o.get("selection");
        req.topo = o.get("topo");
        req.op = resolveOp(o);
        req.algo = resolveAlgo(o);
        req.p = static_cast<int>(o.getInt("p", 32));
        req.m = req.op == machine::Coll::Barrier ? 0
                                                 : o.getInt("m", 1024);
        req.has_m = true;
        std::string tier = o.get("tier", "auto");
        if (tier == "auto")
            req.tier = serve::TierChoice::Auto;
        else if (tier == "fast")
            req.tier = serve::TierChoice::Fast;
        else if (tier == "exact")
            req.tier = serve::TierChoice::Exact;
        else
            fatal("--tier wants auto, fast, or exact, got '%s'",
                  tier.c_str());
        req.wait = o.has("ticket") ? serve::WaitMode::Ticket
                                   : serve::WaitMode::Block;
        long long deadline = o.getInt("deadline-ms", 0);
        if (deadline < 0)
            fatal("--deadline-ms wants >= 0, got %lld", deadline);
        req.deadline_ms = static_cast<int>(deadline);
    }

    serve::Client client;
    client.connect(resolveQueryPort(o));
    std::string resp = client.request(req);
    std::printf("%s\n", resp.c_str());

    // Scripted callers get the daemon-side error family as the exit
    // code, exactly as if the failure had happened locally.
    if (resp.rfind("{\"status\":\"error\"", 0) == 0) {
        std::size_t at = resp.find("\"exit_code\":");
        int code = kUserExit;
        if (at != std::string::npos)
            code = std::atoi(resp.c_str() + at + 12);
        return code > 0 ? code : kUserExit;
    }
    return 0;
}

int
cmdDumpConfig(int argc, char **argv)
{
    cli::Options o("ccsim dump-config");
    addMachineOpts(o);
    o.parse(argc, argv, 2);
    machine::saveConfig(resolveMachine(o), std::cout);
    return 0;
}

int
run(int argc, char **argv)
{
    struct Subcommand
    {
        const char *name;
        int (*entry)(int, char **);
    };
    static const Subcommand kCommands[] = {
        {"machines", [](int, char **) { return cmdMachines(); }},
        {"measure", cmdMeasure},
        {"sweep", cmdSweep},
        {"stats", cmdStats},
        {"pingpong", cmdPingPong},
        {"replay", cmdReplay},
        {"tune", cmdTune},
        {"serve", cmdServe},
        {"query", cmdQuery},
        {"dump-config", cmdDumpConfig},
    };

    std::string all;
    std::vector<std::string> names;
    for (const Subcommand &c : kCommands) {
        names.push_back(c.name);
        if (!all.empty())
            all += ", ";
        all += c.name;
    }

    if (argc < 2)
        fatal("usage: ccsim <command> [options]\ncommands: %s",
              all.c_str());
    std::string command = argv[1];
    for (const Subcommand &c : kCommands)
        if (command == c.name)
            return c.entry(argc, argv);
    std::string hint = cli::closestMatch(command, names);
    if (!hint.empty())
        fatal("unknown command '%s' (did you mean '%s'?)\ncommands: "
              "%s", command.c_str(), hint.c_str(), all.c_str());
    fatal("unknown command '%s'\ncommands: %s", command.c_str(),
          all.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    quietLogging(true);
    // Every failure funnels through the ccsim::Error hierarchy; the
    // exit code identifies the family (1 user error, 3 trace parse,
    // 4 fault, 5 config, 70 internal bug).
    throwOnError(true);
    try {
        return run(argc, argv);
    } catch (const Error &e) {
        std::fprintf(stderr, "%s\n", e.formatted().c_str());
        return e.exitCode();
    }
}
