/**
 * @file
 * ccsim — command-line driver for the simulation study.
 *
 * Subcommands:
 *
 *     ccsim machines
 *         List the built-in machine presets and their parameters.
 *
 *     ccsim measure --machine T3D --op alltoall --p 64 --m 65536
 *                   [--algo pairwise] [--config FILE] [--paper]
 *                   [--faults SPEC]
 *         Run the Section 2 measurement procedure for one point and
 *         print max/mean/min over ranks plus the paper's Table 3
 *         prediction when one exists.  --paper uses the full
 *         22-run procedure with clock-skew injection.  --faults
 *         injects deterministic faults, e.g.
 *         --faults "straggler=0.1,drop=0.01,seed=7" (see
 *         fault::parseFaultSpec for the key list); a fault summary
 *         (drops / retransmits / delays) is printed after the times.
 *
 *     ccsim sweep --machine SP2 --op bcast [--config FILE] [--jobs N]
 *         Full (m, p) sweep with a fitted closed-form expression.
 *         Points run on a worker pool (--jobs, default: hardware
 *         concurrency); output is identical at any job count.
 *
 *     ccsim pingpong --machine Paragon [--config FILE]
 *         Point-to-point latency/bandwidth curve + Hockney fit.
 *
 *     ccsim replay --trace FILE [--machine SP2,T3D,Paragon] [--np N]
 *                  [--scale 0.25,1,4] [--faults SPEC] [--jobs N]
 *                  [--chrome-json FILE] [--csv]
 *         Replay a recorded workload trace (see docs/REPLAY.md) on
 *         each named machine at each message scale — the cross
 *         product runs on the sweep worker pool and the output is
 *         identical at any --jobs level.  --np asserts the trace's
 *         rank count; --chrome-json dumps the first point's
 *         activity timeline; --csv emits exact picosecond makespans
 *         (the golden-trace regression format).
 *
 *     ccsim dump-config --machine SP2
 *         Emit a preset as an editable config file (see --config).
 *
 * Global option: --trace-out FILE makes measure and pingpong write a
 * Chrome trace-event JSON timeline of one traced call (load in
 * chrome://tracing or Perfetto).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "ccsim.hh"

using namespace ccsim;

namespace {

struct Args
{
    std::string command;
    std::map<std::string, std::string> options;

    bool has(const std::string &key) const { return options.count(key); }

    std::string
    get(const std::string &key, const std::string &fallback = "") const
    {
        auto it = options.find(key);
        return it == options.end() ? fallback : it->second;
    }

    long long
    getInt(const std::string &key, long long fallback) const
    {
        auto it = options.find(key);
        if (it == options.end())
            return fallback;
        try {
            return std::stoll(it->second);
        } catch (const std::exception &) {
            fatal("bad integer for --%s: '%s'", key.c_str(),
                  it->second.c_str());
        }
    }
};

Args
parseArgs(int argc, char **argv)
{
    Args a;
    if (argc < 2)
        fatal("usage: ccsim <machines|measure|sweep|pingpong|replay|"
              "dump-config> [options]");
    a.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            fatal("expected --option, got '%s'", arg.c_str());
        std::string key = arg.substr(2);
        if (key == "paper" || key == "csv") {
            a.options[key] = "1";
        } else {
            if (i + 1 >= argc)
                fatal("--%s needs a value", key.c_str());
            a.options[key] = argv[++i];
        }
    }
    return a;
}

machine::MachineConfig
resolveMachine(const Args &a)
{
    machine::MachineConfig cfg =
        a.has("config") ? machine::loadConfigFile(a.get("config"))
                        : machine::presetByName(a.get("machine", "T3D"));
    if (a.has("faults"))
        cfg.fault = fault::parseFaultSpec(a.get("faults"));
    return cfg;
}

machine::Coll
resolveOp(const Args &a)
{
    std::string key = a.get("op", "alltoall");
    for (machine::Coll op : machine::kAllColls)
        if (machine::collKey(op) == key)
            return op;
    fatal("unknown --op '%s'", key.c_str());
}

machine::Algo
resolveAlgo(const Args &a)
{
    std::string name = a.get("algo", "default");
    return machine::algoByName(name);
}

harness::SweepRunner
resolveRunner(const Args &a)
{
    long long jobs = a.getInt("jobs", 0);
    if (a.has("jobs") && jobs < 1)
        fatal("--jobs wants a positive integer, got %lld", jobs);
    return harness::SweepRunner(static_cast<int>(jobs));
}

/** Split a comma-separated option value. */
std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::string item;
    std::stringstream ss(s);
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

/**
 * --trace-out: run one traced call of @p op and dump the timeline.
 * A separate single-shot Machine keeps the measurement above
 * unperturbed (tracing is observational, but the timeline of one
 * clean call is what a reader wants to look at anyway).
 */
void
dumpCollectiveTrace(const machine::MachineConfig &cfg, int p,
                    machine::Coll op, Bytes m, machine::Algo algo,
                    const std::string &path)
{
    machine::Machine mach(cfg, p);
    mach.trace().enable(true);
    auto program = [&](int rank) -> sim::Task<void> {
        mpi::Comm comm(mach, rank);
        co_await comm.barrier();
        mach.trace().setPhase(rank, machine::collKey(op));
        co_await harness::runCollectiveOnce(comm, op, m, algo);
    };
    for (int r = 0; r < p; ++r)
        mach.sim().spawn(program(r));
    mach.run();

    std::ofstream f(path);
    if (!f)
        fatal("cannot write trace file '%s'", path.c_str());
    mach.trace().writeChromeJson(f);
    std::fprintf(stderr, "wrote Chrome trace to %s (%zu spans)\n",
                 path.c_str(), mach.trace().spans().size());
}

/** --trace-out for pingpong: one traced m-byte round trip. */
void
dumpPingPongTrace(const machine::MachineConfig &cfg, Bytes m,
                  const std::string &path)
{
    machine::Machine mach(cfg, 2);
    mach.trace().enable(true);
    auto program = [&](int rank) -> sim::Task<void> {
        mpi::Comm comm(mach, rank);
        mach.trace().setPhase(rank, "pingpong");
        if (rank == 0) {
            co_await comm.send(1, 0, m);
            co_await comm.recv(1, 1);
        } else {
            co_await comm.recv(0, 0);
            co_await comm.send(0, 1, m);
        }
    };
    for (int r = 0; r < 2; ++r)
        mach.sim().spawn(program(r));
    mach.run();

    std::ofstream f(path);
    if (!f)
        fatal("cannot write trace file '%s'", path.c_str());
    mach.trace().writeChromeJson(f);
    std::fprintf(stderr, "wrote Chrome trace to %s (%zu spans)\n",
                 path.c_str(), mach.trace().spans().size());
}

/** Right-aligned numeric cell used by the sweep table. */
std::string
bench_cell(double us)
{
    char buf[48];
    if (us >= 10000)
        std::snprintf(buf, sizeof(buf), "%.0f", us);
    else
        std::snprintf(buf, sizeof(buf), "%.1f", us);
    return buf;
}

int
cmdMachines()
{
    TableWriter t;
    t.header({"machine", "topology", "link MB/s", "hop ns", "o_send us",
              "o_recv us", "special"});
    for (const auto &cfg : machine::paperMachines()) {
        std::string special;
        if (cfg.hardware_barrier)
            special += "hw-barrier ";
        if (cfg.transport.blt_enabled)
            special += "BLT ";
        if (cfg.transport.coprocessor_overlap > 0)
            special += "coprocessor";
        t.row({cfg.name, machine::topologyKindName(cfg.topology),
               formatG(cfg.network.link_bandwidth_mbs),
               formatG(toNanos(cfg.network.hop_latency)),
               formatG(toMicros(cfg.transport.send_overhead)),
               formatG(toMicros(cfg.transport.recv_overhead)),
               special.empty() ? "-" : special});
    }
    t.print(std::cout);
    std::printf("\nIdeal (contention-free crossbar baseline) is also "
                "available.\nUse 'ccsim dump-config --machine SP2 > "
                "my.cfg' to derive custom machines.\n");
    return 0;
}

int
cmdMeasure(const Args &a)
{
    auto cfg = resolveMachine(a);
    auto op = resolveOp(a);
    auto algo = resolveAlgo(a);
    int p = static_cast<int>(a.getInt("p", 32));
    Bytes m = a.getInt("m", 1024);
    auto opt = a.has("paper")
                   ? harness::MeasureOptions::paperFaithful()
                   : harness::MeasureOptions{};

    // A one-point sweep: same engine as the figure benches.
    harness::SweepPoint pt;
    pt.cfg = cfg;
    pt.p = p;
    pt.op = op;
    pt.m = m;
    pt.algo = algo;
    pt.options = opt;
    auto meas = resolveRunner(a).run(std::vector{pt}).front();
    std::printf("%s %s, p = %d, m = %s, algorithm %s\n",
                cfg.name.c_str(), machine::collName(op).c_str(), p,
                formatBytes(m).c_str(),
                machine::algoName(meas.algo).c_str());
    std::printf("  max over ranks : %s\n",
                formatTime(meas.max_time).c_str());
    std::printf("  mean over ranks: %s\n",
                formatTime(meas.mean_time).c_str());
    std::printf("  min over ranks : %s\n",
                formatTime(meas.min_time).c_str());
    if (model::paper::hasExpression(cfg.name, op)) {
        double paper_us =
            model::paper::expression(cfg.name, op).evalUs(m, p);
        std::printf("  paper Table 3  : %s (%+.1f%% vs sim)\n",
                    formatTime(microseconds(paper_us)).c_str(),
                    100.0 * (paper_us - meas.us()) / meas.us());
    }
    Bytes f = harness::aggregatedLength(op, m, p);
    if (f > 0 && meas.max_time > 0)
        std::printf("  aggregated bw  : %.1f MB/s over f(m,p) = %s\n",
                    bandwidthMBs(f, meas.max_time),
                    formatBytes(f).c_str());
    if (cfg.fault.enabled())
        std::printf("  faults         : %llu dropped, %llu "
                    "retransmitted, %llu delayed\n",
                    static_cast<unsigned long long>(meas.fault_drops),
                    static_cast<unsigned long long>(
                        meas.fault_retransmits),
                    static_cast<unsigned long long>(meas.fault_delays));
    if (a.has("trace-out"))
        dumpCollectiveTrace(cfg, p, op, m, algo, a.get("trace-out"));
    return 0;
}

int
cmdSweep(const Args &a)
{
    auto cfg = resolveMachine(a);
    auto op = resolveOp(a);
    auto algo = resolveAlgo(a);

    harness::SweepSpec spec;
    spec.machines = {cfg};
    spec.ops = {op};
    spec.sizes = harness::paperMachineSizes(cfg.name);
    spec.lengths = harness::paperMessageLengths();
    spec.algos = {algo};
    spec.options.iterations = 3;
    spec.options.repetitions = 1;

    harness::SweepRunner runner = resolveRunner(a);
    auto results = runner.run(spec);

    std::printf("%s %s sweep [us]\n\n", cfg.name.c_str(),
                machine::collName(op).c_str());
    TableWriter t;
    std::vector<std::string> hdr{"p \\ m"};
    if (op == machine::Coll::Barrier) {
        hdr.push_back("T0"); // barrier has no length axis
    } else {
        for (Bytes m : spec.lengths)
            hdr.push_back(formatBytes(m));
    }
    t.header(hdr);

    // Consume the results in spec order: p outer, m inner (barrier
    // collapses the m axis, exactly as expand() does).
    std::vector<model::Sample> samples;
    std::size_t cursor = 0;
    for (int p : spec.sizes) {
        std::vector<std::string> row{std::to_string(p)};
        for (Bytes m : spec.lengths) {
            Bytes mm = op == machine::Coll::Barrier ? 0 : m;
            const auto &meas = results.at(cursor++);
            row.push_back(bench_cell(meas.us()));
            samples.push_back({mm, p, meas.us()});
            if (op == machine::Coll::Barrier)
                break;
        }
        t.row(row);
    }
    t.print(std::cout);
    std::fprintf(stderr, "swept %zu points in %.2f s (%.1f points/s, "
                 "%d jobs)\n", runner.lastStats().points,
                 runner.lastStats().wall_seconds,
                 runner.lastStats().pointsPerSec(), runner.jobs());

    model::TimingExpression fit =
        op == machine::Coll::Barrier
            ? model::fitStartupAuto(samples)
            : model::fitPaperStyleAuto(samples);
    std::printf("\nfitted: T(m, p) = %s   [us]\n", fit.str().c_str());
    if (model::paper::hasExpression(cfg.name, op))
        std::printf("paper : T(m, p) = %s\n",
                    model::paper::expression(cfg.name, op).str()
                        .c_str());
    return 0;
}

int
cmdPingPong(const Args &a)
{
    auto cfg = resolveMachine(a);
    std::printf("%s ping-pong (one-way, adjacent nodes)\n\n",
                cfg.name.c_str());
    TableWriter t;
    t.header({"m", "one-way us", "bandwidth MB/s"});
    std::vector<model::PingPongSample> samples;
    for (Bytes m : harness::paperMessageLengths()) {
        auto meas = harness::measurePingPong(cfg, m);
        double us = meas.us();
        samples.push_back({m, us});
        t.row({formatBytes(m), formatF(us, 2),
               formatF(us > 0 ? static_cast<double>(m) / us : 0, 1)});
    }
    t.print(std::cout);
    std::printf("\nHockney fit: %s\n",
                model::fitHockney(samples).str().c_str());
    if (a.has("trace-out"))
        dumpPingPongTrace(cfg, a.getInt("m", 1024),
                          a.get("trace-out"));
    return 0;
}

int
cmdReplay(const Args &a)
{
    if (!a.has("trace"))
        fatal("replay needs --trace FILE (see docs/REPLAY.md for the "
              "format; bundled workloads live in workloads/)");
    replay::Program prog =
        replay::TraceParser::parseFile(a.get("trace"));
    if (a.has("np") && a.getInt("np", 0) != prog.np)
        fatal("--np %lld does not match the trace's np %d",
              a.getInt("np", 0), prog.np);

    // The (machine, scale) cross product, machines outermost.
    std::vector<replay::ReplayPoint> points;
    for (const std::string &name :
         splitList(a.get("machine", "SP2,T3D,Paragon"))) {
        machine::MachineConfig cfg =
            a.has("config") ? machine::loadConfigFile(a.get("config"))
                            : machine::presetByName(name);
        if (a.has("faults"))
            cfg.fault = fault::parseFaultSpec(a.get("faults"));
        for (const std::string &s : splitList(a.get("scale", "1"))) {
            replay::ReplayPoint pt;
            pt.cfg = cfg;
            try {
                pt.options.scale = std::stod(s);
            } catch (const std::exception &) {
                fatal("bad --scale entry '%s'", s.c_str());
            }
            pt.options.collect_trace = true;
            points.push_back(std::move(pt));
        }
    }
    if (points.empty())
        fatal("replay: no machines selected");

    harness::SweepRunner runner = resolveRunner(a);
    auto results = replay::replaySweep(prog, points, runner);

    if (a.has("chrome-json")) {
        std::ofstream f(a.get("chrome-json"));
        if (!f)
            fatal("cannot write trace file '%s'",
                  a.get("chrome-json").c_str());
        results.front().trace.writeChromeJson(f);
    }

    if (a.has("csv")) {
        // Exact integer picoseconds: the golden-regression format.
        std::printf("machine,scale,np,makespan_ps\n");
        for (std::size_t i = 0; i < results.size(); ++i)
            std::printf("%s,%g,%d,%lld\n",
                        results[i].machine.c_str(),
                        points[i].options.scale, results[i].np,
                        static_cast<long long>(results[i].makespan()));
        return 0;
    }

    std::printf("workload %s: np = %d, %zu actions\n\n",
                a.get("trace").c_str(), prog.np, prog.actions());
    TableWriter t;
    t.header({"machine", "scale", "makespan", "compute/rank",
              "comm/rank", "comm %", "faults"});
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        double compute_us = 0, comm_us = 0;
        for (const auto &[rank, s] : r.trace.summarize()) {
            compute_us += toMicros(s.compute);
            comm_us += toMicros(s.comm());
        }
        compute_us /= r.np;
        comm_us /= r.np;
        double busy = compute_us + comm_us;
        // Stragglers and degraded links slow the run without dynamic
        // events, so an active spec with zero counters still says so.
        std::string faults = "-";
        if (r.faults.any())
            faults = std::to_string(r.faults.drops) + "d/" +
                     std::to_string(r.faults.retransmits) + "r/" +
                     std::to_string(r.faults.delays) + "y";
        else if (points[i].cfg.fault.enabled())
            faults = "static";
        t.row({r.machine, formatG(points[i].options.scale),
               formatTime(r.makespan()), formatF(compute_us, 1),
               formatF(comm_us, 1),
               formatF(busy > 0 ? 100.0 * comm_us / busy : 0.0, 1),
               faults});
    }
    t.print(std::cout);
    std::fprintf(stderr, "replayed %zu points in %.2f s (%d jobs)\n",
                 runner.lastStats().points,
                 runner.lastStats().wall_seconds, runner.jobs());
    return 0;
}

int
cmdDumpConfig(const Args &a)
{
    auto cfg = resolveMachine(a);
    machine::saveConfig(cfg, std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args a = parseArgs(argc, argv);
    quietLogging(true);
    if (a.command == "machines")
        return cmdMachines();
    if (a.command == "measure")
        return cmdMeasure(a);
    if (a.command == "sweep")
        return cmdSweep(a);
    if (a.command == "pingpong")
        return cmdPingPong(a);
    if (a.command == "replay")
        return cmdReplay(a);
    if (a.command == "dump-config")
        return cmdDumpConfig(a);
    fatal("unknown command '%s' (machines, measure, sweep, pingpong, "
          "replay, dump-config)", a.command.c_str());
}
