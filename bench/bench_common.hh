/**
 * @file
 * Shared plumbing for the figure/table bench binaries: option
 * parsing (--quick trims sweeps for smoke runs, --csv DIR dumps
 * machine-readable series, --jobs N sizes the sweep worker pool),
 * the measurement options used by all benches, the SweepSession
 * declare-run-lookup wrapper around harness::SweepRunner, and
 * paper-vs-simulated formatting helpers.
 */

#ifndef CCSIM_BENCH_BENCH_COMMON_HH
#define CCSIM_BENCH_BENCH_COMMON_HH

#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "harness/measure.hh"
#include "harness/sweep.hh"
#include "machine/machine_config.hh"
#include "model/paper_data.hh"
#include "model/timing_expr.hh"
#include "tuning/selection_cli.hh"
#include "util/table.hh"
#include "util/units.hh"

namespace ccsim::bench {

/** Command-line options common to every bench binary (parsed with
 *  cli::Options, the same schema machinery the ccsim CLI uses). */
struct BenchOptions
{
    bool quick = false;      //!< trim sweeps (CI smoke mode)
    std::string csv_dir;     //!< dump CSV series here when non-empty
    int jobs = 0;            //!< sweep workers (0: hardware concurrency)
    bool metrics = false;    //!< collect MetricsSnapshots per point
    //! --algo: the per-call algorithm for benches that honour it
    //! (Auto resolves through the machine's selection table).
    machine::Algo algo = machine::Algo::Auto;
    std::string selection;   //!< --selection: table preset or file

    static BenchOptions parse(int argc, char **argv);

    /** Attach --selection to @p cfg (no-op when not given). */
    void applySelection(machine::MachineConfig &cfg) const;
};

/**
 * Declare-run-lookup front-end for harness::SweepRunner, shaped for
 * the way the bench binaries are written: a declaration pass mirrors
 * the printing loops and add()s every point, run() simulates them
 * all on the worker pool, then the printing pass get()s each result
 * by key.  Keys are (machine name + tag, p, op, m, algo); the tag
 * disambiguates ablation variants that share a machine name (e.g.\
 * contention on/off, eager-threshold settings).  add() dedups, so
 * overlapping panels cost one simulation.
 */
class SweepSession
{
  public:
    explicit SweepSession(const BenchOptions &opts,
                          harness::MeasureOptions mopt =
                              harness::MeasureOptions{});

    /** Declare one point (deduped by key). */
    void add(const machine::MachineConfig &cfg, int p, machine::Coll op,
             Bytes m, machine::Algo algo = machine::Algo::Auto,
             const std::string &tag = "");

    /** Declare the startup-latency point (short-message T0 proxy). */
    void addStartup(const machine::MachineConfig &cfg, int p,
                    machine::Coll op,
                    machine::Algo algo = machine::Algo::Auto,
                    const std::string &tag = "");

    /** Simulate all declared points on the worker pool. */
    void run();

    /** Look up a declared point's measurement (run() must be done). */
    const harness::Measurement &
    get(const machine::MachineConfig &cfg, int p, machine::Coll op,
        Bytes m, machine::Algo algo = machine::Algo::Auto,
        const std::string &tag = "") const;

    /** Startup-latency counterpart of get(). */
    const harness::Measurement &
    getStartup(const machine::MachineConfig &cfg, int p,
               machine::Coll op,
               machine::Algo algo = machine::Algo::Auto,
               const std::string &tag = "") const;

    /** Throughput of the last run() (points/sec, wall seconds). */
    const harness::SweepRunner::Stats &stats() const;

    /**
     * All declared points' MetricsSnapshots merged in declaration
     * order — deterministic at any --jobs level, because results are
     * collected in spec order regardless of worker schedule.  Empty
     * unless the session's MeasureOptions enabled metrics.
     */
    stats::MetricsSnapshot mergedMetrics() const;

  private:
    using Key = std::tuple<std::string, int, int, Bytes, int>;

    static Key key(const machine::MachineConfig &cfg, int p,
                   machine::Coll op, Bytes m, machine::Algo algo,
                   const std::string &tag);

    harness::SweepRunner runner_;
    harness::MeasureOptions mopt_;
    std::vector<harness::SweepPoint> points_;
    std::map<Key, std::size_t> index_;
    std::vector<harness::Measurement> results_;
    bool ran_ = false;
};

/** Measurement knobs used by the benches (deterministic sim: one
 *  repetition of a short loop reproduces the paper's numbers). */
harness::MeasureOptions benchMeasureOptions();

/** Machine sizes for a sweep (paper's 2..128, T3D capped at 64). */
std::vector<int> sweepSizes(const std::string &machine, bool quick);

/** Message lengths for a sweep (4 B .. 64 KB, powers of four). */
std::vector<Bytes> sweepLengths(bool quick);

/** "150.2" style microsecond cell. */
std::string usCell(double us);

/** Paper prediction cell, or "-" if Table 3 has no row. */
std::string paperUsCell(const std::string &machine, machine::Coll op,
                        Bytes m, int p);

/** Write a CSV file (header + rows) under opts.csv_dir if set. */
void maybeWriteCsv(const BenchOptions &opts, const std::string &name,
                   const std::vector<std::string> &header,
                   const std::vector<std::vector<std::string>> &rows);

/** Banner with the binary's purpose and the paper reference. */
void printBanner(const std::string &title, const std::string &what);

} // namespace ccsim::bench

#endif // CCSIM_BENCH_BENCH_COMMON_HH
