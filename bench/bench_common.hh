/**
 * @file
 * Shared plumbing for the figure/table bench binaries: option
 * parsing (--quick trims sweeps for smoke runs, --csv DIR dumps
 * machine-readable series), the measurement options used by all
 * benches, and paper-vs-simulated formatting helpers.
 */

#ifndef CCSIM_BENCH_BENCH_COMMON_HH
#define CCSIM_BENCH_BENCH_COMMON_HH

#include <optional>
#include <string>
#include <vector>

#include "harness/measure.hh"
#include "machine/machine_config.hh"
#include "model/paper_data.hh"
#include "model/timing_expr.hh"
#include "util/table.hh"
#include "util/units.hh"

namespace ccsim::bench {

/** Command-line options common to every bench binary. */
struct BenchOptions
{
    bool quick = false;      //!< trim sweeps (CI smoke mode)
    std::string csv_dir;     //!< dump CSV series here when non-empty

    static BenchOptions parse(int argc, char **argv);
};

/** Measurement knobs used by the benches (deterministic sim: one
 *  repetition of a short loop reproduces the paper's numbers). */
harness::MeasureOptions benchMeasureOptions();

/** Machine sizes for a sweep (paper's 2..128, T3D capped at 64). */
std::vector<int> sweepSizes(const std::string &machine, bool quick);

/** Message lengths for a sweep (4 B .. 64 KB, powers of four). */
std::vector<Bytes> sweepLengths(bool quick);

/** "150.2" style microsecond cell. */
std::string usCell(double us);

/** Paper prediction cell, or "-" if Table 3 has no row. */
std::string paperUsCell(const std::string &machine, machine::Coll op,
                        Bytes m, int p);

/** Write a CSV file (header + rows) under opts.csv_dir if set. */
void maybeWriteCsv(const BenchOptions &opts, const std::string &name,
                   const std::vector<std::string> &header,
                   const std::vector<std::vector<std::string>> &rows);

/** Banner with the binary's purpose and the paper reference. */
void printBanner(const std::string &title, const std::string &what);

} // namespace ccsim::bench

#endif // CCSIM_BENCH_BENCH_COMMON_HH
