/**
 * @file
 * Figure 3 extrapolation: the paper's machine-size sweep pushed three
 * decades past its p = 64 frontier.
 *
 * The paper's central scaling story is O(p) vs O(log p) startup cost
 * across the SP2 omega, T3D torus, and Paragon mesh.  This bench
 * re-runs the barrier and broadcast sweeps on those fabrics plus two
 * extreme-scale ones — a fat tree (XGFT, D-mod-k routing) and a
 * dragonfly (minimal global routing), both carrying the SP2's
 * software stack so only the fabric changes — then:
 *
 *  1. fits the paper's closed form T0(p) = a g(p) + b to the
 *     simulated sizes and extrapolates it out to p = 2^20;
 *  2. anchors the extrapolation with one full simulation at
 *     p = 65536 (4096 under --quick) on the fat tree, which the
 *     analytic-routing network model handles in O(active links)
 *     memory;
 *  3. emits the crossover table: the smallest power-of-two p at
 *     which each 1997 fabric's closed form falls behind the fat
 *     tree and the dragonfly.
 */

#include <cctype>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "model/fit.hh"

using namespace ccsim;
using namespace ccsim::bench;

namespace {

struct Fabric
{
    std::string label;
    machine::MachineConfig cfg;
};

/** Simulated sizes the closed forms are fitted on (powers of two so
 *  the SP2 omega accepts every point). */
std::vector<int>
fitSizes(bool quick)
{
    if (quick)
        return {4, 8, 16, 32};
    return {4, 8, 16, 32, 64, 128, 256};
}

std::string
cell(double us)
{
    char buf[32];
    if (us >= 1e6)
        std::snprintf(buf, sizeof(buf), "%.3g s", us / 1e6);
    else if (us >= 1e3)
        std::snprintf(buf, sizeof(buf), "%.4g ms", us / 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.4g us", us);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    quietLogging(opts.csv_dir.empty());

    printBanner("FIGURE 3 EXTRAPOLATION — startup scaling to p = 2^20",
                "Closed forms fitted on simulation; fat-tree and "
                "dragonfly vs the 1997 fabrics; full-sim anchor at "
                "extreme scale.");

    std::vector<Fabric> fabrics;
    fabrics.push_back({"SP2", machine::sp2Config()});
    fabrics.push_back({"T3D", machine::t3dConfig()});
    fabrics.push_back({"Paragon", machine::paragonConfig()});
    {
        machine::MachineConfig ft = machine::sp2Config();
        ft.name = "FatTree";
        ft.topo_spec = "fattree";
        fabrics.push_back({"FatTree", ft});

        machine::MachineConfig df = machine::sp2Config();
        df.name = "Dragonfly";
        df.topo_spec = "dragonfly";
        fabrics.push_back({"Dragonfly", df});
    }

    const machine::Coll ops[] = {machine::Coll::Barrier,
                                 machine::Coll::Bcast};
    const Bytes bcast_m = 16; // the paper's short-message series

    // ---- 1. simulate the fit range ------------------------------
    SweepSession sweep(opts, benchMeasureOptions());
    for (const Fabric &f : fabrics)
        for (machine::Coll op : ops)
            for (int p : fitSizes(opts.quick))
                sweep.add(f.cfg, p,  op,
                          op == machine::Coll::Barrier ? 0 : bcast_m);
    sweep.run();

    // ---- 2. fit + extrapolate the closed forms ------------------
    const int max_k = 20;
    // closed[f][op] = fitted startup expression
    std::vector<std::vector<model::TimingExpression>> closed;
    for (const Fabric &f : fabrics) {
        closed.emplace_back();
        for (machine::Coll op : ops) {
            Bytes m = op == machine::Coll::Barrier ? 0 : bcast_m;
            std::vector<model::Sample> samples;
            for (int p : fitSizes(opts.quick)) {
                const auto &meas = sweep.get(f.cfg, p, op, m);
                samples.push_back({m, p, meas.us()});
            }
            closed.back().push_back(model::fitStartupAuto(samples));
        }
    }

    for (std::size_t oi = 0; oi < 2; ++oi) {
        std::printf("--- %s: closed-form T0(p), extrapolated ---\n",
                    machine::collName(ops[oi]).c_str());
        TableWriter t;
        {
            std::vector<std::string> h{"p"};
            for (const Fabric &f : fabrics)
                h.push_back(f.label);
            t.header(h);
        }
        std::vector<std::vector<std::string>> csv_rows;
        for (int k = 2; k <= max_k; ++k) {
            int p = 1 << k;
            std::vector<std::string> csv{std::to_string(p)};
            for (std::size_t fi = 0; fi < fabrics.size(); ++fi)
                csv.push_back(
                    usCell(closed[fi][oi].startupUs(p)));
            csv_rows.push_back(csv);
            if (k % 2 != 0)
                continue; // print every other decade, CSV has all
            std::vector<std::string> row{std::to_string(p)};
            for (std::size_t fi = 0; fi < fabrics.size(); ++fi)
                row.push_back(cell(closed[fi][oi].startupUs(p)));
            t.row(row);
        }
        t.print(std::cout);
        for (std::size_t fi = 0; fi < fabrics.size(); ++fi)
            std::printf("  %-10s T0(p) = %s\n",
                        fabrics[fi].label.c_str(),
                        closed[fi][oi].startupStr().c_str());
        std::printf("\n");

        std::vector<std::string> header{"p"};
        for (const Fabric &f : fabrics) {
            std::string l = f.label;
            for (char &c : l)
                c = static_cast<char>(std::tolower(
                    static_cast<unsigned char>(c)));
            header.push_back(l + "_us");
        }
        maybeWriteCsv(opts,
                      "fig3x_closed_" +
                          machine::collName(ops[oi]),
                      header, csv_rows);
    }

    // ---- 3. crossover table -------------------------------------
    std::printf("--- crossover: smallest p = 2^k where a 1997 fabric "
                "falls behind ---\n");
    TableWriter xt;
    xt.header({"fabric", "op", "vs FatTree", "vs Dragonfly"});
    std::vector<std::vector<std::string>> xrows;
    for (std::size_t fi = 0; fi < 3; ++fi) {
        for (std::size_t oi = 0; oi < 2; ++oi) {
            std::vector<std::string> row{fabrics[fi].label,
                                         machine::collName(ops[oi])};
            for (std::size_t mi = 3; mi < 5; ++mi) {
                int cross = 0;
                for (int k = 2; k <= max_k; ++k) {
                    int p = 1 << k;
                    if (closed[fi][oi].startupUs(p) >
                        closed[mi][oi].startupUs(p)) {
                        cross = p;
                        break;
                    }
                }
                row.push_back(cross ? std::to_string(cross)
                                    : "> 2^20");
            }
            xt.row(row);
            xrows.push_back(row);
        }
    }
    xt.print(std::cout);
    std::printf("\n");
    maybeWriteCsv(opts, "fig3x_crossover",
                  {"fabric", "op", "vs_fattree", "vs_dragonfly"},
                  xrows);

    // ---- 4. full-simulation anchor at extreme scale -------------
    const int anchor_p = opts.quick ? 4096 : 65536;
    harness::MeasureOptions one;
    one.iterations = 1;
    one.repetitions = 1;
    one.warmup = 0;
    const Fabric &ft = fabrics[3];
    harness::Measurement anchor = harness::measureCollective(
        ft.cfg, anchor_p, machine::Coll::Barrier, 0,
        machine::Algo::Default, one);
    double sim_us = anchor.us();
    double form_us = closed[3][0].startupUs(anchor_p);
    std::printf("--- full-sim anchor: fat-tree barrier at p = %d ---\n",
                anchor_p);
    std::printf("  simulated      : %s\n", cell(sim_us).c_str());
    std::printf("  closed form    : %s (%+.1f%% vs sim)\n",
                cell(form_us).c_str(),
                sim_us > 0 ? 100.0 * (form_us - sim_us) / sim_us : 0.0);
    maybeWriteCsv(opts, "fig3x_anchor", {"p", "sim_us", "closed_us"},
                  {{std::to_string(anchor_p), usCell(sim_us),
                    usCell(form_us)}});
    return 0;
}
