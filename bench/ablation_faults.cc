/**
 * @file
 * Fault ablation: how fragile are the paper's fitted closed forms
 * T(m, p) = T0(p) + D(m, p) (Table 3) when the machine is not
 * pristine?
 *
 * Regenerates Fig. 3-style curves for barrier, broadcast, and total
 * exchange on the three machines under 0 / 1 / 5 % fault rates —
 * each rate assigns that fraction of nodes as 2x stragglers and the
 * same fraction of links as half-bandwidth degraded, drawn
 * deterministically from a fixed seed — then re-fits the paper-style
 * expressions and reports the drift of the fitted startup latency
 * T0(p) and aggregated bandwidth R_inf(p) against the fault-free
 * fit.
 *
 * The headline contrast the fault layer was built to expose: the
 * T3D's hardwired barrier tree ignores stragglers completely (its
 * drift stays zero), while the SP2/Paragon software dissemination
 * barriers inherit every straggler's slowdown in full.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "model/fit.hh"

using namespace ccsim;
using namespace ccsim::bench;

namespace {

const double kRates[] = {0.0, 0.01, 0.05};

/** The ablation's fault scenario at straggler/degrade rate @p rate. */
fault::FaultSpec
faultsAt(double rate)
{
    fault::FaultSpec f;
    f.seed = 42;
    f.straggler_rate = rate;
    f.straggler_factor = 2.0;
    f.link_degrade_rate = rate;
    f.link_degrade_factor = 0.5;
    return f;
}

std::string
rateTag(double rate)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "fault=%.2f", rate);
    return buf;
}

/** Drift percentage cell vs the fault-free value ("-" when the
 *  baseline is zero, e.g. R_inf of a barrier). */
std::string
driftCell(double value, double base)
{
    if (base == 0)
        return "-";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.1f%%",
                  100.0 * (value - base) / base);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    quietLogging(opts.csv_dir.empty());

    printBanner("FAULT ABLATION — Table 3 fits under degraded "
                "machines",
                "Fitted T0(p) / R_inf(p) drift vs straggler + "
                "link-degradation rate.");

    auto machines = machine::paperMachines();
    const machine::Coll ops[] = {machine::Coll::Barrier,
                                 machine::Coll::Bcast,
                                 machine::Coll::Alltoall};
    std::vector<Bytes> lengths = sweepLengths(opts.quick);
    std::vector<std::vector<std::string>> csv_rows;

    SweepSession sweep(opts, benchMeasureOptions());
    for (machine::Coll op : ops) {
        for (const auto &base : machines) {
            for (double rate : kRates) {
                machine::MachineConfig cfg = base;
                cfg.fault = faultsAt(rate);
                for (int p : sweepSizes(cfg.name, opts.quick)) {
                    for (Bytes m : lengths) {
                        sweep.add(cfg, p, op,
                                  op == machine::Coll::Barrier ? 0 : m,
                                  machine::Algo::Default,
                                  rateTag(rate));
                        if (op == machine::Coll::Barrier)
                            break;
                    }
                }
            }
        }
    }
    sweep.run();

    for (machine::Coll op : ops) {
        std::printf("--- %s ---\n", machine::collName(op).c_str());
        TableWriter t;
        t.header({"machine", "faults", "fitted T(m,p) [us]", "T0(p*)",
                  "dT0", "R_inf(p*)", "dR_inf"});
        for (const auto &base : machines) {
            std::vector<int> sizes = sweepSizes(base.name, opts.quick);
            int p_ref = sizes.back();
            double t0_clean = 0, rinf_clean = 0;
            for (double rate : kRates) {
                machine::MachineConfig cfg = base;
                cfg.fault = faultsAt(rate);
                std::vector<model::Sample> samples;
                for (int p : sizes) {
                    for (Bytes m : lengths) {
                        Bytes mm =
                            op == machine::Coll::Barrier ? 0 : m;
                        const auto &meas =
                            sweep.get(cfg, p, op, mm,
                                      machine::Algo::Default,
                                      rateTag(rate));
                        samples.push_back({mm, p, meas.us()});
                        if (op == machine::Coll::Barrier)
                            break; // barrier has no m sweep
                    }
                }
                model::TimingExpression fit =
                    op == machine::Coll::Barrier
                        ? model::fitStartupAuto(samples)
                        : model::fitPaperStyleAuto(samples);
                double t0 = fit.startupUs(p_ref);
                double rinf = fit.aggregatedBandwidthMBs(op, p_ref);
                if (rate == 0.0) {
                    t0_clean = t0;
                    rinf_clean = rinf;
                }
                t.row({cfg.name, rateTag(rate), fit.str(),
                       formatF(t0, 1), driftCell(t0, t0_clean),
                       rinf > 0 ? formatF(rinf, 1) : "-",
                       driftCell(rinf, rinf_clean)});
                csv_rows.push_back(
                    {machine::collName(op), cfg.name,
                     formatF(rate, 2), fit.str(), formatF(t0, 2),
                     formatF(rinf, 2), driftCell(t0, t0_clean),
                     driftCell(rinf, rinf_clean)});
            }
        }
        t.print(std::cout);
        std::printf("\n");
    }

    std::printf("p* = largest swept machine size per machine; drift "
                "is relative to the\nfault-free fit.  The T3D barrier "
                "row is the control: its hardwired AND\ntree never "
                "touches the straggling CPUs, so its drift stays "
                "0.0%%.\n");

    maybeWriteCsv(opts, "ablation_faults",
                  {"op", "machine", "rate", "fitted", "t0_ref_us",
                   "rinf_ref_mbs", "t0_drift", "rinf_drift"},
                  csv_rows);
    return 0;
}
