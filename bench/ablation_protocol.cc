/**
 * @file
 * Ablation: the eager/rendezvous threshold.
 *
 * The short/long crossover the paper keeps finding (SP2 beats
 * Paragon below ~1 KB, loses above) rides on the messaging
 * protocol: eager pays a receive-side copy, rendezvous pays a
 * handshake round trip.  This bench sweeps the threshold on the SP2
 * model and shows where each protocol wins, plus the message size
 * at which the default threshold switches.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"

using namespace ccsim;
using namespace ccsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    quietLogging(true);

    printBanner("ABLATION — eager/rendezvous protocol threshold",
                "Broadcast time on the SP2 model as the threshold "
                "moves.");

    const int p = opts.quick ? 8 : 32;

    std::vector<Bytes> thresholds = {0, 1 * KiB, 4 * KiB, 16 * KiB,
                                     256 * KiB};
    std::vector<Bytes> lengths = {256, 1 * KiB, 4 * KiB, 16 * KiB,
                                  64 * KiB};

    // One SP2 variant per threshold; the tag keys the variant (all
    // share the preset name).
    SweepSession sweep(opts, benchMeasureOptions());
    for (Bytes m : lengths) {
        for (Bytes th : thresholds) {
            auto cfg = machine::sp2Config();
            cfg.transport.eager_threshold = th;
            sweep.add(cfg, p, machine::Coll::Bcast, m,
                      machine::Algo::Default, std::to_string(th));
        }
    }
    sweep.run();

    TableWriter t;
    std::vector<std::string> hdr{"m \\ threshold"};
    for (Bytes th : thresholds)
        hdr.push_back(th == 0 ? "all-rdv" : formatBytes(th));
    t.header(hdr);

    for (Bytes m : lengths) {
        std::vector<std::string> row{formatBytes(m)};
        for (Bytes th : thresholds) {
            const auto &meas =
                sweep.get(machine::sp2Config(), p, machine::Coll::Bcast,
                          m, machine::Algo::Default,
                          std::to_string(th));
            row.push_back(usCell(meas.us()));
        }
        t.row(row);
    }
    t.print(std::cout);
    std::printf("\nBroadcast T(m, %d) [us].  'all-rdv' forces the "
                "handshake for every\nmessage; a huge threshold "
                "forces eager (extra receive copy) for all.\nThe "
                "diagonal structure is the crossover the paper "
                "observes.\n", p);
    return 0;
}
