/**
 * @file
 * Figure 3 reproduction: collective messaging times T(m, p) as a
 * function of machine size p, for short messages (m = 16 B) and long
 * messages (m = 64 KB), for all seven operations (a: broadcast,
 * b: total exchange, c: scatter, d: gather, e: scan, f: reduce,
 * g: barrier — barrier has no message, one curve set).
 *
 * Headline shapes from the paper:
 *  - short-message curves track the startup latencies of Fig. 1;
 *  - long-message time grows near-linearly with p;
 *  - Fig. 3f's dramatic re-ranking: SP2 best for long reduce but
 *    worst for short; T3D best short;
 *  - Fig. 3g: the T3D hardware barrier sits orders of magnitude
 *    below the SP2/Paragon software barriers.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_common.hh"

using namespace ccsim;
using namespace ccsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    quietLogging(opts.csv_dir.empty());

    printBanner("FIGURE 3 — Messaging time T(m, p) vs machine size "
                "[microseconds]",
                "Seven collectives; short (16 B) and long (64 KB) "
                "messages; p = 2..128.");

    struct Panel
    {
        char id;
        machine::Coll op;
    };
    const Panel panels[] = {
        {'a', machine::Coll::Bcast},   {'b', machine::Coll::Alltoall},
        {'c', machine::Coll::Scatter}, {'d', machine::Coll::Gather},
        {'e', machine::Coll::Scan},    {'f', machine::Coll::Reduce},
        {'g', machine::Coll::Barrier},
    };
    const Bytes short_m = 16;
    const Bytes long_m = opts.quick ? 4 * KiB : 64 * KiB;

    auto machines = machine::paperMachines();

    SweepSession sweep(opts, benchMeasureOptions());
    for (const Panel &panel : panels) {
        bool barrier = panel.op == machine::Coll::Barrier;
        std::vector<Bytes> lengths =
            barrier ? std::vector<Bytes>{0}
                    : std::vector<Bytes>{short_m, long_m};
        for (Bytes m : lengths)
            for (const auto &cfg : machines)
                for (int p : sweepSizes(cfg.name, opts.quick))
                    sweep.add(cfg, p, panel.op, m);
    }
    sweep.run();

    for (const Panel &panel : panels) {
        bool barrier = panel.op == machine::Coll::Barrier;
        std::printf("--- Fig. 3%c: %s ---\n", panel.id,
                    machine::collName(panel.op).c_str());

        std::vector<Bytes> lengths =
            barrier ? std::vector<Bytes>{0}
                    : std::vector<Bytes>{short_m, long_m};
        for (Bytes m : lengths) {
            if (!barrier)
                std::printf("  message length m = %s\n",
                            formatBytes(m).c_str());
            TableWriter t;
            t.header({"p", "SP2 sim", "SP2 paper", "T3D sim",
                      "T3D paper", "Paragon sim", "Paragon paper"});
            std::vector<std::vector<std::string>> csv_rows;
            for (int p : sweepSizes("SP2", opts.quick)) {
                std::vector<std::string> row{std::to_string(p)};
                std::vector<std::string> csv{std::to_string(p)};
                for (const auto &cfg : machines) {
                    auto sizes = sweepSizes(cfg.name, opts.quick);
                    if (std::find(sizes.begin(), sizes.end(), p) ==
                        sizes.end()) {
                        row.push_back("-");
                        row.push_back("-");
                        csv.push_back("");
                        continue;
                    }
                    const auto &meas = sweep.get(cfg, p, panel.op, m);
                    row.push_back(usCell(meas.us()));
                    row.push_back(paperUsCell(cfg.name, panel.op, m, p));
                    csv.push_back(usCell(meas.us()));
                }
                t.row(row);
                csv_rows.push_back(csv);
            }
            t.print(std::cout);
            std::printf("\n");

            std::string slug = machine::collName(panel.op);
            std::replace(slug.begin(), slug.end(), ' ', '_');
            maybeWriteCsv(opts,
                          "fig3_" + slug + "_m" + std::to_string(m),
                          {"p", "sp2_us", "t3d_us", "paragon_us"},
                          csv_rows);
        }
    }
    return 0;
}
