/**
 * @file
 * Table 1 reproduction: the inventory of MPI collective operations
 * being evaluated, extended with the algorithm each simulated
 * machine's MPI uses (the paper's Section 8 discusses these choices:
 * tree-like algorithms for broadcast/barrier/reduce, O(p) fan-in/out
 * for gather/scatter/total exchange, the T3D's hardwired barrier).
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"

using namespace ccsim;
using namespace ccsim::bench;

namespace {

const char *
description(machine::Coll op)
{
    switch (op) {
      case machine::Coll::Barrier:
        return "Blocks until all processes have reached this routine";
      case machine::Coll::Bcast:
        return "Sends a message from one task to all tasks in a group";
      case machine::Coll::Gather:
        return "Gathers distinct messages onto a single task";
      case machine::Coll::Scatter:
        return "Sends data from one task to all other tasks in a group";
      case machine::Coll::Allgather:
        return "Gathers data from all tasks and distributes it to all";
      case machine::Coll::Alltoall:
        return "Sends data from all to all processes";
      case machine::Coll::Reduce:
        return "Reduces values on all processes to a single value";
      case machine::Coll::Allreduce:
        return "Reduces and distributes the result to all processes";
      case machine::Coll::ReduceScatter:
        return "Reduces, then scatters one result block per process";
      case machine::Coll::Scan:
        return "Computes an inclusive prefix reduction across ranks";
      default:
        return "";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    (void)opts;
    quietLogging(true);

    printBanner("TABLE 1 — MPI collective operations being evaluated",
                "Operation inventory plus the per-machine algorithm "
                "defaults.");

    auto machines = machine::paperMachines();

    TableWriter t;
    t.header({"operation", "function description", "SP2 algo",
              "T3D algo", "Paragon algo"});
    for (machine::Coll op : machine::kAllColls) {
        std::vector<std::string> row{machine::collName(op),
                                     description(op)};
        for (const auto &cfg : machines)
            row.push_back(machine::algoName(cfg.algorithmFor(op)));
        t.row(row);
    }
    t.print(std::cout);
    std::printf("\nThe paper's Table 1 lists barrier, broadcast, "
                "gather, scatter, total\nexchange (alltoall), reduce, "
                "and scan; allgather, allreduce, and\nreduce-scatter are included here "
                "as library extensions.\n");
    return 0;
}
