/**
 * @file
 * Figure 2 reproduction: collective messaging times T(m, 32) of six
 * MPI collectives as a function of message length, m = 4 B .. 64 KB,
 * on 32 nodes of the SP2, T3D, and Paragon.
 *
 * The paper's headline observations to look for in the output:
 *  - times grow slowly below ~1 KB (startup-dominated), then almost
 *    linearly in m (transmission-dominated);
 *  - the T3D is fastest everywhere except scan, where the Paragon
 *    wins (Fig. 2e);
 *  - the Paragon overtakes the SP2 for long messages in broadcast,
 *    total exchange, scatter, gather (the short/long crossover);
 *  - for long reduce the SP2 is competitive (Fig. 2f).
 */

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_common.hh"

using namespace ccsim;
using namespace ccsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    quietLogging(opts.csv_dir.empty());

    printBanner("FIGURE 2 — Messaging time T(m, p=32) vs message "
                "length [microseconds]",
                "Six collectives, m = 4 B .. 64 KB on 32 nodes.");

    const std::array<machine::Coll, 6> ops = {
        machine::Coll::Bcast,  machine::Coll::Alltoall,
        machine::Coll::Scatter, machine::Coll::Gather,
        machine::Coll::Scan,   machine::Coll::Reduce,
    };
    const char panel[] = {'a', 'b', 'c', 'd', 'e', 'f'};
    const int p = opts.quick ? 8 : 32;

    auto machines = machine::paperMachines();

    SweepSession sweep(opts, benchMeasureOptions());
    for (machine::Coll op : ops)
        for (Bytes m : sweepLengths(opts.quick))
            for (const auto &cfg : machines)
                sweep.add(cfg, p, op, m);
    sweep.run();

    for (std::size_t oi = 0; oi < ops.size(); ++oi) {
        machine::Coll op = ops[oi];
        std::printf("--- Fig. 2%c: %s (p = %d) ---\n", panel[oi],
                    machine::collName(op).c_str(), p);

        TableWriter t;
        t.header({"m", "SP2 sim", "SP2 paper", "T3D sim", "T3D paper",
                  "Paragon sim", "Paragon paper"});
        std::vector<std::vector<std::string>> csv_rows;

        for (Bytes m : sweepLengths(opts.quick)) {
            std::vector<std::string> row{formatBytes(m)};
            std::vector<std::string> csv{std::to_string(m)};
            for (const auto &cfg : machines) {
                const auto &meas = sweep.get(cfg, p, op, m);
                row.push_back(usCell(meas.us()));
                row.push_back(paperUsCell(cfg.name, op, m, p));
                csv.push_back(usCell(meas.us()));
            }
            t.row(row);
            csv_rows.push_back(csv);
        }
        t.print(std::cout);
        std::printf("\n");
        std::string slug = machine::collName(op);
        std::replace(slug.begin(), slug.end(), ' ', '_');
        maybeWriteCsv(opts, "fig2_" + slug,
                      {"m_bytes", "sp2_us", "t3d_us", "paragon_us"},
                      csv_rows);
    }
    return 0;
}
