/**
 * @file
 * Extension experiment: active messages under MPI collectives — the
 * research the paper's conclusions call for ("We suggest extended
 * research be conducted in evaluating the use of active messages or
 * fast messages in MPI applications").
 *
 * For each machine model, the barrier / broadcast / reduce startup
 * latencies of the vendor-MPI implementation are compared against
 * the same tree algorithms built on an active-message layer (no
 * envelope matching, no buffering, handler-side forwarding), with
 * overheads set to a third of the MPI per-message software cost.
 * The punchline: the software gap closes dramatically — but the
 * T3D's hardwired barrier still beats everything, because no
 * software layer can beat a wire.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "am/am_collectives.hh"
#include "bench_common.hh"

using namespace ccsim;
using namespace ccsim::bench;

namespace {

/** AM collective startup time, measured like the Section 2 loop. */
double
amStartupUs(const machine::MachineConfig &cfg, int p,
            machine::Coll op)
{
    machine::Machine m(cfg, p);
    am::AmWorld world(m, am::amParamsFor(cfg));
    // communication-time = max over ranks of the per-rank mean, as
    // in the Section 2 procedure (the root of a fire-and-forget
    // broadcast finishes early; the last leaf defines the time).
    Time elapsed = 0;
    const int iters = 3;
    auto prog = [&](int rank) -> sim::Task<void> {
        co_await world.barrier(rank); // warm-up / alignment
        Time start = m.sim().now();
        for (int i = 0; i < iters; ++i) {
            switch (op) {
              case machine::Coll::Barrier:
                co_await world.barrier(rank);
                break;
              case machine::Coll::Bcast:
                co_await world.bcast(rank, 4, 0, nullptr);
                break;
              case machine::Coll::Reduce:
                co_await world.reduce(rank, 4, 0, nullptr);
                break;
              default:
                fatal("amStartupUs: unsupported op");
            }
        }
        elapsed = std::max(elapsed, (m.sim().now() - start) / iters);
    };
    for (int r = 0; r < p; ++r)
        m.sim().spawn(prog(r));
    m.run();
    return toMicros(elapsed);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    quietLogging(true);

    printBanner("EXTENSION — active messages vs MPI collectives",
                "Startup latencies [us] with vendor MPI vs an "
                "active-message layer.");

    auto mopt = benchMeasureOptions();
    std::vector<int> sizes = opts.quick
                                 ? std::vector<int>{4, 16}
                                 : std::vector<int>{4, 16, 64};

    for (machine::Coll op : {machine::Coll::Barrier,
                             machine::Coll::Bcast,
                             machine::Coll::Reduce}) {
        std::printf("--- %s ---\n", machine::collName(op).c_str());
        TableWriter t;
        t.header({"p", "SP2 MPI", "SP2 AM", "T3D MPI", "T3D AM",
                  "T3D hw", "Paragon MPI", "Paragon AM"});
        for (int p : sizes) {
            std::vector<std::string> row{std::to_string(p)};
            for (const auto &base : machine::paperMachines()) {
                auto sw_cfg = base;
                if (sw_cfg.hardware_barrier) {
                    sw_cfg.hardware_barrier = false;
                    sw_cfg.setAlgorithm(machine::Coll::Barrier,
                                        machine::Algo::Dissemination);
                    sw_cfg.costsFor(machine::Coll::Barrier).per_stage =
                        microseconds(40);
                }
                auto mpi_meas = harness::measureStartup(
                    sw_cfg, p, op, machine::Algo::Default, mopt);
                row.push_back(usCell(mpi_meas.us()));
                row.push_back(usCell(amStartupUs(sw_cfg, p, op)));
                if (base.name == "T3D") {
                    if (op == machine::Coll::Barrier) {
                        auto hw = harness::measureStartup(
                            base, p, op, machine::Algo::Default, mopt);
                        row.push_back(usCell(hw.us()));
                    } else {
                        row.push_back("-");
                    }
                }
            }
            t.row(row);
        }
        t.print(std::cout);
        std::printf("\n");
    }
    std::printf("Reading: active messages strip most of the software "
                "startup the paper\nmeasured — yet the T3D's "
                "hardwired barrier column still wins, which is\nthe "
                "paper's own conclusion about hardware support.\n");
    return 0;
}
