/**
 * @file
 * Ablation: hot links under total exchange — Paragon's 2-D mesh vs
 * SP2's omega network, through the metrics layer.
 *
 * The paper attributes Paragon's poor large-message total-exchange
 * scaling to link contention in the 2-D mesh: bisection traffic
 * funnels through the few middle columns, so a handful of links run
 * hot while the rest idle.  The omega network spreads the same
 * traffic across its stages.  This bench quantifies that with the
 * per-link counters: max-link utilization, the share of link busy
 * time lost to contention stalls, and the traffic carried by the
 * hottest link.
 *
 * Two panels:
 *
 *  1. stock machines — Paragon vs SP2 as calibrated.  SP2's links
 *     are 4x slower (40 vs 175 MB/s), so its links are *busier*
 *     even though they never contend; utilization alone does not
 *     separate wiring from link speed.
 *
 *  2. controlled wiring — the same machine (Paragon's parameters)
 *     wired as a 2-D mesh vs as SP2's omega.  With every other
 *     parameter equal, the mesh's hot links carry multiples of the
 *     omega's per-link traffic and its utilization pulls ahead as
 *     messages grow — the paper's contention argument, isolated.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"

using namespace ccsim;
using namespace ccsim::bench;

namespace {

/** Stall share: contention wait as a fraction of link busy time. */
double
stallShare(const stats::MetricsSnapshot &snap)
{
    double busy = snap.totalLinkBusyUs();
    return busy > 0 ? snap.totalStallUs() / busy : 0.0;
}

/** Bytes carried by the hottest (highest-utilization) link. */
Bytes
hottestLinkBytes(const stats::MetricsSnapshot &snap)
{
    Bytes best = 0;
    double best_util = -1.0;
    for (const auto &row : snap.links)
        if (row.util > best_util) {
            best_util = row.util;
            best = static_cast<Bytes>(row.bytes);
        }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    quietLogging(true);

    printBanner("ABLATION — hot links under total exchange",
                "Max-link utilization and contention-stall share on "
                "the Paragon mesh vs the SP2 omega network.");

    // The mesh's bisection squeeze needs a machine wide enough for
    // middle columns to matter, so even --quick keeps p = 64.
    std::vector<int> sizes =
        opts.quick ? std::vector<int>{64} : std::vector<int>{16, 64};
    std::vector<Bytes> lengths =
        opts.quick ? std::vector<Bytes>{1 * KiB, 16 * KiB}
                   : std::vector<Bytes>{1 * KiB, 16 * KiB, 64 * KiB};

    // The controlled pair: Paragon's node and link parameters, wired
    // two ways.  Only the topology differs.
    machine::MachineConfig mesh = machine::paragonConfig();
    mesh.name = "mesh2d (Paragon params)";
    machine::MachineConfig omega = machine::paragonConfig();
    omega.name = "omega (Paragon params)";
    omega.topology = machine::TopologyKind::Omega;

    harness::MeasureOptions mopt = benchMeasureOptions();
    mopt.metrics = true;
    SweepSession sweep(opts, mopt);
    std::vector<machine::MachineConfig> stock = {
        machine::paragonConfig(), machine::sp2Config()};
    for (int p : sizes)
        for (Bytes m : lengths) {
            for (const auto &cfg : stock)
                sweep.add(cfg, p, machine::Coll::Alltoall, m);
            sweep.add(mesh, p, machine::Coll::Alltoall, m);
            sweep.add(omega, p, machine::Coll::Alltoall, m);
        }
    sweep.run();

    std::vector<std::vector<std::string>> csv_rows;
    auto report = [&](const char *title,
                      const std::vector<machine::MachineConfig> &cfgs) {
        std::printf("--- %s ---\n", title);
        TableWriter t;
        t.header({"machine", "p", "m", "time us", "max util %",
                  "stall %", "hottest link"});
        for (int p : sizes)
            for (Bytes m : lengths)
                for (const auto &cfg : cfgs) {
                    const auto &meas = sweep.get(
                        cfg, p, machine::Coll::Alltoall, m);
                    const auto &snap = meas.metrics;
                    t.row({cfg.name, std::to_string(p),
                           formatBytes(m), usCell(meas.us()),
                           formatF(100.0 * snap.maxLinkUtil(), 1),
                           formatF(100.0 * stallShare(snap), 1),
                           formatBytes(hottestLinkBytes(snap))});
                    csv_rows.push_back(
                        {cfg.name, std::to_string(p),
                         std::to_string(m), formatF(meas.us(), 3),
                         formatF(snap.maxLinkUtil(), 6),
                         formatF(stallShare(snap), 6),
                         std::to_string(hottestLinkBytes(snap))});
                }
        t.print(std::cout);
        std::printf("\n");
    };

    report("stock machines (calibrated link speeds)", stock);
    report("controlled wiring (identical parameters)", {mesh, omega});

    // The headline comparison at the largest point.
    int p = sizes.back();
    Bytes m = lengths.back();
    const auto &mm =
        sweep.get(mesh, p, machine::Coll::Alltoall, m).metrics;
    const auto &om =
        sweep.get(omega, p, machine::Coll::Alltoall, m).metrics;
    std::printf("at p = %d, m = %s (identical parameters):\n", p,
                formatBytes(m).c_str());
    std::printf("  mesh : max util %.1f%%, stall share %.1f%%\n",
                100.0 * mm.maxLinkUtil(), 100.0 * stallShare(mm));
    std::printf("  omega: max util %.1f%%, stall share %.1f%%\n",
                100.0 * om.maxLinkUtil(), 100.0 * stallShare(om));
    std::printf("  mesh hot-link utilization %s the omega's — the "
                "paper's contention bottleneck %s.\n",
                mm.maxLinkUtil() > om.maxLinkUtil() ? "exceeds"
                                                    : "trails",
                mm.maxLinkUtil() > om.maxLinkUtil() ? "reproduced"
                                                    : "NOT reproduced");

    maybeWriteCsv(opts, "ablation_hotlinks",
                  {"machine", "p", "m_bytes", "time_us", "max_util",
                   "stall_share", "hottest_link_bytes"},
                  csv_rows);
    std::fprintf(stderr, "%zu points in %.2f s\n",
                 sweep.stats().points, sweep.stats().wall_seconds);
    return 0;
}
