/**
 * @file
 * Figure 4 reproduction: breakdown of the collective messaging time
 * into startup latency (dark bar) and transmission delay (white bar)
 * for six operations on p = 32 nodes with m = 1 KB messages.
 *
 * T0 is measured with the short-message approximation (Section 3);
 * the transmission delay is D = T(1 KB, 32) - T0(32).  The paper's
 * observations: total exchange is the most expensive everywhere;
 * the Paragon's total-exchange and gather latencies (3857 us and
 * 2918 us measured) dwarf the SP2/T3D counterparts; the T3D has the
 * lowest startup in broadcast, gather, and reduce.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"

using namespace ccsim;
using namespace ccsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    quietLogging(opts.csv_dir.empty());

    printBanner("FIGURE 4 — Startup vs transmission breakdown "
                "[microseconds]",
                "Six collectives, p = 32, m = 1 KB.");

    const std::array<machine::Coll, 6> ops = {
        machine::Coll::Bcast,  machine::Coll::Alltoall,
        machine::Coll::Scatter, machine::Coll::Gather,
        machine::Coll::Scan,   machine::Coll::Reduce,
    };
    const char panel[] = {'a', 'b', 'c', 'd', 'e', 'f'};
    const int p = opts.quick ? 8 : 32;
    const Bytes m = 1 * KiB;

    auto machines = machine::paperMachines();

    SweepSession sweep(opts, benchMeasureOptions());
    for (machine::Coll op : ops) {
        for (const auto &cfg : machines) {
            sweep.addStartup(cfg, p, op);
            sweep.add(cfg, p, op, m);
        }
    }
    sweep.run();

    std::vector<std::vector<std::string>> csv_rows;
    for (std::size_t oi = 0; oi < ops.size(); ++oi) {
        machine::Coll op = ops[oi];
        std::printf("--- Fig. 4%c: %s (p = %d, m = %s) ---\n",
                    panel[oi], machine::collName(op).c_str(), p,
                    formatBytes(m).c_str());

        TableWriter t;
        t.header({"machine", "T0 (startup)", "D (transmission)",
                  "T total", "startup %", "paper T"});
        for (const auto &cfg : machines) {
            const auto &t0 = sweep.getStartup(cfg, p, op);
            const auto &tt = sweep.get(cfg, p, op, m);
            double t0_us = t0.us();
            double total_us = tt.us();
            double d_us = total_us - t0_us;
            double frac = total_us > 0 ? 100.0 * t0_us / total_us : 0;
            t.row({cfg.name, usCell(t0_us), usCell(d_us),
                   usCell(total_us), formatF(frac, 1),
                   paperUsCell(cfg.name, op, m, p)});
            csv_rows.push_back({machine::collName(op), cfg.name,
                                usCell(t0_us), usCell(d_us),
                                usCell(total_us)});
        }
        t.print(std::cout);
        std::printf("\n");
    }
    maybeWriteCsv(opts, "fig4_breakdown",
                  {"op", "machine", "t0_us", "d_us", "total_us"},
                  csv_rows);
    return 0;
}
