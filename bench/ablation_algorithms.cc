/**
 * @file
 * Ablation: collective-algorithm choice.
 *
 * The paper attributes the O(log p) vs O(p) startup split entirely
 * to the algorithms the vendor MPIs picked (Section 8).  This bench
 * swaps algorithms on a fixed machine (the SP2 model) and shows:
 *
 *  - broadcast: linear fan-out's O(p) startup vs binomial's
 *    O(log p), and scatter+allgather's long-message win;
 *  - barrier: linear vs binomial tree vs dissemination;
 *  - alltoall: pairwise vs Bruck (Bruck wins for tiny m, loses for
 *    large m) vs all-nonblocking linear;
 *  - allgather: ring vs recursive doubling;
 *  - reduce/gather: linear vs binomial;
 *  - allreduce: reduce+bcast vs recursive doubling;
 *  - scan: linear pipeline vs recursive doubling.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"

using namespace ccsim;
using namespace ccsim::bench;

namespace {

/** Declaration pass: add every point of the panel to the sweep. */
void
declarePanel(SweepSession &sweep, const machine::MachineConfig &cfg,
             machine::Coll op, const std::vector<machine::Algo> &algos,
             const std::vector<Bytes> &lengths,
             const std::vector<int> &sizes)
{
    for (Bytes m : lengths)
        for (int p : sizes)
            for (auto a : algos)
                sweep.add(cfg, p, op, m, a);
}

/** Printing pass: all points already simulated by sweep.run(). */
void
panel(const SweepSession &sweep, const machine::MachineConfig &cfg,
      machine::Coll op, const std::vector<machine::Algo> &algos,
      const std::vector<Bytes> &lengths, const std::vector<int> &sizes)
{
    std::printf("--- %s on %s ---\n", machine::collName(op).c_str(),
                cfg.name.c_str());
    for (Bytes m : lengths) {
        TableWriter t;
        std::vector<std::string> hdr{"p"};
        for (auto a : algos)
            hdr.push_back(machine::algoName(a));
        t.header(hdr);
        for (int p : sizes) {
            std::vector<std::string> row{std::to_string(p)};
            for (auto a : algos)
                row.push_back(usCell(sweep.get(cfg, p, op, m, a).us()));
            t.row(row);
        }
        std::printf("  m = %s [us]\n", formatBytes(m).c_str());
        t.print(std::cout);
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    quietLogging(true);

    printBanner("ABLATION — collective algorithm choice",
                "Same machine model (SP2), different algorithms per "
                "operation.");

    auto cfg = machine::sp2Config();
    std::vector<int> sizes = opts.quick
                                 ? std::vector<int>{4, 16}
                                 : std::vector<int>{4, 16, 64};
    std::vector<Bytes> small_large =
        opts.quick ? std::vector<Bytes>{64}
                   : std::vector<Bytes>{64, 64 * KiB};

    using machine::Algo;
    using machine::Coll;

    struct PanelSpec
    {
        Coll op;
        std::vector<Algo> algos;
        std::vector<Bytes> lengths;
    };
    const std::vector<PanelSpec> panels = {
        {Coll::Bcast,
         {Algo::Linear, Algo::Binomial, Algo::ScatterAllgather},
         small_large},
        {Coll::Barrier,
         {Algo::Linear, Algo::Binomial, Algo::Dissemination},
         {0}},
        {Coll::Alltoall, {Algo::Linear, Algo::Pairwise, Algo::Bruck},
         small_large},
        {Coll::Allgather, {Algo::Ring, Algo::RecursiveDoubling},
         small_large},
        {Coll::Gather, {Algo::Linear, Algo::Binomial}, small_large},
        {Coll::Reduce, {Algo::Linear, Algo::Binomial}, small_large},
        {Coll::Allreduce, {Algo::ReduceBcast, Algo::RecursiveDoubling},
         small_large},
        {Coll::Scan, {Algo::Linear, Algo::RecursiveDoubling},
         small_large},
    };

    SweepSession sweep(opts, benchMeasureOptions());
    for (const auto &ps : panels)
        declarePanel(sweep, cfg, ps.op, ps.algos, ps.lengths, sizes);
    sweep.run();
    for (const auto &ps : panels)
        panel(sweep, cfg, ps.op, ps.algos, ps.lengths, sizes);
    return 0;
}
