/**
 * @file
 * Ablation: collective-algorithm choice.
 *
 * The paper attributes the O(log p) vs O(p) startup split entirely
 * to the algorithms the vendor MPIs picked (Section 8).  This bench
 * swaps algorithms on a fixed machine (the SP2 model) and shows:
 *
 *  - broadcast: linear fan-out's O(p) startup vs binomial's
 *    O(log p), and scatter+allgather's long-message win;
 *  - barrier: linear vs binomial tree vs dissemination;
 *  - alltoall: pairwise vs Bruck (Bruck wins for tiny m, loses for
 *    large m) vs all-nonblocking linear;
 *  - allgather: ring vs recursive doubling;
 *  - reduce/gather: linear vs binomial;
 *  - allreduce: reduce+bcast vs recursive doubling;
 *  - scan: linear pipeline vs recursive doubling.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"

using namespace ccsim;
using namespace ccsim::bench;

namespace {

void
panel(const machine::MachineConfig &cfg, machine::Coll op,
      const std::vector<machine::Algo> &algos,
      const std::vector<Bytes> &lengths, const std::vector<int> &sizes)
{
    auto mopt = benchMeasureOptions();
    std::printf("--- %s on %s ---\n", machine::collName(op).c_str(),
                cfg.name.c_str());
    for (Bytes m : lengths) {
        TableWriter t;
        std::vector<std::string> hdr{"p"};
        for (auto a : algos)
            hdr.push_back(machine::algoName(a));
        t.header(hdr);
        for (int p : sizes) {
            std::vector<std::string> row{std::to_string(p)};
            for (auto a : algos) {
                auto meas =
                    harness::measureCollective(cfg, p, op, m, a, mopt);
                row.push_back(usCell(meas.us()));
            }
            t.row(row);
        }
        std::printf("  m = %s [us]\n", formatBytes(m).c_str());
        t.print(std::cout);
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    quietLogging(true);

    printBanner("ABLATION — collective algorithm choice",
                "Same machine model (SP2), different algorithms per "
                "operation.");

    auto cfg = machine::sp2Config();
    std::vector<int> sizes = opts.quick
                                 ? std::vector<int>{4, 16}
                                 : std::vector<int>{4, 16, 64};
    std::vector<Bytes> small_large =
        opts.quick ? std::vector<Bytes>{64}
                   : std::vector<Bytes>{64, 64 * KiB};

    using machine::Algo;
    using machine::Coll;

    panel(cfg, Coll::Bcast,
          {Algo::Linear, Algo::Binomial, Algo::ScatterAllgather},
          small_large, sizes);
    panel(cfg, Coll::Barrier,
          {Algo::Linear, Algo::Binomial, Algo::Dissemination}, {0},
          sizes);
    panel(cfg, Coll::Alltoall,
          {Algo::Linear, Algo::Pairwise, Algo::Bruck}, small_large,
          sizes);
    panel(cfg, Coll::Allgather, {Algo::Ring, Algo::RecursiveDoubling},
          small_large, sizes);
    panel(cfg, Coll::Gather, {Algo::Linear, Algo::Binomial},
          small_large, sizes);
    panel(cfg, Coll::Reduce, {Algo::Linear, Algo::Binomial},
          small_large, sizes);
    panel(cfg, Coll::Allreduce,
          {Algo::ReduceBcast, Algo::RecursiveDoubling}, small_large,
          sizes);
    panel(cfg, Coll::Scan, {Algo::Linear, Algo::RecursiveDoubling},
          small_large, sizes);
    return 0;
}
