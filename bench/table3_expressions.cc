/**
 * @file
 * Table 3 reproduction: curve-fitted closed-form timing expressions
 * T(m, p) = T0(p) + D(m, p) for the seven collectives on the three
 * machines, derived from simulated measurements by the same
 * procedure the paper used (startup from short-message sweeps over
 * p, per-byte slope from long-message sweeps, growth family chosen
 * by best fit — O(log p) for barrier/broadcast/reduce/scan startup,
 * O(p) for gather/scatter/total exchange).
 *
 * Also reproduces the Section 8 worked example: the fitted T3D
 * total-exchange expression evaluated at m = 512 B, p = 64 should
 * give around 2.86 ms.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "model/fit.hh"

using namespace ccsim;
using namespace ccsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    quietLogging(opts.csv_dir.empty());

    printBanner("TABLE 3 — Fitted timing expressions T(m,p) "
                "[microseconds]",
                "Seven collectives x three machines; sim-fitted vs "
                "the paper's fits.");

    auto machines = machine::paperMachines();

    std::vector<Bytes> lengths = sweepLengths(opts.quick);
    std::vector<std::vector<std::string>> csv_rows;

    SweepSession sweep(opts, benchMeasureOptions());
    for (machine::Coll op : machine::kPaperColls) {
        for (const auto &cfg : machines) {
            for (int p : sweepSizes(cfg.name, opts.quick)) {
                for (Bytes m : lengths) {
                    sweep.add(cfg, p, op,
                              op == machine::Coll::Barrier ? 0 : m);
                    if (op == machine::Coll::Barrier)
                        break;
                }
            }
        }
    }
    // Section 8 worked example rides along in the same batch.
    sweep.add(machine::t3dConfig(), 64, machine::Coll::Alltoall, 512);
    sweep.run();

    for (machine::Coll op : machine::kPaperColls) {
        std::printf("--- %s ---\n", machine::collName(op).c_str());
        TableWriter t;
        t.header({"machine", "fitted from simulation", "paper Table 3",
                  "rel RMS"});
        for (const auto &cfg : machines) {
            std::vector<model::Sample> samples;
            for (int p : sweepSizes(cfg.name, opts.quick)) {
                for (Bytes m : lengths) {
                    Bytes mm = op == machine::Coll::Barrier ? 0 : m;
                    const auto &meas = sweep.get(cfg, p, op, mm);
                    samples.push_back({mm, p, meas.us()});
                    if (op == machine::Coll::Barrier)
                        break; // barrier has no m sweep
                }
            }
            model::TimingExpression fit;
            if (op == machine::Coll::Barrier)
                fit = model::fitStartupAuto(samples);
            else
                fit = model::fitPaperStyleAuto(samples);
            double err = model::relRmsError(fit, samples);
            t.row({cfg.name, fit.str(),
                   model::paper::expression(cfg.name, op).str(),
                   formatF(err, 3)});
            csv_rows.push_back({machine::collName(op), cfg.name,
                                fit.str(), formatF(err, 3)});
        }
        t.print(std::cout);
        std::printf("\n");
    }

    // Section 8 worked example.
    {
        std::printf("--- Section 8 worked example: T3D total exchange, "
                    "m = 512 B, p = 64 ---\n");
        const auto &meas = sweep.get(machine::t3dConfig(), 64,
                                     machine::Coll::Alltoall, 512);
        double paper_us =
            model::paper::expression("T3D", machine::Coll::Alltoall)
                .evalUs(512, 64);
        std::printf("paper expression -> %.2f ms (text quotes 2.86 "
                    "ms); simulated -> %.2f ms\n\n",
                    paper_us / 1000.0, meas.us() / 1000.0);
    }

    maybeWriteCsv(opts, "table3_expressions",
                  {"op", "machine", "fitted", "rel_rms"}, csv_rows);
    return 0;
}
