/**
 * @file
 * Point-to-point baseline: ping-pong latency/bandwidth curves and
 * Hockney (t0, r_inf, n_1/2) fits for the three machines.
 *
 * The paper notes that earlier benchmark work "mainly focused on
 * point-to-point communications" and that Hockney's asymptotic
 * model only characterizes pt-2-pt — this bench provides exactly
 * that baseline, so the collective results of Figs. 1-5 can be read
 * against what the raw channels can do.  Reference points from the
 * era: SP2 MPI latency ~40-50 us at ~35 MB/s; T3D ~20-35 us at
 * 120+ MB/s; Paragon ~60-90 us at ~150 MB/s.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "model/hockney.hh"

using namespace ccsim;
using namespace ccsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    quietLogging(opts.csv_dir.empty());

    printBanner("POINT-TO-POINT — ping-pong latency/bandwidth and "
                "Hockney fits",
                "One-way times between adjacent nodes; t(m) = t0 + "
                "m / r_inf.");

    auto machines = machine::paperMachines();
    auto mopt = benchMeasureOptions();

    TableWriter t;
    t.header({"m", "SP2 us", "SP2 MB/s", "T3D us", "T3D MB/s",
              "Paragon us", "Paragon MB/s"});
    std::vector<std::vector<std::string>> csv_rows;
    std::array<std::vector<model::PingPongSample>, 3> fits;

    for (Bytes m : sweepLengths(opts.quick)) {
        std::vector<std::string> row{formatBytes(m)};
        std::vector<std::string> csv{std::to_string(m)};
        for (std::size_t i = 0; i < machines.size(); ++i) {
            auto meas = harness::measurePingPong(machines[i], m, mopt);
            double us = meas.us();
            row.push_back(usCell(us));
            row.push_back(
                formatF(us > 0 ? static_cast<double>(m) / us : 0, 1));
            csv.push_back(usCell(us));
            fits[i].push_back({m, us});
        }
        t.row(row);
        csv_rows.push_back(csv);
    }
    t.print(std::cout);
    std::printf("\n--- Hockney characterizations ---\n");
    for (std::size_t i = 0; i < machines.size(); ++i) {
        auto h = model::fitHockney(fits[i]);
        std::printf("%-8s %s\n", machines[i].name.c_str(),
                    h.str().c_str());
    }
    std::printf("\nNote how little these pt-2-pt numbers predict the "
                "collective rankings\nof Figs. 1-5 — the paper's "
                "motivation for the aggregated-bandwidth metric.\n");

    maybeWriteCsv(opts, "pingpong",
                  {"m_bytes", "sp2_us", "t3d_us", "paragon_us"},
                  csv_rows);
    return 0;
}
