/**
 * @file
 * Ablation: do the 1997 algorithm choices survive faults?
 *
 * Every decision map in the paper — and every tuned table the
 * empirical tuner derives — assumes a clean machine.  This bench
 * re-runs the tuner on each paper machine under a realistic fault
 * regime (1% of links black-holed, 5% straggler nodes, recovery
 * policy "degrade", three fault universes averaged per candidate)
 * and compares the fault-conditioned winners against the clean ones
 * cell by cell.  Cells where the winner flips are exactly the places
 * a resilience-aware MPI should switch algorithms when the machine
 * starts degrading.
 *
 * The bench also doubles as the graceful-degradation acceptance
 * check: a 1% black-hole sweep over every collective on all three
 * machines must complete with ZERO FaultErrors under policy=degrade
 * (reroutes and absorbs instead of failures), and the run aborts if
 * no (machine, op) cell flips — losing that property would mean the
 * fault-conditioned tuner no longer measures anything the clean
 * tuner doesn't.
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "fault/fault_spec.hh"
#include "machine/config_io.hh"
#include "tuning/tuner.hh"
#include "util/error.hh"
#include "util/logging.hh"

using namespace ccsim;
using namespace ccsim::bench;

namespace {

/** The degraded regime every machine is re-tuned under. */
fault::FaultSpec
degradedRegime()
{
    return fault::parseFaultSpec(
        "blackhole=0.01,straggler=0.05,seed=42,policy=degrade");
}

/**
 * Acceptance sweep: every collective at one representative point,
 * under the degraded regime, on @p cfg.  Under policy=degrade this
 * must never raise FaultError — black holes reroute or absorb, and
 * stragglers stretch the makespan instead of killing the run.
 * Returns the summed DegradationReport for the table.
 */
fault::DegradationReport
zeroFailureSweep(machine::MachineConfig cfg,
                 const harness::MeasureOptions &mopt, int p, Bytes m)
{
    cfg.fault = degradedRegime();
    fault::DegradationReport total;
    for (machine::Coll op : machine::kAllColls) {
        try {
            auto meas = harness::measureCollective(
                cfg, p, op, op == machine::Coll::Barrier ? 0 : m,
                machine::Algo::Default, mopt);
            total.reroutes += meas.degradation.reroutes;
            total.extra_bytes += meas.degradation.extra_bytes;
            total.escalations += meas.degradation.escalations;
            total.absorbed += meas.degradation.absorbed;
            total.absorbed_delay += meas.degradation.absorbed_delay;
        } catch (const fault::FaultError &e) {
            fatal("degrade policy leaked a FaultError on %s %s: %s",
                  cfg.name.c_str(), machine::collKey(op).c_str(),
                  e.what());
        }
    }
    return total;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    quietLogging(true);

    printBanner("ABLATION — resilience-aware algorithm selection",
                "Re-tune each paper machine under 1% black-holed "
                "links + 5% stragglers (policy=degrade) and find the "
                "(op, p, m) cells where the clean-condition 1997 "
                "winner is no longer the right choice.");

    tuning::TuneGrid grid;
    grid.ops = {machine::Coll::Bcast, machine::Coll::Alltoall};
    grid.sizes = opts.quick ? std::vector<int>{8, 16}
                            : std::vector<int>{8, 16, 32};
    grid.lengths = opts.quick
                       ? std::vector<Bytes>{KiB, 16 * KiB, 64 * KiB}
                       : std::vector<Bytes>{256, KiB, 16 * KiB,
                                            64 * KiB};
    grid.options = benchMeasureOptions();

    tuning::TuneGrid degraded_grid = grid;
    degraded_grid.options.ensemble = 3;

    const std::vector<machine::MachineConfig> machines = {
        machine::sp2Config(), machine::t3dConfig(),
        machine::paragonConfig()};

    std::vector<std::vector<std::string>> csv;
    int total_flips = 0;
    for (const auto &clean_cfg : machines) {
        machine::MachineConfig deg_cfg = clean_cfg;
        deg_cfg.fault = degradedRegime();

        tuning::TuneResult clean =
            tuning::tuneMachine(clean_cfg, grid, opts.jobs);
        tuning::TuneResult deg =
            tuning::tuneMachine(deg_cfg, degraded_grid, opts.jobs);
        if (clean.cells.size() != deg.cells.size())
            fatal("grid mismatch between clean and degraded tunes");

        std::printf("--- %s: clean winners vs degraded winners ---\n",
                    clean_cfg.name.c_str());
        TableWriter t;
        t.header({"op", "p", "m", "clean", "clean [us]", "degraded",
                  "degraded [us]", "flip"});
        int flips = 0;
        for (std::size_t i = 0; i < clean.cells.size(); ++i) {
            const auto &c = clean.cells[i];
            const auto &d = deg.cells[i];
            bool flip = c.best_algo != d.best_algo;
            flips += flip ? 1 : 0;
            t.row({machine::collKey(c.op), std::to_string(c.p),
                   formatBytes(c.m),
                   machine::algoName(c.best_algo),
                   usCell(toMicros(c.best_time)),
                   machine::algoName(d.best_algo),
                   usCell(toMicros(d.best_time)),
                   flip ? "FLIP" : "-"});
            csv.push_back({clean_cfg.name, machine::collKey(c.op),
                           std::to_string(c.p), std::to_string(c.m),
                           machine::algoName(c.best_algo),
                           machine::algoName(d.best_algo),
                           flip ? "1" : "0",
                           std::to_string(c.best_time),
                           std::to_string(d.best_time)});
        }
        t.print(std::cout);
        std::printf("  %d of %zu cells flip under the degraded "
                    "regime\n",
                    flips, clean.cells.size());
        total_flips += flips;

        fault::DegradationReport rep = zeroFailureSweep(
            clean_cfg, degraded_grid.options, opts.quick ? 16 : 32,
            16 * KiB);
        std::printf("  acceptance: all %zu collectives completed "
                    "with zero FaultErrors (%s)\n\n",
                    machine::kAllColls.size(), rep.str().c_str());
    }

    if (total_flips == 0)
        fatal("no (machine, op, p, m) cell flipped winners under "
              "faults — the fault-conditioned tuner is not "
              "conditioning on anything");
    std::printf("TOTAL: %d winner flips across %zu machines — the "
                "1997 decision maps are NOT fault-invariant.\n",
                total_flips, machines.size());

    maybeWriteCsv(opts, "ablation_resilience",
                  {"machine", "op", "p", "m", "clean_winner",
                   "fault_winner", "flip", "clean_ps", "fault_ps"},
                  csv);
    return 0;
}
