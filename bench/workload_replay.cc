/**
 * @file
 * Workload replay: the bundled application traces across machines.
 *
 * The figure benches measure isolated collectives; this bench runs
 * whole recorded applications (2-D stencil halo exchange, SUMMA
 * matrix multiply, the STAP radar pipeline — see workloads/) on the
 * SP2, T3D, and Paragon, at message scales 1/4x, 1x, and 4x, and
 * reports per-machine makespan plus the compute/communication split
 * from the activity trace.  A second pass adds 1 % stragglers
 * (deterministic seed) to show how each machine's collective stack
 * amplifies a slow node across a full application rather than a
 * single operation.
 *
 * Replay points run on the sweep worker pool (--jobs); output is
 * identical at any job count.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "replay/replayer.hh"
#include "replay/trace_parser.hh"

using namespace ccsim;
using namespace ccsim::bench;

namespace {

const char *const kWorkloads[] = {"stencil2d_p16", "summa_p16",
                                  "stap_p16"};

fault::FaultSpec
stragglers1pct()
{
    fault::FaultSpec f;
    // At 16 nodes a 1 % Bernoulli draw usually selects nobody; this
    // seed deterministically yields one straggler so the contrast
    // is visible.
    f.seed = 1;
    f.straggler_rate = 0.01;
    f.straggler_factor = 2.0;
    return f;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    quietLogging(opts.csv_dir.empty());

    printBanner("WORKLOAD REPLAY — recorded applications across "
                "machines",
                "Makespan and compute/comm split of the bundled "
                "traces on the three paper machines.");

    const std::vector<double> scales =
        opts.quick ? std::vector<double>{1.0}
                   : std::vector<double>{0.25, 1.0, 4.0};
    harness::SweepRunner runner(opts.jobs);
    std::vector<std::vector<std::string>> csv_rows;

    for (const char *w : kWorkloads) {
        std::string path =
            std::string(CCSIM_WORKLOAD_DIR) + "/" + w + ".trace";
        replay::Program prog = replay::TraceParser::parseFile(path);

        std::printf("--- %s (np %d, %zu actions) ---\n", w, prog.np,
                    prog.actions());
        TableWriter t;
        t.header({"machine", "scale", "faults", "makespan",
                  "compute/rank", "comm/rank", "comm %"});

        // Clean and 1 %-straggler points, machines outermost so the
        // table reads per machine.
        std::vector<replay::ReplayPoint> points;
        for (const auto &base : machine::paperMachines()) {
            for (bool faulty : {false, true}) {
                for (double scale : scales) {
                    replay::ReplayPoint pt;
                    pt.cfg = base;
                    if (faulty)
                        pt.cfg.fault = stragglers1pct();
                    pt.options.scale = scale;
                    pt.options.collect_trace = true;
                    points.push_back(std::move(pt));
                }
            }
        }
        auto results = replay::replaySweep(prog, points, runner);

        for (std::size_t i = 0; i < results.size(); ++i) {
            const auto &r = results[i];
            double compute_us = 0, comm_us = 0;
            for (const auto &[rank, s] : r.trace.summarize()) {
                compute_us += toMicros(s.compute);
                comm_us += toMicros(s.comm());
            }
            compute_us /= r.np;
            comm_us /= r.np;
            double busy = compute_us + comm_us;
            double comm_pct =
                busy > 0 ? 100.0 * comm_us / busy : 0.0;
            bool faulty = points[i].cfg.fault.enabled();
            t.row({r.machine, formatG(r.scale),
                   faulty ? "1% stragglers" : "-",
                   formatTime(r.makespan()), usCell(compute_us),
                   usCell(comm_us), formatF(comm_pct, 1)});
            csv_rows.push_back(
                {std::string(w), r.machine, formatG(r.scale),
                 faulty ? "1" : "0",
                 std::to_string(r.makespan()), formatF(compute_us, 3),
                 formatF(comm_us, 3)});
        }
        t.print(std::cout);
        std::printf("\n");
    }

    maybeWriteCsv(opts, "workload_replay",
                  {"workload", "machine", "scale", "stragglers",
                   "makespan_ps", "compute_us_per_rank",
                   "comm_us_per_rank"},
                  csv_rows);
    return 0;
}
