/**
 * @file
 * Ablation: tuned auto-selection vs the 1997 defaults.
 *
 * Section 8 of the paper blames the O(p)-startup collectives on the
 * algorithm each vendor MPI happened to ship.  This bench asks the
 * follow-up question: how much time would a tuned MPI — one that
 * picks the best algorithm per (operation, p, m) the way Open MPI's
 * tuned component does — have recovered on each machine?
 *
 * For every paper machine (SP2, T3D, Paragon) it runs the empirical
 * tuner over a grid, prints the per-operation regret of the
 * machine's configured 1997 defaults against the tuned winners, and
 * then re-measures every grid point through Algo::Auto with the
 * tuned table attached, checking that the auto path reproduces the
 * explicit per-point best measurement byte-for-byte.
 */

#include <cstdio>
#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "bench_common.hh"
#include "machine/config_io.hh"
#include "tuning/tuner.hh"
#include "util/error.hh"
#include "util/logging.hh"

using namespace ccsim;
using namespace ccsim::bench;

namespace {

/** Per-operation totals accumulated over a machine's regret cells. */
struct OpTotals
{
    Time def = 0;
    Time best = 0;
    int cells = 0;
};

std::string
pctCell(double frac)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f%%", frac * 100.0);
    return buf;
}

/**
 * Re-measure every tuned cell through Algo::Auto with the tuned
 * table attached and insist on byte-identity with the explicit
 * best-algorithm measurement — the property that makes `auto` safe
 * to default to everywhere.
 */
void
verifyAutoIdentity(const machine::MachineConfig &cfg,
                   const tuning::TuneResult &res,
                   const harness::MeasureOptions &mopt)
{
    machine::MachineConfig tuned = cfg;
    tuned.selection =
        std::make_shared<tuning::SelectionTable>(res.table);

    for (const auto &cell : res.cells) {
        auto via_auto =
            harness::measureCollective(tuned, cell.p, cell.op, cell.m,
                                       machine::Algo::Auto, mopt);
        auto expl =
            harness::measureCollective(cfg, cell.p, cell.op, cell.m,
                                       cell.best_algo, mopt);
        if (via_auto.algo != expl.algo ||
            via_auto.max_time != expl.max_time ||
            via_auto.min_time != expl.min_time ||
            via_auto.mean_time != expl.mean_time) {
            fatal("auto-selection mismatch on %s: %s p=%d m=%lld "
                  "resolved to %s (%lld ps), explicit best %s "
                  "(%lld ps)",
                  cfg.name.c_str(),
                  machine::collName(cell.op).c_str(), cell.p,
                  static_cast<long long>(cell.m),
                  machine::algoName(via_auto.algo).c_str(),
                  static_cast<long long>(via_auto.max_time),
                  machine::algoName(cell.best_algo).c_str(),
                  static_cast<long long>(expl.max_time));
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    quietLogging(true);

    printBanner("ABLATION — tuned auto-selection vs 1997 defaults",
                "Empirically tune each paper machine, report the "
                "regret of its configured algorithms, and verify "
                "Algo::Auto reproduces the tuned winners exactly.");

    tuning::TuneGrid grid;
    grid.sizes = opts.quick ? std::vector<int>{4, 16}
                            : std::vector<int>{4, 16, 64};
    grid.lengths = opts.quick
                       ? std::vector<Bytes>{64, 16 * KiB}
                       : std::vector<Bytes>{4, 256, 4 * KiB, 64 * KiB};
    grid.options = benchMeasureOptions();

    const std::vector<machine::MachineConfig> machines = {
        machine::sp2Config(), machine::t3dConfig(),
        machine::paragonConfig()};

    std::vector<std::vector<std::string>> csv;
    for (const auto &cfg : machines) {
        tuning::TuneResult res =
            tuning::tuneMachine(cfg, grid, opts.jobs);

        std::map<int, OpTotals> by_op;
        for (const auto &cell : res.cells) {
            auto &t = by_op[static_cast<int>(cell.op)];
            t.def += cell.default_time;
            t.best += cell.best_time;
            t.cells++;
            csv.push_back({cfg.name, machine::collKey(cell.op),
                           std::to_string(cell.p),
                           std::to_string(cell.m),
                           machine::algoName(cell.default_algo),
                           machine::algoName(cell.best_algo),
                           std::to_string(cell.default_time),
                           std::to_string(cell.best_time),
                           pctCell(cell.regret())});
        }

        std::printf("--- %s: regret of the 1997 defaults ---\n",
                    cfg.name.c_str());
        TableWriter t;
        t.header({"operation", "default [us]", "tuned [us]",
                  "regret", "cells"});
        for (auto op : machine::kAllColls) {
            auto it = by_op.find(static_cast<int>(op));
            if (it == by_op.end())
                continue;
            const OpTotals &tot = it->second;
            double frac =
                tot.best > 0
                    ? static_cast<double>(tot.def - tot.best) /
                          static_cast<double>(tot.best)
                    : 0.0;
            t.row({machine::collName(op), usCell(toMicros(tot.def)),
                   usCell(toMicros(tot.best)), pctCell(frac),
                   std::to_string(tot.cells)});
        }
        t.row({"TOTAL", usCell(toMicros(res.total_default)),
               usCell(toMicros(res.total_best)),
               pctCell(res.totalRegret()),
               std::to_string(res.cells.size())});
        t.print(std::cout);

        const auto &worst = res.worstCell();
        std::printf("  worst cell: %s p=%d m=%s — %s %s vs tuned "
                    "%s %s (%s regret)\n",
                    machine::collName(worst.op).c_str(), worst.p,
                    formatBytes(worst.m).c_str(),
                    machine::algoName(worst.default_algo).c_str(),
                    usCell(toMicros(worst.default_time)).c_str(),
                    machine::algoName(worst.best_algo).c_str(),
                    usCell(toMicros(worst.best_time)).c_str(),
                    pctCell(worst.regret()).c_str());

        verifyAutoIdentity(cfg, res, grid.options);
        std::printf("  auto == explicit best on all %zu cells "
                    "(byte-identical)\n\n",
                    res.cells.size());
    }

    maybeWriteCsv(opts, "ablation_autoselect",
                  {"machine", "op", "p", "m", "default_algo",
                   "best_algo", "default_ps", "best_ps", "regret"},
                  csv);
    return 0;
}
