/**
 * @file
 * Figure 1 reproduction: startup latencies T0(p) of six MPI
 * collective operations (broadcast, total exchange, scatter, gather,
 * scan, reduce) on the SP2, T3D, and Paragon, p = 2..128 (T3D up to
 * 64).  T0 is approximated by the messaging time of a short (4-byte)
 * message, per the paper's Section 3.
 *
 * Output: one panel per operation; rows are machine sizes, columns
 * are measured [sim] vs the paper's Table 3 prediction [paper] for
 * each machine.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_common.hh"
#include "machine/machine_config.hh"
#include "util/table.hh"

using namespace ccsim;
using namespace ccsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    quietLogging(!opts.csv_dir.empty() ? false : true);

    printBanner("FIGURE 1 — Startup latencies T0(p) [microseconds]",
                "Six collectives, short message (m = 4 B), machine "
                "sizes 2..128.");

    const std::array<machine::Coll, 6> ops = {
        machine::Coll::Bcast,  machine::Coll::Alltoall,
        machine::Coll::Scatter, machine::Coll::Gather,
        machine::Coll::Scan,   machine::Coll::Reduce,
    };
    const char panel[] = {'a', 'b', 'c', 'd', 'e', 'f'};

    auto machines = machine::paperMachines();

    // Declare every (op, p, machine) point, then simulate them all
    // on the sweep worker pool before any printing.
    SweepSession sweep(opts, benchMeasureOptions());
    for (machine::Coll op : ops)
        for (const auto &cfg : machines)
            for (int p : sweepSizes(cfg.name, opts.quick))
                sweep.addStartup(cfg, p, op);
    sweep.run();

    for (std::size_t oi = 0; oi < ops.size(); ++oi) {
        machine::Coll op = ops[oi];
        std::printf("--- Fig. 1%c: %s ---\n", panel[oi],
                    machine::collName(op).c_str());

        TableWriter t;
        t.header({"p", "SP2 sim", "SP2 paper", "T3D sim", "T3D paper",
                  "Paragon sim", "Paragon paper"});
        std::vector<std::vector<std::string>> csv_rows;

        for (int p : sweepSizes("SP2", opts.quick)) {
            std::vector<std::string> row{std::to_string(p)};
            std::vector<std::string> csv{std::to_string(p)};
            for (const auto &cfg : machines) {
                auto sizes = sweepSizes(cfg.name, opts.quick);
                bool in_range =
                    std::find(sizes.begin(), sizes.end(), p) !=
                    sizes.end();
                if (!in_range) {
                    row.push_back("-");
                    row.push_back("-");
                    csv.push_back("");
                    continue;
                }
                const auto &meas = sweep.getStartup(cfg, p, op);
                row.push_back(usCell(meas.us()));
                row.push_back(paperUsCell(cfg.name, op,
                                          harness::kStartupMessageBytes,
                                          p));
                csv.push_back(usCell(meas.us()));
            }
            t.row(row);
            csv_rows.push_back(csv);
        }
        t.print(std::cout);
        std::printf("\n");
        std::string slug = machine::collName(op);
        std::replace(slug.begin(), slug.end(), ' ', '_');
        maybeWriteCsv(opts, "fig1_" + slug,
                      {"p", "sp2_us", "t3d_us", "paragon_us"}, csv_rows);
    }
    return 0;
}
