/**
 * @file
 * Ablation: the special hardware the paper credits for each
 * machine's signature behaviour.
 *
 *  - T3D hardwired barrier OFF -> the 3 us barrier becomes a
 *    software dissemination barrier (the paper: "at least 30 times
 *    faster than the SP2 or Paragon" with it on);
 *  - T3D block-transfer engine OFF -> long-message transfers pay
 *    the memory-copy path;
 *  - Paragon message coprocessor OFF -> the sender eats the whole
 *    injection copy and the long-message advantage over the SP2
 *    shrinks.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"

using namespace ccsim;
using namespace ccsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    quietLogging(true);

    printBanner("ABLATION — special hardware mechanisms",
                "T3D barrier tree & BLT; Paragon message "
                "coprocessor.");

    std::vector<int> sizes = opts.quick
                                 ? std::vector<int>{4, 16}
                                 : std::vector<int>{4, 16, 64};

    // The variant configs keep their preset names, so sweep tags
    // tell the on/off pairs apart.
    auto with_hw = machine::t3dConfig();
    auto without_hw = machine::t3dConfig();
    without_hw.hardware_barrier = false;
    without_hw.setAlgorithm(machine::Coll::Barrier,
                            machine::Algo::Dissemination);
    // Software barrier pays the same per-stage cost the other
    // machines' MPICH-style barriers pay.
    without_hw.costsFor(machine::Coll::Barrier).per_stage =
        microseconds(40);

    auto with_blt = machine::t3dConfig();
    auto without_blt = machine::t3dConfig();
    without_blt.transport.blt_enabled = false;
    const std::vector<Bytes> blt_lengths = {4 * KiB, 16 * KiB,
                                            64 * KiB};

    auto with_cp = machine::paragonConfig();
    auto without_cp = machine::paragonConfig();
    without_cp.transport.coprocessor_overlap = 0.0;
    const std::vector<double> copy_bws = {400.0, 170.0};
    const std::vector<Bytes> cp_lengths = {1 * KiB, 16 * KiB,
                                           64 * KiB};

    SweepSession sweep(opts, benchMeasureOptions());
    for (int p : sizes) {
        sweep.add(with_hw, p, machine::Coll::Barrier, 0,
                  machine::Algo::Default, "hw");
        sweep.add(without_hw, p, machine::Coll::Barrier, 0,
                  machine::Algo::Default, "sw");
    }
    for (Bytes m : blt_lengths) {
        sweep.add(with_blt, 32, machine::Coll::Bcast, m,
                  machine::Algo::Default, "blt-on");
        sweep.add(without_blt, 32, machine::Coll::Bcast, m,
                  machine::Algo::Default, "blt-off");
    }
    for (double copy_bw : copy_bws) {
        with_cp.transport.copy_bandwidth_mbs = copy_bw;
        without_cp.transport.copy_bandwidth_mbs = copy_bw;
        std::string bw_tag = formatF(copy_bw, 0);
        for (Bytes m : cp_lengths) {
            sweep.add(with_cp, 16, machine::Coll::Scatter, m,
                      machine::Algo::Default, "cp-on-" + bw_tag);
            sweep.add(without_cp, 16, machine::Coll::Scatter, m,
                      machine::Algo::Default, "cp-off-" + bw_tag);
        }
    }
    sweep.run();

    {
        std::printf("--- T3D hardwired barrier [us] ---\n");
        TableWriter t;
        t.header({"p", "hardwired", "software", "speedup"});
        for (int p : sizes) {
            const auto &hw =
                sweep.get(with_hw, p, machine::Coll::Barrier, 0,
                          machine::Algo::Default, "hw");
            const auto &sw =
                sweep.get(without_hw, p, machine::Coll::Barrier, 0,
                          machine::Algo::Default, "sw");
            t.row({std::to_string(p), usCell(hw.us()), usCell(sw.us()),
                   formatF(sw.us() / hw.us(), 1) + "x"});
        }
        t.print(std::cout);
        std::printf("\n");
    }

    {
        std::printf("--- T3D block-transfer engine, broadcast [us] "
                    "---\n");
        TableWriter t;
        t.header({"m", "BLT on", "BLT off", "saving"});
        for (Bytes m : blt_lengths) {
            const auto &on =
                sweep.get(with_blt, 32, machine::Coll::Bcast, m,
                          machine::Algo::Default, "blt-on");
            const auto &off =
                sweep.get(without_blt, 32, machine::Coll::Bcast, m,
                          machine::Algo::Default, "blt-off");
            double save =
                off.us() > 0 ? 100.0 * (off.us() - on.us()) / off.us()
                             : 0;
            t.row({formatBytes(m), usCell(on.us()), usCell(off.us()),
                   formatF(save, 1) + "%"});
        }
        t.print(std::cout);
        std::printf("\n");
    }

    {
        std::printf("--- Paragon message coprocessor [us] ---\n");
        // The coprocessor relieves the *sending* processor, so it
        // shows most where one node paces many injections (scatter
        // root) — and it compounds when node memory is slower than
        // the i860 XP's streaming mode (second table: 170 MB/s
        // copies, the non-streaming rate).
        for (double copy_bw : copy_bws) {
            std::string bw_tag = formatF(copy_bw, 0);
            TableWriter t;
            t.header({"m", "coprocessor on", "off", "penalty"});
            for (Bytes m : cp_lengths) {
                const auto &on = sweep.get(
                    with_cp, 16, machine::Coll::Scatter, m,
                    machine::Algo::Default, "cp-on-" + bw_tag);
                const auto &off = sweep.get(
                    without_cp, 16, machine::Coll::Scatter, m,
                    machine::Algo::Default, "cp-off-" + bw_tag);
                double pen =
                    on.us() > 0
                        ? 100.0 * (off.us() - on.us()) / on.us()
                        : 0;
                t.row({formatBytes(m), usCell(on.us()),
                       usCell(off.us()), formatF(pen, 1) + "%"});
            }
            std::printf("  scatter, p = 16, copies at %.0f MB/s\n",
                        copy_bw);
            t.print(std::cout);
        }
        std::printf("\n");
    }
    return 0;
}
