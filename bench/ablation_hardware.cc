/**
 * @file
 * Ablation: the special hardware the paper credits for each
 * machine's signature behaviour.
 *
 *  - T3D hardwired barrier OFF -> the 3 us barrier becomes a
 *    software dissemination barrier (the paper: "at least 30 times
 *    faster than the SP2 or Paragon" with it on);
 *  - T3D block-transfer engine OFF -> long-message transfers pay
 *    the memory-copy path;
 *  - Paragon message coprocessor OFF -> the sender eats the whole
 *    injection copy and the long-message advantage over the SP2
 *    shrinks.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"

using namespace ccsim;
using namespace ccsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    quietLogging(true);

    printBanner("ABLATION — special hardware mechanisms",
                "T3D barrier tree & BLT; Paragon message "
                "coprocessor.");

    auto mopt = benchMeasureOptions();
    std::vector<int> sizes = opts.quick
                                 ? std::vector<int>{4, 16}
                                 : std::vector<int>{4, 16, 64};

    {
        std::printf("--- T3D hardwired barrier [us] ---\n");
        auto with_hw = machine::t3dConfig();
        auto without = machine::t3dConfig();
        without.hardware_barrier = false;
        without.setAlgorithm(machine::Coll::Barrier,
                             machine::Algo::Dissemination);
        // Software barrier pays the same per-stage cost the other
        // machines' MPICH-style barriers pay.
        without.costsFor(machine::Coll::Barrier).per_stage =
            microseconds(40);

        TableWriter t;
        t.header({"p", "hardwired", "software", "speedup"});
        for (int p : sizes) {
            auto hw = harness::measureCollective(
                with_hw, p, machine::Coll::Barrier, 0,
                machine::Algo::Default, mopt);
            auto sw = harness::measureCollective(
                without, p, machine::Coll::Barrier, 0,
                machine::Algo::Default, mopt);
            t.row({std::to_string(p), usCell(hw.us()), usCell(sw.us()),
                   formatF(sw.us() / hw.us(), 1) + "x"});
        }
        t.print(std::cout);
        std::printf("\n");
    }

    {
        std::printf("--- T3D block-transfer engine, broadcast [us] "
                    "---\n");
        auto with_blt = machine::t3dConfig();
        auto without = machine::t3dConfig();
        without.transport.blt_enabled = false;

        TableWriter t;
        t.header({"m", "BLT on", "BLT off", "saving"});
        for (Bytes m : {Bytes(4 * KiB), Bytes(16 * KiB),
                        Bytes(64 * KiB)}) {
            auto on = harness::measureCollective(
                with_blt, 32, machine::Coll::Bcast, m,
                machine::Algo::Default, mopt);
            auto off = harness::measureCollective(
                without, 32, machine::Coll::Bcast, m,
                machine::Algo::Default, mopt);
            double save =
                off.us() > 0 ? 100.0 * (off.us() - on.us()) / off.us()
                             : 0;
            t.row({formatBytes(m), usCell(on.us()), usCell(off.us()),
                   formatF(save, 1) + "%"});
        }
        t.print(std::cout);
        std::printf("\n");
    }

    {
        std::printf("--- Paragon message coprocessor [us] ---\n");
        auto with_cp = machine::paragonConfig();
        auto without = machine::paragonConfig();
        without.transport.coprocessor_overlap = 0.0;

        // The coprocessor relieves the *sending* processor, so it
        // shows most where one node paces many injections (scatter
        // root) — and it compounds when node memory is slower than
        // the i860 XP's streaming mode (second table: 170 MB/s
        // copies, the non-streaming rate).
        for (double copy_bw : {400.0, 170.0}) {
            with_cp.transport.copy_bandwidth_mbs = copy_bw;
            without.transport.copy_bandwidth_mbs = copy_bw;
            TableWriter t;
            t.header({"m", "coprocessor on", "off", "penalty"});
            for (Bytes m : {Bytes(1 * KiB), Bytes(16 * KiB),
                            Bytes(64 * KiB)}) {
                auto on = harness::measureCollective(
                    with_cp, 16, machine::Coll::Scatter, m,
                    machine::Algo::Default, mopt);
                auto off = harness::measureCollective(
                    without, 16, machine::Coll::Scatter, m,
                    machine::Algo::Default, mopt);
                double pen =
                    on.us() > 0
                        ? 100.0 * (off.us() - on.us()) / on.us()
                        : 0;
                t.row({formatBytes(m), usCell(on.us()),
                       usCell(off.us()), formatF(pen, 1) + "%"});
            }
            std::printf("  scatter, p = 16, copies at %.0f MB/s\n",
                        copy_bw);
            t.print(std::cout);
        }
        std::printf("\n");
    }
    return 0;
}
