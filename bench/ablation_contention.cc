/**
 * @file
 * Ablation: network link contention and topology.
 *
 * Total exchange is the bisection-bandwidth stress test of the
 * paper's evaluation.  This bench shows (1) how much of the measured
 * total-exchange time is link contention, by disabling the
 * path-reservation occupancy model, and (2) how the three
 * topologies (omega, torus, mesh) compare when every *other*
 * parameter is identical — isolating the wiring from the software.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"

using namespace ccsim;
using namespace ccsim::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    quietLogging(true);

    printBanner("ABLATION — link contention and topology",
                "Total exchange with the occupancy model on/off, and "
                "across topologies.");

    const Bytes m = opts.quick ? 4 * KiB : 64 * KiB;
    std::vector<int> sizes = opts.quick
                                 ? std::vector<int>{8, 16}
                                 : std::vector<int>{16, 32, 64};

    // Declare every point of both panels up front; tags separate the
    // contention-off variants from the stock machines (same name).
    SweepSession sweep(opts, benchMeasureOptions());
    auto makeTopo = [](machine::TopologyKind kind,
                       const std::string &name) {
        auto cfg = machine::t3dConfig();
        cfg.name = name;
        cfg.topology = kind;
        cfg.hardware_barrier = false;
        cfg.setAlgorithm(machine::Coll::Barrier,
                         machine::Algo::Dissemination);
        return cfg;
    };
    std::vector<machine::MachineConfig> topo_cfgs = {
        makeTopo(machine::TopologyKind::Mesh2D, "mesh2d"),
        makeTopo(machine::TopologyKind::Torus3D, "torus3d"),
        makeTopo(machine::TopologyKind::Omega, "omega r4"),
        makeTopo(machine::TopologyKind::Hypercube, "hypercube"),
        makeTopo(machine::TopologyKind::FullyConnected, "crossbar"),
    };
    for (const auto &base : machine::paperMachines()) {
        auto off_cfg = base;
        off_cfg.network.contention = false;
        for (int p : sizes) {
            sweep.add(base, p, machine::Coll::Alltoall, m,
                      machine::Algo::Default, "on");
            sweep.add(off_cfg, p, machine::Coll::Alltoall, m,
                      machine::Algo::Default, "off");
        }
    }
    for (const auto &c : topo_cfgs)
        for (int p : sizes)
            sweep.add(c, p, machine::Coll::Alltoall, m);
    sweep.run();

    {
        std::printf("--- contention on/off: 64 KB total exchange [us] "
                    "---\n");
        TableWriter t;
        t.header({"machine", "p", "contended", "contention-free",
                  "inflation", "hottest link"});
        for (const auto &base : machine::paperMachines()) {
            for (int p : sizes) {
                const auto &on =
                    sweep.get(base, p, machine::Coll::Alltoall, m,
                              machine::Algo::Default, "on");
                const auto &off =
                    sweep.get(base, p, machine::Coll::Alltoall, m,
                              machine::Algo::Default, "off");
                double infl =
                    off.us() > 0 ? on.us() / off.us() : 0.0;

                // Re-run one call with the machine kept alive to read
                // the link-utilization summary.
                machine::Machine live(base, p);
                auto prog = [&](int rank) -> sim::Task<void> {
                    mpi::Comm comm(live, rank);
                    co_await comm.alltoall(m);
                };
                for (int r = 0; r < p; ++r)
                    live.sim().spawn(prog(r));
                live.run();
                auto util = live.network().utilization(
                    live.sim().now());

                t.row({base.name, std::to_string(p), usCell(on.us()),
                       usCell(off.us()), formatF(infl, 2) + "x",
                       formatF(util.max * 100.0, 0) + "% busy"});
            }
        }
        t.print(std::cout);
        std::printf("\n");
    }

    {
        std::printf("--- topology shoot-out (identical node software, "
                    "300 MB/s links) ---\n");
        TableWriter t;
        std::vector<std::string> hdr{"p"};
        for (const auto &c : topo_cfgs)
            hdr.push_back(c.name);
        t.header(hdr);
        for (int p : sizes) {
            std::vector<std::string> row{std::to_string(p)};
            for (const auto &c : topo_cfgs)
                row.push_back(usCell(
                    sweep.get(c, p, machine::Coll::Alltoall, m).us()));
            t.row(row);
        }
        t.print(std::cout);
        std::printf("(64 KB total exchange [us]; lower is better — "
                    "the mesh saturates first,\nthe crossbar bounds "
                    "what zero contention would give)\n\n");
    }
    return 0;
}
