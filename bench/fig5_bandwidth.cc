/**
 * @file
 * Figure 5 reproduction: aggregated bandwidths R_inf(p) of six MPI
 * collectives on p in {16, 32, 64} nodes of each machine, in MB/s.
 *
 * R_inf(p) = f(m, p) / D(m, p) as m -> infinity (Section 3, Eq. 4).
 * The simulator estimate takes the finite-difference per-byte slope
 * between the two largest message lengths (16 KB and 64 KB) and
 * divides the aggregation factor F(p) by it; the paper column
 * evaluates the same limit on the Table 3 closed forms.
 *
 * Key spot check (abstract): 64-node total exchange reaches 1.745,
 * 0.879, and 0.818 GB/s on the T3D, Paragon, and SP2.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hh"

using namespace ccsim;
using namespace ccsim::bench;

namespace {

const Bytes kSlopeLo = 16 * KiB;
const Bytes kSlopeHi = 64 * KiB;

/** Declare the two points the finite-difference slope needs. */
void
addSlopePoints(SweepSession &sweep, const machine::MachineConfig &cfg,
               int p, machine::Coll op)
{
    sweep.add(cfg, p, op, kSlopeLo);
    sweep.add(cfg, p, op, kSlopeHi);
}

/** Simulated per-byte slope (us/B) between 16 KB and 64 KB. */
double
simPerByteUs(const SweepSession &sweep,
             const machine::MachineConfig &cfg, int p, machine::Coll op)
{
    const auto &lo = sweep.get(cfg, p, op, kSlopeLo);
    const auto &hi = sweep.get(cfg, p, op, kSlopeHi);
    return (hi.us() - lo.us()) / static_cast<double>(kSlopeHi - kSlopeLo);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = BenchOptions::parse(argc, argv);
    quietLogging(opts.csv_dir.empty());

    printBanner("FIGURE 5 — Aggregated bandwidths R_inf(p) [MB/s]",
                "Six collectives, machine sizes 16 / 32 / 64.");

    const std::array<machine::Coll, 6> ops = {
        machine::Coll::Bcast,  machine::Coll::Alltoall,
        machine::Coll::Scatter, machine::Coll::Gather,
        machine::Coll::Scan,   machine::Coll::Reduce,
    };
    const char panel[] = {'a', 'b', 'c', 'd', 'e', 'f'};
    std::vector<int> sizes = opts.quick ? std::vector<int>{16}
                                        : std::vector<int>{16, 32, 64};

    auto machines = machine::paperMachines();

    SweepSession sweep(opts, benchMeasureOptions());
    for (machine::Coll op : ops)
        for (int p : sizes)
            for (const auto &cfg : machines)
                addSlopePoints(sweep, cfg, p, op);
    for (const auto &cfg : machines) // abstract spot check
        addSlopePoints(sweep, cfg, 64, machine::Coll::Alltoall);
    sweep.run();

    std::vector<std::vector<std::string>> csv_rows;

    for (std::size_t oi = 0; oi < ops.size(); ++oi) {
        machine::Coll op = ops[oi];
        std::printf("--- Fig. 5%c: %s ---\n", panel[oi],
                    machine::collName(op).c_str());

        TableWriter t;
        t.header({"p", "SP2 sim", "SP2 paper", "T3D sim", "T3D paper",
                  "Paragon sim", "Paragon paper"});
        for (int p : sizes) {
            std::vector<std::string> row{std::to_string(p)};
            for (const auto &cfg : machines) {
                double slope = simPerByteUs(sweep, cfg, p, op);
                double r_sim =
                    slope > 0
                        ? model::aggregationFactor(op, p) / slope
                        : 0.0;
                row.push_back(formatF(r_sim, 1));
                if (model::paper::hasExpression(cfg.name, op)) {
                    double r_paper =
                        model::paper::expression(cfg.name, op)
                            .aggregatedBandwidthMBs(op, p);
                    row.push_back(formatF(r_paper, 1));
                } else {
                    row.push_back("-");
                }
                csv_rows.push_back({machine::collName(op), cfg.name,
                                    std::to_string(p),
                                    formatF(r_sim, 1)});
            }
            t.row(row);
        }
        t.print(std::cout);
        std::printf("\n");
    }

    std::printf("--- Abstract spot check: 64-node total exchange "
                "aggregated bandwidth ---\n");
    TableWriter t;
    t.header({"machine", "sim MB/s", "paper MB/s"});
    for (const auto &cfg : machines) {
        double slope =
            simPerByteUs(sweep, cfg, 64, machine::Coll::Alltoall);
        double r_sim =
            slope > 0 ? model::aggregationFactor(machine::Coll::Alltoall,
                                                 64) /
                            slope
                      : 0.0;
        t.row({cfg.name, formatF(r_sim, 0),
               formatF(model::paper::alltoallBandwidth64MBs(cfg.name),
                       0)});
    }
    t.print(std::cout);
    std::printf("\n");

    maybeWriteCsv(opts, "fig5_bandwidth",
                  {"op", "machine", "p", "r_inf_mbs"}, csv_rows);
    return 0;
}
