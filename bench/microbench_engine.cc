/**
 * @file
 * google-benchmark microbenchmarks of the simulation engine itself:
 * event-queue throughput, coroutine spawn/switch cost, network
 * routing cost, and end-to-end cost of simulating one collective.
 * These bound how large a sweep the figure benches can afford.
 */

#include <benchmark/benchmark.h>

#include "harness/measure.hh"
#include "machine/machine.hh"
#include "mpi/comm.hh"
#include "net/mesh2d.hh"
#include "net/network.hh"
#include "net/omega.hh"
#include "net/torus3d.hh"
#include "sim/simulator.hh"

namespace {

using namespace ccsim;
using namespace ccsim::time_literals;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::EventQueue q;
        int sink = 0;
        for (int i = 0; i < n; ++i)
            q.schedule(i % 977, [&sink] { ++sink; });
        while (!q.empty())
            q.runNext();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(65536);

void
BM_CoroutineSpawnResume(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::Simulator s;
        auto prog = [&s]() -> sim::Task<void> {
            for (int i = 0; i < 8; ++i)
                co_await s.delay(1 * NS);
        };
        for (int i = 0; i < n; ++i)
            s.spawn(prog());
        s.run();
    }
    state.SetItemsProcessed(state.iterations() * n * 8);
}
BENCHMARK(BM_CoroutineSpawnResume)->Arg(64)->Arg(1024);

template <typename Topo, typename... Args>
void
routeAllPairs(benchmark::State &state, Args... args)
{
    Topo topo(args...);
    std::vector<net::LinkId> path;
    for (auto _ : state) {
        for (int s = 0; s < topo.numNodes(); ++s) {
            for (int d = 0; d < topo.numNodes(); ++d) {
                if (s == d)
                    continue;
                path.clear();
                topo.route(s, d, path);
                benchmark::DoNotOptimize(path.data());
            }
        }
    }
    state.SetItemsProcessed(state.iterations() * topo.numNodes() *
                            (topo.numNodes() - 1));
}

void
BM_RouteMesh2D(benchmark::State &state)
{
    routeAllPairs<net::Mesh2D>(state, 8, 8);
}
BENCHMARK(BM_RouteMesh2D);

void
BM_RouteTorus3D(benchmark::State &state)
{
    routeAllPairs<net::Torus3D>(state, 4, 4, 4);
}
BENCHMARK(BM_RouteTorus3D);

void
BM_RouteOmega(benchmark::State &state)
{
    routeAllPairs<net::Omega>(state, 64, 4);
}
BENCHMARK(BM_RouteOmega);

void
BM_NetworkTransfer(benchmark::State &state)
{
    net::NetworkParams np;
    np.link_bandwidth_mbs = 300;
    np.hop_latency = 20 * NS;
    net::Network net(std::make_unique<net::Torus3D>(4, 4, 4), np);
    Time now = 0;
    for (auto _ : state) {
        for (int s = 0; s < 64; ++s)
            now = std::max(now,
                           net.transfer(s, (s + 17) % 64, 4096, now));
        benchmark::DoNotOptimize(now);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_NetworkTransfer);

void
BM_SimulateCollective(benchmark::State &state)
{
    const int p = static_cast<int>(state.range(0));
    for (auto _ : state) {
        auto meas = harness::measureCollective(
            machine::t3dConfig(), p, machine::Coll::Alltoall, 1024,
            machine::Algo::Default, harness::MeasureOptions{1, 1, 0});
        benchmark::DoNotOptimize(meas.max_time);
    }
    state.SetItemsProcessed(state.iterations() * p * (p - 1));
}
BENCHMARK(BM_SimulateCollective)->Arg(8)->Arg(32);

} // namespace

BENCHMARK_MAIN();
