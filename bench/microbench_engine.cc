/**
 * @file
 * google-benchmark microbenchmarks of the simulation engine itself:
 * event-queue throughput, callback allocation (inline vs heap
 * SmallFn storage), coroutine spawn/switch cost, network routing
 * cost (route-cache hit vs miss), and end-to-end cost of simulating
 * one collective.  These bound how large a sweep the figure benches
 * can afford.
 *
 * After the registered benchmarks run, main() executes one
 * representative parallel sweep and writes its throughput to
 * BENCH_sweep.json (points, wall seconds, points/sec, jobs) so CI
 * can track sweep-engine performance across commits.
 */

#include <cstdio>

#include <benchmark/benchmark.h>

#include "harness/measure.hh"
#include "harness/sweep.hh"
#include "machine/machine.hh"
#include "mpi/comm.hh"
#include "net/dragonfly.hh"
#include "net/fat_tree.hh"
#include "net/mesh2d.hh"
#include "net/network.hh"
#include "net/omega.hh"
#include "net/torus3d.hh"
#include "sim/simulator.hh"

namespace {

using namespace ccsim;
using namespace ccsim::time_literals;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::EventQueue q;
        int sink = 0;
        for (int i = 0; i < n; ++i)
            q.schedule(i % 977, [&sink] { ++sink; });
        while (!q.empty())
            q.runNext();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(65536);

/** Callback allocation cost when the capture fits SmallFn's inline
 *  buffer — the common case for simulator-internal events. */
void
BM_EventScheduleSmallCapture(benchmark::State &state)
{
    const int n = 4096;
    for (auto _ : state) {
        sim::EventQueue q;
        long sink = 0;
        for (int i = 0; i < n; ++i)
            q.schedule(i, [&sink, i] { sink += i; });
        while (!q.empty())
            q.runNext();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventScheduleSmallCapture);

/** Same loop with a capture too large for the inline buffer: every
 *  schedule() pays a heap allocation (the SmallFn fallback path). */
void
BM_EventScheduleLargeCapture(benchmark::State &state)
{
    const int n = 4096;
    struct Pad
    {
        char bytes[2 * sim::SmallFn::kInlineBytes] = {};
    };
    for (auto _ : state) {
        sim::EventQueue q;
        long sink = 0;
        for (int i = 0; i < n; ++i)
            q.schedule(i, [&sink, i, pad = Pad{}] {
                sink += i + pad.bytes[0];
            });
        while (!q.empty())
            q.runNext();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventScheduleLargeCapture);

void
BM_CoroutineSpawnResume(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::Simulator s;
        auto prog = [&s]() -> sim::Task<void> {
            for (int i = 0; i < 8; ++i)
                co_await s.delay(1 * NS);
        };
        for (int i = 0; i < n; ++i)
            s.spawn(prog());
        s.run();
    }
    state.SetItemsProcessed(state.iterations() * n * 8);
}
BENCHMARK(BM_CoroutineSpawnResume)->Arg(64)->Arg(1024);

template <typename Topo, typename... Args>
void
routeAllPairs(benchmark::State &state, Args... args)
{
    Topo topo(args...);
    for (auto _ : state) {
        for (int s = 0; s < topo.numNodes(); ++s) {
            for (int d = 0; d < topo.numNodes(); ++d) {
                if (s == d)
                    continue;
                net::LinkId last = net::kNoLink;
                topo.forEachLink(s, d,
                                 [&](net::LinkId l) { last = l; });
                benchmark::DoNotOptimize(last);
            }
        }
    }
    state.SetItemsProcessed(state.iterations() * topo.numNodes() *
                            (topo.numNodes() - 1));
}

void
BM_RouteMesh2D(benchmark::State &state)
{
    routeAllPairs<net::Mesh2D>(state, 8, 8);
}
BENCHMARK(BM_RouteMesh2D);

void
BM_RouteTorus3D(benchmark::State &state)
{
    routeAllPairs<net::Torus3D>(state, 4, 4, 4);
}
BENCHMARK(BM_RouteTorus3D);

void
BM_RouteOmega(benchmark::State &state)
{
    routeAllPairs<net::Omega>(state, 64, 4);
}
BENCHMARK(BM_RouteOmega);

/** All-pairs walk over a topology built by a factory helper. */
void
routeAllPairsOf(benchmark::State &state, const net::Topology &topo)
{
    for (auto _ : state) {
        for (int s = 0; s < topo.numNodes(); ++s) {
            for (int d = 0; d < topo.numNodes(); ++d) {
                if (s == d)
                    continue;
                net::LinkId last = net::kNoLink;
                topo.forEachLink(s, d,
                                 [&](net::LinkId l) { last = l; });
                benchmark::DoNotOptimize(last);
            }
        }
    }
    state.SetItemsProcessed(state.iterations() * topo.numNodes() *
                            (topo.numNodes() - 1));
}

void
BM_RouteFatTree(benchmark::State &state)
{
    auto topo = net::FatTree::balancedFor(64);
    routeAllPairsOf(state, *topo);
}
BENCHMARK(BM_RouteFatTree);

void
BM_RouteDragonfly(benchmark::State &state)
{
    auto topo = net::Dragonfly::balancedFor(64);
    routeAllPairsOf(state, *topo);
}
BENCHMARK(BM_RouteDragonfly);

void
BM_NetworkTransfer(benchmark::State &state)
{
    net::NetworkParams np;
    np.link_bandwidth_mbs = 300;
    np.hop_latency = 20 * NS;
    net::Network net(std::make_unique<net::Torus3D>(4, 4, 4), np);
    Time now = 0;
    for (auto _ : state) {
        for (int s = 0; s < 64; ++s)
            now = std::max(now,
                           net.transfer(s, (s + 17) % 64, 4096, now));
        benchmark::DoNotOptimize(now);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_NetworkTransfer);

/** Steady-state transfers on warm link occupancy (routes are always
 *  computed analytically; there is no route cache to hit). */
void
BM_NetworkTransferSteady(benchmark::State &state)
{
    net::NetworkParams np;
    np.link_bandwidth_mbs = 300;
    np.hop_latency = 20 * NS;
    net::Network net(std::make_unique<net::Torus3D>(4, 4, 4), np);
    for (int s = 0; s < 64; ++s) // warm the occupancy state
        net.transfer(s, (s + 17) % 64, 4096, 0);
    Time now = 0;
    for (auto _ : state) {
        for (int s = 0; s < 64; ++s)
            now = std::max(now,
                           net.transfer(s, (s + 17) % 64, 4096, now));
        benchmark::DoNotOptimize(now);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_NetworkTransferSteady);

/** Cold-state transfers: reset() drops the lazy occupancy pages
 *  each round, so every transfer re-materializes its links. */
void
BM_NetworkTransferColdReset(benchmark::State &state)
{
    net::NetworkParams np;
    np.link_bandwidth_mbs = 300;
    np.hop_latency = 20 * NS;
    net::Network net(std::make_unique<net::Torus3D>(4, 4, 4), np);
    for (auto _ : state) {
        net.reset();
        Time now = 0;
        for (int s = 0; s < 64; ++s)
            now = std::max(now,
                           net.transfer(s, (s + 17) % 64, 4096, now));
        benchmark::DoNotOptimize(now);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_NetworkTransferColdReset);

void
BM_SimulateCollective(benchmark::State &state)
{
    const int p = static_cast<int>(state.range(0));
    for (auto _ : state) {
        auto meas = harness::measureCollective(
            machine::t3dConfig(), p, machine::Coll::Alltoall, 1024,
            machine::Algo::Default, harness::MeasureOptions{1, 1, 0});
        benchmark::DoNotOptimize(meas.max_time);
    }
    state.SetItemsProcessed(state.iterations() * p * (p - 1));
}
BENCHMARK(BM_SimulateCollective)->Arg(8)->Arg(32);

/** Same collective with the metrics registry live — the pair bounds
 *  the observability layer's overhead (CI guards the disabled side
 *  against regression, see .github/workflows/ci.yml). */
void
BM_SimulateCollectiveMetrics(benchmark::State &state)
{
    const int p = static_cast<int>(state.range(0));
    harness::MeasureOptions mo{1, 1, 0};
    mo.metrics = true;
    for (auto _ : state) {
        auto meas = harness::measureCollective(
            machine::t3dConfig(), p, machine::Coll::Alltoall, 1024,
            machine::Algo::Default, mo);
        benchmark::DoNotOptimize(meas.max_time);
    }
    state.SetItemsProcessed(state.iterations() * p * (p - 1));
}
BENCHMARK(BM_SimulateCollectiveMetrics)->Arg(8)->Arg(32);

/** Same-recipe throughput measured at the growth-seed commit (binary
 *  heap + make_shared + no memoization): median of five runs of this
 *  file's recipe against the seed build on the reference container
 *  (single core, so jobs=1 and jobs=N coincide).  Kept for the
 *  trajectory block in BENCH_sweep.json. */
constexpr double kSeedJobs1PointsPerSec = 1334.0;
constexpr double kSeedJobsNPointsPerSec = 1334.0;

/**
 * The sweep-engine throughput benchmark behind BENCH_sweep.json.
 *
 * Recipe (fixed — CI compares points/sec across commits): the paper's
 * three machines x {bcast, barrier, allreduce, alltoall} x
 * p in {4, 8, 16, 32} x m in {64, 1 KiB, 16 KiB}, one warm-up call
 * and 2x1 timed iterations per point (300 points total), faults,
 * skew, and metrics all off.  Three passes, memo cache cleared before
 * the cold ones:
 *
 *   jobs1      cold cache, serial    — the CI-guarded number
 *   jobsN      cold cache, all cores — parallel-engine health
 *   warm_memo  jobs=1, warm cache    — memoization-layer ceiling
 *
 * The "before" block is the same recipe measured at the growth-seed
 * commit (pre pooling/calendar-queue/memoization), kept so the file
 * records the optimization trajectory.
 */
void
emitSweepThroughput()
{
    harness::SweepSpec spec;
    spec.machines = {machine::t3dConfig(), machine::sp2Config(),
                     machine::paragonConfig()};
    spec.ops = {machine::Coll::Bcast, machine::Coll::Barrier,
                machine::Coll::Allreduce, machine::Coll::Alltoall};
    spec.sizes = {4, 8, 16, 32};
    spec.lengths = {64, 1024, 16 * 1024};
    spec.options = harness::MeasureOptions{2, 1, 1};

    harness::memoClear();
    harness::SweepRunner serial(1);
    serial.run(spec);
    harness::SweepRunner::Stats cold1 = serial.lastStats();

    harness::memoClear();
    harness::SweepRunner parallel;
    parallel.run(spec);
    harness::SweepRunner::Stats coldN = parallel.lastStats();

    // Cache is warm from the parallel pass; rerun serially on it.
    serial.run(spec);
    harness::SweepRunner::Stats warm = serial.lastStats();

    std::FILE *f = std::fopen("BENCH_sweep.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_sweep.json\n");
        return;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"sweep_engine\",\n"
        "  \"recipe\": \"3 machines x bcast,barrier,allreduce,"
        "alltoall x p=4,8,16,32 x m=64,1Ki,16Ki; k=2 reps=1 "
        "warmup=1; no faults/skew/metrics\",\n"
        "  \"points\": %zu,\n"
        "  \"jobs1\": { \"wall_seconds\": %.6f, "
        "\"points_per_sec\": %.1f },\n"
        "  \"jobsN\": { \"jobs\": %d, \"wall_seconds\": %.6f, "
        "\"points_per_sec\": %.1f },\n"
        "  \"warm_memo\": { \"wall_seconds\": %.6f, "
        "\"points_per_sec\": %.1f, \"memo_hits\": %llu },\n"
        "  \"before\": { \"commit\": \"growth seed (binary heap, "
        "make_shared, no memo)\", \"jobs1_points_per_sec\": %.1f, "
        "\"jobsN_points_per_sec\": %.1f }\n"
        "}\n",
        cold1.points, cold1.wall_seconds, cold1.pointsPerSec(),
        parallel.jobs(), coldN.wall_seconds, coldN.pointsPerSec(),
        warm.wall_seconds, warm.pointsPerSec(),
        static_cast<unsigned long long>(warm.memo_hits),
        kSeedJobs1PointsPerSec, kSeedJobsNPointsPerSec);
    std::fclose(f);
    std::fprintf(stderr,
                 "BENCH_sweep.json: %zu points | jobs=1 %.1f pt/s "
                 "(seed %.1f) | jobs=%d %.1f pt/s | warm memo %.1f "
                 "pt/s (%llu hits)\n",
                 cold1.points, cold1.pointsPerSec(),
                 kSeedJobs1PointsPerSec, parallel.jobs(),
                 coldN.pointsPerSec(), warm.pointsPerSec(),
                 static_cast<unsigned long long>(warm.memo_hits));
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    emitSweepThroughput();
    return 0;
}
