#include "bench_common.hh"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "util/csv.hh"
#include "util/logging.hh"

namespace ccsim::bench {

BenchOptions
BenchOptions::parse(int argc, char **argv)
{
    BenchOptions o;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            o.quick = true;
        } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
            o.csv_dir = argv[++i];
        } else if (std::strcmp(argv[i], "--help") == 0) {
            std::printf("usage: %s [--quick] [--csv DIR]\n", argv[0]);
            std::exit(0);
        } else {
            fatal("unknown argument '%s' (try --help)", argv[i]);
        }
    }
    return o;
}

harness::MeasureOptions
benchMeasureOptions()
{
    harness::MeasureOptions o;
    o.iterations = 3;
    o.repetitions = 1;
    o.warmup = 1;
    return o;
}

std::vector<int>
sweepSizes(const std::string &machine, bool quick)
{
    std::vector<int> sizes = harness::paperMachineSizes(machine);
    if (quick) {
        // Keep the shape visible but cap the cost.
        std::vector<int> trimmed;
        for (int p : sizes)
            if (p <= 16)
                trimmed.push_back(p);
        return trimmed;
    }
    return sizes;
}

std::vector<Bytes>
sweepLengths(bool quick)
{
    std::vector<Bytes> all = harness::paperMessageLengths();
    if (quick) {
        std::vector<Bytes> trimmed;
        for (Bytes m : all)
            if (m <= 1024)
                trimmed.push_back(m);
        return trimmed;
    }
    return all;
}

std::string
usCell(double us)
{
    char buf[48];
    if (us >= 10000)
        std::snprintf(buf, sizeof(buf), "%.0f", us);
    else if (us >= 100)
        std::snprintf(buf, sizeof(buf), "%.1f", us);
    else
        std::snprintf(buf, sizeof(buf), "%.2f", us);
    return buf;
}

std::string
paperUsCell(const std::string &machine, machine::Coll op, Bytes m,
            int p)
{
    if (!model::paper::hasExpression(machine, op))
        return "-";
    return usCell(model::paper::expression(machine, op).evalUs(m, p));
}

void
maybeWriteCsv(const BenchOptions &opts, const std::string &name,
              const std::vector<std::string> &header,
              const std::vector<std::vector<std::string>> &rows)
{
    if (opts.csv_dir.empty())
        return;
    std::filesystem::create_directories(opts.csv_dir);
    std::string path = opts.csv_dir + "/" + name + ".csv";
    std::ofstream out(path);
    if (!out)
        fatal("cannot write %s", path.c_str());
    CsvWriter w(out);
    w.row(header);
    for (const auto &r : rows)
        w.row(r);
    inform("wrote %s", path.c_str());
}

void
printBanner(const std::string &title, const std::string &what)
{
    std::printf("========================================================"
                "========\n");
    std::printf("%s\n", title.c_str());
    std::printf("%s\n", what.c_str());
    std::printf("Reproduces: Hwang, Wang & Wang, \"Evaluating MPI "
                "Collective\nCommunication on the SP2, T3D, and Paragon "
                "Multicomputers\",\nHPCA-3, 1997.\n");
    std::printf("========================================================"
                "========\n\n");
}

} // namespace ccsim::bench
