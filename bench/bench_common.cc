#include "bench_common.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "tuning/selection_table.hh"
#include "util/cli.hh"
#include "util/csv.hh"
#include "util/logging.hh"

namespace ccsim::bench {

BenchOptions
BenchOptions::parse(int argc, char **argv)
{
    cli::Options o(argv[0]);
    o.flag("quick", "trim sweeps for smoke runs");
    o.value("csv", "dump machine-readable series under DIR", "DIR");
    o.value("jobs", "sweep worker threads (default: all cores)", "N");
    o.flag("metrics", "collect per-point metrics snapshots");
    tuning::addSelectionOpts(o);
    o.parse(argc, argv);

    BenchOptions out;
    out.quick = o.has("quick");
    out.csv_dir = o.get("csv");
    long long jobs = o.getInt("jobs", 0);
    if (o.has("jobs") && jobs < 1)
        fatal("bad value for --jobs: want a positive integer");
    out.jobs = static_cast<int>(jobs);
    out.metrics = o.has("metrics");
    out.algo = tuning::algoOpt(o);
    out.selection = o.get("selection");
    return out;
}

void
BenchOptions::applySelection(machine::MachineConfig &cfg) const
{
    if (!selection.empty())
        tuning::attachSelection(cfg, selection);
}

SweepSession::SweepSession(const BenchOptions &opts,
                           harness::MeasureOptions mopt)
    : runner_(opts.jobs), mopt_(mopt)
{
    mopt_.metrics = mopt_.metrics || opts.metrics;
}

SweepSession::Key
SweepSession::key(const machine::MachineConfig &cfg, int p,
                  machine::Coll op, Bytes m, machine::Algo algo,
                  const std::string &tag)
{
    return {cfg.name + "\x1f" + tag, p, static_cast<int>(op), m,
            static_cast<int>(algo)};
}

void
SweepSession::add(const machine::MachineConfig &cfg, int p,
                  machine::Coll op, Bytes m, machine::Algo algo,
                  const std::string &tag)
{
    if (ran_)
        panic("SweepSession::add: session already ran");
    auto [it, inserted] =
        index_.try_emplace(key(cfg, p, op, m, algo, tag),
                           points_.size());
    if (!inserted)
        return;
    harness::SweepPoint pt;
    pt.cfg = cfg;
    pt.p = p;
    pt.op = op;
    pt.m = m;
    pt.algo = algo;
    pt.options = mopt_;
    // Per-point fault universe, salted by declaration order — the
    // same scheme SweepSpec::expand() uses, so results don't depend
    // on the worker pool's schedule.
    if (pt.cfg.fault.enabled())
        pt.cfg.fault.seed =
            fault::mixSeed(pt.cfg.fault.seed, points_.size());
    points_.push_back(std::move(pt));
}

void
SweepSession::addStartup(const machine::MachineConfig &cfg, int p,
                         machine::Coll op, machine::Algo algo,
                         const std::string &tag)
{
    Bytes m = op == machine::Coll::Barrier
                  ? 0
                  : harness::kStartupMessageBytes;
    add(cfg, p, op, m, algo, tag);
}

void
SweepSession::run()
{
    if (ran_)
        panic("SweepSession::run: session already ran");
    results_ = runner_.run(points_);
    ran_ = true;
}

const harness::Measurement &
SweepSession::get(const machine::MachineConfig &cfg, int p,
                  machine::Coll op, Bytes m, machine::Algo algo,
                  const std::string &tag) const
{
    if (!ran_)
        panic("SweepSession::get before run()");
    auto it = index_.find(key(cfg, p, op, m, algo, tag));
    if (it == index_.end())
        panic("SweepSession::get: point %s p=%d m=%lld was never "
              "add()ed", cfg.name.c_str(), p,
              static_cast<long long>(m));
    return results_[it->second];
}

const harness::Measurement &
SweepSession::getStartup(const machine::MachineConfig &cfg, int p,
                         machine::Coll op, machine::Algo algo,
                         const std::string &tag) const
{
    Bytes m = op == machine::Coll::Barrier
                  ? 0
                  : harness::kStartupMessageBytes;
    return get(cfg, p, op, m, algo, tag);
}

const harness::SweepRunner::Stats &
SweepSession::stats() const
{
    return runner_.lastStats();
}

stats::MetricsSnapshot
SweepSession::mergedMetrics() const
{
    if (!ran_)
        panic("SweepSession::mergedMetrics before run()");
    stats::MetricsSnapshot merged;
    // Declaration order == results_ order: the merge is identical at
    // any --jobs level.
    for (const auto &r : results_)
        merged.merge(r.metrics);
    return merged;
}

harness::MeasureOptions
benchMeasureOptions()
{
    harness::MeasureOptions o;
    o.iterations = 3;
    o.repetitions = 1;
    o.warmup = 1;
    return o;
}

std::vector<int>
sweepSizes(const std::string &machine, bool quick)
{
    std::vector<int> sizes = harness::paperMachineSizes(machine);
    if (quick) {
        // Keep the shape visible but cap the cost.
        std::vector<int> trimmed;
        for (int p : sizes)
            if (p <= 16)
                trimmed.push_back(p);
        return trimmed;
    }
    return sizes;
}

std::vector<Bytes>
sweepLengths(bool quick)
{
    std::vector<Bytes> all = harness::paperMessageLengths();
    if (quick) {
        std::vector<Bytes> trimmed;
        for (Bytes m : all)
            if (m <= 1024)
                trimmed.push_back(m);
        return trimmed;
    }
    return all;
}

std::string
usCell(double us)
{
    char buf[48];
    if (us >= 10000)
        std::snprintf(buf, sizeof(buf), "%.0f", us);
    else if (us >= 100)
        std::snprintf(buf, sizeof(buf), "%.1f", us);
    else
        std::snprintf(buf, sizeof(buf), "%.2f", us);
    return buf;
}

std::string
paperUsCell(const std::string &machine, machine::Coll op, Bytes m,
            int p)
{
    if (!model::paper::hasExpression(machine, op))
        return "-";
    return usCell(model::paper::expression(machine, op).evalUs(m, p));
}

void
maybeWriteCsv(const BenchOptions &opts, const std::string &name,
              const std::vector<std::string> &header,
              const std::vector<std::vector<std::string>> &rows)
{
    if (opts.csv_dir.empty())
        return;
    std::filesystem::create_directories(opts.csv_dir);
    std::string path = opts.csv_dir + "/" + name + ".csv";
    std::ofstream out(path);
    if (!out)
        fatal("cannot write %s", path.c_str());
    CsvWriter w(out);
    w.row(header);
    for (const auto &r : rows)
        w.row(r);
    inform("wrote %s", path.c_str());
}

void
printBanner(const std::string &title, const std::string &what)
{
    std::printf("========================================================"
                "========\n");
    std::printf("%s\n", title.c_str());
    std::printf("%s\n", what.c_str());
    std::printf("Reproduces: Hwang, Wang & Wang, \"Evaluating MPI "
                "Collective\nCommunication on the SP2, T3D, and Paragon "
                "Multicomputers\",\nHPCA-3, 1997.\n");
    std::printf("========================================================"
                "========\n\n");
}

} // namespace ccsim::bench
