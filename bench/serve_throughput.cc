/**
 * @file
 * Throughput of the `ccsim serve` prediction daemon, written to
 * BENCH_serve.json so CI can watch the service the way it watches
 * the sweep engine (BENCH_sweep.json).
 *
 * Recipe (fixed — compare across commits): T3D and SP2 x
 * {bcast, alltoall} x p in {4, 8, 16} x m in {256, 4 KiB} — 24
 * distinct points — queried by 4 concurrent TCP clients:
 *
 *   cold_auto   tier=auto against an empty cache: every answer is a
 *               fast-path fit, every point enters the backfill queue
 *   warm_cache  the same mix after the backfill drains: pure cache
 *               hits, byte-identical to exact simulation
 *   exact_block tier=exact wait=block, cold cache: each request
 *               rides the simulation pool round trip
 *   brain       handleLine() on a cached point, no sockets — the
 *               protocol + cache ceiling the TCP numbers chase
 *
 * --quick trims the client count and the brain-loop length for CI
 * smoke runs (the JSON is still written, flagged "quick": true).
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "serve/client.hh"
#include "serve/server.hh"

using namespace ccsim;

namespace {

struct Mix
{
    std::vector<std::string> lines;
    std::size_t points = 0;
};

Mix
queryMix(const std::string &tier)
{
    Mix mix;
    for (const char *machine : {"T3D", "SP2"})
        for (const char *op : {"bcast", "alltoall"})
            for (int p : {4, 8, 16})
                for (int m : {256, 4096})
                    mix.lines.push_back(
                        "predict machine=" + std::string(machine) +
                        " op=" + op + " p=" + std::to_string(p) +
                        " m=" + std::to_string(m) + " tier=" + tier);
    mix.points = mix.lines.size();
    return mix;
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Drive @p mix through @p clients concurrent connections; returns
 *  wall seconds for all clients to finish the full mix each. */
double
runMix(serve::Server &server, const Mix &mix, int clients)
{
    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c)
        threads.emplace_back([&] {
            serve::Client client;
            client.connect(server.port());
            for (const std::string &q : mix.lines)
                client.request(q);
        });
    for (auto &t : threads)
        t.join();
    return secondsSince(t0);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
    const int clients = opts.quick ? 2 : 4;
    const int brain_reps = opts.quick ? 200 : 5000;

    serve::ServerOptions sopts;
    sopts.jobs = opts.jobs > 0 ? opts.jobs : 1;
    serve::Server server(sopts);
    server.start();

    // cold: fast-path answers, every point queued for backfill.
    Mix auto_mix = queryMix("auto");
    double cold_s = runMix(server, auto_mix, clients);
    server.backfill().drain();

    // warm: the same mix is now pure cache hits.
    double warm_s = runMix(server, auto_mix, clients);

    // exact, blocking, against a second daemon with a cold query
    // cache AND a cold simulation memo (the first daemon's backfill
    // warmed the process-global memo; clear it so each request here
    // really rides the simulation pool).
    serve::Server exact_server(sopts);
    exact_server.start();
    harness::memoClear();
    Mix exact_mix = queryMix("exact");
    double exact_s = runMix(exact_server, exact_mix, clients);

    // brain ceiling: handleLine on one cached point, no sockets.
    const std::string cached = auto_mix.lines.front();
    server.handleLine(cached); // ensure present
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < brain_reps; ++i)
        server.handleLine(cached);
    double brain_s = secondsSince(t0);

    auto snap = server.metricsSnapshot();
    const std::size_t reqs = auto_mix.lines.size() * clients;
    double cold_qps = reqs / cold_s;
    double warm_qps = reqs / warm_s;
    double exact_qps = (exact_mix.lines.size() * clients) / exact_s;
    double brain_qps = brain_reps / brain_s;

    std::FILE *f = std::fopen("BENCH_serve.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_serve.json\n");
        return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"serve_throughput\",\n"
        "  \"recipe\": \"T3D,SP2 x bcast,alltoall x p=4,8,16 x "
        "m=256,4Ki (24 points) over %d TCP clients; daemon "
        "--jobs %d\",\n"
        "  \"quick\": %s,\n"
        "  \"cold_auto\": { \"wall_seconds\": %.6f, \"qps\": %.1f "
        "},\n"
        "  \"warm_cache\": { \"wall_seconds\": %.6f, \"qps\": %.1f "
        "},\n"
        "  \"exact_block\": { \"wall_seconds\": %.6f, \"qps\": %.1f "
        "},\n"
        "  \"brain_no_sockets\": { \"requests\": %d, \"qps\": %.1f "
        "},\n"
        "  \"daemon_counters\": { \"requests\": %llu, "
        "\"tier_fast\": %llu, \"tier_cache\": %llu, "
        "\"backfill_completed\": %llu, \"backfill_coalesced\": "
        "%llu }\n"
        "}\n",
        clients, sopts.jobs, opts.quick ? "true" : "false", cold_s,
        cold_qps, warm_s, warm_qps, exact_s, exact_qps, brain_reps,
        brain_qps,
        static_cast<unsigned long long>(
            snap.counters.at("serve.requests")),
        static_cast<unsigned long long>(
            snap.counters.at("serve.tier_fast")),
        static_cast<unsigned long long>(
            snap.counters.at("serve.tier_cache")),
        static_cast<unsigned long long>(
            snap.counters.at("serve.backfill_completed")),
        static_cast<unsigned long long>(
            snap.counters.at("serve.backfill_coalesced")));
    std::fclose(f);

    std::fprintf(stderr,
                 "BENCH_serve.json: cold auto %.1f q/s | warm cache "
                 "%.1f q/s | exact %.1f q/s | brain %.1f q/s\n",
                 cold_qps, warm_qps, exact_qps, brain_qps);

    exact_server.stop();
    server.stop();
    return 0;
}
