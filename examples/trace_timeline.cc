/**
 * @file
 * Trace a collective and emit a Chrome-trace timeline.
 *
 * Runs one 4 KB broadcast and one 4 KB total exchange on 8 nodes of
 * the Paragon model with tracing enabled, writes
 * `ccsim_trace.json` (load it in chrome://tracing or
 * https://ui.perfetto.dev to see the ladder diagram), and prints the
 * per-rank compute/communication breakdown — the per-rank view of
 * what the paper's Fig. 4 shows as machine-level bars.
 */

#include <cstdio>
#include <fstream>
#include <iostream>

#include "ccsim.hh"

using namespace ccsim;
using namespace ccsim::time_literals;

int
main()
{
    machine::Machine m(machine::paragonConfig(), 8);
    m.trace().enable(true);

    auto prog = [&](int rank) -> sim::Task<void> {
        mpi::Comm comm(m, rank);
        co_await comm.compute(Time(rank + 1) * 20 * US); // stagger
        co_await comm.bcast(4 * KiB, 0);
        co_await comm.alltoall(4 * KiB);
    };
    for (int r = 0; r < m.size(); ++r)
        m.sim().spawn(prog(r));
    m.run();

    const char *path = "ccsim_trace.json";
    std::ofstream out(path);
    m.trace().writeChromeJson(out);
    std::printf("wrote %s (%zu spans) — open in chrome://tracing or "
                "ui.perfetto.dev\n\n",
                path, m.trace().spans().size());

    TableWriter t;
    t.header({"rank", "compute", "send", "recv", "comm total",
              "spans"});
    for (auto &[rank, rs] : m.trace().summarize()) {
        t.row({std::to_string(rank), formatTime(rs.compute),
               formatTime(rs.send), formatTime(rs.recv),
               formatTime(rs.comm()), std::to_string(rs.spans)});
    }
    t.print(std::cout);
    std::printf("\nTotal simulated time: %s\n",
                formatTime(m.sim().now()).c_str());
    return 0;
}
