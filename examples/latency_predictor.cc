/**
 * @file
 * Latency predictor: the paper's intended use of Table 3.
 *
 * "These findings are useful to those who wish to predict the MPP
 * performance or to optimize parallel applications" — i.e.\ fit the
 * closed form T(m, p) = T0(p) + D(m, p) once from a few calibration
 * runs, then predict collective cost for any (m, p) without running
 * anything.
 *
 * This example fits a model for T3D total exchange through
 * serve::FastPath — the same fitted-model store the `ccsim serve`
 * daemon answers its approximate tier from, so what it prints is
 * exactly what a `tier=fast` query would return — predicts a set of
 * held-out (m, p) points, and compares the predictions against
 * direct simulation: the prediction error an application writer of
 * 1997 would have lived with.
 */

#include <cstdio>
#include <iostream>

#include "ccsim.hh"

using namespace ccsim;

int
main()
{
    auto cfg = machine::t3dConfig();
    const machine::Coll op = machine::Coll::Alltoall;

    // The daemon's fast path: first touch runs the calibration sweep
    // (a coarse grid an application writer could afford on a shared
    // machine — FastPath::calibrationSizes/Lengths), every later
    // prediction is a closed-form evaluation.
    serve::FastPath fastpath;
    model::TimingExpression fit =
        fastpath.expressionFor(cfg, op, machine::Algo::Default);

    std::size_t calibration_points =
        serve::FastPath::calibrationSizes().size() *
        serve::FastPath::calibrationLengths().size();
    std::printf("Fitted %s %s model from %zu calibration points:\n"
                "    T(m, p) = %s   [us]\n\n",
                cfg.name.c_str(), machine::collName(op).c_str(),
                calibration_points, fit.str().c_str());
    std::printf("Paper's Table 3 row for comparison:\n    T(m, p) = "
                "%s\n\n",
                model::paper::expression("T3D", op).str().c_str());

    // Held-out points: none of these (m, p) combinations were used
    // in the fit.  predictUs is the daemon's tier=fast answer; the
    // simulation column is what its exact tier would backfill.
    harness::MeasureOptions mopt = serve::FastPath::calibrationOptions();
    TableWriter t;
    t.header({"p", "m", "predicted", "simulated", "error %"});
    for (int p : {4, 16, 64}) {
        for (Bytes m : {Bytes(512), Bytes(4 * KiB),
                        Bytes(32 * KiB)}) {
            double pred =
                fastpath.predictUs(cfg, op, machine::Algo::Default,
                                   p, m);
            auto meas = harness::measureCollective(
                cfg, p, op, m, machine::Algo::Default, mopt);
            double err = 100.0 * (pred - meas.us()) / meas.us();
            t.row({std::to_string(p), formatBytes(m),
                   formatF(pred, 1), formatF(meas.us(), 1),
                   formatF(err, 1)});
        }
    }
    t.print(std::cout);

    std::printf("\nThe paper's own worked example (Section 8): the "
                "T3D expression at\nm = 512, p = 64 gives %.2f ms "
                "(text: 2.86 ms); this fit gives %.2f ms.\n",
                model::paper::expression("T3D", op).evalUs(512, 64) /
                    1000.0,
                fit.evalUs(512, 64) / 1000.0);

    // The trade-off study the paper's abstract promises: pick the
    // node count minimizing predicted total time for a fixed job
    // (compute divides by p, the corner turn's per-pair message
    // shrinks as 1/p but its startup grows with p).
    model::MachineModel paper_model =
        model::MachineModel::fromPaper("T3D");
    std::printf("\nTrade-off study (paper Table 3 model): 2 s of "
                "divided compute +\n100 alltoall corner turns of a "
                "4 MB cube (per-pair messages stay\ninside the "
                "fitted m <= 64 KB envelope)\n\n");
    TableWriter tt;
    tt.header({"p", "compute", "communication", "total", "comm %"});
    for (int p : {8, 16, 32, 64, 128}) {
        std::vector<model::AppStep> script = {
            model::AppStep::compute(2.0e6 / p),
            model::AppStep::collective(
                machine::Coll::Alltoall,
                (4 * MiB) / (static_cast<Bytes>(p) * p), 100),
        };
        auto pred = model::predictApp(paper_model, script, p);
        tt.row({std::to_string(p),
                formatTime(microseconds(pred.compute_us)),
                formatTime(microseconds(pred.comm_us)),
                formatTime(microseconds(pred.total_us)),
                formatF(pred.commPercent(), 1)});
    }
    tt.print(std::cout);
    std::printf("\nThe knee of the total column is the node count "
                "worth asking the\ncenter for — computed without a "
                "single additional run.\n");
    return 0;
}
