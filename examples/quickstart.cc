/**
 * @file
 * Quickstart: build a simulated Cray T3D, run rank programs that use
 * the MPI-style API, and read out simulated times and real data.
 *
 * Build & run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/quickstart
 */

#include <cstdio>
#include <vector>

#include "ccsim.hh"

using namespace ccsim;

namespace {

/** The program every rank runs (exactly like an MPI main). */
sim::Task<void>
rankProgram(machine::Machine &mach, int rank, Time *bcast_done,
            std::int64_t *sum_out)
{
    mpi::Comm comm(mach, rank);

    // Synchronize: on the T3D this is the 3 us hardwired barrier.
    co_await comm.barrier();

    // Broadcast 1 KB from rank 0 (size-only: the simulator charges
    // exactly the time a real payload would take).
    co_await comm.bcast(1024, /*root=*/0);
    if (rank == 0)
        *bcast_done = mach.sim().now();

    // A data-carrying allreduce: sum one int64 per rank.
    std::vector<std::int64_t> mine{rank + 1};
    auto total = co_await comm.allreduceData(mine, mpi::ReduceOp::Sum);
    if (rank == 0)
        *sum_out = total[0];
}

} // namespace

int
main()
{
    const int p = 64;
    machine::Machine t3d(machine::t3dConfig(), p);

    Time bcast_done = 0;
    std::int64_t sum = 0;
    for (int rank = 0; rank < p; ++rank)
        t3d.sim().spawn(rankProgram(t3d, rank, &bcast_done, &sum));
    t3d.run();

    std::printf("machine            : %s (%s)\n",
                t3d.config().name.c_str(),
                t3d.network().topology().name().c_str());
    std::printf("ranks              : %d\n", p);
    std::printf("barrier + 1KB bcast: %s of simulated time\n",
                formatTime(bcast_done).c_str());
    std::printf("allreduce(1..%d)    : %lld (expected %d)\n", p,
                static_cast<long long>(sum), p * (p + 1) / 2);
    std::printf("events simulated   : %llu\n",
                static_cast<unsigned long long>(
                    t3d.sim().eventsFired()));
    return sum == p * (p + 1) / 2 ? 0 : 1;
}
