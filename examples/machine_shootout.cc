/**
 * @file
 * Machine shoot-out: the paper's conclusions as a program.
 *
 * Runs all seven collectives on all three machines for a short and a
 * long message and prints the per-operation machine ranking,
 * annotated with the claims from the paper's Section 9:
 *
 *  - "the T3D does uniformly best in all collective functions, with
 *    the only exception of trailing the Paragon in the scan";
 *  - "the SP2 outperforms the Paragon in any short messages less
 *    than 1 KB; the Paragon performs better than the SP2 in long
 *    messages, except the reduce operation".
 */

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "ccsim.hh"

using namespace ccsim;

namespace {

std::string
ranking(const std::vector<std::pair<std::string, double>> &entries)
{
    auto sorted = entries;
    std::sort(sorted.begin(), sorted.end(),
              [](const auto &a, const auto &b) {
                  return a.second < b.second;
              });
    std::string out;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        if (i)
            out += " < ";
        out += sorted[i].first;
    }
    return out;
}

} // namespace

int
main()
{
    auto machines = machine::paperMachines();
    harness::MeasureOptions mopt;
    mopt.iterations = 3;
    mopt.repetitions = 1;
    mopt.warmup = 1;
    const int p = 32;

    std::printf("Machine shoot-out at p = %d (times in us; ranking "
                "fastest first)\n\n", p);

    for (Bytes m : {Bytes(16), Bytes(64 * KiB)}) {
        std::printf("=== message length m = %s ===\n",
                    formatBytes(m).c_str());
        TableWriter t;
        t.header({"operation", "SP2", "T3D", "Paragon", "ranking"});
        for (machine::Coll op : machine::kPaperColls) {
            Bytes mm = op == machine::Coll::Barrier ? 0 : m;
            std::vector<std::pair<std::string, double>> entries;
            std::vector<std::string> row{machine::collName(op)};
            for (const auto &cfg : machines) {
                auto meas = harness::measureCollective(
                    cfg, p, op, mm, machine::Algo::Default, mopt);
                entries.emplace_back(cfg.name, meas.us());
                row.push_back(formatF(meas.us(), 1));
            }
            row.push_back(ranking(entries));
            t.row(row);
        }
        t.print(std::cout);
        std::printf("\n");
    }

    std::printf(
        "Paper, Section 9: the T3D ranks highest overall (exception: "
        "scan, where\nthe Paragon leads); the SP2 beats the Paragon "
        "for short messages; the\nParagon beats the SP2 for long "
        "messages except reduce, where the SP2's\nstronger reduction "
        "arithmetic wins.\n");
    return 0;
}
