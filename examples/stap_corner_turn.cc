/**
 * @file
 * STAP corner turn: the workload behind the paper.
 *
 * The timing data in the paper came from STAP (space-time adaptive
 * processing) radar benchmarks.  The communication heart of STAP is
 * the CORNER TURN: a distributed matrix transpose between the
 * Doppler-processing phase (each node holds complete range gates)
 * and the beamforming phase (each node needs complete pulse
 * vectors).  A corner turn is exactly MPI_Alltoall, and its cost
 * relative to the per-node FFT compute decides how many nodes are
 * worth using — the paper's "trade-offs between divided computation
 * and collective communication".
 *
 * This example runs a two-phase STAP sketch on all three machines:
 *
 *   phase 1: per-node Doppler FFTs       (compute, scales as 1/p)
 *   corner turn: alltoall of the cube    (communication)
 *   phase 2: per-node beamforming        (compute, scales as 1/p)
 *   detection: allreduce of target score (communication)
 *
 * and reports, per machine and node count, the total time and the
 * fraction spent communicating — showing where adding nodes stops
 * paying on each machine.
 */

#include <cstdio>
#include <iostream>

#include "ccsim.hh"

using namespace ccsim;
using namespace ccsim::time_literals;

namespace {

struct StapResult
{
    Time total = 0;
    Time comm = 0;
};

/**
 * One rank of the STAP sketch.
 * @param cube_bytes    total data cube size across the machine
 * @param flop_time     single-node time for the full FFT workload
 */
sim::Task<void>
stapRank(machine::Machine &mach, int rank, Bytes cube_bytes,
         Time flop_time, StapResult *out)
{
    mpi::Comm comm(mach, rank);
    int p = comm.size();

    co_await comm.barrier();
    Time start = mach.sim().now();
    Time comm_time = 0;

    // Phase 1: Doppler FFTs over my slab of the cube.
    co_await comm.compute(flop_time / p);

    // Corner turn: my slab is re-partitioned across all nodes; each
    // pair exchanges cube / p^2 bytes.
    Bytes m = cube_bytes / (static_cast<Bytes>(p) * p);
    Time t0 = mach.sim().now();
    co_await comm.alltoall(m);
    comm_time += mach.sim().now() - t0;

    // Phase 2: beamforming on the transposed data.
    co_await comm.compute(flop_time / (2 * p));

    // Detection: combine per-node target scores.
    t0 = mach.sim().now();
    co_await comm.allreduce(256);
    comm_time += mach.sim().now() - t0;

    if (rank == 0) {
        out->total = mach.sim().now() - start;
        out->comm = comm_time;
    }
}

} // namespace

int
main()
{
    // A 64 MB data cube and ~0.5 s of single-node FFT work —
    // mid-90s STAP scale.
    const Bytes cube = 64 * MiB;
    const Time flops = 500 * MS;

    std::printf("STAP corner-turn sketch: 64 MB cube, 0.5 s "
                "single-node compute\n\n");

    for (const auto &cfg : machine::paperMachines()) {
        TableWriter t;
        t.header({"p", "total", "communication", "comm %",
                  "speedup vs p=2"});
        double base_total = 0;
        for (int p : {2, 4, 8, 16, 32, 64}) {
            machine::Machine mach(cfg, p);
            StapResult res;
            for (int r = 0; r < p; ++r)
                mach.sim().spawn(
                    stapRank(mach, r, cube, flops, &res));
            mach.run();

            double total_ms = toMillis(res.total);
            if (p == 2)
                base_total = total_ms;
            double frac = res.total > 0
                              ? 100.0 * static_cast<double>(res.comm) /
                                    static_cast<double>(res.total)
                              : 0.0;
            t.row({std::to_string(p), formatTime(res.total),
                   formatTime(res.comm), formatF(frac, 1),
                   formatF(2.0 * base_total / total_ms, 2) + "x"});
        }
        std::printf("--- %s ---\n", cfg.name.c_str());
        t.print(std::cout);
        std::printf("\n");
    }
    std::printf("Reading: the machine whose corner turn saturates "
                "first stops scaling\nfirst — the computation/"
                "communication trade-off the paper was built to\n"
                "let application writers predict.\n");
    return 0;
}
