/**
 * @file
 * SUMMA block matrix multiply on a process grid — the classic
 * collective-heavy kernel (van de Geijn & Watts), built entirely
 * from the library's sub-communicators and broadcasts.
 *
 * C = A x B on a sqrt(p) x sqrt(p) grid: in step k, the owner of
 * A's k-th block-column broadcasts it along its process ROW, the
 * owner of B's k-th block-row broadcasts along its process COLUMN,
 * and every rank multiplies the panels locally.  Per-step traffic is
 * two broadcasts of n^2/p elements inside sqrt(p)-rank subgroups —
 * a workout for Comm::subgroup() and the broadcast algorithms.
 *
 * The example verifies the numerical result against a serial
 * multiply on a small matrix, then reports simulated time and
 * parallel efficiency for a large matrix on all three machines.
 */

#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "ccsim.hh"

using namespace ccsim;
using namespace ccsim::time_literals;

namespace {

/** Row-major n x n matrix. */
using Matrix = std::vector<double>;

Matrix
makeMatrix(int n, int seed)
{
    Matrix m(static_cast<size_t>(n) * n);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            m[static_cast<size_t>(i) * n + j] =
                0.01 * ((i * 31 + j * 17 + seed) % 100) - 0.5;
    return m;
}

Matrix
serialMultiply(const Matrix &a, const Matrix &b, int n)
{
    Matrix c(static_cast<size_t>(n) * n, 0.0);
    for (int i = 0; i < n; ++i)
        for (int k = 0; k < n; ++k)
            for (int j = 0; j < n; ++j)
                c[static_cast<size_t>(i) * n + j] +=
                    a[static_cast<size_t>(i) * n + k] *
                    b[static_cast<size_t>(k) * n + j];
    return c;
}

/** Extract the (br, bc) block of size nb from an n x n matrix. */
Matrix
blockOf(const Matrix &m, int n, int nb, int br, int bc)
{
    Matrix out(static_cast<size_t>(nb) * nb);
    for (int i = 0; i < nb; ++i)
        for (int j = 0; j < nb; ++j)
            out[static_cast<size_t>(i) * nb + j] =
                m[static_cast<size_t>(br * nb + i) * n + bc * nb + j];
    return out;
}

struct SummaResult
{
    Time elapsed = 0;
    double max_error = 0.0;
};

/**
 * One rank of SUMMA.  @p verify carries the full A and B for the
 * numerical check (small n only); when null, the multiply is
 * simulated with compute time only (flop-rate model).
 */
sim::Task<void>
summaRank(machine::Machine &mach, int rank, int q, int n,
          const Matrix *a_full, const Matrix *b_full,
          double flops_per_us, SummaResult *out)
{
    mpi::Comm world(mach, rank);
    int row = rank / q;
    int col = rank % q;
    int nb = n / q;

    // Row and column communicators.
    std::vector<int> row_members;
    std::vector<int> col_members;
    for (int i = 0; i < q; ++i) {
        row_members.push_back(row * q + i);
        col_members.push_back(i * q + col);
    }
    mpi::Comm row_comm = world.subgroup(row_members);
    mpi::Comm col_comm = world.subgroup(col_members);

    bool carry = a_full != nullptr;
    Matrix a_blk =
        carry ? blockOf(*a_full, n, nb, row, col) : Matrix();
    Matrix b_blk =
        carry ? blockOf(*b_full, n, nb, row, col) : Matrix();
    Matrix c_blk(carry ? static_cast<size_t>(nb) * nb : 0, 0.0);

    co_await world.barrier();
    Time start = mach.sim().now();

    Bytes panel_bytes =
        static_cast<Bytes>(nb) * nb * static_cast<Bytes>(sizeof(double));
    for (int k = 0; k < q; ++k) {
        Matrix a_panel;
        Matrix b_panel;
        if (carry) {
            Matrix a_in = col == k ? a_blk : Matrix(a_blk.size(), 0.0);
            a_panel = co_await row_comm.bcastData(a_in, k);
            Matrix b_in = row == k ? b_blk : Matrix(b_blk.size(), 0.0);
            b_panel = co_await col_comm.bcastData(b_in, k);
        } else {
            co_await row_comm.bcast(panel_bytes, k);
            co_await col_comm.bcast(panel_bytes, k);
        }

        // Local panel multiply: 2 nb^3 flops.
        double flops = 2.0 * nb * nb * static_cast<double>(nb);
        co_await world.compute(microseconds(flops / flops_per_us));
        if (carry)
            for (int i = 0; i < nb; ++i)
                for (int kk = 0; kk < nb; ++kk)
                    for (int j = 0; j < nb; ++j)
                        c_blk[static_cast<size_t>(i) * nb + j] +=
                            a_panel[static_cast<size_t>(i) * nb + kk] *
                            b_panel[static_cast<size_t>(kk) * nb + j];
    }
    co_await world.barrier();

    if (rank == 0)
        out->elapsed = mach.sim().now() - start;
    if (carry) {
        Matrix ref = serialMultiply(*a_full, *b_full, n);
        Matrix ref_blk = blockOf(ref, n, nb, row, col);
        double err = 0;
        for (std::size_t i = 0; i < c_blk.size(); ++i)
            err = std::max(err, std::fabs(c_blk[i] - ref_blk[i]));
        out->max_error = std::max(out->max_error, err);
    }
}

} // namespace

int
main()
{
    // Part 1: numerical verification on a 12x12 matrix, 2x2 grid.
    {
        const int n = 12;
        const int q = 2;
        Matrix a = makeMatrix(n, 1);
        Matrix b = makeMatrix(n, 2);
        machine::Machine m(machine::t3dConfig(), q * q);
        SummaResult res;
        for (int r = 0; r < q * q; ++r)
            m.sim().spawn(summaRank(m, r, q, n, &a, &b, 50.0, &res));
        m.run();
        std::printf("verification: %dx%d SUMMA on %dx%d grid, max "
                    "|error| = %.2e %s\n\n",
                    n, n, q, q, res.max_error,
                    res.max_error < 1e-9 ? "(exact)" : "(FAILED)");
        if (res.max_error >= 1e-9)
            return 1;
    }

    // Part 2: performance model for n = 2048 across machines and
    // grids (50 Mflop/s per node, a mid-90s sustained DGEMM rate).
    const int n = 2048;
    const double flops_per_us = 50.0;
    std::printf("SUMMA C = A x B, n = %d, 50 Mflop/s nodes "
                "[simulated]\n\n", n);
    for (const auto &cfg : machine::paperMachines()) {
        TableWriter t;
        t.header({"grid", "p", "time", "efficiency"});
        double serial_us = 2.0 * n * n * static_cast<double>(n) /
                           flops_per_us;
        for (int q : {2, 4, 8}) {
            machine::Machine m(cfg, q * q);
            SummaResult res;
            for (int r = 0; r < q * q; ++r)
                m.sim().spawn(summaRank(m, r, q, n, nullptr, nullptr,
                                        flops_per_us, &res));
            m.run();
            double eff = serial_us /
                         (toMicros(res.elapsed) * q * q) * 100.0;
            t.row({std::to_string(q) + "x" + std::to_string(q),
                   std::to_string(q * q), formatTime(res.elapsed),
                   formatF(eff, 1) + "%"});
        }
        std::printf("--- %s ---\n", cfg.name.c_str());
        t.print(std::cout);
        std::printf("\n");
    }
    std::printf("Efficiency falls fastest on the machine whose "
                "broadcast is weakest —\nthe collective/compute "
                "trade-off the paper quantifies.\n");
    return 0;
}
