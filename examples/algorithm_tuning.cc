/**
 * @file
 * Algorithm auto-tuning: derive a tuned-collectives selection table
 * for a simulated 1997 machine with the empirical tuner, then use it
 * through Algo::Auto.
 *
 * tuning::tuneMachine() measures every candidate algorithm (the
 * per-collective candidate sets come from tuning::candidateAlgos())
 * over a (p, m) grid, keeps the winners, and compresses them into a
 * tuning::SelectionTable — the same selection logic MPICH later
 * shipped as hard-coded switch points (e.g.\ Bruck below a size
 * threshold, pairwise above; binomial bcast for short,
 * scatter+allgather for long).  Attaching the table to the machine
 * makes every Algo::Auto call (the collective API's default) resolve
 * to the tuned winner.
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "ccsim.hh"

using namespace ccsim;

int
main(int argc, char **argv)
{
    // Pick the machine model from the command line (default SP2).
    machine::MachineConfig cfg = machine::sp2Config();
    if (argc > 1) {
        std::string name = argv[1];
        if (name == "T3D")
            cfg = machine::t3dConfig();
        else if (name == "Paragon")
            cfg = machine::paragonConfig();
        else if (name != "SP2")
            fatal("unknown machine '%s' (SP2, T3D, Paragon)",
                  name.c_str());
    }

    tuning::TuneGrid grid;
    grid.sizes = {4, 16, 64};
    grid.lengths = {64, 4 * KiB, 64 * KiB};
    grid.options.iterations = 3;
    grid.options.repetitions = 1;
    grid.options.warmup = 1;

    std::printf("Tuning the %s model over %zu sizes x %zu lengths\n\n",
                cfg.name.c_str(), grid.sizes.size(),
                grid.lengths.size());
    tuning::TuneResult res = tuning::tuneMachine(cfg, grid);

    // The tuned decision map, in its on-disk form (`ccsim tune` can
    // save the same document with --out and --selection reloads it).
    std::printf("--- tuned selection table ---\n");
    res.table.save(std::cout);

    // The headline: how much the machine's configured 1997 defaults
    // left on the table over the tuned grid.
    std::printf("\ntotal regret of the configured defaults: %.1f%%\n",
                res.totalRegret() * 100.0);
    const auto &worst = res.worstCell();
    std::printf("worst cell: %s p=%d m=%s (%s -> %s, %.1f%%)\n\n",
                machine::collName(worst.op).c_str(), worst.p,
                formatBytes(worst.m).c_str(),
                machine::algoName(worst.default_algo).c_str(),
                machine::algoName(worst.best_algo).c_str(),
                worst.regret() * 100.0);

    // Attach the table and let Algo::Auto do the choosing: the same
    // call now picks the tuned winner per (p, m).
    cfg.selection =
        std::make_shared<tuning::SelectionTable>(res.table);
    std::printf("--- bcast through Algo::Auto with the table "
                "attached ---\n");
    TableWriter t;
    t.header({"m \\ p", "4", "16", "64"});
    for (Bytes m : grid.lengths) {
        std::vector<std::string> row{formatBytes(m)};
        for (int p : grid.sizes) {
            auto meas = harness::measureCollective(
                cfg, p, machine::Coll::Bcast, m, machine::Algo::Auto,
                grid.options);
            row.push_back(machine::algoName(meas.algo) + " (" +
                          formatTime(meas.time()) + ")");
        }
        t.row(row);
    }
    t.print(std::cout);
    return 0;
}
