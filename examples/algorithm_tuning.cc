/**
 * @file
 * Algorithm auto-tuning: what a modern tuned-collectives table looks
 * like, computed on a simulated 1997 machine.
 *
 * For each collective and each (m, p) cell, try every implemented
 * algorithm on the chosen machine model and report the winner — the
 * same selection logic MPICH later shipped as hard-coded switch
 * points (e.g.\ Bruck below a size threshold, pairwise above;
 * binomial bcast for short, scatter+allgather for long).
 */

#include <cstdio>
#include <iostream>
#include <map>

#include "ccsim.hh"

using namespace ccsim;

namespace {

const std::map<machine::Coll, std::vector<machine::Algo>> &
candidates()
{
    using machine::Algo;
    using machine::Coll;
    static const std::map<Coll, std::vector<Algo>> c = {
        {Coll::Bcast,
         {Algo::Linear, Algo::Binomial, Algo::ScatterAllgather}},
        {Coll::Alltoall, {Algo::Linear, Algo::Pairwise, Algo::Bruck}},
        {Coll::Allgather, {Algo::Ring, Algo::RecursiveDoubling}},
        {Coll::Reduce, {Algo::Linear, Algo::Binomial}},
        {Coll::Allreduce,
         {Algo::ReduceBcast, Algo::RecursiveDoubling}},
        {Coll::Scan, {Algo::Linear, Algo::RecursiveDoubling}},
        {Coll::Barrier,
         {Algo::Linear, Algo::Binomial, Algo::Dissemination}},
    };
    return c;
}

} // namespace

int
main(int argc, char **argv)
{
    // Pick the machine model from the command line (default SP2).
    machine::MachineConfig cfg = machine::sp2Config();
    if (argc > 1) {
        std::string name = argv[1];
        if (name == "T3D")
            cfg = machine::t3dConfig();
        else if (name == "Paragon")
            cfg = machine::paragonConfig();
        else if (name != "SP2")
            fatal("unknown machine '%s' (SP2, T3D, Paragon)",
                  name.c_str());
    }
    // Compare software algorithms only.
    if (cfg.hardware_barrier)
        cfg.setAlgorithm(machine::Coll::Barrier,
                         machine::Algo::Dissemination);

    harness::MeasureOptions mopt;
    mopt.iterations = 3;
    mopt.repetitions = 1;
    mopt.warmup = 1;

    std::printf("Best algorithm per (operation, m, p) on the %s "
                "model\n\n", cfg.name.c_str());

    for (const auto &[op, algos] : candidates()) {
        TableWriter t;
        t.header({"m \\ p", "4", "16", "64"});
        std::vector<Bytes> lengths =
            op == machine::Coll::Barrier
                ? std::vector<Bytes>{0}
                : std::vector<Bytes>{64, 4 * KiB, 64 * KiB};
        for (Bytes m : lengths) {
            std::vector<std::string> row{
                op == machine::Coll::Barrier ? "-" : formatBytes(m)};
            for (int p : {4, 16, 64}) {
                machine::Algo best = algos.front();
                double best_us = -1;
                for (auto a : algos) {
                    auto meas = harness::measureCollective(cfg, p, op,
                                                           m, a, mopt);
                    if (best_us < 0 || meas.us() < best_us) {
                        best_us = meas.us();
                        best = a;
                    }
                }
                row.push_back(machine::algoName(best));
            }
            t.row(row);
        }
        std::printf("--- %s ---\n", machine::collName(op).c_str());
        t.print(std::cout);
        std::printf("\n");
    }
    return 0;
}
