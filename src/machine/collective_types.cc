#include "machine/collective_types.hh"

#include "util/logging.hh"

namespace ccsim::machine {

std::string
collName(Coll c)
{
    switch (c) {
      case Coll::Barrier:
        return "barrier";
      case Coll::Bcast:
        return "broadcast";
      case Coll::Gather:
        return "gather";
      case Coll::Scatter:
        return "scatter";
      case Coll::Allgather:
        return "allgather";
      case Coll::Alltoall:
        return "total exchange";
      case Coll::Reduce:
        return "reduce";
      case Coll::Allreduce:
        return "allreduce";
      case Coll::ReduceScatter:
        return "reduce-scatter";
      case Coll::Scan:
        return "scan";
      default:
        panic("collName: bad collective %d", static_cast<int>(c));
    }
}

std::string
algoName(Algo a)
{
    switch (a) {
      case Algo::Default:
        return "default";
      case Algo::Linear:
        return "linear";
      case Algo::Binomial:
        return "binomial";
      case Algo::Dissemination:
        return "dissemination";
      case Algo::Pairwise:
        return "pairwise";
      case Algo::Ring:
        return "ring";
      case Algo::Bruck:
        return "bruck";
      case Algo::RecursiveDoubling:
        return "recursive-doubling";
      case Algo::ScatterAllgather:
        return "scatter-allgather";
      case Algo::ReduceBcast:
        return "reduce-bcast";
      case Algo::RecursiveHalving:
        return "recursive-halving";
      case Algo::Rabenseifner:
        return "rabenseifner";
      case Algo::Pipelined:
        return "pipelined";
      case Algo::Hardware:
        return "hardware";
      case Algo::Auto:
        return "auto";
      default:
        panic("algoName: bad algorithm %d", static_cast<int>(a));
    }
}

} // namespace ccsim::machine
