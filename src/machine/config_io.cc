#include "machine/config_io.hh"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "util/cli.hh"
#include "util/logging.hh"

namespace ccsim::machine {

namespace {

/** fatal() analogue that raises ConfigError (component "config",
 *  exit kConfigExit) so config mistakes are distinguishable from
 *  generic user errors. */
[[noreturn]] void
configFatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void
configFatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrFormat(fmt, ap);
    va_end(ap);
    raiseError(ConfigError(msg));
}

} // namespace

namespace {

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

double
parseDouble(const std::string &key, const std::string &value)
{
    try {
        std::size_t pos = 0;
        double d = std::stod(value, &pos);
        if (pos != value.size())
            throw std::invalid_argument("trailing");
        return d;
    } catch (const std::exception &) {
        configFatal("bad numeric value '%s' for key '%s'",
              value.c_str(), key.c_str());
    }
}

long long
parseInt(const std::string &key, const std::string &value)
{
    try {
        std::size_t pos = 0;
        long long v = std::stoll(value, &pos);
        if (pos != value.size())
            throw std::invalid_argument("trailing");
        return v;
    } catch (const std::exception &) {
        configFatal("bad integer value '%s' for key '%s'",
              value.c_str(), key.c_str());
    }
}

bool
parseBool(const std::string &key, const std::string &value)
{
    if (value == "true" || value == "1" || value == "yes")
        return true;
    if (value == "false" || value == "0" || value == "no")
        return false;
    configFatal("bad boolean value '%s' for key '%s'", value.c_str(),
          key.c_str());
}

const std::map<std::string, Coll> &
collKeys()
{
    static const std::map<std::string, Coll> keys = {
        {"barrier", Coll::Barrier},
        {"bcast", Coll::Bcast},
        {"gather", Coll::Gather},
        {"scatter", Coll::Scatter},
        {"allgather", Coll::Allgather},
        {"alltoall", Coll::Alltoall},
        {"reduce", Coll::Reduce},
        {"allreduce", Coll::Allreduce},
        {"reduce_scatter", Coll::ReduceScatter},
        {"scan", Coll::Scan},
    };
    return keys;
}

/** Apply one top-level setting; fatal on unknown keys. */
void
applyGlobal(MachineConfig &cfg, const std::string &key,
            const std::string &value)
{
    if (key == "name")
        cfg.name = value;
    else if (key == "topology")
        cfg.topology = topologyKindByName(value);
    else if (key == "topology_spec")
        // Full net::makeTopology grammar; "none" clears an inherited
        // spec so a derived config can fall back to the kind above.
        cfg.topo_spec = (value == "none") ? "" : value;
    else if (key == "switch_radix")
        cfg.switch_radix = static_cast<int>(parseInt(key, value));
    else if (key == "link_bandwidth_mbs")
        cfg.network.link_bandwidth_mbs = parseDouble(key, value);
    else if (key == "hop_latency_ns")
        cfg.network.hop_latency = nanoseconds(parseDouble(key, value));
    else if (key == "packet_overhead")
        cfg.network.packet_overhead = parseInt(key, value);
    else if (key == "contention")
        cfg.network.contention = parseBool(key, value);
    else if (key == "send_overhead_us")
        cfg.transport.send_overhead =
            microseconds(parseDouble(key, value));
    else if (key == "recv_overhead_us")
        cfg.transport.recv_overhead =
            microseconds(parseDouble(key, value));
    else if (key == "copy_bandwidth_mbs")
        cfg.transport.copy_bandwidth_mbs = parseDouble(key, value);
    else if (key == "eager_threshold")
        cfg.transport.eager_threshold = parseInt(key, value);
    else if (key == "rendezvous_overhead_us")
        cfg.transport.rendezvous_overhead =
            microseconds(parseDouble(key, value));
    else if (key == "coprocessor_overlap")
        cfg.transport.coprocessor_overlap = parseDouble(key, value);
    else if (key == "blt_enabled")
        cfg.transport.blt_enabled = parseBool(key, value);
    else if (key == "blt_threshold")
        cfg.transport.blt_threshold = parseInt(key, value);
    else if (key == "blt_setup_us")
        cfg.transport.blt_setup = microseconds(parseDouble(key, value));
    else if (key == "reduce_bandwidth_mbs")
        cfg.reduce_bandwidth_mbs = parseDouble(key, value);
    else if (key == "hardware_barrier")
        cfg.hardware_barrier = parseBool(key, value);
    else if (key == "hardware_barrier_latency_us")
        cfg.hardware_barrier_latency =
            microseconds(parseDouble(key, value));
    else
        configFatal("unknown key '%s'", key.c_str());
}

/** Apply one <op>.<field> setting. */
void
applyCollective(MachineConfig &cfg, Coll op, const std::string &field,
                const std::string &key, const std::string &value)
{
    CollCosts &costs = cfg.costsFor(op);
    if (field == "algorithm") {
        Algo a = algoFromName(value);
        // "auto" is a per-call request resolved through a selection
        // table; a machine's configured choice is what Auto falls
        // back TO, so it must be concrete.
        if (a == Algo::Auto)
            configFatal("'%s' cannot be 'auto': the machine default "
                        "is what auto falls back to", key.c_str());
        cfg.setAlgorithm(op, a);
    }
    else if (field == "entry_us")
        costs.entry = microseconds(parseDouble(key, value));
    else if (field == "per_stage_us")
        costs.per_stage = microseconds(parseDouble(key, value));
    else if (field == "per_stage_ns_per_byte")
        costs.per_stage_ns_per_byte = parseDouble(key, value);
    else if (field == "reduce_bandwidth_override_mbs")
        costs.reduce_bandwidth_override_mbs = parseDouble(key, value);
    else if (field == "send_overhead_override_us")
        costs.send_overhead_override =
            microseconds(parseDouble(key, value));
    else if (field == "recv_overhead_override_us")
        costs.recv_overhead_override =
            microseconds(parseDouble(key, value));
    else
        configFatal("unknown collective field '%s'", key.c_str());
}

/** Apply one fault.<field> setting. */
void
applyFault(MachineConfig &cfg, const std::string &field,
           const std::string &key, const std::string &value)
{
    fault::FaultSpec &f = cfg.fault;
    if (field == "seed")
        f.seed = static_cast<std::uint64_t>(parseInt(key, value));
    else if (field == "link_degrade_rate")
        f.link_degrade_rate = parseDouble(key, value);
    else if (field == "link_degrade_factor")
        f.link_degrade_factor = parseDouble(key, value);
    else if (field == "link_blackhole_rate")
        f.link_blackhole_rate = parseDouble(key, value);
    else if (field == "window_start_us")
        f.window_start = microseconds(parseDouble(key, value));
    else if (field == "window_duration_us")
        f.window_duration = microseconds(parseDouble(key, value));
    else if (field == "straggler_rate")
        f.straggler_rate = parseDouble(key, value);
    else if (field == "straggler_factor")
        f.straggler_factor = parseDouble(key, value);
    else if (field == "msg_drop_rate")
        f.msg_drop_rate = parseDouble(key, value);
    else if (field == "msg_delay_rate")
        f.msg_delay_rate = parseDouble(key, value);
    else if (field == "msg_delay_us")
        f.msg_delay = microseconds(parseDouble(key, value));
    else if (field == "retry_budget")
        f.retry_budget = static_cast<int>(parseInt(key, value));
    else if (field == "retry_timeout_us")
        f.retry_timeout = microseconds(parseDouble(key, value));
    else if (field == "retry_backoff")
        f.retry_backoff = parseDouble(key, value);
    else
        configFatal("unknown fault field '%s'", key.c_str());
}

/** Apply one hierarchy.<field> setting (multi-core node model). */
void
applyHierarchy(MachineConfig &cfg, const std::string &field,
               const std::string &key, const std::string &value)
{
    HierarchySpec &h = cfg.hierarchy;
    if (field == "chips")
        h.chips = static_cast<int>(parseInt(key, value));
    else if (field == "cores")
        h.cores = static_cast<int>(parseInt(key, value));
    else if (field == "chip_bandwidth_mbs")
        h.chip.link_bandwidth_mbs = parseDouble(key, value);
    else if (field == "chip_latency_ns")
        h.chip.hop_latency = nanoseconds(parseDouble(key, value));
    else if (field == "node_bandwidth_mbs")
        h.node.link_bandwidth_mbs = parseDouble(key, value);
    else if (field == "node_latency_ns")
        h.node.hop_latency = nanoseconds(parseDouble(key, value));
    else
        configFatal("unknown hierarchy field '%s'", key.c_str());
}

} // namespace

std::string
collKey(Coll op)
{
    for (const auto &[key, c] : collKeys())
        if (c == op)
            return key;
    panic("collKey: bad collective %d", static_cast<int>(op));
}

Algo
algoFromName(const std::string &name)
{
    for (int i = 0; i <= static_cast<int>(Algo::Auto); ++i) {
        Algo a = static_cast<Algo>(i);
        if (algoName(a) == name)
            return a;
    }
    std::string valid;
    for (int i = 0; i <= static_cast<int>(Algo::Auto); ++i) {
        if (!valid.empty())
            valid += ", ";
        valid += algoName(static_cast<Algo>(i));
    }
    configFatal("unknown algorithm '%s' (valid: %s)", name.c_str(),
                valid.c_str());
}

Algo
algoByName(const std::string &name)
{
    return algoFromName(name);
}

TopologyKind
topologyKindByName(const std::string &name)
{
    static const TopologyKind kinds[] = {
        TopologyKind::Mesh2D,    TopologyKind::Torus3D,
        TopologyKind::Omega,     TopologyKind::Hypercube,
        TopologyKind::FatTree,   TopologyKind::Dragonfly,
        TopologyKind::FullyConnected,
    };
    std::vector<std::string> names;
    for (TopologyKind k : kinds) {
        if (topologyKindName(k) == name)
            return k;
        names.push_back(topologyKindName(k));
    }
    std::string hint = cli::closestMatch(name, names);
    if (!hint.empty())
        configFatal("unknown topology '%s' (did you mean '%s'?)",
                    name.c_str(), hint.c_str());
    configFatal("unknown topology '%s'", name.c_str());
}

MachineConfig
presetByName(const std::string &name)
{
    // Case-insensitive: "paragon" from a shell is as valid as
    // "Paragon" from the paper.
    std::string lower(name);
    for (char &c : lower)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (lower == "sp2")
        return sp2Config();
    if (lower == "t3d")
        return t3dConfig();
    if (lower == "paragon")
        return paragonConfig();
    if (lower == "ideal")
        return idealConfig();
    configFatal("unknown preset '%s' (SP2, T3D, Paragon, Ideal)",
                name.c_str());
}

void
saveConfig(const MachineConfig &cfg, std::ostream &os)
{
    os.precision(12); // lossless round trip for all calibrations
    os << "# ccsim machine configuration\n";
    os << "name = " << cfg.name << "\n";
    os << "topology = " << topologyKindName(cfg.topology) << "\n";
    if (!cfg.topo_spec.empty())
        os << "topology_spec = " << cfg.topo_spec << "\n";
    os << "switch_radix = " << cfg.switch_radix << "\n";
    os << "link_bandwidth_mbs = " << cfg.network.link_bandwidth_mbs
       << "\n";
    os << "hop_latency_ns = " << toNanos(cfg.network.hop_latency)
       << "\n";
    os << "packet_overhead = " << cfg.network.packet_overhead << "\n";
    os << "contention = " << (cfg.network.contention ? "true" : "false")
       << "\n";
    os << "send_overhead_us = " << toMicros(cfg.transport.send_overhead)
       << "\n";
    os << "recv_overhead_us = " << toMicros(cfg.transport.recv_overhead)
       << "\n";
    os << "copy_bandwidth_mbs = " << cfg.transport.copy_bandwidth_mbs
       << "\n";
    os << "eager_threshold = " << cfg.transport.eager_threshold << "\n";
    os << "rendezvous_overhead_us = "
       << toMicros(cfg.transport.rendezvous_overhead) << "\n";
    os << "coprocessor_overlap = " << cfg.transport.coprocessor_overlap
       << "\n";
    os << "blt_enabled = "
       << (cfg.transport.blt_enabled ? "true" : "false") << "\n";
    os << "blt_threshold = " << cfg.transport.blt_threshold << "\n";
    os << "blt_setup_us = " << toMicros(cfg.transport.blt_setup)
       << "\n";
    os << "reduce_bandwidth_mbs = " << cfg.reduce_bandwidth_mbs << "\n";
    os << "hardware_barrier = "
       << (cfg.hardware_barrier ? "true" : "false") << "\n";
    os << "hardware_barrier_latency_us = "
       << toMicros(cfg.hardware_barrier_latency) << "\n";

    // Hierarchy block only when enabled, so flat configs round-trip
    // byte-identically to their pre-hierarchy form.
    if (cfg.hierarchy.enabled()) {
        const HierarchySpec &h = cfg.hierarchy;
        os << "\nhierarchy.chips = " << h.chips << "\n";
        os << "hierarchy.cores = " << h.cores << "\n";
        os << "hierarchy.chip_bandwidth_mbs = "
           << h.chip.link_bandwidth_mbs << "\n";
        os << "hierarchy.chip_latency_ns = "
           << toNanos(h.chip.hop_latency) << "\n";
        os << "hierarchy.node_bandwidth_mbs = "
           << h.node.link_bandwidth_mbs << "\n";
        os << "hierarchy.node_latency_ns = "
           << toNanos(h.node.hop_latency) << "\n";
    }

    // Fault block only when active, so pristine configs round-trip
    // byte-identically to their pre-fault-layer form.
    if (cfg.fault.enabled()) {
        const fault::FaultSpec &f = cfg.fault;
        os << "\nfault.seed = " << f.seed << "\n";
        os << "fault.link_degrade_rate = " << f.link_degrade_rate
           << "\n";
        os << "fault.link_degrade_factor = " << f.link_degrade_factor
           << "\n";
        os << "fault.link_blackhole_rate = " << f.link_blackhole_rate
           << "\n";
        os << "fault.window_start_us = " << toMicros(f.window_start)
           << "\n";
        os << "fault.window_duration_us = "
           << toMicros(f.window_duration) << "\n";
        os << "fault.straggler_rate = " << f.straggler_rate << "\n";
        os << "fault.straggler_factor = " << f.straggler_factor
           << "\n";
        os << "fault.msg_drop_rate = " << f.msg_drop_rate << "\n";
        os << "fault.msg_delay_rate = " << f.msg_delay_rate << "\n";
        os << "fault.msg_delay_us = " << toMicros(f.msg_delay) << "\n";
        os << "fault.retry_budget = " << f.retry_budget << "\n";
        os << "fault.retry_timeout_us = " << toMicros(f.retry_timeout)
           << "\n";
        os << "fault.retry_backoff = " << f.retry_backoff << "\n";
    }

    for (Coll op : kAllColls) {
        const CollCosts &c = cfg.costsFor(op);
        std::string k = collKey(op);
        os << "\n" << k << ".algorithm = "
           << algoName(cfg.algorithmFor(op)) << "\n";
        os << k << ".entry_us = " << toMicros(c.entry) << "\n";
        os << k << ".per_stage_us = " << toMicros(c.per_stage) << "\n";
        os << k << ".per_stage_ns_per_byte = "
           << c.per_stage_ns_per_byte << "\n";
        if (c.reduce_bandwidth_override_mbs > 0)
            os << k << ".reduce_bandwidth_override_mbs = "
               << c.reduce_bandwidth_override_mbs << "\n";
        if (c.send_overhead_override >= 0)
            os << k << ".send_overhead_override_us = "
               << toMicros(c.send_overhead_override) << "\n";
        if (c.recv_overhead_override >= 0)
            os << k << ".recv_overhead_override_us = "
               << toMicros(c.recv_overhead_override) << "\n";
    }
}

void
saveConfigFile(const MachineConfig &cfg, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        configFatal("cannot write '%s'", path.c_str());
    saveConfig(cfg, out);
}

MachineConfig
loadConfig(std::istream &is)
{
    MachineConfig cfg = idealConfig();
    cfg.name = "custom";

    std::string line;
    int lineno = 0;
    bool first_setting = true;
    while (std::getline(is, line)) {
        ++lineno;
        std::string s = line;
        auto hash = s.find('#');
        if (hash != std::string::npos)
            s = s.substr(0, hash);
        s = trim(s);
        if (s.empty())
            continue;

        auto eq = s.find('=');
        if (eq == std::string::npos)
            configFatal("config line %d: expected 'key = value', got '%s'",
                  lineno, line.c_str());
        std::string key = trim(s.substr(0, eq));
        std::string value = trim(s.substr(eq + 1));
        if (key.empty() || value.empty())
            configFatal("config line %d: empty key or value", lineno);

        if (key == "base") {
            if (!first_setting)
                configFatal("config line %d: 'base' must be the first "
                      "setting", lineno);
            std::string name = cfg.name;
            cfg = presetByName(value);
            cfg.name = name;
            first_setting = false;
            continue;
        }
        first_setting = false;

        auto dot = key.find('.');
        if (dot == std::string::npos) {
            applyGlobal(cfg, key, value);
        } else {
            std::string op_key = key.substr(0, dot);
            std::string field = key.substr(dot + 1);
            if (op_key == "fault") {
                applyFault(cfg, field, key, value);
                continue;
            }
            if (op_key == "hierarchy") {
                applyHierarchy(cfg, field, key, value);
                continue;
            }
            auto it = collKeys().find(op_key);
            if (it == collKeys().end())
                configFatal("config line %d: unknown collective '%s'",
                      lineno, op_key.c_str());
            applyCollective(cfg, it->second, field, key, value);
        }
    }
    cfg.validate();
    return cfg;
}

MachineConfig
loadConfigFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        configFatal("cannot read '%s'", path.c_str());
    return loadConfig(in);
}

namespace {

/**
 * The shared-config registry behind sharedPreset()/sharedConfigFile():
 * parse + validate once per distinct source, hand out immutable
 * handles forever after.  Config descriptions are a few hundred
 * bytes and the set of distinct sources a process touches is tiny,
 * so entries are never evicted.
 */
struct ConfigRegistry
{
    std::mutex mu;
    std::map<std::string, ConfigHandle> by_key;
};

ConfigRegistry &
configRegistry()
{
    static ConfigRegistry r;
    return r;
}

ConfigHandle
cachedConfig(const std::string &key,
             MachineConfig (*load)(const std::string &),
             const std::string &arg)
{
    ConfigRegistry &r = configRegistry();
    {
        std::lock_guard<std::mutex> lock(r.mu);
        auto it = r.by_key.find(key);
        if (it != r.by_key.end())
            return it->second;
    }
    // Parse outside the lock (file I/O, and load may raise
    // ConfigError); a racing duplicate parse is harmless — last one
    // in wins and both results are identical.
    ConfigHandle handle =
        std::make_shared<const MachineConfig>(load(arg));
    handle->validate();
    std::lock_guard<std::mutex> lock(r.mu);
    return r.by_key.emplace(key, std::move(handle)).first->second;
}

} // namespace

ConfigHandle
sharedPreset(const std::string &name)
{
    std::string lower(name);
    for (char &c : lower)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return cachedConfig("preset:" + lower, presetByName, name);
}

ConfigHandle
sharedConfigFile(const std::string &path)
{
    return cachedConfig("file:" + path, loadConfigFile, path);
}

} // namespace ccsim::machine
