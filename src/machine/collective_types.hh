/**
 * @file
 * Collective operation and algorithm identifiers.
 *
 * These live in the machine layer (not the MPI layer) because a
 * MachineConfig carries per-operation calibration: which algorithm
 * the vendor MPI used and how much software the implementation
 * layered on top of raw messaging.  The MPI layer consumes them.
 */

#ifndef CCSIM_MACHINE_COLLECTIVE_TYPES_HH
#define CCSIM_MACHINE_COLLECTIVE_TYPES_HH

#include <array>
#include <string>

#include "util/units.hh"

namespace ccsim::machine {

/** The collective operations evaluated by the paper (Table 1). */
enum class Coll
{
    Barrier = 0,
    Bcast,
    Gather,
    Scatter,
    Allgather,
    Alltoall,
    Reduce,
    Allreduce,
    ReduceScatter,
    Scan,
    NumColl
};

constexpr int kNumColl = static_cast<int>(Coll::NumColl);

/** All collectives, in declaration order. */
constexpr std::array<Coll, kNumColl> kAllColls = {
    Coll::Barrier,  Coll::Bcast,         Coll::Gather,
    Coll::Scatter,  Coll::Allgather,     Coll::Alltoall,
    Coll::Reduce,   Coll::Allreduce,     Coll::ReduceScatter,
    Coll::Scan,
};

/** The seven operations the paper's Table 3 fits (its naming). */
constexpr std::array<Coll, 7> kPaperColls = {
    Coll::Barrier, Coll::Bcast,  Coll::Gather, Coll::Scatter,
    Coll::Alltoall, Coll::Reduce, Coll::Scan,
};

/** Printable operation name ("broadcast", "total exchange", ...). */
std::string collName(Coll c);

/** Implementation algorithms selectable per collective. */
enum class Algo
{
    Default = 0,       //!< machine's configured choice
    Linear,            //!< sequential fan-in/out at the root
    Binomial,          //!< binomial tree
    Dissemination,     //!< dissemination (barrier/allgather)
    Pairwise,          //!< XOR-partner pairwise exchange (alltoall)
    Ring,              //!< ring shifts
    Bruck,             //!< Bruck log-round algorithm
    RecursiveDoubling, //!< recursive doubling
    ScatterAllgather,  //!< van de Geijn bcast (scatter + allgather)
    ReduceBcast,       //!< allreduce as reduce + bcast
    RecursiveHalving,  //!< reduce-scatter halving exchange
    Rabenseifner,      //!< allreduce as reduce-scatter + allgather
    Pipelined,         //!< segmented chain pipeline (long bcast)
    Hardware,          //!< dedicated hardware (T3D barrier tree)

    /**
     * Resolve through the machine's active selection table (the
     * tuned per-(op, p, m) decision map, see src/tuning).  When no
     * table is attached, or the table has no rule for the point,
     * Auto degrades to Default — the machine's configured choice —
     * so it is always safe as a call-site default.
     */
    Auto,
};

/** Printable algorithm name. */
std::string algoName(Algo a);

/**
 * Per-collective software calibration: what the vendor's MPI layers
 * on top of raw point-to-point messaging.
 */
struct CollCosts
{
    /** One-time CPU cost per rank to enter the collective call. */
    Time entry = 0;

    /** Extra CPU cost per algorithm stage (tree level, exchange
     *  round, or per-message for linear fan-in/out). */
    Time per_stage = 0;

    /**
     * Extra CPU cost per payload byte handled in a stage
     * (nanoseconds/byte).  Models the vendor MPI's internal
     * packetization / bookkeeping per-byte costs, which dominate the
     * measured long-message coefficients well beyond raw wire rate.
     */
    double per_stage_ns_per_byte = 0.0;

    /** Override the machine's reduce/scan combine bandwidth (MB/s)
     *  inside this collective (<= 0 keeps the machine default). */
    double reduce_bandwidth_override_mbs = 0.0;

    /** Override the transport send overhead inside this collective
     *  (< 0 keeps the machine default).  Models vendor fast paths
     *  such as the Paragon NX scan. */
    Time send_overhead_override = -1;

    /** Override the transport receive overhead likewise. */
    Time recv_overhead_override = -1;
};

} // namespace ccsim::machine

#endif // CCSIM_MACHINE_COLLECTIVE_TYPES_HH
