/**
 * @file
 * MachineConfig serialization: a simple `key = value` text format so
 * downstream users can define their own machines (or perturb the
 * calibrated presets) without recompiling.
 *
 * Format: one `key = value` per line; `#` starts a comment; a
 * `base = SP2|T3D|Paragon|Ideal` line (first, optional) starts from
 * a preset instead of the ideal defaults.  Per-collective keys are
 * scoped as `<op>.<field>`, e.g.
 *
 * @verbatim
 *     name = MyCluster
 *     base = SP2
 *     link_bandwidth_mbs = 100
 *     topology_spec = fattree:2;4,4;1,2
 *     hierarchy.chips = 2
 *     hierarchy.chip_bandwidth_mbs = 4000
 *     bcast.algorithm = scatter-allgather
 *     bcast.per_stage_us = 12
 * @endverbatim
 *
 * `topology_spec` (the net::makeTopology grammar, docs/TOPOLOGY.md)
 * overrides the preset's topology kind; `hierarchy.*` keys set the
 * multi-core node shape and the per-class link parameters.
 *
 * saveConfig() emits a complete round-trippable file; loadConfig()
 * is strict — unknown keys, malformed values, or out-of-range
 * settings raise ConfigError.
 */

#ifndef CCSIM_MACHINE_CONFIG_IO_HH
#define CCSIM_MACHINE_CONFIG_IO_HH

#include <iosfwd>
#include <string>

#include "machine/machine_config.hh"
#include "util/error.hh"

namespace ccsim::machine {

/**
 * A bad machine configuration: unknown preset/key/algorithm, a
 * malformed value, or an unreadable config file.  Now defined at the
 * util layer (util/error.hh) so the net topology factory raises the
 * same type; this alias keeps every existing machine::ConfigError
 * throw/catch site compiling unchanged.
 */
using ConfigError = ccsim::ConfigError;

/** Write @p cfg as a complete key = value document. */
void saveConfig(const MachineConfig &cfg, std::ostream &os);

/** saveConfig() to a file (ConfigError on I/O failure). */
void saveConfigFile(const MachineConfig &cfg, const std::string &path);

/** Parse a config document (see file comment for the format). */
MachineConfig loadConfig(std::istream &is);

/** loadConfig() from a file (ConfigError if unreadable). */
MachineConfig loadConfigFile(const std::string &path);

/** Preset lookup by name ("SP2", "T3D", "Paragon", "Ideal");
 *  case-insensitive, so CLI spellings like "paragon" work. */
MachineConfig presetByName(const std::string &name);

/**
 * Shared-handle preset lookup: the preset is built and validated
 * once per process and the immutable description handed out to every
 * caller, so concurrent sessions (the `ccsim serve` daemon's
 * connections, sweep workers) instantiate Machines from it without
 * copying or re-parsing.  Thread-safe; ConfigError on unknown names.
 */
ConfigHandle sharedPreset(const std::string &name);

/** Shared-handle analogue of loadConfigFile(): parsed and validated
 *  once per distinct path, then cached for the process lifetime
 *  (edits to the file after the first load are not observed).
 *  Thread-safe; ConfigError if unreadable or malformed. */
ConfigHandle sharedConfigFile(const std::string &path);

/** Key-name slug of a collective ("alltoall", "reduce_scatter"...). */
std::string collKey(Coll op);

/**
 * Inverse of algoName(): the one algorithm-name parser the CLI, the
 * machine-config loader, and the selection-table loader all share.
 * Accepts every algoName() spelling including "auto" and "default";
 * unknown names raise ConfigError listing the valid spellings (not a
 * generic parse error), so `--algo binomal` and a typo in a config
 * file fail identically and catchably.
 */
Algo algoFromName(const std::string &name);

/** Deprecated alias for algoFromName() (kept for source compat). */
Algo algoByName(const std::string &name);

/** Inverse of topologyKindName(); ConfigError on unknown names. */
TopologyKind topologyKindByName(const std::string &name);

} // namespace ccsim::machine

#endif // CCSIM_MACHINE_CONFIG_IO_HH
