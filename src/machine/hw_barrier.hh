/**
 * @file
 * HardwareBarrier: the Cray T3D's dedicated barrier network.
 *
 * The T3D wires a physical AND-tree across the machine: each PE sets
 * a bit on arrival and every PE sees the tree output flip once all
 * have arrived.  The paper measures this at ~3 us regardless of
 * machine size (Table 3: 0.011 log p + 3), at least 30x faster than
 * the software barriers of the SP2/Paragon.
 *
 * The model: arrivals are counted per barrier episode ("round");
 * when the last rank of a round arrives, all ranks of that round
 * are released a fixed latency later.  Rounds are tracked per rank
 * so a fast rank entering the next barrier cannot corrupt the
 * current one.
 */

#ifndef CCSIM_MACHINE_HW_BARRIER_HH
#define CCSIM_MACHINE_HW_BARRIER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/simulator.hh"
#include "sim/task.hh"
#include "util/units.hh"

namespace ccsim::machine {

/** Dedicated barrier-tree service shared by all ranks of a machine. */
class HardwareBarrier
{
  public:
    /**
     * @param sim     owning simulator
     * @param ranks   number of participating ranks
     * @param latency release delay once the last rank arrives
     */
    HardwareBarrier(sim::Simulator &sim, int ranks, Time latency);

    HardwareBarrier(const HardwareBarrier &) = delete;
    HardwareBarrier &operator=(const HardwareBarrier &) = delete;

    /**
     * Rank @p rank arrives at its next barrier episode; completes
     * when every rank has arrived at the same episode plus the
     * hardware latency.
     */
    sim::Task<void> arrive(int rank);

    /** Completed barrier episodes. */
    std::uint64_t episodes() const { return completed_; }

  private:
    struct Round
    {
        explicit Round(sim::Simulator &s) : release(s) {}

        int arrived = 0;
        sim::Trigger release;
    };

    Round &roundFor(std::uint64_t idx);

    sim::Simulator &sim_;
    int ranks_;
    Time latency_;
    std::vector<std::uint64_t> next_round_;
    std::vector<std::unique_ptr<Round>> rounds_;
    std::uint64_t base_round_ = 0; // index of rounds_[0]
    std::uint64_t completed_ = 0;
};

} // namespace ccsim::machine

#endif // CCSIM_MACHINE_HW_BARRIER_HH
