/**
 * @file
 * CommHook: observation points for MPI-level communication calls.
 *
 * A Machine optionally carries one CommHook; mpi::Comm invokes it at
 * the top of every public operation (compute, point-to-point,
 * collectives) with the call's arguments *as requested* — before
 * algorithm resolution, before any simulated time passes.  This is
 * the mechanism the replay Recorder uses to turn any live run into a
 * time-independent action trace (see src/replay/), but the interface
 * is generic: statistics collectors or call-order checkers can attach
 * the same way.
 *
 * The hook lives in the machine layer (not src/replay) so that
 * machine::Machine and mpi::Comm depend only on types they already
 * know: Coll/Algo, Bytes/Time, global node ids.
 *
 * All callbacks default to no-ops; implementations override what
 * they need.  Callbacks run synchronously on the calling rank's
 * coroutine and must not block or re-enter the communicator.
 */

#ifndef CCSIM_MACHINE_COMM_HOOK_HH
#define CCSIM_MACHINE_COMM_HOOK_HH

#include <vector>

#include "machine/collective_types.hh"
#include "util/units.hh"

namespace ccsim::machine {

/** Observer of mpi::Comm calls; attach with Machine::setCommHook. */
class CommHook
{
  public:
    virtual ~CommHook() = default;

    /** Comm::compute(@p t) on global rank @p node. */
    virtual void onCompute(int node, Time t);

    /** Blocking (or @p nonblocking) send of @p bytes to global rank
     *  @p dst. */
    virtual void onSend(int node, int dst, int tag, Bytes bytes,
                        bool nonblocking);

    /** Blocking (or @p nonblocking) receive from global rank @p src
     *  (msg::kAnySource / kAnyTag pass through as -1). */
    virtual void onRecv(int node, int src, int tag, bool nonblocking);

    /** Comm::wait on an outstanding request. */
    virtual void onWait(int node);

    /** Combined Comm::sendrecv. */
    virtual void onSendrecv(int node, int dst, int send_tag, Bytes bytes,
                            int src, int recv_tag);

    /**
     * Any collective call.
     *
     * @param node    calling global rank
     * @param op      the operation (gatherv/scatterv report their
     *                base op with @p counts non-null)
     * @param m       message length in bytes (0 for barrier and the
     *                vector collectives)
     * @param root    communicator-local root, -1 for rootless ops
     * @param algo    the algorithm *as requested* (Algo::Default when
     *                the caller left the choice to the machine)
     * @param counts  per-rank byte counts (gatherv/scatterv), else
     *                null
     * @param group   global ranks of the communicator, null for the
     *                world communicator
     */
    virtual void onCollective(int node, Coll op, Bytes m, int root,
                              Algo algo,
                              const std::vector<Bytes> *counts,
                              const std::vector<int> *group);

    /**
     * Machine::resetMetrics() was called (sweep/replay point
     * boundary).  Observers that accumulate per-point state — the
     * Replayer's per-run caches, metric aggregators — must drop it
     * here so repeated points stay byte-identical.
     */
    virtual void onMetricsReset();
};

} // namespace ccsim::machine

#endif // CCSIM_MACHINE_COMM_HOOK_HH
