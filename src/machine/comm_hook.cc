#include "machine/comm_hook.hh"

namespace ccsim::machine {

// Out-of-line no-op defaults keep the vtable in one translation unit.

void
CommHook::onCompute(int, Time)
{
}

void
CommHook::onSend(int, int, int, Bytes, bool)
{
}

void
CommHook::onRecv(int, int, int, bool)
{
}

void
CommHook::onWait(int)
{
}

void
CommHook::onSendrecv(int, int, int, Bytes, int, int)
{
}

void
CommHook::onCollective(int, Coll, Bytes, int, Algo,
                       const std::vector<Bytes> *,
                       const std::vector<int> *)
{
}

void
CommHook::onMetricsReset()
{
}

} // namespace ccsim::machine
