/**
 * @file
 * Machine: one instantiated multicomputer — simulator, network,
 * per-node transports, and special hardware services — built from a
 * MachineConfig for a given node count.
 *
 * A Machine owns everything a run needs:
 * @code
 *     machine::Machine m(machine::t3dConfig(), 64);
 *     m.spawnAll([&](int rank) -> sim::Task<void> { ... });
 *     m.run();
 * @endcode
 */

#ifndef CCSIM_MACHINE_MACHINE_HH
#define CCSIM_MACHINE_MACHINE_HH

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "fault/fault_injector.hh"
#include "machine/hw_barrier.hh"
#include "machine/machine_config.hh"
#include "msg/transport.hh"
#include "net/network.hh"
#include "sim/simulator.hh"
#include "sim/trace.hh"
#include "stats/metrics.hh"
#include "stats/snapshot.hh"

namespace ccsim::machine {

class CommHook;

/** A ready-to-run simulated multicomputer. */
class Machine
{
  public:
    /** Instantiate @p config for @p p nodes (validates the config). */
    Machine(MachineConfig config, int p);

    /**
     * Instantiate a shared immutable config for @p p nodes without
     * copying it — the cheap path for concurrent sessions that build
     * many Machines from one description (sharedPreset() et al.).
     */
    Machine(ConfigHandle config, int p);

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /** Number of nodes. */
    int size() const { return size_; }

    /** The configuration this machine was built from. */
    const MachineConfig &config() const { return *config_; }

    sim::Simulator &sim() { return sim_; }
    net::Network &network() { return *network_; }
    msg::Fabric &fabric() { return *fabric_; }

    /** Transport endpoint of node @p rank. */
    msg::Transport &node(int rank) { return fabric_->node(rank); }

    /** Barrier tree, or nullptr when the machine has none. */
    HardwareBarrier *hwBarrier() { return hw_barrier_.get(); }

    /** Fault injector, or nullptr when config().fault is disabled. */
    fault::FaultInjector *faultInjector() { return fault_.get(); }

    /** Fault outcome of the run so far (empty when disabled). */
    fault::FaultReport faultReport() const
    {
        return fault_ ? fault_->report() : fault::FaultReport{};
    }

    /** Activity-trace sink (enable() it before running). */
    sim::Trace &trace() { return trace_; }

    /** Live metrics, or nullptr unless config().collect_metrics. */
    stats::MachineMetrics *metrics() { return metrics_.get(); }

    /**
     * Assemble the machine-wide MetricsSnapshot: every live metric
     * group under stable names, plus the per-link traffic table and
     * the fault / simulator counters (see docs/METRICS.md for the
     * schema).  Empty when metrics are off.
     */
    stats::MetricsSnapshot metricsSnapshot();

    /**
     * Zero all metric state (sweep/replay point boundary) without
     * touching any simulated state, and notify the CommHook via
     * onMetricsReset().  No-op on the simulation itself: times after
     * a reset are identical to times without one.
     */
    void resetMetrics();

    /** Observer of mpi::Comm calls (e.g.\ the replay Recorder), or
     *  null.  Not owned; must outlive the run. */
    CommHook *commHook() const { return comm_hook_; }
    void setCommHook(CommHook *hook) { comm_hook_ = hook; }

    /** Spawn one rank program per node (rank passed to the factory). */
    void spawnAll(const std::function<sim::Task<void>(int)> &factory);

    /** Run the event loop to completion. */
    void run() { sim_.run(); }

    /**
     * Deterministic communicator-context allocation: the same global
     * rank list always maps to the same context id, so every member
     * of a new communicator derives the identical id without
     * coordination.  Id 0 is the world communicator.
     */
    int contextFor(const std::vector<int> &global_ranks);

  private:
    ConfigHandle config_;
    int size_;
    sim::Simulator sim_;
    sim::Trace trace_;
    std::unique_ptr<net::Network> network_;
    std::unique_ptr<fault::FaultInjector> fault_;
    std::unique_ptr<stats::MachineMetrics> metrics_;
    std::unique_ptr<msg::Fabric> fabric_;
    std::unique_ptr<HardwareBarrier> hw_barrier_;
    CommHook *comm_hook_ = nullptr;
    std::map<std::vector<int>, int> context_registry_;
};

} // namespace ccsim::machine

#endif // CCSIM_MACHINE_MACHINE_HH
