#include "machine/hw_barrier.hh"

#include "util/logging.hh"

namespace ccsim::machine {

HardwareBarrier::HardwareBarrier(sim::Simulator &sim, int ranks,
                                 Time latency)
    : sim_(sim), ranks_(ranks), latency_(latency)
{
    if (ranks < 1)
        fatal("HardwareBarrier: need at least one rank, got %d", ranks);
    if (latency < 0)
        fatal("HardwareBarrier: negative latency");
    next_round_.assign(static_cast<size_t>(ranks), 0);
}

HardwareBarrier::Round &
HardwareBarrier::roundFor(std::uint64_t idx)
{
    if (idx < base_round_)
        panic("HardwareBarrier: round %llu already retired",
              static_cast<unsigned long long>(idx));
    while (rounds_.size() <= idx - base_round_)
        rounds_.push_back(std::make_unique<Round>(sim_));
    return *rounds_[idx - base_round_];
}

sim::Task<void>
HardwareBarrier::arrive(int rank)
{
    if (rank < 0 || rank >= ranks_)
        panic("HardwareBarrier::arrive: rank %d out of range", rank);

    std::uint64_t idx = next_round_[static_cast<size_t>(rank)]++;
    Round &round = roundFor(idx);
    if (++round.arrived == ranks_) {
        ++completed_;
        sim::Trigger *release = &round.release;
        sim_.schedule(latency_, [release] { release->fire(); });
    }
    co_await round.release.wait();

    // Retire fully-released leading rounds nobody can revisit.
    while (!rounds_.empty() && rounds_.front()->release.fired()) {
        bool safe = true;
        for (std::uint64_t nr : next_round_) {
            if (nr <= base_round_) {
                safe = false;
                break;
            }
        }
        if (!safe)
            break;
        rounds_.erase(rounds_.begin());
        ++base_round_;
    }
}

} // namespace ccsim::machine
