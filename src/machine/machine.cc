#include "machine/machine.hh"

#include <cstdio>

#include "machine/comm_hook.hh"
#include "machine/config_io.hh"
#include "util/logging.hh"

namespace ccsim::machine {

Machine::Machine(MachineConfig config, int p)
    : Machine(std::make_shared<const MachineConfig>(std::move(config)),
              p)
{
}

Machine::Machine(ConfigHandle config, int p)
    : config_(std::move(config)), size_(p)
{
    if (!config_)
        fatal("Machine: null config handle");
    config_->validate();
    if (p < 1)
        fatal("Machine: need at least one node, got %d", p);
    network_ = std::make_unique<net::Network>(config_->makeTopology(p),
                                              config_->network);
    if (network_->topology().numLinkClasses() > 1) {
        // Hierarchical wiring: classes 1/2 are the intra-chip and
        // intra-node fabrics, parameterized by the config's
        // HierarchySpec (its defaults apply even when the hierarchy
        // came from a `hier:` topo spec rather than the struct).
        network_->setLinkClassParams(1, config_->hierarchy.chip);
        network_->setLinkClassParams(2, config_->hierarchy.node);
    }
    if (config_->fault.enabled()) {
        fault_ = std::make_unique<fault::FaultInjector>(
            config_->fault, p, network_->topology().numLinks());
        if (fault_->degradedLinks() > 0)
            network_->setLinkSlowdownHook(
                [fi = fault_.get()](net::LinkId l, Time t) {
                    return fi->linkSlowdown(l, t);
                });
    }
    if (config_->collect_metrics) {
        metrics_ = std::make_unique<stats::MachineMetrics>(kNumColl);
        network_->enableCounters();
    }
    fabric_ = std::make_unique<msg::Fabric>(
        sim_, *network_, p, config_->transport, &trace_, fault_.get(),
        metrics_ ? &metrics_->transport : nullptr);
    // Pending-event high water scales with the node count (each rank
    // keeps a few wire/resume events in flight); pre-size the
    // calendar so sweeps at large p skip the early growth phase.
    sim_.queue().reserve(static_cast<std::size_t>(p) * 8);
    if (config_->hardware_barrier)
        hw_barrier_ = std::make_unique<HardwareBarrier>(
            sim_, p, config_->hardware_barrier_latency);
}

int
Machine::contextFor(const std::vector<int> &global_ranks)
{
    if (global_ranks.empty())
        fatal("Machine::contextFor: empty rank list");
    for (int r : global_ranks)
        if (r < 0 || r >= size_)
            fatal("Machine::contextFor: rank %d outside machine of %d",
                  r, size_);
    auto [it, inserted] = context_registry_.try_emplace(
        global_ranks, static_cast<int>(context_registry_.size()) + 1);
    return it->second;
}

stats::MetricsSnapshot
Machine::metricsSnapshot()
{
    stats::MetricsSnapshot snap;
    if (!metrics_)
        return snap;

    snap.horizon_us = toMicros(sim_.now());

    const stats::TransportMetrics &t = metrics_->transport;
    snap.counters["msg.sends.eager"] = t.eager_sends.value();
    snap.counters["msg.sends.rdv"] = t.rdv_sends.value();
    snap.counters["msg.sends.self"] = t.self_sends.value();
    snap.counters["msg.sends.blt"] = t.blt_sends.value();
    snap.counters["msg.recvs"] = t.recvs.value();
    snap.gauges["msg.unexpected_queue"] = t.unexpected_hw.value();
    snap.gauges["msg.pending_rts_queue"] = t.pending_rts_hw.value();
    snap.gauges["msg.pending_recv_queue"] = t.pending_recv_hw.value();
    snap.gauges["msg.inject_backlog_us"] = t.inject_backlog_us.value();
    snap.histograms["msg.bytes_per_send"] =
        stats::HistogramSnapshot::of(t.msg_bytes);

    for (Coll op : kAllColls) {
        const stats::CollOpMetrics &c =
            metrics_->coll[static_cast<std::size_t>(op)];
        if (c.calls.value() == 0)
            continue;
        std::string prefix = "coll." + collKey(op);
        snap.counters[prefix + ".calls"] = c.calls.value();
        snap.counters[prefix + ".stages"] = c.stages.value();
        snap.counters[prefix + ".msgs"] = c.msgs.value();
        snap.histograms[prefix + ".time_us"] =
            stats::HistogramSnapshot::of(c.time_us);
    }

    snap.counters["net.messages"] = network_->messages();
    snap.counters["net.payload_bytes"] =
        static_cast<std::uint64_t>(network_->totalBytes());
    // net.route_cache_hits / net.route_cache_misses are gone with
    // the route cache itself (routes are analytic now); these count
    // the streaming walks instead.
    snap.counters["net.route.walks"] = network_->routeWalks();
    snap.counters["net.route.hops"] = network_->routeHops();

    // Completion-slot pool effectiveness across all endpoints.  The
    // counters are per-machine and derived only from operation
    // counts, so they stay deterministic run to run.
    sim::PoolCounters pc;
    for (int i = 0; i < size_; ++i) {
        sim::PoolCounters c = fabric_->node(i).poolCounters();
        pc.reuses += c.reuses;
        pc.allocs += c.allocs;
        pc.oversize += c.oversize;
    }
    snap.counters["msg.pool.reuses"] = pc.reuses;
    snap.counters["msg.pool.allocs"] = pc.allocs;

    snap.counters["sim.events"] = sim_.eventsFired();
    snap.counters["sim.tasks"] = sim_.tasksSpawned();
    snap.gauges["sim.event_queue_depth"] =
        static_cast<double>(sim_.queue().maxDepth());

    // The fault layer's counters, unified into the same snapshot so
    // one report answers "what did this run's faults cost".
    fault::FaultReport fr = faultReport();
    snap.counters["fault.drops"] = fr.drops;
    snap.counters["fault.delays"] = fr.delays;
    snap.counters["fault.retransmits"] = fr.retransmits;
    snap.counters["fault.exhausted"] = fr.exhausted;
    if (fr.degradation.any() || (fault_ && fault_->spec().policy !=
                                 fault::RecoveryPolicy::FailFast)) {
        snap.counters["fault.reroutes"] = fr.degradation.reroutes;
        snap.counters["fault.reroute_extra_bytes"] =
            static_cast<std::uint64_t>(fr.degradation.extra_bytes);
        snap.counters["fault.escalations"] = fr.degradation.escalations;
        snap.counters["fault.absorbed"] = fr.degradation.absorbed;
        snap.counters["fault.fallback_routes"] =
            fault_ ? fault_->fallbacksComputed() : 0;
        snap.gauges["fault.absorbed_delay_us"] =
            toMicros(fr.degradation.absorbed_delay);
    }

    if (const net::Network::LinkCounters *lc = network_->counters()) {
        snap.counters["net.stalled_transfers"] = lc->stalled_transfers;
        // Only touched occupancy pages are visited — per-link rows
        // stay O(links used) even on million-link fabrics.
        network_->forEachTouchedLink([&](net::LinkId l, Time busy) {
            const auto i = static_cast<std::size_t>(l);
            const Bytes b = lc->bytes.get(i);
            const Time stall = lc->stall.get(i);
            if (b == 0 && stall == 0)
                return;
            // Zero-padded ids keep the name-sorted link table in
            // numeric order.
            char label[16];
            std::snprintf(label, sizeof(label), "link%05zu", i);
            stats::LinkRow row;
            row.link = label;
            row.bytes = static_cast<std::uint64_t>(b);
            row.busy_us = toMicros(busy);
            row.stall_us = toMicros(stall);
            row.util = snap.horizon_us > 0.0
                           ? row.busy_us / snap.horizon_us
                           : 0.0;
            snap.links.push_back(std::move(row));
        });
    }

    // Extension-point registry entries, folded in under their own
    // names (extensions should pick a distinct prefix).
    for (const auto &[name, c] : metrics_->registry.counters())
        snap.counters[name] = c.value();
    for (const auto &[name, g] : metrics_->registry.gauges())
        snap.gauges[name] = g.value();
    for (const auto &[name, h] : metrics_->registry.histograms())
        snap.histograms[name] = stats::HistogramSnapshot::of(h);

    return snap;
}

void
Machine::resetMetrics()
{
    if (metrics_) {
        metrics_->reset();
        network_->resetCounters();
    }
    if (comm_hook_)
        comm_hook_->onMetricsReset();
}

void
Machine::spawnAll(const std::function<sim::Task<void>(int)> &factory)
{
    for (int rank = 0; rank < size_; ++rank)
        sim_.spawn(factory(rank));
}

} // namespace ccsim::machine
