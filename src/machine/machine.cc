#include "machine/machine.hh"

#include "util/logging.hh"

namespace ccsim::machine {

Machine::Machine(MachineConfig config, int p)
    : config_(std::move(config)), size_(p)
{
    config_.validate();
    if (p < 1)
        fatal("Machine: need at least one node, got %d", p);
    network_ = std::make_unique<net::Network>(config_.makeTopology(p),
                                              config_.network);
    if (config_.fault.enabled()) {
        fault_ = std::make_unique<fault::FaultInjector>(
            config_.fault, p, network_->topology().numLinks());
        if (fault_->degradedLinks() > 0)
            network_->setLinkSlowdownHook(
                [fi = fault_.get()](net::LinkId l, Time t) {
                    return fi->linkSlowdown(l, t);
                });
    }
    fabric_ = std::make_unique<msg::Fabric>(sim_, *network_, p,
                                            config_.transport, &trace_,
                                            fault_.get());
    if (config_.hardware_barrier)
        hw_barrier_ = std::make_unique<HardwareBarrier>(
            sim_, p, config_.hardware_barrier_latency);
}

int
Machine::contextFor(const std::vector<int> &global_ranks)
{
    if (global_ranks.empty())
        fatal("Machine::contextFor: empty rank list");
    for (int r : global_ranks)
        if (r < 0 || r >= size_)
            fatal("Machine::contextFor: rank %d outside machine of %d",
                  r, size_);
    auto [it, inserted] = context_registry_.try_emplace(
        global_ranks, static_cast<int>(context_registry_.size()) + 1);
    return it->second;
}

void
Machine::spawnAll(const std::function<sim::Task<void>(int)> &factory)
{
    for (int rank = 0; rank < size_; ++rank)
        sim_.spawn(factory(rank));
}

} // namespace ccsim::machine
