/**
 * @file
 * MachineConfig: the complete parameter set describing one
 * message-passing multicomputer, plus calibrated presets for the
 * paper's three machines.
 *
 * Everything the simulator knows about a machine is in this plain
 * struct — topology family, physical link parameters, messaging
 * software overheads, special hardware (barrier tree, block-transfer
 * engine, message coprocessor), per-collective algorithm defaults
 * and software costs — so ablations are one-field edits and new
 * machines are pure data.
 *
 * Calibration notes and the residuals against the paper's Table 3
 * live in EXPERIMENTS.md.
 */

#ifndef CCSIM_MACHINE_MACHINE_CONFIG_HH
#define CCSIM_MACHINE_MACHINE_CONFIG_HH

#include <array>
#include <memory>
#include <string>

#include "fault/fault_spec.hh"
#include "machine/collective_types.hh"
#include "msg/transport.hh"
#include "net/network.hh"
#include "net/topology.hh"

namespace ccsim::tuning {
class SelectionTable; // src/tuning: per-(op, p, m) decision map
}

namespace ccsim::machine {

/** Topology family a machine instantiates for a given node count. */
enum class TopologyKind
{
    Mesh2D,         //!< Paragon-style 2-D mesh
    Torus3D,        //!< T3D-style 3-D torus
    Omega,          //!< SP2-style multistage switch
    Hypercube,      //!< nCUBE/iPSC-style binary hypercube
    FullyConnected, //!< ideal crossbar baseline
    FatTree,        //!< folded-Clos D-mod-k fat tree (post-paper)
    Dragonfly,      //!< group/router/node direct network (post-paper)
};

/** Printable topology-family name. */
std::string topologyKindName(TopologyKind k);

/**
 * Multi-core node hierarchy: hang chips * cores ranks off every
 * network endpoint (net::Hierarchical) with their own intra-chip /
 * intra-node link parameters.  Disabled by default (chips == 0):
 * the paper's machines were one rank per endpoint.
 */
struct HierarchySpec
{
    int chips = 0; //!< chips per node; 0 disables the hierarchy
    int cores = 1; //!< cores (ranks) per chip

    /** Link class 1: the shared on-chip interconnect. */
    net::NetworkParams chip{.link_bandwidth_mbs = 8000.0,
                            .hop_latency = nanoseconds(5)};

    /** Link class 2: the shared in-node bus / NIC path. */
    net::NetworkParams node{.link_bandwidth_mbs = 2000.0,
                            .hop_latency = nanoseconds(50)};

    bool enabled() const { return chips > 0; }

    /** Ranks per network endpoint (1 when disabled). */
    int ranksPerNode() const { return enabled() ? chips * cores : 1; }
};

/** Full description of one simulated multicomputer. */
struct MachineConfig
{
    std::string name = "unnamed";

    TopologyKind topology = TopologyKind::FullyConnected;

    /** Switch radix (Omega topology only). */
    int switch_radix = 4;

    /**
     * Explicit topology spec (net::makeTopology grammar, e.g.\
     * "fattree:2;4,4;1,2" or "hier:2x4/torus3d").  When non-empty it
     * overrides `topology`/`switch_radix` entirely — the factory
     * builds exactly what the spec says for the requested node
     * count.  Empty (the default) keeps the kind-based balanced
     * shapes, so every pre-spec config behaves as before.
     */
    std::string topo_spec;

    /** Multi-core node model (off by default; see HierarchySpec). */
    HierarchySpec hierarchy;

    /** Physical network parameters. */
    net::NetworkParams network;

    /** Messaging software/protocol parameters. */
    msg::TransportParams transport;

    /** Fault injection (disabled by default: all rates zero). */
    fault::FaultSpec fault;

    /**
     * Collect runtime metrics (stats::MachineMetrics) on machines
     * built from this config.  Off by default — the hot paths then
     * skip all metric updates — and deliberately not persisted by
     * config-file I/O: observability is a per-run choice
     * (--metrics), not a machine property, and simulated results are
     * identical either way.
     */
    bool collect_metrics = false;

    /**
     * Active algorithm selection table: resolves Algo::Auto calls to
     * a concrete algorithm per (op, p, m).  Null (the default) makes
     * Auto identical to Default — the machine's configured per-op
     * choice below.  Shared and immutable so copying a config (every
     * sweep point does) stays cheap.  Like collect_metrics, this is
     * deliberately not persisted by config-file I/O: tables have
     * their own file format (tuning::SelectionTable) and are attached
     * per run (--selection), not baked into a machine description.
     */
    std::shared_ptr<const tuning::SelectionTable> selection;

    /** Dedicated barrier network (T3D's hardwired AND tree). */
    bool hardware_barrier = false;

    /** Latency of a hardware barrier once all ranks have arrived. */
    Time hardware_barrier_latency = 0;

    /** Rate at which a node combines operands in reduce/scan/
     *  allreduce (models FPU + memory system), MB/s. */
    double reduce_bandwidth_mbs = 100.0;

    /** Algorithm the vendor MPI uses per collective. */
    std::array<Algo, kNumColl> algorithms{};

    /** Per-collective software calibration. */
    std::array<CollCosts, kNumColl> costs{};

    /** Accessors by collective. */
    Algo
    algorithmFor(Coll c) const
    {
        return algorithms[static_cast<size_t>(c)];
    }

    const CollCosts &
    costsFor(Coll c) const
    {
        return costs[static_cast<size_t>(c)];
    }

    CollCosts &
    costsFor(Coll c)
    {
        return costs[static_cast<size_t>(c)];
    }

    void
    setAlgorithm(Coll c, Algo a)
    {
        algorithms[static_cast<size_t>(c)] = a;
    }

    /** Instantiate this config's topology for @p p nodes. */
    std::unique_ptr<net::Topology> makeTopology(int p) const;

    /** Sanity-check all fields; fatal() on user error. */
    void validate() const;
};

/**
 * IBM SP2 (MHPCC configuration): POWER2 thin nodes on a multistage
 * Vulcan switch.  ~40 MB/s links, 125 ns per hop, MPICH-derived MPI
 * with heavyweight collective layering (the measured SP2 barrier
 * costs ~123 us per dissemination round).
 */
MachineConfig sp2Config();

/**
 * Cray T3D (Eagan configuration): Alpha 21064 nodes on a 3-D torus.
 * ~300 MB/s links, 20 ns per hop, hardwired barrier tree (~3 us),
 * block-transfer engine for long messages, low-overhead fast
 * messaging (prefetch queue / remote stores).
 */
MachineConfig t3dConfig();

/**
 * Intel Paragon (SDSC configuration): i860 nodes on a 2-D mesh with
 * a dedicated i860 message coprocessor per node.  ~175 MB/s links,
 * 40 ns per hop, NX messaging with expensive per-message software —
 * especially in the NX gather / total-exchange collectives — but a
 * kernel fast path for scan.
 */
MachineConfig paragonConfig();

/**
 * An idealized machine: fully-connected contention-free network,
 * zero software overhead beyond copies.  Baseline for ablations.
 */
MachineConfig idealConfig();

/**
 * A shared immutable machine description.  Machine construction from
 * a handle copies nothing: any number of concurrent sessions (e.g.\
 * the `ccsim serve` query daemon's connections) can instantiate
 * Machines from one parsed-and-validated config.  Obtain handles
 * from sharedPreset() / sharedConfigFile() (config_io.hh), or wrap a
 * hand-built config once with std::make_shared.
 */
using ConfigHandle = std::shared_ptr<const MachineConfig>;

/** The paper's three machines, in its presentation order. */
std::array<MachineConfig, 3> paperMachines();

} // namespace ccsim::machine

#endif // CCSIM_MACHINE_MACHINE_CONFIG_HH
