#include "machine/machine_config.hh"

#include "net/dragonfly.hh"
#include "net/fat_tree.hh"
#include "net/fully_connected.hh"
#include "net/hierarchical.hh"
#include "net/hypercube.hh"
#include "net/mesh2d.hh"
#include "net/omega.hh"
#include "net/topology_factory.hh"
#include "net/torus3d.hh"
#include "util/logging.hh"

namespace ccsim::machine {

std::string
topologyKindName(TopologyKind k)
{
    switch (k) {
      case TopologyKind::Mesh2D:
        return "mesh2d";
      case TopologyKind::Torus3D:
        return "torus3d";
      case TopologyKind::Omega:
        return "omega";
      case TopologyKind::Hypercube:
        return "hypercube";
      case TopologyKind::FullyConnected:
        return "fully-connected";
      case TopologyKind::FatTree:
        return "fattree";
      case TopologyKind::Dragonfly:
        return "dragonfly";
      default:
        panic("topologyKindName: bad kind %d", static_cast<int>(k));
    }
}

std::unique_ptr<net::Topology>
MachineConfig::makeTopology(int p) const
{
    if (p < 1)
        fatal("MachineConfig::makeTopology: bad node count %d", p);
    // An explicit spec overrides the kind-based balanced shapes
    // entirely (including any `hier:` wrapping it asks for).
    if (!topo_spec.empty())
        return net::makeTopology(topo_spec, p);

    int inner_p = p;
    if (hierarchy.enabled()) {
        const int per = hierarchy.ranksPerNode();
        if (p % per != 0)
            fatal("MachineConfig %s: %d ranks do not divide into "
                  "%d per node (%d chips x %d cores)",
                  name.c_str(), p, per, hierarchy.chips,
                  hierarchy.cores);
        inner_p = p / per;
    }

    std::unique_ptr<net::Topology> inner;
    if (inner_p == 1) {
        inner = std::make_unique<net::FullyConnected>(1);
    } else {
        switch (topology) {
          case TopologyKind::Mesh2D: {
              auto [rows, cols] = net::meshDimsFor(inner_p);
              inner = std::make_unique<net::Mesh2D>(rows, cols);
              break;
          }
          case TopologyKind::Torus3D: {
              auto d = net::torusDimsFor(inner_p);
              inner = std::make_unique<net::Torus3D>(d[0], d[1], d[2]);
              break;
          }
          case TopologyKind::Omega:
            inner = std::make_unique<net::Omega>(inner_p, switch_radix);
            break;
          case TopologyKind::Hypercube:
            inner = std::make_unique<net::Hypercube>(inner_p);
            break;
          case TopologyKind::FullyConnected:
            inner = std::make_unique<net::FullyConnected>(inner_p);
            break;
          case TopologyKind::FatTree:
            inner = net::FatTree::balancedFor(inner_p);
            break;
          case TopologyKind::Dragonfly:
            inner = net::Dragonfly::balancedFor(inner_p);
            break;
          default:
            panic("MachineConfig::makeTopology: bad topology kind");
        }
    }
    if (hierarchy.enabled())
        return std::make_unique<net::Hierarchical>(
            std::move(inner), hierarchy.chips, hierarchy.cores);
    return inner;
}

void
MachineConfig::validate() const
{
    if (name.empty())
        fatal("MachineConfig: empty machine name");
    if (topology == TopologyKind::Omega && switch_radix < 2)
        fatal("MachineConfig %s: omega radix %d < 2", name.c_str(),
              switch_radix);
    if (hierarchy.chips < 0 ||
        (hierarchy.enabled() && hierarchy.cores < 1))
        fatal("MachineConfig %s: bad hierarchy shape %d chips x %d "
              "cores",
              name.c_str(), hierarchy.chips, hierarchy.cores);
    if (hierarchy.enabled() &&
        (hierarchy.chip.link_bandwidth_mbs <= 0 ||
         hierarchy.node.link_bandwidth_mbs <= 0 ||
         hierarchy.chip.hop_latency < 0 ||
         hierarchy.node.hop_latency < 0))
        fatal("MachineConfig %s: hierarchy link parameters must be "
              "positive",
              name.c_str());
    if (hardware_barrier && hardware_barrier_latency < 0)
        fatal("MachineConfig %s: negative hardware barrier latency",
              name.c_str());
    if (reduce_bandwidth_mbs <= 0)
        fatal("MachineConfig %s: reduce bandwidth must be positive",
              name.c_str());
    for (Coll c : kAllColls) {
        const CollCosts &cc = costsFor(c);
        if (cc.entry < 0 || cc.per_stage < 0)
            fatal("MachineConfig %s: negative collective cost for %s",
                  name.c_str(), collName(c).c_str());
    }
    if (!hardware_barrier && algorithmFor(Coll::Barrier) == Algo::Hardware)
        fatal("MachineConfig %s: hardware barrier algorithm without "
              "hardware barrier support", name.c_str());
    fault.validate();
}

namespace {

/** Era-correct software algorithm defaults (MPICH 1.x lineage). */
void
setDefaultAlgorithms(MachineConfig &m)
{
    m.setAlgorithm(Coll::Barrier, Algo::Dissemination);
    m.setAlgorithm(Coll::Bcast, Algo::Binomial);
    m.setAlgorithm(Coll::Gather, Algo::Linear);
    m.setAlgorithm(Coll::Scatter, Algo::Linear);
    m.setAlgorithm(Coll::Allgather, Algo::Ring);
    m.setAlgorithm(Coll::Alltoall, Algo::Pairwise);
    m.setAlgorithm(Coll::Reduce, Algo::Binomial);
    m.setAlgorithm(Coll::Allreduce, Algo::ReduceBcast);
    m.setAlgorithm(Coll::ReduceScatter, Algo::RecursiveHalving);
    m.setAlgorithm(Coll::Scan, Algo::RecursiveDoubling);
}

} // namespace

MachineConfig
sp2Config()
{
    MachineConfig m;
    m.name = "SP2";
    m.topology = TopologyKind::Omega;
    m.switch_radix = 4;

    m.network.link_bandwidth_mbs = 40.0;
    m.network.hop_latency = nanoseconds(125);
    m.network.packet_overhead = 0;
    m.network.contention = true;

    m.transport.send_overhead = microseconds(5.5);
    m.transport.recv_overhead = microseconds(3.5);
    m.transport.copy_bandwidth_mbs = 300.0;
    m.transport.eager_threshold = 4 * KiB;
    m.transport.rendezvous_overhead = microseconds(8);
    m.transport.coprocessor_overlap = 0.0;
    m.transport.blt_enabled = false;

    m.reduce_bandwidth_mbs = 200.0;

    setDefaultAlgorithms(m);
    m.costsFor(Coll::Barrier) = {.entry = 0,
                                 .per_stage = microseconds(112)};
    m.costsFor(Coll::Bcast) = {.entry = microseconds(20),
                               .per_stage = microseconds(44)};
    m.costsFor(Coll::Gather) = {.entry = microseconds(100),
                                .per_stage = 0};
    m.costsFor(Coll::Scatter) = {.entry = microseconds(70),
                                 .per_stage = 0,
                                 .per_stage_ns_per_byte = 36.5};
    m.costsFor(Coll::Allgather) = {.entry = microseconds(50),
                                   .per_stage = microseconds(20)};
    m.costsFor(Coll::Alltoall) = {.entry = microseconds(80),
                                  .per_stage = microseconds(13),
                                  .per_stage_ns_per_byte = 24.3};
    m.costsFor(Coll::Reduce) = {.entry = microseconds(20),
                                .per_stage = microseconds(52)};
    m.costsFor(Coll::Allreduce) = {.entry = microseconds(30),
                                   .per_stage = microseconds(50)};
    m.costsFor(Coll::ReduceScatter) = {.entry = microseconds(30),
                                       .per_stage = microseconds(50)};
    m.costsFor(Coll::Scan) = {.entry = 0,
                              .per_stage = microseconds(89)};
    return m;
}

MachineConfig
t3dConfig()
{
    MachineConfig m;
    m.name = "T3D";
    m.topology = TopologyKind::Torus3D;

    m.network.link_bandwidth_mbs = 300.0;
    m.network.hop_latency = nanoseconds(20);
    m.network.packet_overhead = 0;
    m.network.contention = true;

    m.transport.send_overhead = microseconds(4);
    m.transport.recv_overhead = microseconds(5);
    m.transport.copy_bandwidth_mbs = 150.0;
    m.transport.eager_threshold = 4 * KiB;
    m.transport.rendezvous_overhead = microseconds(5);
    m.transport.coprocessor_overlap = 0.0;
    m.transport.blt_enabled = true;
    m.transport.blt_threshold = 8 * KiB;
    m.transport.blt_setup = microseconds(25);

    m.reduce_bandwidth_mbs = 17.0;

    m.hardware_barrier = true;
    m.hardware_barrier_latency = microseconds(3);

    setDefaultAlgorithms(m);
    m.setAlgorithm(Coll::Barrier, Algo::Hardware);
    m.costsFor(Coll::Barrier) = {.entry = 0, .per_stage = 0};
    m.costsFor(Coll::Bcast) = {.entry = microseconds(10),
                               .per_stage = microseconds(14),
                               .per_stage_ns_per_byte = 8.8};
    m.costsFor(Coll::Gather) = {.entry = microseconds(25),
                                .per_stage = 0,
                                .per_stage_ns_per_byte = 5.0};
    m.costsFor(Coll::Scatter) = {.entry = microseconds(60),
                                 .per_stage = 0,
                                 .per_stage_ns_per_byte = 9.2};
    m.costsFor(Coll::Allgather) = {.entry = microseconds(10),
                                   .per_stage = microseconds(14)};
    m.costsFor(Coll::Alltoall) = {.entry = microseconds(8),
                                  .per_stage = microseconds(17),
                                  .per_stage_ns_per_byte = 14.0};
    m.costsFor(Coll::Reduce) = {.entry = microseconds(40),
                                .per_stage = microseconds(25)};
    m.costsFor(Coll::Allreduce) = {.entry = microseconds(40),
                                   .per_stage = microseconds(25)};
    m.costsFor(Coll::ReduceScatter) = {.entry = microseconds(40),
                                       .per_stage = microseconds(25)};
    m.costsFor(Coll::Scan) = {.entry = microseconds(35),
                              .per_stage = microseconds(19),
                              .reduce_bandwidth_override_mbs = 22.0};
    return m;
}

MachineConfig
paragonConfig()
{
    MachineConfig m;
    m.name = "Paragon";
    m.topology = TopologyKind::Mesh2D;

    m.network.link_bandwidth_mbs = 175.0;
    m.network.hop_latency = nanoseconds(40);
    m.network.packet_overhead = 0;
    m.network.contention = true;

    m.transport.send_overhead = microseconds(17);
    m.transport.recv_overhead = microseconds(46);
    m.transport.copy_bandwidth_mbs = 400.0;
    m.transport.eager_threshold = 4 * KiB;
    m.transport.rendezvous_overhead = microseconds(12);
    m.transport.coprocessor_overlap = 0.85;
    m.transport.blt_enabled = false;

    m.reduce_bandwidth_mbs = 7.0;

    setDefaultAlgorithms(m);
    m.costsFor(Coll::Barrier) = {.entry = 0,
                                 .per_stage = microseconds(84)};
    m.costsFor(Coll::Bcast) = {.entry = microseconds(15),
                               .per_stage = microseconds(8),
                               .per_stage_ns_per_byte = 10.5,
                               .recv_overhead_override = microseconds(25)};
    m.costsFor(Coll::Gather) = {.entry = microseconds(10),
                                .per_stage = 0,
                                .per_stage_ns_per_byte = 10.0};
    m.costsFor(Coll::Scatter) = {.entry = microseconds(70),
                                 .per_stage = 0};
    m.costsFor(Coll::Allgather) = {.entry = microseconds(20),
                                   .per_stage = microseconds(20)};
    m.costsFor(Coll::Alltoall) = {.entry = microseconds(80),
                                  .per_stage = microseconds(34),
                                  .per_stage_ns_per_byte = 23.0};
    m.costsFor(Coll::Reduce) = {.entry = 0,
                                .per_stage = microseconds(14)};
    m.costsFor(Coll::Allreduce) = {.entry = 0,
                                   .per_stage = microseconds(14)};
    m.costsFor(Coll::ReduceScatter) = {.entry = 0,
                                       .per_stage = microseconds(14)};
    // NX kernel fast path: the anomalously cheap Paragon scan the
    // paper highlights (Fig. 1e / Table 3).
    m.costsFor(Coll::Scan) = {.entry = microseconds(60),
                              .per_stage = 0,
                              .reduce_bandwidth_override_mbs = 15.0,
                              .send_overhead_override = microseconds(5),
                              .recv_overhead_override = microseconds(7)};
    return m;
}

MachineConfig
idealConfig()
{
    MachineConfig m;
    m.name = "Ideal";
    m.topology = TopologyKind::FullyConnected;

    m.network.link_bandwidth_mbs = 1000.0;
    m.network.hop_latency = nanoseconds(10);
    m.network.contention = true;

    m.transport.send_overhead = microseconds(1);
    m.transport.recv_overhead = microseconds(1);
    m.transport.copy_bandwidth_mbs = 4000.0;
    m.transport.eager_threshold = 16 * KiB;
    m.transport.rendezvous_overhead = microseconds(1);

    m.reduce_bandwidth_mbs = 500.0;

    setDefaultAlgorithms(m);
    return m;
}

std::array<MachineConfig, 3>
paperMachines()
{
    return {sp2Config(), t3dConfig(), paragonConfig()};
}

} // namespace ccsim::machine
