#include "model/timing_expr.hh"

#include <cmath>
#include <cstdio>

#include "util/logging.hh"

namespace ccsim::model {

std::string
growthName(Growth g)
{
    return g == Growth::Linear ? "p" : "log p";
}

double
growthTerm(Growth g, int p)
{
    if (p < 1)
        panic("growthTerm: bad machine size %d", p);
    if (g == Growth::Linear)
        return static_cast<double>(p);
    return std::log2(static_cast<double>(p));
}

double
TimingExpression::startupUs(int p) const
{
    return a * growthTerm(t0_growth, p) + b;
}

double
TimingExpression::perByteUs(int p) const
{
    return c * growthTerm(d_growth, p) + d;
}

double
TimingExpression::delayUs(Bytes m, int p) const
{
    return perByteUs(p) * static_cast<double>(m);
}

double
TimingExpression::evalUs(Bytes m, int p) const
{
    return startupUs(p) + delayUs(m, p);
}

double
aggregationFactor(machine::Coll op, int p)
{
    double dp = static_cast<double>(p);
    switch (op) {
      case machine::Coll::Barrier:
        return 0.0;
      case machine::Coll::Alltoall:
      case machine::Coll::Allgather:
        return dp * (dp - 1.0);
      default:
        return dp - 1.0;
    }
}

double
TimingExpression::aggregatedBandwidthMBs(machine::Coll op, int p) const
{
    double per_byte = perByteUs(p);
    if (per_byte <= 0.0)
        return 0.0;
    // bytes / us == MB/s (decimal).
    return aggregationFactor(op, p) / per_byte;
}

namespace {

/** Two-significant-digit coefficient formatting, paper style. */
std::string
coeff(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.3g", v);
    return buf;
}

} // namespace

std::string
TimingExpression::startupStr() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s %s %s %s", coeff(a).c_str(),
                  growthName(t0_growth).c_str(), b < 0 ? "-" : "+",
                  coeff(std::fabs(b)).c_str());
    return buf;
}

std::string
TimingExpression::str() const
{
    char buf[192];
    std::snprintf(buf, sizeof(buf), "(%s %s %s %s) + (%s %s %s %s) m",
                  coeff(a).c_str(), growthName(t0_growth).c_str(),
                  b < 0 ? "-" : "+", coeff(std::fabs(b)).c_str(),
                  coeff(c).c_str(), growthName(d_growth).c_str(),
                  d < 0 ? "-" : "+", coeff(std::fabs(d)).c_str());
    return buf;
}

} // namespace ccsim::model
