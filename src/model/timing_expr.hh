/**
 * @file
 * TimingExpression: the paper's closed-form collective model
 *
 *     T(m, p) = T0(p) + D(m, p)
 *             = (a g(p) + b) + (c g(p) + d) m      [microseconds]
 *
 * with growth term g(p) = p for the O(p) operations (gather,
 * scatter, total exchange) and g(p) = log2 p for the O(log p) ones
 * (barrier, broadcast, reduce, scan).  From it derive the paper's
 * four metrics (Table 2): startup latency T0(p), transmission delay
 * D(m, p), collective messaging time T(m, p), and aggregated
 * bandwidth
 *
 *     R_inf(p) = lim_{m->inf} f(m, p) / D(m, p) = F(p) / (c g(p) + d)
 *
 * where the aggregated message length is f(m, p) = F(p) m (Eq. 4).
 */

#ifndef CCSIM_MODEL_TIMING_EXPR_HH
#define CCSIM_MODEL_TIMING_EXPR_HH

#include <string>

#include "machine/collective_types.hh"
#include "util/units.hh"

namespace ccsim::model {

/** Growth family of the p-dependent terms. */
enum class Growth
{
    Linear, //!< g(p) = p
    Log2,   //!< g(p) = log2 p
};

/** Printable growth-term name ("p" or "log p"). */
std::string growthName(Growth g);

/** Evaluate g(p). */
double growthTerm(Growth g, int p);

/**
 * The fitted closed form for one (machine, collective) pair.  The
 * startup and per-byte parts may use different growth families —
 * the paper's scan rows, for instance, fit a log2 p startup with a
 * linear-p per-byte term.
 */
struct TimingExpression
{
    Growth t0_growth = Growth::Log2; //!< growth of the startup part
    Growth d_growth = Growth::Log2;  //!< growth of the per-byte part
    double a = 0; //!< us per g(p), startup
    double b = 0; //!< us, startup constant
    double c = 0; //!< us per byte per g(p)
    double d = 0; //!< us per byte

    /** Startup latency T0(p) in microseconds. */
    double startupUs(int p) const;

    /** Transmission delay D(m, p) in microseconds. */
    double delayUs(Bytes m, int p) const;

    /** Collective messaging time T(m, p) in microseconds. */
    double evalUs(Bytes m, int p) const;

    /** Per-byte cost c g(p) + d in microseconds. */
    double perByteUs(int p) const;

    /**
     * Aggregated bandwidth R_inf(p) in MB/s for operation @p op
     * (which fixes F(p)); 0 when the per-byte cost is non-positive
     * (a fit artifact on nearly-flat data).
     */
    double aggregatedBandwidthMBs(machine::Coll op, int p) const;

    /** Render in the paper's Table 3 style, e.g.
     *  "(26 p + 8.6) + (0.038 p - 0.12) m". */
    std::string str() const;

    /** Render just the startup part, e.g. "123 log p - 90". */
    std::string startupStr() const;
};

/** F(p): aggregated message length per byte of m (Section 3). */
double aggregationFactor(machine::Coll op, int p);

} // namespace ccsim::model

#endif // CCSIM_MODEL_TIMING_EXPR_HH
