#include "model/fit.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "model/linalg.hh"
#include "util/logging.hh"

namespace ccsim::model {

namespace {

constexpr Growth kGrowths[2] = {Growth::Linear, Growth::Log2};

void
checkSamples(const std::vector<Sample> &samples, std::size_t need)
{
    if (samples.size() < need)
        fatal("fit: %zu samples, need at least %zu", samples.size(),
              need);
    for (const auto &s : samples)
        if (s.p < 1 || s.m < 0)
            fatal("fit: bad sample (m=%lld, p=%d)",
                  static_cast<long long>(s.m), s.p);
}

} // namespace

TimingExpression
fitFull(const std::vector<Sample> &samples, Growth t0_growth,
        Growth d_growth)
{
    checkSamples(samples, 4);
    Matrix a(samples.size(), 4);
    std::vector<double> b(samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const Sample &s = samples[i];
        double g1 = growthTerm(t0_growth, s.p);
        double g2 = growthTerm(d_growth, s.p);
        double m = static_cast<double>(s.m);
        a.at(i, 0) = g1;
        a.at(i, 1) = 1.0;
        a.at(i, 2) = g2 * m;
        a.at(i, 3) = m;
        b[i] = s.t_us;
    }
    std::vector<double> x = leastSquares(a, b);
    TimingExpression e;
    e.t0_growth = t0_growth;
    e.d_growth = d_growth;
    e.a = x[0];
    e.b = x[1];
    e.c = x[2];
    e.d = x[3];
    return e;
}

TimingExpression
fitFullAuto(const std::vector<Sample> &samples)
{
    TimingExpression best;
    double best_err = -1;
    for (Growth g1 : kGrowths) {
        for (Growth g2 : kGrowths) {
            TimingExpression e = fitFull(samples, g1, g2);
            double err = relRmsError(e, samples);
            if (best_err < 0 || err < best_err) {
                best_err = err;
                best = e;
            }
        }
    }
    return best;
}

TimingExpression
fitStartup(const std::vector<Sample> &samples, Growth growth)
{
    checkSamples(samples, 2);
    Matrix a(samples.size(), 2);
    std::vector<double> b(samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
        a.at(i, 0) = growthTerm(growth, samples[i].p);
        a.at(i, 1) = 1.0;
        b[i] = samples[i].t_us;
    }
    std::vector<double> x = leastSquares(a, b);
    TimingExpression e;
    e.t0_growth = growth;
    e.d_growth = growth;
    e.a = x[0];
    e.b = x[1];
    return e;
}

TimingExpression
fitStartupAuto(const std::vector<Sample> &samples)
{
    TimingExpression best;
    double best_err = -1;
    for (Growth g : kGrowths) {
        TimingExpression e = fitStartup(samples, g);
        double err = relRmsError(e, samples);
        if (best_err < 0 || err < best_err) {
            best_err = err;
            best = e;
        }
    }
    return best;
}

TimingExpression
fitPaperStyle(const std::vector<Sample> &samples, Growth t0_growth,
              Growth d_growth)
{
    checkSamples(samples, 4);

    // Partition the samples by machine size.
    std::map<int, std::vector<Sample>> by_p;
    for (const Sample &s : samples)
        by_p[s.p].push_back(s);

    // Stage 1: startup latency from the shortest message per p.
    std::vector<Sample> startup;
    // Stage 2 data: per-byte slope between the two longest messages.
    std::vector<Sample> slopes; // t_us holds the slope (us/B)
    for (auto &[p, group] : by_p) {
        std::sort(group.begin(), group.end(),
                  [](const Sample &x, const Sample &y) {
                      return x.m < y.m;
                  });
        startup.push_back(group.front());
        if (group.size() >= 2) {
            const Sample &hi = group.back();
            const Sample &lo = group[group.size() - 2];
            if (hi.m > lo.m) {
                Sample sl;
                sl.p = p;
                sl.m = 0;
                sl.t_us = (hi.t_us - lo.t_us) /
                          static_cast<double>(hi.m - lo.m);
                slopes.push_back(sl);
            }
        }
    }
    if (startup.size() < 2 || slopes.size() < 2)
        fatal("fitPaperStyle: need at least two machine sizes with two "
              "message lengths each");

    TimingExpression t0 = fitStartup(startup, t0_growth);

    Matrix a(slopes.size(), 2);
    std::vector<double> b(slopes.size());
    for (std::size_t i = 0; i < slopes.size(); ++i) {
        a.at(i, 0) = growthTerm(d_growth, slopes[i].p);
        a.at(i, 1) = 1.0;
        b[i] = slopes[i].t_us;
    }
    std::vector<double> x = leastSquares(a, b);

    TimingExpression e;
    e.t0_growth = t0_growth;
    e.d_growth = d_growth;
    e.a = t0.a;
    e.b = t0.b;
    e.c = x[0];
    e.d = x[1];
    return e;
}

TimingExpression
fitPaperStyleAuto(const std::vector<Sample> &samples)
{
    TimingExpression best;
    double best_err = -1;
    for (Growth g1 : kGrowths) {
        for (Growth g2 : kGrowths) {
            TimingExpression e = fitPaperStyle(samples, g1, g2);
            double err = relRmsError(e, samples);
            if (best_err < 0 || err < best_err) {
                best_err = err;
                best = e;
            }
        }
    }
    return best;
}

double
rmsErrorUs(const TimingExpression &e, const std::vector<Sample> &samples)
{
    if (samples.empty())
        return 0.0;
    double sum = 0;
    for (const Sample &s : samples) {
        double diff = e.evalUs(s.m, s.p) - s.t_us;
        sum += diff * diff;
    }
    return std::sqrt(sum / static_cast<double>(samples.size()));
}

double
relRmsError(const TimingExpression &e, const std::vector<Sample> &samples)
{
    double sum = 0;
    std::size_t n = 0;
    for (const Sample &s : samples) {
        if (s.t_us <= 0)
            continue;
        double rel = (e.evalUs(s.m, s.p) - s.t_us) / s.t_us;
        sum += rel * rel;
        ++n;
    }
    return n ? std::sqrt(sum / static_cast<double>(n)) : 0.0;
}

} // namespace ccsim::model
