#include "model/paper_data.hh"

#include <map>

#include "util/logging.hh"

namespace ccsim::model::paper {

namespace {

using machine::Coll;

TimingExpression
expr(Growth t0_g, double a, double b, Growth d_g, double c, double d)
{
    TimingExpression e;
    e.t0_growth = t0_g;
    e.d_growth = d_g;
    e.a = a;
    e.b = b;
    e.c = c;
    e.d = d;
    return e;
}

constexpr Growth L = Growth::Linear;
constexpr Growth G = Growth::Log2;

/** Table 3, transcribed row by row (times in microseconds). */
const std::map<std::pair<std::string, Coll>, TimingExpression> &
table3()
{
    static const std::map<std::pair<std::string, Coll>,
                          TimingExpression>
        t = {
            // Barrier
            {{"SP2", Coll::Barrier}, expr(G, 123, -90, G, 0, 0)},
            {{"T3D", Coll::Barrier}, expr(G, 0.011, 3, G, 0, 0)},
            {{"Paragon", Coll::Barrier}, expr(G, 147, -66, G, 0, 0)},
            // Broadcast
            {{"SP2", Coll::Bcast}, expr(G, 55, 30, G, 0.014, 0.053)},
            {{"T3D", Coll::Bcast}, expr(G, 23, 12, G, 0.013, -0.0071)},
            {{"Paragon", Coll::Bcast},
             expr(G, 52, 15, G, 0.019, -0.022)},
            // Scan (log-p startup, linear-p per-byte)
            {{"SP2", Coll::Scan}, expr(G, 100, -43, L, 0.0010, 0.23)},
            {{"T3D", Coll::Scan}, expr(G, 28, 41, L, 0.0046, 0.12)},
            {{"Paragon", Coll::Scan},
             expr(G, 10, 73, L, 0.0033, 0.28)},
            // Total exchange
            {{"SP2", Coll::Alltoall}, expr(L, 24, 90, L, 0.082, -0.29)},
            {{"T3D", Coll::Alltoall},
             expr(L, 26, 8.6, L, 0.038, -0.12)},
            {{"Paragon", Coll::Alltoall},
             expr(L, 97, 82, L, 0.073, -0.10)},
            // Gather
            {{"SP2", Coll::Gather},
             expr(L, 3.7, 128, L, 0.022, -0.011)},
            {{"T3D", Coll::Gather},
             expr(L, 5.3, 30, L, 0.0047, 0.0084)},
            {{"Paragon", Coll::Gather},
             expr(L, 48, 15, L, 0.0081, 0.039)},
            // Scatter
            {{"SP2", Coll::Scatter},
             expr(L, 5.8, 77, L, 0.039, -0.12)},
            {{"T3D", Coll::Scatter},
             expr(L, 4.3, 67, L, 0.0057, 0.16)},
            {{"Paragon", Coll::Scatter},
             expr(L, 18, 78, L, 0.0031, 0.039)},
            // Reduce
            {{"SP2", Coll::Reduce},
             expr(G, 63, 26, G, 0.016, 0.071)},
            {{"T3D", Coll::Reduce},
             expr(G, 34, 49, G, 0.061, -0.00035)},
            {{"Paragon", Coll::Reduce},
             expr(G, 77, 3.6, G, 0.16, -0.028)},
        };
    return t;
}

} // namespace

const std::vector<std::string> &
machineNames()
{
    static const std::vector<std::string> names = {"SP2", "T3D",
                                                   "Paragon"};
    return names;
}

bool
hasExpression(const std::string &machine, Coll op)
{
    return table3().count({machine, op}) > 0;
}

const TimingExpression &
expression(const std::string &machine, Coll op)
{
    auto it = table3().find({machine, op});
    if (it == table3().end())
        fatal("paper::expression: Table 3 has no row for %s / %s",
              machine.c_str(), machine::collName(op).c_str());
    return it->second;
}

double
alltoallBandwidth64MBs(const std::string &machine)
{
    // Abstract: "For total exchange with 64 nodes, the T3D, Paragon,
    // and SP2 achieved an aggregated bandwidth of 1.745, 0.879, and
    // 0.818 GBytes/s, respectively."
    if (machine == "T3D")
        return 1745.0;
    if (machine == "Paragon")
        return 879.0;
    if (machine == "SP2")
        return 818.0;
    fatal("paper::alltoallBandwidth64MBs: unknown machine '%s'",
          machine.c_str());
}

double
t3dStartup64Us(Coll op)
{
    switch (op) {
      case Coll::Bcast:
        return 150.0;
      case Coll::Alltoall:
        return 1700.0;
      case Coll::Scatter:
        return 298.0;
      case Coll::Gather:
        return 365.0;
      case Coll::Scan:
        return 209.0;
      case Coll::Reduce:
        return 253.0;
      default:
        fatal("paper::t3dStartup64Us: no quoted value for %s",
              machine::collName(op).c_str());
    }
}

} // namespace ccsim::model::paper
