/**
 * @file
 * Small dense linear algebra for the curve-fitting pipeline: solving
 * the normal equations of a least-squares fit needs nothing more
 * than Gaussian elimination with partial pivoting on matrices of
 * rank 2-4.
 */

#ifndef CCSIM_MODEL_LINALG_HH
#define CCSIM_MODEL_LINALG_HH

#include <cstddef>
#include <vector>

namespace ccsim::model {

/** Dense row-major matrix. */
class Matrix
{
  public:
    /** rows x cols zero matrix. */
    Matrix(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    double &at(std::size_t r, std::size_t c);
    double at(std::size_t r, std::size_t c) const;

  private:
    std::size_t rows_;
    std::size_t cols_;
    std::vector<double> data_;
};

/**
 * Solve A x = b by Gaussian elimination with partial pivoting.
 * A must be square with b.size() == A.rows().  Panics on a singular
 * (or numerically singular) system.
 */
std::vector<double> solve(Matrix a, std::vector<double> b);

/**
 * Ordinary least squares: find x minimizing |A x - b|^2 via the
 * normal equations (A^T A) x = A^T b.  A is tall (rows >= cols).
 */
std::vector<double> leastSquares(const Matrix &a,
                                 const std::vector<double> &b);

} // namespace ccsim::model

#endif // CCSIM_MODEL_LINALG_HH
