#include "model/predictor.hh"

#include <algorithm>

#include "model/paper_data.hh"
#include "util/logging.hh"

namespace ccsim::model {

MachineModel::MachineModel(std::string name) : name_(std::move(name)) {}

MachineModel
MachineModel::fromPaper(const std::string &machine)
{
    MachineModel m(machine + " (paper Table 3)");
    for (machine::Coll op : machine::kPaperColls)
        m.set(op, paper::expression(machine, op));
    return m;
}

bool
MachineModel::has(machine::Coll op) const
{
    return exprs_[static_cast<size_t>(op)].has_value();
}

void
MachineModel::set(machine::Coll op, const TimingExpression &e)
{
    exprs_[static_cast<size_t>(op)] = e;
}

const TimingExpression &
MachineModel::expression(machine::Coll op) const
{
    const auto &slot = exprs_[static_cast<size_t>(op)];
    if (!slot)
        fatal("MachineModel %s: no expression for %s", name_.c_str(),
              machine::collName(op).c_str());
    return *slot;
}

double
MachineModel::predictUs(machine::Coll op, Bytes m, int p) const
{
    if (m < 0 || p < 1)
        fatal("MachineModel::predictUs: bad (m=%lld, p=%d)",
              static_cast<long long>(m), p);
    return expression(op).evalUs(m, p);
}

double
MachineModel::predictBandwidthMBs(machine::Coll op, int p) const
{
    return expression(op).aggregatedBandwidthMBs(op, p);
}

AppPrediction
predictApp(const MachineModel &model, const std::vector<AppStep> &steps,
           int p)
{
    if (p < 1)
        fatal("predictApp: bad node count %d", p);
    AppPrediction out;
    for (const AppStep &s : steps) {
        if (s.repeat < 0)
            fatal("predictApp: negative repeat count");
        // Fitted expressions can go (slightly) negative outside
        // the measured envelope — the paper's own T3D alltoall row
        // does at p = 2.  Clamp: a collective never takes negative
        // time.
        double per = s.is_compute
                         ? s.compute_us
                         : std::max(0.0,
                                    model.predictUs(s.op, s.m, p));
        double total = per * static_cast<double>(s.repeat);
        if (s.is_compute)
            out.compute_us += total;
        else
            out.comm_us += total;
    }
    out.total_us = out.comm_us + out.compute_us;
    return out;
}

} // namespace ccsim::model
