/**
 * @file
 * Hockney's point-to-point communication model.
 *
 * The paper (Section 9) argues that Hockney's asymptotic model
 *
 *     t(m) = t0 + m / r_inf
 *
 * "is only effective in characterizing point-to-point
 * communications", which is why it introduces the aggregated
 * bandwidth metric for collectives.  To make that comparison
 * concrete, this module fits Hockney's parameters — the asymptotic
 * bandwidth r_inf, the startup time t0, and the half-performance
 * message length n_1/2 = t0 * r_inf (the m at which half of r_inf
 * is achieved) — from ping-pong measurements.
 */

#ifndef CCSIM_MODEL_HOCKNEY_HH
#define CCSIM_MODEL_HOCKNEY_HH

#include <string>
#include <vector>

#include "util/units.hh"

namespace ccsim::model {

/** One (message length, one-way time) observation. */
struct PingPongSample
{
    Bytes m = 0;
    double t_us = 0.0;
};

/** Hockney's (t0, r_inf) characterization of a pt-2-pt channel. */
struct HockneyModel
{
    double t0_us = 0.0;       //!< startup (zero-byte) latency
    double r_inf_mbs = 0.0;   //!< asymptotic bandwidth, MB/s
    double n_half_bytes = 0.0; //!< half-performance message length

    /** Predicted one-way time for an m-byte message (us). */
    double evalUs(Bytes m) const;

    /** Achieved bandwidth m / t(m) in MB/s. */
    double bandwidthAtMBs(Bytes m) const;

    /** "t0 = 55.0 us, r_inf = 38.2 MB/s, n_1/2 = 2101 B" */
    std::string str() const;
};

/**
 * Least-squares fit of t(m) = t0 + m / r_inf over the samples
 * (requires at least two distinct message lengths; fatal otherwise).
 * A non-increasing time curve yields r_inf = 0 (degenerate fit).
 */
HockneyModel fitHockney(const std::vector<PingPongSample> &samples);

} // namespace ccsim::model

#endif // CCSIM_MODEL_HOCKNEY_HH
