/**
 * @file
 * The paper's published numbers, digitized.
 *
 * Table 3 gives curve-fitted timing expressions (microseconds) for
 * seven collectives on the three machines; the text quotes several
 * spot values (startup latencies on the 64-node T3D, the 64-node
 * total-exchange aggregated bandwidths of the abstract, the SP2
 * 64 KB / 64-node total-exchange time).  Every bench prints paper
 * vs simulated side by side from this table, and the test suite
 * checks the paper's own self-consistency claims against it (e.g.
 * Section 8's worked example: T3D total exchange, m = 512, p = 64
 * -> 2.86 ms).
 */

#ifndef CCSIM_MODEL_PAPER_DATA_HH
#define CCSIM_MODEL_PAPER_DATA_HH

#include <string>
#include <vector>

#include "machine/collective_types.hh"
#include "model/timing_expr.hh"

namespace ccsim::model::paper {

/** Machines in the paper's presentation order. */
const std::vector<std::string> &machineNames();

/** True when Table 3 has a row for (machine, op). */
bool hasExpression(const std::string &machine, machine::Coll op);

/** The Table 3 closed form for (machine, op); fatal if absent. */
const TimingExpression &expression(const std::string &machine,
                                   machine::Coll op);

/** Abstract: aggregated bandwidth of 64-node total exchange, MB/s. */
double alltoallBandwidth64MBs(const std::string &machine);

/**
 * Section 4: measured startup latencies on the 64-node T3D in
 * microseconds (broadcast 150, total exchange 1700, scatter 298,
 * gather 365, scan 209, reduce 253).
 */
double t3dStartup64Us(machine::Coll op);

} // namespace ccsim::model::paper

#endif // CCSIM_MODEL_PAPER_DATA_HH
