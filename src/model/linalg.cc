#include "model/linalg.hh"

#include <cmath>

#include "util/logging.hh"

namespace ccsim::model {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
    if (rows == 0 || cols == 0)
        panic("Matrix: zero dimension %zux%zu", rows, cols);
}

double &
Matrix::at(std::size_t r, std::size_t c)
{
    if (r >= rows_ || c >= cols_)
        panic("Matrix::at(%zu, %zu) outside %zux%zu", r, c, rows_, cols_);
    return data_[r * cols_ + c];
}

double
Matrix::at(std::size_t r, std::size_t c) const
{
    if (r >= rows_ || c >= cols_)
        panic("Matrix::at(%zu, %zu) outside %zux%zu", r, c, rows_, cols_);
    return data_[r * cols_ + c];
}

std::vector<double>
solve(Matrix a, std::vector<double> b)
{
    std::size_t n = a.rows();
    if (a.cols() != n || b.size() != n)
        panic("solve: shape mismatch (%zux%zu, b %zu)", a.rows(),
              a.cols(), b.size());

    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivot.
        std::size_t pivot = col;
        double best = std::fabs(a.at(col, col));
        for (std::size_t r = col + 1; r < n; ++r) {
            double v = std::fabs(a.at(r, col));
            if (v > best) {
                best = v;
                pivot = r;
            }
        }
        if (best < 1e-12)
            panic("solve: singular system (pivot %g at column %zu)",
                  best, col);
        if (pivot != col) {
            for (std::size_t c = 0; c < n; ++c)
                std::swap(a.at(pivot, c), a.at(col, c));
            std::swap(b[pivot], b[col]);
        }
        // Eliminate below.
        for (std::size_t r = col + 1; r < n; ++r) {
            double f = a.at(r, col) / a.at(col, col);
            if (f == 0.0)
                continue;
            for (std::size_t c = col; c < n; ++c)
                a.at(r, c) -= f * a.at(col, c);
            b[r] -= f * b[col];
        }
    }

    // Back substitution.
    std::vector<double> x(n, 0.0);
    for (std::size_t i = n; i-- > 0;) {
        double sum = b[i];
        for (std::size_t c = i + 1; c < n; ++c)
            sum -= a.at(i, c) * x[c];
        x[i] = sum / a.at(i, i);
    }
    return x;
}

std::vector<double>
leastSquares(const Matrix &a, const std::vector<double> &b)
{
    std::size_t rows = a.rows();
    std::size_t cols = a.cols();
    if (b.size() != rows)
        panic("leastSquares: %zu rows vs %zu targets", rows, b.size());
    if (rows < cols)
        panic("leastSquares: underdetermined (%zu rows, %zu unknowns)",
              rows, cols);

    Matrix ata(cols, cols);
    std::vector<double> atb(cols, 0.0);
    for (std::size_t i = 0; i < cols; ++i) {
        for (std::size_t j = 0; j < cols; ++j) {
            double s = 0;
            for (std::size_t r = 0; r < rows; ++r)
                s += a.at(r, i) * a.at(r, j);
            ata.at(i, j) = s;
        }
        double s = 0;
        for (std::size_t r = 0; r < rows; ++r)
            s += a.at(r, i) * b[r];
        atb[i] = s;
    }
    return solve(std::move(ata), std::move(atb));
}

} // namespace ccsim::model
