#include "model/hockney.hh"

#include <cstdio>

#include "model/linalg.hh"
#include "util/logging.hh"

namespace ccsim::model {

double
HockneyModel::evalUs(Bytes m) const
{
    if (r_inf_mbs <= 0)
        return t0_us;
    return t0_us + static_cast<double>(m) / r_inf_mbs;
}

double
HockneyModel::bandwidthAtMBs(Bytes m) const
{
    double t = evalUs(m);
    return t > 0 ? static_cast<double>(m) / t : 0.0;
}

std::string
HockneyModel::str() const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "t0 = %.1f us, r_inf = %.1f MB/s, n_1/2 = %.0f B",
                  t0_us, r_inf_mbs, n_half_bytes);
    return buf;
}

HockneyModel
fitHockney(const std::vector<PingPongSample> &samples)
{
    if (samples.size() < 2)
        fatal("fitHockney: need at least two samples, got %zu",
              samples.size());
    bool distinct = false;
    for (const auto &s : samples)
        if (s.m != samples.front().m)
            distinct = true;
    if (!distinct)
        fatal("fitHockney: all samples share one message length");

    // t = t0 + s m with s = 1 / r_inf.
    Matrix a(samples.size(), 2);
    std::vector<double> b(samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
        a.at(i, 0) = static_cast<double>(samples[i].m);
        a.at(i, 1) = 1.0;
        b[i] = samples[i].t_us;
    }
    auto x = leastSquares(a, b);

    HockneyModel h;
    h.t0_us = x[1];
    h.r_inf_mbs = x[0] > 0 ? 1.0 / x[0] : 0.0;
    h.n_half_bytes = h.t0_us * h.r_inf_mbs;
    return h;
}

} // namespace ccsim::model
