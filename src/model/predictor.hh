/**
 * @file
 * MachineModel: the paper's end product as an API.
 *
 * Section 8: "These formulas assist us in quantifying the total
 * execution time of different optimization strategies in parallel
 * program development."  A MachineModel holds one fitted
 * TimingExpression per collective for one machine — either digitized
 * from the paper's Table 3 or refit from simulator sweeps
 * (harness::fitMachineModel) — and predicts the communication time
 * of whole application phases without running anything.
 */

#ifndef CCSIM_MODEL_PREDICTOR_HH
#define CCSIM_MODEL_PREDICTOR_HH

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "machine/collective_types.hh"
#include "model/timing_expr.hh"

namespace ccsim::model {

/** Per-machine set of fitted collective timing expressions. */
class MachineModel
{
  public:
    /** Empty model named @p name. */
    explicit MachineModel(std::string name = "unnamed");

    /** Digitize the paper's Table 3 for "SP2" / "T3D" / "Paragon"
     *  (seven operations). */
    static MachineModel fromPaper(const std::string &machine);

    const std::string &name() const { return name_; }

    /** True when an expression for @p op has been set. */
    bool has(machine::Coll op) const;

    /** Install/replace the expression for @p op. */
    void set(machine::Coll op, const TimingExpression &e);

    /** Expression for @p op; fatal if absent. */
    const TimingExpression &expression(machine::Coll op) const;

    /** Predicted collective time in microseconds; fatal if absent. */
    double predictUs(machine::Coll op, Bytes m, int p) const;

    /** Predicted aggregated bandwidth R_inf(p) in MB/s. */
    double predictBandwidthMBs(machine::Coll op, int p) const;

  private:
    std::string name_;
    std::array<std::optional<TimingExpression>,
               machine::kNumColl> exprs_;
};

/** One step of an application's communication script. */
struct AppStep
{
    /** A collective phase: op with per-pair message length m. */
    static AppStep
    collective(machine::Coll op, Bytes m, int repeat = 1)
    {
        AppStep s;
        s.is_compute = false;
        s.op = op;
        s.m = m;
        s.repeat = repeat;
        return s;
    }

    /** A local computation phase of @p us microseconds. */
    static AppStep
    compute(double us, int repeat = 1)
    {
        AppStep s;
        s.is_compute = true;
        s.compute_us = us;
        s.repeat = repeat;
        return s;
    }

    bool is_compute = false;
    machine::Coll op = machine::Coll::Barrier;
    Bytes m = 0;
    double compute_us = 0.0;
    int repeat = 1;
};

/** Predicted breakdown of a script on p nodes. */
struct AppPrediction
{
    double total_us = 0.0;
    double comm_us = 0.0;
    double compute_us = 0.0;

    /** Communication share in percent. */
    double
    commPercent() const
    {
        return total_us > 0 ? 100.0 * comm_us / total_us : 0.0;
    }
};

/**
 * Predict the per-node wall time of a bulk-synchronous script (all
 * steps executed by every rank in order) on @p p nodes.  The
 * paper's trade-off analysis — "possible combinations of (m, p)
 * should be tested to achieve a shorter execution time" — in one
 * call.
 */
AppPrediction predictApp(const MachineModel &model,
                         const std::vector<AppStep> &steps, int p);

} // namespace ccsim::model

#endif // CCSIM_MODEL_PREDICTOR_HH
