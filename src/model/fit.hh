/**
 * @file
 * Curve fitting of measured collective times to the paper's closed
 * form T(m, p) = (a g1(p) + b) + (c g2(p) + d) m.
 *
 * Two fitting procedures:
 *
 *  - fitFull(): one least-squares solve over the 4-term basis
 *    {1, g1(p), m, g2(p) m} for fixed growth families;
 *
 *  - fitPaperStyle(): the two-stage procedure the authors describe —
 *    the startup part is fitted to the shortest-message column
 *    (T0(p) ~ T(m_min, p)), then the per-byte part is fitted to the
 *    finite-difference slope of the longest-message columns.  This
 *    keeps the startup coefficients meaningful even though long-
 *    message samples dominate the raw sum of squares.
 *
 * The *Auto variants try every growth-family combination and keep
 * the one with the smallest relative RMS error, reproducing the
 * paper's split (log p for barrier/bcast/reduce/scan startup, p for
 * gather/scatter/total exchange).
 */

#ifndef CCSIM_MODEL_FIT_HH
#define CCSIM_MODEL_FIT_HH

#include <vector>

#include "model/timing_expr.hh"
#include "util/units.hh"

namespace ccsim::model {

/** One (m, p, time) observation. */
struct Sample
{
    Bytes m = 0;
    int p = 0;
    double t_us = 0.0;
};

/** Least squares over {1, g1, m, g2 m} with fixed growth families. */
TimingExpression fitFull(const std::vector<Sample> &samples,
                         Growth t0_growth, Growth d_growth);

/** fitFull over all growth combinations; best relative RMS wins. */
TimingExpression fitFullAuto(const std::vector<Sample> &samples);

/** Two-stage fit (startup from min-m, slope from the largest m). */
TimingExpression fitPaperStyle(const std::vector<Sample> &samples,
                               Growth t0_growth, Growth d_growth);

/** fitPaperStyle over all growth combinations. */
TimingExpression fitPaperStyleAuto(const std::vector<Sample> &samples);

/** Startup-only fit: T0(p) = a g(p) + b from (p, t) pairs. */
TimingExpression fitStartup(const std::vector<Sample> &samples,
                            Growth growth);

/** Startup-only fit with automatic growth selection. */
TimingExpression fitStartupAuto(const std::vector<Sample> &samples);

/** Root-mean-square absolute error of @p e over @p samples (us). */
double rmsErrorUs(const TimingExpression &e,
                  const std::vector<Sample> &samples);

/** RMS of relative errors (dimensionless; samples with t <= 0
 *  are skipped). */
double relRmsError(const TimingExpression &e,
                   const std::vector<Sample> &samples);

} // namespace ccsim::model

#endif // CCSIM_MODEL_FIT_HH
