#include "fault/fault_spec.hh"

#include <stdexcept>
#include <vector>

#include "util/cli.hh"
#include "util/logging.hh"

namespace ccsim::fault {

const char *
policyName(RecoveryPolicy p)
{
    switch (p) {
      case RecoveryPolicy::FailFast:
        return "fail_fast";
      case RecoveryPolicy::RetryEscalate:
        return "retry_escalate";
      case RecoveryPolicy::Degrade:
        return "degrade";
    }
    return "?";
}

RecoveryPolicy
policyFromName(const std::string &name)
{
    if (name == "fail_fast")
        return RecoveryPolicy::FailFast;
    if (name == "retry_escalate")
        return RecoveryPolicy::RetryEscalate;
    if (name == "degrade")
        return RecoveryPolicy::Degrade;
    std::string hint = cli::closestMatch(
        name, {"fail_fast", "retry_escalate", "degrade"});
    if (!hint.empty())
        fatal("--faults: unknown policy '%s' (did you mean '%s'? "
              "valid: fail_fast, retry_escalate, degrade)",
              name.c_str(), hint.c_str());
    fatal("--faults: unknown policy '%s' (valid: fail_fast, "
          "retry_escalate, degrade)",
          name.c_str());
}

bool
FaultSpec::enabled() const
{
    return link_degrade_rate > 0 || link_blackhole_rate > 0 ||
           straggler_rate > 0 || msg_drop_rate > 0 ||
           msg_delay_rate > 0;
}

bool
FaultSpec::lossPossible() const
{
    return msg_drop_rate > 0 || link_blackhole_rate > 0;
}

void
FaultSpec::validate() const
{
    auto rate = [](const char *what, double r) {
        if (r < 0 || r > 1)
            fatal("FaultSpec: %s rate %g outside [0, 1]", what, r);
    };
    rate("link degrade", link_degrade_rate);
    rate("link blackhole", link_blackhole_rate);
    rate("straggler", straggler_rate);
    rate("message drop", msg_drop_rate);
    rate("message delay", msg_delay_rate);

    if (link_degrade_factor <= 0 || link_degrade_factor > 1)
        fatal("FaultSpec: degrade factor %g outside (0, 1]",
              link_degrade_factor);
    if (straggler_factor < 1)
        fatal("FaultSpec: straggler factor %g < 1", straggler_factor);
    if (window_start < 0)
        fatal("FaultSpec: negative window start");
    if (msg_delay < 0)
        fatal("FaultSpec: negative message delay");
    if (msg_drop_rate >= 1)
        fatal("FaultSpec: message drop rate must be < 1 (1.0 can "
              "never deliver; use a blackhole instead)");
    if (retry_budget < 0)
        fatal("FaultSpec: negative retry budget");
    if (lossPossible() && retry_timeout <= 0)
        fatal("FaultSpec: retry timeout must be positive when loss "
              "is possible");
    if (retry_backoff < 1)
        fatal("FaultSpec: retry backoff %g < 1", retry_backoff);
    if (escalation_budget < 0)
        fatal("FaultSpec: negative escalation budget");
}

std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t salt)
{
    // One splitmix64 step over the xor — cheap, and any bit of either
    // input flips roughly half the output bits.
    std::uint64_t z = (seed ^ salt) + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {

double
parseDoubleArg(const std::string &key, const std::string &value)
{
    try {
        std::size_t pos = 0;
        double d = std::stod(value, &pos);
        if (pos != value.size())
            throw std::invalid_argument("trailing");
        return d;
    } catch (const std::exception &) {
        fatal("--faults: bad numeric value '%s' for '%s'",
              value.c_str(), key.c_str());
    }
}

long long
parseIntArg(const std::string &key, const std::string &value)
{
    try {
        std::size_t pos = 0;
        long long v = std::stoll(value, &pos);
        if (pos != value.size())
            throw std::invalid_argument("trailing");
        return v;
    } catch (const std::exception &) {
        fatal("--faults: bad integer value '%s' for '%s'",
              value.c_str(), key.c_str());
    }
}

} // namespace

FaultSpec
parseFaultSpec(const std::string &text)
{
    FaultSpec spec;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        std::string item = text.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        std::size_t eq = item.find('=');
        if (eq == std::string::npos)
            fatal("--faults: expected key=value, got '%s'",
                  item.c_str());
        std::string key = item.substr(0, eq);
        std::string value = item.substr(eq + 1);

        if (key == "seed")
            spec.seed =
                static_cast<std::uint64_t>(parseIntArg(key, value));
        else if (key == "degrade")
            spec.link_degrade_rate = parseDoubleArg(key, value);
        else if (key == "degrade_factor")
            spec.link_degrade_factor = parseDoubleArg(key, value);
        else if (key == "blackhole")
            spec.link_blackhole_rate = parseDoubleArg(key, value);
        else if (key == "straggler")
            spec.straggler_rate = parseDoubleArg(key, value);
        else if (key == "straggler_factor")
            spec.straggler_factor = parseDoubleArg(key, value);
        else if (key == "drop")
            spec.msg_drop_rate = parseDoubleArg(key, value);
        else if (key == "delay")
            spec.msg_delay_rate = parseDoubleArg(key, value);
        else if (key == "delay_us")
            spec.msg_delay = microseconds(parseDoubleArg(key, value));
        else if (key == "window_start_us")
            spec.window_start =
                microseconds(parseDoubleArg(key, value));
        else if (key == "window_us")
            spec.window_duration =
                microseconds(parseDoubleArg(key, value));
        else if (key == "retries")
            spec.retry_budget =
                static_cast<int>(parseIntArg(key, value));
        else if (key == "timeout_us")
            spec.retry_timeout =
                microseconds(parseDoubleArg(key, value));
        else if (key == "backoff")
            spec.retry_backoff = parseDoubleArg(key, value);
        else if (key == "policy")
            spec.policy = policyFromName(value);
        else if (key == "escalations")
            spec.escalation_budget =
                static_cast<int>(parseIntArg(key, value));
        else {
            static const std::vector<std::string> kKeys = {
                "seed",          "degrade",   "degrade_factor",
                "blackhole",     "straggler", "straggler_factor",
                "drop",          "delay",     "delay_us",
                "window_start_us", "window_us", "retries",
                "timeout_us",    "backoff",   "policy",
                "escalations",
            };
            std::string keys;
            for (const std::string &k : kKeys) {
                if (!keys.empty())
                    keys += ", ";
                keys += k;
            }
            std::string hint = cli::closestMatch(key, kKeys);
            if (!hint.empty())
                fatal("--faults: unknown key '%s' (did you mean "
                      "'%s'? valid keys: %s)",
                      key.c_str(), hint.c_str(), keys.c_str());
            fatal("--faults: unknown key '%s' (valid keys: %s)",
                  key.c_str(), keys.c_str());
        }
    }
    spec.validate();
    return spec;
}

} // namespace ccsim::fault
