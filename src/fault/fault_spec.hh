/**
 * @file
 * FaultSpec: the declarative description of every fault a simulated
 * machine can suffer, plus the retry protocol that keeps collectives
 * running (or failing diagnosably) under loss.
 *
 * The paper's closed-form models T(m, p) = T0(p) + D(m, p) assume
 * pristine machines; the fault layer probes the *sensitivity* of
 * those models.  Three fault families are supported:
 *
 *  - LINK faults: a deterministic subset of links is degraded (wire
 *    serialisation slowed by 1/link_degrade_factor) or black-holed
 *    (every wire message crossing the link during the fault window
 *    is lost);
 *  - NODE faults (stragglers): a subset of nodes runs all software
 *    overheads straggler_factor times slower — send/receive
 *    overheads, collective entry/stage costs, reduction arithmetic;
 *  - MESSAGE faults: individual wire messages are dropped or
 *    delayed, drawn per injection from the machine's fault RNG.
 *
 * All draws are made from a deterministic RNG seeded by `seed`, so a
 * fault scenario is exactly reproducible; the sweep engine derives a
 * distinct per-point seed the same way it seeds clock skew, keeping
 * `--jobs N` output byte-identical to a serial run.
 *
 * When loss is possible (drops or black holes), the transport
 * switches to an acknowledged protocol: every wire payload waits for
 * a zero-byte ack, retransmitting on timeout with exponential
 * backoff.  What happens when the base retry budget is exhausted is
 * governed by the RecoveryPolicy:
 *
 *  - fail_fast (default): raise fault::FaultError (carrying a
 *    FaultReport naming the link/node and what was in flight);
 *  - retry_escalate: keep retransmitting with further-escalating
 *    backoff for `escalation_budget` extra rounds, recording the
 *    absorbed delay, and throw only once those too are exhausted;
 *  - degrade: never throw.  A message whose route crosses a
 *    black-holed link is rerouted via a cached fallback intermediate
 *    node whose two-leg detour avoids every black-holed link; losses
 *    without a usable detour escalate like retry_escalate, and a
 *    message that still cannot be delivered is absorbed — delivered
 *    out-of-band after one final escalated timeout.  Every recovery
 *    action is tallied in the run's DegradationReport.
 */

#ifndef CCSIM_FAULT_FAULT_SPEC_HH
#define CCSIM_FAULT_FAULT_SPEC_HH

#include <cstdint>
#include <string>

#include "util/units.hh"

namespace ccsim::fault {

/**
 * What the transport does when a message exhausts its base retry
 * budget (see the file comment for the full semantics).
 */
enum class RecoveryPolicy {
    FailFast,      //!< throw FaultError immediately (the 1997 answer)
    RetryEscalate, //!< escalate backoff for extra rounds, then throw
    Degrade,       //!< reroute / escalate / absorb — never throw
};

/** Canonical lower-snake name of a policy ("fail_fast", ...). */
const char *policyName(RecoveryPolicy p);

/** Inverse of policyName(); fatal() on unknown names. */
RecoveryPolicy policyFromName(const std::string &name);

/** Complete description of one fault-injection scenario. */
struct FaultSpec
{
    /** Root seed of every deterministic fault draw. */
    std::uint64_t seed = 1;

    // ---- link faults ---------------------------------------------------

    /** Fraction [0,1] of links that are degraded. */
    double link_degrade_rate = 0.0;

    /** Bandwidth multiplier (0,1] of a degraded link (0.5 = half
     *  rate: wire serialisation takes twice as long). */
    double link_degrade_factor = 0.5;

    /** Fraction [0,1] of links that black-hole traffic during the
     *  fault window. */
    double link_blackhole_rate = 0.0;

    /** Simulated time the link-fault window opens. */
    Time window_start = 0;

    /** Window length; <= 0 means the faults persist forever. */
    Time window_duration = 0;

    // ---- node faults (stragglers) --------------------------------------

    /** Fraction [0,1] of nodes that straggle. */
    double straggler_rate = 0.0;

    /** Software-overhead multiplier (>= 1) of a straggling node. */
    double straggler_factor = 2.0;

    // ---- message faults ------------------------------------------------

    /** Probability [0,1] that any wire message is dropped. */
    double msg_drop_rate = 0.0;

    /** Probability [0,1] that a delivered message is delayed. */
    double msg_delay_rate = 0.0;

    /** Delay penalty applied when the delay fault fires. */
    Time msg_delay = 0;

    // ---- retry protocol ------------------------------------------------

    /** Retransmissions allowed per message before failing fast. */
    int retry_budget = 4;

    /** Initial ack timeout before the first retransmission. */
    Time retry_timeout = 100 * time_literals::US;

    /** Timeout multiplier (>= 1) per successive retransmission. */
    double retry_backoff = 2.0;

    // ---- recovery ------------------------------------------------------

    /** What happens once the base retry budget is exhausted. */
    RecoveryPolicy policy = RecoveryPolicy::FailFast;

    /** Extra retransmission rounds granted beyond retry_budget under
     *  retry_escalate / degrade; each round keeps compounding the
     *  exponential backoff and is tallied as an escalation. */
    int escalation_budget = 8;

    /** True when any fault family is active. */
    bool enabled() const;

    /** True when messages can be lost, which switches the transport
     *  to the acknowledged timeout/retransmit protocol. */
    bool lossPossible() const;

    /** Sanity-check all fields; fatal() on user error. */
    void validate() const;
};

/**
 * Deterministically derive a sub-seed (splitmix64 over seed ^ salt);
 * used to give every sweep point its own fault universe from one
 * root seed, independent of worker count or execution order.
 */
std::uint64_t mixSeed(std::uint64_t seed, std::uint64_t salt);

/**
 * Parse the CLI's `--faults` argument: comma-separated key=value
 * pairs over short names, e.g.
 *
 *     --faults "straggler=0.05,straggler_factor=3,drop=0.01,seed=7"
 *
 * Keys: seed, degrade, degrade_factor, blackhole, straggler,
 * straggler_factor, drop, delay, delay_us, window_start_us,
 * window_us, retries, timeout_us, backoff, policy (fail_fast |
 * retry_escalate | degrade), escalations.  fatal() on unknown keys
 * or malformed values (listing the valid keys, with a did-you-mean
 * suggestion); the result is validate()d.
 */
FaultSpec parseFaultSpec(const std::string &text);

} // namespace ccsim::fault

#endif // CCSIM_FAULT_FAULT_SPEC_HH
