#include "fault/fault_injector.hh"

#include <cmath>

#include "net/network.hh"
#include "util/logging.hh"

namespace ccsim::fault {

FaultInjector::FaultInjector(const FaultSpec &spec, int nodes, int links)
    : spec_(spec),
      msg_rng_(mixSeed(spec.seed, 0x6d657373616765ULL)) // "message"
{
    spec_.validate();
    if (nodes < 1)
        fatal("FaultInjector: need at least one node, got %d", nodes);
    if (links < 0)
        fatal("FaultInjector: negative link count %d", links);

    // Static draws in a fixed order: nodes first, then links.  One
    // draw per entity per fault family, unconditionally, so the
    // assignment of entity k never depends on which rates are zero.
    Rng rng(mixSeed(spec_.seed, 0x737461746963ULL)); // "static"
    cpu_factor_.assign(static_cast<std::size_t>(nodes), 1.0);
    for (auto &f : cpu_factor_) {
        if (rng.nextBool(spec_.straggler_rate)) {
            f = spec_.straggler_factor;
            ++stragglers_;
        }
    }
    link_degraded_.assign(static_cast<std::size_t>(links), false);
    link_blackholed_.assign(static_cast<std::size_t>(links), false);
    for (std::size_t l = 0; l < link_degraded_.size(); ++l) {
        if (rng.nextBool(spec_.link_degrade_rate)) {
            link_degraded_[l] = true;
            ++degraded_count_;
        }
        if (rng.nextBool(spec_.link_blackhole_rate)) {
            link_blackholed_[l] = true;
            ++blackholed_count_;
        }
    }
}

double
FaultInjector::cpuFactor(int node) const
{
    if (node < 0 || static_cast<std::size_t>(node) >= cpu_factor_.size())
        panic("FaultInjector::cpuFactor: node %d out of range", node);
    return cpu_factor_[static_cast<std::size_t>(node)];
}

Time
FaultInjector::scaleCpu(int node, Time cost) const
{
    double f = cpuFactor(node);
    if (f == 1.0)
        return cost;
    return static_cast<Time>(
        std::llround(static_cast<double>(cost) * f));
}

bool
FaultInjector::inWindow(Time t) const
{
    if (t < spec_.window_start)
        return false;
    if (spec_.window_duration <= 0)
        return true; // open-ended window
    return t < spec_.window_start + spec_.window_duration;
}

double
FaultInjector::linkSlowdown(net::LinkId link, Time t) const
{
    if (link < 0 ||
        static_cast<std::size_t>(link) >= link_degraded_.size())
        panic("FaultInjector::linkSlowdown: link %d out of range",
              static_cast<int>(link));
    if (!link_degraded_[static_cast<std::size_t>(link)] || !inWindow(t))
        return 1.0;
    return 1.0 / spec_.link_degrade_factor;
}

net::LinkId
FaultInjector::blackholedOnRoute(const net::Topology &topo, int src,
                                 int dst, Time t) const
{
    if (blackholed_count_ == 0 || !inWindow(t))
        return -1;
    net::RouteCursor cur = topo.routeFrom(src, dst);
    for (net::LinkId l = cur.next(); l != net::kNoLink; l = cur.next())
        if (blackholed(l))
            return l;
    return -1;
}

bool
FaultInjector::blackholed(net::LinkId link) const
{
    return link >= 0 &&
           static_cast<std::size_t>(link) < link_blackholed_.size() &&
           link_blackholed_[static_cast<std::size_t>(link)];
}

int
FaultInjector::fallbackVia(int src, int dst, net::Network &net)
{
    int nodes = net.topology().numNodes();
    std::size_t key = static_cast<std::size_t>(src) *
                          static_cast<std::size_t>(nodes) +
                      static_cast<std::size_t>(dst);
    auto it = fallback_cache_.find(key);
    if (it != fallback_cache_.end())
        return it->second;

    ++fallbacks_computed_;
    const net::Topology &topo = net.topology();
    auto clear = [&](int a, int b) {
        net::RouteCursor cur = topo.routeFrom(a, b);
        for (net::LinkId l = cur.next(); l != net::kNoLink;
             l = cur.next())
            if (blackholed(l))
                return false;
        return true;
    };
    int via = -1;
    // Lowest-w first: a deterministic choice that is independent of
    // which message asked, so every retransmission of every pair
    // detours the same way at any --jobs level.
    for (int w = 0; w < nodes; ++w) {
        if (w == src || w == dst)
            continue;
        if (clear(src, w) && clear(w, dst)) {
            via = w;
            break;
        }
    }
    fallback_cache_.emplace(key, via);
    return via;
}

bool
FaultInjector::drawDrop()
{
    if (spec_.msg_drop_rate <= 0)
        return false;
    return msg_rng_.nextBool(spec_.msg_drop_rate);
}

Time
FaultInjector::drawDelayPenalty()
{
    if (spec_.msg_delay_rate <= 0 || spec_.msg_delay <= 0)
        return 0;
    return msg_rng_.nextBool(spec_.msg_delay_rate) ? spec_.msg_delay
                                                   : 0;
}

void
FaultInjector::recordEvent(FaultEvent::Kind kind, int src, int dst,
                           net::LinkId link, Time when, Bytes bytes,
                           int attempt)
{
    if (report_.events.size() >= FaultReport::kMaxEvents)
        return;
    report_.events.push_back(
        FaultEvent{kind, when, src, dst, link, bytes, attempt});
}

void
FaultInjector::recordDrop(int src, int dst, net::LinkId link, Time when,
                          Bytes bytes, int attempt)
{
    ++report_.drops;
    recordEvent(FaultEvent::Kind::Drop, src, dst, link, when, bytes,
                attempt);
}

void
FaultInjector::recordDelay(int src, int dst, Time when, Bytes bytes)
{
    ++report_.delays;
    recordEvent(FaultEvent::Kind::Delay, src, dst, -1, when, bytes, 0);
}

void
FaultInjector::recordRetransmit(int src, int dst, Time when, Bytes bytes,
                                int attempt)
{
    ++report_.retransmits;
    recordEvent(FaultEvent::Kind::Retransmit, src, dst, -1, when, bytes,
                attempt);
}

void
FaultInjector::recordReroute(int src, int via, int dst, Time when,
                             Bytes bytes)
{
    ++report_.degradation.reroutes;
    report_.degradation.extra_bytes += bytes;
    // The detour node rides in the link field (there is no faulted
    // link to name: the reroute is the *avoidance* of one).
    recordEvent(FaultEvent::Kind::Reroute, src, dst,
                static_cast<net::LinkId>(via), when, bytes, 0);
}

void
FaultInjector::recordEscalation(int src, int dst, Time when, Bytes bytes,
                                int attempt, Time waited)
{
    ++report_.degradation.escalations;
    report_.degradation.absorbed_delay += waited;
    recordEvent(FaultEvent::Kind::Escalate, src, dst, -1, when, bytes,
                attempt);
}

void
FaultInjector::recordAbsorb(int src, int dst, net::LinkId link,
                            Time when, Bytes bytes, int attempts,
                            Time waited)
{
    ++report_.degradation.absorbed;
    report_.degradation.absorbed_delay += waited;
    recordEvent(FaultEvent::Kind::Absorb, src, dst, link, when, bytes,
                attempts);
}

void
FaultInjector::failExhausted(int src, int dst, net::LinkId link,
                             Time when, Bytes bytes, int attempts)
{
    ++report_.exhausted;
    recordEvent(FaultEvent::Kind::Exhausted, src, dst, link, when,
                bytes, attempts);
    throw FaultError(src, dst, link, when, bytes, attempts);
}

} // namespace ccsim::fault
