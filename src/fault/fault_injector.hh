/**
 * @file
 * FaultInjector: one machine's live fault state, drawn
 * deterministically from a FaultSpec.
 *
 * Construction makes every *static* draw in a fixed order — first
 * each node's straggler factor, then each link's degraded /
 * black-holed state — from an Rng seeded by spec.seed, so two
 * machines built from the same spec suffer identical faults
 * regardless of when or on which thread they run.  *Dynamic*
 * per-message draws (drop, delay) come from a second stream derived
 * from the same seed; the single-threaded simulator consumes it in
 * deterministic event order.
 *
 * The injector is consulted from three places:
 *
 *  - net::Network scales each transfer's wire serialisation by the
 *    worst linkSlowdown() along its route (via a hook, so net does
 *    not depend on this library);
 *  - msg::Transport scales software overheads by cpuFactor() and,
 *    when the spec makes loss possible, runs its timeout/retransmit
 *    protocol against blackholedOnRoute() / drawDrop() /
 *    drawDelayPenalty();
 *  - the harness reads report() after a run.
 */

#ifndef CCSIM_FAULT_FAULT_INJECTOR_HH
#define CCSIM_FAULT_FAULT_INJECTOR_HH

#include <unordered_map>
#include <vector>

#include "fault/fault_report.hh"
#include "fault/fault_spec.hh"
#include "net/topology.hh"
#include "util/random.hh"
#include "util/units.hh"

namespace ccsim::net {
class Network;
}

namespace ccsim::fault {

/** Per-machine fault state and RNG streams. */
class FaultInjector
{
  public:
    /** Draw the static fault assignment for @p nodes nodes and
     *  @p links links from @p spec (validated first). */
    FaultInjector(const FaultSpec &spec, int nodes, int links);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    const FaultSpec &spec() const { return spec_; }

    // ---- node faults ---------------------------------------------------

    /** Software-overhead multiplier of @p node (1.0 = healthy). */
    double cpuFactor(int node) const;

    /** Scale a CPU cost by cpuFactor (picosecond-rounded). */
    Time scaleCpu(int node, Time cost) const;

    /** Nodes assigned as stragglers. */
    int stragglers() const { return stragglers_; }

    // ---- link faults ---------------------------------------------------

    /** Serialisation multiplier of @p link at time @p t (>= 1). */
    double linkSlowdown(net::LinkId link, Time t) const;

    /** First black-holed link on the @p src -> @p dst route at time
     *  @p t, or -1.  Walks the route analytically (RouteCursor);
     *  cheap enough per retransmission that no route is stored. */
    net::LinkId blackholedOnRoute(const net::Topology &topo, int src,
                                  int dst, Time t) const;

    /** Links assigned as degraded / black-holed. */
    int degradedLinks() const { return degraded_count_; }
    int blackholedLinks() const { return blackholed_count_; }

    /** Static black-hole assignment of @p link (window ignored). */
    bool blackholed(net::LinkId link) const;

    /**
     * The cached fallback intermediate for (src, dst) under the
     * `degrade` policy: the lowest-numbered node w (w != src, dst)
     * whose two routes src -> w and w -> dst avoid every black-holed
     * link, or -1 when no such detour exists (src or dst is cut off).
     * The search walks candidate routes analytically (no routes are
     * materialized); the answer is computed once per pair and
     * memoised for the machine's lifetime (black-hole assignment is
     * static).
     */
    int fallbackVia(int src, int dst, net::Network &net);

    /** Distinct (src, dst) fallback searches performed (cache
     *  misses of the fallback memo). */
    std::uint64_t fallbacksComputed() const { return fallbacks_computed_; }

    // ---- dynamic message faults ----------------------------------------

    /** Bernoulli drop draw for one wire message. */
    bool drawDrop();

    /** Delay penalty for one delivered message (usually zero). */
    Time drawDelayPenalty();

    // ---- bookkeeping ---------------------------------------------------

    void recordDrop(int src, int dst, net::LinkId link, Time when,
                    Bytes bytes, int attempt);
    void recordDelay(int src, int dst, Time when, Bytes bytes);
    void recordRetransmit(int src, int dst, Time when, Bytes bytes,
                          int attempt);

    /** Record a delivery detoured around a black-holed link; the
     *  extra bytes are the second leg's payload (the price of
     *  store-and-forward at @p via). */
    void recordReroute(int src, int via, int dst, Time when,
                       Bytes bytes);

    /** Record a retry round beyond the base budget and the wait it
     *  absorbed. */
    void recordEscalation(int src, int dst, Time when, Bytes bytes,
                          int attempt, Time waited);

    /** Record an out-of-band backstop delivery (degrade policy only)
     *  and the final wait it absorbed. */
    void recordAbsorb(int src, int dst, net::LinkId link, Time when,
                      Bytes bytes, int attempts, Time waited);

    /** Record exhaustion and throw FaultError. */
    [[noreturn]] void failExhausted(int src, int dst, net::LinkId link,
                                    Time when, Bytes bytes,
                                    int attempts);

    const FaultReport &report() const { return report_; }

  private:
    void recordEvent(FaultEvent::Kind kind, int src, int dst,
                     net::LinkId link, Time when, Bytes bytes,
                     int attempt);

    /** True when the link-fault window covers @p t. */
    bool inWindow(Time t) const;

    FaultSpec spec_;
    std::vector<double> cpu_factor_;   // per node
    std::vector<bool> link_degraded_;  // per link
    std::vector<bool> link_blackholed_;
    int stragglers_ = 0;
    int degraded_count_ = 0;
    int blackholed_count_ = 0;

    Rng msg_rng_; //!< dynamic drop/delay stream
    FaultReport report_;

    /** Memoised fallback intermediates, keyed src * nodes + dst;
     *  -1 = no detour exists, absent = not yet searched. */
    std::unordered_map<std::size_t, int> fallback_cache_;
    std::uint64_t fallbacks_computed_ = 0;
};

} // namespace ccsim::fault

#endif // CCSIM_FAULT_FAULT_INJECTOR_HH
