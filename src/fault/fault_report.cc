#include "fault/fault_report.hh"

#include <cstdio>

namespace ccsim::fault {

namespace {

const char *
kindName(FaultEvent::Kind k)
{
    switch (k) {
      case FaultEvent::Kind::Drop:
        return "drop";
      case FaultEvent::Kind::Delay:
        return "delay";
      case FaultEvent::Kind::Retransmit:
        return "resend";
      case FaultEvent::Kind::Exhausted:
        return "exhausted";
      case FaultEvent::Kind::Reroute:
        return "reroute";
      case FaultEvent::Kind::Escalate:
        return "escalate";
      case FaultEvent::Kind::Absorb:
        return "absorb";
      default:
        return "?";
    }
}

} // namespace

std::string
FaultEvent::str() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%-9s t=%-10s %d -> %d  link %d  %s  attempt %d",
                  kindName(kind), formatTime(when).c_str(), src, dst,
                  static_cast<int>(link), formatBytes(bytes).c_str(),
                  attempt);
    return buf;
}

std::string
DegradationReport::str() const
{
    char buf[200];
    std::snprintf(buf, sizeof(buf),
                  "degradation: %llu rerouted (+%s), %llu escalated, "
                  "%llu absorbed, %s delay absorbed",
                  static_cast<unsigned long long>(reroutes),
                  formatBytes(extra_bytes).c_str(),
                  static_cast<unsigned long long>(escalations),
                  static_cast<unsigned long long>(absorbed),
                  formatTime(absorbed_delay).c_str());
    return buf;
}

std::string
FaultReport::str() const
{
    char head[160];
    std::snprintf(head, sizeof(head),
                  "faults: %llu dropped, %llu retransmitted, "
                  "%llu delayed, %llu exhausted",
                  static_cast<unsigned long long>(drops),
                  static_cast<unsigned long long>(retransmits),
                  static_cast<unsigned long long>(delays),
                  static_cast<unsigned long long>(exhausted));
    std::string out = head;
    if (degradation.any()) {
        out += "\n  ";
        out += degradation.str();
    }
    for (const FaultEvent &e : events) {
        out += "\n  ";
        out += e.str();
    }
    if (drops + delays + retransmits + exhausted > events.size() &&
        events.size() == kMaxEvents)
        out += "\n  ... (further events counted, not stored)";
    return out;
}

namespace {

std::string
faultErrorMessage(int src, int dst, net::LinkId link, Time when,
                  Bytes bytes, int attempts)
{
    char buf[200];
    if (link >= 0)
        std::snprintf(buf, sizeof(buf),
                      "message %d -> %d (%s) undeliverable: link %d "
                      "black-holed, %d attempts exhausted at t=%s",
                      src, dst, formatBytes(bytes).c_str(),
                      static_cast<int>(link), attempts,
                      formatTime(when).c_str());
    else
        std::snprintf(buf, sizeof(buf),
                      "message %d -> %d (%s) undeliverable: %d "
                      "attempts all dropped, budget exhausted at t=%s",
                      src, dst, formatBytes(bytes).c_str(), attempts,
                      formatTime(when).c_str());
    return buf;
}

} // namespace

FaultError::FaultError(int src, int dst, net::LinkId link, Time when,
                       Bytes bytes, int attempts)
    : Error("fault",
            faultErrorMessage(src, dst, link, when, bytes, attempts),
            kFaultExit),
      src_(src), dst_(dst), link_(link), when_(when), bytes_(bytes),
      attempts_(attempts)
{
}

} // namespace ccsim::fault
