/**
 * @file
 * FaultReport: the diagnosable record of what fault injection did to
 * a run — per-kind counters plus a bounded log of the first events —
 * and FaultError, the exception a run fails fast with once a
 * message's retry budget is exhausted.
 *
 * FaultError is self-contained (it owns its message text and the
 * link/node/time fields) because the Machine that produced it is
 * typically destroyed while the exception unwinds through
 * Simulator::run back to the harness.
 */

#ifndef CCSIM_FAULT_FAULT_REPORT_HH
#define CCSIM_FAULT_FAULT_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "net/topology.hh"
#include "util/error.hh"
#include "util/units.hh"

namespace ccsim::fault {

/** One recorded fault occurrence. */
struct FaultEvent
{
    enum class Kind
    {
        Drop,       //!< a wire message was lost
        Delay,      //!< a delivered message was delayed
        Retransmit, //!< the sender retransmitted after a timeout
        Exhausted,  //!< the retry budget ran out (run failed)
        Reroute,    //!< delivery detoured around a black-holed link
        Escalate,   //!< a retry round beyond the base budget
        Absorb,     //!< undeliverable message delivered out-of-band
    };

    Kind kind = Kind::Drop;
    Time when = 0;        //!< simulated time of the event
    int src = -1;         //!< sending node
    int dst = -1;         //!< destination node
    net::LinkId link = -1; //!< faulted link, -1 when not link-caused
    Bytes bytes = 0;      //!< payload size in flight
    int attempt = 0;      //!< 0 = first transmission

    /** One-line rendering, e.g.
     *  "drop    t=1.2 ms  3 -> 7  link 12  64 KB  attempt 2". */
    std::string str() const;
};

/**
 * What graceful recovery cost a run — the price paid, under the
 * retry_escalate / degrade policies, for completing instead of
 * throwing FaultError.  The action counters are all zero under
 * fail_fast; makespan_inflation is filled by the harness whenever
 * faults are enabled and a clean baseline is available.
 */
struct DegradationReport
{
    std::uint64_t reroutes = 0;    //!< deliveries via fallback detours
    Bytes extra_bytes = 0;         //!< extra wire bytes those cost
    std::uint64_t escalations = 0; //!< retry rounds beyond the budget
    Time absorbed_delay = 0;       //!< simulated time spent in
                                   //!< escalated waits and absorptions
    std::uint64_t absorbed = 0;    //!< out-of-band backstop deliveries

    /** Faulty-vs-clean makespan ratio minus one; filled by
     *  harness::measureCollective (which can afford the memoized
     *  clean twin), 0 where no baseline exists (replay). */
    double makespan_inflation = 0.0;

    bool
    any() const
    {
        return reroutes || escalations || absorbed;
    }

    /** One-line human-readable summary. */
    std::string str() const;
};

/** Aggregated outcome of fault injection over one run. */
struct FaultReport
{
    std::uint64_t drops = 0;       //!< wire messages lost
    std::uint64_t delays = 0;      //!< deliveries delayed
    std::uint64_t retransmits = 0; //!< timeout-driven resends
    std::uint64_t exhausted = 0;   //!< messages that ran out of retries

    /** What recovery cost, when a non-fail-fast policy is active. */
    DegradationReport degradation;

    /** First events in occurrence order, capped at kMaxEvents. */
    std::vector<FaultEvent> events;

    /** Events recorded beyond the cap are counted, not stored. */
    static constexpr std::size_t kMaxEvents = 64;

    bool any() const { return drops || delays || retransmits; }

    /** Multi-line human-readable summary. */
    std::string str() const;
};

/**
 * Raised when a message exhausts its retry budget: the run cannot
 * complete and the collective in flight is undeliverable.  Carries
 * everything needed to diagnose the failure without the (destroyed)
 * Machine.
 */
class FaultError : public Error
{
  public:
    FaultError(int src, int dst, net::LinkId link, Time when,
               Bytes bytes, int attempts);

    int src() const { return src_; }
    int dst() const { return dst_; }

    /** The black-holed link, or -1 for random message loss. */
    net::LinkId link() const { return link_; }

    Time when() const { return when_; }
    Bytes bytes() const { return bytes_; }
    int attempts() const { return attempts_; }

  private:
    int src_;
    int dst_;
    net::LinkId link_;
    Time when_;
    Bytes bytes_;
    int attempts_;
};

} // namespace ccsim::fault

#endif // CCSIM_FAULT_FAULT_REPORT_HH
