/**
 * @file
 * FastPath — the daemon's tier-2 answer source: fitted closed-form
 * models T(m, p) = (a g1(p) + b) + (c g2(p) + d) m, calibrated from
 * a small simulated grid per (machine, op, algorithm) and evaluated
 * in nanoseconds thereafter.
 *
 * The first query of a (machine, op, algo) triple pays a calibration
 * sweep (a few dozen small simulations; every point also lands in
 * the process-wide measureCollective memo cache, so re-calibration
 * after a restartless reconfiguration is nearly free).  All later
 * queries of that triple evaluate the cached model::TimingExpression
 * directly.  Answers are flagged `approx` on the wire: they track
 * the exact simulation within the fit's envelope (documented in
 * docs/SERVE.md; the tolerance test in tests/test_serve.cc holds it
 * to a factor of two across the calibration region), not to the
 * picosecond.
 *
 * Thread-safe: fits are built and looked up under one mutex.  The
 * calibration runs while holding it, which serializes first-touch
 * fits of distinct triples — deliberate, because concurrent
 * calibrations would contend for the same cores the backfill pool
 * uses, and every subsequent lookup is a map probe.
 */

#ifndef CCSIM_SERVE_FASTPATH_HH
#define CCSIM_SERVE_FASTPATH_HH

#include <map>
#include <mutex>
#include <string>

#include "harness/measure.hh"
#include "model/fit.hh"
#include "stats/cache_stats.hh"

namespace ccsim::serve {

/** Per-(machine, op, algo) fitted-model store; see file comment. */
class FastPath
{
  public:
    /** Procedure knobs of the calibration sweep: small (k = 3, one
     *  repetition) because the simulator is deterministic — the same
     *  knobs examples/latency_predictor.cc always used. */
    static harness::MeasureOptions calibrationOptions();

    /** Machine sizes / message lengths of the calibration grid. */
    static const std::vector<int> &calibrationSizes();
    static const std::vector<Bytes> &calibrationLengths();

    /**
     * Predicted time of one point in microseconds.  @p algo may be
     * Algo::Auto (resolved through cfg.selection for this (p, m)
     * before the fit is chosen, exactly as the exact tier resolves
     * it).  First use of a triple calibrates; ConfigError and friends
     * from the underlying simulation propagate.
     */
    double predictUs(const machine::MachineConfig &cfg,
                     machine::Coll op, machine::Algo algo, int p,
                     Bytes m);

    /** Fitted expression of one triple (calibrating on first use) —
     *  the API examples/latency_predictor.cc builds tables from. */
    model::TimingExpression
    expressionFor(const machine::MachineConfig &cfg, machine::Coll op,
                  machine::Algo algo);

    /** Number of calibrated (machine, op, algo) triples. */
    std::size_t fits() const;

    /** hits = evaluated an existing fit, misses = calibrated. */
    stats::CacheStats stats() const;

  private:
    const model::TimingExpression &
    fitForLocked(const machine::MachineConfig &cfg, machine::Coll op,
                 machine::Algo algo);

    mutable std::mutex mu_;
    std::map<std::string, model::TimingExpression> fits_;
    stats::CacheStats stats_;
};

} // namespace ccsim::serve

#endif // CCSIM_SERVE_FASTPATH_HH
