/**
 * @file
 * QueryCache — the daemon's tier-1 answer store.
 *
 * Keys are harness::measurePointKey() strings (the DESIGN.md §4.11
 * memo canonicalization, with Algo::Auto resolved before the key is
 * formed), values are complete harness::Measurement records.  Because
 * both the key and the stored value come from the same deterministic
 * measurement path, a cache hit is byte-identical to re-simulating
 * the point — tests/test_serve.cc asserts equality field by field.
 *
 * The cache is shared by every connection thread and the backfill
 * pool, so all accessors take one internal mutex.  Entries are never
 * evicted: a Measurement is a few hundred bytes and the daemon's
 * working set is the query cross product users actually ask about.
 */

#ifndef CCSIM_SERVE_CACHE_HH
#define CCSIM_SERVE_CACHE_HH

#include <cstddef>
#include <mutex>
#include <string>
#include <unordered_map>

#include "harness/measure.hh"
#include "stats/cache_stats.hh"

namespace ccsim::serve {

/** Thread-safe key -> Measurement store; see file comment. */
class QueryCache
{
  public:
    /** Copy the entry for @p key into @p out; false (and a recorded
     *  miss) when absent. */
    bool lookup(const std::string &key, harness::Measurement &out);

    /** Store (or overwrite — deterministic values make overwrites
     *  idempotent) the entry for @p key. */
    void insert(const std::string &key,
                const harness::Measurement &meas);

    /** True without touching the hit/miss counters (for probes that
     *  are not answer attempts). */
    bool contains(const std::string &key) const;

    /** Number of distinct cached points. */
    std::size_t size() const;

    /** Lookup hit/miss counters (bypassed counts lookups of points
     *  that were never cacheable, recorded by the server). */
    stats::CacheStats stats() const;

    /** Record one lookup that skipped the cache (uncacheable point). */
    void recordBypass();

  private:
    mutable std::mutex mu_;
    std::unordered_map<std::string, harness::Measurement> map_;
    stats::CacheStats stats_;
};

} // namespace ccsim::serve

#endif // CCSIM_SERVE_CACHE_HH
