/**
 * @file
 * QueryCache — the daemon's tier-1 answer store.
 *
 * Keys are harness::measurePointKey() strings (the DESIGN.md §4.11
 * memo canonicalization, with Algo::Auto resolved before the key is
 * formed), values are complete harness::Measurement records.  Because
 * both the key and the stored value come from the same deterministic
 * measurement path, a cache hit is byte-identical to re-simulating
 * the point — tests/test_serve.cc asserts equality field by field.
 *
 * The cache is shared by every connection thread and the backfill
 * pool, so all accessors take one internal mutex.
 *
 * Two hardening features for long-lived daemons:
 *
 *  - LRU bound: setMaxEntries(n) caps the store; inserting past the
 *    cap evicts the least-recently-*answered* entry and bumps the
 *    evictions counter (`serve.cache_evictions` in the metrics verb).
 *    0 (the default) keeps the historical unbounded behaviour.
 *  - persistence: saveFile() writes every entry in recency order
 *    (hottest first) to a versioned text file; loadFile() restores
 *    them through the normal insert path, so a bounded cache reloads
 *    its hottest prefix.  Values are deterministic simulation
 *    results, so a restart answers byte-identically to the run that
 *    wrote the file.
 */

#ifndef CCSIM_SERVE_CACHE_HH
#define CCSIM_SERVE_CACHE_HH

#include <cstddef>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "harness/measure.hh"
#include "stats/cache_stats.hh"

namespace ccsim::serve {

/** Thread-safe key -> Measurement store; see file comment. */
class QueryCache
{
  public:
    /** Copy the entry for @p key into @p out and refresh its
     *  recency; false (and a recorded miss) when absent. */
    bool lookup(const std::string &key, harness::Measurement &out);

    /** Store (or overwrite — deterministic values make overwrites
     *  idempotent) the entry for @p key, evicting from the LRU tail
     *  while over the bound. */
    void insert(const std::string &key,
                const harness::Measurement &meas);

    /** True without touching the hit/miss counters or recency (for
     *  probes that are not answer attempts). */
    bool contains(const std::string &key) const;

    /** Number of distinct cached points. */
    std::size_t size() const;

    /** Lookup hit/miss/eviction counters (bypassed counts lookups of
     *  points that were never cacheable, recorded by the server). */
    stats::CacheStats stats() const;

    /** Record one lookup that skipped the cache (uncacheable point). */
    void recordBypass();

    /** Cap the entry count (0 = unbounded), evicting down to the new
     *  bound immediately. */
    void setMaxEntries(std::size_t max);

    std::size_t maxEntries() const;

    /** Write all entries (recency order, hottest first) to @p path;
     *  returns the entry count.  ServeError when unwritable. */
    std::size_t saveFile(const std::string &path) const;

    /** Insert every entry of a saveFile() document (oldest first, so
     *  the file's hottest entries end up most recent here); returns
     *  the count loaded.  ConfigError with a line number on malformed
     *  input; a missing file is NOT an error and loads 0 entries
     *  (first daemon start). */
    std::size_t loadFile(const std::string &path);

  private:
    struct Entry
    {
        harness::Measurement meas;
        std::list<std::string>::iterator lru; //!< position in lru_
    };

    /** Move @p it's entry to the front of the recency list. */
    void touch(Entry &e);

    /** Evict LRU-tail entries while over the bound (mu_ held). */
    void evictOverflow();

    mutable std::mutex mu_;
    std::list<std::string> lru_; //!< front = most recently used
    std::unordered_map<std::string, Entry> map_;
    std::size_t max_entries_ = 0; //!< 0 = unbounded
    stats::CacheStats stats_;
};

} // namespace ccsim::serve

#endif // CCSIM_SERVE_CACHE_HH
