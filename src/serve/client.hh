/**
 * @file
 * Client — the blocking line-protocol client of a `ccsim serve`
 * daemon.  One TCP connection, request line out, response line back.
 * `ccsim query`, the protocol tests, and bench/serve_throughput all
 * speak through this class, so none of them hand-roll sockets.
 *
 * Failures (unreachable daemon, connection dropped mid-request)
 * raise FatalError with component "serve"; protocol-level errors
 * arrive as ordinary {"status":"error",...} response lines and are
 * the caller's to interpret.
 */

#ifndef CCSIM_SERVE_CLIENT_HH
#define CCSIM_SERVE_CLIENT_HH

#include <string>

#include "serve/protocol.hh"

namespace ccsim::serve {

/** Blocking request/response client; see file comment. */
class Client
{
  public:
    Client() = default;

    /** close()s. */
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect to a daemon on 127.0.0.1:@p port.
     *  FatalError("serve") when nothing is listening. */
    void connect(int port);

    /** True between connect() and close(). */
    bool connected() const { return fd_ >= 0; }

    /**
     * Send one request line, return the one response line (JSON,
     * newline stripped).  FatalError("serve") if the connection dies
     * before a full response arrives.
     */
    std::string request(const std::string &line);

    /** formatRequest() + request(). */
    std::string request(const Request &req);

    /** Close the connection (idempotent). */
    void close();

  private:
    int fd_ = -1;
    std::string buf_; //!< bytes past the last returned response line
};

} // namespace ccsim::serve

#endif // CCSIM_SERVE_CLIENT_HH
