/**
 * @file
 * The `ccsim serve` wire protocol: newline-delimited requests in a
 * `verb key=value ...` form, newline-delimited single-line JSON
 * responses.  docs/SERVE.md is the normative grammar; this header is
 * the one parser/formatter pair the daemon, the `ccsim query`
 * client, the tests, and the throughput bench all share, so the two
 * sides cannot drift apart.
 *
 * Requests:
 *
 *     predict machine=T3D op=alltoall p=64 m=65536
 *             [algo=auto] [selection=NAME|FILE] [config=FILE]
 *             [topo=SPEC] [tier=auto|fast|exact]
 *             [wait=block|ticket] [deadline_ms=N]
 *     poll ticket=N
 *     metrics
 *     health
 *     ping
 *     shutdown
 *
 * Responses (one JSON object per line):
 *
 *     {"status":"ok","tier":"cache|fast|exact","approx":false,...}
 *     {"status":"pending","ticket":7}
 *     {"status":"error","component":"config","exit_code":5,
 *      "message":"..."}
 *
 * An answer downgraded by overload protection — the backfill queue
 * was full, or the request's deadline expired while an exact
 * simulation was still running — carries `"shed":true` so clients can
 * tell a degraded approximation from a first-class one.
 *
 * A malformed request raises machine::ConfigError from
 * parseRequest(); the server converts it to an error response on the
 * same connection — a protocol mistake never drops the session.
 */

#ifndef CCSIM_SERVE_PROTOCOL_HH
#define CCSIM_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "harness/measure.hh"
#include "machine/collective_types.hh"
#include "util/error.hh"
#include "util/units.hh"

namespace ccsim::serve {

/**
 * A serve-layer failure: sockets (bind/connect/recv), an unknown
 * ticket, a request after shutdown began.  Component "serve", exit
 * code 1 (a user/environment error, catchable as FatalError) — NOT
 * to be confused with protocol-level errors, which are ConfigError
 * (exit 5) because they mean the request itself was malformed.
 */
struct ServeError : FatalError
{
    explicit ServeError(const std::string &message)
        : FatalError("serve", message, kUserExit)
    {
    }
};

/** Request kinds, first token of every request line. */
enum class Verb
{
    Predict,  //!< answer T(machine, op, algo, p, m)
    Poll,     //!< query the state of a backfill ticket
    Metrics,  //!< dump the daemon's MetricsSnapshot as JSON
    Health,   //!< one-line liveness/saturation summary
    Ping,     //!< liveness probe
    Shutdown, //!< stop accepting, drain the backfill queue, exit
};

/** Which answer tiers a predict request allows. */
enum class TierChoice
{
    Auto,  //!< cache hit if present, else fast answer + backfill
    Fast,  //!< cache hit if present, else fitted answer (no backfill)
    Exact, //!< cache hit if present, else simulate (block or ticket)
};

/** How an exact-tier cache miss is delivered. */
enum class WaitMode
{
    Block,  //!< hold the connection until the simulation lands
    Ticket, //!< respond "pending" with a ticket to poll
};

/** One parsed request line. */
struct Request
{
    Verb verb = Verb::Ping;

    // predict
    std::string machine = "T3D"; //!< preset name (ignored with config)
    std::string config_path;     //!< non-empty: machine config file
    std::string selection;       //!< selection table preset or file
    std::string topo;            //!< non-empty: topology spec override
    machine::Coll op = machine::Coll::Alltoall;
    machine::Algo algo = machine::Algo::Auto;
    int p = 0;
    Bytes m = 0;
    bool has_m = false; //!< m key present (barrier may omit it)
    TierChoice tier = TierChoice::Auto;
    WaitMode wait = WaitMode::Block;

    /** Per-request deadline for a blocking exact answer, ms; 0 = use
     *  the server's default (which may itself be "no deadline").  On
     *  expiry the server sheds to the fast tier instead of holding
     *  the connection. */
    int deadline_ms = 0;

    // poll
    std::uint64_t ticket = 0;
};

/**
 * Parse one request line; machine::ConfigError (component "config",
 * exit code 5) on an unknown verb, unknown/duplicate/malformed keys,
 * or missing required keys — typed, so the server can answer with a
 * structured error response instead of dropping the connection.
 */
Request parseRequest(const std::string &line);

/** Serialize @p req back to a canonical request line (client side;
 *  parseRequest(formatRequest(r)) round-trips). */
std::string formatRequest(const Request &req);

/** Which of the three serving tiers produced an answer. */
enum class AnswerTier
{
    Cache, //!< previously simulated, replayed from the query cache
    Fast,  //!< closed-form fitted model (approximate)
    Exact, //!< freshly simulated on the backfill pool
};

/** Wire name of a tier ("cache", "fast", "exact"). */
std::string tierName(AnswerTier t);

/** One ok answer.  Exact/cache answers carry the full picosecond
 *  triple of the underlying Measurement (byte-identical to a fresh
 *  simulation of the same tuple); fast answers carry only the
 *  fitted microsecond prediction and are flagged approx. */
struct Answer
{
    AnswerTier tier = AnswerTier::Exact;
    bool approx = false;
    /** Overload protection downgraded this answer (full backfill
     *  queue or an expired deadline); serialized only when true. */
    bool shed = false;
    std::string machine;
    machine::Coll op = machine::Coll::Barrier;
    machine::Algo algo = machine::Algo::Default;
    int p = 0;
    Bytes m = 0;
    double time_us = 0.0; //!< headline time (max over ranks)
    Time max_ps = 0;
    Time min_ps = 0;
    Time mean_ps = 0;

    /** Build an exact/cache answer from a Measurement. */
    static Answer of(const harness::Measurement &meas, AnswerTier t);
};

/** {"status":"ok",...} with "%.9g" number formatting (the snapshot
 *  layer's rule), so equal answers serialize byte-identically. */
std::string okResponse(const Answer &a);

/** {"status":"pending","ticket":N} */
std::string pendingResponse(std::uint64_t ticket);

/** {"status":"error","component":...,"exit_code":...,"message":...} */
std::string errorResponse(const Error &e);

/** {"status":"ok","pong":true} */
std::string pongResponse();

/** What the `health` verb reports: is the daemon up, how loaded is
 *  it, and how often has overload protection engaged. */
struct HealthInfo
{
    bool draining = false;        //!< shutdown drain in progress
    std::size_t cache_size = 0;
    std::size_t cache_max = 0;    //!< 0 = unbounded
    std::size_t backfill_depth = 0;
    std::size_t backfill_max = 0; //!< 0 = unbounded
    std::uint64_t shed = 0;       //!< queue-full fast-path fallbacks
    std::uint64_t deadline_missed = 0;
    int connections = 0;
    double uptime_s = 0.0;
};

/** {"status":"ok","health":"ok|draining",...} */
std::string healthResponse(const HealthInfo &h);

/** {"status":"ok","shutdown":true} */
std::string shutdownResponse();

/** JSON string-body escaping (quotes, backslashes, control chars). */
std::string jsonEscape(const std::string &s);

} // namespace ccsim::serve

#endif // CCSIM_SERVE_PROTOCOL_HH
