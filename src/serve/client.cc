#include "serve/client.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/error.hh"

namespace ccsim::serve {

namespace {

[[noreturn]] void
clientError(const std::string &what)
{
    throw ServeError(what + ": " + std::strerror(errno));
}

} // namespace

Client::~Client()
{
    close();
}

void
Client::connect(int port)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        clientError("socket() failed");

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        int saved = errno;
        close();
        errno = saved;
        clientError("cannot connect to 127.0.0.1:" +
                    std::to_string(port));
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

std::string
Client::request(const std::string &line)
{
    if (fd_ < 0)
        throw ServeError("request() before connect()");

    std::string out = line + "\n";
    std::size_t off = 0;
    while (off < out.size()) {
        ssize_t n = ::send(fd_, out.data() + off, out.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            clientError("send() failed");
        }
        off += static_cast<std::size_t>(n);
    }

    char chunk[4096];
    for (;;) {
        std::size_t nl = buf_.find('\n');
        if (nl != std::string::npos) {
            std::string resp = buf_.substr(0, nl);
            buf_.erase(0, nl + 1);
            if (!resp.empty() && resp.back() == '\r')
                resp.pop_back();
            return resp;
        }
        ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n == 0)
            throw ServeError("daemon closed the connection mid-request");
        if (n < 0) {
            if (errno == EINTR)
                continue;
            clientError("recv() failed");
        }
        buf_.append(chunk, static_cast<std::size_t>(n));
    }
}

std::string
Client::request(const Request &req)
{
    return request(formatRequest(req));
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buf_.clear();
}

} // namespace ccsim::serve
