/**
 * @file
 * BackfillQueue — the daemon's tier-3 engine: exact simulation of
 * cache misses, batched onto the existing harness::SweepRunner worker
 * pool.
 *
 * Connection threads submit() fully-resolved points and get a ticket.
 * A single collector thread gathers whatever is pending, runs the
 * batch through SweepRunner::runTasks (so `--jobs K` bounds simulation
 * parallelism exactly like `ccsim sweep --jobs K` does, independent of
 * how many clients are connected), stores each result in the shared
 * QueryCache, and publishes per-ticket outcomes.  Clients either
 * wait() (blocking delivery) or poll() later (ticket delivery).
 *
 * Submissions of a key already pending or in flight coalesce onto the
 * existing job — ten clients asking for the same uncached point cost
 * one simulation.
 *
 * A point that throws (bad config reaching the simulator, a panic)
 * fails only its own tickets — the batch's other points complete
 * normally, and the stored (component, message, exit_code) triple
 * lets the server answer with the same typed error a direct `ccsim
 * measure` would exit with.
 *
 * stop() drains: no new submissions are accepted, every already
 * accepted point still simulates, then the collector exits — the
 * SIGINT contract of `ccsim serve`.
 *
 * Overload hardening (DESIGN.md §4.14): setMaxPending(n) bounds the
 * number of jobs waiting for the collector.  trySubmit() refuses
 * (sheds) instead of growing the queue past the bound — the server
 * answers such requests from the approximate fast path with a `shed`
 * flag on the wire — while coalescing submissions are always accepted
 * (they add a ticket, not a job).  waitFor() bounds how long a
 * blocking client waits: on timeout the ticket is abandoned, and the
 * eventual result is dropped at publish time instead of accumulating
 * in the results map forever.
 */

#ifndef CCSIM_SERVE_BACKFILL_HH
#define CCSIM_SERVE_BACKFILL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "harness/sweep.hh"
#include "machine/machine_config.hh"
#include "serve/cache.hh"

namespace ccsim::serve {

/** One fully-resolved simulation point awaiting backfill. */
struct BackfillJob
{
    machine::ConfigHandle cfg;   //!< shared immutable machine
    int p = 2;
    machine::Coll op = machine::Coll::Barrier;
    Bytes m = 0;
    machine::Algo algo = machine::Algo::Default; //!< concrete
    harness::MeasureOptions options;
    std::string key;       //!< measurePointKey (coalescing identity)
    bool cacheable = true; //!< store the result in the QueryCache
};

/** Outcome of one ticket. */
struct BackfillResult
{
    bool done = false;   //!< simulation finished (ok or failed)
    bool failed = false; //!< the point threw
    harness::Measurement meas; //!< valid when done and not failed

    // valid when failed: the thrown ccsim::Error, reconstructible
    std::string component;
    std::string message;
    int exit_code = 0;
};

/** Ticketed batch backfill onto a SweepRunner pool; file comment. */
class BackfillQueue
{
  public:
    /** @p jobs as SweepRunner takes it (0 = hardware concurrency,
     *  1 = inline serial reference). */
    BackfillQueue(QueryCache &cache, int jobs);

    /** stop()s (draining) if still running. */
    ~BackfillQueue();

    BackfillQueue(const BackfillQueue &) = delete;
    BackfillQueue &operator=(const BackfillQueue &) = delete;

    /**
     * Enqueue @p job and return its ticket.  Jobs with a key already
     * pending or in flight coalesce (one simulation, many tickets).
     * FatalError("serve") after stop() — the daemon is draining.
     */
    std::uint64_t submit(const BackfillJob &job);

    /**
     * Bounded submit: like submit(), but when the queue is draining
     * or already holds maxPending() uncollected jobs AND @p job's key
     * is not already live (a coalescing submission never grows the
     * queue), refuse — return false, bump the shed counter, and leave
     * @p ticket untouched.  The server's load-shedding entry point:
     * a false return means "answer from the fast path, flag shed".
     */
    bool trySubmit(const BackfillJob &job, std::uint64_t &ticket);

    /**
     * Fire-and-forget submit: no ticket, the only observable outcome
     * is the QueryCache entry.  The auto tier's "answer fast now,
     * upgrade the cache in the background" path.  Quietly a no-op
     * while stopping (opportunistic work races shutdown by design)
     * or when the key is already live.
     */
    void prefetch(const BackfillJob &job);

    /** Block until @p ticket completes; consumes the ticket. */
    BackfillResult wait(std::uint64_t ticket);

    /**
     * wait() with a deadline: the result if it lands within
     * @p timeout_ms, else nullopt — and the ticket is ABANDONED: its
     * simulation still runs (and still feeds the cache), but the
     * per-ticket result is discarded at publish time rather than
     * retained for a waiter that gave up.  timeout_ms <= 0 blocks
     * like wait().
     */
    std::optional<BackfillResult> waitFor(std::uint64_t ticket,
                                          int timeout_ms);

    /**
     * Non-blocking: done (consuming the ticket), or done = false for
     * a ticket still pending/in flight.  FatalError("serve") for a
     * ticket never issued or already consumed.
     */
    BackfillResult poll(std::uint64_t ticket);

    /** Points waiting for the collector (not yet simulating). */
    std::size_t queueDepth() const;

    /** Cap the uncollected-job count (0 = unbounded).  Affects
     *  trySubmit() and prefetch() only; submit() is the unbounded
     *  legacy path. */
    void setMaxPending(std::size_t max);

    std::size_t maxPending() const;

    /** Monotonic totals for /metrics. */
    std::uint64_t submitted() const;  //!< tickets issued
    std::uint64_t coalesced() const;  //!< tickets that joined a job
    std::uint64_t completed() const;  //!< points simulated ok
    std::uint64_t failed() const;     //!< points that threw
    std::uint64_t batches() const;    //!< collector batches run
    std::uint64_t shed() const;       //!< trySubmits refused at bound

    /** Resolved worker-pool width. */
    int jobs() const;

    /** Block until everything submitted so far has completed. */
    void drain();

    /** Refuse new work, drain, and join the collector.  Idempotent. */
    void stop();

  private:
    struct Job
    {
        BackfillJob spec;
        std::vector<std::uint64_t> tickets;
    };

    void collectorLoop();
    void runBatch(std::vector<std::shared_ptr<Job>> batch);

    QueryCache &cache_;
    harness::SweepRunner runner_;

    mutable std::mutex mu_;
    std::condition_variable work_cv_;   //!< collector wake-up
    std::condition_variable done_cv_;   //!< waiters / drainers
    std::deque<std::shared_ptr<Job>> pending_;
    std::unordered_map<std::string, std::shared_ptr<Job>> live_keys_;
    std::unordered_set<std::uint64_t> open_tickets_;
    std::unordered_set<std::uint64_t> abandoned_; //!< waitFor timeouts
    std::map<std::uint64_t, BackfillResult> results_;
    std::uint64_t next_ticket_ = 1;
    std::size_t inflight_ = 0; //!< points in the running batch
    std::size_t max_pending_ = 0; //!< 0 = unbounded
    bool stopping_ = false;

    std::uint64_t submitted_ = 0;
    std::uint64_t coalesced_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t failed_ = 0;
    std::uint64_t batches_ = 0;
    std::uint64_t shed_ = 0;

    std::thread collector_;
};

} // namespace ccsim::serve

#endif // CCSIM_SERVE_BACKFILL_HH
