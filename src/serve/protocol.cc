#include "serve/protocol.hh"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "machine/config_io.hh"
#include "util/error.hh"

namespace ccsim::serve {

namespace {

using machine::ConfigError;

[[noreturn]] void
badRequest(const std::string &what)
{
    throw ConfigError("bad request: " + what +
                      " (see docs/SERVE.md for the grammar)");
}

long long
parseInt(const std::string &key, const std::string &value)
{
    try {
        std::size_t pos = 0;
        long long v = std::stoll(value, &pos);
        if (pos != value.size())
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception &) {
        badRequest("key '" + key + "' wants an integer, got '" +
                   value + "'");
    }
}

machine::Coll
parseOp(const std::string &value)
{
    for (machine::Coll op : machine::kAllColls)
        if (machine::collKey(op) == value)
            return op;
    badRequest("unknown op '" + value + "'");
}

/** "%.9g" — the snapshot layer's fixed number formatting. */
std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

} // namespace

Request
parseRequest(const std::string &line)
{
    std::istringstream in(line);
    std::string verb_word;
    if (!(in >> verb_word))
        badRequest("empty request");

    Request req;
    if (verb_word == "predict")
        req.verb = Verb::Predict;
    else if (verb_word == "poll")
        req.verb = Verb::Poll;
    else if (verb_word == "metrics")
        req.verb = Verb::Metrics;
    else if (verb_word == "health")
        req.verb = Verb::Health;
    else if (verb_word == "ping")
        req.verb = Verb::Ping;
    else if (verb_word == "shutdown")
        req.verb = Verb::Shutdown;
    else
        badRequest("unknown verb '" + verb_word +
                   "' (predict, poll, metrics, health, ping, "
                   "shutdown)");

    bool saw_p = false, saw_op = false, saw_ticket = false;
    std::string word;
    while (in >> word) {
        std::size_t eq = word.find('=');
        if (eq == std::string::npos || eq == 0)
            badRequest("expected key=value, got '" + word + "'");
        std::string key = word.substr(0, eq);
        std::string value = word.substr(eq + 1);
        if (value.empty())
            badRequest("key '" + key + "' has an empty value");

        if (req.verb == Verb::Poll) {
            if (key != "ticket")
                badRequest("poll understands only ticket=N");
            long long t = parseInt(key, value);
            if (t < 0)
                badRequest("ticket must be non-negative");
            req.ticket = static_cast<std::uint64_t>(t);
            saw_ticket = true;
            continue;
        }
        if (req.verb != Verb::Predict)
            badRequest("'" + verb_word + "' takes no keys");

        if (key == "machine") {
            req.machine = value;
        } else if (key == "config") {
            req.config_path = value;
        } else if (key == "selection") {
            req.selection = value;
        } else if (key == "topo") {
            req.topo = value;
        } else if (key == "op") {
            req.op = parseOp(value);
            saw_op = true;
        } else if (key == "algo") {
            // algoFromName raises ConfigError itself, listing the
            // valid spellings.
            req.algo = machine::algoFromName(value);
        } else if (key == "p") {
            long long p = parseInt(key, value);
            if (p < 1)
                badRequest("p must be >= 1");
            req.p = static_cast<int>(p);
            saw_p = true;
        } else if (key == "m") {
            long long m = parseInt(key, value);
            if (m < 0)
                badRequest("m must be >= 0");
            req.m = m;
            req.has_m = true;
        } else if (key == "tier") {
            if (value == "auto")
                req.tier = TierChoice::Auto;
            else if (value == "fast")
                req.tier = TierChoice::Fast;
            else if (value == "exact")
                req.tier = TierChoice::Exact;
            else
                badRequest("tier must be auto, fast, or exact");
        } else if (key == "wait") {
            if (value == "block")
                req.wait = WaitMode::Block;
            else if (value == "ticket")
                req.wait = WaitMode::Ticket;
            else
                badRequest("wait must be block or ticket");
        } else if (key == "deadline_ms") {
            long long d = parseInt(key, value);
            if (d < 0)
                badRequest("deadline_ms must be >= 0");
            req.deadline_ms = static_cast<int>(d);
        } else {
            badRequest("unknown key '" + key + "'");
        }
    }

    if (req.verb == Verb::Poll && !saw_ticket)
        badRequest("poll needs ticket=N");
    if (req.verb == Verb::Predict) {
        if (!saw_op)
            badRequest("predict needs op=<collective>");
        if (!saw_p)
            badRequest("predict needs p=<nodes>");
        // The barrier has no length axis; everything else needs m.
        if (!req.has_m && req.op != machine::Coll::Barrier)
            badRequest("predict needs m=<bytes> for op " +
                       machine::collKey(req.op));
        if (req.op == machine::Coll::Barrier)
            req.m = 0;
    }
    return req;
}

std::string
formatRequest(const Request &req)
{
    switch (req.verb) {
      case Verb::Ping:
        return "ping";
      case Verb::Metrics:
        return "metrics";
      case Verb::Health:
        return "health";
      case Verb::Shutdown:
        return "shutdown";
      case Verb::Poll:
        return "poll ticket=" + std::to_string(req.ticket);
      case Verb::Predict:
        break;
    }

    std::string out = "predict";
    if (!req.config_path.empty())
        out += " config=" + req.config_path;
    else
        out += " machine=" + req.machine;
    if (!req.selection.empty())
        out += " selection=" + req.selection;
    if (!req.topo.empty())
        out += " topo=" + req.topo;
    out += " op=" + machine::collKey(req.op);
    out += " p=" + std::to_string(req.p);
    out += " m=" + std::to_string(req.m);
    if (req.algo != machine::Algo::Auto)
        out += " algo=" + machine::algoName(req.algo);
    out += std::string(" tier=") +
           (req.tier == TierChoice::Auto
                ? "auto"
                : req.tier == TierChoice::Fast ? "fast" : "exact");
    if (req.wait == WaitMode::Ticket)
        out += " wait=ticket";
    if (req.deadline_ms > 0)
        out += " deadline_ms=" + std::to_string(req.deadline_ms);
    return out;
}

std::string
tierName(AnswerTier t)
{
    switch (t) {
      case AnswerTier::Cache:
        return "cache";
      case AnswerTier::Fast:
        return "fast";
      case AnswerTier::Exact:
        return "exact";
    }
    return "?";
}

Answer
Answer::of(const harness::Measurement &meas, AnswerTier t)
{
    Answer a;
    a.tier = t;
    a.approx = false;
    a.machine = meas.machine;
    a.op = meas.op;
    a.algo = meas.algo;
    a.p = meas.p;
    a.m = meas.m;
    a.time_us = meas.us();
    a.max_ps = meas.max_time;
    a.min_ps = meas.min_time;
    a.mean_ps = meas.mean_time;
    return a;
}

std::string
okResponse(const Answer &a)
{
    std::string out = "{\"status\":\"ok\",\"tier\":\"" +
                      tierName(a.tier) + "\",\"approx\":" +
                      (a.approx ? "true" : "false");
    if (a.shed)
        out += ",\"shed\":true";
    out += ",\"machine\":\"" + jsonEscape(a.machine) + "\"";
    out += ",\"op\":\"" + machine::collKey(a.op) + "\"";
    out += ",\"algo\":\"" + machine::algoName(a.algo) + "\"";
    out += ",\"p\":" + std::to_string(a.p);
    out += ",\"m\":" + std::to_string(a.m);
    out += ",\"time_us\":" + num(a.time_us);
    if (!a.approx) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      ",\"max_ps\":%" PRId64 ",\"min_ps\":%" PRId64
                      ",\"mean_ps\":%" PRId64,
                      a.max_ps, a.min_ps, a.mean_ps);
        out += buf;
    }
    out += "}";
    return out;
}

std::string
pendingResponse(std::uint64_t ticket)
{
    return "{\"status\":\"pending\",\"ticket\":" +
           std::to_string(ticket) + "}";
}

std::string
errorResponse(const Error &e)
{
    return "{\"status\":\"error\",\"component\":\"" +
           jsonEscape(e.component()) +
           "\",\"exit_code\":" + std::to_string(e.exitCode()) +
           ",\"message\":\"" + jsonEscape(e.what()) + "\"}";
}

std::string
pongResponse()
{
    return "{\"status\":\"ok\",\"pong\":true}";
}

std::string
healthResponse(const HealthInfo &h)
{
    std::string out = "{\"status\":\"ok\",\"health\":\"";
    out += h.draining ? "draining" : "ok";
    out += "\",\"cache_size\":" + std::to_string(h.cache_size);
    out += ",\"cache_max\":" + std::to_string(h.cache_max);
    out += ",\"backfill_depth\":" + std::to_string(h.backfill_depth);
    out += ",\"backfill_max\":" + std::to_string(h.backfill_max);
    out += ",\"shed\":" + std::to_string(h.shed);
    out += ",\"deadline_missed\":" + std::to_string(h.deadline_missed);
    out += ",\"connections\":" + std::to_string(h.connections);
    out += ",\"uptime_s\":" + num(h.uptime_s);
    out += "}";
    return out;
}

std::string
shutdownResponse()
{
    return "{\"status\":\"ok\",\"shutdown\":true}";
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace ccsim::serve
