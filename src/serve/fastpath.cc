#include "serve/fastpath.hh"

#include "tuning/selection_table.hh"

namespace ccsim::serve {

harness::MeasureOptions
FastPath::calibrationOptions()
{
    harness::MeasureOptions opt;
    opt.iterations = 3;
    opt.repetitions = 1;
    opt.warmup = 1;
    return opt;
}

const std::vector<int> &
FastPath::calibrationSizes()
{
    static const std::vector<int> sizes{2, 8, 32};
    return sizes;
}

const std::vector<Bytes> &
FastPath::calibrationLengths()
{
    static const std::vector<Bytes> lengths{4, 1024, 16 * 1024,
                                            64 * 1024};
    return lengths;
}

const model::TimingExpression &
FastPath::fitForLocked(const machine::MachineConfig &cfg,
                       machine::Coll op, machine::Algo algo)
{
    const harness::MeasureOptions opt = calibrationOptions();
    const bool barrier = op == machine::Coll::Barrier;
    // One fit covers one concrete algorithm; Auto/Default resolve at
    // the calibration anchor (largest p and m of the grid) so every
    // calibration point measures the same algorithm.  predictUs()
    // resolves per query point before reaching here, so an Auto whose
    // selection table switches algorithms mid-grid still lands on the
    // per-point-correct fit.
    const machine::Algo concrete = tuning::resolveAlgo(
        cfg, op, calibrationSizes().back(),
        barrier ? 0 : calibrationLengths().back(), algo);
    // p = 0, m = 0 degrade the point key to a (machine-parameters,
    // op, algo) identity — exactly what a fitted model is for.
    const std::string key =
        harness::measurePointKey(cfg, 0, op, 0, concrete, opt);
    auto it = fits_.find(key);
    if (it != fits_.end()) {
        ++stats_.hits;
        return it->second;
    }

    ++stats_.misses;
    std::vector<model::Sample> samples;
    for (int p : calibrationSizes()) {
        if (barrier) {
            auto meas = harness::measureCollective(cfg, p, op, 0,
                                                   concrete, opt);
            samples.push_back({0, p, meas.us()});
            continue;
        }
        for (Bytes m : calibrationLengths()) {
            auto meas = harness::measureCollective(cfg, p, op, m,
                                                   concrete, opt);
            samples.push_back({m, p, meas.us()});
        }
    }
    model::TimingExpression e = barrier
                                    ? model::fitStartupAuto(samples)
                                    : model::fitPaperStyleAuto(samples);
    return fits_.emplace(key, e).first->second;
}

double
FastPath::predictUs(const machine::MachineConfig &cfg,
                    machine::Coll op, machine::Algo algo, int p,
                    Bytes m)
{
    machine::Algo concrete =
        tuning::resolveAlgo(cfg, op, p, m, algo);
    std::lock_guard<std::mutex> lock(mu_);
    return fitForLocked(cfg, op, concrete).evalUs(m, p);
}

model::TimingExpression
FastPath::expressionFor(const machine::MachineConfig &cfg,
                        machine::Coll op, machine::Algo algo)
{
    std::lock_guard<std::mutex> lock(mu_);
    return fitForLocked(cfg, op, algo);
}

std::size_t
FastPath::fits() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return fits_.size();
}

stats::CacheStats
FastPath::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

} // namespace ccsim::serve
