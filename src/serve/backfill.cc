#include "serve/backfill.hh"

#include <chrono>

#include "serve/protocol.hh" // ServeError
#include "util/error.hh"

namespace ccsim::serve {

BackfillQueue::BackfillQueue(QueryCache &cache, int jobs)
    : cache_(cache), runner_(jobs)
{
    collector_ = std::thread([this] { collectorLoop(); });
}

BackfillQueue::~BackfillQueue()
{
    stop();
}

std::uint64_t
BackfillQueue::submit(const BackfillJob &job)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_)
        throw ServeError("backfill queue is draining for shutdown");
    std::uint64_t ticket = next_ticket_++;
    ++submitted_;
    open_tickets_.insert(ticket);

    auto it = live_keys_.find(job.key);
    if (it != live_keys_.end()) {
        it->second->tickets.push_back(ticket);
        ++coalesced_;
        return ticket;
    }

    auto j = std::make_shared<Job>();
    j->spec = job;
    j->tickets.push_back(ticket);
    live_keys_.emplace(job.key, j);
    pending_.push_back(std::move(j));
    work_cv_.notify_one();
    return ticket;
}

bool
BackfillQueue::trySubmit(const BackfillJob &job,
                         std::uint64_t &ticket)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = live_keys_.find(job.key);
    if (it != live_keys_.end()) {
        // Coalescing adds a ticket to an existing job — no queue
        // growth, so the bound never sheds these.
        ticket = next_ticket_++;
        ++submitted_;
        ++coalesced_;
        open_tickets_.insert(ticket);
        it->second->tickets.push_back(ticket);
        return true;
    }
    if (stopping_ ||
        (max_pending_ > 0 && pending_.size() >= max_pending_)) {
        ++shed_;
        return false;
    }
    ticket = next_ticket_++;
    ++submitted_;
    open_tickets_.insert(ticket);
    auto j = std::make_shared<Job>();
    j->spec = job;
    j->tickets.push_back(ticket);
    live_keys_.emplace(job.key, j);
    pending_.push_back(std::move(j));
    work_cv_.notify_one();
    return true;
}

void
BackfillQueue::prefetch(const BackfillJob &job)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || live_keys_.count(job.key))
        return;
    if (max_pending_ > 0 && pending_.size() >= max_pending_)
        return; // opportunistic work never displaces the bound
    auto j = std::make_shared<Job>();
    j->spec = job; // no tickets: completion publishes only the cache
    live_keys_.emplace(job.key, j);
    pending_.push_back(std::move(j));
    work_cv_.notify_one();
}

BackfillResult
BackfillQueue::wait(std::uint64_t ticket)
{
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock,
                  [&] { return results_.count(ticket) != 0; });
    BackfillResult r = results_[ticket];
    results_.erase(ticket);
    return r;
}

std::optional<BackfillResult>
BackfillQueue::waitFor(std::uint64_t ticket, int timeout_ms)
{
    if (timeout_ms <= 0)
        return wait(ticket);
    std::unique_lock<std::mutex> lock(mu_);
    bool landed = done_cv_.wait_for(
        lock, std::chrono::milliseconds(timeout_ms),
        [&] { return results_.count(ticket) != 0; });
    if (landed) {
        BackfillResult r = results_[ticket];
        results_.erase(ticket);
        return r;
    }
    // Deadline missed: abandon the ticket.  The simulation still
    // completes (and still feeds the cache); publish drops the
    // per-ticket result instead of retaining it forever.
    abandoned_.insert(ticket);
    return std::nullopt;
}

BackfillResult
BackfillQueue::poll(std::uint64_t ticket)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = results_.find(ticket);
    if (it != results_.end()) {
        BackfillResult r = it->second;
        results_.erase(it);
        return r;
    }
    if (open_tickets_.count(ticket))
        return {}; // still pending / in flight
    throw ServeError("unknown ticket " + std::to_string(ticket) +
                         " (never issued, or already collected)");
}

std::size_t
BackfillQueue::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return pending_.size();
}

void
BackfillQueue::setMaxPending(std::size_t max)
{
    std::lock_guard<std::mutex> lock(mu_);
    max_pending_ = max;
}

std::size_t
BackfillQueue::maxPending() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return max_pending_;
}

std::uint64_t
BackfillQueue::shed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return shed_;
}

std::uint64_t
BackfillQueue::submitted() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return submitted_;
}

std::uint64_t
BackfillQueue::coalesced() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return coalesced_;
}

std::uint64_t
BackfillQueue::completed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return completed_;
}

std::uint64_t
BackfillQueue::failed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return failed_;
}

std::uint64_t
BackfillQueue::batches() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return batches_;
}

int
BackfillQueue::jobs() const
{
    return runner_.jobs();
}

void
BackfillQueue::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
        return pending_.empty() && inflight_ == 0;
    });
}

void
BackfillQueue::stop()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_ && !collector_.joinable())
            return;
        stopping_ = true;
    }
    work_cv_.notify_all();
    if (collector_.joinable())
        collector_.join();
}

void
BackfillQueue::collectorLoop()
{
    for (;;) {
        std::vector<std::shared_ptr<Job>> batch;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock, [&] {
                return stopping_ || !pending_.empty();
            });
            if (pending_.empty()) {
                // stopping_ with nothing queued: drained, exit.
                return;
            }
            batch.assign(pending_.begin(), pending_.end());
            pending_.clear();
            inflight_ = batch.size();
        }
        runBatch(std::move(batch));
    }
}

void
BackfillQueue::runBatch(std::vector<std::shared_ptr<Job>> batch)
{
    std::vector<BackfillResult> results(batch.size());
    runner_.runTasks(batch.size(), [&](std::size_t i) {
        const BackfillJob &job = batch[i]->spec;
        BackfillResult &r = results[i];
        r.done = true;
        try {
            r.meas = harness::measureCollective(
                *job.cfg, job.p, job.op, job.m, job.algo,
                job.options);
        } catch (const Error &e) {
            r.failed = true;
            r.component = e.component();
            r.message = e.what();
            r.exit_code = e.exitCode();
        } catch (const std::exception &e) {
            r.failed = true;
            r.component = "serve";
            r.message = e.what();
            r.exit_code = kUserExit;
        }
        if (!r.failed && job.cacheable)
            cache_.insert(job.key, r.meas);
    });

    {
        std::lock_guard<std::mutex> lock(mu_);
        for (std::size_t i = 0; i < batch.size(); ++i) {
            if (results[i].failed)
                ++failed_;
            else
                ++completed_;
            for (std::uint64_t t : batch[i]->tickets) {
                open_tickets_.erase(t);
                if (abandoned_.erase(t))
                    continue; // waiter timed out: drop, don't retain
                results_[t] = results[i];
            }
            live_keys_.erase(batch[i]->spec.key);
        }
        ++batches_;
        inflight_ = 0;
    }
    done_cv_.notify_all();
}

} // namespace ccsim::serve
