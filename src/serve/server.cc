#include "serve/server.hh"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "machine/config_io.hh"
#include "tuning/selection_table.hh"
#include "util/error.hh"

namespace ccsim::serve {

namespace {

/** FatalError refined to the serve component (CLI exit code 1). */
[[noreturn]] void
serveError(const std::string &what)
{
    throw ServeError(what + ": " + std::strerror(errno));
}

std::string
loweredName(const std::string &s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return out;
}

/** Collapse MetricsSnapshot::writeJson's pretty-printing onto one
 *  line (the response framing is one JSON object per line). */
std::string
oneLine(const std::string &json)
{
    std::string out;
    out.reserve(json.size());
    for (std::size_t i = 0; i < json.size(); ++i) {
        if (json[i] == '\n') {
            while (i + 1 < json.size() && json[i + 1] == ' ')
                ++i;
            continue;
        }
        out += json[i];
    }
    return out;
}

/** Weighted quantile over the log2 buckets: the upper bound of the
 *  bucket where the cumulative weight crosses q (the histogram's
 *  native resolution — good to a factor of two, like every other
 *  consumer of these buckets). */
double
histQuantile(const stats::Histogram &h, double q)
{
    double total = h.totalWeight();
    if (total <= 0)
        return 0.0;
    double target = q * total;
    double cum = 0.0;
    for (int i = 0; i < stats::Histogram::kBuckets; ++i) {
        cum += h.bucketWeight(i);
        if (cum >= target)
            return stats::Histogram::bucketUpperBound(i);
    }
    return h.max();
}

void
sendAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return; // peer went away; the connection loop will notice
        }
        off += static_cast<std::size_t>(n);
    }
}

} // namespace

Server::Server(ServerOptions opts)
    : opts_(opts), backfill_(cache_, opts.jobs)
{
    cache_.setMaxEntries(opts_.cache_max);
    backfill_.setMaxPending(opts_.backfill_max);
}

Server::~Server()
{
    stop();
}

machine::ConfigHandle
Server::resolveConfig(const Request &req)
{
    const bool from_file = !req.config_path.empty();
    if (req.selection.empty() && req.topo.empty())
        return from_file
                   ? machine::sharedConfigFile(req.config_path)
                   : machine::sharedPreset(req.machine);

    std::string key = (from_file ? "file:" + req.config_path
                                 : "preset:" + loweredName(req.machine))
                      + "|sel=" + req.selection
                      + "|topo=" + req.topo;
    std::lock_guard<std::mutex> lock(cfg_mu_);
    auto it = cfg_cache_.find(key);
    if (it != cfg_cache_.end())
        return it->second;

    machine::MachineConfig cfg =
        from_file ? *machine::sharedConfigFile(req.config_path)
                  : *machine::sharedPreset(req.machine);
    if (!req.topo.empty())
        cfg.topo_spec = req.topo;
    if (!req.selection.empty())
        tuning::attachSelection(cfg, req.selection);
    auto handle =
        std::make_shared<const machine::MachineConfig>(std::move(cfg));
    cfg_cache_.emplace(key, handle);
    return handle;
}

Answer
Server::fastAnswer(const machine::MachineConfig &cfg,
                   const Request &req, machine::Algo algo)
{
    Answer a;
    a.tier = AnswerTier::Fast;
    a.approx = true;
    a.machine = cfg.name;
    a.op = req.op;
    a.algo = algo;
    a.p = req.p;
    a.m = req.m;
    a.time_us = fastpath_.predictUs(cfg, req.op, algo, req.p, req.m);
    return a;
}

std::string
Server::handlePredict(const Request &req)
{
    machine::ConfigHandle cfg = resolveConfig(req);
    // Resolve Auto to a concrete algorithm BEFORE forming the cache
    // key: an auto query and its explicit twin share one entry.
    machine::Algo algo =
        tuning::resolveAlgo(*cfg, req.op, req.p, req.m, req.algo);
    // Default MeasureOptions: the exact tier runs the same procedure
    // `ccsim measure` runs, so answers agree byte for byte.
    harness::MeasureOptions opt;
    const bool cacheable = harness::measurePointCacheable(*cfg, opt);
    std::string key =
        harness::measurePointKey(*cfg, req.p, req.op, req.m, algo, opt);

    if (cacheable) {
        harness::Measurement meas;
        if (cache_.lookup(key, meas)) {
            {
                std::lock_guard<std::mutex> lock(metrics_mu_);
                ++tier_cache_;
            }
            return okResponse(Answer::of(meas, AnswerTier::Cache));
        }
    } else {
        cache_.recordBypass();
        // The key canonicalization excludes fault/skew state (it only
        // has to distinguish cacheable points), so two uncacheable
        // points may collide; uniquify instead of miscoalescing.
        static std::atomic<std::uint64_t> uniq{0};
        key += "|uncacheable:" + std::to_string(++uniq);
    }

    BackfillJob job;
    job.cfg = cfg;
    job.p = req.p;
    job.op = req.op;
    job.m = req.m;
    job.algo = algo;
    job.options = opt;
    job.key = key;
    job.cacheable = cacheable;

    switch (req.tier) {
      case TierChoice::Fast: {
        Answer a = fastAnswer(*cfg, req, algo);
        std::lock_guard<std::mutex> lock(metrics_mu_);
        ++tier_fast_;
        return okResponse(a);
      }
      case TierChoice::Auto: {
        Answer a = fastAnswer(*cfg, req, algo);
        if (cacheable)
            backfill_.prefetch(job);
        std::lock_guard<std::mutex> lock(metrics_mu_);
        ++tier_fast_;
        return okResponse(a);
      }
      case TierChoice::Exact:
        break;
    }

    // Exact tier: bounded submission.  A full backfill queue (or a
    // draining daemon) sheds to the fast tier instead of growing the
    // queue or erroring — the answer is flagged so clients can tell.
    std::uint64_t ticket = 0;
    if (!backfill_.trySubmit(job, ticket)) {
        Answer a = fastAnswer(*cfg, req, algo);
        a.shed = true;
        std::lock_guard<std::mutex> lock(metrics_mu_);
        ++tier_fast_;
        return okResponse(a);
    }

    if (req.wait == WaitMode::Ticket) {
        std::lock_guard<std::mutex> lock(metrics_mu_);
        ++pending_issued_;
        return pendingResponse(ticket);
    }

    // Blocking delivery, bounded by the request deadline (or the
    // server default).  On expiry the simulation keeps running and
    // still feeds the cache; this client gets the fast answer now.
    int deadline = req.deadline_ms > 0 ? req.deadline_ms
                                       : opts_.deadline_ms;
    std::optional<BackfillResult> got =
        backfill_.waitFor(ticket, deadline);
    if (!got) {
        Answer a = fastAnswer(*cfg, req, algo);
        a.shed = true;
        std::lock_guard<std::mutex> lock(metrics_mu_);
        ++deadline_missed_;
        ++tier_fast_;
        return okResponse(a);
    }
    BackfillResult r = *got;
    if (r.failed)
        throw Error(r.component, r.message, r.exit_code);
    {
        std::lock_guard<std::mutex> lock(metrics_mu_);
        ++tier_exact_;
    }
    return okResponse(Answer::of(r.meas, AnswerTier::Exact));
}

std::string
Server::handlePoll(const Request &req)
{
    BackfillResult r = backfill_.poll(req.ticket);
    if (!r.done)
        return pendingResponse(req.ticket);
    if (r.failed)
        throw Error(r.component, r.message, r.exit_code);
    {
        std::lock_guard<std::mutex> lock(metrics_mu_);
        ++tier_exact_;
    }
    return okResponse(Answer::of(r.meas, AnswerTier::Exact));
}

std::string
Server::handleLine(const std::string &line)
{
    auto t0 = std::chrono::steady_clock::now();
    std::string resp;
    try {
        Request req = parseRequest(line);
        {
            std::lock_guard<std::mutex> lock(metrics_mu_);
            ++requests_;
            if (req.verb == Verb::Predict)
                ++predicts_;
            else if (req.verb == Verb::Poll)
                ++polls_;
        }
        switch (req.verb) {
          case Verb::Ping:
            resp = pongResponse();
            break;
          case Verb::Metrics:
            resp = oneLine(metricsSnapshot().toJson());
            break;
          case Verb::Health: {
            HealthInfo h;
            h.draining = stop_ || shutdown_requested_;
            h.cache_size = cache_.size();
            h.cache_max = cache_.maxEntries();
            h.backfill_depth = backfill_.queueDepth();
            h.backfill_max = backfill_.maxPending();
            h.shed = backfill_.shed();
            h.connections = open_connections_;
            h.uptime_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() -
                             started_at_)
                             .count();
            {
                std::lock_guard<std::mutex> lock(metrics_mu_);
                h.deadline_missed = deadline_missed_;
            }
            resp = healthResponse(h);
            break;
          }
          case Verb::Shutdown:
            shutdown_requested_ = true;
            resp = shutdownResponse();
            break;
          case Verb::Poll:
            resp = handlePoll(req);
            break;
          case Verb::Predict:
            resp = handlePredict(req);
            break;
        }
    } catch (const Error &e) {
        {
            std::lock_guard<std::mutex> lock(metrics_mu_);
            ++errors_;
        }
        resp = errorResponse(e);
    } catch (const std::exception &e) {
        {
            std::lock_guard<std::mutex> lock(metrics_mu_);
            ++errors_;
        }
        resp = errorResponse(
            ServeError(e.what()));
    }
    double us = std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    {
        std::lock_guard<std::mutex> lock(metrics_mu_);
        request_us_.add(us);
    }
    if (opts_.verbose)
        std::fprintf(stderr, "ccsim serve: %s -> %s\n", line.c_str(),
                     resp.c_str());
    return resp;
}

stats::MetricsSnapshot
Server::metricsSnapshot() const
{
    stats::MetricsSnapshot snap;

    const stats::CacheStats cs = cache_.stats();
    const stats::CacheStats fs = fastpath_.stats();
    snap.counters["serve.backfill_batches"] = backfill_.batches();
    snap.counters["serve.backfill_coalesced"] = backfill_.coalesced();
    snap.counters["serve.backfill_completed"] = backfill_.completed();
    snap.counters["serve.backfill_failed"] = backfill_.failed();
    snap.counters["serve.backfill_shed"] = backfill_.shed();
    snap.counters["serve.backfill_submitted"] = backfill_.submitted();
    snap.counters["serve.cache_bypassed"] = cs.bypassed;
    snap.counters["serve.cache_evictions"] = cs.evictions;
    snap.counters["serve.cache_hits"] = cs.hits;
    snap.counters["serve.cache_misses"] = cs.misses;
    snap.counters["serve.cache_size"] = cache_.size();
    snap.counters["serve.fastpath_evals"] = fs.hits;
    snap.counters["serve.fastpath_fits"] = fs.misses;

    std::lock_guard<std::mutex> lock(metrics_mu_);
    snap.counters["serve.connections"] = connections_;
    snap.counters["serve.deadline_missed"] = deadline_missed_;
    snap.counters["serve.errors"] = errors_;
    snap.counters["serve.polls"] = polls_;
    snap.counters["serve.predicts"] = predicts_;
    snap.counters["serve.pending_tickets"] = pending_issued_;
    snap.counters["serve.requests"] = requests_;
    snap.counters["serve.tier_cache"] = tier_cache_;
    snap.counters["serve.tier_exact"] = tier_exact_;
    snap.counters["serve.tier_fast"] = tier_fast_;

    double uptime_s = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() -
                          started_at_)
                          .count();
    std::uint64_t answered = tier_cache_ + tier_fast_ + tier_exact_;
    snap.gauges["serve.backfill_max"] =
        static_cast<double>(backfill_.maxPending());
    snap.gauges["serve.backfill_queue_depth"] =
        static_cast<double>(backfill_.queueDepth());
    snap.gauges["serve.cache_max"] =
        static_cast<double>(cache_.maxEntries());
    snap.gauges["serve.connections_hw"] = connections_hw_;
    snap.gauges["serve.jobs"] = backfill_.jobs();
    snap.gauges["serve.qps"] =
        uptime_s > 0 ? static_cast<double>(requests_) / uptime_s : 0;
    snap.gauges["serve.request_us_p50"] =
        histQuantile(request_us_, 0.50);
    snap.gauges["serve.request_us_p99"] =
        histQuantile(request_us_, 0.99);
    snap.gauges["serve.tier_cache_rate"] =
        answered ? static_cast<double>(tier_cache_) /
                       static_cast<double>(answered)
                 : 0;
    snap.gauges["serve.tier_exact_rate"] =
        answered ? static_cast<double>(tier_exact_) /
                       static_cast<double>(answered)
                 : 0;
    snap.gauges["serve.tier_fast_rate"] =
        answered ? static_cast<double>(tier_fast_) /
                       static_cast<double>(answered)
                 : 0;
    snap.gauges["serve.uptime_s"] = uptime_s;

    snap.histograms["serve.request_us"] =
        stats::HistogramSnapshot::of(request_us_);
    return snap;
}

void
Server::start()
{
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        serveError("socket() failed");
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0)
        serveError("cannot bind 127.0.0.1:" +
                   std::to_string(opts_.port));
    if (::listen(listen_fd_, 64) < 0)
        serveError("listen() failed");

    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_,
                      reinterpret_cast<sockaddr *>(&addr), &len) < 0)
        serveError("getsockname() failed");
    port_ = ntohs(addr.sin_port);

    if (!opts_.port_file.empty()) {
        std::ofstream pf(opts_.port_file);
        pf << port_ << "\n";
        if (!pf)
            throw ServeError("cannot write port file " +
                                 opts_.port_file);
    }

    if (!opts_.cache_file.empty()) {
        std::size_t n = cache_.loadFile(opts_.cache_file);
        if (opts_.verbose && n > 0)
            std::fprintf(stderr,
                         "ccsim serve: warmed %zu cache entries "
                         "from %s\n",
                         n, opts_.cache_file.c_str());
    }

    started_ = true;
    accept_thread_ = std::thread([this] { acceptLoop(); });
}

void
Server::acceptLoop()
{
    while (!stop_) {
        pollfd pfd{listen_fd_, POLLIN, 0};
        int ready = ::poll(&pfd, 1, 200);
        if (ready <= 0)
            continue; // timeout or EINTR: re-check stop_
        int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0)
            continue;

        timeval tv{0, 200 * 1000};
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

        int open = ++open_connections_;
        std::lock_guard<std::mutex> lock(conn_mu_);
        {
            std::lock_guard<std::mutex> mlock(metrics_mu_);
            ++connections_;
            if (open > connections_hw_)
                connections_hw_ = open;
        }
        conn_threads_.emplace_back(
            [this, fd] { connectionLoop(fd); });
    }
}

void
Server::connectionLoop(int fd)
{
    std::string buf;
    char chunk[4096];
    bool closing = false;
    while (!closing && !stop_) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n == 0)
            break; // peer closed
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK ||
                errno == EINTR)
                continue; // timeout: re-check stop_
            break;
        }
        buf.append(chunk, static_cast<std::size_t>(n));

        std::size_t nl;
        while ((nl = buf.find('\n')) != std::string::npos) {
            std::string line = buf.substr(0, nl);
            buf.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.empty())
                continue;
            sendAll(fd, handleLine(line) + "\n");
            if (shutdown_requested_) {
                closing = true;
                break;
            }
        }
    }
    ::close(fd);
    --open_connections_;
}

void
Server::stop()
{
    bool was_stopped = stop_.exchange(true);
    if (accept_thread_.joinable())
        accept_thread_.join();
    {
        std::lock_guard<std::mutex> lock(conn_mu_);
        for (std::thread &t : conn_threads_)
            if (t.joinable())
                t.join();
        conn_threads_.clear();
    }
    backfill_.stop();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    if (started_) {
        started_ = false;
        // Persist the warmed cache; a failed save must not turn a
        // clean drain into a crash, so it only warns.
        if (!opts_.cache_file.empty()) {
            try {
                cache_.saveFile(opts_.cache_file);
            } catch (const Error &e) {
                std::fprintf(stderr, "ccsim serve: %s\n", e.what());
            }
        }
        // A clean drain removes the port file so scripts watching it
        // see the daemon as down, not merely unresponsive.
        if (!opts_.port_file.empty())
            std::remove(opts_.port_file.c_str());
    }
    (void)was_stopped;
}

} // namespace ccsim::serve
