#include "serve/cache.hh"

namespace ccsim::serve {

bool
QueryCache::lookup(const std::string &key, harness::Measurement &out)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
        ++stats_.misses;
        return false;
    }
    ++stats_.hits;
    out = it->second;
    return true;
}

void
QueryCache::insert(const std::string &key,
                   const harness::Measurement &meas)
{
    std::lock_guard<std::mutex> lock(mu_);
    map_[key] = meas;
}

bool
QueryCache::contains(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return map_.count(key) != 0;
}

std::size_t
QueryCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
}

stats::CacheStats
QueryCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
QueryCache::recordBypass()
{
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.bypassed;
}

} // namespace ccsim::serve
