#include "serve/cache.hh"

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "machine/config_io.hh"
#include "serve/protocol.hh" // ServeError
#include "util/logging.hh"

namespace ccsim::serve {

void
QueryCache::touch(Entry &e)
{
    lru_.splice(lru_.begin(), lru_, e.lru);
}

void
QueryCache::evictOverflow()
{
    while (max_entries_ > 0 && map_.size() > max_entries_) {
        map_.erase(lru_.back());
        lru_.pop_back();
        ++stats_.evictions;
    }
}

bool
QueryCache::lookup(const std::string &key, harness::Measurement &out)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
        ++stats_.misses;
        return false;
    }
    ++stats_.hits;
    touch(it->second);
    out = it->second.meas;
    return true;
}

void
QueryCache::insert(const std::string &key,
                   const harness::Measurement &meas)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
        it->second.meas = meas;
        touch(it->second);
        return;
    }
    lru_.push_front(key);
    map_.emplace(key, Entry{meas, lru_.begin()});
    evictOverflow();
}

bool
QueryCache::contains(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return map_.count(key) != 0;
}

std::size_t
QueryCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
}

stats::CacheStats
QueryCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
QueryCache::recordBypass()
{
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.bypassed;
}

void
QueryCache::setMaxEntries(std::size_t max)
{
    std::lock_guard<std::mutex> lock(mu_);
    max_entries_ = max;
    evictOverflow();
}

std::size_t
QueryCache::maxEntries() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return max_entries_;
}

namespace {

constexpr const char *kCacheMagic = "ccsim-query-cache v1";

} // namespace

std::size_t
QueryCache::saveFile(const std::string &path) const
{
    // Snapshot under the lock, write outside it.
    std::vector<std::pair<std::string, harness::Measurement>> entries;
    {
        std::lock_guard<std::mutex> lock(mu_);
        entries.reserve(map_.size());
        for (const std::string &key : lru_) {
            auto it = map_.find(key);
            entries.emplace_back(key, it->second.meas);
        }
    }

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        throw ServeError("cannot write cache file " + path);
    std::fprintf(f, "%s %zu\n", kCacheMagic, entries.size());
    for (const auto &[key, meas] : entries) {
        std::fprintf(f, "%s\n", key.c_str());
        // Only the identity and the three times are ever non-default
        // in a cacheable Measurement (cacheable == clean machine).
        std::fprintf(f, "%s|%s|%s|%d|%" PRId64 "|%" PRId64 "|%" PRId64
                        "|%" PRId64 "\n",
                     meas.machine.c_str(),
                     machine::collKey(meas.op).c_str(),
                     machine::algoName(meas.algo).c_str(), meas.p,
                     meas.m, meas.max_time, meas.min_time,
                     meas.mean_time);
    }
    bool failed = std::ferror(f) != 0;
    if (std::fclose(f) != 0)
        failed = true;
    if (failed)
        throw ServeError("write failed for cache file " + path);
    return entries.size();
}

namespace {

[[noreturn]] void
badCacheFile(const std::string &path, std::size_t line,
             const char *what)
{
    throw machine::ConfigError(path + ":" + std::to_string(line) +
                               ": bad cache file: " + what);
}

machine::Coll
collFromKey(const std::string &path, std::size_t line,
            const std::string &key)
{
    for (machine::Coll op : machine::kAllColls)
        if (machine::collKey(op) == key)
            return op;
    badCacheFile(path, line, "unknown collective");
}

} // namespace

std::size_t
QueryCache::loadFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return 0; // first start: nothing persisted yet

    char buf[4096];
    std::size_t line = 0;
    auto getLine = [&](std::string &out) {
        if (!std::fgets(buf, sizeof(buf), f))
            return false;
        ++line;
        out = buf;
        while (!out.empty() &&
               (out.back() == '\n' || out.back() == '\r'))
            out.pop_back();
        return true;
    };

    std::string text;
    std::size_t count = 0;
    try {
        if (!getLine(text))
            badCacheFile(path, 1, "empty file");
        std::size_t n = 0;
        if (std::sscanf(text.c_str(),
                        "ccsim-query-cache v1 %zu", &n) != 1)
            badCacheFile(path, line, "bad header");

        // Entries are saved hottest-first; inserting in REVERSE
        // (coldest first) reproduces the saved recency order, so a
        // bounded cache keeps the hottest prefix.
        std::vector<std::pair<std::string, harness::Measurement>> all;
        all.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            std::string key, val;
            if (!getLine(key) || !getLine(val))
                badCacheFile(path, line, "truncated entry");
            harness::Measurement m;
            char mach[128], op[32], algo[32];
            long long mm, maxt, mint, meant;
            if (std::sscanf(val.c_str(),
                            "%127[^|]|%31[^|]|%31[^|]|%d|%lld|%lld|"
                            "%lld|%lld",
                            mach, op, algo, &m.p, &mm, &maxt, &mint,
                            &meant) != 8)
                badCacheFile(path, line, "bad entry record");
            m.machine = mach;
            m.op = collFromKey(path, line, op);
            m.algo = machine::algoFromName(algo);
            m.m = mm;
            m.max_time = maxt;
            m.min_time = mint;
            m.mean_time = meant;
            all.emplace_back(std::move(key), std::move(m));
        }
        for (auto it = all.rbegin(); it != all.rend(); ++it) {
            insert(it->first, it->second);
            ++count;
        }
    } catch (...) {
        std::fclose(f);
        throw;
    }
    std::fclose(f);
    return count;
}

} // namespace ccsim::serve
