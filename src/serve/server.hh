/**
 * @file
 * Server — the `ccsim serve` daemon: a line-oriented TCP front end
 * over the three-tier answering brain.
 *
 * Tiers, in the order a predict request tries them (docs/SERVE.md):
 *
 *  1. QueryCache — previously simulated points, keyed on the
 *     harness::measurePointKey canonicalization, so hits are
 *     byte-identical to fresh simulation.
 *  2. FastPath — fitted closed-form T(m, p) per (machine, op, algo),
 *     microseconds in microseconds out, flagged `approx`.
 *  3. BackfillQueue — exact simulation batched onto a SweepRunner
 *     pool (`--jobs` bounds simulation parallelism, NOT client
 *     concurrency), delivered blocking or by ticket.
 *
 * tier=auto answers a miss from the fast path immediately AND
 * backfills the exact result in the background, so the same query
 * later upgrades to a cache hit.
 *
 * Concurrency model: one accept loop plus one thread per connection
 * (clients are interactive and few; simulation work is delegated to
 * the backfill pool, so client threads stay cheap).  Every Algo::Auto
 * is resolved through the machine's selection table BEFORE the cache
 * key is formed — an auto query and its explicit-algorithm twin share
 * one cache entry.
 *
 * handleLine() — request line in, response line out — is the entire
 * protocol brain, public so tests drive it without sockets.
 */

#ifndef CCSIM_SERVE_SERVER_HH
#define CCSIM_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/backfill.hh"
#include "serve/cache.hh"
#include "serve/fastpath.hh"
#include "serve/protocol.hh"
#include "stats/snapshot.hh"

namespace ccsim::serve {

/** Daemon knobs (the `ccsim serve` flags). */
struct ServerOptions
{
    int port = 0;          //!< 0: kernel-assigned ephemeral port
    int jobs = 1;          //!< backfill SweepRunner width (0 = cores)
    std::string port_file; //!< write the bound port here (scripts);
                           //!< removed again on a clean stop()
    bool verbose = false;  //!< log one line per request to stderr

    // Hardening knobs (DESIGN.md §4.14).
    std::size_t cache_max = 65536; //!< QueryCache bound (0 = none)
    std::string cache_file; //!< load at start(), save at stop()
    int deadline_ms = 0;    //!< default blocking-exact deadline
                            //!< (0 = wait forever); per-request
                            //!< deadline_ms overrides
    std::size_t backfill_max = 1024; //!< queue bound; full = shed
                                     //!< to the fast tier (0 = none)
};

/** The prediction daemon; see file comment. */
class Server
{
  public:
    explicit Server(ServerOptions opts = {});

    /** stop()s if still running. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind 127.0.0.1, listen, spawn the accept loop.
     *  FatalError("serve") when the port is taken or sockets fail. */
    void start();

    /** The bound port (valid after start()). */
    int port() const { return port_; }

    /** True once a client sent `shutdown` (the CLI's cue to stop()). */
    bool shutdownRequested() const { return shutdown_requested_; }

    /** Stop accepting, close connections, drain the backfill queue,
     *  join every thread.  Idempotent; safe without start(). */
    void stop();

    /**
     * The protocol brain: one request line in, one JSON response line
     * out (no trailing newline).  Never throws — malformed requests
     * and simulation failures become {"status":"error",...} lines.
     */
    std::string handleLine(const std::string &line);

    /** The daemon's observability snapshot: per-tier hit counters,
     *  QPS, backfill queue stats, request-latency histogram with
     *  p50/p99 gauges. */
    stats::MetricsSnapshot metricsSnapshot() const;

    // Direct tier access for tests and the example.
    QueryCache &cache() { return cache_; }
    FastPath &fastPath() { return fastpath_; }
    BackfillQueue &backfill() { return backfill_; }

  private:
    machine::ConfigHandle resolveConfig(const Request &req);
    std::string handlePredict(const Request &req);
    std::string handlePoll(const Request &req);
    Answer fastAnswer(const machine::MachineConfig &cfg,
                      const Request &req, machine::Algo algo);

    void acceptLoop();
    void connectionLoop(int fd);

    ServerOptions opts_;
    QueryCache cache_;
    FastPath fastpath_;
    BackfillQueue backfill_;

    // resolved (config source, selection) -> immutable shared config
    std::mutex cfg_mu_;
    std::map<std::string, machine::ConfigHandle> cfg_cache_;

    // request metrics
    mutable std::mutex metrics_mu_;
    std::uint64_t requests_ = 0;
    std::uint64_t predicts_ = 0;
    std::uint64_t polls_ = 0;
    std::uint64_t errors_ = 0;
    std::uint64_t tier_cache_ = 0;
    std::uint64_t tier_fast_ = 0;
    std::uint64_t tier_exact_ = 0;
    std::uint64_t pending_issued_ = 0;
    std::uint64_t deadline_missed_ = 0;
    std::uint64_t connections_ = 0;
    double connections_hw_ = 0;
    stats::Histogram request_us_;
    std::chrono::steady_clock::time_point started_at_ =
        std::chrono::steady_clock::now();

    // sockets and threads
    int listen_fd_ = -1;
    int port_ = 0;
    bool started_ = false; //!< start() ran (gates cache_file save)
    std::atomic<bool> stop_{false};
    std::atomic<bool> shutdown_requested_{false};
    std::atomic<int> open_connections_{0};
    std::thread accept_thread_;
    std::mutex conn_mu_;
    std::vector<std::thread> conn_threads_;
};

} // namespace ccsim::serve

#endif // CCSIM_SERVE_SERVER_HH
