#include "util/cli.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/logging.hh"

namespace ccsim::cli {

Options &
Options::flag(const std::string &name, const std::string &help)
{
    decls_.push_back({name, help, ""});
    return *this;
}

Options &
Options::value(const std::string &name, const std::string &help,
               const std::string &placeholder)
{
    decls_.push_back({name, help, placeholder});
    return *this;
}

const Options::Decl *
Options::find(const std::string &name) const
{
    for (const Decl &d : decls_)
        if (d.name == name)
            return &d;
    return nullptr;
}

const Options::Decl &
Options::declared(const std::string &name) const
{
    const Decl *d = find(name);
    if (!d)
        panic("option --%s read but never declared for %s",
              name.c_str(), prog_.c_str());
    return *d;
}

void
Options::parse(int argc, char **argv, int start)
{
    for (int i = start; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            fatal("expected --option, got '%s'\n%s", arg.c_str(),
                  usage().c_str());
        std::string key = arg.substr(2);
        if (key == "help") {
            std::printf("%s", usage().c_str());
            std::exit(0);
        }
        const Decl *d = find(key);
        if (!d) {
            std::vector<std::string> names;
            for (const Decl &decl : decls_)
                names.push_back(decl.name);
            std::string hint = closestMatch(key, names);
            if (!hint.empty())
                fatal("unknown option '--%s' (did you mean "
                      "'--%s'?)\n%s", key.c_str(), hint.c_str(),
                      usage().c_str());
            fatal("unknown option '--%s'\n%s", key.c_str(),
                  usage().c_str());
        }
        if (d->placeholder.empty()) {
            values_[key] = "1";
        } else {
            if (i + 1 >= argc)
                fatal("--%s needs a value\n%s", key.c_str(),
                      usage().c_str());
            values_[key] = argv[++i];
        }
    }
}

bool
Options::has(const std::string &name) const
{
    declared(name);
    return values_.count(name) != 0;
}

bool
Options::declares(const std::string &name) const
{
    return find(name) != nullptr;
}

std::string
Options::get(const std::string &name, const std::string &fallback) const
{
    declared(name);
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
}

long long
Options::getInt(const std::string &name, long long fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end()) {
        declared(name);
        return fallback;
    }
    try {
        std::size_t pos = 0;
        long long v = std::stoll(it->second, &pos);
        if (pos != it->second.size())
            throw std::invalid_argument(it->second);
        return v;
    } catch (const std::exception &) {
        fatal("bad integer for --%s: '%s'", name.c_str(),
              it->second.c_str());
    }
}

double
Options::getDouble(const std::string &name, double fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end()) {
        declared(name);
        return fallback;
    }
    try {
        std::size_t pos = 0;
        double v = std::stod(it->second, &pos);
        if (pos != it->second.size())
            throw std::invalid_argument(it->second);
        return v;
    } catch (const std::exception &) {
        fatal("bad number for --%s: '%s'", name.c_str(),
              it->second.c_str());
    }
}

std::vector<std::string>
Options::getList(const std::string &name,
                 const std::string &fallback) const
{
    return splitList(get(name, fallback));
}

std::string
Options::usage() const
{
    std::ostringstream os;
    os << "usage: " << prog_;
    for (const Decl &d : decls_) {
        os << " [--" << d.name;
        if (!d.placeholder.empty())
            os << " " << d.placeholder;
        os << "]";
    }
    os << "\n";
    for (const Decl &d : decls_) {
        std::string lhs = "--" + d.name;
        if (!d.placeholder.empty())
            lhs += " " + d.placeholder;
        os << "  " << lhs;
        for (std::size_t i = lhs.size(); i < 22; ++i)
            os << ' ';
        os << d.help << "\n";
    }
    return os.str();
}

namespace {

std::string
lowered(const std::string &s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return out;
}

/** Plain dynamic-programming Levenshtein distance. */
std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            std::size_t up = row[j];
            std::size_t subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
            row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
            diag = up;
        }
    }
    return row[b.size()];
}

} // namespace

std::string
closestMatch(const std::string &given,
             const std::vector<std::string> &candidates)
{
    const std::string g = lowered(given);
    // A typo plausibly reaches its target within max(2, len/3)
    // edits; anything farther would suggest unrelated names.
    const std::size_t budget = std::max<std::size_t>(2, g.size() / 3);
    std::string best;
    std::size_t best_dist = budget + 1;
    for (const std::string &c : candidates) {
        // d == 0 still suggests: a case-mangled spelling ("--Jobs")
        // is unknown to the case-sensitive schema but lowers to an
        // exact candidate.
        std::size_t d = editDistance(g, lowered(c));
        if (d < best_dist) {
            best_dist = d;
            best = c;
        }
    }
    return best;
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::string item;
    std::stringstream ss(s);
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

} // namespace ccsim::cli
