#include "util/cli.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/logging.hh"

namespace ccsim::cli {

Options &
Options::flag(const std::string &name, const std::string &help)
{
    decls_.push_back({name, help, ""});
    return *this;
}

Options &
Options::value(const std::string &name, const std::string &help,
               const std::string &placeholder)
{
    decls_.push_back({name, help, placeholder});
    return *this;
}

const Options::Decl *
Options::find(const std::string &name) const
{
    for (const Decl &d : decls_)
        if (d.name == name)
            return &d;
    return nullptr;
}

const Options::Decl &
Options::declared(const std::string &name) const
{
    const Decl *d = find(name);
    if (!d)
        panic("option --%s read but never declared for %s",
              name.c_str(), prog_.c_str());
    return *d;
}

void
Options::parse(int argc, char **argv, int start)
{
    for (int i = start; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            fatal("expected --option, got '%s'\n%s", arg.c_str(),
                  usage().c_str());
        std::string key = arg.substr(2);
        if (key == "help") {
            std::printf("%s", usage().c_str());
            std::exit(0);
        }
        const Decl *d = find(key);
        if (!d)
            fatal("unknown option '--%s'\n%s", key.c_str(),
                  usage().c_str());
        if (d->placeholder.empty()) {
            values_[key] = "1";
        } else {
            if (i + 1 >= argc)
                fatal("--%s needs a value\n%s", key.c_str(),
                      usage().c_str());
            values_[key] = argv[++i];
        }
    }
}

bool
Options::has(const std::string &name) const
{
    declared(name);
    return values_.count(name) != 0;
}

bool
Options::declares(const std::string &name) const
{
    return find(name) != nullptr;
}

std::string
Options::get(const std::string &name, const std::string &fallback) const
{
    declared(name);
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
}

long long
Options::getInt(const std::string &name, long long fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end()) {
        declared(name);
        return fallback;
    }
    try {
        std::size_t pos = 0;
        long long v = std::stoll(it->second, &pos);
        if (pos != it->second.size())
            throw std::invalid_argument(it->second);
        return v;
    } catch (const std::exception &) {
        fatal("bad integer for --%s: '%s'", name.c_str(),
              it->second.c_str());
    }
}

double
Options::getDouble(const std::string &name, double fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end()) {
        declared(name);
        return fallback;
    }
    try {
        std::size_t pos = 0;
        double v = std::stod(it->second, &pos);
        if (pos != it->second.size())
            throw std::invalid_argument(it->second);
        return v;
    } catch (const std::exception &) {
        fatal("bad number for --%s: '%s'", name.c_str(),
              it->second.c_str());
    }
}

std::vector<std::string>
Options::getList(const std::string &name,
                 const std::string &fallback) const
{
    return splitList(get(name, fallback));
}

std::string
Options::usage() const
{
    std::ostringstream os;
    os << "usage: " << prog_;
    for (const Decl &d : decls_) {
        os << " [--" << d.name;
        if (!d.placeholder.empty())
            os << " " << d.placeholder;
        os << "]";
    }
    os << "\n";
    for (const Decl &d : decls_) {
        std::string lhs = "--" + d.name;
        if (!d.placeholder.empty())
            lhs += " " + d.placeholder;
        os << "  " << lhs;
        for (std::size_t i = lhs.size(); i < 22; ++i)
            os << ' ';
        os << d.help << "\n";
    }
    return os.str();
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::string item;
    std::stringstream ss(s);
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

} // namespace ccsim::cli
