/**
 * @file
 * ccsim::Error — the root of every exception the library raises.
 *
 * Each subsystem's typed exception (FatalError/PanicError/
 * ConfigError here and in util/logging.hh, fault::FaultError,
 * replay::TraceError) derives from this base and carries:
 *
 *  - component(): which layer raised it ("fault", "replay", ...);
 *  - exitCode():  the process exit status the CLI maps it to, so
 *    scripted callers can tell a bad flag from a lost message from a
 *    malformed trace without parsing stderr;
 *  - what():      the plain message text, unchanged from what
 *    fatal() would have printed (error-path tests substring-match
 *    it, and context such as "file:line: rank N:" is embedded by the
 *    thrower, which is the only layer that knows it).
 *
 * formatted() is the CLI's one-line rendering, "ccsim <component>
 * error: <message>".  Tools catch `const ccsim::Error &` once at the
 * top of main and exit with e.exitCode(); see tools/ccsim_cli.cc.
 *
 * Exit-code map: 1 user error (FatalError), 3 trace parse
 * (TraceError), 4 fault-layer failure (FaultError), 5 machine config
 * (ConfigError), 70 internal invariant (PanicError, EX_SOFTWARE).
 */

#ifndef CCSIM_UTIL_ERROR_HH
#define CCSIM_UTIL_ERROR_HH

#include <stdexcept>
#include <string>

namespace ccsim {

/** Process exit codes, one per error family (see file comment). */
inline constexpr int kUserExit = 1;   //!< FatalError
inline constexpr int kTraceExit = 3;  //!< replay::TraceError
inline constexpr int kFaultExit = 4;  //!< fault::FaultError
inline constexpr int kConfigExit = 5; //!< machine::ConfigError
inline constexpr int kPanicExit = 70; //!< PanicError (EX_SOFTWARE)

/** Base of all ccsim exceptions; see file comment. */
class Error : public std::runtime_error
{
  public:
    Error(std::string component, const std::string &message,
          int exit_code)
        : std::runtime_error(message), component_(std::move(component)),
          exit_code_(exit_code)
    {
    }

    /** Layer that raised the error ("fault", "replay", "config"...). */
    const std::string &component() const { return component_; }

    /** Process exit status the CLI maps this error to. */
    int exitCode() const { return exit_code_; }

    /** "ccsim <component> error: <what()>". */
    std::string formatted() const;

  private:
    std::string component_;
    int exit_code_;
};

/** Raised by fatal() when throwOnError(true) is active: the user
 *  asked for something impossible.  Exit code 1. */
struct FatalError : Error
{
    explicit FatalError(const std::string &message)
        : Error("fatal", message, kUserExit)
    {
    }

  protected:
    /** For subclasses (TraceError, ConfigError) that refine the
     *  component and exit code but must stay catchable as
     *  FatalError. */
    FatalError(std::string component, const std::string &message,
               int exit_code)
        : Error(std::move(component), message, exit_code)
    {
    }
};

/**
 * A bad machine/topology configuration: unknown preset/key/
 * algorithm/topology family, a malformed value or spec string, or an
 * unreadable config file.  Derives from FatalError (a user error,
 * catchable as one) but refines the component to "config" and the
 * CLI exit code to kConfigExit.  Lives at the util layer so both the
 * machine config loader and the net topology factory can raise it;
 * machine::ConfigError is an alias (config_io.hh).
 */
struct ConfigError : FatalError
{
    explicit ConfigError(const std::string &message)
        : FatalError("config", message, kConfigExit)
    {
    }
};

/** Raised by panic() when throwOnError(true) is active: a ccsim
 *  bug.  Exit code 70 (EX_SOFTWARE). */
struct PanicError : Error
{
    explicit PanicError(const std::string &message)
        : Error("panic", message, kPanicExit)
    {
    }
};

} // namespace ccsim

#endif // CCSIM_UTIL_ERROR_HH
