#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace ccsim {

void
RunningStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::min() const
{
    return n_ ? min_ : 0.0;
}

double
RunningStats::max() const
{
    return n_ ? max_ : 0.0;
}

double
RunningStats::mean() const
{
    return n_ ? mean_ : 0.0;
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStats::reset()
{
    *this = RunningStats();
}

void
SampleStats::add(double x)
{
    running_.add(x);
    samples_.push_back(x);
    sorted_valid_ = false;
}

double
SampleStats::percentile(double q) const
{
    if (q < 0.0 || q > 1.0)
        panic("SampleStats::percentile: q %g outside [0,1]", q);
    if (samples_.empty())
        return 0.0;
    if (!sorted_valid_) {
        sorted_ = samples_;
        std::sort(sorted_.begin(), sorted_.end());
        sorted_valid_ = true;
    }
    if (sorted_.size() == 1)
        return sorted_.front();
    double pos = q * static_cast<double>(sorted_.size() - 1);
    auto lo = static_cast<std::size_t>(pos);
    double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= sorted_.size())
        return sorted_.back();
    return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

void
SampleStats::reset()
{
    running_.reset();
    samples_.clear();
    sorted_.clear();
    sorted_valid_ = false;
}

} // namespace ccsim
