#include "util/table.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "util/logging.hh"

namespace ccsim {

namespace {

/** True when the cell looks numeric (for right-alignment). */
bool
looksNumeric(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
              c == '-' || c == '+' || c == 'e' || c == 'E' || c == '%' ||
              c == ','))
            return false;
    }
    return true;
}

} // namespace

void
TableWriter::header(std::vector<std::string> names)
{
    header_ = std::move(names);
}

void
TableWriter::row(std::vector<std::string> cells)
{
    if (!header_.empty() && cells.size() != header_.size())
        panic("TableWriter::row: %zu cells for %zu columns",
              cells.size(), header_.size());
    rows_.push_back(std::move(cells));
}

void
TableWriter::separator()
{
    rows_.emplace_back();
}

std::size_t
TableWriter::rows() const
{
    std::size_t n = 0;
    for (const auto &r : rows_)
        if (!r.empty())
            ++n;
    return n;
}

void
TableWriter::print(std::ostream &os) const
{
    std::size_t ncols = header_.size();
    for (const auto &r : rows_)
        ncols = std::max(ncols, r.size());
    if (ncols == 0)
        return;

    std::vector<std::size_t> width(ncols, 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &r : rows_)
        for (std::size_t c = 0; c < r.size(); ++c)
            width[c] = std::max(width[c], r[c].size());

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < ncols; ++c) {
            const std::string cell =
                c < cells.size() ? cells[c] : std::string();
            bool right = looksNumeric(cell);
            os << (c == 0 ? "" : "  ");
            if (right)
                os << std::string(width[c] - cell.size(), ' ') << cell;
            else
                os << cell << std::string(width[c] - cell.size(), ' ');
        }
        os << '\n';
    };

    auto print_sep = [&]() {
        for (std::size_t c = 0; c < ncols; ++c) {
            os << (c == 0 ? "" : "  ");
            os << std::string(width[c], '-');
        }
        os << '\n';
    };

    if (!header_.empty()) {
        print_row(header_);
        print_sep();
    }
    for (const auto &r : rows_) {
        if (r.empty())
            print_sep();
        else
            print_row(r);
    }
}

std::string
TableWriter::str() const
{
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

std::string
formatG(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", digits, v);
    return buf;
}

std::string
formatF(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

} // namespace ccsim
