#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace ccsim {

namespace {

bool throw_on_error = false;
bool quiet = false;

} // namespace

std::string
vstrFormat(const char *fmt, std::va_list ap)
{
    std::va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    if (n < 0) {
        va_end(ap2);
        return fmt;
    }
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
strFormat(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrFormat(fmt, ap);
    va_end(ap);
    return msg;
}

bool
throwingErrors()
{
    return throw_on_error;
}

bool
throwOnError(bool enable)
{
    bool prev = throw_on_error;
    throw_on_error = enable;
    return prev;
}

bool
quietLogging(bool enable)
{
    bool prev = quiet;
    quiet = enable;
    return prev;
}

void
inform(const char *fmt, ...)
{
    if (quiet)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrFormat(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
warn(const char *fmt, ...)
{
    if (quiet)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrFormat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrFormat(fmt, ap);
    va_end(ap);
    if (throw_on_error)
        throw FatalError(msg);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrFormat(fmt, ap);
    va_end(ap);
    if (throw_on_error)
        throw PanicError(msg);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace ccsim
