#include "util/error.hh"

namespace ccsim {

std::string
Error::formatted() const
{
    return "ccsim " + component_ + " error: " + what();
}

} // namespace ccsim
