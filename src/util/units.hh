/**
 * @file
 * Strongly-typed simulation units.
 *
 * The simulator counts time in integer picoseconds so that event
 * ordering is exact and runs are bit-reproducible.  A 64-bit count of
 * picoseconds covers roughly 106 days of simulated time, far beyond
 * anything these benchmarks need.  Message sizes are plain byte
 * counts.  Free helper functions convert to and from the human units
 * used throughout the paper (microseconds, MB/s).
 */

#ifndef CCSIM_UTIL_UNITS_HH
#define CCSIM_UTIL_UNITS_HH

#include <cstdint>
#include <string>

namespace ccsim {

/** Simulated time in integer picoseconds. */
using Time = std::int64_t;

/** Message / buffer sizes in bytes. */
using Bytes = std::int64_t;

namespace time_literals {

constexpr Time PS = 1;
constexpr Time NS = 1000 * PS;
constexpr Time US = 1000 * NS;
constexpr Time MS = 1000 * US;
constexpr Time SEC = 1000 * MS;

} // namespace time_literals

/** Build a Time from a (possibly fractional) count of nanoseconds. */
constexpr Time
nanoseconds(double ns)
{
    return static_cast<Time>(ns * 1e3 + (ns >= 0 ? 0.5 : -0.5));
}

/** Build a Time from a (possibly fractional) count of microseconds. */
constexpr Time
microseconds(double us)
{
    return static_cast<Time>(us * 1e6 + (us >= 0 ? 0.5 : -0.5));
}

/** Build a Time from a (possibly fractional) count of milliseconds. */
constexpr Time
milliseconds(double ms)
{
    return static_cast<Time>(ms * 1e9 + (ms >= 0 ? 0.5 : -0.5));
}

/** Convert a Time to floating-point nanoseconds. */
constexpr double
toNanos(Time t)
{
    return static_cast<double>(t) * 1e-3;
}

/** Convert a Time to floating-point microseconds. */
constexpr double
toMicros(Time t)
{
    return static_cast<double>(t) * 1e-6;
}

/** Convert a Time to floating-point milliseconds. */
constexpr double
toMillis(Time t)
{
    return static_cast<double>(t) * 1e-9;
}

/** Convert a Time to floating-point seconds. */
constexpr double
toSeconds(Time t)
{
    return static_cast<double>(t) * 1e-12;
}

/**
 * Time taken to move @p bytes at @p mbytes_per_sec (decimal MB/s, the
 * unit the paper quotes link bandwidths in).  Returns zero time for a
 * zero-byte transfer; bandwidth must be positive.
 */
Time transferTime(Bytes bytes, double mbytes_per_sec);

/** Bandwidth in MB/s implied by moving @p bytes in @p t. */
double bandwidthMBs(Bytes bytes, Time t);

constexpr Bytes KiB = 1024;
constexpr Bytes MiB = 1024 * KiB;

/** Render a time with an auto-selected unit, e.g.\ "3.00 us". */
std::string formatTime(Time t);

/** Render a byte count, e.g.\ "64 KB" or "512 B". */
std::string formatBytes(Bytes b);

} // namespace ccsim

#endif // CCSIM_UTIL_UNITS_HH
