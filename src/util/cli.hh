/**
 * @file
 * cli::Options — the one command-line schema + parser every ccsim
 * binary uses (each `ccsim` subcommand and every bench).
 *
 * A binary *declares* its flags, then parses:
 *
 * @code
 *     cli::Options o("ccsim measure");
 *     o.flag("paper", "use the paper's full 22-run procedure");
 *     o.value("machine", "preset or config name", "NAME");
 *     o.parse(argc, argv, 2);          // 2: skip the subcommand
 *     if (o.has("paper")) ...
 *     int p = o.getInt("p", 32);
 * @endcode
 *
 * Rules, uniform across binaries:
 *
 *  - options are "--name" (value options consume the next argv);
 *  - undeclared options and missing values are fatal(), with the
 *    usage line in the message;
 *  - "--help" is always accepted: prints usage to stdout, exits 0;
 *  - repeated options keep the last occurrence;
 *  - list-valued options are comma-separated, read via getList().
 *
 * This replaces the per-binary parsers that used to live in
 * tools/ccsim_cli.cc and bench/bench_common.cc, so a new global
 * option (e.g. --metrics) is declared in one place per binary and
 * behaves identically everywhere.
 */

#ifndef CCSIM_UTIL_CLI_HH
#define CCSIM_UTIL_CLI_HH

#include <map>
#include <string>
#include <vector>

namespace ccsim::cli {

/** Declarative option schema + parsed values; see file comment. */
class Options
{
  public:
    /** @p prog names the binary (or subcommand) in usage text. */
    explicit Options(std::string prog) : prog_(std::move(prog)) {}

    /** Declare a boolean option ("--name", no value). */
    Options &flag(const std::string &name, const std::string &help);

    /** Declare a valued option ("--name VAL"). */
    Options &value(const std::string &name, const std::string &help,
                   const std::string &placeholder = "VAL");

    /**
     * Parse argv[start..argc).  fatal() on undeclared options or a
     * missing value; handles --help itself (prints usage, exit 0).
     */
    void parse(int argc, char **argv, int start = 1);

    /** True when the option appeared on the command line. */
    bool has(const std::string &name) const;

    /** True when the option was declared on this binary's schema —
     *  for helpers shared across subcommands that only some of them
     *  declare (reading an undeclared option is a panic). */
    bool declares(const std::string &name) const;

    std::string get(const std::string &name,
                    const std::string &fallback = "") const;

    /** fatal() when present but not an integer. */
    long long getInt(const std::string &name, long long fallback) const;

    /** fatal() when present but not a number. */
    double getDouble(const std::string &name, double fallback) const;

    /** Comma-split value; empty items dropped. */
    std::vector<std::string>
    getList(const std::string &name,
            const std::string &fallback = "") const;

    /** One-line summary + per-option help lines. */
    std::string usage() const;

  private:
    struct Decl
    {
        std::string name;
        std::string help;
        std::string placeholder; // empty: boolean flag
    };

    const Decl *find(const std::string &name) const;
    const Decl &declared(const std::string &name) const;

    std::string prog_;
    std::vector<Decl> decls_; // declaration order, for usage()
    std::map<std::string, std::string> values_;
};

/** Split a comma-separated string; empty items dropped. */
std::vector<std::string> splitList(const std::string &s);

/**
 * The candidate closest to @p given by edit distance
 * (case-insensitive Levenshtein), or "" when nothing is close enough
 * to suggest — a typo plausibly reaches its target within
 * max(2, len/3) edits; anything farther is a different word.  Backs
 * the "did you mean" hints on unknown options (Options::parse) and
 * unknown ccsim subcommands.
 */
std::string closestMatch(const std::string &given,
                         const std::vector<std::string> &candidates);

} // namespace ccsim::cli

#endif // CCSIM_UTIL_CLI_HH
