#include "util/units.hh"

#include <cmath>
#include <cstdio>

#include "util/logging.hh"

namespace ccsim {

Time
transferTime(Bytes bytes, double mbytes_per_sec)
{
    if (bytes < 0)
        panic("transferTime: negative byte count %lld",
              static_cast<long long>(bytes));
    if (mbytes_per_sec <= 0.0)
        panic("transferTime: non-positive bandwidth %g", mbytes_per_sec);
    if (bytes == 0)
        return 0;
    // ps per byte at B MB/s is 1e6 / B.
    double ps = static_cast<double>(bytes) * (1e6 / mbytes_per_sec);
    return static_cast<Time>(std::llround(ps));
}

double
bandwidthMBs(Bytes bytes, Time t)
{
    if (t <= 0)
        return 0.0;
    return static_cast<double>(bytes) * 1e6 / static_cast<double>(t);
}

std::string
formatTime(Time t)
{
    char buf[64];
    double a = std::abs(static_cast<double>(t));
    if (a < 1e3) {
        std::snprintf(buf, sizeof(buf), "%lld ps",
                      static_cast<long long>(t));
    } else if (a < 1e6) {
        std::snprintf(buf, sizeof(buf), "%.2f ns", toNanos(t));
    } else if (a < 1e9) {
        std::snprintf(buf, sizeof(buf), "%.2f us", toMicros(t));
    } else if (a < 1e12) {
        std::snprintf(buf, sizeof(buf), "%.2f ms", toMillis(t));
    } else {
        std::snprintf(buf, sizeof(buf), "%.3f s", toSeconds(t));
    }
    return buf;
}

std::string
formatBytes(Bytes b)
{
    char buf[64];
    if (b < KiB) {
        std::snprintf(buf, sizeof(buf), "%lld B",
                      static_cast<long long>(b));
    } else if (b < MiB) {
        if (b % KiB == 0) {
            std::snprintf(buf, sizeof(buf), "%lld KB",
                          static_cast<long long>(b / KiB));
        } else {
            std::snprintf(buf, sizeof(buf), "%.1f KB",
                          static_cast<double>(b) / KiB);
        }
    } else {
        if (b % MiB == 0) {
            std::snprintf(buf, sizeof(buf), "%lld MB",
                          static_cast<long long>(b / MiB));
        } else {
            std::snprintf(buf, sizeof(buf), "%.1f MB",
                          static_cast<double>(b) / MiB);
        }
    }
    return buf;
}

} // namespace ccsim
