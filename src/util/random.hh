/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The simulator must be bit-reproducible across platforms, so we use
 * our own splitmix64/xoshiro256** implementation rather than the
 * standard library distributions (whose algorithms are
 * implementation-defined).  Used for payload fill patterns, clock-skew
 * injection, and randomized property tests.
 */

#ifndef CCSIM_UTIL_RANDOM_HH
#define CCSIM_UTIL_RANDOM_HH

#include <cstdint>

namespace ccsim {

/** xoshiro256** PRNG seeded via splitmix64. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded with splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) via Lemire reduction; bound > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double nextDouble(double lo, double hi);

    /** Bernoulli draw with probability @p prob of true. */
    bool nextBool(double prob = 0.5);

  private:
    std::uint64_t s_[4];
};

} // namespace ccsim

#endif // CCSIM_UTIL_RANDOM_HH
