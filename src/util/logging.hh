/**
 * @file
 * Status and error reporting, following the gem5 convention:
 *
 *  - inform(): normal progress messages;
 *  - warn():   something is off but the run can continue;
 *  - fatal():  the *user* asked for something impossible (bad
 *              configuration, invalid arguments) — clean exit(1);
 *  - panic():  an internal invariant was violated (a ccsim bug) —
 *              abort() so a core dump / debugger is available.
 *
 * All functions take printf-style format strings.  fatal() and
 * panic() are [[noreturn]].  For testability, fatal/panic raise
 * typed exceptions when throwOnError(true) has been set; the gtest
 * suites use this to assert on error paths without dying.
 */

#ifndef CCSIM_UTIL_LOGGING_HH
#define CCSIM_UTIL_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/error.hh" // FatalError / PanicError live in the
                         // ccsim::Error hierarchy

namespace ccsim {

/**
 * Direct fatal()/panic() to throw FatalError/PanicError instead of
 * terminating the process.  Returns the previous setting.  Intended
 * for unit tests only.
 */
bool throwOnError(bool enable);

/** Silence inform()/warn() output (for quiet benchmark runs). */
bool quietLogging(bool enable);

/** Print an informational message to stdout. */
void inform(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr. */
void warn(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a user-caused error and exit (or throw FatalError). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal bug and abort (or throw PanicError). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** True while throwOnError(true) is in effect. */
bool throwingErrors();

/** printf-style formatting into a std::string (the primitive behind
 *  inform/warn/fatal/panic, exposed for typed-error throwers). */
std::string strFormat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** va_list variant of strFormat for wrapper functions. */
std::string vstrFormat(const char *fmt, std::va_list ap);

/**
 * Report a typed error: the analogue of fatal() for subsystems with
 * their own Error subclass (TraceError, ConfigError).  Throws @p err
 * when throwOnError(true) is active (CLI and tests); otherwise
 * prints "fatal: <what()>" and exits with err.exitCode().
 */
template <class E>
[[noreturn]] void
raiseError(const E &err)
{
    if (throwingErrors())
        throw err;
    std::fprintf(stderr, "fatal: %s\n", err.what());
    std::exit(err.exitCode());
}

} // namespace ccsim

#endif // CCSIM_UTIL_LOGGING_HH
