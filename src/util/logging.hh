/**
 * @file
 * Status and error reporting, following the gem5 convention:
 *
 *  - inform(): normal progress messages;
 *  - warn():   something is off but the run can continue;
 *  - fatal():  the *user* asked for something impossible (bad
 *              configuration, invalid arguments) — clean exit(1);
 *  - panic():  an internal invariant was violated (a ccsim bug) —
 *              abort() so a core dump / debugger is available.
 *
 * All functions take printf-style format strings.  fatal() and
 * panic() are [[noreturn]].  For testability, fatal/panic raise
 * typed exceptions when throwOnError(true) has been set; the gtest
 * suites use this to assert on error paths without dying.
 */

#ifndef CCSIM_UTIL_LOGGING_HH
#define CCSIM_UTIL_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace ccsim {

/** Raised by fatal() when throwOnError(true) is active. */
struct FatalError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/** Raised by panic() when throwOnError(true) is active. */
struct PanicError : std::logic_error
{
    using std::logic_error::logic_error;
};

/**
 * Direct fatal()/panic() to throw FatalError/PanicError instead of
 * terminating the process.  Returns the previous setting.  Intended
 * for unit tests only.
 */
bool throwOnError(bool enable);

/** Silence inform()/warn() output (for quiet benchmark runs). */
bool quietLogging(bool enable);

/** Print an informational message to stdout. */
void inform(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr. */
void warn(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a user-caused error and exit (or throw FatalError). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal bug and abort (or throw PanicError). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace ccsim

#endif // CCSIM_UTIL_LOGGING_HH
