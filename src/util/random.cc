#include "util/random.hh"

#include "util/logging.hh"

namespace ccsim {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

constexpr std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
    // Guard against the (astronomically unlikely) all-zero state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::nextBounded: zero bound");
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
        std::uint64_t t = -bound % bound;
        while (l < t) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        panic("Rng::nextRange: lo %lld > hi %lld",
              static_cast<long long>(lo), static_cast<long long>(hi));
    std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next());
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::nextDouble(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

bool
Rng::nextBool(double prob)
{
    return nextDouble() < prob;
}

} // namespace ccsim
