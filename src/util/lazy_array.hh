/**
 * @file
 * LazyArray: a fixed-size array of trivially-zeroable values whose
 * backing pages materialize on first write.
 *
 * The extreme-scale topologies give the Network millions of link
 * ids, but any one collective touches only the links on its
 * communication routes — a barrier at p = 65536 on a fat tree uses a
 * few percent of the fabric.  Dense per-link occupancy vectors made
 * Network construction and reset() O(total links); this page table
 * makes them O(touched links) while keeping reads of untouched slots
 * a branch and a zero.
 *
 * Reads (get) never allocate; writes (slot) materialize one 4096-
 * entry page.  clear() drops every page, returning the array to its
 * all-zero state in O(allocated pages).
 */

#ifndef CCSIM_UTIL_LAZY_ARRAY_HH
#define CCSIM_UTIL_LAZY_ARRAY_HH

#include <algorithm>
#include <array>
#include <cstddef>
#include <memory>
#include <vector>

namespace ccsim {

/** Sparse fixed-size array; unwritten slots read as T{}. */
template <typename T>
class LazyArray
{
  public:
    static constexpr std::size_t kPageShift = 12;
    static constexpr std::size_t kPageSize = std::size_t{1}
                                             << kPageShift;
    static constexpr std::size_t kPageMask = kPageSize - 1;

    LazyArray() = default;
    explicit LazyArray(std::size_t n) { reset(n); }

    /** Resize to @p n all-zero slots, dropping every page. */
    void
    reset(std::size_t n)
    {
        size_ = n;
        pages_.clear();
        pages_.resize((n + kPageSize - 1) / kPageSize);
    }

    /** Drop every page: all slots read as T{} again. */
    void
    clear()
    {
        for (auto &p : pages_)
            p.reset();
    }

    std::size_t size() const { return size_; }

    /** Read slot @p i; never allocates. */
    T
    get(std::size_t i) const
    {
        const auto &p = pages_[i >> kPageShift];
        return p ? (*p)[i & kPageMask] : T{};
    }

    /** Writable slot @p i; materializes its page if needed. */
    T &
    slot(std::size_t i)
    {
        auto &p = pages_[i >> kPageShift];
        if (!p)
            p = std::make_unique<Page>(); // value-initialized: zeros
        return (*p)[i & kPageMask];
    }

    /** Number of materialized pages (memory introspection). */
    std::size_t
    pagesAllocated() const
    {
        std::size_t n = 0;
        for (const auto &p : pages_)
            n += p != nullptr;
        return n;
    }

    /**
     * Visit fn(index, value) for every slot of every materialized
     * page, in ascending index order.  Untouched pages are skipped
     * wholesale; zero slots inside touched pages are visited (callers
     * filter).
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t pi = 0; pi < pages_.size(); ++pi) {
            const auto &p = pages_[pi];
            if (!p)
                continue;
            const std::size_t base = pi << kPageShift;
            const std::size_t n =
                std::min(kPageSize, size_ - base);
            for (std::size_t j = 0; j < n; ++j)
                fn(base + j, (*p)[j]);
        }
    }

  private:
    using Page = std::array<T, kPageSize>;

    std::size_t size_ = 0;
    std::vector<std::unique_ptr<Page>> pages_;
};

} // namespace ccsim

#endif // CCSIM_UTIL_LAZY_ARRAY_HH
