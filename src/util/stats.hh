/**
 * @file
 * Small streaming and sample-based statistics helpers used by the
 * measurement harness: min / max / mean / standard deviation and
 * percentiles over collected samples.
 */

#ifndef CCSIM_UTIL_STATS_HH
#define CCSIM_UTIL_STATS_HH

#include <cstddef>
#include <vector>

namespace ccsim {

/**
 * Welford-style streaming accumulator.  Numerically stable mean and
 * variance without storing samples.
 */
class RunningStats
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    /** Number of samples seen. */
    std::size_t count() const { return n_; }

    /** Smallest sample (0 if empty). */
    double min() const;

    /** Largest sample (0 if empty). */
    double max() const;

    /** Arithmetic mean (0 if empty). */
    double mean() const;

    /** Population variance (0 if fewer than 2 samples). */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Sum of all samples. */
    double sum() const { return mean() * static_cast<double>(n_); }

    /** Reset to the empty state. */
    void reset();

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Sample-retaining statistics: everything RunningStats offers plus
 * percentiles and the median.
 */
class SampleStats
{
  public:
    /** Record one sample. */
    void add(double x);

    /** Number of recorded samples. */
    std::size_t count() const { return samples_.size(); }

    double min() const { return running_.min(); }
    double max() const { return running_.max(); }
    double mean() const { return running_.mean(); }
    double stddev() const { return running_.stddev(); }

    /**
     * Linear-interpolated percentile.
     * @param q quantile in [0, 1]; 0.5 is the median.
     */
    double percentile(double q) const;

    /** Median (50th percentile). */
    double median() const { return percentile(0.5); }

    /** Read-only access to the raw samples (insertion order). */
    const std::vector<double> &samples() const { return samples_; }

    /** Reset to the empty state. */
    void reset();

  private:
    RunningStats running_;
    std::vector<double> samples_;
    mutable std::vector<double> sorted_;
    mutable bool sorted_valid_ = false;
};

} // namespace ccsim

#endif // CCSIM_UTIL_STATS_HH
