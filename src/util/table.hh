/**
 * @file
 * Monospace table rendering for benchmark reports.
 *
 * Every bench binary prints its figure/table in an aligned ASCII
 * layout mirroring the rows/series of the paper.  TableWriter collects
 * a header row plus data rows of strings and renders them with
 * per-column widths; numeric cells are right-aligned, text cells
 * left-aligned.
 */

#ifndef CCSIM_UTIL_TABLE_HH
#define CCSIM_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace ccsim {

/** Builds and renders an aligned text table. */
class TableWriter
{
  public:
    /** Set the column headers; defines the column count. */
    void header(std::vector<std::string> names);

    /** Append a data row; must match the header's column count. */
    void row(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void separator();

    /** Number of data rows added so far (separators excluded). */
    std::size_t rows() const;

    /** Render to a stream. */
    void print(std::ostream &os) const;

    /** Render to a string. */
    std::string str() const;

  private:
    std::vector<std::string> header_;
    // Separator rows are represented by empty vectors.
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p digits significant digits, trimmed. */
std::string formatG(double v, int digits = 4);

/** Format a double with fixed @p decimals. */
std::string formatF(double v, int decimals = 2);

} // namespace ccsim

#endif // CCSIM_UTIL_TABLE_HH
