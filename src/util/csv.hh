/**
 * @file
 * Minimal CSV emission for benchmark results.
 *
 * Bench binaries optionally dump their series as CSV (one file per
 * figure panel) so the plots can be regenerated with any external
 * tool.  Quoting follows RFC 4180: cells containing a comma, quote,
 * or newline are wrapped in double quotes with embedded quotes
 * doubled.
 */

#ifndef CCSIM_UTIL_CSV_HH
#define CCSIM_UTIL_CSV_HH

#include <ostream>
#include <string>
#include <vector>

namespace ccsim {

/** Streams rows of cells to an ostream in CSV format. */
class CsvWriter
{
  public:
    /** Bind to an output stream (not owned). */
    explicit CsvWriter(std::ostream &os) : os_(os) {}

    /** Write one row. */
    void row(const std::vector<std::string> &cells);

    /** Quote a single cell per RFC 4180 if needed. */
    static std::string escape(const std::string &cell);

  private:
    std::ostream &os_;
};

} // namespace ccsim

#endif // CCSIM_UTIL_CSV_HH
