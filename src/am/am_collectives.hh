/**
 * @file
 * Collective operations built directly on active messages — the
 * experiment the paper's conclusions propose.
 *
 * AmWorld holds the shared handler state of one machine's ranks
 * (legal because the simulator is single-threaded; physically this
 * is "handler state in each node's memory").  Supported: barrier
 * (counter at rank 0 + binomial-tree release), broadcast
 * (handler-forwarded binomial tree), and reduce (binomial fan-in
 * with handler-side folding).  Each operation matches the MPI
 * semantics of the corresponding Comm collective, so the test suite
 * can check them against each other — the timing difference is the
 * experiment.
 *
 * Calls are lockstep per rank (like MPI collectives); repeated calls
 * are kept apart by per-operation round numbers.
 */

#ifndef CCSIM_AM_AM_COLLECTIVES_HH
#define CCSIM_AM_AM_COLLECTIVES_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "am/am.hh"
#include "machine/machine.hh"
#include "mpi/reduce_op.hh"

namespace ccsim::am {

/** Era-plausible AM overheads for one of the paper's machines:
 *  roughly the cost left once MPI's matching/buffering layers are
 *  stripped (Culler et al.\ report a few microseconds). */
AmParams amParamsFor(const machine::MachineConfig &cfg);

/** AM endpoints + handler state for every rank of one machine. */
class AmWorld
{
  public:
    /**
     * Build over an existing machine (shares its simulator and
     * contention-modelled network).  @p combiner is used by reduce;
     * pass {} for size-only operation.
     */
    AmWorld(machine::Machine &mach, const AmParams &params,
            mpi::Combiner combiner = {});

    AmWorld(const AmWorld &) = delete;
    AmWorld &operator=(const AmWorld &) = delete;

    int size() const { return p_; }

    /** Counter barrier with tree release. */
    sim::Task<void> barrier(int rank);

    /** Binomial broadcast; returns the message at every rank. */
    sim::Task<msg::PayloadPtr> bcast(int rank, Bytes m, int root,
                                     msg::PayloadPtr data);

    /** Binomial fan-in reduce; root gets the fold, others null. */
    sim::Task<msg::PayloadPtr> reduce(int rank, Bytes m, int root,
                                      msg::PayloadPtr mine);

    /** Endpoint access (for tests and custom protocols). */
    AmEndpoint &endpoint(int rank) { return fabric_.node(rank); }

  private:
    struct BarrierRound
    {
        int arrived = 0;
        std::vector<std::unique_ptr<sim::Trigger>> release;
    };

    struct BcastRound
    {
        std::vector<msg::PayloadPtr> data;
        std::vector<std::unique_ptr<sim::Trigger>> delivered;
    };

    struct ReduceRound
    {
        int root = 0;
        Bytes m = 0;
        std::vector<int> received;            // per rank
        std::vector<bool> local_in;           // local contribution in
        std::vector<msg::PayloadPtr> partial; // per rank fold
        std::vector<bool> forwarded;          // sent to parent already
        std::unique_ptr<sim::Trigger> done;   // fires at root
    };

    BarrierRound &barrierRound(std::uint64_t round);
    BcastRound &bcastRound(std::uint64_t round);
    ReduceRound &reduceRound(std::uint64_t round);

    void releaseBarrier(std::uint64_t round, int rank, int mask);
    void forwardBcast(std::uint64_t round, int rank, int mask,
                      Bytes m, int root,
                      const msg::PayloadPtr &payload);
    void reduceArrive(std::uint64_t round, int rank,
                      msg::PayloadPtr payload);
    void maybeForwardReduce(std::uint64_t round, int rank);

    /** acc = acc (+) in, null-tolerant (size-only mode is a no-op). */
    void foldInto(msg::PayloadPtr &acc, const msg::PayloadPtr &in);

    static int relRank(int rank, int root, int p);
    static int absRank(int rel, int root, int p);
    static int childCount(int rel, int p);

    machine::Machine &mach_;
    sim::Simulator &sim_;
    int p_;
    AmFabric fabric_;
    mpi::Combiner combiner_;

    int h_barrier_arrive_ = -1;
    int h_barrier_release_ = -1;
    int h_bcast_ = -1;
    int h_reduce_ = -1;

    std::map<std::uint64_t, BarrierRound> barrier_rounds_;
    std::map<std::uint64_t, BcastRound> bcast_rounds_;
    std::map<std::uint64_t, ReduceRound> reduce_rounds_;

    std::vector<std::uint64_t> next_barrier_;
    std::vector<std::uint64_t> next_bcast_;
    std::vector<std::uint64_t> next_reduce_;
};

} // namespace ccsim::am

#endif // CCSIM_AM_AM_COLLECTIVES_HH
