/**
 * @file
 * Active messages: the lightweight messaging layer the paper's
 * conclusions call for evaluating ("We suggest extended research be
 * conducted in evaluating the use of active messages or fast
 * messages in MPI applications" — citing Culler et al. and MPI-FM).
 *
 * An active message names a HANDLER at the destination instead of
 * being matched against a posted receive: no envelope matching, no
 * unexpected-message buffering, no rendezvous — the handler runs as
 * soon as the message arrives and the node's processor is free.
 * That removes most of the per-message software overhead that
 * dominates every startup latency in the paper, at the cost of a
 * more restrictive programming model (handlers must not block).
 *
 * Model: each node has an AmEndpoint with its own CPU timeline.
 * send()/post() charge a (small) send overhead, the injection copy
 * runs at the node copy bandwidth, the network is the same
 * contention-modelled fabric MPI uses, and on arrival the handler
 * charges a (small) handler overhead before executing.  Handlers
 * may post() further messages (e.g.\ forwarding down a broadcast
 * tree) but must not suspend.
 */

#ifndef CCSIM_AM_AM_HH
#define CCSIM_AM_AM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "msg/message.hh"
#include "net/network.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"
#include "util/units.hh"

namespace ccsim::am {

/** Software costs of the active-message layer. */
struct AmParams
{
    /** CPU cost to issue one active message. */
    Time send_overhead = 0;

    /** CPU cost to dispatch a handler at arrival. */
    Time handler_overhead = 0;

    /** Injection/extraction copy bandwidth, MB/s. */
    double copy_bandwidth_mbs = 400.0;
};

/** What a handler receives. */
struct AmArrival
{
    int src = 0;
    int dst = 0;
    std::uint64_t arg = 0;     //!< small immediate argument
    Bytes bytes = 0;           //!< payload length
    msg::PayloadPtr payload;   //!< optional payload
};

/** Handler executed at the destination node. */
using Handler = std::function<void(const AmArrival &)>;

class AmFabric;

/** One node's active-message endpoint. */
class AmEndpoint
{
  public:
    AmEndpoint(sim::Simulator &sim, net::Network &net, AmFabric &fabric,
               int node, const AmParams &params);

    AmEndpoint(const AmEndpoint &) = delete;
    AmEndpoint &operator=(const AmEndpoint &) = delete;

    int node() const { return node_; }

    /**
     * Fire-and-forget issue (callable from handlers): charges the
     * send overhead on this node's CPU timeline without suspending
     * anyone and schedules the handler invocation at the
     * destination.  @p handler_id must be registered on the fabric.
     */
    void post(int dst, int handler_id, std::uint64_t arg = 0,
              Bytes bytes = 0, msg::PayloadPtr payload = nullptr);

    /**
     * Coroutine issue (for rank programs): like post() but completes
     * when this node's CPU has finished issuing.
     */
    sim::Task<void> send(int dst, int handler_id,
                         std::uint64_t arg = 0, Bytes bytes = 0,
                         msg::PayloadPtr payload = nullptr);

    /** Messages issued by this endpoint. */
    std::uint64_t sends() const { return sends_; }

    /** Handlers executed on this endpoint. */
    std::uint64_t handled() const { return handled_; }

  private:
    friend class AmFabric;

    /** Arrival processing: dispatch after the handler overhead. */
    void deliver(int handler_id, AmArrival arrival);

    /** Reserve this node's CPU from now; returns completion time. */
    Time occupyCpu(Time cost);

    sim::Simulator &sim_;
    net::Network &net_;
    AmFabric &fabric_;
    int node_;
    AmParams params_;
    Time cpu_free_ = 0;
    std::uint64_t sends_ = 0;
    std::uint64_t handled_ = 0;
};

/** All endpoints of a machine plus the shared handler table. */
class AmFabric
{
  public:
    AmFabric(sim::Simulator &sim, net::Network &net, int n,
             const AmParams &params);

    /** Register a handler; the returned id is valid on every node
     *  (SPMD-style registration). */
    int registerHandler(Handler h);

    AmEndpoint &node(int i);
    int size() const { return static_cast<int>(nodes_.size()); }

  private:
    friend class AmEndpoint;

    const Handler &handler(int id) const;

    std::vector<std::unique_ptr<AmEndpoint>> nodes_;
    std::vector<Handler> handlers_;
};

} // namespace ccsim::am

#endif // CCSIM_AM_AM_HH
