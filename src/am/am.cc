#include "am/am.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ccsim::am {

AmEndpoint::AmEndpoint(sim::Simulator &sim, net::Network &net,
                       AmFabric &fabric, int node,
                       const AmParams &params)
    : sim_(sim), net_(net), fabric_(fabric), node_(node),
      params_(params)
{
    if (params_.send_overhead < 0 || params_.handler_overhead < 0)
        fatal("AmEndpoint: negative overhead");
    if (params_.copy_bandwidth_mbs <= 0)
        fatal("AmEndpoint: copy bandwidth must be positive");
}

Time
AmEndpoint::occupyCpu(Time cost)
{
    Time start = std::max(sim_.now(), cpu_free_);
    cpu_free_ = start + cost;
    return cpu_free_;
}

void
AmEndpoint::post(int dst, int handler_id, std::uint64_t arg,
                 Bytes bytes, msg::PayloadPtr payload)
{
    if (dst < 0 || dst >= fabric_.size())
        panic("AmEndpoint::post: destination %d out of range", dst);
    if (bytes < 0)
        panic("AmEndpoint::post: negative size");
    (void)fabric_.handler(handler_id); // validates the id

    ++sends_;
    Time copy = transferTime(bytes, params_.copy_bandwidth_mbs);
    Time issue_done = occupyCpu(params_.send_overhead + copy);

    AmArrival arrival{node_, dst, arg, bytes, std::move(payload)};
    if (dst == node_) {
        // Local delivery: straight to the dispatcher.
        AmEndpoint *self = this;
        sim_.scheduleAt(issue_done,
                        [self, handler_id,
                         arrival = std::move(arrival)]() mutable {
                            self->deliver(handler_id,
                                          std::move(arrival));
                        });
        return;
    }

    Time wire_arrival = net_.transfer(node_, dst, bytes, issue_done);
    AmEndpoint *peer = &fabric_.node(dst);
    sim_.scheduleAt(wire_arrival,
                    [peer, handler_id,
                     arrival = std::move(arrival)]() mutable {
                        peer->deliver(handler_id, std::move(arrival));
                    });
}

sim::Task<void>
AmEndpoint::send(int dst, int handler_id, std::uint64_t arg,
                 Bytes bytes, msg::PayloadPtr payload)
{
    post(dst, handler_id, arg, bytes, std::move(payload));
    // Block the caller until this node's CPU has finished issuing.
    if (cpu_free_ > sim_.now())
        co_await sim_.delay(cpu_free_ - sim_.now());
}

void
AmEndpoint::deliver(int handler_id, AmArrival arrival)
{
    Time dispatched = occupyCpu(
        params_.handler_overhead +
        transferTime(arrival.bytes, params_.copy_bandwidth_mbs));
    AmEndpoint *self = this;
    sim_.scheduleAt(dispatched,
                    [self, handler_id,
                     arrival = std::move(arrival)]() mutable {
                        ++self->handled_;
                        self->fabric_.handler(handler_id)(arrival);
                    });
}

AmFabric::AmFabric(sim::Simulator &sim, net::Network &net, int n,
                   const AmParams &params)
{
    if (n < 1)
        fatal("AmFabric: need at least one node, got %d", n);
    if (n > net.topology().numNodes())
        fatal("AmFabric: %d nodes exceed the %d-node topology", n,
              net.topology().numNodes());
    nodes_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        nodes_.push_back(
            std::make_unique<AmEndpoint>(sim, net, *this, i, params));
}

int
AmFabric::registerHandler(Handler h)
{
    if (!h)
        fatal("AmFabric::registerHandler: empty handler");
    handlers_.push_back(std::move(h));
    return static_cast<int>(handlers_.size()) - 1;
}

const Handler &
AmFabric::handler(int id) const
{
    if (id < 0 || static_cast<size_t>(id) >= handlers_.size())
        panic("AmFabric: handler id %d out of range", id);
    return handlers_[static_cast<size_t>(id)];
}

AmEndpoint &
AmFabric::node(int i)
{
    if (i < 0 || i >= size())
        panic("AmFabric::node: %d out of range [0, %d)", i, size());
    return *nodes_[static_cast<size_t>(i)];
}

} // namespace ccsim::am
