#include "am/am_collectives.hh"

#include "mpi/coll_ctx.hh" // ceilLog2
#include "util/logging.hh"

namespace ccsim::am {

namespace {

/** arg encodings: small fields packed into the 64-bit immediate. */
constexpr std::uint64_t
packMask(std::uint64_t round, int mask)
{
    return (round << 9) | static_cast<std::uint64_t>(mask);
}

constexpr std::uint64_t
packMaskRoot(std::uint64_t round, int mask, int root)
{
    return (packMask(round, mask) << 8) |
           static_cast<std::uint64_t>(root);
}

constexpr std::uint64_t
packRoot(std::uint64_t round, int root)
{
    return (round << 8) | static_cast<std::uint64_t>(root);
}

} // namespace

AmParams
amParamsFor(const machine::MachineConfig &cfg)
{
    // Strip the matching/buffering layers: a third of the MPI
    // per-message software cost remains (handler dispatch, flow
    // control), with a floor of 1 us — in line with the few-
    // microsecond overheads reported for active messages.
    AmParams p;
    p.send_overhead =
        std::max<Time>(microseconds(1), cfg.transport.send_overhead / 3);
    p.handler_overhead =
        std::max<Time>(microseconds(1), cfg.transport.recv_overhead / 3);
    p.copy_bandwidth_mbs = cfg.transport.copy_bandwidth_mbs;
    return p;
}

AmWorld::AmWorld(machine::Machine &mach, const AmParams &params,
                 mpi::Combiner combiner)
    : mach_(mach), sim_(mach.sim()), p_(mach.size()),
      fabric_(mach.sim(), mach.network(), mach.size(), params),
      combiner_(std::move(combiner))
{
    next_barrier_.assign(static_cast<size_t>(p_), 0);
    next_bcast_.assign(static_cast<size_t>(p_), 0);
    next_reduce_.assign(static_cast<size_t>(p_), 0);

    h_barrier_arrive_ = fabric_.registerHandler(
        [this](const AmArrival &a) {
            BarrierRound &r = barrierRound(a.arg);
            if (++r.arrived == p_)
                releaseBarrier(a.arg, 0, 1 << mpi::ceilLog2(p_));
        });

    h_barrier_release_ = fabric_.registerHandler(
        [this](const AmArrival &a) {
            releaseBarrier(a.arg >> 9, a.dst,
                           static_cast<int>(a.arg & 0x1ff));
        });

    h_bcast_ = fabric_.registerHandler([this](const AmArrival &a) {
        std::uint64_t round = a.arg >> 17;
        int mask = static_cast<int>((a.arg >> 8) & 0x1ff);
        int root = static_cast<int>(a.arg & 0xff);
        BcastRound &r = bcastRound(round);
        r.data[static_cast<size_t>(a.dst)] = a.payload;
        r.delivered[static_cast<size_t>(a.dst)]->fire();
        forwardBcast(round, a.dst, mask, a.bytes, root, a.payload);
    });

    h_reduce_ = fabric_.registerHandler([this](const AmArrival &a) {
        std::uint64_t round = a.arg >> 8;
        int root = static_cast<int>(a.arg & 0xff);
        ReduceRound &r = reduceRound(round);
        r.root = root;
        r.m = a.bytes;
        ++r.received[static_cast<size_t>(a.dst)];
        foldInto(r.partial[static_cast<size_t>(a.dst)], a.payload);
        maybeForwardReduce(round, a.dst);
    });
}

void
AmWorld::foldInto(msg::PayloadPtr &acc, const msg::PayloadPtr &in)
{
    if (!combiner_)
        return; // size-only mode
    acc = acc ? combiner_(acc, in) : in;
}

int
AmWorld::relRank(int rank, int root, int p)
{
    return (rank - root % p + p) % p;
}

int
AmWorld::absRank(int rel, int root, int p)
{
    return (rel + root) % p;
}

int
AmWorld::childCount(int rel, int p)
{
    int n = 0;
    for (int mask = 1; (rel & mask) == 0 && rel + mask < p; mask <<= 1)
        ++n;
    return n;
}

AmWorld::BarrierRound &
AmWorld::barrierRound(std::uint64_t round)
{
    BarrierRound &r = barrier_rounds_[round];
    if (r.release.empty()) {
        r.release.reserve(static_cast<size_t>(p_));
        for (int i = 0; i < p_; ++i)
            r.release.push_back(std::make_unique<sim::Trigger>(sim_));
    }
    return r;
}

AmWorld::BcastRound &
AmWorld::bcastRound(std::uint64_t round)
{
    BcastRound &r = bcast_rounds_[round];
    if (r.delivered.empty()) {
        r.data.resize(static_cast<size_t>(p_));
        r.delivered.reserve(static_cast<size_t>(p_));
        for (int i = 0; i < p_; ++i)
            r.delivered.push_back(
                std::make_unique<sim::Trigger>(sim_));
    }
    return r;
}

AmWorld::ReduceRound &
AmWorld::reduceRound(std::uint64_t round)
{
    ReduceRound &r = reduce_rounds_[round];
    if (r.received.empty()) {
        r.received.assign(static_cast<size_t>(p_), 0);
        r.local_in.assign(static_cast<size_t>(p_), false);
        r.partial.resize(static_cast<size_t>(p_));
        r.forwarded.assign(static_cast<size_t>(p_), false);
        r.done = std::make_unique<sim::Trigger>(sim_);
    }
    return r;
}

void
AmWorld::releaseBarrier(std::uint64_t round, int rank, int mask)
{
    BarrierRound &r = barrierRound(round);
    r.release[static_cast<size_t>(rank)]->fire();
    for (int m = mask >> 1; m > 0; m >>= 1) {
        if (rank + m < p_)
            fabric_.node(rank).post(rank + m, h_barrier_release_,
                                    packMask(round, m));
    }
}

sim::Task<void>
AmWorld::barrier(int rank)
{
    std::uint64_t round = next_barrier_[static_cast<size_t>(rank)]++;
    BarrierRound &r = barrierRound(round);
    co_await fabric_.node(rank).send(0, h_barrier_arrive_, round);
    co_await r.release[static_cast<size_t>(rank)]->wait();
}

void
AmWorld::forwardBcast(std::uint64_t round, int rank, int mask, Bytes m,
                      int root, const msg::PayloadPtr &payload)
{
    int rel = relRank(rank, root, p_);
    for (int child_mask = mask >> 1; child_mask > 0; child_mask >>= 1) {
        int child_rel = rel + child_mask;
        if (child_rel < p_)
            fabric_.node(rank).post(
                absRank(child_rel, root, p_), h_bcast_,
                packMaskRoot(round, child_mask, root), m, payload);
    }
}

sim::Task<msg::PayloadPtr>
AmWorld::bcast(int rank, Bytes m, int root, msg::PayloadPtr data)
{
    if (root < 0 || root >= p_)
        fatal("AmWorld::bcast: root %d outside world of %d", root, p_);
    std::uint64_t round = next_bcast_[static_cast<size_t>(rank)]++;
    BcastRound &r = bcastRound(round);
    if (rank == root) {
        r.data[static_cast<size_t>(rank)] = std::move(data);
        r.delivered[static_cast<size_t>(rank)]->fire();
        forwardBcast(round, rank, 1 << mpi::ceilLog2(p_), m, root,
                     r.data[static_cast<size_t>(rank)]);
    }
    co_await r.delivered[static_cast<size_t>(rank)]->wait();
    co_return r.data[static_cast<size_t>(rank)];
}

void
AmWorld::maybeForwardReduce(std::uint64_t round, int rank)
{
    ReduceRound &r = reduceRound(round);
    std::size_t i = static_cast<size_t>(rank);
    int rel = relRank(rank, r.root, p_);
    if (!r.local_in[i] || r.forwarded[i] ||
        r.received[i] < childCount(rel, p_))
        return;
    r.forwarded[i] = true;
    if (rel == 0) {
        r.done->fire();
        return;
    }
    int parent_rel = rel & (rel - 1);
    fabric_.node(rank).post(absRank(parent_rel, r.root, p_), h_reduce_,
                            packRoot(round, r.root), r.m, r.partial[i]);
}

sim::Task<msg::PayloadPtr>
AmWorld::reduce(int rank, Bytes m, int root, msg::PayloadPtr mine)
{
    if (root < 0 || root >= p_)
        fatal("AmWorld::reduce: root %d outside world of %d", root,
              p_);
    std::uint64_t round = next_reduce_[static_cast<size_t>(rank)]++;
    ReduceRound &r = reduceRound(round);
    r.root = root;
    r.m = m;

    std::size_t i = static_cast<size_t>(rank);
    r.local_in[i] = true;
    foldInto(r.partial[i], mine);
    maybeForwardReduce(round, rank);

    if (relRank(rank, root, p_) == 0) {
        co_await r.done->wait();
        co_return r.partial[i];
    }
    co_return nullptr;
}

} // namespace ccsim::am
