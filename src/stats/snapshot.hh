/**
 * @file
 * MetricsSnapshot: the frozen, order-stable view of a Machine's
 * metrics that crosses API boundaries.
 *
 * Live metric groups (stats/metrics.hh) are internal mutable state;
 * everything user-facing — Machine::metricsSnapshot(), Measurement /
 * ReplayResult fields, SweepSession rows, the `ccsim stats`
 * subcommand — trades in snapshots.  A snapshot is a value: plain
 * name-sorted tables that merge deterministically (counters add,
 * high-water gauges max, histograms merge exactly, link rows add)
 * and serialize to CSV / JSON with fixed formatting, so two
 * byte-identical simulations produce byte-identical serializations
 * at any --jobs level.
 */

#ifndef CCSIM_STATS_SNAPSHOT_HH
#define CCSIM_STATS_SNAPSHOT_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "stats/metrics.hh"

namespace ccsim::stats {

/** Frozen histogram: moments plus the non-empty buckets. */
struct HistogramSnapshot
{
    std::uint64_t count = 0;
    double total_weight = 0.0;
    double weighted_sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    /** (bucket index, weight) for buckets with weight != 0,
     *  ascending; bucket i spans (2^(i-1), 2^i], bucket 0 <= 1. */
    std::vector<std::pair<int, double>> buckets;

    static HistogramSnapshot of(const Histogram &h);

    double mean() const;

    /** Exact fold, mirroring Histogram::merge. */
    void merge(const HistogramSnapshot &other);
};

/** One network link's traffic and contention totals. */
struct LinkRow
{
    std::string link;        //!< stable label, e.g. "3->7"
    std::uint64_t bytes = 0; //!< payload bytes carried
    double busy_us = 0.0;    //!< time the link was transmitting
    double stall_us = 0.0;   //!< arrival-to-grant wait charged to it
    double util = 0.0;       //!< busy_us / horizon_us
};

/** Value-semantic metrics view; see file comment. */
struct MetricsSnapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    /** Per-link table, sorted by link label. */
    std::vector<LinkRow> links;

    /** Simulated horizon the link utilizations are relative to. */
    double horizon_us = 0.0;

    bool empty() const;

    /** Largest per-link utilization (0 when no link carried data). */
    double maxLinkUtil() const;

    /** Sum of per-link stall time. */
    double totalStallUs() const;

    /** Sum of per-link busy time. */
    double totalLinkBusyUs() const;

    /**
     * Fold @p other in: counters and link rows add, gauges take the
     * max, histograms merge exactly, horizon takes the max.  Used by
     * the sweep layer to combine per-point snapshots; commutative up
     * to the stated semantics and independent of worker scheduling.
     */
    void merge(const MetricsSnapshot &other);

    /**
     * name,kind,field,value rows (kind in counter / gauge /
     * histogram / link / meta); fixed "%.9g" number formatting so
     * equal snapshots serialize byte-identically.
     */
    void writeCsv(std::ostream &os) const;

    /** One JSON object, same content and formatting rules as CSV. */
    void writeJson(std::ostream &os) const;

    std::string toCsv() const;
    std::string toJson() const;
};

} // namespace ccsim::stats

#endif // CCSIM_STATS_SNAPSHOT_HH
