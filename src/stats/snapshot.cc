#include "stats/snapshot.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace ccsim::stats {

namespace {

/** Fixed-format double: snapshots of equal state must serialize
 *  byte-identically regardless of stream locale or precision. */
std::string
fmt(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

HistogramSnapshot
HistogramSnapshot::of(const Histogram &h)
{
    HistogramSnapshot s;
    s.count = h.count();
    s.total_weight = h.totalWeight();
    s.weighted_sum = h.weightedSum();
    s.min = h.min();
    s.max = h.max();
    for (int i = 0; i < Histogram::kBuckets; ++i)
        if (h.bucketWeight(i) != 0.0)
            s.buckets.emplace_back(i, h.bucketWeight(i));
    return s;
}

double
HistogramSnapshot::mean() const
{
    return total_weight > 0.0 ? weighted_sum / total_weight : 0.0;
}

void
HistogramSnapshot::merge(const HistogramSnapshot &other)
{
    if (other.count == 0)
        return;
    if (count == 0) {
        min = other.min;
        max = other.max;
    } else {
        min = std::min(min, other.min);
        max = std::max(max, other.max);
    }
    count += other.count;
    total_weight += other.total_weight;
    weighted_sum += other.weighted_sum;

    std::vector<std::pair<int, double>> merged;
    merged.reserve(buckets.size() + other.buckets.size());
    auto a = buckets.begin();
    auto b = other.buckets.begin();
    while (a != buckets.end() || b != other.buckets.end()) {
        if (b == other.buckets.end() ||
            (a != buckets.end() && a->first < b->first)) {
            merged.push_back(*a++);
        } else if (a == buckets.end() || b->first < a->first) {
            merged.push_back(*b++);
        } else {
            merged.emplace_back(a->first, a->second + b->second);
            ++a;
            ++b;
        }
    }
    buckets = std::move(merged);
}

bool
MetricsSnapshot::empty() const
{
    return counters.empty() && gauges.empty() && histograms.empty() &&
           links.empty();
}

double
MetricsSnapshot::maxLinkUtil() const
{
    double m = 0.0;
    for (const auto &l : links)
        m = std::max(m, l.util);
    return m;
}

double
MetricsSnapshot::totalStallUs() const
{
    double s = 0.0;
    for (const auto &l : links)
        s += l.stall_us;
    return s;
}

double
MetricsSnapshot::totalLinkBusyUs() const
{
    double s = 0.0;
    for (const auto &l : links)
        s += l.busy_us;
    return s;
}

void
MetricsSnapshot::merge(const MetricsSnapshot &other)
{
    for (const auto &[name, v] : other.counters)
        counters[name] += v;
    for (const auto &[name, v] : other.gauges) {
        auto [it, inserted] = gauges.emplace(name, v);
        if (!inserted)
            it->second = std::max(it->second, v);
    }
    for (const auto &[name, h] : other.histograms)
        histograms[name].merge(h);

    horizon_us = std::max(horizon_us, other.horizon_us);

    std::map<std::string, LinkRow> by_name;
    for (auto &l : links)
        by_name[l.link] = std::move(l);
    for (const auto &l : other.links) {
        LinkRow &row = by_name[l.link];
        row.link = l.link;
        row.bytes += l.bytes;
        row.busy_us += l.busy_us;
        row.stall_us += l.stall_us;
    }
    links.clear();
    for (auto &[name, row] : by_name) {
        row.util = horizon_us > 0.0 ? row.busy_us / horizon_us : 0.0;
        links.push_back(std::move(row));
    }
}

void
MetricsSnapshot::writeCsv(std::ostream &os) const
{
    os << "name,kind,field,value\n";
    os << "horizon_us,meta,value," << fmt(horizon_us) << "\n";
    for (const auto &[name, v] : counters)
        os << name << ",counter,value," << v << "\n";
    for (const auto &[name, v] : gauges)
        os << name << ",gauge,max," << fmt(v) << "\n";
    for (const auto &[name, h] : histograms) {
        os << name << ",histogram,count," << h.count << "\n";
        os << name << ",histogram,mean," << fmt(h.mean()) << "\n";
        os << name << ",histogram,min," << fmt(h.min) << "\n";
        os << name << ",histogram,max," << fmt(h.max) << "\n";
        for (const auto &[bucket, weight] : h.buckets)
            os << name << ",histogram,bucket_le_"
               << fmt(Histogram::bucketUpperBound(bucket)) << ","
               << fmt(weight) << "\n";
    }
    for (const auto &l : links) {
        os << l.link << ",link,bytes," << l.bytes << "\n";
        os << l.link << ",link,busy_us," << fmt(l.busy_us) << "\n";
        os << l.link << ",link,stall_us," << fmt(l.stall_us) << "\n";
        os << l.link << ",link,util," << fmt(l.util) << "\n";
    }
}

void
MetricsSnapshot::writeJson(std::ostream &os) const
{
    os << "{\n  \"horizon_us\": " << fmt(horizon_us) << ",\n";

    os << "  \"counters\": {";
    bool first = true;
    for (const auto &[name, v] : counters) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": " << v;
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n";

    os << "  \"gauges\": {";
    first = true;
    for (const auto &[name, v] : gauges) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": " << fmt(v);
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n";

    os << "  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : histograms) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": {\"count\": " << h.count << ", \"mean\": "
           << fmt(h.mean()) << ", \"min\": " << fmt(h.min)
           << ", \"max\": " << fmt(h.max) << ", \"buckets\": [";
        bool bfirst = true;
        for (const auto &[bucket, weight] : h.buckets) {
            os << (bfirst ? "" : ", ") << "["
               << fmt(Histogram::bucketUpperBound(bucket)) << ", "
               << fmt(weight) << "]";
            bfirst = false;
        }
        os << "]}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n";

    os << "  \"links\": [";
    first = true;
    for (const auto &l : links) {
        os << (first ? "\n" : ",\n") << "    {\"link\": \""
           << jsonEscape(l.link) << "\", \"bytes\": " << l.bytes
           << ", \"busy_us\": " << fmt(l.busy_us) << ", \"stall_us\": "
           << fmt(l.stall_us) << ", \"util\": " << fmt(l.util) << "}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "]\n}\n";
}

std::string
MetricsSnapshot::toCsv() const
{
    std::ostringstream oss;
    writeCsv(oss);
    return oss.str();
}

std::string
MetricsSnapshot::toJson() const
{
    std::ostringstream oss;
    writeJson(oss);
    return oss.str();
}

} // namespace ccsim::stats
