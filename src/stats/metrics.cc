#include "stats/metrics.hh"

#include <cmath>

namespace ccsim::stats {

namespace {

/** Bucket for @p v: 0 for v <= 1, else 1 + floor(log2(v)), clamped. */
int
bucketFor(double v)
{
    if (!(v > 1.0))
        return 0;
    int exp = 0;
    double frac = std::frexp(v, &exp); // v = frac * 2^exp, frac in [0.5, 1)
    // frexp puts an exact power of two at frac == 0.5; 2^k belongs in
    // bucket k (upper bounds are inclusive), every other value in the
    // same octave in bucket k + 1.
    int b = (frac == 0.5) ? exp - 1 : exp;
    if (b >= Histogram::kBuckets)
        b = Histogram::kBuckets - 1;
    return b;
}

} // namespace

void
Histogram::add(double value, double weight)
{
    buckets_[bucketFor(value)] += weight;
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        if (value < min_)
            min_ = value;
        if (value > max_)
            max_ = value;
    }
    ++count_;
    total_weight_ += weight;
    weighted_sum_ += value * weight;
}

double
Histogram::mean() const
{
    return total_weight_ > 0.0 ? weighted_sum_ / total_weight_ : 0.0;
}

double
Histogram::bucketWeight(int i) const
{
    return (i >= 0 && i < kBuckets) ? buckets_[i] : 0.0;
}

double
Histogram::bucketUpperBound(int i)
{
    return std::ldexp(1.0, i < 0 ? 0 : i);
}

void
Histogram::merge(const Histogram &other)
{
    if (other.count_ == 0)
        return;
    for (int i = 0; i < kBuckets; ++i)
        buckets_[i] += other.buckets_[i];
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        if (other.min_ < min_)
            min_ = other.min_;
        if (other.max_ > max_)
            max_ = other.max_;
    }
    count_ += other.count_;
    total_weight_ += other.total_weight_;
    weighted_sum_ += other.weighted_sum_;
}

void
Histogram::reset()
{
    *this = Histogram();
}

Counter &
Registry::counter(const std::string &name)
{
    return counters_[name];
}

Gauge &
Registry::gauge(const std::string &name)
{
    return gauges_[name];
}

Histogram &
Registry::histogram(const std::string &name)
{
    return histograms_[name];
}

void
Registry::reset()
{
    for (auto &[name, c] : counters_)
        c.reset();
    for (auto &[name, g] : gauges_)
        g.reset();
    for (auto &[name, h] : histograms_)
        h.reset();
}

void
TransportMetrics::reset()
{
    eager_sends.reset();
    rdv_sends.reset();
    self_sends.reset();
    recvs.reset();
    blt_sends.reset();
    unexpected_hw.reset();
    pending_rts_hw.reset();
    pending_recv_hw.reset();
    inject_backlog_us.reset();
    msg_bytes.reset();
}

void
CollOpMetrics::reset()
{
    calls.reset();
    stages.reset();
    msgs.reset();
    time_us.reset();
}

void
MachineMetrics::reset()
{
    registry.reset();
    transport.reset();
    for (auto &c : coll)
        c.reset();
}

} // namespace ccsim::stats
