/**
 * @file
 * CacheStats: the common counter triple every caching layer in the
 * simulator reports — hits (served from the cache), misses (computed
 * and stored), and bypassed (not eligible for caching at all).  Used
 * by the harness's collective-measurement memo cache; the network's
 * route cache and the transport's slot pools expose the same idea
 * through their own counters and fold into MetricsSnapshot keys.
 */

#ifndef CCSIM_STATS_CACHE_STATS_HH
#define CCSIM_STATS_CACHE_STATS_HH

#include <cstdint>

namespace ccsim::stats {

/** Monotonic hit/miss/bypass counters of one cache. */
struct CacheStats
{
    std::uint64_t hits = 0;     //!< lookups served from the cache
    std::uint64_t misses = 0;   //!< lookups computed and stored
    std::uint64_t bypassed = 0; //!< requests not eligible for caching
    std::uint64_t evictions = 0; //!< entries dropped by a bound (only
                                 //!< bounded caches ever set this)

    /** Fraction of eligible lookups served from the cache. */
    double
    hitRate() const
    {
        std::uint64_t total = hits + misses;
        return total > 0
                   ? static_cast<double>(hits) /
                         static_cast<double>(total)
                   : 0.0;
    }
};

} // namespace ccsim::stats

#endif // CCSIM_STATS_CACHE_STATS_HH
