/**
 * @file
 * The metrics layer: counters, high-water gauges, and weighted
 * log2-bucketed histograms, plus the named Registry and the
 * per-subsystem metric groups the simulation hot paths write into.
 *
 * Design rules (docs/METRICS.md states the guarantees):
 *
 *  - ZERO COST WHEN DISABLED: subsystems hold a pointer to their
 *    metric group that is null unless the owning Machine was built
 *    with MachineConfig::collect_metrics; every hot-path update is
 *    behind one `if (metrics_)` test of that pointer.
 *  - OBSERVATION ONLY: no metric update ever charges simulated time
 *    or perturbs event order, so simulated results are byte-identical
 *    with metrics on or off.
 *  - DETERMINISTIC: all metrics live inside one Machine and are
 *    consumed by the single-threaded simulator in event order, so a
 *    snapshot is identical at any sweep --jobs level.
 *
 * The primitives are deliberately plain structs updated by direct
 * field access (no name lookup on the hot path); the string-keyed
 * Registry exists for extensions and for assembling the final
 * MetricsSnapshot (see stats/snapshot.hh).
 */

#ifndef CCSIM_STATS_METRICS_HH
#define CCSIM_STATS_METRICS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ccsim::stats {

/** Monotonic event count. */
class Counter
{
  public:
    void add(std::uint64_t n = 1) { v_ += n; }
    std::uint64_t value() const { return v_; }
    void reset() { v_ = 0; }

  private:
    std::uint64_t v_ = 0;
};

/** High-water-mark gauge: remembers the largest observed value. */
class Gauge
{
  public:
    void
    observe(double x)
    {
        if (!seen_ || x > v_) {
            v_ = x;
            seen_ = true;
        }
    }

    double value() const { return seen_ ? v_ : 0.0; }
    bool seen() const { return seen_; }

    void
    reset()
    {
        v_ = 0.0;
        seen_ = false;
    }

  private:
    double v_ = 0.0;
    bool seen_ = false;
};

/**
 * Weighted histogram over power-of-two buckets.
 *
 * Bucket 0 holds values <= 1 (including zero and negatives); bucket
 * i >= 1 holds values in (2^(i-1), 2^i].  Each observation carries a
 * weight, which makes the histogram time-weighted when callers pass
 * a dwell or busy time as the weight (e.g.\ "link utilization
 * weighted by busy time").  An unweighted distribution is the
 * weight = 1 special case.
 *
 * merge() is exact: merging two histograms equals adding all their
 * observations to one (the property the sweep layer's deterministic
 * cross-worker merge relies on; test_metrics asserts it).
 */
class Histogram
{
  public:
    static constexpr int kBuckets = 64;

    void add(double value, double weight = 1.0);

    std::uint64_t count() const { return count_; }
    double totalWeight() const { return total_weight_; }
    double weightedSum() const { return weighted_sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Weighted mean of observed values (0 when empty). */
    double mean() const;

    /** Weight in bucket @p i (see class comment for the ranges). */
    double bucketWeight(int i) const;

    /** Inclusive upper bound of bucket @p i (2^i; bucket 0 -> 1). */
    static double bucketUpperBound(int i);

    /** Fold @p other in; exact (see class comment). */
    void merge(const Histogram &other);

    void reset();

  private:
    double buckets_[kBuckets] = {};
    std::uint64_t count_ = 0;
    double total_weight_ = 0.0;
    double weighted_sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Name-keyed metric registry.  Lookup is amortized by caching the
 * returned reference (references stay valid for the registry's
 * lifetime; std::map nodes never move).  Iteration order is the name
 * order, so snapshots built from a registry are deterministic.
 */
class Registry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Gauge> &gauges() const { return gauges_; }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }

    /** Zero every registered metric (registrations are kept). */
    void reset();

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> histograms_;
};

/**
 * What the messaging layer records: protocol mix, wire payload
 * distribution, and the queue depths the paper's NIC/software story
 * turns on (a gather root's unexpected-message queue, the RTS queue
 * under rendezvous, the injection DMA backlog).  One instance is
 * shared by every Transport of a machine; the simulator is
 * single-threaded, so high-water marks are true machine-wide maxima.
 */
struct TransportMetrics
{
    Counter eager_sends;  //!< payloads that went eager
    Counter rdv_sends;    //!< payloads that went rendezvous
    Counter self_sends;   //!< local (same-node) deliveries
    Counter recvs;        //!< receives completed
    Counter blt_sends;    //!< rendezvous payloads moved by the BLT

    Gauge unexpected_hw;   //!< unexpected-message queue high water
    Gauge pending_rts_hw;  //!< parked-RTS queue high water
    Gauge pending_recv_hw; //!< parked-receive queue high water
    Gauge inject_backlog_us; //!< injection (DMA/coprocessor) backlog

    Histogram msg_bytes; //!< wire payload sizes, weight 1 per message

    void reset();
};

/**
 * Per-collective-operation activity recorded by the mpi layer: call
 * and algorithm-stage counts, messages issued from inside the
 * operation, and the distribution of per-call completion times.
 * Indexed by machine::Coll (the machine layer owns the naming).
 */
struct CollOpMetrics
{
    Counter calls;  //!< completed invocations (any rank)
    Counter stages; //!< algorithm stages entered (CollCtx::stage)
    Counter msgs;   //!< sends/sendrecvs issued inside the op
    Histogram time_us; //!< per-rank call duration, microseconds

    void reset();
};

/** Everything one Machine collects; null when metrics are off. */
struct MachineMetrics
{
    /** @p num_ops sizes the per-collective table (machine::kNumColl). */
    explicit MachineMetrics(int num_ops) : coll(num_ops ? num_ops : 1) {}

    Registry registry; //!< extension point for ad-hoc metrics
    TransportMetrics transport;
    std::vector<CollOpMetrics> coll; //!< indexed by machine::Coll

    void reset();
};

} // namespace ccsim::stats

#endif // CCSIM_STATS_METRICS_HH
