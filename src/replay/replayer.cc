#include "replay/replayer.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>

#include "machine/machine.hh"
#include "mpi/comm.hh"
#include "replay/trace_parser.hh"
#include "util/logging.hh"

namespace ccsim::replay {

namespace {

using machine::Coll;

/** Scale a byte count; 1.0 is the exact identity (no FP at all). */
Bytes
scaleBytes(Bytes b, double scale)
{
    if (scale == 1.0)
        return b;
    return static_cast<Bytes>(
        std::llround(static_cast<double>(b) * scale));
}

/** Issue one collective action on @p comm. */
sim::Task<void>
runCollective(mpi::Comm &comm, const Action &a, double scale)
{
    if (a.vector_variant) {
        std::vector<Bytes> counts = a.counts;
        for (Bytes &c : counts)
            c = scaleBytes(c, scale);
        if (a.op == Coll::Gather)
            co_await comm.gatherv(counts, a.root, a.algo);
        else
            co_await comm.scatterv(counts, a.root, a.algo);
        co_return;
    }

    Bytes m = scaleBytes(a.bytes, scale);
    switch (a.op) {
      case Coll::Barrier:
        co_await comm.barrier(a.algo);
        break;
      case Coll::Bcast:
        co_await comm.bcast(m, a.root, a.algo);
        break;
      case Coll::Gather:
        co_await comm.gather(m, a.root, a.algo);
        break;
      case Coll::Scatter:
        co_await comm.scatter(m, a.root, a.algo);
        break;
      case Coll::Allgather:
        co_await comm.allgather(m, a.algo);
        break;
      case Coll::Alltoall:
        co_await comm.alltoall(m, a.algo);
        break;
      case Coll::Reduce:
        co_await comm.reduce(m, a.root, a.algo);
        break;
      case Coll::Allreduce:
        co_await comm.allreduce(m, a.algo);
        break;
      case Coll::ReduceScatter:
        co_await comm.reduceScatter(m, a.algo);
        break;
      case Coll::Scan:
        co_await comm.scan(m, a.algo);
        break;
      default:
        panic("replay: bad collective %d", static_cast<int>(a.op));
    }
}

/**
 * One rank's replay coroutine.  Sub-communicators are created
 * lazily and cached per member list, so repeated collectives on the
 * same group reuse one Comm (and hence the same tag sequence the
 * recorded run produced).  Outstanding isend/irecv requests form a
 * FIFO queue that `wait` drains oldest-first — the standard
 * time-independent-trace convention (see docs/REPLAY.md).
 */
sim::Task<void>
runRank(machine::Machine &mach, const Program &prog, int rank,
        double scale, std::vector<Time> &completion)
{
    mpi::Comm world(mach, rank);
    std::map<std::vector<int>, mpi::Comm> subgroups;
    std::deque<msg::Request> pending;
    sim::Trace &trace = mach.trace();

    for (const Action &a : prog.ranks[static_cast<std::size_t>(rank)]) {
        trace.setPhase(rank, actionKeyword(a.kind, a.op,
                                           a.vector_variant));
        switch (a.kind) {
          case ActionKind::Compute:
            co_await world.compute(a.duration);
            break;
          case ActionKind::Send:
            co_await world.send(a.peer, a.tag,
                                scaleBytes(a.bytes, scale));
            break;
          case ActionKind::Isend:
            pending.push_back(world.isend(
                a.peer, a.tag, scaleBytes(a.bytes, scale)));
            break;
          case ActionKind::Recv:
            co_await world.recv(a.peer, a.tag);
            break;
          case ActionKind::Irecv:
            pending.push_back(world.irecv(a.peer, a.tag));
            break;
          case ActionKind::Wait: {
            if (pending.empty())
                fatal("%s: rank %d: wait with no outstanding request "
                      "(line %d)", prog.source.c_str(), rank, a.line);
            msg::Request req = pending.front();
            pending.pop_front();
            co_await world.wait(req);
            break;
          }
          case ActionKind::Sendrecv:
            co_await world.sendrecv(a.peer, a.tag,
                                    scaleBytes(a.bytes, scale),
                                    a.peer2, a.tag2);
            break;
          case ActionKind::Coll: {
            mpi::Comm *comm = &world;
            if (!a.group.empty()) {
                auto it = subgroups.find(a.group);
                if (it == subgroups.end())
                    it = subgroups
                             .emplace(a.group,
                                      world.subgroup(a.group))
                             .first;
                comm = &it->second;
            }
            co_await runCollective(*comm, a, scale);
            break;
          }
        }
    }
    trace.setPhase(rank, "");
    completion[static_cast<std::size_t>(rank)] = mach.sim().now();
}

} // namespace

Time
ReplayResult::makespan() const
{
    Time t = 0;
    for (Time c : completion)
        t = std::max(t, c);
    return t;
}

ReplayResult
Replayer::run(const machine::MachineConfig &cfg, const Program &prog,
              const ReplayOptions &opt)
{
    if (prog.np < 1)
        fatal("replay: program '%s' has no ranks",
              prog.source.c_str());
    if (opt.scale <= 0.0)
        fatal("replay: scale %g must be positive", opt.scale);

    machine::MachineConfig run_cfg = cfg;
    run_cfg.collect_metrics = cfg.collect_metrics || opt.metrics;
    machine::Machine mach(run_cfg, prog.np);
    if (opt.hook)
        mach.setCommHook(opt.hook);
    if (opt.collect_trace)
        mach.trace().enable(true);

    // Point boundary: zero any metric state and tell the CommHook to
    // drop per-point accumulation.  A hook reused across sweep points
    // (e.g.\ a Recorder) would otherwise carry the previous point's
    // state into this one, so repeated points would not be
    // byte-identical.
    mach.resetMetrics();

    ReplayResult res;
    res.machine = cfg.name;
    res.np = prog.np;
    res.scale = opt.scale;
    res.completion.assign(static_cast<std::size_t>(prog.np), 0);

    for (int r = 0; r < prog.np; ++r)
        mach.sim().spawn(
            runRank(mach, prog, r, opt.scale, res.completion));
    mach.run();

    res.trace = mach.trace();
    res.faults = mach.faultReport();
    res.metrics = mach.metricsSnapshot();
    return res;
}

std::vector<ReplayResult>
replaySweep(const Program &prog, const std::vector<ReplayPoint> &points,
            harness::SweepRunner &runner)
{
    std::vector<ReplayResult> results(points.size());
    runner.runTasks(points.size(), [&](std::size_t i) {
        results[i] =
            Replayer::run(points[i].cfg, prog, points[i].options);
    });
    return results;
}

} // namespace ccsim::replay
