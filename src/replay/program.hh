/**
 * @file
 * The in-memory form of a time-independent MPI action trace.
 *
 * A Program is what the TraceParser produces and the Replayer
 * executes: one validated action list per rank, independent of
 * simulated time (compute is stored as a duration, communication as
 * its arguments) so the same trace replays on any machine model —
 * the property SimGrid's SMPI established for application-skeleton
 * simulation, applied here to the paper's three multicomputers.
 */

#ifndef CCSIM_REPLAY_PROGRAM_HH
#define CCSIM_REPLAY_PROGRAM_HH

#include <string>
#include <vector>

#include "machine/collective_types.hh"
#include "util/units.hh"

namespace ccsim::replay {

/** What one trace line asks a rank to do. */
enum class ActionKind
{
    Compute,  //!< occupy the CPU for a duration
    Send,     //!< blocking send
    Isend,    //!< nonblocking send (FIFO wait queue)
    Recv,     //!< blocking receive
    Irecv,    //!< nonblocking receive (FIFO wait queue)
    Wait,     //!< wait for the oldest outstanding request
    Sendrecv, //!< combined exchange
    Coll,     //!< any collective (op says which)
};

/** Printable action keyword ("compute", "isend", or the collective
 *  key for ActionKind::Coll). */
std::string actionKeyword(ActionKind k, machine::Coll op,
                          bool vector_variant);

/** One parsed trace line. */
struct Action
{
    ActionKind kind = ActionKind::Compute;

    Time duration = 0; //!< Compute: CPU time
    int peer = -1;     //!< Send*/Recv*: global dst/src (-1: any source)
    int peer2 = -1;    //!< Sendrecv: global source
    int tag = 0;       //!< ptp tag (Sendrecv: send tag)
    int tag2 = 0;      //!< Sendrecv: receive tag
    Bytes bytes = 0;   //!< payload / collective message length

    machine::Coll op = machine::Coll::Barrier; //!< Coll only
    machine::Algo algo = machine::Algo::Default;
    int root = 0;                   //!< communicator-local root
    bool vector_variant = false;    //!< gatherv/scatterv
    std::vector<Bytes> counts;      //!< vector-collective byte counts
    std::vector<int> group;         //!< sub-communicator global
                                    //!< ranks; empty = world

    int line = 0; //!< 1-based source line (diagnostics)
};

/** A complete trace: np validated per-rank action lists. */
struct Program
{
    int np = 0;
    std::vector<std::vector<Action>> ranks;
    std::string source; //!< file/stream name for diagnostics

    /** Total action count across ranks. */
    std::size_t
    actions() const
    {
        std::size_t n = 0;
        for (const auto &r : ranks)
            n += r.size();
        return n;
    }
};

} // namespace ccsim::replay

#endif // CCSIM_REPLAY_PROGRAM_HH
