#include "replay/recorder.hh"

#include <fstream>
#include <utility>

#include "machine/machine.hh"
#include "replay/trace_parser.hh"
#include "util/logging.hh"

namespace ccsim::replay {

Recorder::Recorder(int np)
{
    if (np < 1)
        fatal("Recorder: rank count %d must be positive", np);
    prog_.np = np;
    prog_.ranks.assign(static_cast<std::size_t>(np), {});
    prog_.source = "<recording>";
}

void
Recorder::attach(machine::Machine &m)
{
    if (m.size() != prog_.np)
        fatal("Recorder for %d ranks attached to a %d-node machine",
              prog_.np, m.size());
    m.setCommHook(this);
}

Program
Recorder::take()
{
    Program out = std::move(prog_);
    prog_ = Program{};
    prog_.np = out.np;
    prog_.ranks.assign(static_cast<std::size_t>(out.np), {});
    prog_.source = "<recording>";
    return out;
}

void
Recorder::write(std::ostream &os) const
{
    writeProgram(prog_, os);
}

void
Recorder::writeFile(const std::string &path) const
{
    std::ofstream f(path);
    if (!f)
        fatal("cannot write trace file '%s'", path.c_str());
    write(f);
}

std::vector<Action> &
Recorder::rankList(int node)
{
    if (node < 0 || node >= prog_.np)
        panic("Recorder: hook fired for rank %d of %d", node,
              prog_.np);
    return prog_.ranks[static_cast<std::size_t>(node)];
}

void
Recorder::onCompute(int node, Time t)
{
    Action a;
    a.kind = ActionKind::Compute;
    a.duration = t;
    rankList(node).push_back(std::move(a));
}

void
Recorder::onSend(int node, int dst, int tag, Bytes bytes,
                 bool nonblocking)
{
    Action a;
    a.kind = nonblocking ? ActionKind::Isend : ActionKind::Send;
    a.peer = dst;
    a.tag = tag;
    a.bytes = bytes;
    rankList(node).push_back(std::move(a));
}

void
Recorder::onRecv(int node, int src, int tag, bool nonblocking)
{
    Action a;
    a.kind = nonblocking ? ActionKind::Irecv : ActionKind::Recv;
    a.peer = src;
    a.tag = tag;
    rankList(node).push_back(std::move(a));
}

void
Recorder::onWait(int node)
{
    Action a;
    a.kind = ActionKind::Wait;
    rankList(node).push_back(std::move(a));
}

void
Recorder::onSendrecv(int node, int dst, int send_tag, Bytes bytes,
                     int src, int recv_tag)
{
    Action a;
    a.kind = ActionKind::Sendrecv;
    a.peer = dst;
    a.peer2 = src;
    a.tag = send_tag;
    a.tag2 = recv_tag;
    a.bytes = bytes;
    rankList(node).push_back(std::move(a));
}

void
Recorder::onCollective(int node, machine::Coll op, Bytes m, int root,
                       machine::Algo algo,
                       const std::vector<Bytes> *counts,
                       const std::vector<int> *group)
{
    Action a;
    a.kind = ActionKind::Coll;
    a.op = op;
    a.bytes = m;
    a.root = root < 0 ? 0 : root;
    a.algo = algo;
    if (counts) {
        a.vector_variant = true;
        a.counts = *counts;
    }
    if (group)
        a.group = *group;
    rankList(node).push_back(std::move(a));
}

void
Recorder::onMetricsReset()
{
    for (auto &actions : prog_.ranks)
        actions.clear();
}

} // namespace ccsim::replay
