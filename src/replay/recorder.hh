/**
 * @file
 * Recorder: a machine::CommHook that turns any live run into a
 * replayable Program.
 *
 * Attach it before spawning rank programs:
 *
 * @code
 *     machine::Machine m(cfg, p);
 *     replay::Recorder rec(p);
 *     m.setCommHook(&rec);
 *     m.spawnAll(...);
 *     m.run();
 *     rec.writeFile("app.trace");
 * @endcode
 *
 * The hook fires with each call's arguments *as requested* (before
 * algorithm resolution), so recorded traces are machine-portable:
 * Algo::Default stays "default" and re-resolves against whichever
 * machine replays the trace.  Replaying a recording on the machine it
 * was taken from reproduces the original simulated times
 * byte-identically (compute durations are stored with full picosecond
 * resolution).
 */

#ifndef CCSIM_REPLAY_RECORDER_HH
#define CCSIM_REPLAY_RECORDER_HH

#include <iosfwd>
#include <string>

#include "machine/comm_hook.hh"
#include "replay/program.hh"

namespace ccsim::machine {
class Machine;
}

namespace ccsim::replay {

/** Captures mpi::Comm calls into a Program. */
class Recorder : public machine::CommHook
{
  public:
    /** Record a run of @p np ranks. */
    explicit Recorder(int np);

    /** Convenience: machine.setCommHook(this).  The recorder must
     *  outlive the machine's run. */
    void attach(machine::Machine &m);

    /** The trace recorded so far. */
    const Program &program() const { return prog_; }

    /** Move the recording out (the recorder resets to empty). */
    Program take();

    /** Write the recording in trace format. */
    void write(std::ostream &os) const;

    /** write() to a file (fatal on I/O failure). */
    void writeFile(const std::string &path) const;

    // -- CommHook --------------------------------------------------------

    void onCompute(int node, Time t) override;
    void onSend(int node, int dst, int tag, Bytes bytes,
                bool nonblocking) override;
    void onRecv(int node, int src, int tag, bool nonblocking) override;
    void onWait(int node) override;
    void onSendrecv(int node, int dst, int send_tag, Bytes bytes,
                    int src, int recv_tag) override;
    void onCollective(int node, machine::Coll op, Bytes m, int root,
                      machine::Algo algo,
                      const std::vector<Bytes> *counts,
                      const std::vector<int> *group) override;

    /** Point boundary (replay sweeps): drop the actions recorded so
     *  far so each point's recording starts fresh and repeated points
     *  are byte-identical.  np and source are kept. */
    void onMetricsReset() override;

  private:
    std::vector<Action> &rankList(int node);

    Program prog_;
};

} // namespace ccsim::replay

#endif // CCSIM_REPLAY_RECORDER_HH
