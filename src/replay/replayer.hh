/**
 * @file
 * Replayer: execute a recorded/authored Program on any Machine.
 *
 * The replayer spawns one coroutine per rank that walks the rank's
 * action list through a real mpi::Comm — compute occupies the CPU,
 * point-to-point and collectives go through the full transport /
 * network / algorithm stack — so a trace taken from one machine
 * answers "how would this application behave on the SP2 / T3D /
 * Paragon?" with the simulator's full fidelity, including
 * contention, fault injection, and activity tracing.
 *
 * Determinism contract: replaying the trace a Recorder captured, on
 * the machine it was captured from, reproduces the original
 * simulated times byte-identically; replaySweep() keeps that
 * property at any --jobs level (each point owns its Machine and
 * results land in point order).
 */

#ifndef CCSIM_REPLAY_REPLAYER_HH
#define CCSIM_REPLAY_REPLAYER_HH

#include <vector>

#include "fault/fault_injector.hh"
#include "harness/sweep.hh"
#include "machine/machine_config.hh"
#include "replay/program.hh"
#include "sim/trace.hh"
#include "stats/snapshot.hh"

namespace ccsim::machine {
class CommHook;
}

namespace ccsim::replay {

/** Knobs of one replay run. */
struct ReplayOptions
{
    /**
     * Message-size scaling: every byte count in the trace (ptp
     * payloads, collective lengths, vector counts) is multiplied by
     * this factor and rounded to the nearest byte.  1.0 is the exact
     * identity (no floating-point involved), preserving the
     * byte-identical record -> replay contract; other values sweep a
     * workload across message scales without re-recording.
     */
    double scale = 1.0;

    /** Record an activity trace (each span labelled with its trace
     *  action, so Perfetto timelines read at action granularity). */
    bool collect_trace = false;

    /** Collect a MetricsSnapshot (observation only — simulated times
     *  are byte-identical with metrics on or off). */
    bool metrics = false;

    /**
     * Observer installed on the run's Machine (e.g.\ a Recorder), or
     * null.  Not owned; must outlive the run.  The replayer drives
     * CommHook::onMetricsReset() at the start of every point, so a
     * hook reused across sweep points drops its per-point state and
     * repeated points stay byte-identical.  A hook shared by several
     * points of a replaySweep() requires --jobs 1 (points would
     * otherwise race on it).
     */
    machine::CommHook *hook = nullptr;
};

/** Outcome of one replay run. */
struct ReplayResult
{
    std::string machine;
    int np = 0;
    double scale = 1.0;

    /** Per-rank simulated completion time. */
    std::vector<Time> completion;

    /** Activity spans (empty unless options.collect_trace). */
    sim::Trace trace;

    /** Fault-layer activity (empty when faults are disabled). */
    fault::FaultReport faults;

    /** Observability snapshot (empty unless options.metrics or
     *  cfg.collect_metrics). */
    stats::MetricsSnapshot metrics;

    /** Completion time of the slowest rank — the workload's
     *  simulated makespan. */
    Time makespan() const;
};

/** Executes Programs on Machines. */
class Replayer
{
  public:
    /** Replay @p prog on a fresh Machine built from @p cfg. */
    static ReplayResult run(const machine::MachineConfig &cfg,
                            const Program &prog,
                            const ReplayOptions &opt = {});
};

/** One (machine, options) replay point of a sweep. */
struct ReplayPoint
{
    machine::MachineConfig cfg;
    ReplayOptions options;
};

/**
 * Replay @p prog at every point on @p runner's worker pool
 * (harness::SweepRunner::runTasks): results[i] is points[i]'s
 * outcome at any --jobs level.
 */
std::vector<ReplayResult>
replaySweep(const Program &prog, const std::vector<ReplayPoint> &points,
            harness::SweepRunner &runner);

} // namespace ccsim::replay

#endif // CCSIM_REPLAY_REPLAYER_HH
