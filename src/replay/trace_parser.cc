#include "replay/trace_parser.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "machine/config_io.hh"
#include "util/logging.hh"

namespace ccsim::replay {

namespace {

using machine::Algo;
using machine::Coll;

/** Collective keyword -> (op, vector variant). */
const std::map<std::string, std::pair<Coll, bool>> &
collectiveKeywords()
{
    static const std::map<std::string, std::pair<Coll, bool>> kw = {
        {"barrier", {Coll::Barrier, false}},
        {"bcast", {Coll::Bcast, false}},
        {"gather", {Coll::Gather, false}},
        {"scatter", {Coll::Scatter, false}},
        {"allgather", {Coll::Allgather, false}},
        {"alltoall", {Coll::Alltoall, false}},
        {"reduce", {Coll::Reduce, false}},
        {"allreduce", {Coll::Allreduce, false}},
        {"reduce_scatter", {Coll::ReduceScatter, false}},
        {"scan", {Coll::Scan, false}},
        {"gatherv", {Coll::Gather, true}},
        {"scatterv", {Coll::Scatter, true}},
    };
    return kw;
}

bool
collectiveHasRoot(Coll op)
{
    return op == Coll::Bcast || op == Coll::Gather ||
           op == Coll::Scatter || op == Coll::Reduce;
}

/** One line being parsed, with the context diagnostics need. */
struct LineCtx
{
    const std::string *source;
    int line = 0;
    int rank = -1; // known once the rank prefix parsed

    [[noreturn]] void
    fail(const std::string &what) const
    {
        if (rank >= 0)
            raiseError(TraceError(
                strFormat("%s:%d: rank %d: %s", source->c_str(), line,
                          rank, what.c_str())));
        raiseError(TraceError(strFormat("%s:%d: %s", source->c_str(),
                                        line, what.c_str())));
    }
};

long long
parseInt(const LineCtx &ctx, const std::string &tok,
         const std::string &what)
{
    try {
        std::size_t pos = 0;
        long long v = std::stoll(tok, &pos);
        if (pos != tok.size())
            throw std::invalid_argument(tok);
        return v;
    } catch (const std::exception &) {
        ctx.fail("bad " + what + " '" + tok + "'");
    }
}

/** Exact decimal-microsecond parse: digits[.digits{1..6}] -> ps. */
Time
parseMicrosExact(const LineCtx &ctx, const std::string &tok)
{
    std::size_t dot = tok.find('.');
    std::string whole = dot == std::string::npos ? tok
                                                 : tok.substr(0, dot);
    std::string frac =
        dot == std::string::npos ? "" : tok.substr(dot + 1);
    if (whole.empty() || frac.size() > 6 ||
        (dot != std::string::npos && frac.empty()))
        ctx.fail("bad duration '" + tok +
                 "' (want decimal us, <= 6 fraction digits)");
    for (char c : whole)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            ctx.fail("bad duration '" + tok + "'");
    for (char c : frac)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            ctx.fail("bad duration '" + tok + "'");
    frac.resize(6, '0'); // pad to picoseconds
    long long us = parseInt(ctx, whole, "duration");
    long long ps_frac = parseInt(ctx, frac, "duration");
    using namespace time_literals;
    return us * US + ps_frac;
}

std::vector<Bytes>
parseByteList(const LineCtx &ctx, const std::string &tok)
{
    std::vector<Bytes> out;
    std::stringstream ss(tok);
    std::string item;
    while (std::getline(ss, item, ',')) {
        Bytes b = parseInt(ctx, item, "byte count");
        if (b < 0)
            ctx.fail("negative byte count in '" + tok + "'");
        out.push_back(b);
    }
    if (out.empty())
        ctx.fail("empty byte-count list");
    return out;
}

std::vector<int>
parseRankList(const LineCtx &ctx, const std::string &tok, int np)
{
    std::vector<int> out;
    std::stringstream ss(tok);
    std::string item;
    while (std::getline(ss, item, ',')) {
        long long r = parseInt(ctx, item, "group rank");
        if (r < 0 || r >= np)
            ctx.fail("group rank " + item + " outside np " +
                     std::to_string(np));
        out.push_back(static_cast<int>(r));
    }
    if (out.empty())
        ctx.fail("empty group");
    std::vector<int> sorted = out;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
        ctx.fail("duplicate rank in group '" + tok + "'");
    return out;
}

/** Split "key=value"; fail on anything else. */
std::pair<std::string, std::string>
splitAttr(const LineCtx &ctx, const std::string &tok)
{
    std::size_t eq = tok.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= tok.size())
        ctx.fail("expected key=value attribute, got '" + tok + "'");
    return {tok.substr(0, eq), tok.substr(eq + 1)};
}

Action
parsePtp(const LineCtx &ctx, ActionKind kind,
         const std::vector<std::string> &toks, int np)
{
    Action a;
    a.kind = kind;
    a.line = ctx.line;
    std::size_t pos = 0;

    auto needPositional = [&](const char *what) -> const std::string & {
        if (pos >= toks.size() || toks[pos].find('=') != std::string::npos)
            ctx.fail(std::string("missing ") + what);
        return toks[pos++];
    };

    bool is_send = kind == ActionKind::Send || kind == ActionKind::Isend;
    bool is_recv = kind == ActionKind::Recv || kind == ActionKind::Irecv;

    if (kind == ActionKind::Sendrecv) {
        a.peer = static_cast<int>(
            parseInt(ctx, needPositional("destination rank"), "rank"));
        a.peer2 = static_cast<int>(
            parseInt(ctx, needPositional("source rank"), "rank"));
        a.bytes = parseInt(ctx, needPositional("byte count"), "bytes");
        if (a.peer < 0 || a.peer >= np || a.peer2 < 0 || a.peer2 >= np)
            ctx.fail("sendrecv peer outside np " + std::to_string(np));
    } else if (is_send) {
        a.peer = static_cast<int>(
            parseInt(ctx, needPositional("destination rank"), "rank"));
        a.bytes = parseInt(ctx, needPositional("byte count"), "bytes");
        if (a.peer < 0 || a.peer >= np)
            ctx.fail("destination rank " + std::to_string(a.peer) +
                     " outside np " + std::to_string(np));
    } else if (is_recv) {
        a.peer = static_cast<int>(
            parseInt(ctx, needPositional("source rank"), "rank"));
        if (a.peer < -1 || a.peer >= np)
            ctx.fail("source rank " + std::to_string(a.peer) +
                     " outside np " + std::to_string(np) +
                     " (-1 = any source)");
    }
    if (a.bytes < 0)
        ctx.fail("negative byte count");

    for (; pos < toks.size(); ++pos) {
        auto [key, value] = splitAttr(ctx, toks[pos]);
        if (key == "tag" && kind != ActionKind::Sendrecv)
            a.tag = static_cast<int>(parseInt(ctx, value, "tag"));
        else if (key == "stag" && kind == ActionKind::Sendrecv)
            a.tag = static_cast<int>(parseInt(ctx, value, "tag"));
        else if (key == "rtag" && kind == ActionKind::Sendrecv)
            a.tag2 = static_cast<int>(parseInt(ctx, value, "tag"));
        else
            ctx.fail("unknown attribute '" + key + "'");
    }
    return a;
}

Action
parseCollective(const LineCtx &ctx, Coll op, bool vector_variant,
                const std::vector<std::string> &toks, int np)
{
    Action a;
    a.kind = ActionKind::Coll;
    a.op = op;
    a.vector_variant = vector_variant;
    a.line = ctx.line;
    std::size_t pos = 0;

    if (vector_variant) {
        if (pos >= toks.size() ||
            toks[pos].find('=') != std::string::npos)
            ctx.fail("missing byte-count list");
        a.counts = parseByteList(ctx, toks[pos++]);
    } else if (op != Coll::Barrier) {
        if (pos >= toks.size() ||
            toks[pos].find('=') != std::string::npos)
            ctx.fail("missing message length");
        a.bytes = parseInt(ctx, toks[pos++], "message length");
        if (a.bytes < 0)
            ctx.fail("negative message length");
    }

    for (; pos < toks.size(); ++pos) {
        auto [key, value] = splitAttr(ctx, toks[pos]);
        if (key == "root" &&
            (collectiveHasRoot(op) || vector_variant)) {
            a.root = static_cast<int>(parseInt(ctx, value, "root"));
        } else if (key == "algo") {
            bool was = throwOnError(true);
            try {
                a.algo = machine::algoFromName(value);
            } catch (const FatalError &) {
                throwOnError(was);
                ctx.fail("unknown algorithm '" + value + "'");
            }
            throwOnError(was);
        } else if (key == "group") {
            a.group = parseRankList(ctx, value, np);
        } else {
            ctx.fail("unknown attribute '" + key + "'");
        }
    }

    int comm_size = a.group.empty() ? np
                                    : static_cast<int>(a.group.size());
    if (!a.group.empty() &&
        std::find(a.group.begin(), a.group.end(), ctx.rank) ==
            a.group.end())
        ctx.fail("rank is not a member of group");
    if (a.root < 0 || a.root >= comm_size)
        ctx.fail("root " + std::to_string(a.root) +
                 " outside communicator of " +
                 std::to_string(comm_size));
    if (vector_variant &&
        static_cast<int>(a.counts.size()) != comm_size)
        ctx.fail("count list has " + std::to_string(a.counts.size()) +
                 " entries for a communicator of " +
                 std::to_string(comm_size) + " (rank count mismatch)");
    return a;
}

} // namespace

std::string
actionKeyword(ActionKind k, Coll op, bool vector_variant)
{
    switch (k) {
      case ActionKind::Compute:
        return "compute";
      case ActionKind::Send:
        return "send";
      case ActionKind::Isend:
        return "isend";
      case ActionKind::Recv:
        return "recv";
      case ActionKind::Irecv:
        return "irecv";
      case ActionKind::Wait:
        return "wait";
      case ActionKind::Sendrecv:
        return "sendrecv";
      case ActionKind::Coll:
        if (vector_variant)
            return op == Coll::Gather ? "gatherv" : "scatterv";
        return machine::collKey(op);
      default:
        panic("actionKeyword: bad kind %d", static_cast<int>(k));
    }
}

Program
TraceParser::parse(std::istream &is, const std::string &name)
{
    Program prog;
    prog.source = name;
    prog.np = 0;

    std::string raw;
    int lineno = 0;
    while (std::getline(is, raw)) {
        ++lineno;
        LineCtx ctx{&prog.source, lineno, -1};

        std::size_t hash = raw.find('#');
        if (hash != std::string::npos)
            raw.resize(hash);
        std::istringstream ls(raw);
        std::vector<std::string> toks;
        std::string t;
        while (ls >> t)
            toks.push_back(t);
        if (toks.empty())
            continue;

        if (toks[0] == "np") {
            if (prog.np > 0)
                ctx.fail("duplicate np directive");
            if (toks.size() != 2)
                ctx.fail("np wants exactly one value");
            long long np = parseInt(ctx, toks[1], "rank count");
            if (np < 1 || np > 1 << 20)
                ctx.fail("rank count " + toks[1] + " out of range");
            prog.np = static_cast<int>(np);
            prog.ranks.assign(static_cast<std::size_t>(np), {});
            continue;
        }
        if (prog.np == 0)
            ctx.fail("np directive must precede all actions");

        long long rank = parseInt(ctx, toks[0], "rank");
        if (rank < 0 || rank >= prog.np)
            ctx.fail("rank " + toks[0] + " outside np " +
                     std::to_string(prog.np) + " (rank count mismatch)");
        ctx.rank = static_cast<int>(rank);
        if (toks.size() < 2)
            ctx.fail("missing action keyword");
        const std::string &kw = toks[1];
        std::vector<std::string> args(toks.begin() + 2, toks.end());

        Action a;
        if (kw == "compute") {
            if (args.size() != 1)
                ctx.fail("compute wants exactly one duration");
            a.kind = ActionKind::Compute;
            a.duration = parseMicrosExact(ctx, args[0]);
            a.line = lineno;
        } else if (kw == "send") {
            a = parsePtp(ctx, ActionKind::Send, args, prog.np);
        } else if (kw == "isend") {
            a = parsePtp(ctx, ActionKind::Isend, args, prog.np);
        } else if (kw == "recv") {
            a = parsePtp(ctx, ActionKind::Recv, args, prog.np);
        } else if (kw == "irecv") {
            a = parsePtp(ctx, ActionKind::Irecv, args, prog.np);
        } else if (kw == "sendrecv") {
            a = parsePtp(ctx, ActionKind::Sendrecv, args, prog.np);
        } else if (kw == "wait") {
            if (!args.empty())
                ctx.fail("wait takes no arguments");
            a.kind = ActionKind::Wait;
            a.line = lineno;
        } else {
            auto it = collectiveKeywords().find(kw);
            if (it == collectiveKeywords().end())
                ctx.fail("unknown collective '" + kw + "'");
            a = parseCollective(ctx, it->second.first,
                                it->second.second, args, prog.np);
        }
        prog.ranks[static_cast<std::size_t>(rank)].push_back(
            std::move(a));
    }

    if (prog.np == 0)
        raiseError(TraceError(strFormat(
            "%s: empty trace (no np directive)", name.c_str())));
    return prog;
}

Program
TraceParser::parseFile(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        raiseError(TraceError(strFormat("cannot open trace file '%s'",
                                        path.c_str())));
    return parse(f, path);
}

std::string
formatMicrosExact(Time t)
{
    using namespace time_literals;
    if (t < 0)
        panic("formatMicrosExact: negative time %lld",
              static_cast<long long>(t));
    long long us = t / US;
    long long frac = t % US;
    std::string out = std::to_string(us);
    if (frac != 0) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "%06lld", frac);
        std::string f(buf);
        while (f.back() == '0')
            f.pop_back();
        out += "." + f;
    }
    return out;
}

std::string
formatAction(const Action &a)
{
    std::ostringstream os;
    os << actionKeyword(a.kind, a.op, a.vector_variant);
    switch (a.kind) {
      case ActionKind::Compute:
        os << ' ' << formatMicrosExact(a.duration);
        break;
      case ActionKind::Send:
      case ActionKind::Isend:
        os << ' ' << a.peer << ' ' << a.bytes;
        if (a.tag != 0)
            os << " tag=" << a.tag;
        break;
      case ActionKind::Recv:
      case ActionKind::Irecv:
        os << ' ' << a.peer;
        if (a.tag != 0)
            os << " tag=" << a.tag;
        break;
      case ActionKind::Wait:
        break;
      case ActionKind::Sendrecv:
        os << ' ' << a.peer << ' ' << a.peer2 << ' ' << a.bytes;
        if (a.tag != 0)
            os << " stag=" << a.tag;
        if (a.tag2 != 0)
            os << " rtag=" << a.tag2;
        break;
      case ActionKind::Coll:
        if (a.vector_variant) {
            os << ' ';
            for (std::size_t i = 0; i < a.counts.size(); ++i)
                os << (i ? "," : "") << a.counts[i];
        } else if (a.op != Coll::Barrier) {
            os << ' ' << a.bytes;
        }
        if (a.root != 0)
            os << " root=" << a.root;
        // Auto is suppressed like Default: both mean "no explicit
        // override", and recording either would make trace bytes
        // depend on which neutral spelling the program used.
        if (a.algo != Algo::Default && a.algo != Algo::Auto)
            os << " algo=" << machine::algoName(a.algo);
        if (!a.group.empty()) {
            os << " group=";
            for (std::size_t i = 0; i < a.group.size(); ++i)
                os << (i ? "," : "") << a.group[i];
        }
        break;
    }
    return os.str();
}

void
writeProgram(const Program &prog, std::ostream &os)
{
    os << "# ccsim trace v1\n";
    os << "np " << prog.np << "\n";
    for (int r = 0; r < prog.np; ++r)
        for (const Action &a : prog.ranks[static_cast<std::size_t>(r)])
            os << r << ' ' << formatAction(a) << '\n';
}

} // namespace ccsim::replay
