/**
 * @file
 * TraceParser: the plain-text action-trace format, both directions.
 *
 * The format (one action per line, rank-prefixed; see docs/REPLAY.md
 * for the full grammar):
 *
 * @verbatim
 *     # ccsim trace v1
 *     np 4
 *     0 compute 125.5
 *     0 isend 1 4096 tag=7
 *     0 wait
 *     2 bcast 1024 root=1 algo=binomial
 *     3 gatherv 4,8,12,16 root=0
 *     1 alltoall 65536 group=0,1,2,3
 * @endverbatim
 *
 * Compute durations are decimal microseconds with up to six fraction
 * digits — exactly one picosecond of resolution, so a recorded trace
 * round-trips the simulator's integer timebase losslessly (the
 * byte-identical record -> replay contract depends on this).
 *
 * Parsing is strict: every diagnostic is a TraceError carrying
 * source:line and, where known, the rank, e.g.
 * "app.trace:17: rank 3: unknown collective 'allsum'".
 */

#ifndef CCSIM_REPLAY_TRACE_PARSER_HH
#define CCSIM_REPLAY_TRACE_PARSER_HH

#include <iosfwd>
#include <string>

#include "replay/program.hh"
#include "util/error.hh"

namespace ccsim::replay {

/**
 * A malformed or unreadable trace.  Derives from FatalError (it is a
 * user error and stays catchable as one) but refines the component
 * to "replay" and the CLI exit code to kTraceExit, so scripts can
 * distinguish a bad trace from a bad flag.
 */
struct TraceError : FatalError
{
    explicit TraceError(const std::string &message)
        : FatalError("replay", message, kTraceExit)
    {
    }
};

/** Parses the plain-text trace format into validated Programs. */
class TraceParser
{
  public:
    /** Parse a trace file; TraceError (with path:line) on any
     *  error. */
    static Program parseFile(const std::string &path);

    /** Parse from a stream; @p name labels diagnostics. */
    static Program parse(std::istream &is, const std::string &name);
};

/** Render one action as a trace-format line body (no rank prefix);
 *  parse(format(a)) reproduces @p a exactly. */
std::string formatAction(const Action &a);

/** Write @p prog in trace format (header, np, then each rank's
 *  actions in rank order).  parse(write(p)) == p. */
void writeProgram(const Program &prog, std::ostream &os);

/** Exact Time <-> decimal-microsecond rendering used by the format:
 *  integer picoseconds as "<us>[.<frac>]" with trailing zeros
 *  trimmed (6 fraction digits max). */
std::string formatMicrosExact(Time t);

} // namespace ccsim::replay

#endif // CCSIM_REPLAY_TRACE_PARSER_HH
