/**
 * @file
 * The paper's measurement procedure (Section 2), reproduced:
 *
 * @verbatim
 *     barrier synchronization
 *     get start-time
 *     for (i = 0; i < k; i++)
 *         the-collective-routine-being-measured
 *     get end-time
 *     local-time = (end-time - start-time) / k
 *     communication-time = maximum-reduce(local-time)
 * @endverbatim
 *
 * The program is executed repeatedly (paper: >22 runs, k = 20, five
 * repetitions per machine size); the first runs are discarded as
 * warm-up; the minimal, maximal, and mean times over all processes
 * are collected and the MAXIMUM is what the paper reports, "because
 * it reflects the condition that all processes involved in the
 * machine have finished the operation."
 *
 * Because the simulator is deterministic, the default options use a
 * smaller k and fewer repetitions than the paper — the numbers are
 * identical, only cheaper to produce.  paperFaithful() restores the
 * full procedure (including per-node clock-skew injection, which the
 * paper lists among its accuracy caveats).
 */

#ifndef CCSIM_HARNESS_MEASURE_HH
#define CCSIM_HARNESS_MEASURE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fault/fault_report.hh"
#include "machine/machine.hh"
#include "model/predictor.hh"
#include "mpi/comm.hh"
#include "stats/cache_stats.hh"
#include "util/units.hh"

namespace ccsim::harness {

/** Knobs of the Section 2 procedure. */
struct MeasureOptions
{
    int iterations = 5;   //!< k: timed calls per repetition
    int repetitions = 2;  //!< timed repetitions
    int warmup = 1;       //!< untimed leading calls (cold caches)
    Time max_skew = 0;    //!< per-rank clock-skew injection bound
    std::uint64_t seed = 12345; //!< skew RNG seed

    /** Collect a MetricsSnapshot alongside the timings (observation
     *  only: the measured times are identical either way). */
    bool metrics = false;

    /**
     * Reuse memoized results: simulation is deterministic, so a
     * (machine, p, op, m, algo, procedure) point always produces the
     * same times and re-simulating it is pure waste — sweeps over
     * overlapping specs (fits, figures, the CLI) hit the same points
     * constantly.  A point is memoized only when nothing outside the
     * key can influence it: faults disabled, no clock-skew
     * injection, and no metrics collection (a metrics run also
     * carries a snapshot, which is observational state, not a
     * timing).  Cached results are byte-identical to re-simulated
     * ones (see tests/test_measure_memo.cc).
     */
    bool memoize = true;

    /**
     * Fault-ensemble mode: when > 1 and the config's FaultSpec is
     * enabled, the point is simulated this many times under derived
     * fault seeds (mixSeed of the spec seed and the member index)
     * and the Measurement reports ensemble statistics — mean and p95
     * makespan, summed fault/degradation counters, and the failure
     * fraction (members that raised FaultError under fail_fast /
     * retry_escalate).  A faulty point is a random variable; the
     * ensemble is what makes it a well-defined statistic the tuner
     * can rank algorithms by.  Ignored when faults are off.  Members
     * run sequentially inside the point (the sweep point stays the
     * unit of parallelism), so results are byte-identical at any
     * --jobs level.
     */
    int ensemble = 1;

    /** The paper's full procedure: k = 20, 5 reps, 2 warm-up runs. */
    static MeasureOptions
    paperFaithful()
    {
        MeasureOptions o;
        o.iterations = 20;
        o.repetitions = 5;
        o.warmup = 2;
        using namespace time_literals;
        o.max_skew = 10 * US;
        return o;
    }
};

/** One measured (machine, operation, m, p) point. */
struct Measurement
{
    std::string machine;
    machine::Coll op = machine::Coll::Barrier;
    machine::Algo algo = machine::Algo::Default;
    Bytes m = 0;
    int p = 0;

    Time max_time = 0;  //!< max over ranks, averaged over reps (paper's
                        //!< reported number)
    Time min_time = 0;  //!< min over ranks, averaged over reps
    Time mean_time = 0; //!< mean over ranks, averaged over reps

    /** Fault-layer activity over the whole run (all zero when the
     *  machine's FaultSpec is disabled; summed over members in
     *  ensemble mode). */
    std::uint64_t fault_drops = 0;       //!< messages lost in flight
    std::uint64_t fault_retransmits = 0; //!< retries issued
    std::uint64_t fault_delays = 0;      //!< messages delayed in flight

    /** What graceful recovery cost (zeros under fail_fast; summed
     *  over members in ensemble mode).  makespan_inflation compares
     *  against the memoized clean twin of the same point. */
    fault::DegradationReport degradation;

    /** Ensemble statistics (MeasureOptions::ensemble > 1 with faults
     *  enabled): members attempted, members that raised FaultError,
     *  and the p95 of the per-member makespans.  ensemble_runs == 0
     *  marks a plain single-run measurement. */
    int ensemble_runs = 0;
    int ensemble_failures = 0;
    Time p95_time = 0;

    /** Failed members / attempted members (0.0 for plain runs). */
    double
    failureFraction() const
    {
        return ensemble_runs > 0 ? static_cast<double>(ensemble_failures) /
                                       static_cast<double>(ensemble_runs)
                                 : 0.0;
    }

    /** Full observability snapshot of the run; empty() unless
     *  MeasureOptions::metrics (or cfg.collect_metrics) was set. */
    stats::MetricsSnapshot metrics;

    /** The headline number (the paper reports the maximum). */
    Time time() const { return max_time; }

    /** Convenience: time in microseconds. */
    double us() const { return toMicros(max_time); }
};

/** A rank program measured by the harness: one collective call. */
using CollectiveCall =
    std::function<sim::Task<void>(mpi::Comm &, Bytes)>;

/**
 * Issue a single call of @p op on @p comm (root 0 for the rooted
 * operations) — the building block of the Section 2 loop, public so
 * other drivers (the CLI's --trace-out path, the replay recorder
 * tools) can run one traced call without duplicating the dispatch.
 */
sim::Task<void> runCollectiveOnce(mpi::Comm &comm, machine::Coll op,
                                  Bytes m,
                                  machine::Algo algo
                                  = machine::Algo::Auto);

/**
 * Run the Section 2 procedure for one collective on one machine.
 *
 * @param cfg   machine description (instantiated fresh)
 * @param p     number of nodes
 * @param op    which collective (root defaults to rank 0)
 * @param m     message length in bytes (per node pair)
 * @param algo  algorithm override.  The default, Algo::Auto, goes
 *              through the machine's selection table when one is
 *              attached and otherwise means Algo::Default — the
 *              machine's configured choice.  Auto is resolved to a
 *              concrete algorithm BEFORE the memo key is formed, so
 *              the returned Measurement (resolved algo included) is
 *              byte-identical to measuring that algorithm explicitly.
 * @param opt   procedure knobs
 */
Measurement measureCollective(const machine::MachineConfig &cfg, int p,
                              machine::Coll op, Bytes m,
                              machine::Algo algo = machine::Algo::Auto,
                              const MeasureOptions &opt = {});

/**
 * Startup latency T0(p): the collective messaging time of the
 * shortest message the machine accepts (the paper approximates T0 by
 * a zero-byte or short message; we use m = 4, one MPI_FLOAT... /4).
 */
Measurement measureStartup(const machine::MachineConfig &cfg, int p,
                           machine::Coll op,
                           machine::Algo algo = machine::Algo::Auto,
                           const MeasureOptions &opt = {});

/** Message length used for the startup-latency approximation. */
constexpr Bytes kStartupMessageBytes = 4;

/**
 * Canonical cache key of one measurement point — the memo-key
 * canonicalization of DESIGN.md §4.11, public so other result caches
 * (the `ccsim serve` query cache) key on exactly the bytes the memo
 * cache does and their hits stay byte-identical with fresh
 * simulation.  Algo::Auto is resolved through cfg.selection before
 * the key is formed, so an auto query shares its key (and cached
 * result) with the same point under the explicit algorithm.  The
 * config's name is deliberately excluded — two identically
 * parameterized machines are the same machine — as are the fault
 * spec, skew seed, and metrics flags, because keyed caching is only
 * sound for points where those are off (memoEligible()).
 */
std::string measurePointKey(const machine::MachineConfig &cfg, int p,
                            machine::Coll op, Bytes m,
                            machine::Algo algo = machine::Algo::Auto,
                            const MeasureOptions &opt = {});

/** True when a (cfg, opt) point is eligible for keyed result caching:
 *  memoization on, faults disabled, no skew, no metrics. */
bool measurePointCacheable(const machine::MachineConfig &cfg,
                           const MeasureOptions &opt);

/** Hit/miss/bypass counters of the measureCollective memo cache
 *  (bypassed = ineligible points: faults, skew, metrics collection,
 *  or memoize = false). */
using MemoStats = stats::CacheStats;

/** Process-wide memo statistics (monotonic; thread-safe). */
MemoStats memoStats();

/** Number of distinct points currently cached. */
std::size_t memoSize();

/** Drop every cached point and zero the statistics. */
void memoClear();

/** The paper's standard sweeps. */
std::vector<int> paperMachineSizes(const std::string &machine_name);
std::vector<Bytes> paperMessageLengths();

/**
 * Aggregated message length f(m, p) of Section 3: m (p - 1) for the
 * one-to-many / many-to-one / reduction operations, m p (p - 1) for
 * total exchange, 0 for barrier.
 */
Bytes aggregatedLength(machine::Coll op, Bytes m, int p);

/**
 * Fit a model::MachineModel for @p cfg by sweeping the Section 2
 * procedure over the given machine sizes and message lengths for
 * every operation in @p ops, then running the paper-style two-stage
 * fit per operation.  Empty sweep vectors use the paper's standard
 * sweeps (capped at @p max_p when positive, to bound cost).
 */
model::MachineModel fitMachineModel(
    const machine::MachineConfig &cfg,
    const std::vector<machine::Coll> &ops = {},
    std::vector<int> sizes = {}, std::vector<Bytes> lengths = {},
    const MeasureOptions &opt = {});

/**
 * Point-to-point ping-pong between two nodes of a machine: rank 0
 * sends m bytes to rank 1, which sends m bytes back; repeated
 * @p opt.iterations times after warm-up.  Returns the mean ONE-WAY
 * time (round trip / 2) in the Measurement's max_time.  The
 * distance between the two nodes is the topology's default for
 * adjacent ranks (0 and 1).
 */
Measurement measurePingPong(const machine::MachineConfig &cfg, Bytes m,
                            const MeasureOptions &opt = {});

} // namespace ccsim::harness

#endif // CCSIM_HARNESS_MEASURE_HH
