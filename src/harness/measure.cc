#include "harness/measure.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <mutex>
#include <unordered_map>

#include "model/fit.hh"
#include "tuning/selection_table.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/stats.hh"

namespace ccsim::harness {

namespace {

using machine::Algo;
using machine::Coll;

/**
 * The measureCollective memo cache (Layer 3 of the hot-path work,
 * DESIGN.md §4.11).  Keyed on a canonical serialization of every
 * input that can influence the measured times: the full timing
 * parameter set of the MachineConfig plus the point coordinates and
 * the Section 2 procedure knobs.  The config's *name* is excluded on
 * purpose — two identically-parameterized machines are the same
 * machine — and so are the fault spec and skew seed, because a point
 * is only eligible when faults and skew are off (an experiment
 * confirmed that per-iteration times within a point are NOT
 * invariant — warm-up and pipelining effects differ — so memoization
 * is whole-point only; see DESIGN.md).
 *
 * Cached values hold just the three reported times: fault counters
 * are zero and the metrics snapshot empty for every eligible point,
 * so a rebuilt Measurement is byte-identical to a simulated one.
 */
struct MemoValue
{
    Time max_time = 0;
    Time min_time = 0;
    Time mean_time = 0;
};

struct MemoCache
{
    std::mutex mu;
    std::unordered_map<std::string, MemoValue> map;
    MemoStats stats;
};

MemoCache &
memoCache()
{
    static MemoCache cache;
    return cache;
}

bool
memoEligible(const machine::MachineConfig &cfg,
             const MeasureOptions &opt)
{
    // CommHooks need no eligibility bit: measureCollective builds its
    // own Machine from cfg and never installs one, so no observer can
    // differ between a cached and a re-simulated point.
    return opt.memoize && !cfg.fault.enabled() && opt.max_skew == 0 &&
           !opt.metrics && !cfg.collect_metrics;
}

void
appendF(std::string &key, const char *fmt, ...)
{
    char buf[64];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    key += buf;
    key += '|';
}

std::string
memoKey(const machine::MachineConfig &cfg, int p, Coll op, Bytes m,
        Algo algo, const MeasureOptions &opt)
{
    std::string key;
    key.reserve(512);

    appendF(key, "v2");
    appendF(key, "%d", static_cast<int>(cfg.topology));
    appendF(key, "%d", cfg.switch_radix);
    appendF(key, "%s", cfg.topo_spec.c_str());
    appendF(key, "%d", cfg.hierarchy.chips);
    appendF(key, "%d", cfg.hierarchy.cores);
    appendF(key, "%.17g", cfg.hierarchy.chip.link_bandwidth_mbs);
    appendF(key, "%" PRId64, cfg.hierarchy.chip.hop_latency);
    appendF(key, "%.17g", cfg.hierarchy.node.link_bandwidth_mbs);
    appendF(key, "%" PRId64, cfg.hierarchy.node.hop_latency);

    const net::NetworkParams &n = cfg.network;
    appendF(key, "%.17g", n.link_bandwidth_mbs);
    appendF(key, "%" PRId64, n.hop_latency);
    appendF(key, "%" PRId64, n.packet_overhead);
    appendF(key, "%d", n.contention ? 1 : 0);

    const msg::TransportParams &t = cfg.transport;
    appendF(key, "%" PRId64, t.send_overhead);
    appendF(key, "%" PRId64, t.recv_overhead);
    appendF(key, "%.17g", t.copy_bandwidth_mbs);
    appendF(key, "%" PRId64, t.eager_threshold);
    appendF(key, "%" PRId64, t.rendezvous_overhead);
    appendF(key, "%.17g", t.coprocessor_overlap);
    appendF(key, "%d", t.blt_enabled ? 1 : 0);
    appendF(key, "%" PRId64, t.blt_threshold);
    appendF(key, "%" PRId64, t.blt_setup);

    appendF(key, "%d", cfg.hardware_barrier ? 1 : 0);
    appendF(key, "%" PRId64, cfg.hardware_barrier_latency);
    appendF(key, "%.17g", cfg.reduce_bandwidth_mbs);

    for (std::size_t i = 0; i < machine::kNumColl; ++i) {
        appendF(key, "%d", static_cast<int>(cfg.algorithms[i]));
        const machine::CollCosts &c = cfg.costs[i];
        appendF(key, "%" PRId64, c.entry);
        appendF(key, "%" PRId64, c.per_stage);
        appendF(key, "%.17g", c.per_stage_ns_per_byte);
        appendF(key, "%.17g", c.reduce_bandwidth_override_mbs);
        appendF(key, "%" PRId64, c.send_overhead_override);
        appendF(key, "%" PRId64, c.recv_overhead_override);
    }

    appendF(key, "%d", p);
    appendF(key, "%d", static_cast<int>(op));
    appendF(key, "%" PRId64, m);
    appendF(key, "%d", static_cast<int>(algo));
    appendF(key, "%d", opt.iterations);
    appendF(key, "%d", opt.repetitions);
    appendF(key, "%d", opt.warmup);

    return key;
}

} // namespace

std::string
measurePointKey(const machine::MachineConfig &cfg, int p, Coll op,
                Bytes m, Algo algo, const MeasureOptions &opt)
{
    if (algo == Algo::Auto)
        algo = tuning::resolveAlgo(cfg, op, p, m, algo);
    return memoKey(cfg, p, op, m, algo, opt);
}

bool
measurePointCacheable(const machine::MachineConfig &cfg,
                      const MeasureOptions &opt)
{
    return memoEligible(cfg, opt);
}

MemoStats
memoStats()
{
    MemoCache &c = memoCache();
    std::lock_guard<std::mutex> lock(c.mu);
    return c.stats;
}

std::size_t
memoSize()
{
    MemoCache &c = memoCache();
    std::lock_guard<std::mutex> lock(c.mu);
    return c.map.size();
}

void
memoClear()
{
    MemoCache &c = memoCache();
    std::lock_guard<std::mutex> lock(c.mu);
    c.map.clear();
    c.stats = MemoStats{};
}

sim::Task<void>
runCollectiveOnce(mpi::Comm &comm, Coll op, Bytes m, Algo algo)
{
    switch (op) {
      case Coll::Barrier:
        co_await comm.barrier(algo);
        break;
      case Coll::Bcast:
        co_await comm.bcast(m, 0, algo);
        break;
      case Coll::Gather:
        co_await comm.gather(m, 0, algo);
        break;
      case Coll::Scatter:
        co_await comm.scatter(m, 0, algo);
        break;
      case Coll::Allgather:
        co_await comm.allgather(m, algo);
        break;
      case Coll::Alltoall:
        co_await comm.alltoall(m, algo);
        break;
      case Coll::Reduce:
        co_await comm.reduce(m, 0, algo);
        break;
      case Coll::Allreduce:
        co_await comm.allreduce(m, algo);
        break;
      case Coll::ReduceScatter:
        co_await comm.reduceScatter(m, algo);
        break;
      case Coll::Scan:
        co_await comm.scan(m, algo);
        break;
      default:
        panic("runCollectiveOnce: bad collective %d",
              static_cast<int>(op));
    }
}

namespace {

/**
 * One simulation of one point — the whole pre-ensemble
 * measureCollective, memo cache included.  @p algo must already be
 * resolved (never Auto).
 */
Measurement
measureOnePoint(const machine::MachineConfig &cfg, int p, Coll op,
                Bytes m, Algo algo, const MeasureOptions &opt)
{
    const bool memo = memoEligible(cfg, opt);
    std::string key;
    if (memo) {
        key = memoKey(cfg, p, op, m, algo, opt);
        MemoCache &c = memoCache();
        std::lock_guard<std::mutex> lock(c.mu);
        auto it = c.map.find(key);
        if (it != c.map.end()) {
            ++c.stats.hits;
            Measurement out;
            out.machine = cfg.name;
            out.op = op;
            out.algo = algo;
            out.m = m;
            out.p = p;
            out.max_time = it->second.max_time;
            out.min_time = it->second.min_time;
            out.mean_time = it->second.mean_time;
            return out;
        }
    }

    // One copy of the config (to pin collect_metrics), then a
    // zero-copy shared-handle Machine construction — sweep workers
    // build thousands of Machines, so the old copy-into-Machine
    // second copy was pure overhead.
    auto run_cfg = std::make_shared<machine::MachineConfig>(cfg);
    run_cfg->collect_metrics = cfg.collect_metrics || opt.metrics;
    machine::Machine mach(machine::ConfigHandle(std::move(run_cfg)), p);

    // Per-rank clock-skew offsets (the paper: "allocated nodes are
    // often not time synchronized").
    Rng rng(opt.seed);
    std::vector<Time> skew(static_cast<size_t>(p), 0);
    if (opt.max_skew > 0)
        for (auto &s : skew)
            s = rng.nextRange(0, opt.max_skew);

    // local_times[rep][rank]
    std::vector<std::vector<Time>> local_times(
        static_cast<size_t>(opt.repetitions),
        std::vector<Time>(static_cast<size_t>(p), 0));

    auto program = [&](int rank) -> sim::Task<void> {
        mpi::Comm comm(mach, rank);
        co_await comm.compute(skew[static_cast<size_t>(rank)]);

        for (int w = 0; w < opt.warmup; ++w)
            co_await runCollectiveOnce(comm, op, m, algo);

        for (int rep = 0; rep < opt.repetitions; ++rep) {
            // The procedure's own synchronization barrier is pinned
            // to the machine default: it must not vary with an
            // attached selection table, or an Auto run could diverge
            // from the memoized explicit-algorithm run it shares a
            // key with.
            co_await comm.barrier(Algo::Default);
            Time start = mach.sim().now();
            for (int i = 0; i < opt.iterations; ++i)
                co_await runCollectiveOnce(comm, op, m, algo);
            Time end = mach.sim().now();
            local_times[static_cast<size_t>(rep)]
                       [static_cast<size_t>(rank)] =
                (end - start) / opt.iterations;
        }
    };

    for (int r = 0; r < p; ++r)
        mach.sim().spawn(program(r));
    mach.run();

    // communication-time = maximum-reduce(local-time), averaged over
    // the repetitions; min and mean reported alongside.
    RunningStats max_s, min_s, mean_s;
    for (const auto &rep : local_times) {
        Time mx = *std::max_element(rep.begin(), rep.end());
        Time mn = *std::min_element(rep.begin(), rep.end());
        double total = 0;
        for (Time t : rep)
            total += static_cast<double>(t);
        max_s.add(static_cast<double>(mx));
        min_s.add(static_cast<double>(mn));
        mean_s.add(total / static_cast<double>(p));
    }

    Measurement out;
    out.machine = cfg.name;
    out.op = op;
    out.algo = algo;
    out.m = m;
    out.p = p;
    out.max_time = static_cast<Time>(max_s.mean());
    out.min_time = static_cast<Time>(min_s.mean());
    out.mean_time = static_cast<Time>(mean_s.mean());
    if (const auto *fi = mach.faultInjector()) {
        const fault::FaultReport &fr = fi->report();
        out.fault_drops = fr.drops;
        out.fault_retransmits = fr.retransmits;
        out.fault_delays = fr.delays;
        out.degradation = fr.degradation;
    }
    out.metrics = mach.metricsSnapshot(); // empty when metrics are off

    if (memo) {
        MemoCache &c = memoCache();
        std::lock_guard<std::mutex> lock(c.mu);
        ++c.stats.misses;
        c.map.emplace(std::move(key),
                      MemoValue{out.max_time, out.min_time,
                                out.mean_time});
    } else {
        MemoCache &c = memoCache();
        std::lock_guard<std::mutex> lock(c.mu);
        ++c.stats.bypassed;
    }
    return out;
}

/**
 * Makespan of the clean twin of a faulty point: same machine with
 * the fault spec stripped, same procedure.  Rides the memo cache, so
 * across a sweep each distinct twin is simulated once.
 */
Time
cleanTwinMakespan(const machine::MachineConfig &cfg, int p, Coll op,
                  Bytes m, Algo algo, const MeasureOptions &opt)
{
    machine::MachineConfig clean = cfg;
    clean.fault = fault::FaultSpec{};
    clean.collect_metrics = false;
    MeasureOptions copt = opt;
    copt.metrics = false;
    copt.ensemble = 1;
    return measureOnePoint(clean, p, op, m, algo, copt).max_time;
}

} // namespace

Measurement
measureCollective(const machine::MachineConfig &cfg, int p, Coll op,
                  Bytes m, Algo algo, const MeasureOptions &opt)
{
    if (opt.iterations < 1 || opt.repetitions < 1 || opt.warmup < 0)
        fatal("measureCollective: bad options (k=%d reps=%d warmup=%d)",
              opt.iterations, opt.repetitions, opt.warmup);
    if (opt.max_skew < 0)
        fatal("measureCollective: negative clock skew bound");
    if (opt.ensemble < 1)
        fatal("measureCollective: ensemble must be >= 1, got %d",
              opt.ensemble);

    // Resolve Algo::Auto up front, before the memo key is formed:
    // cfg.selection is deliberately NOT part of the key (it only
    // influences a run through this resolution), so an unresolved
    // Auto would alias across different tables.  Resolving here also
    // makes an Auto point share its cache entry — and produce a
    // byte-identical Measurement, resolved algo included — with the
    // same point measured under the explicit algorithm.
    if (algo == Algo::Auto)
        algo = tuning::resolveAlgo(cfg, op, p, m, algo);

    if (!cfg.fault.enabled() || opt.ensemble == 1) {
        Measurement out = measureOnePoint(cfg, p, op, m, algo, opt);
        if (cfg.fault.enabled()) {
            Time clean = cleanTwinMakespan(cfg, p, op, m, algo, opt);
            if (clean > 0)
                out.degradation.makespan_inflation =
                    static_cast<double>(out.max_time) /
                        static_cast<double>(clean) -
                    1.0;
        }
        return out;
    }

    // Fault-ensemble mode: the same point under opt.ensemble derived
    // fault universes, sequentially (the sweep point remains the
    // unit of parallelism, so --jobs N stays byte-identical).
    MeasureOptions mopt = opt;
    mopt.ensemble = 1;
    std::vector<Time> makespans;
    makespans.reserve(static_cast<std::size_t>(opt.ensemble));
    double min_sum = 0, mean_sum = 0;
    Measurement agg;
    std::exception_ptr last_failure;
    for (int k = 0; k < opt.ensemble; ++k) {
        machine::MachineConfig mcfg = cfg;
        mcfg.fault.seed =
            fault::mixSeed(cfg.fault.seed,
                           0x656e73656d626cULL + // "ensembl"
                               static_cast<std::uint64_t>(k));
        try {
            Measurement one =
                measureOnePoint(mcfg, p, op, m, algo, mopt);
            makespans.push_back(one.max_time);
            min_sum += static_cast<double>(one.min_time);
            mean_sum += static_cast<double>(one.mean_time);
            agg.fault_drops += one.fault_drops;
            agg.fault_retransmits += one.fault_retransmits;
            agg.fault_delays += one.fault_delays;
            agg.degradation.reroutes += one.degradation.reroutes;
            agg.degradation.extra_bytes += one.degradation.extra_bytes;
            agg.degradation.escalations += one.degradation.escalations;
            agg.degradation.absorbed_delay +=
                one.degradation.absorbed_delay;
            agg.degradation.absorbed += one.degradation.absorbed;
            if ((opt.metrics || cfg.collect_metrics) &&
                !one.metrics.empty()) {
                if (agg.metrics.empty())
                    agg.metrics = std::move(one.metrics);
                else
                    agg.metrics.merge(one.metrics);
            }
        } catch (const fault::FaultError &) {
            ++agg.ensemble_failures;
            last_failure = std::current_exception();
        }
    }
    agg.machine = cfg.name;
    agg.op = op;
    agg.algo = algo;
    agg.m = m;
    agg.p = p;
    agg.ensemble_runs = opt.ensemble;
    if (makespans.empty()) {
        // Every universe killed the point; under fail_fast that IS
        // the result — surface it as the last member's FaultError.
        std::rethrow_exception(last_failure);
    }
    const double n = static_cast<double>(makespans.size());
    double max_sum = 0;
    for (Time t : makespans)
        max_sum += static_cast<double>(t);
    agg.max_time = static_cast<Time>(max_sum / n);
    agg.min_time = static_cast<Time>(min_sum / n);
    agg.mean_time = static_cast<Time>(mean_sum / n);
    std::sort(makespans.begin(), makespans.end());
    std::size_t idx =
        (makespans.size() * 95 + 99) / 100; // ceil(0.95 n)
    if (idx > 0)
        --idx;
    agg.p95_time = makespans[idx];
    Time clean = cleanTwinMakespan(cfg, p, op, m, algo, opt);
    if (clean > 0)
        agg.degradation.makespan_inflation =
            static_cast<double>(agg.max_time) /
                static_cast<double>(clean) -
            1.0;
    return agg;
}

Measurement
measureStartup(const machine::MachineConfig &cfg, int p, Coll op,
               Algo algo, const MeasureOptions &opt)
{
    Bytes m = op == Coll::Barrier ? 0 : kStartupMessageBytes;
    return measureCollective(cfg, p, op, m, algo, opt);
}

std::vector<int>
paperMachineSizes(const std::string &machine_name)
{
    // T3D allocations topped out at 64 nodes; SP2/Paragon reached 128.
    if (machine_name == "T3D")
        return {2, 4, 8, 16, 32, 64};
    return {2, 4, 8, 16, 32, 64, 128};
}

std::vector<Bytes>
paperMessageLengths()
{
    // 4 B .. 64 KB in powers of four (Section 2).
    std::vector<Bytes> out;
    for (Bytes m = 4; m <= 64 * KiB; m *= 4)
        out.push_back(m);
    return out;
}

model::MachineModel
fitMachineModel(const machine::MachineConfig &cfg,
                const std::vector<machine::Coll> &ops,
                std::vector<int> sizes, std::vector<Bytes> lengths,
                const MeasureOptions &opt)
{
    std::vector<machine::Coll> todo = ops;
    if (todo.empty())
        todo.assign(machine::kPaperColls.begin(),
                    machine::kPaperColls.end());
    if (sizes.empty())
        sizes = paperMachineSizes(cfg.name);
    if (lengths.empty())
        lengths = paperMessageLengths();

    model::MachineModel out(cfg.name + " (fitted)");
    for (machine::Coll op : todo) {
        std::vector<model::Sample> samples;
        for (int p : sizes) {
            for (Bytes m : lengths) {
                Bytes mm = op == Coll::Barrier ? 0 : m;
                auto meas = measureCollective(cfg, p, op, mm,
                                              Algo::Default, opt);
                samples.push_back({mm, p, meas.us()});
                if (op == Coll::Barrier)
                    break;
            }
        }
        if (op == Coll::Barrier)
            out.set(op, model::fitStartupAuto(samples));
        else
            out.set(op, model::fitPaperStyleAuto(samples));
    }
    return out;
}

Measurement
measurePingPong(const machine::MachineConfig &cfg, Bytes m,
                const MeasureOptions &opt)
{
    if (opt.iterations < 1 || opt.warmup < 0)
        fatal("measurePingPong: bad options");
    if (m < 0)
        fatal("measurePingPong: negative message length");

    auto run_cfg = std::make_shared<machine::MachineConfig>(cfg);
    run_cfg->collect_metrics = cfg.collect_metrics || opt.metrics;
    machine::Machine mach(machine::ConfigHandle(std::move(run_cfg)), 2);
    Time round_trip_total = 0;
    const int total = opt.warmup + opt.iterations;

    auto pinger = [&]() -> sim::Task<void> {
        mpi::Comm comm(mach, 0);
        for (int i = 0; i < total; ++i) {
            Time start = mach.sim().now();
            co_await comm.send(1, 0, m);
            co_await comm.recv(1, 1);
            if (i >= opt.warmup)
                round_trip_total += mach.sim().now() - start;
        }
    };
    auto ponger = [&]() -> sim::Task<void> {
        mpi::Comm comm(mach, 1);
        for (int i = 0; i < total; ++i) {
            co_await comm.recv(0, 0);
            co_await comm.send(0, 1, m);
        }
    };
    mach.sim().spawn(pinger());
    mach.sim().spawn(ponger());
    mach.run();

    Measurement out;
    out.machine = cfg.name;
    out.m = m;
    out.p = 2;
    out.max_time =
        round_trip_total / (2 * static_cast<Time>(opt.iterations));
    out.min_time = out.max_time;
    out.mean_time = out.max_time;
    out.metrics = mach.metricsSnapshot();
    return out;
}

Bytes
aggregatedLength(Coll op, Bytes m, int p)
{
    switch (op) {
      case Coll::Barrier:
        return 0;
      case Coll::Alltoall:
        return m * static_cast<Bytes>(p) * static_cast<Bytes>(p - 1);
      case Coll::Allgather:
      case Coll::Allreduce:
        // All-to-one followed by one-to-all equivalents; the paper
        // does not fit these, use the symmetric m p (p - 1) view for
        // allgather and m (p - 1) for allreduce's reduction tree.
        return op == Coll::Allgather
                   ? m * static_cast<Bytes>(p) * static_cast<Bytes>(p - 1)
                   : m * static_cast<Bytes>(p - 1);
      default:
        // bcast, gather, scatter, reduce, scan: m (p - 1).
        return m * static_cast<Bytes>(p - 1);
    }
}

} // namespace ccsim::harness
