#include "harness/measure.hh"

#include <algorithm>

#include "model/fit.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/stats.hh"

namespace ccsim::harness {

namespace {

using machine::Algo;
using machine::Coll;

} // namespace

sim::Task<void>
runCollectiveOnce(mpi::Comm &comm, Coll op, Bytes m, Algo algo)
{
    switch (op) {
      case Coll::Barrier:
        co_await comm.barrier(algo);
        break;
      case Coll::Bcast:
        co_await comm.bcast(m, 0, algo);
        break;
      case Coll::Gather:
        co_await comm.gather(m, 0, algo);
        break;
      case Coll::Scatter:
        co_await comm.scatter(m, 0, algo);
        break;
      case Coll::Allgather:
        co_await comm.allgather(m, algo);
        break;
      case Coll::Alltoall:
        co_await comm.alltoall(m, algo);
        break;
      case Coll::Reduce:
        co_await comm.reduce(m, 0, algo);
        break;
      case Coll::Allreduce:
        co_await comm.allreduce(m, algo);
        break;
      case Coll::ReduceScatter:
        co_await comm.reduceScatter(m, algo);
        break;
      case Coll::Scan:
        co_await comm.scan(m, algo);
        break;
      default:
        panic("runCollectiveOnce: bad collective %d",
              static_cast<int>(op));
    }
}

Measurement
measureCollective(const machine::MachineConfig &cfg, int p, Coll op,
                  Bytes m, Algo algo, const MeasureOptions &opt)
{
    if (opt.iterations < 1 || opt.repetitions < 1 || opt.warmup < 0)
        fatal("measureCollective: bad options (k=%d reps=%d warmup=%d)",
              opt.iterations, opt.repetitions, opt.warmup);
    if (opt.max_skew < 0)
        fatal("measureCollective: negative clock skew bound");

    machine::MachineConfig run_cfg = cfg;
    run_cfg.collect_metrics = cfg.collect_metrics || opt.metrics;
    machine::Machine mach(run_cfg, p);

    // Per-rank clock-skew offsets (the paper: "allocated nodes are
    // often not time synchronized").
    Rng rng(opt.seed);
    std::vector<Time> skew(static_cast<size_t>(p), 0);
    if (opt.max_skew > 0)
        for (auto &s : skew)
            s = rng.nextRange(0, opt.max_skew);

    // local_times[rep][rank]
    std::vector<std::vector<Time>> local_times(
        static_cast<size_t>(opt.repetitions),
        std::vector<Time>(static_cast<size_t>(p), 0));

    auto program = [&](int rank) -> sim::Task<void> {
        mpi::Comm comm(mach, rank);
        co_await comm.compute(skew[static_cast<size_t>(rank)]);

        for (int w = 0; w < opt.warmup; ++w)
            co_await runCollectiveOnce(comm, op, m, algo);

        for (int rep = 0; rep < opt.repetitions; ++rep) {
            co_await comm.barrier();
            Time start = mach.sim().now();
            for (int i = 0; i < opt.iterations; ++i)
                co_await runCollectiveOnce(comm, op, m, algo);
            Time end = mach.sim().now();
            local_times[static_cast<size_t>(rep)]
                       [static_cast<size_t>(rank)] =
                (end - start) / opt.iterations;
        }
    };

    for (int r = 0; r < p; ++r)
        mach.sim().spawn(program(r));
    mach.run();

    // communication-time = maximum-reduce(local-time), averaged over
    // the repetitions; min and mean reported alongside.
    RunningStats max_s, min_s, mean_s;
    for (const auto &rep : local_times) {
        Time mx = *std::max_element(rep.begin(), rep.end());
        Time mn = *std::min_element(rep.begin(), rep.end());
        double total = 0;
        for (Time t : rep)
            total += static_cast<double>(t);
        max_s.add(static_cast<double>(mx));
        min_s.add(static_cast<double>(mn));
        mean_s.add(total / static_cast<double>(p));
    }

    Measurement out;
    out.machine = cfg.name;
    out.op = op;
    out.algo = algo;
    out.m = m;
    out.p = p;
    out.max_time = static_cast<Time>(max_s.mean());
    out.min_time = static_cast<Time>(min_s.mean());
    out.mean_time = static_cast<Time>(mean_s.mean());
    if (const auto *fi = mach.faultInjector()) {
        const fault::FaultReport &fr = fi->report();
        out.fault_drops = fr.drops;
        out.fault_retransmits = fr.retransmits;
        out.fault_delays = fr.delays;
    }
    out.metrics = mach.metricsSnapshot(); // empty when metrics are off
    return out;
}

Measurement
measureStartup(const machine::MachineConfig &cfg, int p, Coll op,
               Algo algo, const MeasureOptions &opt)
{
    Bytes m = op == Coll::Barrier ? 0 : kStartupMessageBytes;
    return measureCollective(cfg, p, op, m, algo, opt);
}

std::vector<int>
paperMachineSizes(const std::string &machine_name)
{
    // T3D allocations topped out at 64 nodes; SP2/Paragon reached 128.
    if (machine_name == "T3D")
        return {2, 4, 8, 16, 32, 64};
    return {2, 4, 8, 16, 32, 64, 128};
}

std::vector<Bytes>
paperMessageLengths()
{
    // 4 B .. 64 KB in powers of four (Section 2).
    std::vector<Bytes> out;
    for (Bytes m = 4; m <= 64 * KiB; m *= 4)
        out.push_back(m);
    return out;
}

model::MachineModel
fitMachineModel(const machine::MachineConfig &cfg,
                const std::vector<machine::Coll> &ops,
                std::vector<int> sizes, std::vector<Bytes> lengths,
                const MeasureOptions &opt)
{
    std::vector<machine::Coll> todo = ops;
    if (todo.empty())
        todo.assign(machine::kPaperColls.begin(),
                    machine::kPaperColls.end());
    if (sizes.empty())
        sizes = paperMachineSizes(cfg.name);
    if (lengths.empty())
        lengths = paperMessageLengths();

    model::MachineModel out(cfg.name + " (fitted)");
    for (machine::Coll op : todo) {
        std::vector<model::Sample> samples;
        for (int p : sizes) {
            for (Bytes m : lengths) {
                Bytes mm = op == Coll::Barrier ? 0 : m;
                auto meas = measureCollective(cfg, p, op, mm,
                                              Algo::Default, opt);
                samples.push_back({mm, p, meas.us()});
                if (op == Coll::Barrier)
                    break;
            }
        }
        if (op == Coll::Barrier)
            out.set(op, model::fitStartupAuto(samples));
        else
            out.set(op, model::fitPaperStyleAuto(samples));
    }
    return out;
}

Measurement
measurePingPong(const machine::MachineConfig &cfg, Bytes m,
                const MeasureOptions &opt)
{
    if (opt.iterations < 1 || opt.warmup < 0)
        fatal("measurePingPong: bad options");
    if (m < 0)
        fatal("measurePingPong: negative message length");

    machine::MachineConfig run_cfg = cfg;
    run_cfg.collect_metrics = cfg.collect_metrics || opt.metrics;
    machine::Machine mach(run_cfg, 2);
    Time round_trip_total = 0;
    const int total = opt.warmup + opt.iterations;

    auto pinger = [&]() -> sim::Task<void> {
        mpi::Comm comm(mach, 0);
        for (int i = 0; i < total; ++i) {
            Time start = mach.sim().now();
            co_await comm.send(1, 0, m);
            co_await comm.recv(1, 1);
            if (i >= opt.warmup)
                round_trip_total += mach.sim().now() - start;
        }
    };
    auto ponger = [&]() -> sim::Task<void> {
        mpi::Comm comm(mach, 1);
        for (int i = 0; i < total; ++i) {
            co_await comm.recv(0, 0);
            co_await comm.send(0, 1, m);
        }
    };
    mach.sim().spawn(pinger());
    mach.sim().spawn(ponger());
    mach.run();

    Measurement out;
    out.machine = cfg.name;
    out.m = m;
    out.p = 2;
    out.max_time =
        round_trip_total / (2 * static_cast<Time>(opt.iterations));
    out.min_time = out.max_time;
    out.mean_time = out.max_time;
    out.metrics = mach.metricsSnapshot();
    return out;
}

Bytes
aggregatedLength(Coll op, Bytes m, int p)
{
    switch (op) {
      case Coll::Barrier:
        return 0;
      case Coll::Alltoall:
        return m * static_cast<Bytes>(p) * static_cast<Bytes>(p - 1);
      case Coll::Allgather:
      case Coll::Allreduce:
        // All-to-one followed by one-to-all equivalents; the paper
        // does not fit these, use the symmetric m p (p - 1) view for
        // allgather and m (p - 1) for allreduce's reduction tree.
        return op == Coll::Allgather
                   ? m * static_cast<Bytes>(p) * static_cast<Bytes>(p - 1)
                   : m * static_cast<Bytes>(p - 1);
      default:
        // bcast, gather, scatter, reduce, scan: m (p - 1).
        return m * static_cast<Bytes>(p - 1);
    }
}

} // namespace ccsim::harness
