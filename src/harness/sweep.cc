#include "harness/sweep.hh"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "util/logging.hh"

namespace ccsim::harness {

std::vector<SweepPoint>
SweepSpec::expand() const
{
    if (machines.empty())
        fatal("SweepSpec: no machines");
    if (ops.empty())
        fatal("SweepSpec: no operations");
    if (algos.empty())
        fatal("SweepSpec: no algorithms");

    std::vector<SweepPoint> points;
    std::vector<Bytes> default_lengths;
    if (lengths.empty())
        default_lengths = paperMessageLengths();

    // Each point gets its own fault universe, mixed from the spec's
    // seed and the point's position in declaration order — the same
    // scheme the harness uses for clock skew, so results are
    // identical at any --jobs level.
    auto seedPoint = [](SweepPoint &pt, std::uint64_t idx) {
        if (pt.cfg.fault.enabled())
            pt.cfg.fault.seed = fault::mixSeed(pt.cfg.fault.seed, idx);
    };
    std::uint64_t idx = 0;

    for (const auto &cfg : machines) {
        std::vector<int> machine_sizes =
            sizes.empty() ? paperMachineSizes(cfg.name) : sizes;
        for (machine::Coll op : ops) {
            const std::vector<Bytes> &ms =
                lengths.empty() ? default_lengths : lengths;
            for (int p : machine_sizes) {
                for (Bytes m : ms) {
                    SweepPoint pt;
                    pt.cfg = cfg;
                    pt.p = p;
                    pt.op = op;
                    pt.m = op == machine::Coll::Barrier ? 0 : m;
                    pt.options = options;
                    for (machine::Algo algo : algos) {
                        pt.algo = algo;
                        points.push_back(pt);
                        seedPoint(points.back(), idx++);
                    }
                    if (op == machine::Coll::Barrier)
                        break; // barrier has no length axis
                }
            }
        }
    }
    return points;
}

int
SweepRunner::defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

SweepRunner::SweepRunner(int jobs)
    : jobs_(jobs > 0 ? jobs : defaultJobs())
{
}

std::vector<Measurement>
SweepRunner::run(const std::vector<SweepPoint> &points)
{
    std::vector<Measurement> results(points.size());
    runTasks(points.size(), [&](std::size_t i) {
        const SweepPoint &pt = points[i];
        results[i] = measureCollective(pt.cfg, pt.p, pt.op, pt.m,
                                       pt.algo, pt.options);
    });
    return results;
}

void
SweepRunner::runTasks(std::size_t n,
                      const std::function<void(std::size_t)> &task)
{
    auto wall_start = std::chrono::steady_clock::now();
    MemoStats memo_before = memoStats();

    auto simulate = [&](std::size_t i) { task(i); };

    int workers = jobs_;
    if (static_cast<std::size_t>(workers) > n)
        workers = static_cast<int>(n);

    if (workers <= 1) {
        // Serial reference path: no pool, no atomics.
        for (std::size_t i = 0; i < n; ++i)
            simulate(i);
    } else {
        // Dynamic work-stealing over a shared index: points vary in
        // cost by orders of magnitude (p = 2 vs p = 128), so static
        // partitioning would leave most workers idle at the tail.
        std::atomic<std::size_t> next{0};
        std::atomic<bool> stop{false};
        std::mutex error_mutex;
        std::exception_ptr first_error;

        auto worker = [&] {
            for (;;) {
                std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n || stop.load(std::memory_order_relaxed))
                    return;
                try {
                    simulate(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(error_mutex);
                    if (!first_error)
                        first_error = std::current_exception();
                    stop.store(true, std::memory_order_relaxed);
                    return;
                }
            }
        };

        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(workers));
        for (int w = 0; w < workers; ++w)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
        if (first_error)
            std::rethrow_exception(first_error);
    }

    std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - wall_start;
    MemoStats memo_after = memoStats();
    stats_.points = n;
    stats_.wall_seconds = wall.count();
    stats_.memo_hits = memo_after.hits - memo_before.hits;
    stats_.memo_misses = memo_after.misses - memo_before.misses;
}

} // namespace ccsim::harness
