/**
 * @file
 * The parallel sweep engine.
 *
 * Regenerating the paper's result set (Figs. 1-5, Table 3) means
 * hundreds of independent `measureCollective` simulations — the
 * (machine, operation, m, p, algorithm) cross product.  Each point
 * instantiates its own Machine/Simulator, which are self-contained
 * and single-threaded, so points are embarrassingly parallel.
 *
 * SweepRunner expands a declarative SweepSpec (or takes an explicit
 * point list), executes the points on a pool of worker threads, and
 * collects results *in spec order*: results[i] always corresponds to
 * points[i], whatever thread finished it and in whatever real-time
 * order.  Combined with the simulator's determinism (each point's
 * Machine is private; the skew RNG is seeded per point from its
 * MeasureOptions), output is bit-identical to a serial run at any
 * --jobs level.  That determinism contract is what lets the figure
 * benches scale with cores while still diffing their CSV output
 * byte-for-byte against serial references.
 */

#ifndef CCSIM_HARNESS_SWEEP_HH
#define CCSIM_HARNESS_SWEEP_HH

#include <cstddef>
#include <functional>
#include <vector>

#include "harness/measure.hh"
#include "machine/machine_config.hh"

namespace ccsim::harness {

/** One fully-specified simulation point of a sweep. */
struct SweepPoint
{
    machine::MachineConfig cfg;
    int p = 2;
    machine::Coll op = machine::Coll::Barrier;
    Bytes m = 0;
    machine::Algo algo = machine::Algo::Auto;
    MeasureOptions options;
};

/**
 * A declarative sweep: the cross product machines x ops x sizes x
 * lengths x algos.  expand() flattens it in that nesting order
 * (machine outermost, algorithm innermost), which fixes the result
 * order for any SweepRunner::run.
 */
struct SweepSpec
{
    std::vector<machine::MachineConfig> machines;
    std::vector<machine::Coll> ops;
    std::vector<int> sizes;      //!< empty: paperMachineSizes(machine)
    std::vector<Bytes> lengths;  //!< empty: paperMessageLengths()
    std::vector<machine::Algo> algos{machine::Algo::Auto};
    MeasureOptions options;

    /**
     * Flatten to concrete points.  Machine sizes beyond a machine's
     * paper range are kept (the caller asked for them); Barrier
     * collapses the length axis to a single m = 0 point, like every
     * bench does by hand today.
     */
    std::vector<SweepPoint> expand() const;
};

/** Executes sweep points on a worker pool, results in spec order. */
class SweepRunner
{
  public:
    /**
     * @param jobs  worker threads; 0 (default) uses the hardware
     *              concurrency.  1 runs inline on the calling thread
     *              with no pool at all (the bit-identical serial
     *              reference path).
     */
    explicit SweepRunner(int jobs = 0);

    /** The resolved worker count (never 0). */
    int jobs() const { return jobs_; }

    /** Throughput record of the most recent run(). */
    struct Stats
    {
        std::size_t points = 0;
        double wall_seconds = 0.0;

        /** Memo-cache activity during this run (deltas of the
         *  process-wide harness::memoStats()). */
        std::uint64_t memo_hits = 0;
        std::uint64_t memo_misses = 0;

        double
        pointsPerSec() const
        {
            return wall_seconds > 0
                       ? static_cast<double>(points) / wall_seconds
                       : 0.0;
        }
    };

    /**
     * Simulate every point; results[i] is points[i]'s measurement
     * regardless of jobs().  Worker threads never share simulation
     * state — each point builds its own Machine.  The first exception
     * thrown by any point (with throwOnError(true) active) is
     * rethrown on the calling thread after the pool drains.
     */
    std::vector<Measurement> run(const std::vector<SweepPoint> &points);

    /**
     * The generic engine underneath run(): execute task(0..n-1) on
     * the pool with the same contract — jobs() == 1 runs inline in
     * index order (the serial reference path), the first exception
     * is rethrown after the pool drains, and lastStats() records the
     * batch.  Tasks must be independent; writing only to index-owned
     * slots keeps output identical at any --jobs level.  The replay
     * sweep (replay::replaySweep) runs on this directly.
     */
    void runTasks(std::size_t n,
                  const std::function<void(std::size_t)> &task);

    /** Expand @p spec and run it. */
    std::vector<Measurement>
    run(const SweepSpec &spec)
    {
        return run(spec.expand());
    }

    const Stats &lastStats() const { return stats_; }

    /** Hardware concurrency, clamped to at least 1. */
    static int defaultJobs();

  private:
    int jobs_;
    Stats stats_;
};

} // namespace ccsim::harness

#endif // CCSIM_HARNESS_SWEEP_HH
