#include "msg/transport.hh"

#include <algorithm>
#include <cmath>
#include <new>

#include "util/logging.hh"

namespace ccsim::msg {

namespace {

/** Fraction of a duration, rounded to the picosecond. */
Time
scaleTime(Time t, double f)
{
    return static_cast<Time>(std::llround(static_cast<double>(t) * f));
}

} // namespace

Transport::Transport(sim::Simulator &sim, net::Network &net, Fabric &fabric,
                     int node, const TransportParams &params,
                     sim::Trace *trace, fault::FaultInjector *fi,
                     stats::TransportMetrics *tm)
    : sim_(sim), net_(net), fabric_(fabric), node_(node),
      params_(params), trace_(trace), fi_(fi), tm_(tm),
      lossy_(fi != nullptr && fi->spec().lossPossible())
{
    if (params_.send_overhead < 0 || params_.recv_overhead < 0 ||
        params_.rendezvous_overhead < 0 || params_.blt_setup < 0)
        fatal("Transport: negative software overhead");
    if (params_.copy_bandwidth_mbs <= 0)
        fatal("Transport: copy bandwidth must be positive, got %g",
              params_.copy_bandwidth_mbs);
    if (params_.eager_threshold < 0 || params_.blt_threshold < 0)
        fatal("Transport: negative protocol threshold");
    if (params_.coprocessor_overlap < 0 || params_.coprocessor_overlap > 1)
        fatal("Transport: coprocessor overlap %g outside [0,1]",
              params_.coprocessor_overlap);
}

sim::Task<void>
Transport::busy(Time cost)
{
    if (cost < 0)
        panic("Transport::busy: negative cost");
    if (fi_)
        cost = fi_->scaleCpu(node_, cost); // straggler injection
    Time start = std::max(sim_.now(), cpu_free_);
    Time end = start + cost;
    cpu_free_ = end;
    if (end > sim_.now())
        co_await sim_.delay(end - sim_.now());
}

bool
Transport::matches(int want_src, int want_tag, int want_ctx,
                   int src, int tag, int ctx) const
{
    return want_ctx == ctx &&
           (want_src == kAnySource || want_src == src) &&
           (want_tag == kAnyTag || want_tag == tag);
}

Time
Transport::injectAt(int dst, Bytes bytes, Time when)
{
    return net_.transfer(node_, dst, bytes, when);
}

Time
Transport::wireArrival(int dst, Bytes bytes, Time when)
{
    Time arrival = injectAt(dst, bytes, when);
    if (fi_) {
        Time penalty = fi_->drawDelayPenalty();
        if (penalty > 0) {
            fi_->recordDelay(node_, dst, when, bytes);
            arrival += penalty;
        }
    }
    return arrival;
}

sim::Task<void>
Transport::reliableDeliver(int dst, Bytes bytes, Time when,
                           sim::DeliverFn deliver)
{
    const fault::FaultSpec &spec = fi_->spec();
    const fault::RecoveryPolicy policy = spec.policy;
    // fail_fast stops at the base budget; the recovering policies
    // are granted escalation_budget further rounds before giving up
    // (retry_escalate) or absorbing (degrade).
    const int max_attempts =
        policy == fault::RecoveryPolicy::FailFast
            ? spec.retry_budget
            : spec.retry_budget + spec.escalation_budget;
    Time timeout = spec.retry_timeout;
    for (int attempt = 0;; ++attempt) {
        Time xmit = std::max(when, sim_.now());
        net::LinkId hole =
            fi_->blackholedOnRoute(net_.topology(), node_, dst, xmit);

        // degrade: the first copy probes the direct route; once a
        // black hole has eaten it, retransmissions detour via the
        // cached fallback node (when one exists).
        int via = -1;
        if (hole >= 0 && attempt > 0 &&
            policy == fault::RecoveryPolicy::Degrade)
            via = fi_->fallbackVia(node_, dst, net_);

        bool lost;
        Time arrival;
        if (via >= 0) {
            lost = fi_->drawDrop(); // the detour is still lossy
            arrival = net_.transferVia(node_, via, dst, bytes, xmit);
        } else {
            lost = hole >= 0 || fi_->drawDrop();
            // The worm occupies the route either way; a lost message
            // held the wires up to the failure point.
            arrival = injectAt(dst, bytes, xmit);
        }

        if (!lost) {
            Time penalty = fi_->drawDelayPenalty();
            if (penalty > 0) {
                fi_->recordDelay(node_, dst, xmit, bytes);
                arrival += penalty;
            }
            if (via >= 0)
                fi_->recordReroute(node_, via, dst, xmit, bytes);
            deliver(arrival);
            // Zero-byte ack on the reverse route; the protocol
            // engine is done when it lands.  A detoured delivery
            // acks over the same detour (the direct reverse route
            // would cross the hole's neighbourhood again).
            Time acked =
                via >= 0
                    ? net_.transferVia(dst, via, node_, 0, arrival)
                    : net_.transfer(dst, node_, 0, arrival);
            if (acked > sim_.now())
                co_await sim_.delay(acked - sim_.now());
            co_return;
        }

        fi_->recordDrop(node_, dst, via >= 0 ? -1 : hole, xmit, bytes,
                        attempt);
        if (attempt >= max_attempts) {
            if (policy == fault::RecoveryPolicy::Degrade) {
                // The backstop: degrade never fails a run.  A message
                // that can be neither delivered nor detoured is
                // absorbed — handed over out-of-band after one final
                // escalated timeout, at full price in the report.
                Time done = xmit + timeout;
                fi_->recordAbsorb(node_, dst, hole, xmit, bytes,
                                  attempt + 1, timeout);
                deliver(done);
                if (done > sim_.now())
                    co_await sim_.delay(done - sim_.now());
                co_return;
            }
            fi_->failExhausted(node_, dst, hole, xmit, bytes,
                               attempt + 1);
        }

        // Ack-timeout expiry, then exponential backoff.
        Time resend_at = xmit + timeout;
        if (resend_at > sim_.now())
            co_await sim_.delay(resend_at - sim_.now());
        if (attempt >= spec.retry_budget)
            fi_->recordEscalation(node_, dst, sim_.now(), bytes,
                                  attempt + 1, timeout);
        timeout = scaleTime(timeout, spec.retry_backoff);
        fi_->recordRetransmit(node_, dst, sim_.now(), bytes,
                              attempt + 1);
        when = sim_.now();
    }
}

sim::Task<void>
Transport::send(int dst, int tag, int context, Bytes bytes,
                PayloadPtr payload, CostOverride ov)
{
    const Time o_send =
        ov.send >= 0 ? ov.send : params_.send_overhead;
    if (dst < 0 || dst >= fabric_.size())
        panic("Transport::send: destination %d out of range", dst);
    if (bytes < 0)
        panic("Transport::send: negative size");
    if (payload && static_cast<Bytes>(payload->size()) != bytes)
        panic("Transport::send: payload size %zu != declared %lld",
              payload->size(), static_cast<long long>(bytes));

    ++sends_;
    bytes_sent_ += bytes;
    const Time span_start = sim_.now();

    Time copy = transferTime(bytes, params_.copy_bandwidth_mbs);

    if (tm_)
        tm_->msg_bytes.add(static_cast<double>(bytes));

    if (dst == node_) {
        // Buffered local delivery: full copy on the sending side,
        // nothing touches the network.
        if (tm_)
            tm_->self_sends.add();
        co_await busy(o_send + copy);
        Message m{node_, dst, tag, context, bytes, std::move(payload),
                  sim_.now(), 0};
        deliverEager(std::move(m));
        traceSpan(sim::SpanKind::Send, span_start, bytes, dst);
        co_return;
    }

    Transport *peer = &fabric_.node(dst);

    if (bytes <= params_.eager_threshold) {
        if (tm_)
            tm_->eager_sends.add();
        co_await busy(o_send);
        // The injection copy runs on the coprocessor/DMA timeline;
        // the main CPU is held only for its (1 - overlap) share.
        Time copy_start = std::max(sim_.now(), copro_free_);
        Time inject_done = copy_start + copy;
        copro_free_ = inject_done;
        if (tm_)
            tm_->inject_backlog_us.observe(
                toMicros(inject_done - sim_.now()));
        Message m{node_, dst, tag, context, bytes, std::move(payload),
                  0, 0};
        transmitWire(dst, bytes, inject_done,
                     [this, peer, m = std::move(m)](Time arrival) mutable {
                         m.arrival = arrival;
                         sim_.scheduleAt(arrival,
                                         [peer, m = std::move(m)]() mutable {
                                             peer->deliverEager(
                                                 std::move(m));
                                         });
                     });
        co_await busy(
            scaleTime(copy, 1.0 - params_.coprocessor_overlap));
        traceSpan(sim::SpanKind::Send, span_start, bytes, dst);
        co_return;
    }

    // Rendezvous: RTS -> CTS -> DATA.
    if (tm_)
        tm_->rdv_sends.add();
    co_await busy(o_send + params_.rendezvous_overhead);
    HandshakePtr hs = hs_pool_.make(sim_);
    Rts rts{node_, tag, context, bytes, payload, hs, 0};
    transmitWire(dst, 0, sim_.now(),
                 [this, peer, rts = std::move(rts)](Time arrival) mutable {
                     sim_.scheduleAt(arrival,
                                     [peer, rts = std::move(rts)]() mutable {
                                         peer->deliverRts(
                                             std::move(rts));
                                     });
                 });

    co_await hs->cts.wait();

    Message m{node_, dst, tag, context, bytes, std::move(payload), 0, 0};
    bool use_blt = params_.blt_enabled && bytes >= params_.blt_threshold;
    auto fire_data = [this, hs](Time arrival) {
        hs->msg.arrival = arrival;
        sim_.scheduleAt(arrival, [hs] { hs->data.fire(); });
    };
    if (use_blt) {
        // Block-transfer engine: descriptor setup instead of a
        // memory copy; the engine streams straight from user memory.
        if (tm_)
            tm_->blt_sends.add();
        co_await busy(params_.blt_setup);
        hs->msg = std::move(m);
        transmitWire(dst, bytes, sim_.now(), fire_data);
    } else {
        Time copy_start = std::max(sim_.now(), copro_free_);
        Time inject_done = copy_start + copy;
        copro_free_ = inject_done;
        if (tm_)
            tm_->inject_backlog_us.observe(
                toMicros(inject_done - sim_.now()));
        hs->msg = std::move(m);
        transmitWire(dst, bytes, inject_done, fire_data);
        co_await busy(
            scaleTime(copy, 1.0 - params_.coprocessor_overlap));
    }
    traceSpan(sim::SpanKind::Send, span_start, bytes, dst);
}

sim::Task<Message>
Transport::recv(int src, int tag, int context, CostOverride ov)
{
    const Time o_recv =
        ov.recv >= 0 ? ov.recv : params_.recv_overhead;
    if (src != kAnySource && (src < 0 || src >= fabric_.size()))
        panic("Transport::recv: source %d out of range", src);
    const Time span_start = sim_.now();

    // Earliest matching arrival across the eager and RTS queues.
    auto eit = unexpected_.end();
    for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
        if (matches(src, tag, context, it->src, it->tag, it->context)) {
            eit = it;
            break;
        }
    }
    auto rit = pending_rts_.end();
    for (auto it = pending_rts_.begin(); it != pending_rts_.end(); ++it) {
        if (matches(src, tag, context, it->src, it->tag, it->context)) {
            rit = it;
            break;
        }
    }

    bool have_eager = eit != unexpected_.end();
    bool have_rts = rit != pending_rts_.end();
    if (have_eager && have_rts) {
        // Non-overtaking: take whichever arrived first.
        if (eit->seq < rit->seq)
            have_rts = false;
        else
            have_eager = false;
    }

    if (have_eager) {
        Message m = std::move(*eit);
        unexpected_.erase(eit);
        co_await busy(o_recv +
                      transferTime(m.bytes, params_.copy_bandwidth_mbs));
        ++recvs_;
        if (tm_)
            tm_->recvs.add();
        traceSpan(sim::SpanKind::Recv, span_start, m.bytes, m.src);
        co_return m;
    }
    if (have_rts) {
        Rts rts = std::move(*rit);
        pending_rts_.erase(rit);
        Message m = co_await recvRendezvous(std::move(rts), ov);
        traceSpan(sim::SpanKind::Recv, span_start, m.bytes, m.src);
        co_return m;
    }

    // Nothing has arrived yet: park until a matching delivery.
    PendingRecv pr;
    pr.src = src;
    pr.tag = tag;
    pr.context = context;
    co_await sim::suspendWith([&](std::coroutine_handle<> h) {
        pr.handle = h;
        pending_recvs_.push_back(&pr);
        if (tm_)
            tm_->pending_recv_hw.observe(
                static_cast<double>(pending_recvs_.size()));
    });

    if (pr.eager) {
        Message m = std::move(*pr.eager);
        co_await busy(o_recv +
                      transferTime(m.bytes, params_.copy_bandwidth_mbs));
        ++recvs_;
        if (tm_)
            tm_->recvs.add();
        traceSpan(sim::SpanKind::Recv, span_start, m.bytes, m.src);
        co_return m;
    }
    if (!pr.rts)
        panic("Transport::recv: woken with nothing delivered");
    {
        Message m = co_await recvRendezvous(std::move(*pr.rts), ov);
        traceSpan(sim::SpanKind::Recv, span_start, m.bytes, m.src);
        co_return m;
    }
}

sim::Task<Message>
Transport::recvRendezvous(Rts rts, CostOverride ov)
{
    const Time o_recv =
        ov.recv >= 0 ? ov.recv : params_.recv_overhead;
    // Process the RTS and return the clear-to-send.
    co_await busy(params_.rendezvous_overhead);
    Time cts_arrival = injectAt(rts.src, 0, sim_.now());
    sim_.scheduleAt(cts_arrival, [hs = rts.hs] { hs->cts.fire(); });

    co_await rts.hs->data.wait();
    // Direct deposit into the user buffer: completion cost only.
    co_await busy(o_recv);
    ++recvs_;
    if (tm_)
        tm_->recvs.add();
    co_return std::move(rts.hs->msg);
}

void
Transport::deliverEager(Message m)
{
    m.seq = arrival_seq_++;
    for (auto it = pending_recvs_.begin(); it != pending_recvs_.end();
         ++it) {
        PendingRecv *pr = *it;
        if (matches(pr->src, pr->tag, pr->context, m.src, m.tag,
                    m.context)) {
            pending_recvs_.erase(it);
            pr->eager = std::move(m);
            sim_.resumeNow(pr->handle);
            return;
        }
    }
    unexpected_.push_back(std::move(m));
    if (tm_)
        tm_->unexpected_hw.observe(
            static_cast<double>(unexpected_.size()));
}

void
Transport::deliverRts(Rts rts)
{
    rts.seq = arrival_seq_++;
    for (auto it = pending_recvs_.begin(); it != pending_recvs_.end();
         ++it) {
        PendingRecv *pr = *it;
        if (matches(pr->src, pr->tag, pr->context, rts.src, rts.tag,
                    rts.context)) {
            pending_recvs_.erase(it);
            pr->rts = std::move(rts);
            sim_.resumeNow(pr->handle);
            return;
        }
    }
    pending_rts_.push_back(std::move(rts));
    if (tm_)
        tm_->pending_rts_hw.observe(
            static_cast<double>(pending_rts_.size()));
}

sim::Task<void>
Transport::runSend(sim::PoolPtr<ReqState> st, int dst, int tag,
                   int context, Bytes bytes, PayloadPtr payload,
                   CostOverride ov)
{
    try {
        co_await send(dst, tag, context, bytes, std::move(payload), ov);
    } catch (...) {
        st->exc = std::current_exception();
    }
    st->done.fire();
}

sim::Task<void>
Transport::runRecv(sim::PoolPtr<ReqState> st, int src, int tag,
                   int context, CostOverride ov)
{
    try {
        st->msg = co_await recv(src, tag, context, ov);
    } catch (...) {
        st->exc = std::current_exception();
    }
    st->done.fire();
}

Request
Transport::isend(int dst, int tag, int context, Bytes bytes,
                 PayloadPtr payload, CostOverride ov)
{
    sim::PoolPtr<ReqState> st = req_pool_.make(sim_);
    sim_.spawn(runSend(st, dst, tag, context, bytes, std::move(payload),
                       ov));
    return Request{std::move(st)};
}

Request
Transport::irecv(int src, int tag, int context, CostOverride ov)
{
    sim::PoolPtr<ReqState> st = req_pool_.make(sim_);
    sim_.spawn(runRecv(st, src, tag, context, ov));
    return Request{std::move(st)};
}

sim::Task<Message>
Transport::wait(Request req)
{
    if (!req.state)
        panic("Transport::wait: empty request");
    if (!req.state->done.fired())
        co_await req.state->done.wait();
    if (req.state->exc)
        std::rethrow_exception(req.state->exc);
    if (req.state->msg)
        co_return std::move(*req.state->msg);
    co_return Message{};
}

sim::Task<Message>
Transport::sendrecv(int dst, int send_tag, Bytes bytes, int src,
                    int recv_tag, int context, PayloadPtr payload,
                    CostOverride ov)
{
    Request sreq = isend(dst, send_tag, context, bytes,
                         std::move(payload), ov);
    Message m = co_await recv(src, recv_tag, context, ov);
    co_await wait(sreq);
    co_return m;
}

Fabric::Fabric(sim::Simulator &sim, net::Network &net, int n,
               const TransportParams &params, sim::Trace *trace,
               fault::FaultInjector *fi, stats::TransportMetrics *tm)
{
    if (n < 1)
        fatal("Fabric: need at least one node, got %d", n);
    if (n > net.topology().numNodes())
        fatal("Fabric: %d nodes exceed the %d-node topology", n,
              net.topology().numNodes());
    slab_ = static_cast<Transport *>(::operator new(
        sizeof(Transport) * static_cast<std::size_t>(n),
        std::align_val_t{alignof(Transport)}));
    for (int i = 0; i < n; ++i) {
        // Transport's constructor only fatal()s (no throw), so a
        // partial slab never needs unwinding.
        new (slab_ + i)
            Transport(sim, net, *this, i, params, trace, fi, tm);
        n_ = i + 1;
    }
}

Fabric::~Fabric()
{
    for (int i = n_; i-- > 0;)
        slab_[i].~Transport();
    ::operator delete(slab_, std::align_val_t{alignof(Transport)});
}

Transport &
Fabric::node(int i)
{
    if (i < 0 || i >= size())
        panic("Fabric::node: %d out of range [0, %d)", i, size());
    return slab_[i];
}

} // namespace ccsim::msg
