#include "msg/message.hh"

#include <cstring>

namespace ccsim::msg {

PayloadPtr
makePayload(const void *data, std::size_t size)
{
    auto buf = std::make_shared<std::vector<std::byte>>(size);
    if (size > 0)
        std::memcpy(buf->data(), data, size);
    return buf;
}

} // namespace ccsim::msg
